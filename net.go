package castencil

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"castencil/internal/metrics"
	"castencil/internal/netcomm"
	"castencil/internal/runtime"
)

// This file is the facade over the distributed transport: the handful of
// types a multi-process caller needs without importing internal packages.
// The one-shot path is WithRanks (Run connects and closes the mesh itself);
// long-lived processes (stencild, benchmarks) connect once with NetConnect
// and pass the transport to each run with WithTransport.

// Conduit is the wire transport of a distributed run — what WithTransport
// accepts. NetTransport is the TCP implementation; tests may substitute
// their own.
type Conduit = runtime.Conduit

// NetTransport is the TCP conduit: one persistent connection per rank pair,
// established by NetConnect and reusable across any number of sequential
// runs.
type NetTransport = netcomm.Transport

// NetOptions configures NetConnect.
//
// Deprecated: for per-run distribution use
// WithCluster(ClusterOptions{Rank: ..., Ranks: ...}); NetOptions remains
// for long-lived processes that tune the transport (listener reuse,
// per-message mode, metrics) before handing it to WithCluster.
type NetOptions = netcomm.Options

// NetMetricsRegistry is the metrics registry type NetOptions.Metrics
// accepts (stencild passes its own).
type NetMetricsRegistry = metrics.Registry

// NetConnect establishes the distributed mesh for rank among addrs (the
// full static member list, identical on every rank) and blocks until every
// rank pair is connected. Close the returned transport when done;
// o.Rank/o.Addrs are taken from the arguments.
//
// Deprecated: one-shot runs should pass membership directly with
// WithCluster(ClusterOptions{Rank: rank, Ranks: addrs}) and let Run manage
// the mesh. NetConnect remains the explicit connection path for processes
// that reuse one mesh across many runs (pass the transport via
// ClusterOptions.Transport) — results are bitwise identical either way.
func NetConnect(rank int, addrs []string, o NetOptions) (*NetTransport, error) {
	o.Rank, o.Addrs = rank, addrs
	return netcomm.Connect(o)
}

// GridBytes serializes a gathered grid row-major as little-endian float64 —
// the canonical byte form under the determinism fingerprint.
func GridBytes(g *Tile) []byte {
	out := make([]byte, 0, g.Rows*g.Cols*8)
	var buf [8]byte
	for r := 0; r < g.Rows; r++ {
		for _, v := range g.Row(r, 0, g.Cols) {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			out = append(out, buf[:]...)
		}
	}
	return out
}

// GridSHA256 fingerprints a gathered grid: sha256 over GridBytes, hex
// encoded — the same fingerprint stencild serves, so a distributed run can
// be checked bitwise against a single-process one without shipping data.
func GridSHA256(g *Tile) string {
	sum := sha256.Sum256(GridBytes(g))
	return hex.EncodeToString(sum[:])
}

// RankOfNode is the static node→rank placement every rank agrees on:
// virtual nodes are dealt to ranks in contiguous blocks of
// ceil(nodes/ranks). Exposed so callers can predict which rank holds which
// node's data.
func RankOfNode(node, nodes, ranks int) int { return runtime.RankOfNode(node, nodes, ranks) }
