// Autoplan: let the library choose among the three kernel families — base,
// communication avoiding (and its step size), and wavefront temporal
// blocking (and its width) — for a given machine and kernel speed. This
// implements the paper's section-VII future-work vision: "the generation and
// the scheduling of the redundant tasks become transparent to the users".
//
// The planner probes the machine model in virtual time, so a full plan
// costs milliseconds-to-seconds, not cluster hours.
package main

import (
	"fmt"
	"log"

	castencil "castencil"
)

func main() {
	cfg := castencil.Config{
		N:        23040,
		TileRows: 288,
		P:        4, // 16 nodes
		Steps:    50,
	}
	m := castencil.NaCL()

	fmt.Printf("planning %dx%d grid, tiles of %d, on 16 %s nodes\n\n", cfg.N, cfg.N, cfg.TileRows, m.Name)
	fmt.Printf("%-12s %-10s %12s %12s\n", "kernel", "choice", "plan GF/s", "base GF/s")
	for _, ratio := range []float64{1.0, 0.6, 0.4, 0.3, 0.2} {
		plan, err := castencil.AutoPlan(cfg, m, ratio, nil)
		if err != nil {
			log.Fatal(err)
		}
		var base float64
		for _, c := range plan.Candidates {
			if c.Family == castencil.Base {
				base = c.GFLOPS
			}
		}
		kernel := fmt.Sprintf("ratio %.1f", ratio)
		if ratio == 1 {
			kernel = "original"
		}
		fmt.Printf("%-12s %-10s %12.1f %12.1f\n", kernel, plan.Candidates[0].String(), plan.BestGFLOPS, base)
	}

	// The full candidate table for one plan: every parameter is probed both
	// as a CA step size and as a wavefront width, and the ranking is stable
	// (ties prefer the smaller parameter, then the earlier family).
	ratio := 0.3
	plan, err := castencil.AutoPlan(cfg, m, ratio, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull candidate table at ratio %.1f:\n", ratio)
	fmt.Printf("%-10s %-10s %12s\n", "family", "parameter", "GF/s")
	for i, c := range plan.Candidates {
		param := "-"
		switch c.Family {
		case castencil.CA:
			param = fmt.Sprintf("s=%d", c.StepSize)
		case castencil.WF:
			param = fmt.Sprintf("w=%d", c.Width)
		}
		marker := ""
		if i == 0 {
			marker = "  <- recommended"
		}
		fmt.Printf("%-10s %-10s %12.1f%s\n", c.Family, param, c.GFLOPS, marker)
	}

	fmt.Println("\nas the kernel gets faster (smaller ratio), the network dominates and")
	fmt.Println("the planner leaves the base family: communication avoiding hides the")
	fmt.Println("latency behind redundant compute, while the wavefront removes whole")
	fmt.Println("communication rounds by fusing w steps into one task.")
}
