// Autoplan: let the library choose between the base and CA stencils — and
// the CA step size — for a given machine and kernel speed. This implements
// the paper's section-VII future-work vision: "the generation and the
// scheduling of the redundant tasks become transparent to the users".
//
// The planner probes the machine model in virtual time, so a full plan
// costs milliseconds-to-seconds, not cluster hours.
package main

import (
	"fmt"
	"log"

	castencil "castencil"
)

func main() {
	cfg := castencil.Config{
		N:        23040,
		TileRows: 288,
		P:        4, // 16 nodes
		Steps:    50,
	}
	m := castencil.NaCL()

	fmt.Printf("planning %dx%d grid, tiles of %d, on 16 %s nodes\n\n", cfg.N, cfg.N, cfg.TileRows, m.Name)
	fmt.Printf("%-12s %-10s %12s %12s\n", "kernel", "choice", "plan GF/s", "base GF/s")
	for _, ratio := range []float64{1.0, 0.6, 0.4, 0.3, 0.2} {
		plan, err := castencil.AutoPlan(cfg, m, ratio, nil)
		if err != nil {
			log.Fatal(err)
		}
		var base float64
		for _, c := range plan.Candidates {
			if c.StepSize == 0 {
				base = c.GFLOPS
			}
		}
		choice := "base"
		if plan.UseCA() {
			choice = fmt.Sprintf("CA s=%d", plan.BestStepSize)
		}
		kernel := fmt.Sprintf("ratio %.1f", ratio)
		if ratio == 1 {
			kernel = "original"
		}
		fmt.Printf("%-12s %-10s %12.1f %12.1f\n", kernel, choice, plan.BestGFLOPS, base)
	}
	fmt.Println("\nas the kernel gets faster (smaller ratio), the network dominates and")
	fmt.Println("the planner switches to communication avoiding with a tuned step size.")
}
