// Heat: explicit heat diffusion on a 2D plate — the PDE workload the
// paper's introduction motivates. The left wall is held at 100 degrees,
// the other walls at 0; the interior starts cold. The example runs the
// communication-avoiding stencil over 4 virtual nodes, shows the heat
// front advancing, and cross-checks the result against both the base
// variant and the PETSc-style SpMV formulation (all bitwise identical).
package main

import (
	"fmt"
	"log"
	"strings"

	castencil "castencil"
)

const (
	n     = 120
	alpha = 0.25
)

func config(steps int) castencil.Config {
	return castencil.Config{
		N:        n,
		TileRows: 15, // 8 x 8 tiles
		P:        2,  // 2 x 2 nodes
		Steps:    steps,
		StepSize: 5,
		Weights:  castencil.HeatWeights(alpha),
		Init:     func(gr, gc int) float64 { return 0 },
		Boundary: func(gr, gc int) float64 {
			if gc < 0 {
				return 100 // hot left wall
			}
			return 0
		},
	}
}

// profile renders the temperature along the middle row as a bar chart.
func profile(at func(r, c int) float64) string {
	var sb strings.Builder
	row := n / 2
	for c := 0; c < n; c += 4 {
		t := at(row, c)
		bars := int(t / 100 * 30)
		fmt.Fprintf(&sb, "x=%3d %6.2f |%s\n", c, t, strings.Repeat("#", bars))
	}
	return sb.String()
}

func main() {
	fmt.Println("heat diffusion, 120x120 plate, left wall at 100 degrees")
	for _, steps := range []int{20, 200, 2000} {
		cfg := config(steps)
		res, err := castencil.Run(castencil.CA, cfg, castencil.WithWorkers(3))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n-- after %d steps (CA over 4 nodes, %d halo exchanges) --\n",
			steps, res.Exec.Messages)
		fmt.Print(profile(res.Grid.At))
	}

	// Cross-check the three formulations at 200 steps.
	cfg := config(200)
	ca, err := castencil.Run(castencil.CA, cfg, castencil.WithWorkers(2))
	if err != nil {
		log.Fatal(err)
	}
	base, err := castencil.Run(castencil.Base, cfg, castencil.WithWorkers(2))
	if err != nil {
		log.Fatal(err)
	}
	spmv, err := castencil.RunPETScReal(n, cfg.Weights, cfg.Init, cfg.Boundary, 8, cfg.Steps)
	if err != nil {
		log.Fatal(err)
	}
	exact := 0
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if ca.Grid.At(r, c) == base.Grid.At(r, c) && ca.Grid.At(r, c) == spmv[r*n+c] {
				exact++
			}
		}
	}
	fmt.Printf("\ncross-check at 200 steps: %d/%d points bitwise identical across CA, base and SpMV\n",
		exact, n*n)
	if exact != n*n {
		log.Fatal("formulations disagree")
	}
}
