// Quickstart: solve Laplace's equation with Jacobi iteration on a small 2D
// grid, three ways — the sequential baseline (implicitly, via Verify), the
// base task-graph version and the communication-avoiding version — over
// four simulated distributed-memory nodes, then predict cluster performance
// with the virtual-time engine.
package main

import (
	"fmt"
	"log"

	castencil "castencil"
)

func main() {
	cfg := castencil.Config{
		N:        240, // 240 x 240 grid
		TileRows: 24,  // 10 x 10 tiles
		P:        2,   // 2 x 2 nodes
		Steps:    50,
		StepSize: 6, // CA: exchange every 6 iterations
		Weights:  castencil.JacobiWeights(),
		Init:     castencil.HashInit(42),
		Boundary: castencil.ConstBoundary(1),
	}

	fmt.Println("== real execution (4 virtual nodes, 3 workers each) ==")
	for _, v := range []castencil.Variant{castencil.Base, castencil.CA} {
		res, err := castencil.Run(v, cfg, castencil.WithWorkers(3))
		if err != nil {
			log.Fatal(err)
		}
		diff := castencil.Verify(cfg, res)
		fmt.Printf("%-4s: elapsed %8v, %4d messages, %7.1f KB sent, max diff vs oracle = %v\n",
			v, res.Exec.Elapsed.Round(1000), res.Exec.Messages,
			float64(res.Exec.BytesSent)/1e3, diff)
	}

	// The same run over an unreliable wire: 5% of messages dropped and 5%
	// duplicated, deterministically by seed. The reliable transport
	// (sequence numbers, acks, retransmits, receiver dedup) comes on
	// automatically and masks every fault — the numerics stay bitwise
	// identical to the oracle.
	fmt.Println()
	fmt.Println("== real execution over a faulty wire (drop=5%, dup=5%) ==")
	plan, err := castencil.ParseFaultPlan("drop=0.05,dup=0.05,seed=42")
	if err != nil {
		log.Fatal(err)
	}
	res, err := castencil.Run(castencil.CA, cfg,
		castencil.WithWorkers(3),
		castencil.WithSched(castencil.WorkStealing),
		castencil.WithCoalesce(castencil.CoalesceStep),
		castencil.WithFaultPlan(plan))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CA  : %v, max diff vs oracle = %v\n", res.Exec.Fault, castencil.Verify(cfg, res))

	fmt.Println()
	fmt.Println("== predicted performance on the paper's clusters (virtual time) ==")
	big := castencil.Config{N: 23040, TileRows: 288, P: 4, Steps: 100, StepSize: 15}
	for _, m := range []*castencil.Machine{castencil.NaCL(), castencil.Stampede2()} {
		for _, ratio := range []float64{1.0, 0.2} {
			base, err := castencil.Sim(castencil.Base, big, castencil.WithMachine(m), castencil.WithRatio(ratio))
			if err != nil {
				log.Fatal(err)
			}
			ca, err := castencil.Sim(castencil.CA, big, castencil.WithMachine(m), castencil.WithRatio(ratio))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s 16 nodes, kernel ratio %.1f: base %7.1f GF/s, CA %7.1f GF/s (%+.0f%%)\n",
				m.Name, ratio, base.GFLOPS, ca.GFLOPS, 100*(ca.GFLOPS/base.GFLOPS-1))
		}
	}
}
