// Scaling: a strong-scaling study in the style of the paper's Figure 7 —
// PETSc vs base-PaRSEC vs CA-PaRSEC on both machine models, from 1 to 64
// nodes — plus the kernel-ratio crossover showing where communication
// avoiding starts to pay (Figure 8's story).
package main

import (
	"fmt"
	"log"

	castencil "castencil"
)

func main() {
	type workload struct {
		m       *castencil.Machine
		n, tile int
	}
	workloads := []workload{
		{castencil.NaCL(), 23040, 288},
		{castencil.Stampede2(), 55296, 864},
	}
	const steps, stepSize = 100, 15

	for _, w := range workloads {
		fmt.Printf("== %s: N=%d, tile=%d, %d iterations, CA step %d ==\n",
			w.m.Name, w.n, w.tile, steps, stepSize)
		fmt.Printf("%-6s %12s %12s %12s %10s\n", "nodes", "PETSc GF/s", "base GF/s", "CA GF/s", "vs PETSc")
		var base1 float64
		for _, nodes := range []int{1, 4, 16, 64} {
			p := 1
			for p*p < nodes {
				p++
			}
			cfg := castencil.Config{N: w.n, TileRows: w.tile, P: p, Steps: steps, StepSize: stepSize}
			base, err := castencil.Simulate(castencil.Base, cfg, castencil.SimOptions{Machine: w.m})
			if err != nil {
				log.Fatal(err)
			}
			ca, err := castencil.Simulate(castencil.CA, cfg, castencil.SimOptions{Machine: w.m})
			if err != nil {
				log.Fatal(err)
			}
			pet, err := castencil.SimulatePETSc(w.m, w.n, nodes, steps)
			if err != nil {
				log.Fatal(err)
			}
			if nodes == 1 {
				base1 = base.GFLOPS
			}
			fmt.Printf("%-6d %12.1f %12.1f %12.1f %9.2fx\n",
				nodes, pet.GFLOPS, base.GFLOPS, ca.GFLOPS, base.GFLOPS/pet.GFLOPS)
		}
		_ = base1

		fmt.Println("\nkernel-ratio crossover on 16 nodes (where CA starts to win):")
		cfg := castencil.Config{N: w.n, TileRows: w.tile, P: 4, Steps: steps, StepSize: stepSize}
		for _, ratio := range []float64{1.0, 0.8, 0.6, 0.4, 0.3, 0.2} {
			base, err := castencil.Simulate(castencil.Base, cfg, castencil.SimOptions{Machine: w.m, Ratio: ratio})
			if err != nil {
				log.Fatal(err)
			}
			ca, err := castencil.Simulate(castencil.CA, cfg, castencil.SimOptions{Machine: w.m, Ratio: ratio})
			if err != nil {
				log.Fatal(err)
			}
			marker := ""
			if ca.GFLOPS > base.GFLOPS*1.05 {
				marker = "  <- CA wins"
			}
			fmt.Printf("  ratio %.1f: base %8.1f  CA %8.1f  (%+5.0f%%)%s\n",
				ratio, base.GFLOPS, ca.GFLOPS, 100*(ca.GFLOPS/base.GFLOPS-1), marker)
		}
		fmt.Println()
	}
}
