// Tracing: reproduce the paper's Figure 10 experiment — profile one node of
// a 16-node NaCL run at kernel ratio 0.4 and compare the base and CA
// executions: CA keeps the compute cores busier while messages are in
// flight, finishing faster even though its boundary tasks individually cost
// more (deeper halo copies).
package main

import (
	"fmt"
	"log"
	"time"

	castencil "castencil"
)

func main() {
	m := castencil.NaCL()
	cfg := castencil.Config{
		N: 23040, TileRows: 288,
		P:     4, // 16 nodes
		Steps: 30, StepSize: 15,
	}
	// Node 5 sits in the middle of the 4x4 process grid: boundary tiles on
	// all sides.
	const node = 5

	for _, v := range []castencil.Variant{castencil.Base, castencil.CA} {
		tr := castencil.NewTrace()
		res, err := castencil.Simulate(v, cfg, castencil.SimOptions{
			Machine: m, Ratio: 0.4, Trace: tr, TraceNode: node,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: %.1f GFLOP/s, %d messages ==\n", v, res.GFLOPS, res.Messages)
		events := tr.Node(node)
		var busy, maxEnd time.Duration
		counts := map[string]int{}
		for _, e := range events {
			busy += e.Duration()
			if e.End > maxEnd {
				maxEnd = e.End
			}
			counts[e.Kind.String()]++
		}
		occ := float64(busy) / (float64(maxEnd) * float64(m.ComputeCores()))
		fmt.Printf("node %d: %d tasks (%d boundary, %d interior), occupancy %.0f%%\n",
			node, len(events), counts["boundary"], counts["interior"], 100*occ)
		fmt.Println(castencil.GanttText(tr, node, m.ComputeCores(), 110))
	}
	fmt.Println("B = boundary task (talks to remote nodes), . = interior task, blank = idle core")
}
