// Multigrid: a geometric multigrid V-cycle for the 2D Poisson problem —
// one of the canonical stencil-driven algorithms the paper's introduction
// motivates ("geometric multigrid or Krylov solvers"). Built entirely on
// the library's public tile/kernel API: weighted-Jacobi smoothing via
// ApplyStencil, residual/restriction/prolongation on grid tiles.
//
// The example contrasts the V-cycle's mesh-independent convergence with
// plain Jacobi sweeps on the same problem.
package main

import (
	"fmt"
	"math"

	castencil "castencil"
)

const omega = 0.8 // damped-Jacobi smoothing weight

// level holds the grids of one multigrid level: iterate u, right-hand side
// f, and a scratch tile. n is the interior extent; h the mesh width.
type level struct {
	n       int
	h       float64
	u, f, s *castencil.Tile
}

func newLevel(n int) *level {
	return &level{
		n: n,
		h: 1.0 / float64(n+1),
		u: castencil.NewGridTile(n, n, 1),
		f: castencil.NewGridTile(n, n, 0),
		s: castencil.NewGridTile(n, n, 1),
	}
}

// smooth performs damped-Jacobi sweeps: u <- (1-w)u + (w/4)(neighbors) +
// (w/4) h^2 f. The neighbor average comes from the library's five-point
// kernel with Heat-style weights.
func (l *level) smooth(sweeps int) {
	w := castencil.Weights{C: 1 - omega, N: omega / 4, S: omega / 4, W: omega / 4, E: omega / 4}
	for s := 0; s < sweeps; s++ {
		castencil.ApplyStencil(w, l.s, l.u)
		for r := 0; r < l.n; r++ {
			for c := 0; c < l.n; c++ {
				l.s.Set(r, c, l.s.At(r, c)+omega/4*l.h*l.h*l.f.At(r, c))
			}
		}
		l.u, l.s = l.s, l.u
	}
}

// residual computes r = f - A u with A = (4u - neighbors)/h^2.
func (l *level) residual(dst *castencil.Tile) {
	inv := 1 / (l.h * l.h)
	for r := 0; r < l.n; r++ {
		for c := 0; c < l.n; c++ {
			au := (4*l.u.At(r, c) - l.u.At(r-1, c) - l.u.At(r+1, c) - l.u.At(r, c-1) - l.u.At(r, c+1)) * inv
			dst.Set(r, c, l.f.At(r, c)-au)
		}
	}
}

// residualNorm returns the max-norm of the residual.
func (l *level) residualNorm() float64 {
	tmp := castencil.NewGridTile(l.n, l.n, 0)
	l.residual(tmp)
	m := 0.0
	for r := 0; r < l.n; r++ {
		for c := 0; c < l.n; c++ {
			if v := math.Abs(tmp.At(r, c)); v > m {
				m = v
			}
		}
	}
	return m
}

// restrict full-weights the fine residual onto the coarse RHS (fine n must
// be 2*coarse+1 so coarse point (i,j) sits on fine point (2i+1, 2j+1)).
func restrict(fine *castencil.Tile, coarse *level) {
	for r := 0; r < coarse.n; r++ {
		for c := 0; c < coarse.n; c++ {
			fr, fc := 2*r+1, 2*c+1
			at := func(dr, dc int) float64 {
				rr, cc := fr+dr, fc+dc
				if rr < 0 || rr >= fine.Rows || cc < 0 || cc >= fine.Cols {
					return 0
				}
				return fine.At(rr, cc)
			}
			coarse.f.Set(r, c,
				0.25*at(0, 0)+
					0.125*(at(-1, 0)+at(1, 0)+at(0, -1)+at(0, 1))+
					0.0625*(at(-1, -1)+at(-1, 1)+at(1, -1)+at(1, 1)))
		}
	}
}

// prolongAdd bilinearly interpolates the coarse correction onto the fine
// iterate.
func prolongAdd(coarse *level, fine *level) {
	e := coarse.u
	at := func(r, c int) float64 {
		if r < 0 || r >= coarse.n || c < 0 || c >= coarse.n {
			return 0 // zero Dirichlet correction on the boundary
		}
		return e.At(r, c)
	}
	for r := 0; r < fine.n; r++ {
		for c := 0; c < fine.n; c++ {
			// Fine (r,c) lies between coarse points ( (r-1)/2, (c-1)/2 ).
			var v float64
			switch {
			case r%2 == 1 && c%2 == 1:
				v = at((r-1)/2, (c-1)/2)
			case r%2 == 1:
				v = 0.5 * (at((r-1)/2, c/2-1+c%2) + at((r-1)/2, c/2))
			case c%2 == 1:
				v = 0.5 * (at(r/2-1+r%2, (c-1)/2) + at(r/2, (c-1)/2))
			default:
				v = 0.25 * (at(r/2-1, c/2-1) + at(r/2-1, c/2) + at(r/2, c/2-1) + at(r/2, c/2))
			}
			fine.u.Set(r, c, fine.u.At(r, c)+v)
		}
	}
}

// vcycle runs one V-cycle over the level hierarchy starting at depth d.
func vcycle(levels []*level, d int) {
	l := levels[d]
	if d == len(levels)-1 {
		l.smooth(60) // coarsest grid: smooth to death
		return
	}
	l.smooth(3)
	res := castencil.NewGridTile(l.n, l.n, 0)
	l.residual(res)
	coarse := levels[d+1]
	restrict(res, coarse)
	// Zero the coarse iterate before solving the error equation.
	for r := 0; r < coarse.n; r++ {
		for c := 0; c < coarse.n; c++ {
			coarse.u.Set(r, c, 0)
		}
	}
	vcycle(levels, d+1)
	prolongAdd(coarse, l)
	l.smooth(3)
}

func main() {
	// Hierarchy 127 -> 63 -> 31 -> 15 -> 7.
	sizes := []int{127, 63, 31, 15, 7}
	levels := make([]*level, len(sizes))
	for i, n := range sizes {
		levels[i] = newLevel(n)
	}
	fine := levels[0]
	// Problem: -lap u = 1 on the unit square, zero boundary.
	for r := 0; r < fine.n; r++ {
		for c := 0; c < fine.n; c++ {
			fine.f.Set(r, c, 1)
		}
	}

	fmt.Printf("Poisson %dx%d, V(3,3)-cycles vs plain damped Jacobi\n\n", fine.n, fine.n)
	fmt.Printf("%-8s %-14s\n", "cycle", "residual")
	r0 := fine.residualNorm()
	fmt.Printf("%-8d %-14.3e\n", 0, r0)
	var cycles int
	for cycles = 1; cycles <= 12; cycles++ {
		vcycle(levels, 0)
		rn := fine.residualNorm()
		fmt.Printf("%-8d %-14.3e\n", cycles, rn)
		if rn < 1e-8*r0 {
			break
		}
	}

	// Plain Jacobi on the same problem for comparison.
	plain := newLevel(fine.n)
	for r := 0; r < plain.n; r++ {
		for c := 0; c < plain.n; c++ {
			plain.f.Set(r, c, 1)
		}
	}
	const sweeps = 2000
	plain.smooth(sweeps)
	fmt.Printf("\nplain Jacobi after %d sweeps: residual %.3e (vs %.3e after %d V-cycles)\n",
		sweeps, plain.residualNorm(), fine.residualNorm(), cycles)
	fmt.Println("multigrid reduces the residual by ~an order of magnitude per cycle,")
	fmt.Println("mesh-independently — the canonical stencil workload at every level.")
}
