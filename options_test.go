package castencil_test

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	castencil "castencil"
)

// sameGrids reports bitwise equality of two gathered result grids.
func sameGrids(t *testing.T, a, b *castencil.Tile) bool {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("grid shapes differ: %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			if math.Float64bits(a.At(r, c)) != math.Float64bits(b.At(r, c)) {
				return false
			}
		}
	}
	return true
}

func TestBuildRunOptions(t *testing.T) {
	o := castencil.BuildRunOptions()
	if o.TraceNode != -1 {
		t.Errorf("default TraceNode = %d, want -1", o.TraceNode)
	}
	plan := &castencil.FaultPlan{Seed: 3, Drop: 0.1}
	o = castencil.BuildRunOptions(
		castencil.WithWorkers(4),
		nil, // nil options are skipped, so conditional chains compose
		castencil.WithSched(castencil.WorkStealing),
		castencil.WithCoalesce(castencil.CoalesceStep),
		castencil.WithFaultPlan(plan),
		castencil.WithSimFIFO(),
	)
	if o.Workers != 4 || o.Sched != castencil.WorkStealing ||
		o.Coalesce != castencil.CoalesceStep || o.Fault != plan || !o.SimFIFO {
		t.Errorf("options not applied: %+v", o)
	}
	sched, err := castencil.WithSchedSpec("priority")
	if err != nil {
		t.Fatal(err)
	}
	o = castencil.BuildRunOptions(sched)
	if o.Sched != castencil.SharedQueue || o.Policy != castencil.PriorityOrder {
		t.Errorf("WithSchedSpec: %+v", o)
	}
	if _, err := castencil.WithSchedSpec("bogus"); err == nil {
		t.Error("WithSchedSpec accepted a bad name")
	}
}

// TestRunMatchesDeprecatedRunReal drives the deprecated wrapper and the new
// entry point with equivalent settings across the option surface the real
// engine understands: results must be bitwise identical, wire accounting
// equal.
func TestRunMatchesDeprecatedRunReal(t *testing.T) {
	cfg := castencil.Config{N: 48, TileRows: 6, P: 2, Steps: 10, StepSize: 3}
	plan := &castencil.FaultPlan{Seed: 11, Drop: 0.1, Dup: 0.1, Delay: 0.2, DelayBy: 100 * time.Microsecond}
	cases := []struct {
		name string
		opts []castencil.Option
		old  castencil.ExecOptions
	}{
		{"defaults", nil, castencil.ExecOptions{}},
		{"steal+coalesce",
			[]castencil.Option{castencil.WithWorkers(2), castencil.WithSched(castencil.WorkStealing), castencil.WithCoalesce(castencil.CoalesceStep)},
			castencil.ExecOptions{Workers: 2, Sched: castencil.WorkStealing, Coalesce: castencil.CoalesceStep}},
		{"lifo-policy",
			[]castencil.Option{castencil.WithPolicy(castencil.LIFO)},
			castencil.ExecOptions{Policy: castencil.LIFO}},
		{"faulty",
			[]castencil.Option{castencil.WithWorkers(2), castencil.WithCoalesce(castencil.CoalesceStep), castencil.WithFaultPlan(plan)},
			castencil.ExecOptions{Workers: 2, Coalesce: castencil.CoalesceStep, Fault: plan}},
	}
	for _, v := range []castencil.Variant{castencil.Base, castencil.CA} {
		for _, c := range cases {
			neu, err := castencil.Run(v, cfg, c.opts...)
			if err != nil {
				t.Fatalf("%v/%s: Run: %v", v, c.name, err)
			}
			old, err := castencil.RunReal(v, cfg, c.old)
			if err != nil {
				t.Fatalf("%v/%s: RunReal: %v", v, c.name, err)
			}
			if !sameGrids(t, neu.Grid, old.Grid) {
				t.Errorf("%v/%s: grids differ between Run and RunReal", v, c.name)
			}
			if d := castencil.Verify(cfg, neu); d != 0 {
				t.Errorf("%v/%s: max diff vs oracle = %v, want 0", v, c.name, d)
			}
			if neu.Exec.Messages != old.Exec.Messages || neu.Exec.BytesSent != old.Exec.BytesSent {
				t.Errorf("%v/%s: wire accounting differs: (%d msgs, %d B) vs (%d msgs, %d B)",
					v, c.name, neu.Exec.Messages, neu.Exec.BytesSent, old.Exec.Messages, old.Exec.BytesSent)
			}
			if neu.Exec.Fault != old.Exec.Fault {
				t.Errorf("%v/%s: fault stats differ: %v vs %v", v, c.name, neu.Exec.Fault, old.Exec.Fault)
			}
		}
	}
}

// TestSimMatchesDeprecatedSimulate drives the deprecated wrapper and the
// new entry point with equivalent settings: virtual-time predictions are
// deterministic, so every field must match exactly.
func TestSimMatchesDeprecatedSimulate(t *testing.T) {
	cfg := castencil.Config{N: 2880, TileRows: 288, P: 2, Steps: 5, StepSize: 5}
	plan := &castencil.FaultPlan{Seed: 5, Drop: 0.05}
	cases := []struct {
		name string
		opts []castencil.Option
		old  castencil.SimOptions
	}{
		{"plain",
			[]castencil.Option{castencil.WithMachine(castencil.NaCL())},
			castencil.SimOptions{Machine: castencil.NaCL()}},
		{"ratio+fifo+coalesce",
			[]castencil.Option{castencil.WithMachine(castencil.Stampede2()), castencil.WithRatio(0.4), castencil.WithSimFIFO(), castencil.WithCoalesce(castencil.CoalesceStep)},
			castencil.SimOptions{Machine: castencil.Stampede2(), Ratio: 0.4, FIFO: true, Coalesce: castencil.CoalesceStep}},
		{"faulty",
			[]castencil.Option{castencil.WithMachine(castencil.NaCL()), castencil.WithFaultPlan(plan)},
			castencil.SimOptions{Machine: castencil.NaCL(), Fault: plan}},
	}
	for _, v := range []castencil.Variant{castencil.Base, castencil.CA} {
		for _, c := range cases {
			neu, err := castencil.Sim(v, cfg, c.opts...)
			if err != nil {
				t.Fatalf("%v/%s: Sim: %v", v, c.name, err)
			}
			old, err := castencil.Simulate(v, cfg, c.old)
			if err != nil {
				t.Fatalf("%v/%s: Simulate: %v", v, c.name, err)
			}
			if neu.Makespan != old.Makespan || neu.Messages != old.Messages ||
				neu.BytesSent != old.BytesSent || neu.Bundles != old.Bundles ||
				neu.Fault != old.Fault {
				t.Errorf("%v/%s: Sim and Simulate disagree:\n  new %+v\n  old %+v", v, c.name, neu, old)
			}
		}
	}
}

func TestSimRequiresMachine(t *testing.T) {
	cfg := castencil.Config{N: 2880, TileRows: 288, P: 2, Steps: 5, StepSize: 5}
	if _, err := castencil.Sim(castencil.CA, cfg); err == nil {
		t.Fatal("Sim without WithMachine should fail")
	}
}

// TestFacadeFaultDeterminism is the facade-level determinism claim: a
// maskable fault schedule (drops, duplicates, delays — all recoverable)
// leaves the numerics bitwise identical to the clean run, on both variants
// and both code paths (p2p and coalesced), while the fault counters show
// the schedule actually fired.
func TestFacadeFaultDeterminism(t *testing.T) {
	cfg := castencil.Config{N: 48, TileRows: 6, P: 2, Steps: 12, StepSize: 4}
	plan := &castencil.FaultPlan{Seed: 23, Drop: 0.1, Dup: 0.1, Delay: 0.2, DelayBy: 100 * time.Microsecond}
	for _, v := range []castencil.Variant{castencil.Base, castencil.CA} {
		for _, mode := range []castencil.CoalesceMode{castencil.CoalesceOff, castencil.CoalesceStep} {
			clean, err := castencil.Run(v, cfg, castencil.WithWorkers(2), castencil.WithCoalesce(mode))
			if err != nil {
				t.Fatal(err)
			}
			faulty, err := castencil.Run(v, cfg, castencil.WithWorkers(2), castencil.WithCoalesce(mode),
				castencil.WithFaultPlan(plan))
			if err != nil {
				t.Fatal(err)
			}
			if !faulty.Exec.Fault.Any() {
				t.Errorf("%v/%v: plan injected nothing", v, mode)
			}
			if !sameGrids(t, clean.Grid, faulty.Grid) {
				t.Errorf("%v/%v: faulted grid diverged from clean run", v, mode)
			}
		}
	}
}

// TestFacadeFaultReportPausedNode pauses one node for far longer than the
// recovery deadline: the run must terminate promptly with a structured
// FaultReport blaming that node, not hang.
func TestFacadeFaultReportPausedNode(t *testing.T) {
	cfg := castencil.Config{N: 48, TileRows: 6, P: 2, Steps: 12, StepSize: 4}
	plan := &castencil.FaultPlan{
		Seed:   1,
		Pauses: []castencil.NodePause{{Node: 1, AfterTasks: 2, Pause: 10 * time.Second}},
	}
	rec := &castencil.FaultRecovery{Timeout: 5 * time.Millisecond, Deadline: 40 * time.Millisecond}
	start := time.Now()
	_, err := castencil.Run(castencil.Base, cfg,
		castencil.WithWorkers(2),
		castencil.WithFaultPlan(plan),
		castencil.WithRecovery(rec))
	if err == nil {
		t.Fatal("run with a 10s node pause and a 40ms deadline should fail")
	}
	var rep *castencil.FaultReport
	if !errors.As(err, &rep) {
		t.Fatalf("error is not a *FaultReport: %v", err)
	}
	if rep.ID.Dst != 1 {
		t.Errorf("report blames node %d, want the paused node 1 (%v)", rep.ID.Dst, rep)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("degradation took %v; the 10s pause leaked into the run", elapsed)
	}
}

// TestFacadeContextCancellation exercises the service layer's load-bearing
// plumbing: WithContext threads a context through both engines, and a
// cancelled or expired context surfaces as a *CancelError that unwraps to
// the context error.
func TestFacadeContextCancellation(t *testing.T) {
	cfg := castencil.Config{N: 64, TileRows: 8, P: 2, Steps: 50, StepSize: 4}

	t.Run("real", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := castencil.Run(castencil.CA, cfg, castencil.WithContext(ctx))
		var ce *castencil.CancelError
		if !errors.As(err, &ce) {
			t.Fatalf("error %v is not a *CancelError", err)
		}
		if ce.Engine != "runtime" {
			t.Errorf("engine = %q", ce.Engine)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error %v does not unwrap to context.Canceled", err)
		}
	})

	t.Run("sim", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := castencil.Sim(castencil.CA, cfg,
			castencil.WithMachine(castencil.NaCL()), castencil.WithContext(ctx))
		var ce *castencil.CancelError
		if !errors.As(err, &ce) {
			t.Fatalf("error %v is not a *CancelError", err)
		}
		if ce.Engine != "desim" {
			t.Errorf("engine = %q", ce.Engine)
		}
	})

	t.Run("progress", func(t *testing.T) {
		var last atomic.Int64
		res, err := castencil.Run(castencil.Base, cfg,
			castencil.WithContext(context.Background()),
			castencil.WithProgress(func(done, total int64) {
				for {
					cur := last.Load()
					if done <= cur || last.CompareAndSwap(cur, done) {
						return
					}
				}
			}))
		if err != nil {
			t.Fatal(err)
		}
		if res.Exec.Completed == 0 || last.Load() != int64(res.Exec.Completed) {
			t.Errorf("progress saw %d, run completed %d tasks", last.Load(), res.Exec.Completed)
		}
	})
}
