GO ?= go

.PHONY: all build vet test race bench-smoke bench bench-sched bench-comm bench-fault bench-serve bench-tb bench-overlap bench-lanes bench-dsteal bench-fleet serve check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1 gate (see ROADMAP.md): full build (examples included), vet, tests.
test:
	$(GO) build ./... ./examples/... && $(GO) vet ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

# Short benchmark pass over the hot-path microbenchmarks: exercises the
# zero-alloc and fast-kernel paths without paper-scale runtimes.
bench-smoke:
	$(GO) test -run '^$$' -bench 'MsgRoundTrip|Kernel|PackBytes|UnpackBytes' \
		-benchtime 100x -benchmem \
		./internal/core/ ./internal/stencil/ ./internal/grid/

# Scheduler comparison behind BENCH_2.json: shared queue vs work stealing
# on the end-to-end executor and on a pure-scheduling task storm, plus the
# bench-harness ablation table.
bench-sched:
	$(GO) test -run '^$$' -bench 'ExecutorReal|SchedulerThroughput' \
		-benchtime 20x -benchmem \
		./internal/core/ ./internal/runtime/
	$(GO) run ./cmd/stencilbench -exp sched -quick

# Halo-coalescing ablation behind BENCH_3.json: per-neighbor bundles vs
# point-to-point on both engines, plus the coalesced-path microbenchmarks.
bench-comm:
	$(GO) test -run '^$$' -bench 'BundleRoundTrip|ExecutorCoalesce' \
		-benchtime 20x -benchmem \
		./internal/runtime/ ./internal/core/
	$(GO) run ./cmd/stencilbench -exp coalesce -quick

# Fault-injection & recovery smoke behind BENCH_4.json: recovery-layer
# overhead (idle and active) on the coalesced executor, plus the
# bench-harness ablation table (bitwise-equal grids under injected faults).
bench-fault:
	$(GO) test -run '^$$' -bench 'ExecutorFault' \
		-benchtime 20x -benchmem \
		./internal/core/
	$(GO) run ./cmd/stencilbench -exp fault -quick

# Service-layer sweep behind BENCH_5.json: offered load vs throughput and
# completion-latency percentiles through the job manager, plus the
# single-job service tax vs direct castencil.Run.
bench-serve:
	$(GO) run ./cmd/stencilbench -exp serve -quick

# Temporal-blocking ablation behind BENCH_6.json: base vs CA vs wavefront
# crossover on both machines, the AutoPlan family decisions, and the
# wire-level w-fold bundle reduction — plus the fused-kernel and halo
# microbenchmarks on the wavefront path.
bench-tb:
	$(GO) test -run '^$$' -bench 'KernelWavefront|ExecutorWavefront' \
		-benchtime 20x -benchmem \
		./internal/stencil/ ./internal/core/
	$(GO) run ./cmd/stencilbench -exp tb -quick

# Inner/border split ablation behind BENCH_7.json: delayed-link speedup,
# clean-wire boundary, and real-runtime traffic parity for the overlap
# transform, plus the split-executor microbenchmark.
bench-overlap:
	$(GO) test -run '^$$' -bench 'ExecutorSplit' \
		-benchtime 1x -benchmem \
		./internal/core/
	$(GO) run ./cmd/stencilbench -exp overlap -quick

# Distributed-transport ablation behind BENCH_8.json: persistent lanes vs
# per-message connections on a 2-rank loopback mesh, plus the zero-alloc
# lane round-trip microbenchmark.
bench-lanes:
	$(GO) test -run '^$$' -bench 'LaneRoundTrip' \
		-benchtime 100x -benchmem \
		./internal/netcomm/
	$(GO) run ./cmd/stencilbench -exp lanes -quick

# Inter-node work-stealing ablation behind BENCH_9.json: simulated skewed
# makespan win, real-mesh sim==real migration parity, and the steal
# round-trip microbenchmark over a loopback lane.
bench-dsteal:
	$(GO) test -run '^$$' -bench 'StealRoundTrip' \
		-benchtime 100x -benchmem \
		./internal/netcomm/
	$(GO) run ./cmd/stencilbench -exp dsteal -quick

# Fleet-gateway sweep behind BENCH_10.json: one stencilgate over {1,2,4}
# loopback stencild backends, content-addressed cache on vs off, plus the
# execute-vs-hit repeat microbenchmark.
bench-fleet:
	$(GO) run ./cmd/stencilbench -exp fleet -quick

# Run the stencil-as-a-service daemon locally.
serve:
	$(GO) run ./cmd/stencild -listen :8421 -maxjobs 2 -queue 64

# Full measurement run behind BENCH_1.json.
bench:
	$(GO) test -run '^$$' -bench 'MsgRoundTrip|ExecutorReal' -benchmem ./internal/core/
	$(GO) test -run '^$$' -bench 'Kernel' -benchmem ./internal/stencil/
	$(GO) test -run '^$$' -bench 'PackBytes|UnpackBytes' -benchmem ./internal/grid/

check: vet test race bench-smoke
