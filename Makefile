GO ?= go

.PHONY: all build vet test race bench-smoke bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1 gate (see ROADMAP.md).
test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

# Short benchmark pass over the hot-path microbenchmarks: exercises the
# zero-alloc and fast-kernel paths without paper-scale runtimes.
bench-smoke:
	$(GO) test -run '^$$' -bench 'MsgRoundTrip|Kernel|PackBytes|UnpackBytes' \
		-benchtime 100x -benchmem \
		./internal/core/ ./internal/stencil/ ./internal/grid/

# Full measurement run behind BENCH_1.json.
bench:
	$(GO) test -run '^$$' -bench 'MsgRoundTrip|ExecutorReal' -benchmem ./internal/core/
	$(GO) test -run '^$$' -bench 'Kernel' -benchmem ./internal/stencil/
	$(GO) test -run '^$$' -bench 'PackBytes|UnpackBytes' -benchmem ./internal/grid/

check: vet test race bench-smoke
