#!/usr/bin/env bash
# fleet_smoke.sh — end-to-end fleet-gateway smoke test.
#
# Brings up two stencild backends and one stencilgate on loopback, then
# asserts the gateway's three mechanisms end to end:
#   1. content-addressed cache: the same spec submitted twice executes once
#      — the repeat is a hit, served without a new backend submission, with
#      a bitwise-identical grid fingerprint; "cache":"bypass" re-executes;
#   2. tenant fair-share backpressure: a second gateway sized to one queued
#      job per tenant answers 429 + Retry-After on the overflow submission;
#   3. the stencilgate_* metric families are live.
# Requires curl and jq.
set -euo pipefail

B1=127.0.0.1:18451
B2=127.0.0.1:18452
GW=127.0.0.1:18450
GW2=127.0.0.1:18453
DBIN="${STENCILD:-/tmp/fleet-smoke-stencild}"
GBIN="${STENCILGATE:-/tmp/fleet-smoke-stencilgate}"

if [ ! -x "$DBIN" ]; then
  go build -o "$DBIN" ./cmd/stencild
fi
if [ ! -x "$GBIN" ]; then
  go build -o "$GBIN" ./cmd/stencilgate
fi

cleanup() {
  kill "${PID1:-}" "${PID2:-}" "${PIDG:-}" "${PIDG2:-}" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

"$DBIN" -listen "$B1" -maxjobs 2 -queue 16 &
PID1=$!
"$DBIN" -listen "$B2" -maxjobs 2 -queue 16 &
PID2=$!
"$GBIN" -listen "$GW" -backends "$B1,$B2" -tenants prod=4,batch=1 &
PIDG=$!

wait_healthy() { # $1 = addr
  for i in $(seq 1 100); do
    if [ "$(curl -s "http://$1/healthz" | head -n 1)" = ok ]; then
      return 0
    fi
    sleep 0.2
  done
  echo "fleet-smoke: $1 never became healthy" >&2
  exit 1
}
wait_healthy "$B1"
wait_healthy "$B2"
wait_healthy "$GW"
curl -s "http://$GW/healthz"

SPEC='"n":128,"tile":32,"steps":20,"step_size":4,"seed":7,"workers":1,"tenant":"prod"'

submit_and_wait() { # $1 = gateway addr, $2 = spec json; prints "id sha"
  local id state
  id=$(curl -sf "http://$1/v1/jobs" -d "$2" | jq -r .id)
  for i in $(seq 1 150); do
    state=$(curl -sf "http://$1/v1/jobs/$id" | jq -r .state)
    case "$state" in
      done) break ;;
      failed|cancelled)
        echo "fleet-smoke: job $id $state: $(curl -s "http://$1/v1/jobs/$id" | jq -r .error)" >&2
        exit 1 ;;
    esac
    if [ "$i" = 150 ]; then
      echo "fleet-smoke: job $id stuck in $state" >&2
      exit 1
    fi
    sleep 0.2
  done
  echo "$id $(curl -sf "http://$1/v1/jobs/$id/result" | jq -r .grid_sha256)"
}

backend_submissions() {
  local total=0 v
  for addr in "$B1" "$B2"; do
    v=$(curl -sf "http://$addr/metrics" | awk '/^stencild_jobs_submitted_total/ {print $2}')
    total=$((total + ${v:-0}))
  done
  echo "$total"
}

# --- 1. cache: execute once, hit on repeat, bypass re-executes ---------------
read -r ID1 SHA1 <<<"$(submit_and_wait "$GW" "{$SPEC}")"
BEFORE=$(backend_submissions)
read -r ID2 SHA2 <<<"$(submit_and_wait "$GW" "{$SPEC}")"
AFTER=$(backend_submissions)

echo "fleet-smoke: first run  $ID1 grid $SHA1"
echo "fleet-smoke: repeat     $ID2 grid $SHA2"
if [ -z "$SHA1" ] || [ "$SHA1" != "$SHA2" ]; then
  echo "fleet-smoke: FINGERPRINT MISMATCH — cache hit is not bitwise identical" >&2
  exit 1
fi
if [ "$AFTER" != "$BEFORE" ]; then
  echo "fleet-smoke: cache hit touched a backend ($BEFORE -> $AFTER submissions)" >&2
  exit 1
fi
if [ "$(curl -sf "http://$GW/v1/jobs/$ID2" | jq -r .cache)" != hit ]; then
  echo "fleet-smoke: repeat job not marked as a cache hit" >&2
  exit 1
fi

read -r ID3 SHA3 <<<"$(submit_and_wait "$GW" "{$SPEC,\"cache\":\"bypass\"}")"
if [ "$(backend_submissions)" -le "$AFTER" ]; then
  echo "fleet-smoke: cache=bypass did not re-execute on a backend" >&2
  exit 1
fi
if [ "$SHA3" != "$SHA1" ]; then
  echo "fleet-smoke: bypass re-execution changed the grid fingerprint" >&2
  exit 1
fi
echo "fleet-smoke: bypass     $ID3 re-executed, grid identical"

# --- 2. tenant backpressure: 429 + Retry-After past the tenant queue --------
"$GBIN" -listen "$GW2" -backends "$B1,$B2" -inflight 1 -tenant-queue 1 &
PIDG2=$!
wait_healthy "$GW2"

SLOW='"n":256,"tile":32,"steps":2000,"step_size":8,"workers":1,"tenant":"batch"'
curl -sf "http://$GW2/v1/jobs" -d "{$SLOW,\"seed\":1}" >/dev/null
# Give the first job a moment to occupy the single dispatch slot, then fill
# the queue of one and overflow it.
sleep 0.3
curl -sf "http://$GW2/v1/jobs" -d "{$SLOW,\"seed\":2}" >/dev/null
CODE=$(curl -s -o /tmp/fleet-smoke-429 -w '%{http_code}' -D /tmp/fleet-smoke-429h \
  "http://$GW2/v1/jobs" -d "{$SLOW,\"seed\":3}")
if [ "$CODE" != 429 ]; then
  echo "fleet-smoke: overflow submission answered $CODE, want 429" >&2
  cat /tmp/fleet-smoke-429 >&2
  exit 1
fi
if ! grep -qi '^retry-after:' /tmp/fleet-smoke-429h; then
  echo "fleet-smoke: 429 is missing Retry-After" >&2
  exit 1
fi
echo "fleet-smoke: tenant backpressure answered 429 + Retry-After"

# Cancel the slow blockers so the drain at exit is quick.
for id in $(curl -sf "http://$GW2/v1/jobs" | jq -r '.jobs[].id'); do
  curl -sf -X POST "http://$GW2/v1/jobs/$id/cancel" >/dev/null || true
done

# --- 3. gateway metrics live -------------------------------------------------
page=$(curl -sf "http://$GW/metrics")
for fam in stencilgate_cache_hits_total stencilgate_jobs_admitted_total stencilgate_backend_healthy; do
  if ! grep -q "^$fam" <<<"$page"; then
    echo "fleet-smoke: $GW/metrics is missing $fam" >&2
    exit 1
  fi
done
HITS=$(awk '/^stencilgate_cache_hits_total/ {print $2}' <<<"$page")
if [ "${HITS:-0}" -lt 1 ]; then
  echo "fleet-smoke: stencilgate_cache_hits_total = ${HITS:-0}, want >= 1" >&2
  exit 1
fi

echo "fleet-smoke: OK (cache hit without backend, bitwise-identical grids, tenant 429, metrics live)"
