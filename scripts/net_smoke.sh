#!/usr/bin/env bash
# net_smoke.sh — end-to-end distributed-transport smoke test.
#
# Brings up two stencild processes on loopback joined into a 2-rank netcomm
# mesh, submits the same coalesced job twice to rank 0 — once distributed
# (ranks:2, spec broadcast over the mesh, follower executing it) and once
# single-process — and asserts the two grid fingerprints are bitwise
# identical. Also checks that /healthz reports the mesh and /metrics serves
# the stencild_net_* wire families. Requires curl and jq.
set -euo pipefail

HTTP0=127.0.0.1:18431
HTTP1=127.0.0.1:18432
MESH=127.0.0.1:19441,127.0.0.1:19442
BIN="${STENCILD:-/tmp/net-smoke-stencild}"

if [ ! -x "$BIN" ]; then
  go build -o "$BIN" ./cmd/stencild
fi

cleanup() {
  kill "${PID0:-}" "${PID1:-}" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

"$BIN" -listen "$HTTP0" -rank 0 -ranks "$MESH" &
PID0=$!
"$BIN" -listen "$HTTP1" -rank 1 -ranks "$MESH" &
PID1=$!

# Wait for both daemons: healthz answers 200 "ok" only once HTTP is up AND
# every mesh rank is connected.
for addr in "$HTTP0" "$HTTP1"; do
  for i in $(seq 1 100); do
    if [ "$(curl -s "http://$addr/healthz" | head -n 1)" = ok ]; then
      break
    fi
    if [ "$i" = 100 ]; then
      echo "net-smoke: $addr never became healthy" >&2
      exit 1
    fi
    sleep 0.2
  done
done
curl -s "http://$HTTP0/healthz"

SPEC='"n":240,"tile":24,"nodes":4,"steps":20,"coalesce":"step","seed":7,"workers":1'

submit_and_wait() { # $1 = spec json; prints the job's grid_sha256
  local id state
  id=$(curl -sf "http://$HTTP0/v1/jobs" -d "$1" | jq -r .id)
  for i in $(seq 1 150); do
    state=$(curl -sf "http://$HTTP0/v1/jobs/$id" | jq -r .state)
    case "$state" in
      done) break ;;
      failed|cancelled)
        echo "net-smoke: job $id $state: $(curl -s "http://$HTTP0/v1/jobs/$id" | jq -r .error)" >&2
        exit 1 ;;
    esac
    if [ "$i" = 150 ]; then
      echo "net-smoke: job $id stuck in $state" >&2
      exit 1
    fi
    sleep 0.2
  done
  curl -sf "http://$HTTP0/v1/jobs/$id/result" | jq -r .grid_sha256
}

DIST_SHA=$(submit_and_wait "{$SPEC,\"ranks\":2}")
SINGLE_SHA=$(submit_and_wait "{$SPEC}")

echo "net-smoke: distributed grid $DIST_SHA"
echo "net-smoke: single-proc  grid $SINGLE_SHA"
if [ -z "$DIST_SHA" ] || [ "$DIST_SHA" != "$SINGLE_SHA" ]; then
  echo "net-smoke: FINGERPRINT MISMATCH — distributed run is not bitwise identical" >&2
  exit 1
fi

# Work stealing: a skewed decomposition (5 tile rows over a 2x2 node grid,
# 9/6/6/4 tiles per node) run distributed with greedy inter-node stealing
# must still fingerprint identically to the same job run single-process —
# migration moves execution, never numerics.
STEAL_SPEC='"variant":"wf","wavefront":4,"n":240,"tile":48,"nodes":4,"steps":8,"seed":7,"workers":1'
STEAL_SHA=$(submit_and_wait "{$STEAL_SPEC,\"ranks\":2,\"steal\":\"greedy\"}")
STEAL_SINGLE=$(submit_and_wait "{$STEAL_SPEC}")
echo "net-smoke: steal-on grid    $STEAL_SHA"
echo "net-smoke: steal single     $STEAL_SINGLE"
if [ -z "$STEAL_SHA" ] || [ "$STEAL_SHA" != "$STEAL_SINGLE" ]; then
  echo "net-smoke: STEAL FINGERPRINT MISMATCH — stealing changed the numerics" >&2
  exit 1
fi

# The steal field is validated at admission: non-off without ranks is a 400.
if curl -sf "http://$HTTP0/v1/jobs" -d "{$STEAL_SPEC,\"steal\":\"greedy\"}" >/dev/null 2>&1; then
  echo "net-smoke: single-process steal job was accepted; admission must reject it" >&2
  exit 1
fi

# The follower registered the broadcast in its own job table.
if [ "$(curl -sf "http://$HTTP1/v1/jobs" | jq '.jobs | length')" -lt 1 ]; then
  echo "net-smoke: follower job table is empty" >&2
  exit 1
fi

# Wire metrics are live on both ranks. (Fetch once per rank: grep -q closing
# the pipe mid-transfer would make curl fail under pipefail.)
for addr in "$HTTP0" "$HTTP1"; do
  page=$(curl -sf "http://$addr/metrics")
  for fam in stencild_net_frames_total stencild_net_bytes_total stencild_net_ranks_connected; do
    if ! grep -q "^$fam" <<<"$page"; then
      echo "net-smoke: $addr/metrics is missing $fam" >&2
      exit 1
    fi
  done
done

echo "net-smoke: OK (2-rank mesh, bitwise-identical grids, wire metrics live)"
