// Command traceview renders a CSV execution trace (written by stencilrun
// -trace or trace.WriteCSV) as per-node text Gantt charts with occupancy
// statistics — the text analog of the paper's Figure 10.
//
// Usage:
//
//	traceview -width 120 trace.csv
//	traceview -node 5 trace.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"castencil/internal/trace"
)

func main() {
	width := flag.Int("width", 100, "chart width in columns")
	node := flag.Int("node", -1, "render only this node (-1 = all nodes in the trace)")
	chrome := flag.String("chrome", "", "also write a Chrome/Perfetto trace-event JSON file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceview [-width N] [-node N] trace.csv")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
	if *chrome != "" {
		cf, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintln(os.Stderr, "traceview:", err)
			os.Exit(1)
		}
		if err := tr.WriteChrome(cf); err != nil {
			fmt.Fprintln(os.Stderr, "traceview:", err)
			os.Exit(1)
		}
		cf.Close()
		fmt.Printf("chrome trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *chrome)
	}
	// A distributed trace carries the TCP transport's wire:send/wire:recv
	// events keyed by rank; ranks alias low node numbers, so the wire
	// family is split out before any per-node statistics and rendered as
	// its own utilization block.
	rest, wire := trace.SplitWire(tr.Events())
	span := tr.Makespan()
	if len(wire) > 0 {
		ft := trace.New()
		for _, e := range rest {
			ft.Record(e)
		}
		tr = ft
		fmt.Println("== wire: distributed transport, per-rank socket activity ==")
		for _, ws := range trace.SummarizeWire(wire, span) {
			fmt.Printf("  rank %d  %5d sends  %5d recvs  %9d bytes  %4d steals  %9d steal-bytes  busy %-10v  util %3.0f%%\n",
				ws.Rank, ws.Sends, ws.Recvs, ws.Bytes, ws.Steals, ws.StealBytes, ws.Busy.Round(time.Microsecond), 100*ws.Util)
		}
		fmt.Println()
	}

	cores, nodes := tr.MaxCore()
	for _, nd := range nodes {
		if *node >= 0 && int32(*node) != nd {
			continue
		}
		events := tr.Node(nd)
		// Comm-goroutine events live on the core one past the compute
		// cores; statistics must not let them pollute task occupancy.
		compute, comm := trace.SplitComm(events)
		computeCores := cores
		if len(comm) > 0 {
			computeCores = 0
			for _, e := range compute {
				if int(e.Core) >= computeCores {
					computeCores = int(e.Core) + 1
				}
			}
		}
		st := trace.Summarize(compute, computeCores)
		fmt.Printf("== node %d: %d tasks, span %v, occupancy %.0f%% ==\n",
			nd, st.Tasks, st.Span.Round(time.Microsecond), 100*st.Occupancy)
		for kind, med := range st.MedianByKind {
			fmt.Printf("  %-9s x%-5d median %v\n", kind, st.CountByKind[kind], med.Round(time.Microsecond))
		}
		fmt.Println("  core  tasks  stolen  busy        util")
		for _, cs := range trace.SummarizeCores(compute, computeCores) {
			fmt.Printf("  %4d  %5d  %6d  %-10v  %3.0f%%\n",
				cs.Core, cs.Tasks, cs.Stolen, cs.Busy.Round(time.Microsecond), 100*cs.Util)
		}
		if len(comm) > 0 {
			cs := trace.SummarizeComm(comm)
			util := 0.0
			if st.Span > 0 {
				util = float64(cs.Busy) / float64(st.Span)
			}
			fmt.Printf("  comm  %d wire msgs, %d transfers, %d bytes, busy %v, util %.0f%%\n",
				cs.Wire, cs.Transfers, cs.Bytes, cs.Busy.Round(time.Microsecond), 100*util)
			// Split-transform traces carry inner-task events; report how
			// much of the comm handling they covered (a trace-level
			// approximation of the engines' OverlapRatio, which times the
			// wire itself).
			if commActive, overlapped := trace.OverlapStats(events); commActive > 0 && st.CountByKind["inner"] > 0 {
				fmt.Printf("  overlap  %v of %v comm activity hidden behind inner tasks (%.0f%%)\n",
					time.Duration(overlapped).Round(time.Microsecond),
					time.Duration(commActive).Round(time.Microsecond),
					100*float64(overlapped)/float64(commActive))
			}
		}
		fmt.Print(trace.Gantt(events, cores, trace.GanttConfig{Width: *width}))
		fmt.Println()
	}
}
