// Command stencilrun executes or simulates one stencil configuration.
//
// Usage:
//
//	stencilrun -impl ca -machine NaCL -nodes 16 -n 23040 -tile 288 -steps 100 -stepsize 15
//	stencilrun -impl base -engine real -n 240 -tile 24 -nodes 4 -workers 4 -verify
//	stencilrun -impl petsc -machine Stampede2 -nodes 16 -n 55296
//	stencilrun -impl ca -machine NaCL -nodes 16 -ratio 0.4 -trace trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	castencil "castencil"
	"castencil/internal/core"
	"castencil/internal/petsc"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "stencilrun:", err)
	os.Exit(1)
}

func main() {
	impl := flag.String("impl", "ca", "implementation: base, ca, petsc")
	machineName := flag.String("machine", "NaCL", "machine model: NaCL or Stampede2")
	engine := flag.String("engine", "sim", "engine: sim (virtual time) or real (actual execution)")
	n := flag.Int("n", 23040, "global grid extent (N x N)")
	tile := flag.Int("tile", 288, "tile size")
	nodes := flag.Int("nodes", 16, "node count (perfect square)")
	steps := flag.Int("steps", 100, "iterations")
	stepSize := flag.Int("stepsize", 15, "CA step size")
	ratio := flag.Float64("ratio", 1, "kernel adjustment ratio (sim only)")
	workers := flag.Int("workers", 2, "workers per node (real engine)")
	sched := flag.String("sched", "steal", "real engine scheduler: "+castencil.SchedNames)
	coalesce := flag.String("coalesce", "off", "halo-bundle coalescing: "+castencil.CoalesceNames)
	verify := flag.Bool("verify", false, "real engine: compare against the sequential oracle")
	traceOut := flag.String("trace", "", "write a CSV trace to this file (sim: node 0; real: all nodes)")
	planMode := flag.Bool("plan", false, "run the automatic step-size planner instead of a single config")
	dotOut := flag.String("dot", "", "write the task graph in Graphviz DOT format to this file and exit (small configs only)")
	flag.Parse()

	p := 1
	for p*p < *nodes {
		p++
	}
	if p*p != *nodes {
		fail(fmt.Errorf("nodes = %d is not a perfect square", *nodes))
	}
	m, err := castencil.MachineByName(*machineName)
	if err != nil {
		fail(err)
	}
	coal, err := castencil.ParseCoalesce(*coalesce)
	if err != nil {
		fail(err)
	}
	cfg := castencil.Config{N: *n, TileRows: *tile, P: p, Steps: *steps, StepSize: *stepSize}

	if *dotOut != "" {
		variant := castencil.Base
		if *impl == "ca" {
			variant = castencil.CA
		}
		g, err := core.BuildGraph(variant, cfg)
		if err != nil {
			fail(err)
		}
		if len(g.Tasks) > 2000 {
			fail(fmt.Errorf("graph has %d tasks; DOT export is for small configs (<= 2000)", len(g.Tasks)))
		}
		f, err := os.Create(*dotOut)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := g.WriteDOT(f, fmt.Sprintf("%s N=%d", *impl, *n)); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d tasks)\n", *dotOut, len(g.Tasks))
		return
	}

	if *planMode {
		plan, err := castencil.AutoPlan(cfg, m, *ratio, nil)
		if err != nil {
			fail(err)
		}
		fmt.Printf("plan for %s, %d nodes, N=%d tile=%d ratio=%.2f:\n", m.Name, *nodes, *n, *tile, *ratio)
		for _, c := range plan.Candidates {
			name := "base"
			if c.StepSize > 0 {
				name = fmt.Sprintf("CA s=%d", c.StepSize)
			}
			marker := ""
			if c.StepSize == plan.BestStepSize {
				marker = "  <- recommended"
			}
			fmt.Printf("  %-9s %10.1f GFLOP/s%s\n", name, c.GFLOPS, marker)
		}
		return
	}

	if *impl == "petsc" {
		perf, err := petsc.ModelPerf(m, *n, *nodes, *steps)
		if err != nil {
			fail(err)
		}
		fmt.Printf("petsc on %s, %d nodes (%d ranks): %.1f GFLOP/s, iter %v (kernel %v, comm %v)\n",
			m.Name, *nodes, perf.Ranks, perf.GFLOPS, perf.IterTime, perf.KernelTime, perf.CommTime)
		return
	}

	var variant castencil.Variant
	switch *impl {
	case "base":
		variant = castencil.Base
	case "ca":
		variant = castencil.CA
	default:
		fail(fmt.Errorf("unknown impl %q", *impl))
	}

	switch *engine {
	case "sim":
		opts := castencil.SimOptions{Machine: m, Ratio: *ratio, Coalesce: coal}
		var tr *castencil.Trace
		if *traceOut != "" {
			tr = castencil.NewTrace()
			opts.Trace = tr
			opts.TraceNode = 0
		}
		res, err := castencil.Simulate(variant, cfg, opts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s on %s, %d nodes, N=%d tile=%d steps=%d", variant, m.Name, *nodes, *n, *tile, *steps)
		if variant == castencil.CA {
			fmt.Printf(" s=%d", *stepSize)
		}
		if *ratio != 1 {
			fmt.Printf(" ratio=%.2f", *ratio)
		}
		fmt.Printf("\n  %.1f GFLOP/s, makespan %v, %d messages, %.1f MB sent\n",
			res.GFLOPS, res.Makespan, res.Messages, float64(res.BytesSent)/1e6)
		if res.Bundles > 0 {
			fmt.Printf("  coalescing (%s): %d bundles carrying %d transfers, fill %.1f\n",
				coal, res.Bundles, res.Segments, res.BundleFill())
		}
		if tr != nil {
			f, err := os.Create(*traceOut)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			if err := tr.WriteCSV(f); err != nil {
				fail(err)
			}
			fmt.Printf("  trace of node 0 written to %s (%d events)\n", *traceOut, tr.Len())
		}
	case "real":
		s, pol, err := castencil.ParseSched(*sched)
		if err != nil {
			fail(err)
		}
		opts := castencil.ExecOptions{Workers: *workers, Sched: s, Policy: pol, Coalesce: coal}
		var tr *castencil.Trace
		if *traceOut != "" {
			tr = castencil.NewTrace()
			opts.Trace = tr
			opts.TraceComm = true
		}
		res, err := castencil.RunReal(variant, cfg, opts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s real run (%s): %d nodes x %d workers, elapsed %v, %d messages, %.1f MB sent\n",
			variant, s, *nodes, *workers, res.Exec.Elapsed, res.Exec.Messages, float64(res.Exec.BytesSent)/1e6)
		if res.Exec.BundlesSent > 0 {
			fmt.Printf("  coalescing (%s): %d bundles carrying %d transfers, fill %.1f\n",
				coal, res.Exec.BundlesSent, res.Exec.BundleSegments, res.Exec.BundleFill())
		}
		if s == castencil.WorkStealing {
			hits, steals, parks := 0, 0, 0
			for n := range res.Exec.NodeLocalHits {
				hits += res.Exec.NodeLocalHits[n]
				steals += res.Exec.NodeSteals[n]
				parks += res.Exec.NodeParks[n]
			}
			fmt.Printf("  scheduler: %d local deque hits, %d steals, %d parks across %d tasks\n",
				hits, steals, parks, res.Exec.Completed)
		}
		if tr != nil {
			f, err := os.Create(*traceOut)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			if err := tr.WriteCSV(f); err != nil {
				fail(err)
			}
			fmt.Printf("  trace written to %s (%d events)\n", *traceOut, tr.Len())
		}
		if *verify {
			if d := castencil.Verify(cfg, res); d == 0 {
				fmt.Println("  verified: bitwise identical to the sequential oracle")
			} else {
				fail(fmt.Errorf("verification failed: max diff %v", d))
			}
		}
	default:
		fail(fmt.Errorf("unknown engine %q", *engine))
	}
}
