// Command stencilrun executes or simulates one stencil configuration.
//
// Usage:
//
//	stencilrun -impl ca -machine NaCL -nodes 16 -n 23040 -tile 288 -steps 100 -stepsize 15
//	stencilrun -impl base -engine real -n 240 -tile 24 -nodes 4 -workers 4 -verify
//	stencilrun -impl base -engine real -n 240 -tile 24 -nodes 4 -fault drop=0.02,seed=7 -verify
//	stencilrun -impl petsc -machine Stampede2 -nodes 16 -n 55296
//	stencilrun -impl ca -machine NaCL -nodes 16 -ratio 0.4 -trace trace.csv
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	castencil "castencil"
	"castencil/internal/cli"
	"castencil/internal/core"
	"castencil/internal/petsc"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "stencilrun:", err)
	os.Exit(1)
}

func main() {
	impl := flag.String("impl", "ca", "implementation: base, ca, wf, petsc")
	machineFlag := cli.MachineVar(flag.CommandLine, "NaCL")
	engine := flag.String("engine", "sim", "engine: sim (virtual time) or real (actual execution)")
	n := flag.Int("n", 23040, "global grid extent (N x N)")
	tile := flag.Int("tile", 288, "tile size")
	nodes := flag.Int("nodes", 16, "node count (perfect square)")
	steps := flag.Int("steps", 100, "iterations")
	stepSize := flag.Int("stepsize", 15, "CA step size")
	wavefrontFlag := cli.WavefrontVar(flag.CommandLine, 10)
	ratio := flag.Float64("ratio", 1, "kernel adjustment ratio (sim only)")
	workers := flag.Int("workers", 2, "workers per node (real engine)")
	schedFlag := cli.SchedVar(flag.CommandLine, "steal")
	coalesceFlag := cli.CoalesceVar(flag.CommandLine, "off")
	transformFlag := cli.TransformVar(flag.CommandLine, "none")
	faultFlag := cli.FaultVar(flag.CommandLine)
	stealFlag := cli.StealVar(flag.CommandLine, "")
	rankFlag := cli.RankVar(flag.CommandLine)
	ranksFlag := cli.RanksVar(flag.CommandLine)
	verify := flag.Bool("verify", false, "real engine: compare against the sequential oracle")
	traceOut := flag.String("trace", "", "write a CSV trace to this file (sim: node 0; real: all nodes)")
	planMode := flag.Bool("plan", false, "run the automatic step-size planner instead of a single config")
	autoPlan := flag.Bool("autoplan", false, "plan first, then execute the recommended configuration (overrides -impl/-stepsize)")
	dotOut := flag.String("dot", "", "write the task graph in Graphviz DOT format to this file and exit (small configs only)")
	flag.Parse()

	rank, rankAddrs, distributed, err := cli.ResolveRanks(rankFlag, ranksFlag)
	if err != nil {
		fail(err)
	}
	if distributed && *engine != "real" {
		fail(fmt.Errorf("-ranks needs -engine real (the simulator is single-process)"))
	}
	if stealFlag.Mode != castencil.StealOff && !distributed {
		fail(fmt.Errorf("-steal %s needs -ranks (inter-node stealing is a distributed-run feature)", stealFlag.Name))
	}

	p := 1
	for p*p < *nodes {
		p++
	}
	if p*p != *nodes {
		fail(fmt.Errorf("nodes = %d is not a perfect square", *nodes))
	}
	m := machineFlag.Model
	cfg := castencil.Config{N: *n, TileRows: *tile, P: p, Steps: *steps, StepSize: *stepSize, Wavefront: wavefrontFlag.N, Transform: transformFlag.Mode}

	if *dotOut != "" {
		variant := castencil.Base
		switch *impl {
		case "ca":
			variant = castencil.CA
		case "wf":
			variant = castencil.WF
		}
		g, err := core.BuildGraph(variant, cfg)
		if err != nil {
			fail(err)
		}
		if len(g.Tasks) > 2000 {
			fail(fmt.Errorf("graph has %d tasks; DOT export is for small configs (<= 2000)", len(g.Tasks)))
		}
		f, err := os.Create(*dotOut)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := g.WriteDOT(f, fmt.Sprintf("%s N=%d", *impl, *n)); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d tasks)\n", *dotOut, len(g.Tasks))
		return
	}

	if *planMode {
		plan, err := castencil.AutoPlan(cfg, m, *ratio, nil)
		if err != nil {
			fail(err)
		}
		fmt.Printf("plan for %s, %d nodes, N=%d tile=%d ratio=%.2f:\n", m.Name, *nodes, *n, *tile, *ratio)
		for i, c := range plan.Candidates {
			marker := ""
			if i == 0 {
				marker = "  <- recommended"
			}
			fmt.Printf("  %-9s %10.1f GFLOP/s%s\n", c, c.GFLOPS, marker)
		}
		return
	}

	if *autoPlan {
		plan, err := castencil.AutoPlan(cfg, m, *ratio, nil)
		if err != nil {
			fail(err)
		}
		switch {
		case plan.UseCA():
			*impl = "ca"
			cfg.StepSize = plan.BestStepSize
			fmt.Printf("autoplan: CA s=%d (%.1f GFLOP/s predicted on %s)\n", plan.BestStepSize, plan.BestGFLOPS, m.Name)
		case plan.UseWavefront():
			*impl = "wf"
			cfg.Wavefront = plan.BestWidth
			fmt.Printf("autoplan: WF w=%d (%.1f GFLOP/s predicted on %s)\n", plan.BestWidth, plan.BestGFLOPS, m.Name)
		default:
			*impl = "base"
			fmt.Printf("autoplan: base (%.1f GFLOP/s predicted on %s)\n", plan.BestGFLOPS, m.Name)
		}
	}

	if *impl == "petsc" {
		perf, err := petsc.ModelPerf(m, *n, *nodes, *steps)
		if err != nil {
			fail(err)
		}
		fmt.Printf("petsc on %s, %d nodes (%d ranks): %.1f GFLOP/s, iter %v (kernel %v, comm %v)\n",
			m.Name, *nodes, perf.Ranks, perf.GFLOPS, perf.IterTime, perf.KernelTime, perf.CommTime)
		return
	}

	var variant castencil.Variant
	switch *impl {
	case "base":
		variant = castencil.Base
	case "ca":
		variant = castencil.CA
	case "wf":
		variant = castencil.WF
	default:
		fail(fmt.Errorf("unknown impl %q", *impl))
	}

	switch *engine {
	case "sim":
		opts := []castencil.Option{
			castencil.WithMachine(m),
			castencil.WithRatio(*ratio),
			castencil.WithCoalesce(coalesceFlag.Mode),
			castencil.WithFaultPlan(faultFlag.Plan),
		}
		var tr *castencil.Trace
		if *traceOut != "" {
			tr = castencil.NewTrace()
			opts = append(opts, castencil.WithTrace(tr), castencil.WithTraceNode(0))
		}
		res, err := castencil.Sim(variant, cfg, opts...)
		if err != nil {
			reportFault(err)
			fail(err)
		}
		fmt.Printf("%s on %s, %d nodes, N=%d tile=%d steps=%d", variant, m.Name, *nodes, *n, *tile, *steps)
		if variant == castencil.CA {
			fmt.Printf(" s=%d", cfg.StepSize)
		}
		if variant == castencil.WF {
			fmt.Printf(" w=%d", cfg.Wavefront)
		}
		if *ratio != 1 {
			fmt.Printf(" ratio=%.2f", *ratio)
		}
		fmt.Printf("\n  %.1f GFLOP/s, makespan %v, %d messages, %.1f MB sent\n",
			res.GFLOPS, res.Makespan, res.Messages, float64(res.BytesSent)/1e6)
		if res.Bundles > 0 {
			fmt.Printf("  coalescing (%s): %d bundles carrying %d transfers, fill %.1f\n",
				coalesceFlag.Mode, res.Bundles, res.Segments, res.BundleFill())
		}
		if res.Fault.Any() {
			fmt.Printf("  fault plan %q masked: %v\n", faultFlag.Spec, res.Fault)
		}
		if res.InteriorTasks > 0 {
			fmt.Printf("  split: %d interior + %d border tasks, overlap ratio %.2f\n",
				res.InteriorTasks, res.BorderTasks, res.OverlapRatio)
		}
		if tr != nil {
			writeTrace(tr, *traceOut, "trace of node 0")
		}
	case "real":
		opts := []castencil.Option{
			castencil.WithWorkers(*workers),
			castencil.WithSched(schedFlag.Sched),
			castencil.WithPolicy(schedFlag.Policy),
			castencil.WithCoalesce(coalesceFlag.Mode),
			castencil.WithFaultPlan(faultFlag.Plan),
		}
		if distributed {
			opts = append(opts, castencil.WithCluster(castencil.ClusterOptions{
				Rank:  rank,
				Ranks: rankAddrs,
				Steal: castencil.StealPolicy{Mode: stealFlag.Mode, Machine: m},
			}))
		}
		var tr *castencil.Trace
		if *traceOut != "" {
			tr = castencil.NewTrace()
			opts = append(opts, castencil.WithTrace(tr), castencil.WithTraceComm())
		}
		res, err := castencil.Run(variant, cfg, opts...)
		if err != nil {
			reportFault(err)
			fail(err)
		}
		if distributed && rank != 0 {
			// Followers hold no grid and only their local counter slice;
			// rank 0 prints the run's global view.
			fmt.Printf("%s rank %d/%d done: elapsed %v, local %d messages, %.1f MB sent\n",
				variant, rank, len(rankAddrs), res.Exec.Elapsed, res.Exec.Messages, float64(res.Exec.BytesSent)/1e6)
			if tr != nil {
				writeTrace(tr, *traceOut, "trace")
			}
			return
		}
		fmt.Printf("%s real run (%s): %d nodes x %d workers, elapsed %v, %d messages, %.1f MB sent\n",
			variant, schedFlag.Sched, *nodes, *workers, res.Exec.Elapsed, res.Exec.Messages, float64(res.Exec.BytesSent)/1e6)
		if distributed {
			fmt.Printf("  distributed: %d ranks, grid sha256 %s\n", len(rankAddrs), castencil.GridSHA256(res.Grid))
			if stealFlag.Mode != castencil.StealOff || res.Exec.MigratedTasks > 0 {
				fmt.Printf("  steal (%s): %d tasks migrated, %.1f KB migration traffic, %d remote steals\n",
					stealFlag.Mode, res.Exec.MigratedTasks, float64(res.Exec.MigratedBytes)/1e3, res.Exec.StealsRemote)
			}
		}
		if res.Exec.BundlesSent > 0 {
			fmt.Printf("  coalescing (%s): %d bundles carrying %d transfers, fill %.1f\n",
				coalesceFlag.Mode, res.Exec.BundlesSent, res.Exec.BundleSegments, res.Exec.BundleFill())
		}
		if res.Exec.Fault.Any() {
			fmt.Printf("  fault plan %q masked: %v\n", faultFlag.Spec, res.Exec.Fault)
		}
		if res.Exec.InteriorTasks > 0 {
			fmt.Printf("  split: %d interior + %d border tasks, overlap ratio %.2f\n",
				res.Exec.InteriorTasks, res.Exec.BorderTasks, res.Exec.OverlapRatio)
		}
		if schedFlag.Sched == castencil.WorkStealing {
			hits, steals, parks := 0, 0, 0
			for n := range res.Exec.NodeLocalHits {
				hits += res.Exec.NodeLocalHits[n]
				steals += res.Exec.NodeSteals[n]
				parks += res.Exec.NodeParks[n]
			}
			fmt.Printf("  scheduler: %d local deque hits, %d steals, %d parks across %d tasks\n",
				hits, steals, parks, res.Exec.Completed)
		}
		if tr != nil {
			writeTrace(tr, *traceOut, "trace")
		}
		if *verify {
			if d := castencil.Verify(cfg, res); d == 0 {
				fmt.Println("  verified: bitwise identical to the sequential oracle")
			} else {
				fail(fmt.Errorf("verification failed: max diff %v", d))
			}
		}
	default:
		fail(fmt.Errorf("unknown engine %q", *engine))
	}
}

// reportFault surfaces the structured degradation report when a run failed
// because a transfer could not be acknowledged within the recovery deadline.
func reportFault(err error) {
	var rep *castencil.FaultReport
	if errors.As(err, &rep) {
		fmt.Fprintf(os.Stderr, "stencilrun: degraded: %v\n", rep.Stats)
	}
}

func writeTrace(tr *castencil.Trace, path, what string) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := tr.WriteCSV(f); err != nil {
		fail(err)
	}
	fmt.Printf("  %s written to %s (%d events)\n", what, path, tr.Len())
}
