// Command stencilgate is the fleet gateway: one HTTP front door over a set
// of stencild backends, adding a content-addressed result cache (jobs are
// deterministic, so a repeated spec is served from cache without touching
// any backend, and identical in-flight submissions collapse into one
// execution), weighted fair-share admission across tenants (deficit round
// robin, 429 + Retry-After backpressure), and sharded routing (rendezvous
// hashing, health-probe ejection, bounded failover of idempotent jobs).
//
// Usage:
//
//	# two backends, a weighted tenant table, a 64 MiB cache
//	stencild -listen :8421 & stencild -listen :8422 &
//	stencilgate -listen :8420 -backends 127.0.0.1:8421,127.0.0.1:8422 \
//	    -tenants prod=4,batch=1 -cache-bytes 64m
//
//	# submit through the gateway exactly as to a daemon; "tenant" picks the
//	# fair-share queue, "cache":"bypass" forces re-execution
//	curl -s localhost:8420/v1/jobs -d '{"n":960,"tile":48,"steps":60,"step_size":6,"tenant":"prod"}'
//	curl -s localhost:8420/v1/jobs/gw-000001/result
//
// SIGTERM or SIGINT starts a graceful drain: admission closes, queued jobs
// cancel (no backend ever saw them), running jobs get the -drain window.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"castencil/internal/cli"
	"castencil/internal/gateway"
)

func main() {
	listen := cli.ListenVar(flag.CommandLine, ":8420")
	backends := cli.BackendsVar(flag.CommandLine)
	tenants := cli.TenantsVar(flag.CommandLine)
	cacheEntries := flag.Int("cache-entries", 512, "result-cache entry cap")
	cacheBytes := cli.SizeVar(flag.CommandLine, "cache-bytes", 256<<20, "result-cache byte cap (k/m/g suffixes)")
	cacheOff := flag.Bool("cache-off", false, "disable the result cache and singleflight entirely")
	tenantQueue := flag.Int("tenant-queue", 64, "per-tenant admission queue bound (past it: 429)")
	inflight := flag.Int("inflight", 0, "jobs dispatched onto the fleet concurrently (0 = 2x backends)")
	retries := flag.Int("retries", 3, "failover attempts per job past the first")
	probe := flag.Duration("probe", 250*time.Millisecond, "backend health-probe interval")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain window before cancelling jobs")
	flag.Parse()

	if len(backends.Addrs) == 0 {
		fmt.Fprintln(os.Stderr, "stencilgate: -backends is required (comma-separated stencild addresses)")
		os.Exit(1)
	}

	g, err := gateway.New(gateway.Config{
		Backends:      backends.Addrs,
		CacheEntries:  *cacheEntries,
		CacheBytes:    cacheBytes.Bytes,
		CacheOff:      *cacheOff,
		TenantWeights: tenants.Weights,
		TenantQueue:   *tenantQueue,
		MaxInflight:   *inflight,
		Retries:       *retries,
		ProbeInterval: *probe,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "stencilgate:", err)
		os.Exit(1)
	}

	srv := &http.Server{Addr: listen.Addr, Handler: gateway.Handler(g)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("stencilgate listening on %s (%d backends, cache %d entries / %d bytes)",
		listen.Addr, len(backends.Addrs), *cacheEntries, cacheBytes.Bytes)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "stencilgate:", err)
		os.Exit(1)
	case s := <-sig:
		log.Printf("stencilgate: %s, draining (up to %v)", s, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		log.Printf("stencilgate: drain window expired, jobs cancelled: %v", err)
	}
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer httpCancel()
	if err := srv.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("stencilgate: http shutdown: %v", err)
	}
	<-errCh
	log.Print("stencilgate: drained, exiting")
}
