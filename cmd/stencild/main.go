// Command stencild is the stencil-as-a-service daemon: an HTTP front end
// over the internal/server job manager, running stencil configurations on
// the Run/Sim facade with bounded admission, priority classes, per-job
// deadlines and cancellation, streaming progress, and Prometheus metrics.
//
// Usage:
//
//	stencild -listen :8421 -maxjobs 2 -queue 64
//
//	# two-process distributed deployment: the -ranks list is the mesh
//	# (netcomm) address of every rank, distinct from the HTTP -listen
//	# address; distributed jobs (spec field "ranks") go to rank 0
//	stencild -listen :8421 -rank 0 -ranks 127.0.0.1:9421,127.0.0.1:9422 &
//	stencild -listen :8422 -rank 1 -ranks 127.0.0.1:9421,127.0.0.1:9422 &
//	curl -s localhost:8421/v1/jobs -d '{"n":240,"tile":24,"steps":50,"ranks":2}'
//
//	# submit a job (fields mirror the library's functional options)
//	curl -s localhost:8421/v1/jobs -d '{"n":1440,"tile":36,"steps":100,"step_size":15,"seed":7}'
//
//	# watch it
//	curl -s localhost:8421/v1/jobs/job-000001
//	curl -sN localhost:8421/v1/jobs/job-000001/stream
//
//	# fetch the terminal result (grid checksum; ?grid=1 adds the data)
//	curl -s localhost:8421/v1/jobs/job-000001/result
//
//	# scrape metrics
//	curl -s localhost:8421/metrics
//
// SIGTERM or SIGINT starts a graceful drain: admission closes (429/503 on
// new submissions), queued and running jobs get -drain to finish, then
// stragglers are cancelled through their contexts before the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	castencil "castencil"
	"castencil/internal/cli"
	"castencil/internal/metrics"
	"castencil/internal/server"
)

func main() {
	listen := cli.ListenVar(flag.CommandLine, ":8421")
	maxJobs := cli.MaxJobsVar(flag.CommandLine, 2)
	queue := cli.QueueVar(flag.CommandLine, 64)
	budget := flag.Int("workers", 0, "total worker budget divided across running jobs (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "default per-job deadline (0 = none; jobs may set timeout_ms)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain window before cancelling jobs")
	rankFlag := cli.RankVar(flag.CommandLine)
	ranksFlag := cli.RanksVar(flag.CommandLine)
	flag.Parse()

	rank, rankAddrs, distributed, err := cli.ResolveRanks(rankFlag, ranksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stencild:", err)
		os.Exit(1)
	}

	// The mesh connects before HTTP comes up: a distributed daemon that
	// cannot reach its peers should fail (or block) at startup, not at the
	// first job. The shared registry makes the transport's stencild_net_*
	// families appear on the same /metrics page as the job counters.
	reg := metrics.NewRegistry()
	var transport *castencil.NetTransport
	if distributed {
		log.Printf("stencild: rank %d/%d connecting mesh %v", rank, len(rankAddrs), rankAddrs)
		t, err := castencil.NetConnect(rank, rankAddrs, castencil.NetOptions{Metrics: reg})
		if err != nil {
			fmt.Fprintln(os.Stderr, "stencild: mesh:", err)
			os.Exit(1)
		}
		defer t.Close()
		transport = t
		log.Printf("stencild: mesh up (%d ranks)", len(rankAddrs))
	}

	mgr := server.New(server.Config{
		MaxJobs:        maxJobs.N,
		QueueSize:      queue.N,
		WorkerBudget:   *budget,
		DefaultTimeout: *timeout,
		Registry:       reg,
		Transport:      transport,
	})

	folCtx, folCancel := context.WithCancel(context.Background())
	defer folCancel()
	if distributed && rank != 0 {
		go func() {
			if err := mgr.RunFollower(folCtx, transport); err != nil && !errors.Is(err, context.Canceled) {
				log.Printf("stencild: follower loop: %v", err)
			}
		}()
	}
	srv := &http.Server{Addr: listen.Addr, Handler: server.Handler(mgr)}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("stencild listening on %s (maxjobs %d, queue %d)", listen.Addr, maxJobs.N, queue.N)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		// Listener died before any signal (port in use, ...).
		fmt.Fprintln(os.Stderr, "stencild:", err)
		os.Exit(1)
	case s := <-sig:
		log.Printf("stencild: %s, draining (up to %v)", s, *drain)
	}

	// Drain order: jobs first (the manager flips to draining, so /healthz
	// reports 503 and submissions are refused while in-flight status and
	// result requests still work), then the HTTP server itself.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		log.Printf("stencild: drain window expired, jobs cancelled: %v", err)
	}
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer httpCancel()
	if err := srv.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("stencild: http shutdown: %v", err)
	}
	<-errCh // ListenAndServe has returned ErrServerClosed
	log.Print("stencild: drained, exiting")
}
