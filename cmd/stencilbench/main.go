// Command stencilbench regenerates the paper's tables and figures from the
// calibrated machine models and the discrete-event engine.
//
// Usage:
//
//	stencilbench -exp all            # every table/figure (paper-scale, slow)
//	stencilbench -exp fig8 -quick    # one experiment, quarter-scale
//	stencilbench -exp table1 -host   # include a real STREAM run of this host
//	stencilbench -exp fig10 -gantt 120
//	stencilbench -exp fig10 -cpuprofile cpu.out -memprofile mem.out
//
// The experiment list is the bench package's registry; -exp help text,
// validation, and the "all" execution order all derive from it.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"castencil/internal/bench"
	"castencil/internal/cli"
)

func main() {
	exp := flag.String("exp", "all", "experiment: "+strings.Join(bench.ExperimentIDs(), ", "))
	quick := flag.Bool("quick", false, "quarter-scale workloads, 10 iterations (fast)")
	host := flag.Bool("host", false, "table1: run a real STREAM benchmark on this host too")
	gantt := flag.Int("gantt", 0, "fig10: also print text Gantt charts of the given width")
	steps := flag.Int("steps", 0, "override iteration count")
	sched := cli.SchedVar(flag.CommandLine, "")
	coalesce := cli.CoalesceVar(flag.CommandLine, "")
	transform := cli.TransformVar(flag.CommandLine, "")
	faultSpec := cli.FaultVar(flag.CommandLine)
	steal := cli.StealVar(flag.CommandLine, "")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile taken after the experiments to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle live-object accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	p := bench.PaperParams()
	if *quick {
		p = bench.QuickParams()
	}
	if *steps > 0 {
		p.Steps = *steps
	}
	p.Sched = sched.Name
	p.Coalesce = coalesce.Name
	p.Transform = transform.Name
	p.Fault = faultSpec.Spec
	p.Steal = steal.Name
	o := bench.ExpOpts{Host: *host, GanttWidth: *gantt}

	valid := bench.ExperimentIDs()
	known := false
	for _, v := range valid {
		if *exp == v {
			known = true
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (valid: %s)\n", *exp, strings.Join(valid, ", "))
		os.Exit(2)
	}

	ran := 0
	start := time.Now()
	for _, e := range bench.Experiments() {
		if *exp != "all" && *exp != e.ID {
			continue
		}
		if err := e.Run(p, o, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		ran++
	}
	fmt.Printf("ran %d experiment(s) in %v\n", ran, time.Since(start).Round(time.Millisecond))
}
