// Command stencilbench regenerates the paper's tables and figures from the
// calibrated machine models and the discrete-event engine.
//
// Usage:
//
//	stencilbench -exp all            # every table/figure (paper-scale, slow)
//	stencilbench -exp fig8 -quick    # one experiment, quarter-scale
//	stencilbench -exp table1 -host   # include a real STREAM run of this host
//	stencilbench -exp fig10 -gantt 120
//	stencilbench -exp fig10 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"castencil/internal/bench"
	"castencil/internal/cli"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, fig5, fig6, fig7, fig8, fig9, fig10, roofline, headline, future, ninepoint, autoplan, sched, weak, coalesce, fault, serve")
	quick := flag.Bool("quick", false, "quarter-scale workloads, 10 iterations (fast)")
	host := flag.Bool("host", false, "table1: run a real STREAM benchmark on this host too")
	gantt := flag.Int("gantt", 0, "fig10: also print text Gantt charts of the given width")
	steps := flag.Int("steps", 0, "override iteration count")
	sched := cli.SchedVar(flag.CommandLine, "")
	coalesce := cli.CoalesceVar(flag.CommandLine, "")
	faultSpec := cli.FaultVar(flag.CommandLine)
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile taken after the experiments to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle live-object accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	p := bench.PaperParams()
	if *quick {
		p = bench.QuickParams()
	}
	if *steps > 0 {
		p.Steps = *steps
	}
	p.Sched = sched.Name
	p.Coalesce = coalesce.Name
	p.Fault = faultSpec.Spec

	want := func(id string) bool { return *exp == "all" || *exp == id }
	ran := 0
	start := time.Now()

	type runner func() error
	runners := []struct {
		id string
		fn runner
	}{
		{"table1", func() error { bench.TableI(p, *host).WriteText(os.Stdout); return nil }},
		{"fig5", func() error { bench.Fig5(p).WriteText(os.Stdout); return nil }},
		{"roofline", func() error { bench.Roofline(p).WriteText(os.Stdout); return nil }},
		{"fig6", func() error {
			r, err := bench.Fig6(p)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"fig7", func() error {
			r, err := bench.Fig7(p)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"fig8", func() error {
			r, err := bench.Fig8(p)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"fig9", func() error {
			r, err := bench.Fig9(p)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"fig10", func() error {
			width := *gantt
			if width <= 0 {
				width = 100
			}
			r, results, err := bench.Fig10(p, width)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			if *gantt > 0 {
				for _, res := range results {
					fmt.Printf("-- %s trace, node %d --\n%s\n", res.Variant, res.TraceNode, res.Gantt)
				}
			}
			return nil
		}},
		{"headline", func() error {
			r, err := bench.Headline(p)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"future", func() error {
			r, err := bench.Future(p)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"ninepoint", func() error {
			r, err := bench.NinePoint(p)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"autoplan", func() error {
			r, err := bench.AutoPlanReport(p)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"sched", func() error {
			r, err := bench.Schedulers(p)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"weak", func() error {
			r, err := bench.WeakScaling(p)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"coalesce", func() error {
			r, err := bench.Coalesce(p)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"fault", func() error {
			r, err := bench.FaultAblation(p)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"serve", func() error {
			r, err := bench.Serve(p)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
	}

	valid := make([]string, 0, len(runners)+1)
	valid = append(valid, "all")
	for _, r := range runners {
		valid = append(valid, r.id)
	}
	known := false
	for _, v := range valid {
		if *exp == v {
			known = true
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (valid: %s)\n", *exp, strings.Join(valid, ", "))
		os.Exit(2)
	}

	for _, r := range runners {
		if !want(r.id) {
			continue
		}
		if err := r.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.id, err)
			os.Exit(1)
		}
		ran++
	}
	fmt.Printf("ran %d experiment(s) in %v\n", ran, time.Since(start).Round(time.Millisecond))
}
