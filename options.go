package castencil

import (
	"context"
	"fmt"

	"castencil/internal/core"
	"castencil/internal/fault"
	"castencil/internal/netcomm"
	"castencil/internal/ptg"
	"castencil/internal/runtime"
)

// This file is the redesigned run API: one RunOptions bag configured by
// functional options, consumed by the Run (real execution) and Sim
// (virtual-time prediction) entry points. The older RunReal/Simulate
// entry points with their engine-specific option structs remain as thin
// deprecated wrappers; both APIs drive the same engines and produce
// bitwise-identical results for equivalent settings.
//
//	res, err := castencil.Run(castencil.CA, cfg,
//	    castencil.WithSched(castencil.WorkStealing),
//	    castencil.WithCoalesce(castencil.CoalesceAuto),
//	    castencil.WithFaultPlan(plan))

// FaultPlan is a deterministic, seedable fault-injection schedule: dropped,
// duplicated, delayed and reordered wire messages, transiently slow cores,
// comm-thread stalls and whole-node pauses. Message-level decisions are
// pure functions of (seed, message identity), so the real runtime and the
// virtual-time simulator inject byte-identical schedules for the same
// plan. Build one directly or parse a spec string with ParseFaultPlan.
type FaultPlan = fault.Plan

// FaultRecovery is the reliable-transport policy layered under a fault
// plan: ack timeout with exponential backoff, capped, and the degradation
// deadline past which an unacknowledged transfer fails the run with a
// structured *FaultReport instead of hanging.
type FaultRecovery = fault.Recovery

// FaultReport is the structured error a run returns when a transfer stays
// unacknowledged past the recovery deadline (extract it with errors.As).
type FaultReport = fault.Report

// FaultStats counts injected faults and the recovery work that masked
// them; available on both engines' results.
type FaultStats = fault.Stats

// Fault-plan building blocks for time-domain faults.
type (
	SlowCore  = fault.SlowCore
	CommStall = fault.CommStall
	NodePause = fault.NodePause
)

// FaultSpecSyntax documents the -fault spec grammar ParseFaultPlan
// accepts, for flag help.
const FaultSpecSyntax = fault.SpecSyntax

// ParseFaultPlan parses a command-line fault spec such as
// "drop=0.01,dup=0.02,seed=7" ("", "off" and "none" mean no plan).
func ParseFaultPlan(spec string) (*FaultPlan, error) { return fault.ParsePlan(spec) }

// DefaultFaultRecovery returns the default reliable-transport policy —
// what a fault plan that drops, duplicates or pauses enables on its own
// when no explicit recovery is configured.
func DefaultFaultRecovery() *FaultRecovery { return fault.DefaultRecovery() }

// Interceptor wraps every inter-node message of a real run (testing hook;
// recovery traffic such as acks bypasses it).
type Interceptor = runtime.Interceptor

// RunOptions is the unified option bag for both execution engines. The
// zero value is a sensible default (one worker per node, shared-queue
// FIFO scheduling, no coalescing, no faults). Construct it through
// functional options to Run and Sim rather than literally — new fields
// will be added without breaking that style.
type RunOptions struct {
	// Workers is the number of compute goroutines per virtual node in a
	// real run (default 1).
	Workers int
	// Sched and Policy select the real runtime's scheduler architecture
	// and ready-queue discipline. SimFIFO orders the simulator's wait
	// queue FIFO instead of its default priority discipline (the
	// simulator's scheduling is a separate, simpler model).
	Sched   Sched
	Policy  Policy
	SimFIFO bool
	// Coalesce selects halo-bundle coalescing on either engine.
	Coalesce CoalesceMode
	// Fault injects a deterministic fault schedule; Recovery overrides the
	// reliable-transport policy (nil auto-enables the default for plans
	// that drop, duplicate or pause).
	Fault    *FaultPlan
	Recovery *FaultRecovery
	// Trace collects per-task events (real or virtual time). TraceComm
	// additionally records wire events in a real run; TraceNode limits
	// collection to one node in a simulated run (-1 = all nodes).
	Trace     *Trace
	TraceComm bool
	TraceNode int32
	// Intercept wraps every inter-node message of a real run.
	Intercept Interceptor
	// Machine is the cluster model a simulated run prices against
	// (required by Sim, unused by Run).
	Machine *Machine
	// Ratio is the paper's kernel-adjustment ratio for simulated runs
	// (0 or 1 = full kernel).
	Ratio float64
	// Wavefront, when positive, overrides Config.Wavefront — the WF block
	// width — for either engine (ignored by the other variants).
	Wavefront int
	// Transform, when not TransformNone, overrides Config.Transform — the
	// graph-transformation pass applied before execution — for either
	// engine.
	Transform TransformMode
	// Rank and RankAddrs configure a true multi-process distributed real
	// run: RankAddrs is the full static member list (host:port per rank,
	// identical on every rank) and Rank is this process's index into it.
	// Run establishes the TCP mesh, executes this rank's slice of the
	// graph, and tears the mesh down. Only rank 0's RealResult carries the
	// gathered Grid (and the globally-summed counters); other ranks get a
	// nil Grid and their local counter view.
	Rank      int
	RankAddrs []string
	// Conduit reuses an already-established transport for a distributed
	// run instead of connecting per run (stencild and the bench harness
	// keep one mesh across many jobs). Overrides RankAddrs.
	Conduit Conduit
	// Steal configures inter-node work stealing for a distributed run
	// (zero value = off). Requires a transport implementing steal frames
	// (the TCP conduit does). In Sim, forced migrations are mirrored in
	// virtual time; dynamic modes have no virtual-time analogue and are
	// ignored.
	Steal StealPolicy
	// Ctx bounds the run on either engine: a cancelled or deadline-exceeded
	// context stops workers and communication goroutines promptly (task
	// granularity) and the run returns a *CancelError wrapping the context
	// error. Nil means the run cannot be interrupted.
	Ctx context.Context
	// Progress, when non-nil, receives (completed, total) task counts as
	// the run advances on either engine. Called from engine goroutines; it
	// must be cheap and concurrency-safe.
	Progress func(done, total int64)
}

// Option mutates RunOptions; pass any number to Run or Sim.
type Option func(*RunOptions)

// WithWorkers sets the number of compute goroutines per virtual node in a
// real run.
func WithWorkers(n int) Option { return func(o *RunOptions) { o.Workers = n } }

// WithSched selects the scheduler architecture (SharedQueue or
// WorkStealing) for a real run.
func WithSched(s Sched) Option { return func(o *RunOptions) { o.Sched = s } }

// WithPolicy selects the ready-queue discipline (FIFO, LIFO,
// PriorityOrder).
func WithPolicy(p Policy) Option { return func(o *RunOptions) { o.Policy = p } }

// WithSchedSpec applies a command-line scheduler name ("steal", "fifo",
// "priority", ...) — the functional-option form of ParseSched.
func WithSchedSpec(name string) (Option, error) {
	s, p, err := runtime.ParseSched(name)
	if err != nil {
		return nil, err
	}
	return func(o *RunOptions) { o.Sched, o.Policy = s, p }, nil
}

// WithSimFIFO orders the simulator's oversubscribed-core wait queue FIFO
// instead of the default priority discipline.
func WithSimFIFO() Option { return func(o *RunOptions) { o.SimFIFO = true } }

// WithCoalesce selects halo-bundle coalescing (CoalesceOff, CoalesceStep,
// CoalesceAuto).
func WithCoalesce(m CoalesceMode) Option { return func(o *RunOptions) { o.Coalesce = m } }

// WithFaultPlan injects a deterministic fault schedule. Plans that drop,
// duplicate or pause auto-enable the reliable transport with the default
// recovery policy unless WithRecovery overrides it.
func WithFaultPlan(p *FaultPlan) Option { return func(o *RunOptions) { o.Fault = p } }

// WithRecovery overrides the reliable-transport policy (ack timeout,
// backoff, degradation deadline). Passing a policy without a fault plan
// still sequences and acknowledges every message — useful for measuring
// recovery overhead on a clean wire.
func WithRecovery(r *FaultRecovery) Option { return func(o *RunOptions) { o.Recovery = r } }

// WithTrace collects per-task execution events into t.
func WithTrace(t *Trace) Option { return func(o *RunOptions) { o.Trace = t } }

// WithTraceComm additionally records one event per wire message handled
// by each node's communication goroutine (real runs; requires WithTrace).
func WithTraceComm() Option { return func(o *RunOptions) { o.TraceComm = true } }

// WithTraceNode limits simulated-run trace collection to one node
// (traces of large runs are expensive).
func WithTraceNode(n int32) Option { return func(o *RunOptions) { o.TraceNode = n } }

// WithIntercept wraps every inter-node message of a real run.
func WithIntercept(i Interceptor) Option { return func(o *RunOptions) { o.Intercept = i } }

// WithMachine sets the cluster model a simulated run prices against
// (required by Sim).
func WithMachine(m *Machine) Option { return func(o *RunOptions) { o.Machine = m } }

// WithRatio sets the paper's kernel-adjustment ratio for simulated runs.
func WithRatio(r float64) Option { return func(o *RunOptions) { o.Ratio = r } }

// WithWavefront sets the WF variant's block width — the number of time
// steps one fused wavefront task advances a tile, which is also its ghost
// depth and exchange period — overriding Config.Wavefront on either engine.
func WithWavefront(w int) Option { return func(o *RunOptions) { o.Wavefront = w } }

// WithTransform applies a graph-transformation pass (TransformSplit =
// inner/border task splitting for communication–computation overlap) to
// the built graph before execution, overriding Config.Transform on either
// engine. Transforms never change numerics — results stay bitwise
// identical to the untransformed graph.
func WithTransform(m TransformMode) Option { return func(o *RunOptions) { o.Transform = m } }

// WithRanks configures a multi-process distributed real run: addrs is the
// full static member list (one host:port per rank, the same list on every
// rank) and rank is this process's index into it. Run connects the mesh —
// one persistent TCP lane per rank pair — runs this rank's slice of the
// graph, and closes the mesh when the run returns. See DESIGN.md
// ("Distributed transport") for the wire protocol and failure semantics.
//
// Deprecated: use WithCluster(ClusterOptions{Rank: rank, Ranks: addrs}) —
// the unified distribution option, bitwise-equivalent for these settings
// and the only surface carrying the newer cluster knobs (work stealing,
// recovery).
func WithRanks(rank int, addrs []string) Option {
	return func(o *RunOptions) { o.Rank, o.RankAddrs = rank, addrs }
}

// WithTransport runs distributed over an already-connected transport (see
// NetConnect), reusing one mesh across many runs — the daemon's and bench
// harness's mode. The transport is not closed by Run.
//
// Deprecated: use WithCluster(ClusterOptions{Transport: c}) — bitwise-
// equivalent, and the only surface carrying the newer cluster knobs.
func WithTransport(c Conduit) Option { return func(o *RunOptions) { o.Conduit = c } }

// WithContext bounds the run with ctx on either engine: cancellation or a
// deadline stops the run promptly (nothing new starts, communication
// drains) and Run/Sim return a *CancelError that wraps the context error —
// errors.Is(err, context.Canceled) and errors.As(err, &cancelErr) both
// work. This is the load-bearing hook behind job cancellation and deadlines
// in the service layer (internal/server).
func WithContext(ctx context.Context) Option { return func(o *RunOptions) { o.Ctx = ctx } }

// WithProgress streams live (completed, total) task counts from either
// engine — at least once at completion and roughly every 1/128th of the
// graph in between. fn is called from engine goroutines and must be cheap
// and concurrency-safe.
func WithProgress(fn func(done, total int64)) Option {
	return func(o *RunOptions) { o.Progress = fn }
}

// CancelError is the structured error Run and Sim return when a context
// supplied via WithContext is cancelled or exceeds its deadline: it reports
// which engine stopped and how many tasks had executed, and unwraps to the
// context error.
type CancelError = ptg.CancelError

// BuildRunOptions folds functional options into a RunOptions (exposed so
// wrappers and tests can inspect the resolved configuration).
func BuildRunOptions(opts ...Option) RunOptions {
	o := RunOptions{TraceNode: -1}
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return o
}

// real converts the unified options to the real engine's option struct.
func (o RunOptions) real() ExecOptions {
	return ExecOptions{
		Workers:    o.Workers,
		Sched:      o.Sched,
		Policy:     o.Policy,
		Coalesce:   o.Coalesce,
		Fault:      o.Fault,
		Recovery:   o.Recovery,
		Trace:      o.Trace,
		TraceComm:  o.TraceComm,
		Intercept:  o.Intercept,
		Steal:      o.Steal.runtimePolicy(),
		Ctx:        o.Ctx,
		OnProgress: o.Progress,
	}
}

// sim converts the unified options to the simulator's option struct.
func (o RunOptions) sim() SimOptions {
	return SimOptions{
		Machine:    o.Machine,
		Ratio:      o.Ratio,
		FIFO:       o.SimFIFO,
		Trace:      o.Trace,
		TraceNode:  o.TraceNode,
		Coalesce:   o.Coalesce,
		Fault:      o.Fault,
		Recovery:   o.Recovery,
		Ctx:        o.Ctx,
		OnProgress: o.Progress,
		Steal:      o.simSteal(),
	}
}

// simSteal mirrors forced migrations into the simulator: the rank count
// comes from the cluster configuration (the transport if one is attached,
// the member list otherwise), exactly as a real run would place nodes.
// Dynamic steal modes are wall-clock-driven and have no virtual-time
// analogue, so only the forced schedule crosses over.
func (o RunOptions) simSteal() *core.SimSteal {
	if len(o.Steal.Force) == 0 {
		return nil
	}
	ranks := len(o.RankAddrs)
	if o.Conduit != nil {
		ranks = o.Conduit.Ranks()
	}
	return &core.SimSteal{Ranks: ranks, Force: o.Steal.Force}
}

// Run executes a stencil variant on the concurrent runtime — numerically
// exact, bitwise identical to the sequential reference whatever the
// scheduling, coalescing or (masked) fault injection. It replaces RunReal.
func Run(v Variant, cfg Config, opts ...Option) (*RealResult, error) {
	o := BuildRunOptions(opts...)
	if o.Wavefront > 0 {
		cfg.Wavefront = o.Wavefront
	}
	if o.Transform != core.TransformNone {
		cfg.Transform = o.Transform
	}
	ro := o.real()
	net := o.Conduit
	if net == nil && len(o.RankAddrs) > 0 {
		t, err := netcomm.Connect(netcomm.Options{
			Rank:     o.Rank,
			Addrs:    o.RankAddrs,
			Recovery: derefRecovery(o.Recovery),
			Trace:    traceForComm(o),
		})
		if err != nil {
			return nil, err
		}
		defer t.Close()
		net = t
	}
	if net != nil {
		ro.Dist = &runtime.Dist{Rank: net.Rank(), Ranks: net.Ranks(), Net: net}
	}
	return core.RunReal(v, cfg, ro)
}

// derefRecovery adapts the option bag's pointer form to netcomm's value
// form (zero value = defaults).
func derefRecovery(r *FaultRecovery) FaultRecovery {
	if r == nil {
		return FaultRecovery{}
	}
	return *r
}

// traceForComm forwards the run's trace to the transport only when comm
// tracing was requested, matching the in-process TraceComm gate.
func traceForComm(o RunOptions) *Trace {
	if o.TraceComm {
		return o.Trace
	}
	return nil
}

// Sim predicts a stencil variant's performance on a machine model in
// virtual time. WithMachine is required. It replaces Simulate.
func Sim(v Variant, cfg Config, opts ...Option) (*SimResult, error) {
	o := BuildRunOptions(opts...)
	if o.Machine == nil {
		return nil, fmt.Errorf("castencil: Sim requires WithMachine")
	}
	if o.Wavefront > 0 {
		cfg.Wavefront = o.Wavefront
	}
	if o.Transform != core.TransformNone {
		cfg.Transform = o.Transform
	}
	return core.Simulate(v, cfg, o.sim())
}
