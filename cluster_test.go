package castencil_test

import (
	"net"
	"reflect"
	"sync"
	"testing"

	castencil "castencil"
)

// connectFacadeMesh brings up a 2-rank loopback mesh through the public
// NetConnect surface, listeners pre-bound so there are no port races.
func connectFacadeMesh(t *testing.T) [2]*castencil.NetTransport {
	t.Helper()
	var lns [2]net.Listener
	addrs := make([]string, 2)
	for r := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[r] = ln
		addrs[r] = ln.Addr().String()
	}
	var ts [2]*castencil.NetTransport
	var errs [2]error
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ts[r], errs[r] = castencil.NetConnect(r, addrs, castencil.NetOptions{Listener: lns[r]})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range ts {
			if tr != nil {
				tr.Close()
			}
		}
	})
	return ts
}

// TestWithClusterMatchesDeprecatedOptions is the API-diff gate for the
// unified distribution surface: a WithCluster carrying only membership or
// only a transport must resolve to the identical RunOptions the deprecated
// WithRanks/WithTransport wrappers produce — same fields, bit for bit.
func TestWithClusterMatchesDeprecatedOptions(t *testing.T) {
	addrs := []string{"127.0.0.1:9001", "127.0.0.1:9002"}
	oldO := castencil.BuildRunOptions(castencil.WithRanks(1, addrs))
	newO := castencil.BuildRunOptions(castencil.WithCluster(castencil.ClusterOptions{Rank: 1, Ranks: addrs}))
	if oldO.Rank != newO.Rank || !reflect.DeepEqual(oldO.RankAddrs, newO.RankAddrs) {
		t.Errorf("membership differs: WithRanks (%d, %v) vs WithCluster (%d, %v)",
			oldO.Rank, oldO.RankAddrs, newO.Rank, newO.RankAddrs)
	}
	if newO.Steal.Mode != castencil.StealOff || len(newO.Steal.Force) != 0 {
		t.Errorf("WithCluster without Steal enabled stealing: %+v", newO.Steal)
	}

	ts := connectFacadeMesh(t)
	oldO = castencil.BuildRunOptions(castencil.WithTransport(ts[0]))
	newO = castencil.BuildRunOptions(castencil.WithCluster(castencil.ClusterOptions{Transport: ts[0]}))
	if oldO.Conduit != newO.Conduit {
		t.Errorf("transport differs: %v vs %v", oldO.Conduit, newO.Conduit)
	}
}

// TestWithClusterStealRun drives the facade's steal plumbing end to end: a
// two-rank run over WithCluster with each steal mode must stay bitwise
// identical to the single-process run — on the skewed shape where the two
// ranks own 15 and 10 tiles — and a WithCluster run with stealing off must
// match the deprecated WithTransport run exactly.
func TestWithClusterStealRun(t *testing.T) {
	cfg := castencil.Config{N: 80, TileRows: 16, P: 2, Steps: 6, Wavefront: 2}
	single, err := castencil.Run(castencil.WF, cfg, castencil.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	ts := connectFacadeMesh(t)
	runPair := func(opt func(r int) castencil.Option) [2]*castencil.RealResult {
		t.Helper()
		var res [2]*castencil.RealResult
		var errs [2]error
		var wg sync.WaitGroup
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				res[r], errs[r] = castencil.Run(castencil.WF, cfg, castencil.WithWorkers(1), opt(r))
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
		return res
	}

	old := runPair(func(r int) castencil.Option { return castencil.WithTransport(ts[r]) })
	for _, mode := range []castencil.StealMode{castencil.StealOff, castencil.StealGreedy, castencil.StealGated} {
		neu := runPair(func(r int) castencil.Option {
			return castencil.WithCluster(castencil.ClusterOptions{
				Transport: ts[r],
				Steal:     castencil.StealPolicy{Mode: mode},
			})
		})
		if !sameGrids(t, single.Grid, neu[0].Grid) {
			t.Errorf("steal mode %v: cluster grid diverged from single-process run", mode)
		}
		if neu[0].Exec.Messages != old[0].Exec.Messages {
			t.Errorf("steal mode %v: halo messages %d != deprecated-surface run %d",
				mode, neu[0].Exec.Messages, old[0].Exec.Messages)
		}
	}
	if !sameGrids(t, single.Grid, old[0].Grid) {
		t.Error("deprecated WithTransport run diverged from single-process run")
	}
}
