module castencil

go 1.22
