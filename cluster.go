package castencil

import (
	"time"

	"castencil/internal/cli"
	"castencil/internal/machine"
	"castencil/internal/runtime"
)

// This file is the unified distribution API: one ClusterOptions bag covers
// everything a multi-process run needs — membership, transport reuse,
// inter-node work stealing, and recovery policy — applied with a single
// WithCluster option. The earlier piecemeal surface (WithRanks,
// WithTransport, NetConnect's option struct) remains as deprecated wrappers
// proven bitwise-equivalent by the API-diff suite.
//
//	// One-shot: Run connects the mesh itself and closes it after.
//	res, err := castencil.Run(castencil.CA, cfg,
//	    castencil.WithCluster(castencil.ClusterOptions{
//	        Rank:  rank,
//	        Ranks: addrs,
//	        Steal: castencil.StealPolicy{Mode: castencil.StealGated},
//	    }))

// StealMode selects the inter-node work-stealing policy of a distributed
// run: off (the default), greedy (migrate whenever a rank starves), or
// gated (migrate only when the machine model prices the round trip below
// the task's expected local wait).
type StealMode = runtime.StealMode

// Inter-node work-stealing modes.
const (
	StealOff    = runtime.StealOff
	StealGreedy = runtime.StealGreedy
	StealGated  = runtime.StealGated
)

// StealNames lists the spellings ParseSteal accepts, for flag help.
const StealNames = runtime.StealNames

// ParseSteal maps a command-line steal-mode name ("off", "greedy",
// "gated") to a StealMode.
func ParseSteal(name string) (StealMode, error) { return cli.ParseSteal(name) }

// ForcedSteal pins one task (by graph index) to a thief rank: when it
// becomes ready on its owning rank it migrates unconditionally. Forced
// migrations are deterministic, so the simulator mirrors them exactly —
// the lever behind the sim==real parity tests.
type ForcedSteal = runtime.ForcedSteal

// StealPolicy configures inter-node work stealing. Every rank of a run must
// be handed the same policy — ranks agree on stealing the way they agree on
// the graph. Stealing never changes numerics: a migrated task executes on
// byte-identical inputs and its results commit where they would have been
// computed, so the final grid stays bitwise identical to a steal-off run.
type StealPolicy struct {
	// Mode selects the dynamic policy (StealOff disables demand-driven
	// stealing; forced migrations below still apply).
	Mode StealMode
	// Machine prices the migration round trip for the gated mode
	// (machine.Network.MigrationTime); nil defaults to the NaCL model.
	// Ignored by the other modes.
	Machine *Machine
	// Force scripts deterministic migrations applied in every mode.
	Force []ForcedSteal
}

// runtimePolicy lowers the facade policy to the runtime's, deriving the
// gate from the machine model.
func (p StealPolicy) runtimePolicy() *runtime.StealPolicy {
	if p.Mode == StealOff && len(p.Force) == 0 {
		return nil
	}
	rp := &runtime.StealPolicy{Mode: p.Mode, Force: p.Force}
	if p.Mode == StealGated {
		m := p.Machine
		if m == nil {
			m = machine.NaCL()
		}
		net := m.Net
		rp.Gate = func(inBytes, outBytes int) time.Duration {
			return net.MigrationTime(inBytes, outBytes)
		}
	}
	return rp
}

// ClusterOptions gathers the whole distributed-run configuration. Exactly
// one of Ranks (one-shot: Run connects the TCP mesh and closes it when the
// run returns) or Transport (reuse: an already-connected mesh shared across
// runs, see NetConnect) should be set; Transport wins when both are.
type ClusterOptions struct {
	// Rank is this process's index into Ranks (ignored with Transport,
	// which knows its own rank).
	Rank int
	// Ranks is the full static member list — one host:port per rank, the
	// identical list on every rank.
	Ranks []string
	// Transport reuses an established conduit instead of connecting per
	// run (stencild and the bench harness keep one mesh across jobs).
	Transport Conduit
	// Steal configures inter-node work stealing (zero value = off).
	Steal StealPolicy
	// Recovery overrides the reliable-transport policy for both the mesh
	// connection and the run (nil keeps the defaults).
	Recovery *FaultRecovery
}

// WithCluster configures a multi-process distributed real run from one
// options bag — membership or transport, work stealing, recovery. It
// subsumes WithRanks and WithTransport; a WithCluster carrying only
// Rank/Ranks or only Transport is bitwise-equivalent to them.
func WithCluster(c ClusterOptions) Option {
	return func(o *RunOptions) {
		o.Rank = c.Rank
		o.RankAddrs = c.Ranks
		o.Conduit = c.Transport
		o.Steal = c.Steal
		if c.Recovery != nil {
			o.Recovery = c.Recovery
		}
	}
}
