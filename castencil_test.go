package castencil_test

import (
	"strings"
	"testing"

	castencil "castencil"
)

func TestFacadeRealRunAndVerify(t *testing.T) {
	cfg := castencil.Config{N: 24, TileRows: 6, P: 2, Steps: 8, StepSize: 3}
	res, err := castencil.RunReal(castencil.CA, cfg, castencil.ExecOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := castencil.Verify(cfg, res); d != 0 {
		t.Errorf("max diff from oracle = %v, want 0 (bitwise)", d)
	}
}

func TestFacadeSimulate(t *testing.T) {
	cfg := castencil.Config{N: 2880, TileRows: 288, P: 2, Steps: 5, StepSize: 5}
	for _, v := range []castencil.Variant{castencil.Base, castencil.CA} {
		res, err := castencil.Simulate(v, cfg, castencil.SimOptions{Machine: castencil.NaCL()})
		if err != nil {
			t.Fatal(err)
		}
		if res.GFLOPS <= 0 || res.Makespan <= 0 {
			t.Errorf("%v: degenerate result %+v", v, res)
		}
		if res.Messages == 0 {
			t.Errorf("%v: multi-node run must communicate", v)
		}
	}
}

func TestFacadeMachines(t *testing.T) {
	if castencil.NaCL().ComputeCores() != 11 {
		t.Error("NaCL compute cores")
	}
	if castencil.Stampede2().CoresPerNode != 48 {
		t.Error("Stampede2 cores")
	}
	if _, err := castencil.MachineByName("NaCL"); err != nil {
		t.Error(err)
	}
}

func TestFacadeTraceAndGantt(t *testing.T) {
	tr := castencil.NewTrace()
	cfg := castencil.Config{N: 2880, TileRows: 288, P: 2, Steps: 4, StepSize: 2}
	_, err := castencil.Simulate(castencil.CA, cfg, castencil.SimOptions{
		Machine: castencil.NaCL(), Ratio: 0.4, Trace: tr, TraceNode: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := castencil.GanttText(tr, 0, castencil.NaCL().ComputeCores(), 80)
	if !strings.Contains(out, "core") {
		t.Errorf("gantt output:\n%s", out)
	}
}

func TestFacadeWeightsHelpers(t *testing.T) {
	if castencil.JacobiWeights().N != 0.25 {
		t.Error("Jacobi weights")
	}
	if castencil.HeatWeights(0.1).C != 1-0.4 {
		t.Error("heat weights")
	}
	if castencil.ConstBoundary(3)(0, -1) != 3 {
		t.Error("const boundary")
	}
	if castencil.HashInit(1)(2, 3) != castencil.HashInit(1)(2, 3) {
		t.Error("hash init determinism")
	}
	if castencil.FlopsPerPoint != 9 {
		t.Error("flop accounting")
	}
}

func TestFacadeDTD(t *testing.T) {
	ins := castencil.NewDTD(2)
	ins.Seed("acc", 0, []float64{0})
	for i := 1; i <= 5; i++ {
		i := i
		ins.Insert("add", i%2, func(c castencil.DTDCtx) {
			v := c.Read("acc")
			c.Write("acc", []float64{v[0] + float64(i)})
		}, castencil.ReadWriteAccess("acc"))
	}
	g, err := ins.Graph()
	if err != nil {
		t.Fatal(err)
	}
	res, err := castencil.RunGraph(g, castencil.ExecOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ins.Fetch(res.Stores, "acc")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 15 {
		t.Errorf("acc = %v, want 15", got[0])
	}
}

func TestFacadeAutoPlan(t *testing.T) {
	cfg := castencil.Config{N: 2880, TileRows: 288, P: 2, Steps: 4}
	plan, err := castencil.AutoPlan(cfg, castencil.NaCL(), 0.3, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Candidates) != 5 { // base + CA s=2,5 + WF w=2,5
		t.Errorf("candidates = %d", len(plan.Candidates))
	}
}

func TestFacadePETSc(t *testing.T) {
	perf, err := castencil.SimulatePETSc(castencil.NaCL(), 2304, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if perf.GFLOPS <= 0 {
		t.Error("petsc model degenerate")
	}
	x, err := castencil.RunPETScReal(8, castencil.JacobiWeights(), castencil.HashInit(1),
		castencil.ConstBoundary(0), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 64 {
		t.Errorf("solution length = %d", len(x))
	}
}

func TestFacadeKernelAccess(t *testing.T) {
	src := castencil.NewGridTile(4, 4, 1)
	dst := castencil.NewGridTile(4, 4, 1)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			src.Set(r, c, 2)
		}
	}
	castencil.ApplyStencil(castencil.JacobiWeights(), dst, src)
	if dst.At(1, 1) != 2 {
		t.Errorf("interior average = %v", dst.At(1, 1))
	}
}

func TestFacadeVerifyNinePoint(t *testing.T) {
	cfg := castencil.Config{N: 20, TileRows: 5, P: 2, Steps: 5, StepSize: 2, NinePoint: true}
	res, err := castencil.RunReal(castencil.CA, cfg, castencil.ExecOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := castencil.Verify(cfg, res); d != 0 {
		t.Errorf("9-point verify diff = %v, want 0", d)
	}
	// Cross-check: verifying against the WRONG (5-point) oracle must
	// report a nonzero difference, proving Verify picks the right one.
	wrong := cfg
	wrong.NinePoint = false
	if d := castencil.Verify(wrong, res); d == 0 {
		t.Error("5-point oracle should not match a 9-point run")
	}
}
