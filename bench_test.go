// Benchmarks regenerating every table and figure of the paper (one
// benchmark per exhibit, backed by internal/bench) plus microbenchmarks of
// the core computational pieces.
//
// By default the figure benchmarks run the quarter-scale QuickParams
// workloads so `go test -bench=.` completes in minutes; set
// CASTENCIL_BENCH=paper to run the full paper-scale configuration.
package castencil_test

import (
	"io"
	"os"
	"testing"

	"castencil/internal/bench"
	"castencil/internal/core"
	"castencil/internal/desim"
	"castencil/internal/grid"
	"castencil/internal/machine"
	"castencil/internal/netsim"
	"castencil/internal/petsc"
	"castencil/internal/runtime"
	"castencil/internal/stencil"
)

func benchParams() bench.Params {
	if os.Getenv("CASTENCIL_BENCH") == "paper" {
		return bench.PaperParams()
	}
	return bench.QuickParams()
}

// report discards or prints a report depending on verbosity.
func report(b *testing.B, r *bench.Report) {
	b.Helper()
	if testing.Verbose() {
		r.WriteText(os.Stdout)
	} else {
		r.WriteText(io.Discard)
	}
}

func BenchmarkTableI_Stream(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		report(b, bench.TableI(p, false))
	}
}

func BenchmarkFig5_NetPIPE(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		report(b, bench.Fig5(p))
	}
}

func BenchmarkFig6_TileSize(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig6(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

func BenchmarkFig7_StrongScaling(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig7(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

func BenchmarkFig8_KernelRatio(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig8(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

func BenchmarkFig9_StepSize(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig9(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

func BenchmarkFig10_Trace(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		r, _, err := bench.Fig10(p, 80)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

func BenchmarkRoofline(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		report(b, bench.Roofline(p))
	}
}

func BenchmarkHeadline(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		r, err := bench.Headline(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

func BenchmarkExtFuture_Exascale(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		r, err := bench.Future(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

func BenchmarkExtNinePoint_AI(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		r, err := bench.NinePoint(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

func BenchmarkExtAutoPlan(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		r, err := bench.AutoPlanReport(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

func BenchmarkExtSchedulers(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		r, err := bench.Schedulers(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

func BenchmarkExtWeakScaling(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		r, err := bench.WeakScaling(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

func BenchmarkExtTemporalBlocking(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		r, err := bench.TemporalBlocking(p)
		if err != nil {
			b.Fatal(err)
		}
		report(b, r)
	}
}

// --- Microbenchmarks of the computational substrates ---

// BenchmarkKernel5Point measures the five-point Jacobi kernel on the NaCL
// tuning tile (288x288). Reported bytes/op via SetBytes gives the streaming
// rate the memory model calibrates against.
func BenchmarkKernel5Point(b *testing.B) {
	src := grid.NewTile(288, 288, 1)
	dst := grid.NewTile(288, 288, 1)
	w := stencil.Jacobi()
	b.SetBytes(288 * 288 * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stencil.Step(w, dst, src)
		dst, src = src, dst
	}
}

func BenchmarkKernel9Point(b *testing.B) {
	src := grid.NewTile(288, 288, 1)
	dst := grid.NewTile(288, 288, 1)
	w := stencil.Jacobi9()
	b.SetBytes(288 * 288 * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stencil.Apply9(w, dst, src, stencil.Interior(src))
		dst, src = src, dst
	}
}

func BenchmarkKernelVarCoeff(b *testing.B) {
	src := grid.NewTile(288, 288, 1)
	dst := grid.NewTile(288, 288, 1)
	cf := stencil.NewCoeff(288, 288)
	cf.Fill(func(int, int) stencil.Weights { return stencil.Jacobi() })
	b.SetBytes(288 * 288 * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stencil.ApplyVar(cf, dst, src)
		dst, src = src, dst
	}
}

// BenchmarkHaloPack measures edge pack+unpack of a 15-deep CA halo.
func BenchmarkHaloPack(b *testing.B) {
	t := grid.NewTile(288, 288, 15)
	buf := make([]float64, 0, 15*288)
	rect := t.EdgeRect(grid.East, 15)
	halo := t.HaloRect(grid.West, 15)
	b.SetBytes(int64(rect.Bytes()) * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = t.Pack(rect, buf)
		t.Unpack(halo, buf)
	}
}

// BenchmarkMatMult measures the PETSc-analog CSR SpMV on a 288x288 block,
// exposing the index-traffic cost the paper blames for the 2x gap.
func BenchmarkMatMult(b *testing.B) {
	n := 288
	op := petsc.Laplace5(n, stencil.Jacobi(), stencil.ConstBoundary(0), 0, n*n)
	x := make([]float64, n*n)
	y := make([]float64, n*n)
	for i := range x {
		x[i] = float64(i)
	}
	lookup := op.Lookup(func(c int64) float64 { return x[c] })
	b.SetBytes(int64(op.NNZ()) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		petsc.MatMult(&op.AIJ, lookup, y)
	}
}

// BenchmarkRuntimeTaskThroughput measures the real runtime's per-task
// scheduling overhead with trivial bodies.
func BenchmarkRuntimeTaskThroughput(b *testing.B) {
	g, err := core.BuildGraph(core.Base, core.Config{
		N: 240, TileRows: 24, P: 1, Steps: 20, WithBodies: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runtime.Run(g, runtime.Options{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDESEventThroughput measures the discrete-event engine on a
// 16-node CA graph (events per op reported via the task count).
func BenchmarkDESEventThroughput(b *testing.B) {
	m := machine.NaCL()
	g, err := core.BuildGraph(core.CA, core.Config{
		N: 5760, TileRows: 288, P: 4, Steps: 10, StepSize: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	cost := core.CostModel(m, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fabric := netsim.NewFabric(m.Net, 16)
		if _, err := desim.Run(g, desim.Options{Cores: 11, Cost: cost, Fabric: fabric, Policy: desim.Priority}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphBuild measures task-graph construction (cost-only).
func BenchmarkGraphBuild(b *testing.B) {
	cfg := core.Config{N: 5760, TileRows: 288, P: 4, Steps: 10, StepSize: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildGraph(core.CA, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPETScJacobiReal measures the distributed SpMV Jacobi analog.
func BenchmarkPETScJacobiReal(b *testing.B) {
	w := stencil.Jacobi()
	init := stencil.HashInit(1)
	bnd := stencil.ConstBoundary(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := petsc.RunJacobi(192, w, init, bnd, 8, 10); err != nil {
			b.Fatal(err)
		}
	}
}
