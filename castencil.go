// Package castencil reproduces "Communication Avoiding 2D Stencil
// Implementations over PaRSEC Task-Based Runtime" (Pei et al., IPDPSW 2020)
// as a self-contained Go library: a PaRSEC-analog dataflow task runtime over
// simulated distributed-memory nodes, the base and communication-avoiding
// (PA1) five-point Jacobi stencils expressed as task graphs, a PETSc-analog
// SpMV baseline, calibrated machine models of the paper's two clusters, and
// a discrete-event engine that regenerates every table and figure of the
// paper's evaluation.
//
// This file is the public facade: it re-exports the pieces an application
// needs. Two execution engines are available for every stencil variant,
// both driven by the same functional options (see options.go):
//
//   - Run executes the task graph concurrently and exactly — the result
//     is bitwise identical to a sequential Jacobi sweep, whatever the
//     decomposition, variant, step size or (masked) fault injection;
//   - Sim replays the same graph in virtual time against a machine
//     model and predicts performance (GFLOP/s, messages, occupancy).
//
// Quick start:
//
//	cfg := castencil.Config{N: 2880, TileRows: 288, P: 2, Steps: 100, StepSize: 15}
//	res, err := castencil.Sim(castencil.CA, cfg, castencil.WithMachine(castencil.NaCL()))
//
// Real execution with work stealing, coalesced halo lanes and an injected
// fault schedule masked by the reliable transport:
//
//	plan, _ := castencil.ParseFaultPlan("drop=0.01,dup=0.01,seed=7")
//	out, err := castencil.Run(castencil.CA, cfg,
//	    castencil.WithSched(castencil.WorkStealing),
//	    castencil.WithCoalesce(castencil.CoalesceAuto),
//	    castencil.WithFaultPlan(plan))
//
// The earlier RunReal/Simulate entry points and their per-engine option
// structs remain as deprecated wrappers over the same engines.
package castencil

import (
	"math"

	"castencil/internal/core"
	"castencil/internal/dtd"
	"castencil/internal/grid"
	"castencil/internal/machine"
	"castencil/internal/membench"
	"castencil/internal/memmodel"
	"castencil/internal/petsc"
	"castencil/internal/ptg"
	"castencil/internal/runtime"
	"castencil/internal/stencil"
	"castencil/internal/trace"
)

// Variant selects a stencil implementation: Base (halo exchange every
// iteration), CA (the PA1 communication-avoiding scheme) or WF (wavefront
// temporal blocking: one fused task advances a tile w steps on a w-deep
// ghost region, and every tile exchanges only once per w steps).
type Variant = core.Variant

// Stencil variants.
const (
	Base = core.Base
	CA   = core.CA
	WF   = core.WF
)

// Config describes a stencil problem and its decomposition; see
// internal/core for field documentation.
type Config = core.Config

// SimOptions configures a virtual-time performance simulation.
//
// Deprecated: build options with the functional Option list of Sim
// (WithMachine, WithRatio, WithCoalesce, WithFaultPlan, ...). SimOptions
// remains as the engine-level struct behind RunOptions.sim.
type SimOptions = core.SimOptions

// SimResult reports a simulated run.
type SimResult = core.SimResult

// RealResult is the outcome of a real execution.
type RealResult = core.RealResult

// ExecOptions configures the real runtime (workers per node, scheduling
// policy, tracing, fault injection, message interception).
//
// Deprecated: build options with the functional Option list of Run
// (WithWorkers, WithSched, WithCoalesce, WithFaultPlan, ...). ExecOptions
// remains as the engine-level struct behind RunOptions.real (RunGraph
// still accepts it directly).
type ExecOptions = runtime.Options

// Scheduling policies of the real runtime (queue order under the shared
// scheduler; injection-queue order under work stealing).
const (
	FIFO          = runtime.FIFO
	LIFO          = runtime.LIFO
	PriorityOrder = runtime.PriorityOrder
)

// Sched selects the scheduler architecture of the real runtime: SharedQueue
// (one locked per-node queue, the compatibility scheduler) or WorkStealing
// (per-worker lock-free deques with locality-first successor placement).
// Scheduler choice never changes numerics — only performance.
type Sched = runtime.Sched

// Scheduler architectures.
const (
	SharedQueue  = runtime.SharedQueue
	WorkStealing = runtime.WorkStealing
)

// SchedNames lists the scheduler names ParseSched accepts, for flag help.
const SchedNames = runtime.SchedNames

// ParseSched maps a command-line scheduler name ("steal", "fifo", "lifo",
// "priority", ...) to a scheduler architecture and queue policy.
func ParseSched(name string) (Sched, Policy, error) { return runtime.ParseSched(name) }

// CoalesceMode selects halo-bundle coalescing: all cross-node payloads one
// node produces in one epoch toward one neighbor travel as a single wire
// message over a persistent communication lane. Coalescing never changes
// numerics — results stay bitwise identical to the sequential oracle.
type CoalesceMode = ptg.CoalesceMode

// Coalescing modes: off (point-to-point delivery, the default), step
// (required — the run fails when the graph does not admit a deadlock-free
// bundle plan), auto (coalesce when possible, fall back to point-to-point).
const (
	CoalesceOff  = ptg.CoalesceOff
	CoalesceStep = ptg.CoalesceStep
	CoalesceAuto = ptg.CoalesceAuto
)

// CoalesceNames lists the mode names ParseCoalesce accepts, for flag help.
const CoalesceNames = ptg.CoalesceNames

// ParseCoalesce maps a command-line coalescing mode name to a CoalesceMode.
func ParseCoalesce(name string) (CoalesceMode, error) { return ptg.ParseCoalesce(name) }

// TransformMode selects a graph-transformation pass applied to the built
// task graph before execution. TransformSplit rewrites each tile update
// into an interior task (no fresh-halo dependencies, so it runs while
// halos are in flight) plus thin border tasks carrying the original halo
// flows — communication–computation overlap without touching numerics:
// results stay bitwise identical to the untransformed graph on both
// engines. Not supported with the WF variant (its fused tasks have no
// halo-free interior to split off).
type TransformMode = core.TransformMode

// Graph-transformation modes.
const (
	TransformNone  = core.TransformNone
	TransformSplit = core.TransformSplit
)

// TransformNames lists the mode names ParseTransform accepts, for flag
// help.
const TransformNames = core.TransformNames

// ParseTransform maps a command-line transform mode name to a
// TransformMode.
func ParseTransform(name string) (TransformMode, error) { return core.ParseTransform(name) }

// Policy orders the shared ready queue (or the injection queue under work
// stealing).
type Policy = runtime.Policy

// Machine is a calibrated cluster model.
type Machine = machine.Model

// Weights are the five stencil coefficients of the paper's equation (1).
type Weights = stencil.Weights

// Boundary is a Dirichlet boundary condition; Init an initial condition.
type (
	Boundary = stencil.Boundary
	Init     = stencil.Init
)

// Trace collects per-task execution events (real or virtual time).
type Trace = trace.Trace

// Tile is a 2D block with a ghost region; RealResult.Grid is one.
type Tile = grid.Tile

// NaCL returns the model of the paper's 64-node Westmere/InfiniBand
// cluster.
func NaCL() *Machine { return machine.NaCL() }

// Stampede2 returns the model of the TACC Stampede2 Skylake/Omni-Path
// system.
func Stampede2() *Machine { return machine.Stampede2() }

// MachineByName resolves "NaCL" or "Stampede2".
func MachineByName(name string) (*Machine, error) { return machine.ByName(name) }

// CalibrateHostMachine measures the local host with STREAM and builds a
// machine model from it (network and kernel constants borrowed from the
// template).
func CalibrateHostMachine(template *Machine) *Machine {
	return membench.CalibrateHost(template, membench.DefaultConfig())
}

// JacobiWeights returns the classic Laplace Jacobi weights (neighbor
// average).
func JacobiWeights() Weights { return stencil.Jacobi() }

// HeatWeights returns explicit heat-equation weights, stable for
// alpha <= 0.25.
func HeatWeights(alpha float64) Weights { return stencil.Heat(alpha) }

// ConstBoundary returns a constant Dirichlet boundary.
func ConstBoundary(v float64) Boundary { return stencil.ConstBoundary(v) }

// HashInit returns a deterministic pseudo-random initial condition.
func HashInit(seed uint64) Init { return stencil.HashInit(seed) }

// NewTrace returns an empty trace collector.
func NewTrace() *Trace { return trace.New() }

// RunReal executes a stencil variant on the concurrent runtime, returning
// the exact final grid.
//
// Deprecated: use Run with functional options; Run(v, cfg) with no
// options is equivalent to RunReal(v, cfg, ExecOptions{}) and results are
// bitwise identical for equivalent settings.
func RunReal(v Variant, cfg Config, opts ExecOptions) (*RealResult, error) {
	return core.RunReal(v, cfg, opts)
}

// Simulate predicts a stencil variant's performance on a machine model.
//
// Deprecated: use Sim with functional options; Sim(v, cfg,
// WithMachine(m)) is equivalent to Simulate(v, cfg, SimOptions{Machine:
// m}) and produces the identical prediction for equivalent settings.
func Simulate(v Variant, cfg Config, opts SimOptions) (*SimResult, error) {
	return core.Simulate(v, cfg, opts)
}

// Verify runs the sequential reference for the configuration (five- or
// nine-point, matching cfg) and returns the max-norm difference from a real
// run's result (0 means bitwise identical, which this library guarantees).
func Verify(cfg Config, res *RealResult) float64 {
	w := cfg.Weights
	if w == (Weights{}) {
		w = stencil.Jacobi()
	}
	init := cfg.Init
	if init == nil {
		init = stencil.HashInit(1)
	}
	bnd := cfg.Boundary
	if bnd == nil {
		bnd = stencil.ConstBoundary(0)
	}
	if cfg.NinePoint {
		w9 := cfg.Weights9
		if w9 == (stencil.Weights9{}) {
			w9 = stencil.Jacobi9()
		}
		ref := stencil.NewReference9(cfg.N, w9, init, bnd)
		ref.Run(cfg.Steps)
		max := 0.0
		for r := 0; r < cfg.N; r++ {
			for c := 0; c < cfg.N; c++ {
				if d := math.Abs(ref.At(r, c) - res.Grid.At(r, c)); d > max {
					max = d
				}
			}
		}
		return max
	}
	ref := stencil.NewReference(cfg.N, w, init, bnd)
	ref.Run(cfg.Steps)
	return ref.MaxAbsDiff(res.Grid.At)
}

// FlopsPerPoint is the paper's flop accounting: 9 flops per grid-point
// update (5 multiplications + 4 additions).
const FlopsPerPoint = memmodel.FlopsPerUpdate

// GanttText renders one node's trace events as a text Gantt chart of the
// given width.
func GanttText(t *Trace, node int32, cores, width int) string {
	return trace.Gantt(t.Node(node), cores, trace.GanttConfig{Width: width})
}

// PETScPerf is the modeled performance of the paper's PETSc baseline (SpMV
// Jacobi, one rank per core, 1D row blocks) on a machine.
type PETScPerf = petsc.Perf

// SimulatePETSc prices the PETSc SpMV formulation of the same problem on a
// machine model (the paper's baseline in Figure 7).
func SimulatePETSc(m *Machine, n, nodes, iters int) (*PETScPerf, error) {
	return petsc.ModelPerf(m, n, nodes, iters)
}

// RunPETScReal executes the PETSc-analog distributed SpMV Jacobi for real
// (goroutine ranks, channel VecScatter) and returns the flattened solution;
// like the stencil variants it is bitwise identical to the oracle.
func RunPETScReal(n int, w Weights, init Init, bnd Boundary, ranks, iters int) ([]float64, error) {
	res, err := petsc.RunJacobi(n, w, init, bnd, ranks, iters)
	if err != nil {
		return nil, err
	}
	return res.X, nil
}

// Plan is the outcome of the automatic kernel-family planner; PlanResult is
// one evaluated candidate. Plan.BestFamily names the winning family (Base,
// CA or WF); UseCA and UseWavefront report the recommendation directly.
type (
	Plan       = core.Plan
	PlanResult = core.PlanResult
)

// AutoPlan probes the machine model across three kernel families — base, CA
// at each candidate step size, and wavefront temporal blocking at each
// candidate width — and recommends the best configuration for the problem:
// the paper's section-VII vision of making the communication-avoiding
// transformation transparent to users. A nil candidate list uses
// DefaultPlanCandidates; ratio is the kernel-adjustment knob (1 = real
// kernel). Ties break deterministically toward the simpler plan (smaller
// parameter, lower-numbered family).
func AutoPlan(cfg Config, m *Machine, ratio float64, candidates []int) (*Plan, error) {
	return core.AutoPlan(cfg, m, ratio, candidates)
}

// DefaultPlanCandidates is AutoPlan's default parameter probe set; each
// value is tried both as a CA step size and as a WF width.
var DefaultPlanCandidates = core.DefaultPlanCandidates

// --- DTD front-end (PaRSEC's Dynamic Task Discovery analog, §III-B) ---

// DTD is the dynamic-task-discovery inserter: tasks are inserted
// sequentially with declared data accesses and every dependency (including
// inter-node transfers) is inferred automatically.
type DTD = dtd.Inserter

// DTDCtx is the execution context handed to DTD task bodies.
type DTDCtx = dtd.Ctx

// DTDAccess declares how a DTD task touches a key.
type DTDAccess = dtd.Access

// DTD access constructors: read, write, read-modify-write.
var (
	ReadAccess      = dtd.R
	WriteAccess     = dtd.W
	ReadWriteAccess = dtd.RW
)

// NewDTD creates a DTD inserter over the given number of virtual nodes.
// Build the graph with Graph() and execute it with RunGraph.
func NewDTD(nodes int) *DTD { return dtd.New(nodes) }

// RunGraph executes any task graph (e.g. one built with NewDTD) on the
// concurrent runtime.
func RunGraph(g *TaskGraph, opts ExecOptions) (*ExecResult, error) {
	return runtime.Run(g, opts)
}

// TaskGraph and ExecResult expose the graph/runtime types the DTD API
// needs.
type (
	TaskGraph  = ptg.Graph
	ExecResult = runtime.Result
)

// --- Direct kernel access (for building custom solvers, e.g. multigrid) ---

// NewGridTile allocates a rows x cols tile with the given ghost depth.
func NewGridTile(rows, cols, halo int) *Tile { return grid.NewTile(rows, cols, halo) }

// ApplyStencil performs one five-point sweep of the tile interior from src
// into dst (src needs ghost depth >= 1).
func ApplyStencil(w Weights, dst, src *Tile) { stencil.Step(w, dst, src) }
