package membench

import (
	"runtime"
	"testing"

	"castencil/internal/machine"
)

func smallCfg(workers int) Config {
	return Config{N: 1 << 18, Reps: 2, Workers: workers}
}

func TestRunProducesPositiveBandwidth(t *testing.T) {
	r := Run(smallCfg(1))
	for name, v := range map[string]float64{
		"COPY": r.Copy, "SCALE": r.Scale, "ADD": r.Add, "TRIAD": r.Triad,
	} {
		if v <= 0 {
			t.Errorf("%s bandwidth = %v MB/s, want > 0", name, v)
		}
		if v > 5e7 { // 50 TB/s: nonsense guard
			t.Errorf("%s bandwidth = %v MB/s looks unphysical", name, v)
		}
	}
}

func TestRunParallelNotCatastrophic(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("single-CPU host")
	}
	seq := Run(smallCfg(1))
	par := Run(smallCfg(runtime.NumCPU()))
	// Parallel STREAM may be limited by a shared memory controller, but it
	// should not be 10x slower than sequential.
	if par.Copy < seq.Copy/10 {
		t.Errorf("parallel COPY %v MB/s vs sequential %v MB/s", par.Copy, seq.Copy)
	}
}

func TestSanitize(t *testing.T) {
	var c Config
	c.sanitize()
	if c.N <= 0 || c.Reps <= 0 || c.Workers <= 0 {
		t.Errorf("sanitize left invalid config: %+v", c)
	}
	c = Config{N: 4, Reps: 1, Workers: 100}
	c.sanitize()
	if c.Workers > c.N {
		t.Errorf("workers %d must not exceed N %d", c.Workers, c.N)
	}
}

func TestCalibrateHost(t *testing.T) {
	m := CalibrateHost(machine.NaCL(), smallCfg(runtime.NumCPU()))
	if err := m.Validate(); err != nil {
		t.Fatalf("calibrated model invalid: %v", err)
	}
	if m.CoresPerNode != runtime.NumCPU() {
		t.Errorf("CoresPerNode = %d, want %d", m.CoresPerNode, runtime.NumCPU())
	}
	if m.StreamNode.Copy <= 0 {
		t.Error("calibrated node COPY must be positive")
	}
	// Network constants are borrowed from the template.
	if m.Net != machine.NaCL().Net {
		t.Error("network parameters should be copied from template")
	}
}
