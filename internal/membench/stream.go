// Package membench implements a STREAM-style sustained-memory-bandwidth
// microbenchmark (McCalpin) in pure Go. The paper uses STREAM (Table I) to
// establish each machine's achieved memory bandwidth; this package lets a
// user of this repository measure the host they are running on and calibrate
// a custom machine.Model from it.
package membench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"castencil/internal/machine"
)

// Config controls a STREAM run.
type Config struct {
	// N is the number of float64 elements per array. STREAM's rule is that
	// each array must be at least 4x the total cache; 1<<24 (128 MB/array)
	// is a safe default on current machines.
	N int
	// Reps is the number of timed repetitions; the best (minimum) time is
	// reported, as in the reference implementation.
	Reps int
	// Workers is the number of concurrent goroutines (1 = single "core",
	// runtime.NumCPU() = full "node").
	Workers int
}

// DefaultConfig returns a configuration suitable for quick host calibration.
func DefaultConfig() Config {
	return Config{N: 1 << 23, Reps: 3, Workers: runtime.NumCPU()}
}

func (c *Config) sanitize() {
	if c.N <= 0 {
		c.N = 1 << 23
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Workers > c.N {
		c.Workers = 1
	}
}

// Run executes the four STREAM kernels and returns sustained bandwidth in
// MB/s (decimal, like the reference STREAM output and Table I).
func Run(cfg Config) machine.StreamResult {
	cfg.sanitize()
	a := make([]float64, cfg.N)
	b := make([]float64, cfg.N)
	c := make([]float64, cfg.N)
	for i := range a {
		a[i] = 1.0
		b[i] = 2.0
		c[i] = 0.0
	}
	const q = 3.0

	// Bytes moved per element, per the STREAM accounting rules.
	copyBytes := 16.0  // read + write
	scaleBytes := 16.0 // read + write
	addBytes := 24.0   // 2 reads + write
	triadBytes := 24.0 // 2 reads + write

	copyT := best(cfg, func(lo, hi int) {
		copy(c[lo:hi], a[lo:hi])
	})
	scaleT := best(cfg, func(lo, hi int) {
		bb, cc := b[lo:hi], c[lo:hi]
		for i := range bb {
			bb[i] = q * cc[i]
		}
	})
	addT := best(cfg, func(lo, hi int) {
		aa, bb, cc := a[lo:hi], b[lo:hi], c[lo:hi]
		for i := range cc {
			cc[i] = aa[i] + bb[i]
		}
	})
	triadT := best(cfg, func(lo, hi int) {
		aa, bb, cc := a[lo:hi], b[lo:hi], c[lo:hi]
		for i := range aa {
			aa[i] = bb[i] + q*cc[i]
		}
	})

	n := float64(cfg.N)
	mbs := func(bytesPer float64, t time.Duration) float64 {
		if t <= 0 {
			return 0
		}
		return n * bytesPer / t.Seconds() / 1e6
	}
	return machine.StreamResult{
		Copy:  mbs(copyBytes, copyT),
		Scale: mbs(scaleBytes, scaleT),
		Add:   mbs(addBytes, addT),
		Triad: mbs(triadBytes, triadT),
	}
}

// best runs the kernel cfg.Reps times across cfg.Workers goroutines and
// returns the minimum elapsed wall time.
func best(cfg Config, kernel func(lo, hi int)) time.Duration {
	min := time.Duration(0)
	for rep := 0; rep < cfg.Reps; rep++ {
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			lo := w * cfg.N / cfg.Workers
			hi := (w + 1) * cfg.N / cfg.Workers
			wg.Add(1)
			go func() {
				defer wg.Done()
				kernel(lo, hi)
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if min == 0 || elapsed < min {
			min = elapsed
		}
	}
	return min
}

// CalibrateHost builds a machine.Model for the local host: it measures
// STREAM with 1 worker and with all workers and borrows the remaining
// (network, kernel) constants from a template model. The result lets every
// experiment in this repository be re-run against "your laptop as a node".
func CalibrateHost(template *machine.Model, cfg Config) *machine.Model {
	cfg.sanitize()
	one := cfg
	one.Workers = 1
	m := *template
	m.Name = fmt.Sprintf("host(%d cores)", runtime.NumCPU())
	m.CoresPerNode = runtime.NumCPU()
	m.StreamCore = Run(one)
	m.StreamNode = Run(cfg)
	return &m
}
