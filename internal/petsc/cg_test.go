package petsc

import (
	"math"
	"testing"

	"castencil/internal/stencil"
)

// manufactured solution u(r,c) = sin-free polynomial so A u is exact in
// float64 up to rounding: u = r*c scaled.
func uStar(n int) func(gr, gc int) float64 {
	return func(gr, gc int) float64 {
		x := float64(gc+1) / float64(n+1)
		y := float64(gr+1) / float64(n+1)
		return x * y * (1 - x) * (1 - y)
	}
}

// rhsFor computes f = A u* by applying the Poisson operator to the
// manufactured solution (so the discrete solve must recover u* exactly up
// to solver tolerance).
func rhsFor(n int, u func(gr, gc int) float64, bnd stencil.Boundary) func(gr, gc int) float64 {
	at := func(gr, gc int) float64 {
		if gr < 0 || gr >= n || gc < 0 || gc >= n {
			return bnd(gr, gc)
		}
		return u(gr, gc)
	}
	return func(gr, gc int) float64 {
		return 4*at(gr, gc) - at(gr-1, gc) - at(gr+1, gc) - at(gr, gc-1) - at(gr, gc+1)
	}
}

func TestPoisson5Assembly(t *testing.T) {
	n := 3
	bnd := stencil.ConstBoundary(2)
	f := func(gr, gc int) float64 { return 1 }
	m, b := Poisson5(n, f, bnd, 0, n*n)
	if m.NNZ() == 0 || m.LocalRows() != 9 {
		t.Fatalf("bad assembly: rows %d nnz %d", m.LocalRows(), m.NNZ())
	}
	// Corner row: f + 2 boundary neighbors * 2.
	if b[0] != 1+4 {
		t.Errorf("corner rhs = %v, want 5", b[0])
	}
	// Center row: no boundary terms.
	if b[4] != 1 {
		t.Errorf("center rhs = %v, want 1", b[4])
	}
	// A applied to a constant-1 vector: center row gives 4-4=0.
	y := make([]float64, 9)
	MatMult(m, func(int64) float64 { return 1 }, y)
	if y[4] != 0 {
		t.Errorf("A*1 center = %v, want 0", y[4])
	}
	if y[0] != 2 { // 4 - 2 interior neighbors
		t.Errorf("A*1 corner = %v, want 2", y[0])
	}
}

func TestCGSolvesManufacturedProblem(t *testing.T) {
	n := 24
	u := uStar(n)
	bnd := stencil.ConstBoundary(0) // u* vanishes on the boundary ring? no: it is nonzero inside only
	f := rhsFor(n, u, bnd)
	res, err := SolveCG(n, f, bnd, 4, 5000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: residual %v after %d iters", res.Residual, res.Iterations)
	}
	maxErr := 0.0
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if e := math.Abs(res.X[r*n+c] - u(r, c)); e > maxErr {
				maxErr = e
			}
		}
	}
	if maxErr > 1e-10 {
		t.Errorf("max error vs manufactured solution = %v", maxErr)
	}
	// CG on the 2D Laplacian converges in O(n) iterations.
	if res.Iterations > 5*n {
		t.Errorf("CG took %d iterations for n=%d", res.Iterations, n)
	}
	if res.Messages == 0 {
		t.Error("distributed CG must communicate")
	}
}

func TestCGRankCountInvariance(t *testing.T) {
	// The deterministic all-reduce makes iteration counts identical across
	// rank counts, and solutions agree to solver tolerance.
	n := 12
	bnd := func(gr, gc int) float64 { return 0.25 }
	f := func(gr, gc int) float64 { return float64((gr*3+gc)%7) * 0.1 }
	ref, err := SolveCG(n, f, bnd, 1, 2000, 1e-11)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Converged {
		t.Fatal("serial CG did not converge")
	}
	for _, ranks := range []int{2, 5, 9} {
		got, err := SolveCG(n, f, bnd, ranks, 2000, 1e-11)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		for i := range got.X {
			if math.Abs(got.X[i]-ref.X[i]) > 1e-9 {
				t.Fatalf("ranks=%d row %d: %v vs %v", ranks, i, got.X[i], ref.X[i])
			}
		}
	}
}

func TestCGHitsMaxIter(t *testing.T) {
	n := 16
	res, err := SolveCG(n, func(int, int) float64 { return 1 }, stencil.ConstBoundary(0), 2, 3, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("3 iterations cannot converge to 1e-14")
	}
	if res.Iterations != 3 {
		t.Errorf("iterations = %d, want 3", res.Iterations)
	}
}

func TestCGZeroRHSConvergesImmediately(t *testing.T) {
	res, err := SolveCG(8, func(int, int) float64 { return 0 }, stencil.ConstBoundary(0), 2, 10, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Errorf("zero problem: converged=%v iters=%d", res.Converged, res.Iterations)
	}
}

func TestCGValidation(t *testing.T) {
	f := func(int, int) float64 { return 0 }
	bnd := stencil.ConstBoundary(0)
	if _, err := SolveCG(0, f, bnd, 1, 10, 1e-6); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := SolveCG(4, f, bnd, 0, 10, 1e-6); err == nil {
		t.Error("ranks=0 must fail")
	}
	if _, err := SolveCG(2, f, bnd, 100, 10, 1e-6); err == nil {
		t.Error("too many ranks must fail")
	}
	if _, err := SolveCG(4, f, bnd, 1, 0, 1e-6); err == nil {
		t.Error("maxIter=0 must fail")
	}
}
