package petsc

import (
	"fmt"
	"math"
	"sync"

	"castencil/internal/runtime"
	"castencil/internal/stencil"
)

// Poisson5 assembles the local block of the standard five-point Poisson
// operator A = 4I - (N + S + E + W) on an n x n grid, with Dirichlet
// boundary values folded into the right-hand side: solving A x = b yields
// the discrete solution of -lap(u) = f with u = bnd on the boundary, where
// b[i] = f(i) + sum of boundary-neighbor values.
func Poisson5(n int, f func(gr, gc int) float64, bnd stencil.Boundary, rowStart, rowEnd int) (*AIJ, []float64) {
	mb := newMatBuilder(rowStart, rowEnd, n*n)
	b := make([]float64, rowEnd-rowStart)
	for row := rowStart; row < rowEnd; row++ {
		r, c := row/n, row%n
		b[row-rowStart] = f(r, c)
		mb.add(row, 4)
		for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
			rr, cc := r+d[0], c+d[1]
			if rr < 0 || rr >= n || cc < 0 || cc >= n {
				b[row-rowStart] += bnd(rr, cc)
				continue
			}
			mb.add(rr*n+cc, -1)
		}
		mb.endRow()
	}
	return mb.m, b
}

// CGResult reports a conjugate-gradient solve.
type CGResult struct {
	X          []float64 // gathered solution, length n*n
	Iterations int
	Residual   float64 // final 2-norm of the residual
	Converged  bool
	Messages   int // scatter + reduction messages
}

// cgComm is the per-rank communication endpoint of a CG solve: ghost
// scatter channels (like the Jacobi driver) plus reduction channels
// implementing a deterministic all-reduce (partial sums gathered in rank
// order at rank 0, result broadcast), so every rank sees bitwise-identical
// scalars and takes the same number of iterations.
type cgComm struct {
	rank, ranks int
	sends       []plan
	recvs       []plan
	chans       [][]chan scatterMsg
	toZero      []chan float64
	fromZero    []chan float64
	msgs        int
}

// allReduceSum returns the global sum of v, identical on every rank.
func (c *cgComm) allReduceSum(v float64) float64 {
	if c.ranks == 1 {
		return v
	}
	if c.rank == 0 {
		sum := v
		for r := 1; r < c.ranks; r++ {
			sum += <-c.toZero[r]
			c.msgs++
		}
		for r := 1; r < c.ranks; r++ {
			c.fromZero[r] <- sum
			c.msgs++
		}
		return sum
	}
	c.toZero[c.rank] <- v
	return <-c.fromZero[c.rank]
}

// scatter exchanges ghost spans of x with the neighboring ranks. Send
// buffers come from the shared arena and are recycled by the receiver, so a
// steady-state scatter allocates nothing.
func (c *cgComm) scatter(x []float64, lo int, ghostLo, ghostHi []float64, hi int) {
	for _, sp := range c.sends {
		vals := runtime.GetFloats(sp.s.hi - sp.s.lo)
		copy(vals, x[sp.s.lo-lo:sp.s.hi-lo])
		c.chans[sp.peer][c.rank] <- scatterMsg{Base: int64(sp.s.lo), Vals: vals}
		c.msgs++
	}
	for _, rp := range c.recvs {
		m := <-c.chans[c.rank][rp.peer]
		for i, v := range m.Vals {
			col := int(m.Base) + i
			if col < lo {
				ghostLo[col-(lo-len(ghostLo))] = v
			} else {
				ghostHi[col-hi] = v
			}
		}
		runtime.PutFloats(m.Vals)
	}
}

// SolveCG solves the five-point Poisson problem A x = b (assembled by
// Poisson5 from f and bnd) with the conjugate-gradient method over `ranks`
// concurrently executing MPI-rank analogs. It demonstrates the Krylov
// workload the paper's introduction motivates, on the same distributed
// substrate as the Jacobi baseline: row-block partition, VecScatter ghost
// exchange per SpMV, and two all-reduces per iteration — the latency-bound
// collectives that motivated communication-avoiding Krylov methods in the
// first place.
func SolveCG(n int, f func(gr, gc int) float64, bnd stencil.Boundary, ranks, maxIter int, tol float64) (*CGResult, error) {
	if n <= 0 || ranks <= 0 || maxIter < 1 {
		return nil, fmt.Errorf("petsc: invalid CG run n=%d ranks=%d maxIter=%d", n, ranks, maxIter)
	}
	rows := n * n
	if ranks > rows {
		return nil, fmt.Errorf("petsc: %d ranks exceed %d rows", ranks, rows)
	}

	chans := make([][]chan scatterMsg, ranks)
	for d := 0; d < ranks; d++ {
		chans[d] = make([]chan scatterMsg, ranks)
	}
	toZero := make([]chan float64, ranks)
	fromZero := make([]chan float64, ranks)
	for r := 1; r < ranks; r++ {
		toZero[r] = make(chan float64, 1)
		fromZero[r] = make(chan float64, 1)
	}

	out := make([]float64, rows)
	results := make([]CGResult, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		lo, hi := blockRange(r, rows, ranks)
		sends, recvs := scatterPlans(lo, hi, n, rows, ranks, r)
		for _, rp := range recvs {
			if chans[r][rp.peer] == nil {
				chans[r][rp.peer] = make(chan scatterMsg, 4)
			}
		}
		for _, sp := range sends {
			if chans[sp.peer][r] == nil {
				chans[sp.peer][r] = make(chan scatterMsg, 4)
			}
		}
		comm := &cgComm{rank: r, ranks: ranks, sends: sends, recvs: recvs,
			chans: chans, toZero: toZero, fromZero: fromZero}

		wg.Add(1)
		go func(r, lo, hi int, comm *cgComm) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[r] = fmt.Errorf("petsc: CG rank %d panicked: %v", r, rec)
				}
			}()
			local := hi - lo
			mat, b := Poisson5(n, f, bnd, lo, hi)
			x := make([]float64, local)
			res := make([]float64, local)
			p := make([]float64, local)
			q := make([]float64, local)
			ghostLo := make([]float64, n)
			ghostHi := make([]float64, n)
			lookup := func(col int64) float64 {
				c := int(col)
				switch {
				case c >= lo && c < hi:
					return p[c-lo]
				case c < lo:
					return ghostLo[c-(lo-n)]
				default:
					return ghostHi[c-hi]
				}
			}
			dot := func(a, b []float64) float64 {
				s := 0.0
				for i := range a {
					s += a[i] * b[i]
				}
				return s
			}
			copy(res, b) // x = 0 => r = b
			copy(p, res)
			rs := comm.allReduceSum(dot(res, res))
			iters := 0
			converged := false
			for iters < maxIter {
				if math.Sqrt(rs) <= tol {
					converged = true
					break
				}
				iters++
				comm.scatter(p, lo, ghostLo, ghostHi, hi)
				MatMult(mat, lookup, q)
				alpha := rs / comm.allReduceSum(dot(p, q))
				for i := range x {
					x[i] += alpha * p[i]
					res[i] -= alpha * q[i]
				}
				rsNew := comm.allReduceSum(dot(res, res))
				beta := rsNew / rs
				rs = rsNew
				if math.Sqrt(rs) <= tol {
					converged = true
					break
				}
				for i := range p {
					p[i] = res[i] + beta*p[i]
				}
			}
			copy(out[lo:hi], x)
			results[r] = CGResult{Iterations: iters, Residual: math.Sqrt(rs), Converged: converged, Messages: comm.msgs}
		}(r, lo, hi, comm)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	total := CGResult{X: out, Iterations: results[0].Iterations,
		Residual: results[0].Residual, Converged: results[0].Converged}
	for _, rr := range results {
		total.Messages += rr.Messages
		if rr.Iterations != total.Iterations {
			return nil, fmt.Errorf("petsc: CG ranks diverged in iteration count (%d vs %d)", rr.Iterations, total.Iterations)
		}
	}
	return &total, nil
}
