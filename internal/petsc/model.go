package petsc

import (
	"fmt"
	"time"

	"castencil/internal/machine"
	"castencil/internal/memmodel"
)

// Perf is the modeled performance of the PETSc formulation on a machine.
type Perf struct {
	Nodes      int
	Ranks      int // one MPI rank per core, the paper's PETSc configuration
	IterTime   time.Duration
	KernelTime time.Duration
	CommTime   time.Duration
	Makespan   time.Duration
	GFLOPS     float64
}

// ModelPerf prices the PETSc SpMV Jacobi on a machine model, mirroring the
// paper's analysis of why it trails the tile formulation by ~2x:
//
//   - every nonzero drags a 64-bit column index through memory next to its
//     64-bit value, "at the very least" doubling the loads per flop, so the
//     kernel streams ~2x the tile kernel's bytes per update;
//   - one MPI rank per core means all cores compute (no dedicated
//     communication thread) and the node bandwidth is split across
//     CoresPerNode ranks;
//   - the 1D row-block partition exchanges two n-point strips per node per
//     iteration, overlapped with interior computation (PETSc's split
//     MatMult), so an iteration costs max(kernel, comm).
func ModelPerf(m *machine.Model, n, nodes, iters int) (*Perf, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 || nodes <= 0 || iters <= 0 {
		return nil, fmt.Errorf("petsc: invalid model run n=%d nodes=%d iters=%d", n, nodes, iters)
	}
	ranks := nodes * m.CoresPerNode
	rows := n * n
	if ranks > rows {
		return nil, fmt.Errorf("petsc: %d ranks exceed %d rows", ranks, rows)
	}
	rowsPerRank := float64(rows) / float64(ranks)
	perCoreBW := m.StreamNode.BytesPerSec() / float64(m.CoresPerNode)
	// The paper's explanation of the 2x gap: index traffic doubles the
	// per-update memory movement of the (calibrated) tile kernel.
	bytesPerRow := 2 * m.Kern.BytesPerUpdate
	kernel := time.Duration(rowsPerRank * bytesPerRow / perCoreBW * float64(time.Second))

	// Cross-node scatter: the two boundary ranks of each node's row block
	// exchange an n-point strip with the adjacent node, serialized through
	// the NIC.
	var comm time.Duration
	if nodes > 1 {
		strip := n * 8
		ser := float64(strip) / m.Net.EffectiveBandwidth(strip)
		comm = m.Net.Latency + time.Duration(2*ser*float64(time.Second))
	}
	iter := kernel
	if comm > iter {
		iter = comm
	}
	makespan := iter * time.Duration(iters)
	return &Perf{
		Nodes:      nodes,
		Ranks:      ranks,
		IterTime:   iter,
		KernelTime: kernel,
		CommTime:   comm,
		Makespan:   makespan,
		GFLOPS:     memmodel.SweepFlops(n, iters) / makespan.Seconds() / 1e9,
	}, nil
}
