package petsc

import (
	"fmt"
	"sync"

	"castencil/internal/runtime"
	"castencil/internal/stencil"
)

// blockRange returns the row block [lo, hi) of rank r when n rows are split
// over p near-equal consecutive blocks (PETSc's default row distribution).
func blockRange(r, rows, p int) (lo, hi int) {
	base := rows / p
	rem := rows % p
	if r < rem {
		lo = r * (base + 1)
		return lo, lo + base + 1
	}
	lo = rem*(base+1) + (r-rem)*base
	return lo, lo + base
}

// ownerOf returns the rank owning a global row.
func ownerOf(row, rows, p int) int {
	base := rows / p
	rem := rows % p
	cut := rem * (base + 1)
	if row < cut {
		return row / (base + 1)
	}
	return rem + (row-cut)/base
}

// scatterMsg carries a contiguous run of x values starting at global index
// Base from one rank to another — the wire format of our VecScatter.
type scatterMsg struct {
	Base int64
	Vals []float64
}

// span is a contiguous global index range [lo, hi).
type span struct{ lo, hi int }

func (s span) empty() bool { return s.lo >= s.hi }

func intersect(a, b span) span {
	lo, hi := a.lo, a.hi
	if b.lo > lo {
		lo = b.lo
	}
	if b.hi < hi {
		hi = b.hi
	}
	return span{lo, hi}
}

// plan pairs a peer rank with a contiguous global index range to send to it
// or receive from it.
type plan struct {
	peer int
	s    span
}

// scatterPlans computes, for the rank owning rows [lo, hi) of a row-major
// n x n grid flattened to `rows` entries over `ranks` blocks, which spans
// of its rows each peer needs (sends) and which ghost spans it needs from
// each peer (recvs). The five-point operator references at most n indices
// below and above the local block.
func scatterPlans(lo, hi, n, rows, ranks, self int) (sends, recvs []plan) {
	gLo := span{lo - n, lo}
	if gLo.lo < 0 {
		gLo.lo = 0
	}
	gHi := span{hi, hi + n}
	if gHi.hi > rows {
		gHi.hi = rows
	}
	for p := 0; p < ranks; p++ {
		if p == self {
			continue
		}
		plo, phi := blockRange(p, rows, ranks)
		pgLo := intersect(span{plo - n, plo}, span{lo, hi})
		pgHi := intersect(span{phi, phi + n}, span{lo, hi})
		for _, s := range []span{pgLo, pgHi} {
			if !s.empty() {
				sends = append(sends, plan{peer: p, s: s})
			}
		}
		for _, g := range []span{gLo, gHi} {
			s := intersect(g, span{plo, phi})
			if !s.empty() {
				recvs = append(recvs, plan{peer: p, s: s})
			}
		}
	}
	return sends, recvs
}

// JacobiResult is the outcome of a distributed PETSc-style Jacobi run.
type JacobiResult struct {
	X        []float64 // full gathered solution, length n*n
	Messages int       // scatter messages exchanged in total
	NNZ      int       // global stored nonzeros
}

// RunJacobi performs iters Jacobi sweeps of the five-point operator on an
// n x n grid using the SpMV formulation over `ranks` concurrently executing
// MPI-rank analogs (goroutines with private memory, exchanging ghost values
// through typed channels). Structure per iteration, like PETSc with overlap
// enabled: post ghost sends, compute interior rows, receive ghosts, compute
// boundary rows.
//
// The result is bitwise identical to the stencil formulation because matrix
// rows accumulate terms in the exact kernel order (see Laplace5).
func RunJacobi(n int, w stencil.Weights, init stencil.Init, bnd stencil.Boundary, ranks, iters int) (*JacobiResult, error) {
	if n <= 0 || ranks <= 0 || iters < 0 {
		return nil, fmt.Errorf("petsc: invalid run n=%d ranks=%d iters=%d", n, ranks, iters)
	}
	rows := n * n
	if ranks > rows {
		return nil, fmt.Errorf("petsc: %d ranks exceed %d rows", ranks, rows)
	}

	// Channels: chans[dst][src] so per-peer FIFO keeps iterations ordered
	// with at most one iteration of skew (capacity 2).
	chans := make([][]chan scatterMsg, ranks)
	for d := 0; d < ranks; d++ {
		chans[d] = make([]chan scatterMsg, ranks)
	}

	out := make([]float64, rows)
	var totalMsgs int
	var totalNNZ int
	var mu sync.Mutex
	errs := make([]error, ranks)

	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		lo, hi := blockRange(r, rows, ranks)
		sends, recvs := scatterPlans(lo, hi, n, rows, ranks, r)
		for _, rp := range recvs {
			if chans[r][rp.peer] == nil {
				chans[r][rp.peer] = make(chan scatterMsg, 4)
			}
		}
		for _, sp := range sends {
			if chans[sp.peer][r] == nil {
				chans[sp.peer][r] = make(chan scatterMsg, 4)
			}
		}

		wg.Add(1)
		go func(r, lo, hi int, sends, recvs []plan) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[r] = fmt.Errorf("petsc: rank %d panicked: %v", r, rec)
				}
			}()

			op := Laplace5(n, w, bnd, lo, hi)
			mat := &op.AIJ
			local := hi - lo
			x := make([]float64, local)
			y := make([]float64, local)
			for i := 0; i < local; i++ {
				gr, gc := (lo+i)/n, (lo+i)%n
				x[i] = init(gr, gc)
			}
			// Ghost storage: dense over the (clipped) halo spans.
			ghostLo := make([]float64, n)
			ghostHi := make([]float64, n)
			lookup := op.Lookup(func(col int64) float64 {
				c := int(col)
				switch {
				case c >= lo && c < hi:
					return x[c-lo]
				case c < lo:
					return ghostLo[c-(lo-n)]
				default:
					return ghostHi[c-hi]
				}
			})
			// Interior rows touch no ghosts: their column span stays in
			// [lo, hi). Rows [lo+n, hi-n) qualify.
			intLo, intHi := lo+n, hi-n
			if intLo > hi {
				intLo = hi
			}
			if intHi < intLo {
				intHi = intLo
			}
			msgs := 0
			for it := 0; it < iters; it++ {
				// (1) Post boundary sends. Buffers come from the shared
				// arena; the receiver recycles them after scattering, so
				// steady-state iterations allocate nothing.
				for _, sp := range sends {
					vals := runtime.GetFloats(sp.s.hi - sp.s.lo)
					copy(vals, x[sp.s.lo-lo:sp.s.hi-lo])
					chans[sp.peer][r] <- scatterMsg{Base: int64(sp.s.lo), Vals: vals}
					msgs++
				}
				// (2) Overlap: compute interior rows while ghosts travel.
				sub := AIJ{RowStart: intLo, RowEnd: intHi, NCols: mat.NCols,
					Ia: mat.Ia[intLo-lo : intHi-lo+1], Ja: mat.Ja, Va: mat.Va}
				MatMult(&sub, lookup, y[intLo-lo:])
				// (3) Receive ghosts.
				for _, rp := range recvs {
					m := <-chans[r][rp.peer]
					for i, v := range m.Vals {
						c := int(m.Base) + i
						if c < lo {
							ghostLo[c-(lo-n)] = v
						} else {
							ghostHi[c-hi] = v
						}
					}
					runtime.PutFloats(m.Vals)
				}
				// (4) Boundary rows.
				for _, rg := range []span{{lo, intLo}, {intHi, hi}} {
					if rg.empty() {
						continue
					}
					sub := AIJ{RowStart: rg.lo, RowEnd: rg.hi, NCols: mat.NCols,
						Ia: mat.Ia[rg.lo-lo : rg.hi-lo+1], Ja: mat.Ja, Va: mat.Va}
					MatMult(&sub, lookup, y[rg.lo-lo:])
				}
				x, y = y, x
			}
			mu.Lock()
			copy(out[lo:hi], x)
			totalMsgs += msgs
			totalNNZ += mat.NNZ()
			mu.Unlock()
		}(r, lo, hi, sends, recvs)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &JacobiResult{X: out, Messages: totalMsgs, NNZ: totalNNZ}, nil
}
