package petsc

import (
	"math"
	"testing"
	"testing/quick"

	"castencil/internal/machine"
	"castencil/internal/stencil"
)

func TestLaplace5Structure(t *testing.T) {
	n := 4
	op := Laplace5(n, stencil.Jacobi(), stencil.ConstBoundary(0), 0, n*n)
	if op.LocalRows() != 16 {
		t.Fatalf("rows = %d", op.LocalRows())
	}
	// Every row holds exactly 5 entries (kernel order), ghosts included.
	if op.NNZ() != 5*n*n {
		t.Errorf("nnz = %d, want %d", op.NNZ(), 5*n*n)
	}
	// Ghost columns: one per out-of-domain adjacency = 4n.
	if len(op.Bvals) != 4*n {
		t.Errorf("ghost columns = %d, want %d", len(op.Bvals), 4*n)
	}
	for _, v := range op.Bvals {
		if v != 0 {
			t.Errorf("zero boundary must give zero ghost values, got %v", v)
		}
	}
}

func TestLaplace5BoundaryVector(t *testing.T) {
	n := 3
	bnd := func(gr, gc int) float64 { return 10 }
	op := Laplace5(n, stencil.Jacobi(), bnd, 0, n*n)
	x := make([]float64, n*n) // zero interior
	y := make([]float64, n*n)
	MatMult(&op.AIJ, op.Lookup(func(c int64) float64 { return x[c] }), y)
	// Corner row 0 has two out-of-domain neighbors (N and W): 2*0.25*10.
	if y[0] != 5 {
		t.Errorf("corner = %v, want 5", y[0])
	}
	// Center row 4 has none.
	if y[4] != 0 {
		t.Errorf("center = %v, want 0", y[4])
	}
}

func TestMatMultMatchesStencilBitwise(t *testing.T) {
	// The SpMV formulation must reproduce the stencil kernel exactly,
	// bit for bit, because rows accumulate in kernel order.
	n := 7
	w := stencil.Weights{C: 0.1, N: 0.2, S: 0.3, W: 0.15, E: 0.25}
	init := stencil.HashInit(3)
	bnd := func(gr, gc int) float64 { return float64(gr+gc) * 0.01 }

	ref := stencil.NewReference(n, w, init, bnd)
	ref.Step()

	op := Laplace5(n, w, bnd, 0, n*n)
	x := make([]float64, n*n)
	for i := range x {
		x[i] = init(i/n, i%n)
	}
	y := make([]float64, n*n)
	MatMult(&op.AIJ, op.Lookup(func(c int64) float64 { return x[c] }), y)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if got, want := y[r*n+c], ref.At(r, c); got != want {
				t.Fatalf("(%d,%d): %v != %v", r, c, got, want)
			}
		}
	}
}

func TestRunJacobiSerialMatchesReference(t *testing.T) {
	n, iters := 9, 6
	w := stencil.Jacobi()
	init := stencil.HashInit(8)
	bnd := stencil.ConstBoundary(1)
	res, err := RunJacobi(n, w, init, bnd, 1, iters)
	if err != nil {
		t.Fatal(err)
	}
	ref := stencil.NewReference(n, w, init, bnd)
	ref.Run(iters)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if got, want := res.X[r*n+c], ref.At(r, c); got != want {
				t.Fatalf("(%d,%d): %v != %v (bitwise)", r, c, got, want)
			}
		}
	}
	if res.Messages != 0 {
		t.Errorf("serial run sent %d messages", res.Messages)
	}
}

func TestRunJacobiDistributedMatchesReference(t *testing.T) {
	n, iters := 12, 8
	w := stencil.Heat(0.15)
	init := stencil.HashInit(5)
	bnd := func(gr, gc int) float64 { return float64(gr - gc) }
	ref := stencil.NewReference(n, w, init, bnd)
	ref.Run(iters)
	for _, ranks := range []int{2, 3, 5, 8, 16} {
		res, err := RunJacobi(n, w, init, bnd, ranks, iters)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if got, want := res.X[r*n+c], ref.At(r, c); got != want {
					t.Fatalf("ranks=%d (%d,%d): %v != %v", ranks, r, c, got, want)
				}
			}
		}
		if ranks > 1 && res.Messages == 0 {
			t.Errorf("ranks=%d: no scatter messages", ranks)
		}
	}
}

func TestRunJacobiManySmallRanks(t *testing.T) {
	// Blocks much smaller than one grid row: ghost spans cross several
	// ranks. 5x5 grid over 17 ranks -> 1-2 rows per rank.
	n, iters := 5, 4
	w := stencil.Jacobi()
	init := stencil.HashInit(2)
	bnd := stencil.ConstBoundary(0)
	ref := stencil.NewReference(n, w, init, bnd)
	ref.Run(iters)
	res, err := RunJacobi(n, w, init, bnd, 17, iters)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.X {
		if want := ref.At(i/n, i%n); v != want {
			t.Fatalf("row %d: %v != %v", i, v, want)
		}
	}
}

func TestRunJacobiPropertyRandomRanks(t *testing.T) {
	// Property: any rank count from 1..rows gives the same bits.
	w := stencil.Jacobi()
	init := stencil.HashInit(77)
	bnd := stencil.ConstBoundary(0.5)
	n, iters := 6, 3
	ref := stencil.NewReference(n, w, init, bnd)
	ref.Run(iters)
	f := func(rk uint8) bool {
		ranks := int(rk)%(n*n) + 1
		res, err := RunJacobi(n, w, init, bnd, ranks, iters)
		if err != nil {
			return false
		}
		for i, v := range res.X {
			if v != ref.At(i/n, i%n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRunJacobiValidation(t *testing.T) {
	w := stencil.Jacobi()
	init := stencil.HashInit(0)
	bnd := stencil.ConstBoundary(0)
	if _, err := RunJacobi(0, w, init, bnd, 1, 1); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := RunJacobi(4, w, init, bnd, 0, 1); err == nil {
		t.Error("ranks=0 must fail")
	}
	if _, err := RunJacobi(2, w, init, bnd, 100, 1); err == nil {
		t.Error("more ranks than rows must fail")
	}
	if res, err := RunJacobi(4, w, init, bnd, 2, 0); err != nil || res == nil {
		t.Error("0 iterations must return the initial vector")
	}
}

func TestModelPerfTwoXGap(t *testing.T) {
	// The modeled PETSc kernel must land at about half the tile kernel's
	// node performance (the paper's headline comparison).
	for _, m := range machine.Builtin() {
		p, err := ModelPerf(m, 23040, 1, 100)
		if err != nil {
			t.Fatal(err)
		}
		// Tile-side node GFLOP/s at the calibrated plateau:
		tile := 9.0 / (2 * m.Kern.BytesPerUpdate / (m.StreamNode.BytesPerSec() / float64(m.CoresPerNode))) / 1e9 * float64(m.CoresPerNode)
		_ = tile
		ratio := p.GFLOPS * 2 * m.Kern.BytesPerUpdate / 9.0 / m.StreamNode.BytesPerSec() * 1e9
		if math.Abs(ratio-1) > 0.01 {
			t.Errorf("%s: kernel-bound GFLOPS off: ratio %v", m.Name, ratio)
		}
	}
}

func TestModelPerfScaling(t *testing.T) {
	m := machine.NaCL()
	p1, err := ModelPerf(m, 23040, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	p64, err := ModelPerf(m, 23040, 64, 100)
	if err != nil {
		t.Fatal(err)
	}
	speedup := p64.GFLOPS / p1.GFLOPS
	if speedup < 30 || speedup > 64.5 {
		t.Errorf("64-node speedup = %.1f, want strong scaling in (30,64]", speedup)
	}
	if p64.CommTime == 0 {
		t.Error("multi-node run must model communication")
	}
	if p1.CommTime != 0 {
		t.Error("single node must not communicate")
	}
}

func TestModelPerfValidation(t *testing.T) {
	m := machine.NaCL()
	if _, err := ModelPerf(m, 0, 1, 1); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := ModelPerf(m, 2, 64, 1); err == nil {
		t.Error("ranks>rows must fail")
	}
}

func TestBlockRangeOwnerConsistency(t *testing.T) {
	f := func(rows16, p8 uint8) bool {
		rows := int(rows16) + 1
		p := int(p8)%rows + 1
		covered := 0
		for r := 0; r < p; r++ {
			lo, hi := blockRange(r, rows, p)
			covered += hi - lo
			for i := lo; i < hi; i++ {
				if ownerOf(i, rows, p) != r {
					return false
				}
			}
		}
		return covered == rows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
