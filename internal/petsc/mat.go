// Package petsc is a from-scratch analog of the slice of PETSc the paper
// uses as its baseline (section IV-A): distributed vectors, AIJ (CSR)
// sparse matrices partitioned by block rows with one MPI rank per core,
// VecScatter ghost exchange with communication/computation overlap, and a
// MatMult-based Jacobi driver. The 2D grid is flattened into a 1D solution
// vector and the five-point update becomes a sparse matrix — which is
// exactly why the paper finds it ~2x slower than the tile formulation: each
// nonzero drags a 64-bit column index through memory alongside its value.
package petsc

import (
	"fmt"

	"castencil/internal/stencil"
)

// AIJ is a CSR sparse matrix holding a block of consecutive global rows.
type AIJ struct {
	RowStart, RowEnd int // global rows [RowStart, RowEnd)
	NCols            int
	Ia               []int64   // row pointers, len = local rows + 1
	Ja               []int64   // global column indices
	Va               []float64 // values
}

// LocalRows returns the number of rows stored locally.
func (m *AIJ) LocalRows() int { return m.RowEnd - m.RowStart }

// NNZ returns the number of stored nonzeros.
func (m *AIJ) NNZ() int { return len(m.Ja) }

// matBuilder assembles CSR rows in insertion order. Column order within a
// row is preserved exactly as inserted so that MatMult accumulates in the
// same order as the stencil kernel — making the SpMV formulation bitwise
// identical to the tile formulation.
type matBuilder struct {
	m *AIJ
}

func newMatBuilder(rowStart, rowEnd, ncols int) *matBuilder {
	rows := rowEnd - rowStart
	return &matBuilder{m: &AIJ{
		RowStart: rowStart, RowEnd: rowEnd, NCols: ncols,
		Ia: make([]int64, 1, rows+1),
	}}
}

// endRow seals the current row; rows must be completed in order.
func (b *matBuilder) endRow() {
	b.m.Ia = append(b.m.Ia, int64(len(b.m.Ja)))
}

func (b *matBuilder) add(col int, v float64) {
	b.m.Ja = append(b.m.Ja, int64(col))
	b.m.Va = append(b.m.Va, v)
}

// Operator is the local block of the flattened stencil operator plus the
// Dirichlet boundary values it references. Out-of-domain neighbors are
// represented as ghost columns — negative Ja entries indexing Bvals — the
// CSR analog of PETSc's DMDA ghosted local vectors. Keeping the boundary
// terms as in-row entries (instead of an additive RHS vector) preserves the
// stencil kernel's exact accumulation order, so the SpMV formulation is
// bitwise identical to the tile formulation.
type Operator struct {
	AIJ
	Bvals []float64 // boundary values addressed by ghost columns
}

// Lookup wraps a local x accessor with ghost-column resolution.
func (op *Operator) Lookup(x func(col int64) float64) func(col int64) float64 {
	return func(col int64) float64 {
		if col < 0 {
			return op.Bvals[-col-1]
		}
		return x(col)
	}
}

// Laplace5 assembles the local block of the five-point stencil operator for
// an n x n grid (row-major flattening: point (r,c) -> r*n + c) over rows
// [rowStart, rowEnd). Every row holds exactly five entries in the stencil
// kernel's accumulation order — center, west, east, north, south — with
// out-of-domain neighbors as ghost columns, so one Jacobi sweep y = A x is
// bit-for-bit the kernel's update.
func Laplace5(n int, w stencil.Weights, bnd stencil.Boundary, rowStart, rowEnd int) *Operator {
	if rowStart < 0 || rowEnd > n*n || rowStart > rowEnd {
		panic(fmt.Sprintf("petsc: invalid row range [%d,%d) for n=%d", rowStart, rowEnd, n))
	}
	mb := newMatBuilder(rowStart, rowEnd, n*n)
	op := &Operator{}
	for row := rowStart; row < rowEnd; row++ {
		r, c := row/n, row%n
		add := func(rr, cc int, wt float64) {
			if rr < 0 || rr >= n || cc < 0 || cc >= n {
				op.Bvals = append(op.Bvals, bnd(rr, cc))
				mb.add(-len(op.Bvals), wt)
				return
			}
			mb.add(rr*n+cc, wt)
		}
		add(r, c, w.C)
		add(r, c-1, w.W)
		add(r, c+1, w.E)
		add(r-1, c, w.N)
		add(r+1, c, w.S)
		mb.endRow()
	}
	op.AIJ = *mb.m
	return op
}

// MatMult computes y = A x for the local row block. x is addressed by
// global column through the lookup function (distributed runs pass a
// ghosted accessor; serial runs pass a closure over the full vector).
//
// Accumulation follows insertion order, matching the stencil kernel's
// operation order exactly.
func MatMult(m *AIJ, x func(col int64) float64, y []float64) {
	rows := m.LocalRows()
	if len(y) < rows {
		panic("petsc: y too short")
	}
	for i := 0; i < rows; i++ {
		sum := 0.0
		for k := m.Ia[i]; k < m.Ia[i+1]; k++ {
			sum += m.Va[k] * x(m.Ja[k])
		}
		y[i] = sum
	}
}

// BytesPerRow estimates the memory traffic of one CSR row at the paper's
// accounting: 5 values + 5 64-bit column indices + row pointer share +
// x reads + y write. Used by the performance model; see ModelPerf.
const BytesPerRow = 5*8 + 5*8 + 8 + 2*8 // ~104 B vs ~33 B/update for tiles
