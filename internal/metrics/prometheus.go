package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4): families grouped under one
// # HELP / # TYPE header, histograms expanded into cumulative _bucket
// series plus _sum and _count. Families print in registration order;
// series within a family in label order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	// Snapshot the family structure under the lock; instrument reads are
	// atomic and happen after release, so a scrape never blocks updates.
	type fam struct {
		name, help string
		kind       kind
		series     []*metric
	}
	var fams []*fam
	byName := make(map[string]*fam)
	for _, m := range r.order {
		f, ok := byName[m.name]
		if !ok {
			f = &fam{name: m.name, help: m.help, kind: m.kind}
			byName[m.name] = f
			fams = append(fams, f)
		}
		f.series = append(f.series, m)
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typeName(f.kind)); err != nil {
			return err
		}
		series := append([]*metric(nil), f.series...)
		sort.Slice(series, func(i, j int) bool { return series[i].labels < series[j].labels })
		for _, m := range series {
			if err := writeSeries(w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func typeName(k kind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

func writeSeries(w io.Writer, m *metric) error {
	switch m.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.c.Value())
		return err
	case kindGauge:
		v := int64(0)
		if m.gf != nil {
			v = m.gf()
		} else if m.g != nil {
			v = m.g.Value()
		}
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, v)
		return err
	default:
		return writeHistogram(w, m)
	}
}

// writeHistogram renders the cumulative bucket series. Extra labels merge
// with the le label, preserving the series' own labels first.
func writeHistogram(w io.Writer, m *metric) error {
	h := m.h
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			m.name, mergeLabels(m.labels, "le", formatBound(bound)), cum); err != nil {
			return err
		}
	}
	cum += h.buckets[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		m.name, mergeLabels(m.labels, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", m.name, m.labels, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, m.labels, h.Count())
	return err
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// mergeLabels splices one extra label into a pre-rendered label block.
func mergeLabels(rendered, key, val string) string {
	extra := fmt.Sprintf("%s=%q", key, val)
	if rendered == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(rendered, "}") + "," + extra + "}"
}
