// Package metrics is a dependency-free instrumentation registry for the
// service layer: counters, gauges and histograms with constant labels,
// exposed in the Prometheus text format (see prometheus.go). It exists so
// the daemon can report live runtime behavior — tasks executed, steals,
// bundles, retransmits, queue depth, job latency percentiles — without
// pulling a client library into a repository that is otherwise
// dependency-free.
//
// All instruments are safe for concurrent use and updates are single
// atomic operations, so they are cheap enough to sit on serving paths.
// Metrics are registered once (GetOrCreate semantics: registering the same
// name+labels twice returns the same instrument) and live for the life of
// the registry.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels are constant key/value pairs attached to an instrument (one time
// series per distinct label set, as in Prometheus).
type Labels map[string]string

// kind is the exposition type of a family.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is a programming error and is
// ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution: observation counts per
// upper-bound bucket plus a running sum, enough to expose Prometheus
// histograms and answer approximate quantile queries locally.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, implicit +Inf last
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search would be overkill: bucket lists are short (tens).
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile returns an approximate q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket holding the target rank — the same
// estimate Prometheus's histogram_quantile computes server-side. Returns
// NaN with no observations; the highest finite bound when the rank lands
// in the +Inf bucket.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.buckets {
		prev := cum
		cum += h.buckets[i].Load()
		if float64(cum) >= rank {
			if i == len(h.bounds) {
				// +Inf bucket: clamp to the largest finite bound.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			inBucket := float64(cum - prev)
			if inBucket <= 0 {
				return hi
			}
			return lo + (hi-lo)*((rank-float64(prev))/inBucket)
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// DefLatencyBuckets is the default latency histogram layout, in seconds:
// exponential from 1ms to ~67s, fine enough for p50/p99 on both quick sim
// jobs and long real runs.
var DefLatencyBuckets = expBuckets(0.001, 2, 17)

// expBuckets returns n ascending bounds starting at start, each factor
// times the previous.
func expBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metric is one registered time series.
type metric struct {
	name   string // family name
	help   string
	kind   kind
	labels string // pre-rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	gf     func() int64 // gauge callback (nil unless a GaugeFunc)
}

// Registry holds registered instruments and renders them (prometheus.go).
type Registry struct {
	mu    sync.Mutex
	by    map[string]*metric // key: name + rendered labels
	order []*metric          // stable exposition order (registration order)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{by: make(map[string]*metric)}
}

// renderLabels serializes a label set deterministically: {a="x",b="y"}.
func renderLabels(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) lookup(name, help string, k kind, labels Labels) *metric {
	key := name + renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.by[key]; ok {
		if m.kind != k {
			panic(fmt.Sprintf("metrics: %q re-registered as a different kind", key))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: k, labels: renderLabels(labels)}
	r.by[key] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns the counter registered under name+labels, creating it on
// first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	m := r.lookup(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	m := r.lookup(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape time
// (e.g. live queue depth read from the owning structure).
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() int64) {
	m := r.lookup(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	m.gf = fn
}

// CounterValue reads a registered counter by name+labels without creating
// it: the current count, or ok=false when no such counter exists. It lets
// tests, smoke scripts and benches assert on live service counters (cache
// hits, per-tenant admissions, backend errors) without scraping and parsing
// the text exposition.
func (r *Registry) CounterValue(name string, labels Labels) (int64, bool) {
	key := name + renderLabels(labels)
	r.mu.Lock()
	m, ok := r.by[key]
	r.mu.Unlock()
	if !ok || m.kind != kindCounter || m.c == nil {
		return 0, false
	}
	return m.c.Value(), true
}

// Histogram returns the histogram registered under name+labels, creating it
// with the given bucket bounds on first use (nil bounds = DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	m := r.lookup(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.h == nil {
		if len(bounds) == 0 {
			bounds = DefLatencyBuckets
		}
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		m.h = &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
	}
	return m.h
}
