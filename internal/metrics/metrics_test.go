package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs", Labels{"state": "done"})
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Same name+labels returns the same instrument.
	if r.Counter("jobs_total", "jobs", Labels{"state": "done"}) != c {
		t.Error("re-registration returned a different counter")
	}
	// Same family, different labels: a distinct series.
	c2 := r.Counter("jobs_total", "jobs", Labels{"state": "failed"})
	if c2 == c {
		t.Error("distinct label sets shared an instrument")
	}

	g := r.Gauge("queue_depth", "depth", nil)
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 4, 8}, nil)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Errorf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 119.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	// Rank 4 of 8 falls in the (2,4] bucket (3 observations there, cum 3..6).
	if q := h.Quantile(0.5); q < 2 || q > 4 {
		t.Errorf("p50 = %v, want within (2,4]", q)
	}
	// The +Inf bucket clamps to the largest finite bound.
	if q := h.Quantile(0.999); q != 8 {
		t.Errorf("p99.9 = %v, want clamp to 8", q)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops", "", nil)
	h := r.Histogram("lat", "", []float64{1, 10}, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("lost updates: counter %d, histogram %d", c.Value(), h.Count())
	}
	if got := h.Sum(); math.Abs(got-4000) > 1e-6 {
		t.Errorf("histogram sum = %v, want 4000", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("stencild_jobs_total", "jobs by terminal state", Labels{"state": "done"}).Add(3)
	r.Counter("stencild_jobs_total", "jobs by terminal state", Labels{"state": "cancelled"}).Add(1)
	r.Gauge("stencild_queue_depth", "queued jobs", nil).Set(2)
	r.GaugeFunc("stencild_running", "running jobs", nil, func() int64 { return 5 })
	h := r.Histogram("stencild_job_duration_seconds", "job wall time", []float64{0.1, 1}, nil)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE stencild_jobs_total counter",
		`stencild_jobs_total{state="cancelled"} 1`,
		`stencild_jobs_total{state="done"} 3`,
		"# TYPE stencild_queue_depth gauge",
		"stencild_queue_depth 2",
		"stencild_running 5",
		"# TYPE stencild_job_duration_seconds histogram",
		`stencild_job_duration_seconds_bucket{le="0.1"} 1`,
		`stencild_job_duration_seconds_bucket{le="1"} 2`,
		`stencild_job_duration_seconds_bucket{le="+Inf"} 3`,
		"stencild_job_duration_seconds_sum 30.55",
		"stencild_job_duration_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// One HELP/TYPE header per family even with several series.
	if n := strings.Count(out, "# TYPE stencild_jobs_total"); n != 1 {
		t.Errorf("family header emitted %d times", n)
	}
	// Labeled histogram series merge le with the series labels.
	r2 := NewRegistry()
	r2.Histogram("lat", "", []float64{1}, Labels{"engine": "real"}).Observe(0.5)
	b.Reset()
	if err := r2.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `lat_bucket{engine="real",le="1"} 1`) {
		t.Errorf("merged labels wrong:\n%s", b.String())
	}
}
