package core

import (
	"fmt"
	"sort"

	"castencil/internal/machine"
)

// PlanResult reports one candidate evaluated by AutoPlan. Family selects the
// kernel family; StepSize is the CA exchange period (0 outside the CA
// family, preserving the pre-three-way meaning "0 = not CA"); Width is the
// WF wavefront width (0 outside the WF family).
type PlanResult struct {
	StepSize int
	GFLOPS   float64
	Family   Variant
	Width    int
}

// param returns the candidate's family parameter: the CA step size, the WF
// width, or 0 for base. Used for deterministic tie-breaking.
func (c PlanResult) param() int {
	switch c.Family {
	case CA:
		return c.StepSize
	case WF:
		return c.Width
	}
	return 0
}

// String renders the candidate the way the CLI tables print it.
func (c PlanResult) String() string {
	switch c.Family {
	case CA:
		return fmt.Sprintf("CA s=%d", c.StepSize)
	case WF:
		return fmt.Sprintf("WF w=%d", c.Width)
	}
	return "base"
}

// Plan is AutoPlan's outcome.
type Plan struct {
	// BestStepSize is the recommended CA step size; 0 unless the winning
	// family is CA (legacy two-way field, kept for compatibility).
	BestStepSize int
	BestGFLOPS   float64
	// BestFamily is the winning kernel family; BestWidth is the wavefront
	// width when it is WF (0 otherwise).
	BestFamily Variant
	BestWidth  int
	// Candidates lists every evaluated configuration, best first.
	Candidates []PlanResult
}

// UseCA reports whether the plan recommends the CA variant.
func (p *Plan) UseCA() bool { return p.BestFamily == CA }

// UseWavefront reports whether the plan recommends the WF variant.
func (p *Plan) UseWavefront() bool { return p.BestFamily == WF }

// DefaultPlanCandidates is the parameter candidate set AutoPlan probes when
// none is supplied (the paper's Fig. 9 sweep plus intermediate points); each
// value is tried both as a CA step size and as a WF width.
var DefaultPlanCandidates = []int{2, 5, 10, 15, 20, 25, 40}

// sortPlanCandidates orders candidates best-first, deterministically: higher
// GFLOPS first; among ties, the smaller family parameter wins (base, with
// parameter 0, beats any tied temporal-blocking configuration — prefer the
// simpler plan when the model sees no difference); among parameter ties, the
// lower-numbered family (Base < CA < WF). The sort is stable, so equal keys
// keep probe order.
func sortPlanCandidates(cands []PlanResult) {
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.GFLOPS != b.GFLOPS {
			return a.GFLOPS > b.GFLOPS
		}
		if a.param() != b.param() {
			return a.param() < b.param()
		}
		return a.Family < b.Family
	})
}

// AutoPlan implements the paper's section-VII future-work item — making the
// communication-avoiding transformation transparent to the user — at the
// planning level: it probes the machine model with the virtual-time engine
// across three kernel families — base, CA at each candidate step size, and
// wavefront at each candidate width — and returns the best configuration for
// the given problem. Candidates exceeding the smallest tile dimension are
// skipped; ratio carries the kernel-adjustment knob (1 = real kernel).
func AutoPlan(cfg Config, m *machine.Model, ratio float64, candidates []int) (*Plan, error) {
	if m == nil {
		return nil, fmt.Errorf("core: AutoPlan needs a machine model")
	}
	if len(candidates) == 0 {
		candidates = DefaultPlanCandidates
	}
	base, err := Simulate(Base, cfg, SimOptions{Machine: m, Ratio: ratio})
	if err != nil {
		return nil, err
	}
	plan := &Plan{Candidates: []PlanResult{{Family: Base, GFLOPS: base.GFLOPS}}}
	for _, s := range candidates {
		if s < 1 {
			continue
		}
		c := cfg
		c.StepSize = s
		if _, err := c.validate(CA); err == nil {
			res, err := Simulate(CA, c, SimOptions{Machine: m, Ratio: ratio})
			if err != nil {
				return nil, err
			}
			plan.Candidates = append(plan.Candidates,
				PlanResult{Family: CA, StepSize: s, GFLOPS: res.GFLOPS})
		}
		c = cfg
		c.Wavefront = s
		if _, err := c.validate(WF); err == nil {
			res, err := Simulate(WF, c, SimOptions{Machine: m, Ratio: ratio})
			if err != nil {
				return nil, err
			}
			plan.Candidates = append(plan.Candidates,
				PlanResult{Family: WF, Width: s, GFLOPS: res.GFLOPS})
		}
	}
	sortPlanCandidates(plan.Candidates)
	best := plan.Candidates[0]
	plan.BestGFLOPS = best.GFLOPS
	plan.BestFamily = best.Family
	plan.BestStepSize = best.StepSize
	plan.BestWidth = best.Width
	return plan, nil
}
