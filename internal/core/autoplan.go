package core

import (
	"fmt"
	"sort"

	"castencil/internal/machine"
)

// PlanResult reports one candidate evaluated by AutoPlan. StepSize 0 means
// the base (non-CA) variant.
type PlanResult struct {
	StepSize int
	GFLOPS   float64
}

// Plan is AutoPlan's outcome.
type Plan struct {
	// Best is the recommended configuration: the base variant when
	// BestStepSize is 0, otherwise CA with that step size.
	BestStepSize int
	BestGFLOPS   float64
	// Candidates lists every evaluated configuration, best first.
	Candidates []PlanResult
}

// UseCA reports whether the plan recommends the CA variant at all.
func (p *Plan) UseCA() bool { return p.BestStepSize > 0 }

// DefaultPlanCandidates is the step-size candidate set AutoPlan probes when
// none is supplied (the paper's Fig. 9 sweep plus intermediate points).
var DefaultPlanCandidates = []int{2, 5, 10, 15, 20, 25, 40}

// AutoPlan implements the paper's section-VII future-work item — making the
// communication-avoiding transformation transparent to the user — at the
// planning level: it probes the machine model with the virtual-time engine
// across candidate step sizes (plus the base variant) and returns the best
// configuration for the given problem. Candidates exceeding the smallest
// tile dimension are skipped; ratio carries the kernel-adjustment knob
// (1 = real kernel).
func AutoPlan(cfg Config, m *machine.Model, ratio float64, candidates []int) (*Plan, error) {
	if m == nil {
		return nil, fmt.Errorf("core: AutoPlan needs a machine model")
	}
	if len(candidates) == 0 {
		candidates = DefaultPlanCandidates
	}
	base, err := Simulate(Base, cfg, SimOptions{Machine: m, Ratio: ratio})
	if err != nil {
		return nil, err
	}
	plan := &Plan{Candidates: []PlanResult{{StepSize: 0, GFLOPS: base.GFLOPS}}}
	for _, s := range candidates {
		if s < 1 {
			continue
		}
		c := cfg
		c.StepSize = s
		if _, err := c.validate(CA); err != nil {
			continue // step size exceeds a tile dimension: not feasible
		}
		res, err := Simulate(CA, c, SimOptions{Machine: m, Ratio: ratio})
		if err != nil {
			return nil, err
		}
		plan.Candidates = append(plan.Candidates, PlanResult{StepSize: s, GFLOPS: res.GFLOPS})
	}
	sort.SliceStable(plan.Candidates, func(i, j int) bool {
		return plan.Candidates[i].GFLOPS > plan.Candidates[j].GFLOPS
	})
	plan.BestStepSize = plan.Candidates[0].StepSize
	plan.BestGFLOPS = plan.Candidates[0].GFLOPS
	return plan, nil
}
