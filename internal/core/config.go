// Package core implements the paper's contribution: the 2D five-point
// Jacobi stencil expressed as task graphs over the PaRSEC-analog runtime, in
// two flavors —
//
//   - Base: every tile carries a one-layer ghost region and exchanges halos
//     with its four cardinal neighbors every iteration (section IV-B1).
//   - CA: the PA1 communication-avoiding scheme of Demmel et al. Tiles on a
//     node boundary carry an s-layer ghost region, additionally buffer s x s
//     corner blocks from their diagonal neighbors, communicate only every s
//     iterations, and redundantly recompute the ghost region with a
//     shrinking-trapezoid update in between (section IV-B2).
//
// Graphs built here run on both engines: internal/runtime executes them for
// real (numerical correctness), internal/desim replays them against machine
// cost models (performance figures).
package core

import (
	"fmt"

	"castencil/internal/grid"
	"castencil/internal/stencil"
)

// Variant selects the stencil implementation.
type Variant int

const (
	// Base is the full-communication version: halo exchange every step.
	Base Variant = iota
	// CA is the PA1 communication-avoiding version.
	CA
	// WF is the wavefront temporal-blocking version: every tile carries a
	// w-layer ghost region (plus w x w corner blocks), all tiles exchange
	// only every w iterations, and one fused task advances a tile w steps
	// with an in-tile diagonal wavefront whose per-level update regions
	// shrink like the CA trapezoid. Where CA deepens only node-boundary
	// tiles and still runs one task per tile per step, WF trades more
	// ghost-region recompute for w-fold fewer tasks and exchanges on every
	// tile.
	WF
)

func (v Variant) String() string {
	switch v {
	case Base:
		return "base"
	case CA:
		return "ca"
	case WF:
		return "wf"
	}
	return "unknown"
}

// TransformMode selects an optional graph rewrite applied after BuildGraph
// (see internal/ptg's Transform framework).
type TransformMode int

const (
	// TransformNone runs the graph exactly as built.
	TransformNone TransformMode = iota
	// TransformSplit applies inner/border task splitting: each (tile,
	// iteration) task becomes one interior task that depends only on the
	// tile's own previous state — so it runs while halos are in flight —
	// plus thin border tasks gated on the original halo flows, and a
	// commit task that swaps buffers and publishes outgoing halos. The
	// rewrite is bitwise-neutral: the split parts cover the exact update
	// region of the unsplit task.
	TransformSplit
)

func (m TransformMode) String() string {
	switch m {
	case TransformNone:
		return "none"
	case TransformSplit:
		return "split"
	}
	return "unknown"
}

// TransformNames lists the accepted ParseTransform spellings.
const TransformNames = "none, split"

// ParseTransform maps a -transform flag value to a TransformMode. The empty
// string, "none", and "off" select no transform.
func ParseTransform(name string) (TransformMode, error) {
	switch name {
	case "", "none", "off":
		return TransformNone, nil
	case "split":
		return TransformSplit, nil
	}
	return TransformNone, fmt.Errorf("core: unknown transform %q (have %s)", name, TransformNames)
}

// Config describes one stencil problem instance and its decomposition.
type Config struct {
	// N is the global grid extent (N x N points).
	N int
	// TileRows, TileCols are the tile extents (the paper's mb, nb). If
	// TileCols is zero it defaults to TileRows.
	TileRows, TileCols int
	// P, Q are the process-grid extents (P*Q nodes). If Q is zero it
	// defaults to P.
	P, Q int
	// Steps is the iteration count (the paper runs 100).
	Steps int
	// StepSize is the CA exchange period s (the paper sweeps 5..40,
	// default 15). Ignored by the base variant.
	StepSize int
	// Wavefront is the WF block width w: the number of time steps one
	// fused wavefront task advances a tile, which is also its ghost depth
	// and exchange period (default 10). Ignored by the other variants.
	Wavefront int
	// Weights are the stencil coefficients (default stencil.Jacobi()).
	Weights stencil.Weights
	// NinePoint switches to the nine-point stencil (17 flops/update, the
	// higher-arithmetic-intensity variant of section VII). The base
	// version then exchanges corner flows every step; the CA version's
	// square shrinking trapezoid is already the nine-point dependence
	// cone, so its communication pattern is unchanged.
	NinePoint bool
	// Weights9 are the nine-point coefficients (default stencil.Jacobi9()
	// when NinePoint is set).
	Weights9 stencil.Weights9
	// Init is the initial condition (default stencil.HashInit(1)).
	Init stencil.Init
	// Boundary is the Dirichlet boundary (default zero).
	Boundary stencil.Boundary
	// WithBodies builds task bodies and pack/unpack closures for real
	// execution. Cost-only graphs (for the simulator) are much lighter.
	WithBodies bool
	// Transform selects an optional graph rewrite pass (default none).
	// TransformSplit composes with Base and CA and every scheduler,
	// coalescing, and fault mode; WF tasks are already fused across steps
	// and are not splittable.
	Transform TransformMode

	hasDefaults bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.hasDefaults {
		return c
	}
	if c.TileCols == 0 {
		c.TileCols = c.TileRows
	}
	if c.P == 0 {
		c.P = 1
	}
	if c.Q == 0 {
		c.Q = c.P
	}
	if c.StepSize == 0 {
		c.StepSize = 15
	}
	if c.Wavefront == 0 {
		c.Wavefront = 10
	}
	if c.Weights == (stencil.Weights{}) {
		c.Weights = stencil.Jacobi()
	}
	if c.NinePoint && c.Weights9 == (stencil.Weights9{}) {
		c.Weights9 = stencil.Jacobi9()
	}
	if c.Init == nil {
		c.Init = stencil.HashInit(1)
	}
	if c.Boundary == nil {
		c.Boundary = stencil.ConstBoundary(0)
	}
	c.hasDefaults = true
	return c
}

// Partition builds the grid partition for the configuration.
func (c Config) Partition() (*grid.Partition, error) {
	c = c.withDefaults()
	return grid.NewPartition(c.N, c.TileRows, c.TileCols, c.P, c.Q)
}

// validate checks the configuration for a given variant and returns the
// partition.
func (c Config) validate(v Variant) (*grid.Partition, error) {
	c = c.withDefaults()
	if c.Steps < 1 {
		return nil, fmt.Errorf("core: Steps must be >= 1, got %d", c.Steps)
	}
	p, err := c.Partition()
	if err != nil {
		return nil, err
	}
	if v == CA {
		if c.StepSize < 1 {
			return nil, fmt.Errorf("core: CA StepSize must be >= 1, got %d", c.StepSize)
		}
		// Deep halos are packed out of neighbor interiors, so the step
		// size may not exceed any tile dimension (ragged edge tiles
		// included).
		if minDim := p.MinTileDim(); c.StepSize > minDim {
			return nil, fmt.Errorf("core: CA StepSize %d exceeds smallest tile dimension %d", c.StepSize, minDim)
		}
	}
	if v == WF {
		if c.Wavefront < 1 {
			return nil, fmt.Errorf("core: WF Wavefront must be >= 1, got %d", c.Wavefront)
		}
		// The same feasibility rule as CA: w-deep halos are packed out of
		// neighbor interiors, so the width may not exceed any tile
		// dimension (ragged edge tiles included).
		if minDim := p.MinTileDim(); c.Wavefront > minDim {
			return nil, fmt.Errorf("core: WF Wavefront %d exceeds smallest tile dimension %d", c.Wavefront, minDim)
		}
		if c.Transform == TransformSplit {
			// A WF task already fuses w whole steps into one in-tile sweep;
			// there is no single-step interior to peel off.
			return nil, fmt.Errorf("core: transform split is not supported with the wf variant")
		}
	}
	return p, nil
}
