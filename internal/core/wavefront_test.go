package core

import (
	"fmt"
	"math/rand"
	"testing"

	"castencil/internal/grid"
	"castencil/internal/ptg"
	"castencil/internal/runtime"
	"castencil/internal/stencil"
)

func TestWFSingleNodeMatchesReference(t *testing.T) {
	assertMatchesReference(t, WF, Config{N: 24, TileRows: 6, P: 1, Steps: 12, Wavefront: 4}, 3)
}

func TestWFMultiNodeMatchesReference(t *testing.T) {
	assertMatchesReference(t, WF, Config{N: 24, TileRows: 6, P: 2, Steps: 12, Wavefront: 4}, 2)
}

func TestWFWidthSweepMatchesReference(t *testing.T) {
	// Includes widths that do not divide the step count (truncated final
	// block), w == 1 (degenerate: a block per step) and w == tile dim.
	for _, w := range []int{1, 2, 3, 5, 6} {
		cfg := Config{N: 24, TileRows: 6, P: 2, Steps: 11, Wavefront: w}
		assertMatchesReference(t, WF, cfg, 2)
	}
}

func TestWFRaggedTilesMatchReference(t *testing.T) {
	// 25 does not divide by 6: edge tiles are 1 wide, which caps the
	// feasible width at 1.
	assertMatchesReference(t, WF, Config{N: 25, TileRows: 6, P: 2, Steps: 7, Wavefront: 1}, 2)
}

func TestWFRectangularTilesAndGrid(t *testing.T) {
	assertMatchesReference(t, WF, Config{N: 24, TileRows: 4, TileCols: 8, P: 3, Q: 2, Steps: 10, Wavefront: 3}, 2)
}

func TestWFWithHeatWeightsAndBoundary(t *testing.T) {
	cfg := Config{
		N: 20, TileRows: 5, P: 2, Steps: 9, Wavefront: 4,
		Weights:  stencil.Heat(0.2),
		Boundary: func(gr, gc int) float64 { return float64(gr - gc) },
		Init:     stencil.HashInit(99),
	}
	assertMatchesReference(t, WF, cfg, 2)
}

func TestWFEqualsBaseBitwise(t *testing.T) {
	cfg := Config{N: 24, TileRows: 4, P: 2, Steps: 10, Wavefront: 3}
	base, err := RunReal(Base, cfg, runtime.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wf, err := RunReal(WF, cfg, runtime.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !grid.InteriorEqual(base.Grid, wf.Grid) {
		t.Fatal("base and WF results differ")
	}
}

func TestWFNinePointMatchesOracle(t *testing.T) {
	assertMatches9(t, WF, Config{N: 24, TileRows: 6, P: 2, Steps: 10, Wavefront: 4}, 2)
}

func TestWFNinePointWidthOne(t *testing.T) {
	// Width 1 degenerates to per-step exchange, but the nine-point kernel
	// still needs the 1x1 corner flows every block.
	assertMatches9(t, WF, Config{N: 20, TileRows: 5, P: 2, Steps: 7, Wavefront: 1}, 2)
}

func TestWFRandomizedEquivalence(t *testing.T) {
	// Property-style sweep: random geometry, the wavefront pipeline must
	// reproduce the oracle bitwise whenever the width is feasible.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 6; trial++ {
		n := rng.Intn(20) + 12
		tile := rng.Intn(4) + 4
		p := rng.Intn(2) + 1
		q := rng.Intn(2) + 1
		steps := rng.Intn(8) + 3
		w := rng.Intn(4) + 1
		cfg := Config{
			N: n, TileRows: tile, P: p, Q: q, Steps: steps, Wavefront: w,
			Init: stencil.HashInit(uint64(trial)),
		}
		part, err := cfg.Partition()
		if err != nil || part.TR < p || part.TC < q || w > part.MinTileDim() {
			continue
		}
		assertMatchesReference(t, WF, cfg, 2)
	}
}

// TestWFSchedulerDeterminism extends the cross-scheduler determinism suite
// to the wavefront pipeline: every scheduler at 1, 2 and 4 workers per node,
// with halo coalescing off and on, must reproduce the single-worker FIFO
// point-to-point run bitwise, at two widths and two grid shapes.
func TestWFSchedulerDeterminism(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"w3", Config{N: 24, TileRows: 6, P: 2, Steps: 9, Wavefront: 3}},
		{"w5-rect", Config{N: 30, TileRows: 5, TileCols: 10, P: 3, Q: 2, Steps: 10, Wavefront: 5}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ref := runSched(t, WF, c.cfg, "fifo", 1)
			for _, coal := range []ptg.CoalesceMode{ptg.CoalesceOff, ptg.CoalesceStep} {
				for _, sched := range schedVariants() {
					for _, workers := range []int{1, 2, 4} {
						if sched == "fifo" && workers == 1 && coal == ptg.CoalesceOff {
							continue // that is the reference itself
						}
						label := fmt.Sprintf("%s w=%d coalesce=%v", sched, workers, coal)
						got := runSchedCoalesce(t, WF, c.cfg, sched, workers, coal)
						assertGridsBitwiseEqual(t, label, ref.Grid, got.Grid)
					}
				}
			}
		})
	}
}

// TestWFMessageReduction pins the communication-avoidance acceptance
// criterion. WF trades message granularity (diagonal tile flows appear, so
// raw point-to-point counts drop by less than w), but at the wire level the
// story is exact: exchanges happen on block epochs only, so with coalescing
// — one bundle per ordered node pair per epoch — the wavefront run sends
// exactly w-fold fewer wire messages than base on a node grid with no
// diagonal node adjacencies.
func TestWFMessageReduction(t *testing.T) {
	cfg := Config{N: 64, TileRows: 8, P: 2, Q: 1, Steps: 12, Wavefront: 4}
	_, baseEpochs, baseDeps := crossTraffic(t, Base, cfg)
	_, wfEpochs, wfDeps := crossTraffic(t, WF, cfg)
	blocks := (cfg.Steps + cfg.Wavefront - 1) / cfg.Wavefront
	if wfEpochs != blocks {
		t.Errorf("WF graph exchanges on %d epochs, want %d blocks", wfEpochs, blocks)
	}
	if baseEpochs != cfg.Steps {
		t.Errorf("base graph exchanges on %d epochs, want %d steps", baseEpochs, cfg.Steps)
	}
	if wfDeps >= baseDeps {
		t.Errorf("WF carries %d cross deps, base %d: want a reduction", wfDeps, baseDeps)
	}
	base, err := RunReal(Base, cfg, runtime.Options{Workers: 2, Coalesce: ptg.CoalesceStep})
	if err != nil {
		t.Fatal(err)
	}
	wf, err := RunReal(WF, cfg, runtime.Options{Workers: 2, Coalesce: ptg.CoalesceStep})
	if err != nil {
		t.Fatal(err)
	}
	if base.Exec.BundlesSent != wf.Exec.BundlesSent*cfg.Wavefront {
		t.Errorf("coalesced wire messages: base %d, WF %d: want exactly %dx fewer",
			base.Exec.BundlesSent, wf.Exec.BundlesSent, cfg.Wavefront)
	}
}

// TestWFSimMatchesReal checks the virtual-time engine accounts the same wire
// traffic as the real runtime for the wavefront pipeline — point-to-point
// and coalesced — so simulated crossover studies transfer to real runs.
func TestWFSimMatchesReal(t *testing.T) {
	cfg := Config{N: 64, TileRows: 8, P: 2, Steps: 12, Wavefront: 4}
	for _, coal := range []ptg.CoalesceMode{ptg.CoalesceOff, ptg.CoalesceStep} {
		real, err := RunReal(WF, cfg, runtime.Options{Workers: 2, Coalesce: coal})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := Simulate(WF, cfg, SimOptions{Machine: machineForTest(), Coalesce: coal})
		if err != nil {
			t.Fatal(err)
		}
		if sim.Messages != real.Exec.Messages || sim.Bundles != real.Exec.BundlesSent ||
			sim.Segments != real.Exec.BundleSegments {
			t.Errorf("coalesce=%v: sim traffic (%d msgs, %d bundles, %d segments) != real (%d, %d, %d)",
				coal, sim.Messages, sim.Bundles, sim.Segments,
				real.Exec.Messages, real.Exec.BundlesSent, real.Exec.BundleSegments)
		}
		if sim.BytesSent != real.Exec.BytesSent {
			t.Errorf("coalesce=%v: sim bytes %d != real bytes %d", coal, sim.BytesSent, real.Exec.BytesSent)
		}
	}
}

// TestWFCoalesceBundlesPerBlock checks coalescing collapses the wavefront
// exchange to at most one wire message per ordered neighbor pair per block.
func TestWFCoalesceBundlesPerBlock(t *testing.T) {
	cfg := Config{N: 64, TileRows: 8, P: 2, Steps: 12, Wavefront: 4}
	off, err := RunReal(WF, cfg, runtime.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunReal(WF, cfg, runtime.Options{Workers: 2, Coalesce: ptg.CoalesceStep})
	if err != nil {
		t.Fatal(err)
	}
	assertGridsBitwiseEqual(t, "wf coalesce=step", off.Grid, st.Grid)
	if st.Exec.Messages != st.Exec.BundlesSent {
		t.Errorf("step mode sent %d messages but %d bundles", st.Exec.Messages, st.Exec.BundlesSent)
	}
	if st.Exec.BundleSegments != off.Exec.Messages {
		t.Errorf("bundles carried %d transfers, point-to-point sent %d", st.Exec.BundleSegments, off.Exec.Messages)
	}
	pairs, epochs, _ := crossTraffic(t, WF, cfg)
	if max := pairs * epochs; st.Exec.BundlesSent > max {
		t.Errorf("step mode sent %d bundles, want <= %d (%d pairs x %d block epochs)",
			st.Exec.BundlesSent, max, pairs, epochs)
	}
}

// TestWFHaloRoundTripZeroAlloc pins the steady-state wavefront halo path at
// zero heap allocations: a w-deep edge payload and a w x w corner payload
// each walk the pooled-buffer/slot/in-place-unpack chain without allocating.
func TestWFHaloRoundTripZeroAlloc(t *testing.T) {
	const w = 8
	rng := rand.New(rand.NewSource(6))
	src := randomHaloTile(rng, 64, w)
	dst := grid.NewTile(64, 64, w)
	producer := runtime.NewStoreWithSlots(0, 1)
	consumer := runtime.NewStoreWithSlots(0, 1)
	for _, tc := range []struct {
		name string
		d    grid.Dir
	}{
		{"edge", grid.North},
		{"corner", grid.NorthWest},
	} {
		sendRc := src.SendRect(tc.d, w)
		recvRc := dst.RecvRect(tc.d.Opposite(), w)
		runtime.PutBuf(runtime.GetBuf(sendRc.Bytes())) // warm the arena
		hop := func() {
			buf := src.PackBytes(sendRc, runtime.GetBuf(sendRc.Bytes()))
			producer.PutBufSlot(0, buf)
			wire := producer.TakeBufSlot(0)
			consumer.PutBufSlot(0, wire)
			got := consumer.TakeBufSlot(0)
			dst.UnpackBytes(recvRc, got)
			runtime.PutBuf(got)
		}
		if n := testing.AllocsPerRun(50, hop); n != 0 {
			t.Errorf("%s: steady-state w-deep round trip: %v allocs per run, want 0", tc.name, n)
		}
	}
}

// TestWFRunLeavesNoLeftoverBuffers checks a full wavefront run returns every
// pooled wire buffer to the arena: the slot rings drain completely.
func TestWFRunLeavesNoLeftoverBuffers(t *testing.T) {
	cfg := Config{N: 32, TileRows: 8, P: 2, Steps: 8, Wavefront: 4}
	res, err := RunReal(WF, cfg, runtime.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n := LeftoverBuffers(res.Exec.Stores); n != 0 {
		t.Errorf("%d wire buffers left in slots after the run, want 0", n)
	}
}

func TestWFValidation(t *testing.T) {
	// Width exceeding the smallest tile dimension is infeasible: the w-deep
	// ghost region cannot be packed out of a shallower neighbor interior.
	cfg := Config{N: 24, TileRows: 6, P: 2, Steps: 10, Wavefront: 7}
	if _, err := BuildGraph(WF, cfg); err == nil {
		t.Error("Wavefront 7 on 6x6 tiles: want feasibility error, got nil")
	}
	// Ragged edge tiles count: 25 = 4x6+1 leaves 1-wide tiles.
	cfg = Config{N: 25, TileRows: 6, P: 2, Steps: 10, Wavefront: 2}
	if _, err := BuildGraph(WF, cfg); err == nil {
		t.Error("Wavefront 2 on 1-wide ragged tiles: want feasibility error, got nil")
	}
	cfg = Config{N: 24, TileRows: 6, P: 2, Steps: 10, Wavefront: -1}
	if _, err := BuildGraph(WF, cfg); err == nil {
		t.Error("negative Wavefront: want error, got nil")
	}
}

// TestWFTaskCount pins the graph shape: one init plus ceil(Steps/w) compute
// tasks per tile — the w-fold task reduction that, with the matching message
// reduction, is the wavefront variant's whole performance argument.
func TestWFTaskCount(t *testing.T) {
	cfg := Config{N: 24, TileRows: 6, P: 2, Steps: 11, Wavefront: 4}
	g, err := BuildGraph(WF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	part, _ := cfg.Partition()
	blocks := 3 // ceil(11/4)
	if want := part.Tiles() * (blocks + 1); len(g.Tasks) != want {
		t.Errorf("WF graph has %d tasks, want %d (%d tiles x (1 init + %d blocks))",
			len(g.Tasks), want, part.Tiles(), blocks)
	}
}
