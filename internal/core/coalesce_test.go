package core

import (
	"testing"

	"castencil/internal/ptg"
	"castencil/internal/runtime"
)

// crossTraffic inventories the remote traffic a graph generates: the set of
// ordered (src node, dst node) neighbor pairs with at least one cross-node
// dependency, the set of exchange epochs, and the total cross-dependency
// count.
func crossTraffic(t *testing.T, v Variant, cfg Config) (pairs, epochs, deps int) {
	t.Helper()
	g, err := BuildGraph(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pairSet := map[[2]int32]bool{}
	epochSet := map[int32]bool{}
	for i := range g.Tasks {
		task := &g.Tasks[i]
		for _, d := range task.Deps {
			p := &g.Tasks[d.Producer]
			if p.Node == task.Node {
				continue
			}
			pairSet[[2]int32{p.Node, task.Node}] = true
			epochSet[p.Epoch] = true
			deps++
		}
	}
	return len(pairSet), len(epochSet), deps
}

// TestCoalesceMessageCounts pins the acceptance criterion of the coalescing
// optimization on the CA pipeline: with -coalesce=step, the per-epoch remote
// message count is at most one per ordered neighbor pair (every wire message
// is a bundle, and there are at most pairs x epochs bundles), the member
// transfers carried equal the point-to-point message count, and the grids
// stay bitwise identical.
func TestCoalesceMessageCounts(t *testing.T) {
	cfg := Config{N: 64, TileRows: 8, P: 2, Steps: 12, StepSize: 3}
	off, err := RunReal(CA, cfg, runtime.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunReal(CA, cfg, runtime.Options{Workers: 2, Coalesce: ptg.CoalesceStep})
	if err != nil {
		t.Fatal(err)
	}
	assertGridsBitwiseEqual(t, "coalesce=step", off.Grid, st.Grid)

	if st.Exec.Messages != st.Exec.BundlesSent {
		t.Errorf("step mode sent %d messages but %d bundles: point-to-point traffic leaked past coalescing",
			st.Exec.Messages, st.Exec.BundlesSent)
	}
	if st.Exec.BundleSegments != off.Exec.Messages {
		t.Errorf("bundles carried %d transfers, point-to-point run sent %d messages: traffic lost or duplicated",
			st.Exec.BundleSegments, off.Exec.Messages)
	}
	pairs, epochs, deps := crossTraffic(t, CA, cfg)
	if off.Exec.Messages != deps {
		t.Errorf("point-to-point run sent %d messages, graph has %d cross deps", off.Exec.Messages, deps)
	}
	if max := pairs * epochs; st.Exec.BundlesSent > max {
		t.Errorf("step mode sent %d bundles, want <= %d (one per neighbor pair per epoch: %d pairs x %d epochs)",
			st.Exec.BundlesSent, max, pairs, epochs)
	}
	if st.Exec.Messages >= off.Exec.Messages {
		t.Errorf("coalescing did not reduce messages: %d vs %d point-to-point",
			st.Exec.Messages, off.Exec.Messages)
	}
	if fill := st.Exec.BundleFill(); fill < 2 {
		t.Errorf("bundle fill = %.1f, want >= 2 on a multi-tile decomposition", fill)
	}
}

// TestCoalesceSimMatchesReal checks the virtual-time engine accounts the
// same wire traffic as the real runtime under coalescing: identical message,
// bundle and segment counts for the same configuration.
func TestCoalesceSimMatchesReal(t *testing.T) {
	cfg := Config{N: 64, TileRows: 8, P: 2, Steps: 12, StepSize: 3}
	real, err := RunReal(CA, cfg, runtime.Options{Workers: 2, Coalesce: ptg.CoalesceStep})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Simulate(CA, cfg, SimOptions{Machine: machineForTest(), Coalesce: ptg.CoalesceStep})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Messages != real.Exec.Messages || sim.Bundles != real.Exec.BundlesSent ||
		sim.Segments != real.Exec.BundleSegments {
		t.Errorf("sim traffic (%d msgs, %d bundles, %d segments) != real (%d, %d, %d)",
			sim.Messages, sim.Bundles, sim.Segments,
			real.Exec.Messages, real.Exec.BundlesSent, real.Exec.BundleSegments)
	}
	if sim.BytesSent != real.Exec.BytesSent {
		t.Errorf("sim bytes %d != real bytes %d: wire-format accounting diverged", sim.BytesSent, real.Exec.BytesSent)
	}
}

// TestCoalesceAutoFallsBack checks CoalesceAuto on the stencil pipelines is
// equivalent to step mode (the epoch-stamped graphs always admit a plan).
func TestCoalesceAutoFallsBack(t *testing.T) {
	cfg := Config{N: 48, TileRows: 8, P: 2, Steps: 6, StepSize: 2}
	auto, err := RunReal(CA, cfg, runtime.Options{Workers: 2, Coalesce: ptg.CoalesceAuto})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Exec.BundlesSent == 0 {
		t.Error("auto mode sent no bundles on a CA graph that admits a plan")
	}
	st, err := RunReal(CA, cfg, runtime.Options{Workers: 2, Coalesce: ptg.CoalesceStep})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Exec.BundlesSent != st.Exec.BundlesSent {
		t.Errorf("auto sent %d bundles, step sent %d", auto.Exec.BundlesSent, st.Exec.BundlesSent)
	}
	assertGridsBitwiseEqual(t, "auto vs step", st.Grid, auto.Grid)
}

// BenchmarkExecutorCoalesce compares the full concurrent engine with halo
// coalescing off and on, on the comm-inclusive shapes of
// BenchmarkExecutorReal (many small tiles, so the message path dominates).
func BenchmarkExecutorCoalesce(b *testing.B) {
	shapes := []struct {
		name string
		v    Variant
		cfg  Config
	}{
		{"base-n4", Base, Config{N: 256, TileRows: 8, P: 2, Steps: 20}},
		{"ca-n4", CA, Config{N: 256, TileRows: 16, P: 2, Steps: 20, StepSize: 4}},
	}
	for _, sh := range shapes {
		for _, m := range []ptg.CoalesceMode{ptg.CoalesceOff, ptg.CoalesceStep} {
			b.Run(sh.name+"-"+m.String(), func(b *testing.B) {
				benchExecutor(b, sh.v, sh.cfg, runtime.Options{Workers: 2, Coalesce: m})
			})
		}
	}
}
