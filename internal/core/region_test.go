package core

import (
	"math/rand"
	"testing"

	"castencil/internal/ptg"
)

// buildCA builds a cost-only CA graph and returns it with its builder-side
// geometry reconstructed for assertions.
func hintOf(t *testing.T, g *ptg.Graph, ti, tj, step int) ptg.CostHint {
	t.Helper()
	idx, ok := g.Lookup(taskID(ti, tj, step))
	if !ok {
		t.Fatalf("task (%d,%d,%d) missing", ti, tj, step)
	}
	return g.Tasks[idx].Hint
}

func TestRegionShrinksThroughPhase(t *testing.T) {
	// 4x4 tiles of 8 over 2x2 nodes, s=4: a fully-interior-to-the-grid
	// boundary tile like (1,1) extends on all four sides; its redundant
	// work must shrink monotonically through the phase and hit zero at
	// the phase end.
	cfg := Config{N: 32, TileRows: 8, P: 2, Steps: 8, StepSize: 4}
	g, err := BuildGraph(CA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1 << 30
	for k := 1; k <= 4; k++ {
		h := hintOf(t, g, 1, 1, k)
		if h.RedundantUpdates >= prev {
			t.Errorf("step %d: redundant %d did not shrink (prev %d)", k, h.RedundantUpdates, prev)
		}
		prev = h.RedundantUpdates
	}
	if prev != 0 {
		t.Errorf("phase-end redundant = %d, want 0", prev)
	}
	// The second phase repeats the first's shape.
	if h5, h1 := hintOf(t, g, 1, 1, 5), hintOf(t, g, 1, 1, 1); h5.RedundantUpdates != h1.RedundantUpdates {
		t.Errorf("phase 2 start redundant %d != phase 1 start %d", h5.RedundantUpdates, h1.RedundantUpdates)
	}
	// Exact value at k=1: extension 3 on all four sides of an 8x8 tile:
	// (8+6)^2 - 64 = 132.
	if h := hintOf(t, g, 1, 1, 1); h.RedundantUpdates != 132 {
		t.Errorf("k=1 redundant = %d, want 132", h.RedundantUpdates)
	}
}

func TestRegionClippedAtGlobalBoundary(t *testing.T) {
	// Tile (0,1) sits on the global north edge: no extension upward.
	// Extension 3 on S/W/E only: (8+3)*(8+6) - 64 = 90.
	cfg := Config{N: 32, TileRows: 8, P: 2, Steps: 4, StepSize: 4}
	g, err := BuildGraph(CA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h := hintOf(t, g, 0, 1, 1); h.RedundantUpdates != (8+3)*(8+6)-64 {
		t.Errorf("north-edge tile redundant = %d, want %d", h.RedundantUpdates, (8+3)*(8+6)-64)
	}
	// Global corner tile: with one tile per node (4x4 process grid) tile
	// (0,0) is a boundary tile whose region extends only S/E:
	// (8+3)^2 - 64 = 57.
	gc, err := BuildGraph(CA, Config{N: 32, TileRows: 8, P: 4, Steps: 4, StepSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if h := hintOf(t, gc, 0, 0, 1); h.RedundantUpdates != (8+3)*(8+3)-64 {
		t.Errorf("corner tile redundant = %d, want %d", h.RedundantUpdates, (8+3)*(8+3)-64)
	}
}

func TestTruncatedFinalPhaseGeometry(t *testing.T) {
	// Steps=6, s=4: the second phase has length 2 — its phase-start task
	// (step 5) extends by only 1.
	cfg := Config{N: 32, TileRows: 8, P: 2, Steps: 6, StepSize: 4}
	g, err := BuildGraph(CA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h := hintOf(t, g, 1, 1, 5); h.RedundantUpdates != (8+2)*(8+2)-64 {
		t.Errorf("truncated-phase redundant = %d, want %d", h.RedundantUpdates, (8+2)*(8+2)-64)
	}
	if h := hintOf(t, g, 1, 1, 6); h.RedundantUpdates != 0 {
		t.Errorf("final step redundant = %d, want 0", h.RedundantUpdates)
	}
}

func TestInteriorTilesHaveNoRedundantWork(t *testing.T) {
	// 8x8 tiles over 2x2 nodes: tiles away from the node cuts are
	// interior; every step of theirs must be plain.
	cfg := Config{N: 64, TileRows: 8, P: 2, Steps: 4, StepSize: 4}
	g, err := BuildGraph(CA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	part, _ := cfg.Partition()
	for ti := 0; ti < part.TR; ti++ {
		for tj := 0; tj < part.TC; tj++ {
			if part.IsNodeBoundary(ti, tj) {
				continue
			}
			for k := 1; k <= 4; k++ {
				if h := hintOf(t, g, ti, tj, k); h.RedundantUpdates != 0 {
					t.Fatalf("interior tile (%d,%d) step %d has redundant %d", ti, tj, k, h.RedundantUpdates)
				}
			}
		}
	}
}

func TestDeepFlowBytes(t *testing.T) {
	// The phase-start message from a cardinal neighbor into a boundary
	// tile carries s layers: s*tile*8 bytes; the corner flow s*s*8.
	cfg := Config{N: 32, TileRows: 8, P: 2, Steps: 4, StepSize: 4}
	g, err := BuildGraph(CA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Boundary tile (1,2) is on node (0,1); its West neighbor (1,1) is on
	// node (0,0): remote deep edge of 4 layers x 8 rows.
	idx, _ := g.Lookup(taskID(1, 2, 1))
	task := &g.Tasks[idx]
	var sawEdge, sawCorner bool
	for _, d := range task.Deps {
		p := g.Tasks[d.Producer]
		if p.Node == task.Node {
			continue
		}
		switch {
		case d.Bytes == 4*8*8:
			sawEdge = true
		case d.Bytes == 4*4*8:
			sawCorner = true
		}
	}
	if !sawEdge {
		t.Error("missing s-deep remote edge flow (2048 bytes)")
	}
	if !sawCorner {
		t.Error("missing s x s remote corner flow (128 bytes)")
	}
}

func TestBaseFlowBytes(t *testing.T) {
	// Base: every remote edge message is one 8-row layer = 64 bytes.
	cfg := Config{N: 32, TileRows: 8, P: 2, Steps: 3}
	g, err := BuildGraph(Base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Tasks {
		task := &g.Tasks[i]
		for _, d := range task.Deps {
			if g.Tasks[d.Producer].Node == task.Node {
				continue
			}
			if d.Bytes != 8*8 {
				t.Fatalf("base remote flow of %d bytes, want 64", d.Bytes)
			}
		}
	}
}

func TestBuildGraphFuzzNeverPanics(t *testing.T) {
	// Random (possibly invalid) configurations must either build a valid
	// graph or return an error — never panic, never build a graph whose
	// stats are inconsistent.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		cfg := Config{
			N:        rng.Intn(40) + 1,
			TileRows: rng.Intn(12) + 1,
			TileCols: rng.Intn(12), // 0 = default
			P:        rng.Intn(4) + 1,
			Q:        rng.Intn(4), // 0 = default
			Steps:    rng.Intn(6),
			StepSize: rng.Intn(8),
		}
		v := Variant(rng.Intn(2))
		if rng.Intn(2) == 0 {
			cfg.NinePoint = true
		}
		g, err := BuildGraph(v, cfg)
		if err != nil {
			continue
		}
		s := g.ComputeStats()
		part, perr := cfg.Partition()
		if perr != nil {
			t.Fatalf("trial %d: graph built but partition invalid: %v", trial, perr)
		}
		full := cfg.withDefaults()
		if want := part.Tiles() * (full.Steps + 1); s.Tasks != want {
			t.Fatalf("trial %d: tasks %d, want %d", trial, s.Tasks, want)
		}
		if s.CriticalPathTasks < full.Steps+1 {
			t.Fatalf("trial %d: critical path %d < chain %d", trial, s.CriticalPathTasks, full.Steps+1)
		}
	}
}
