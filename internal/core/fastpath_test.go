package core

import (
	"math/rand"
	"testing"

	"castencil/internal/grid"
	"castencil/internal/runtime"
)

func randomHaloTile(rng *rand.Rand, n, halo int) *grid.Tile {
	t := grid.NewTile(n, n, halo)
	for r := -halo; r < n+halo; r++ {
		row := t.Row(r, -halo, n+2*halo)
		for c := range row {
			row[c] = rng.Float64()
		}
	}
	return t
}

// TestMessageRoundTripZeroAlloc walks one halo payload through the entire
// steady-state fast path — pooled buffer, row-wise byte serialization,
// producer slot, (in-process) wire, consumer slot, in-place deserialization,
// pool return — and pins it at zero heap allocations. This is the
// acceptance criterion replacing the old four-copy chain
// (Pack -> EncodeFloats -> DecodeFloats -> Unpack), which allocated a slice
// at every arrow.
func TestMessageRoundTripZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := randomHaloTile(rng, 128, 1)
	dst := grid.NewTile(128, 128, 1)
	sendRc := src.SendRect(grid.North, 1)
	recvRc := dst.RecvRect(grid.South, 1)
	producer := runtime.NewStoreWithSlots(0, 1)
	consumer := runtime.NewStoreWithSlots(0, 1)
	runtime.PutBuf(runtime.GetBuf(sendRc.Bytes())) // warm the arena

	hop := func() {
		// Producer task body: pack into a pooled wire buffer, deposit.
		buf := src.PackBytes(sendRc, runtime.GetBuf(sendRc.Bytes()))
		producer.PutBufSlot(0, buf)
		// Sender comm: Dep.Pack drains the slot; the payload crosses the
		// wire unchanged; receiver comm: Dep.Unpack deposits it.
		wire := producer.TakeBufSlot(0)
		consumer.PutBufSlot(0, wire)
		// Consumer task body: unpack in place, recycle.
		got := consumer.TakeBufSlot(0)
		dst.UnpackBytes(recvRc, got)
		runtime.PutBuf(got)
	}
	if n := testing.AllocsPerRun(50, hop); n != 0 {
		t.Errorf("steady-state message round trip: %v allocs per run, want 0", n)
	}
	// The payload must have arrived bitwise intact.
	want := src.Pack(sendRc, nil)
	gotVals := dst.Pack(recvRc, nil)
	for i := range want {
		if want[i] != gotVals[i] {
			t.Fatalf("point %d: %v != %v", i, gotVals[i], want[i])
		}
	}
}

// BenchmarkMsgRoundTripLegacy measures the pre-fast-path four-copy chain the
// keyed fallback still uses: float64 staging, byte encoding, byte decoding,
// float64 unpacking — three allocations per hop.
func BenchmarkMsgRoundTripLegacy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := randomHaloTile(rng, 128, 1)
	dst := grid.NewTile(128, 128, 1)
	sendRc := src.SendRect(grid.North, 1)
	recvRc := dst.RecvRect(grid.South, 1)
	b.SetBytes(int64(sendRc.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals := src.Pack(sendRc, nil)
		wire := EncodeFloats(vals)
		dst.Unpack(recvRc, DecodeFloats(wire))
	}
}

// BenchmarkMsgRoundTripZeroCopy measures the slot-based fast path on the
// same payload.
func BenchmarkMsgRoundTripZeroCopy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := randomHaloTile(rng, 128, 1)
	dst := grid.NewTile(128, 128, 1)
	sendRc := src.SendRect(grid.North, 1)
	recvRc := dst.RecvRect(grid.South, 1)
	producer := runtime.NewStoreWithSlots(0, 1)
	consumer := runtime.NewStoreWithSlots(0, 1)
	b.SetBytes(int64(sendRc.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		producer.PutBufSlot(0, src.PackBytes(sendRc, runtime.GetBuf(sendRc.Bytes())))
		consumer.PutBufSlot(0, producer.TakeBufSlot(0))
		buf := consumer.TakeBufSlot(0)
		dst.UnpackBytes(recvRc, buf)
		runtime.PutBuf(buf)
	}
}

// benchSchedCases enumerates the scheduler configurations the executor
// benchmarks compare: the shared-queue compatibility scheduler vs the
// work-stealing scheduler, at 2 and 4 workers per node.
func benchSchedCases() []struct {
	Name string
	Opts runtime.Options
} {
	return []struct {
		Name string
		Opts runtime.Options
	}{
		{"shared-w2", runtime.Options{Workers: 2}},
		{"steal-w2", runtime.Options{Workers: 2, Sched: runtime.WorkStealing}},
		{"shared-w4", runtime.Options{Workers: 4}},
		{"steal-w4", runtime.Options{Workers: 4, Sched: runtime.WorkStealing}},
	}
}

// benchExecutor runs a prebuilt graph to completion b.N times — execution
// only, no graph construction, the number the scheduler work targets.
func benchExecutor(b *testing.B, v Variant, cfg Config, opts runtime.Options) {
	b.Helper()
	cfg.WithBodies = true
	g, err := BuildGraph(v, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := runtime.Run(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Dropped != 0 {
			b.Fatalf("dropped %d transfers", res.Dropped)
		}
	}
}

// BenchmarkExecutorReal runs the full concurrent engine on a task-rich base
// graph (1024 tiles, 20 steps, ~21k stencil tasks) under each scheduler —
// scheduling + packing + kernels, graph prebuilt. The n1 shape keeps every
// dependency node-local (scheduler-bound); n4 adds the serialized
// inter-node transport (comm-inclusive).
func BenchmarkExecutorReal(b *testing.B) {
	shapes := []struct {
		name string
		cfg  Config
	}{
		{"n1", Config{N: 256, TileRows: 8, P: 1, Steps: 20}},
		{"n4", Config{N: 256, TileRows: 8, P: 2, Steps: 20}},
	}
	for _, sh := range shapes {
		for _, sc := range benchSchedCases() {
			b.Run(sh.name+"-"+sc.Name, func(b *testing.B) { benchExecutor(b, Base, sh.cfg, sc.Opts) })
		}
	}
}

// BenchmarkExecutorRealCA is the CA variant of the same experiment.
func BenchmarkExecutorRealCA(b *testing.B) {
	cfg := Config{N: 256, TileRows: 16, P: 2, Steps: 20, StepSize: 4}
	for _, sc := range benchSchedCases() {
		b.Run(sc.Name, func(b *testing.B) { benchExecutor(b, CA, cfg, sc.Opts) })
	}
}

// BenchmarkExecutorWavefront is the temporal-blocking variant: the same
// shape as the CA experiment but with w steps fused per task, so the graph
// carries 4x fewer epochs and every halo is w deep.
func BenchmarkExecutorWavefront(b *testing.B) {
	cfg := Config{N: 256, TileRows: 16, P: 2, Steps: 20, Wavefront: 4}
	for _, sc := range benchSchedCases() {
		b.Run(sc.Name, func(b *testing.B) { benchExecutor(b, WF, cfg, sc.Opts) })
	}
}

// TestFastPathStaysOnOracle re-checks the oracle on a configuration mixing
// every flow kind the slot allocator distinguishes: CA with boundary and
// interior tiles, a truncated final phase, and multiple workers racing on
// the lock-free slots.
func TestFastPathStaysOnOracle(t *testing.T) {
	assertMatchesReference(t, CA, Config{N: 30, TileRows: 5, P: 3, Q: 2, Steps: 10, StepSize: 4}, 3)
	assertMatchesReference(t, CA, Config{N: 24, TileRows: 4, P: 2, Steps: 7, StepSize: 1}, 2)
}
