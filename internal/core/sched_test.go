package core

import (
	"fmt"
	"math"
	"testing"

	"castencil/internal/grid"
	"castencil/internal/ptg"
	"castencil/internal/runtime"
)

// schedVariants enumerates every scheduler the runtime offers, by the names
// ParseSched accepts on the command line.
func schedVariants() []string {
	return []string{"fifo", "lifo", "priority", "steal"}
}

// runSched executes a variant under one named scheduler and worker count.
func runSched(t *testing.T, v Variant, cfg Config, sched string, workers int) *RealResult {
	t.Helper()
	return runSchedCoalesce(t, v, cfg, sched, workers, ptg.CoalesceOff)
}

// runSchedCoalesce is runSched with an explicit halo-coalescing mode.
func runSchedCoalesce(t *testing.T, v Variant, cfg Config, sched string, workers int, coal ptg.CoalesceMode) *RealResult {
	t.Helper()
	s, p, err := runtime.ParseSched(sched)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunReal(v, cfg, runtime.Options{Workers: workers, Sched: s, Policy: p, Coalesce: coal})
	if err != nil {
		t.Fatalf("%s w=%d coalesce=%v: %v", sched, workers, coal, err)
	}
	if res.Exec.Dropped != 0 {
		t.Fatalf("%s w=%d coalesce=%v: dropped %d transfers", sched, workers, coal, res.Exec.Dropped)
	}
	return res
}

// assertGridsBitwiseEqual compares two gathered grids bit for bit — not
// within a tolerance. Scheduler choice must never change numerics: the
// dataflow graph fixes each task's inputs, so any divergence means a
// scheduler let a task run early or fed it the wrong buffer.
func assertGridsBitwiseEqual(t *testing.T, label string, want, got *grid.Tile) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("%s: grid shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for r := 0; r < want.Rows; r++ {
		wr := want.Row(r, 0, want.Cols)
		gr := got.Row(r, 0, got.Cols)
		for c := range wr {
			if math.Float64bits(wr[c]) != math.Float64bits(gr[c]) {
				t.Fatalf("%s: grid[%d][%d] = %x, want %x (first divergence)",
					label, r, c, math.Float64bits(gr[c]), math.Float64bits(wr[c]))
			}
		}
	}
}

// TestSchedulerDeterminism is the cross-scheduler determinism suite: the
// Base and CA pipelines, run under every scheduler at 1, 2 and 4 workers
// per node and with halo coalescing both off and on, must produce
// bitwise-identical grids with zero dropped transfers. The reference is the
// shared FIFO queue with one worker and point-to-point delivery — the most
// sequential schedule the runtime can produce. Coalescing rides in the
// sweep because it must be invisible to numerics: it reorders and batches
// message traffic but never changes any task's inputs.
func TestSchedulerDeterminism(t *testing.T) {
	cases := []struct {
		name string
		v    Variant
		cfg  Config
	}{
		{"base", Base, Config{N: 24, TileRows: 6, P: 2, Steps: 8}},
		{"ca", CA, Config{N: 24, TileRows: 6, P: 2, Steps: 8, StepSize: 3}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ref := runSched(t, c.v, c.cfg, "fifo", 1)
			for _, coal := range []ptg.CoalesceMode{ptg.CoalesceOff, ptg.CoalesceStep} {
				for _, sched := range schedVariants() {
					for _, workers := range []int{1, 2, 4} {
						if sched == "fifo" && workers == 1 && coal == ptg.CoalesceOff {
							continue // that is the reference itself
						}
						label := fmt.Sprintf("%s w=%d coalesce=%v", sched, workers, coal)
						got := runSchedCoalesce(t, c.v, c.cfg, sched, workers, coal)
						assertGridsBitwiseEqual(t, label, ref.Grid, got.Grid)
					}
				}
			}
		})
	}
}

// TestSchedulerDeterminismObservability spot-checks that the steal-mode
// counters surface through RunReal: a multi-worker CA run must account
// every task to either a local deque hit, a steal, or the injection queue.
func TestSchedulerDeterminismObservability(t *testing.T) {
	res := runSched(t, CA, Config{N: 24, TileRows: 6, P: 2, Steps: 8, StepSize: 3}, "steal", 4)
	hits, steals := 0, 0
	for n := range res.Exec.NodeLocalHits {
		hits += res.Exec.NodeLocalHits[n]
		steals += res.Exec.NodeSteals[n]
	}
	if hits+steals > res.Exec.Completed {
		t.Fatalf("localHits+steals = %d exceeds completed %d", hits+steals, res.Exec.Completed)
	}
	if hits == 0 {
		t.Error("no local deque hits on a multi-step CA run: locality-first placement is not engaging")
	}
}
