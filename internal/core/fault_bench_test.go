package core

import (
	"testing"

	"castencil/internal/fault"
	"castencil/internal/ptg"
	"castencil/internal/runtime"
)

// BenchmarkExecutorFault prices the recovery layer on the coalesced
// communication-bound shape BenchmarkExecutorCoalesce uses: "off" is the
// plain wire (the recovery machinery compiled in but disabled — this row
// must stay within noise of the coalesce benchmark), "recovery" sequences
// and acknowledges every message on a clean wire, and "faulty" masks an
// injected drop+dup schedule end to end.
func BenchmarkExecutorFault(b *testing.B) {
	// Identical shape to BenchmarkExecutorCoalesce's ca-n4-step case, so
	// the "off" row is directly comparable across benchmark runs.
	cfg := Config{N: 256, TileRows: 16, P: 2, Steps: 20, StepSize: 4}
	plan, err := fault.ParsePlan("drop=0.02,dup=0.02,seed=7")
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		opts runtime.Options
	}{
		{"off", runtime.Options{Workers: 2, Coalesce: ptg.CoalesceStep}},
		{"recovery", runtime.Options{Workers: 2, Coalesce: ptg.CoalesceStep, Recovery: fault.DefaultRecovery()}},
		{"faulty", runtime.Options{Workers: 2, Coalesce: ptg.CoalesceStep, Fault: plan}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) { benchExecutor(b, CA, cfg, c.opts) })
	}
}
