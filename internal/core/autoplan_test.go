package core

import (
	"testing"

	"castencil/internal/machine"
)

// machineForTest returns the NaCL model (shared by several test files).
func machineForTest() *machine.Model { return machine.NaCL() }

func TestAutoPlanPrefersBaseWithRealKernel(t *testing.T) {
	// With the original kernel the workload is compute-bound: base and CA
	// tie, and the planner must not hallucinate a big CA win. (The WF
	// family may still post a modest modeled win here — it eliminates
	// per-task and per-message overhead, which CA does not — so the
	// assertion is scoped to the CA candidates.)
	cfg := Config{N: 2880, TileRows: 288, P: 2, Steps: 6}
	plan, err := AutoPlan(cfg, machineForTest(), 1, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	base, bestCA := 0.0, 0.0
	for _, c := range plan.Candidates {
		switch c.Family {
		case Base:
			base = c.GFLOPS
		case CA:
			if c.GFLOPS > bestCA {
				bestCA = c.GFLOPS
			}
		}
	}
	if bestCA > base*1.1 {
		t.Errorf("planner claims %+.0f%% CA win at ratio 1; base %v best CA %v",
			100*(bestCA/base-1), base, bestCA)
	}
}

func TestAutoPlanPicksCAWhenCommBound(t *testing.T) {
	// At ratio 0.2 on 16 nodes the base version is communication-bound:
	// the planner must recommend a temporal-blocking family, and every CA
	// candidate must beat base (WF may rank above CA — it avoids even more
	// per-message overhead).
	cfg := Config{N: 5760, TileRows: 288, P: 4, Steps: 10}
	plan, err := AutoPlan(cfg, machineForTest(), 0.2, []int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if plan.BestFamily == Base {
		t.Errorf("planner should pick temporal blocking when comm-bound: %+v", plan.Candidates)
	}
	base := 0.0
	for _, c := range plan.Candidates {
		if c.Family == Base {
			base = c.GFLOPS
		}
	}
	for _, c := range plan.Candidates {
		if c.Family == CA && c.GFLOPS <= base {
			t.Errorf("CA candidate %v (%.1f GF) does not beat base (%.1f GF)", c, c.GFLOPS, base)
		}
	}
	// Candidates are sorted best-first.
	for i := 1; i < len(plan.Candidates); i++ {
		if plan.Candidates[i].GFLOPS > plan.Candidates[i-1].GFLOPS {
			t.Error("candidates not sorted")
		}
	}
}

func TestAutoPlanSkipsInfeasibleCandidates(t *testing.T) {
	cfg := Config{N: 16, TileRows: 4, P: 2, Steps: 6}
	plan, err := AutoPlan(cfg, machineForTest(), 0.5, []int{2, 4, 99})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range plan.Candidates {
		if c.StepSize > 4 || c.Width > 4 {
			t.Errorf("infeasible candidate %v evaluated", c)
		}
	}
	if len(plan.Candidates) != 5 { // base + CA s=2,4 + WF w=2,4
		t.Errorf("candidates = %+v", plan.Candidates)
	}
}

func TestAutoPlanValidation(t *testing.T) {
	if _, err := AutoPlan(Config{N: 16, TileRows: 4, P: 2, Steps: 2}, nil, 1, nil); err == nil {
		t.Error("nil machine must fail")
	}
	if _, err := AutoPlan(Config{N: 16, TileRows: 4, P: 2}, machineForTest(), 1, nil); err == nil {
		t.Error("invalid config must fail")
	}
}

func TestAutoPlanDefaultCandidates(t *testing.T) {
	cfg := Config{N: 2880, TileRows: 288, P: 2, Steps: 4}
	plan, err := AutoPlan(cfg, machineForTest(), 0.4, nil)
	if err != nil {
		t.Fatal(err)
	}
	// base + all default candidates in both temporal-blocking families
	// (tile 288 admits them all).
	if len(plan.Candidates) != 2*len(DefaultPlanCandidates)+1 {
		t.Errorf("candidates = %d, want %d", len(plan.Candidates), 2*len(DefaultPlanCandidates)+1)
	}
}

// TestPlanCandidateOrdering pins the deterministic tie-break: the stable
// sort orders by GFLOPS first, then smaller family parameter, then
// lower-numbered family — so a tied sweep always renders the same table and
// the planner never flips its recommendation between runs.
func TestPlanCandidateOrdering(t *testing.T) {
	cands := []PlanResult{
		{Family: WF, Width: 5, GFLOPS: 10},
		{Family: CA, StepSize: 5, GFLOPS: 10},
		{Family: CA, StepSize: 2, GFLOPS: 10},
		{Family: Base, GFLOPS: 10},
		{Family: WF, Width: 3, GFLOPS: 12},
	}
	sortPlanCandidates(cands)
	want := []string{"WF w=3", "base", "CA s=2", "CA s=5", "WF w=5"}
	for i, c := range cands {
		if c.String() != want[i] {
			t.Fatalf("order[%d] = %v, want %v (full: %v)", i, c, want[i], cands)
		}
	}
}

// TestAutoPlanDeterministic runs the same plan twice and demands identical
// candidate tables — the observable guarantee the stable tie-break exists
// for.
func TestAutoPlanDeterministic(t *testing.T) {
	cfg := Config{N: 192, TileRows: 24, P: 2, Steps: 8}
	a, err := AutoPlan(cfg, machineForTest(), 0.4, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := AutoPlan(cfg, machineForTest(), 0.4, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Candidates) != len(b.Candidates) {
		t.Fatalf("candidate counts differ: %d vs %d", len(a.Candidates), len(b.Candidates))
	}
	for i := range a.Candidates {
		if a.Candidates[i] != b.Candidates[i] {
			t.Errorf("candidate %d differs: %+v vs %+v", i, a.Candidates[i], b.Candidates[i])
		}
	}
	if a.BestFamily != b.BestFamily || a.BestStepSize != b.BestStepSize || a.BestWidth != b.BestWidth {
		t.Errorf("recommendations differ: %+v vs %+v", a, b)
	}
}
