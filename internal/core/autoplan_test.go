package core

import (
	"testing"

	"castencil/internal/machine"
)

// machineForTest returns the NaCL model (shared by several test files).
func machineForTest() *machine.Model { return machine.NaCL() }

func TestAutoPlanPrefersBaseWithRealKernel(t *testing.T) {
	// With the original kernel the workload is compute-bound: base and CA
	// tie, and the planner must not hallucinate a big CA win.
	cfg := Config{N: 2880, TileRows: 288, P: 2, Steps: 6}
	plan, err := AutoPlan(cfg, machineForTest(), 1, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	base := 0.0
	for _, c := range plan.Candidates {
		if c.StepSize == 0 {
			base = c.GFLOPS
		}
	}
	if plan.BestGFLOPS > base*1.1 {
		t.Errorf("planner claims %+.0f%% win at ratio 1; base %v best %v",
			100*(plan.BestGFLOPS/base-1), base, plan.BestGFLOPS)
	}
}

func TestAutoPlanPicksCAWhenCommBound(t *testing.T) {
	// At ratio 0.2 on 16 nodes the base version is communication-bound:
	// the planner must recommend CA.
	cfg := Config{N: 5760, TileRows: 288, P: 4, Steps: 10}
	plan, err := AutoPlan(cfg, machineForTest(), 0.2, []int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UseCA() {
		t.Errorf("planner should pick CA when comm-bound: %+v", plan.Candidates)
	}
	// Candidates are sorted best-first.
	for i := 1; i < len(plan.Candidates); i++ {
		if plan.Candidates[i].GFLOPS > plan.Candidates[i-1].GFLOPS {
			t.Error("candidates not sorted")
		}
	}
}

func TestAutoPlanSkipsInfeasibleCandidates(t *testing.T) {
	cfg := Config{N: 16, TileRows: 4, P: 2, Steps: 6}
	plan, err := AutoPlan(cfg, machineForTest(), 0.5, []int{2, 4, 99})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range plan.Candidates {
		if c.StepSize > 4 {
			t.Errorf("infeasible step size %d evaluated", c.StepSize)
		}
	}
	if len(plan.Candidates) != 3 { // base + s=2 + s=4
		t.Errorf("candidates = %+v", plan.Candidates)
	}
}

func TestAutoPlanValidation(t *testing.T) {
	if _, err := AutoPlan(Config{N: 16, TileRows: 4, P: 2, Steps: 2}, nil, 1, nil); err == nil {
		t.Error("nil machine must fail")
	}
	if _, err := AutoPlan(Config{N: 16, TileRows: 4, P: 2}, machineForTest(), 1, nil); err == nil {
		t.Error("invalid config must fail")
	}
}

func TestAutoPlanDefaultCandidates(t *testing.T) {
	cfg := Config{N: 2880, TileRows: 288, P: 2, Steps: 4}
	plan, err := AutoPlan(cfg, machineForTest(), 0.4, nil)
	if err != nil {
		t.Fatal(err)
	}
	// base + all default candidates (tile 288 admits them all).
	if len(plan.Candidates) != len(DefaultPlanCandidates)+1 {
		t.Errorf("candidates = %d, want %d", len(plan.Candidates), len(DefaultPlanCandidates)+1)
	}
}
