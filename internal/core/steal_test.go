package core

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"castencil/internal/fault"
	"castencil/internal/netcomm"
	"castencil/internal/ptg"
	"castencil/internal/runtime"
)

// stealSkewed is the suite's skewed shape: 5 tile rows over a 2x2 process
// grid, so block decomposition hands the corner nodes 9/6/6/4 tiles and the
// two-rank fold leaves rank 0 with 15 of 25 — the imbalance inter-node
// stealing exists to fix. Wavefront tasks carry w=2 fused steps, the
// temporal blocking that makes a migration's compute outweigh its bytes.
func stealSkewed() Config {
	return Config{N: 80, TileRows: 16, P: 2, Steps: 6, Wavefront: 2}
}

// connectMeshN generalizes connectPair to n ranks.
func connectMeshN(t testing.TB, n int) []*netcomm.Transport {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for r := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[r] = ln
		addrs[r] = ln.Addr().String()
	}
	ts := make([]*netcomm.Transport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ts[r], errs[r] = netcomm.Connect(netcomm.Options{Rank: r, Addrs: addrs, Listener: lns[r]})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range ts {
			if tr != nil {
				tr.Close()
			}
		}
	})
	return ts
}

// runStealMesh executes one real run on every rank of the mesh, all ranks
// handed the identical options, and returns the per-rank results.
func runStealMesh(t testing.TB, v Variant, cfg Config, base runtime.Options, ts []*netcomm.Transport) []*RealResult {
	t.Helper()
	n := len(ts)
	res := make([]*RealResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			opts := base
			opts.Dist = &runtime.Dist{Rank: r, Ranks: n, Net: ts[r]}
			res[r], errs[r] = RunReal(v, cfg, opts)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d run: %v", r, err)
		}
	}
	return res
}

// forcedPlan scripts count forced migrations: the first migratable tasks
// (in graph order) owned by victim-rank nodes, pinned to the thief.
func forcedPlan(t testing.TB, v Variant, cfg Config, ranks, victim, thief, count int) []runtime.ForcedSteal {
	t.Helper()
	g, err := BuildGraph(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	part, err := cfg.Partition()
	if err != nil {
		t.Fatal(err)
	}
	nodes := part.Nodes()
	var plan []runtime.ForcedSteal
	for i := range g.Tasks {
		tk := &g.Tasks[i]
		if tk.Mig == nil || runtime.RankOfNode(int(tk.Node), nodes, ranks) != victim {
			continue
		}
		plan = append(plan, runtime.ForcedSteal{Task: int32(i), Thief: thief})
		if len(plan) == count {
			return plan
		}
	}
	t.Fatalf("graph offers only %d migratable tasks on rank %d, want %d", len(plan), victim, count)
	return nil
}

// TestDistributedStealDeterminism is the steal tentpole's determinism suite:
// on the skewed two-rank shape, every dynamic policy (off, greedy, gated)
// crossed with both coalesce modes must produce a grid bitwise identical to
// the single-process run and keep halo-counter parity — steal traffic rides
// its own frame kinds and never leaks into Messages/BytesSent.
func TestDistributedStealDeterminism(t *testing.T) {
	cfg := stealSkewed()
	ts := connectMeshN(t, 2)
	gate := machineForTest().Net
	policies := []struct {
		name string
		pol  *runtime.StealPolicy
	}{
		{"off", nil},
		{"greedy", &runtime.StealPolicy{Mode: runtime.StealGreedy}},
		{"gated", &runtime.StealPolicy{Mode: runtime.StealGated, Gate: gate.MigrationTime}},
	}
	for _, mode := range []ptg.CoalesceMode{ptg.CoalesceOff, ptg.CoalesceStep} {
		base := runtime.Options{Workers: 1, Sched: runtime.WorkStealing, Coalesce: mode}
		single, err := RunReal(WF, cfg, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range policies {
			t.Run(fmt.Sprintf("coalesce=%s/steal=%s", mode, p.name), func(t *testing.T) {
				opts := base
				opts.Steal = p.pol
				dist := runStealMesh(t, WF, cfg, opts, ts)
				assertGridsBitwiseEqual(t, "steal "+p.name, single.Grid, dist[0].Grid)
				d, s := dist[0].Exec, single.Exec
				if d.Messages != s.Messages || d.BytesSent != s.BytesSent {
					t.Errorf("halo counters drifted under steal=%s: (%d msgs, %d B) vs single-process (%d, %d)",
						p.name, d.Messages, d.BytesSent, s.Messages, s.BytesSent)
				}
				if p.pol == nil && (d.StealsRemote != 0 || d.MigratedTasks != 0 || d.MigratedBytes != 0) {
					t.Errorf("steal-off run reports migration: %d remote, %d tasks, %d B",
						d.StealsRemote, d.MigratedTasks, d.MigratedBytes)
				}
			})
		}
	}
}

// TestDistributedStealFourRanks folds 9 nodes onto 4 ranks (3/2/2/2), the
// smallest mesh where a steal's victim and thief can both be bystanders to
// rank 0's gather: greedy stealing must keep the grid bitwise identical and
// the folded counters consistent on the wider mesh too.
func TestDistributedStealFourRanks(t *testing.T) {
	cfg := Config{N: 48, TileRows: 16, P: 3, Steps: 6, Wavefront: 2}
	ts := connectMeshN(t, 4)
	base := runtime.Options{Workers: 1, Sched: runtime.WorkStealing}
	single, err := RunReal(WF, cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	opts := base
	opts.Steal = &runtime.StealPolicy{Mode: runtime.StealGreedy}
	dist := runStealMesh(t, WF, cfg, opts, ts)
	assertGridsBitwiseEqual(t, "4-rank greedy steal", single.Grid, dist[0].Grid)
	if d, s := dist[0].Exec, single.Exec; d.Messages != s.Messages || d.BytesSent != s.BytesSent {
		t.Errorf("4-rank traffic (%d msgs, %d B) != single-process (%d, %d)",
			d.Messages, d.BytesSent, s.Messages, s.BytesSent)
	}
}

// TestDistributedStealForcedParity pins the migration machinery across every
// kernel family: a scripted forced plan must migrate exactly its tasks, with
// byte-for-byte agreement between the real mesh and the virtual-time
// simulator (same MigratedTasks, same MigratedBytes — the counters both
// engines derive from the same ptg.Migration sizes), a bitwise-identical
// grid, and the thief's StealsRemote matching the victim's MigratedTasks
// after the fold.
func TestDistributedStealForcedParity(t *testing.T) {
	cases := []struct {
		v   Variant
		cfg Config
	}{
		{Base, Config{N: 80, TileRows: 16, P: 2, Steps: 4}},
		{CA, Config{N: 80, TileRows: 16, P: 2, Steps: 4, StepSize: 2}},
		{WF, stealSkewed()},
	}
	ts := connectMeshN(t, 2)
	for _, c := range cases {
		t.Run(fmt.Sprintf("%v", c.v), func(t *testing.T) {
			plan := forcedPlan(t, c.v, c.cfg, 2, 0, 1, 3)
			base := runtime.Options{Workers: 1, Sched: runtime.WorkStealing}
			single, err := RunReal(c.v, c.cfg, base)
			if err != nil {
				t.Fatal(err)
			}
			opts := base
			opts.Steal = &runtime.StealPolicy{Force: plan}
			dist := runStealMesh(t, c.v, c.cfg, opts, ts)
			assertGridsBitwiseEqual(t, "forced migration", single.Grid, dist[0].Grid)

			d := dist[0].Exec
			if d.MigratedTasks != len(plan) {
				t.Errorf("migrated %d tasks, plan scripted %d", d.MigratedTasks, len(plan))
			}
			if d.StealsRemote != len(plan) {
				t.Errorf("folded StealsRemote = %d, want %d", d.StealsRemote, len(plan))
			}
			sim, err := Simulate(c.v, c.cfg, SimOptions{
				Machine: machineForTest(),
				Steal:   &SimSteal{Ranks: 2, Force: plan},
			})
			if err != nil {
				t.Fatal(err)
			}
			if sim.MigratedTasks != d.MigratedTasks || sim.MigratedBytes != d.MigratedBytes {
				t.Errorf("sim migration (%d tasks, %d B) != real (%d, %d)",
					sim.MigratedTasks, sim.MigratedBytes, d.MigratedTasks, d.MigratedBytes)
			}
			if d.Messages != single.Exec.Messages {
				t.Errorf("halo messages %d != single-process %d", d.Messages, single.Exec.Messages)
			}
		})
	}
}

// TestDistributedStealExactlyOnce drops ~30% of all delivery attempts —
// steal frames included, keyed by the same deterministic fault plan on
// every rank — and demands exactly-once migration semantics: each scripted
// task migrates once (retransmits recover lost frames, the victim's
// same-id-same-answer rule and the thief's dedup suppress replays), the
// grid stays bitwise identical, and the drop counters prove the schedule
// actually fired on the steal path.
func TestDistributedStealExactlyOnce(t *testing.T) {
	cfg := stealSkewed()
	plan := forcedPlan(t, WF, cfg, 2, 0, 1, 3)
	ts := connectMeshN(t, 2)
	base := runtime.Options{Workers: 1, Sched: runtime.WorkStealing}
	single, err := RunReal(WF, cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	opts := base
	opts.Fault = &fault.Plan{Seed: 7, Drop: 0.3}
	opts.Steal = &runtime.StealPolicy{Force: plan}
	dist := runStealMesh(t, WF, cfg, opts, ts)
	assertGridsBitwiseEqual(t, "lossy forced migration", single.Grid, dist[0].Grid)
	d := dist[0].Exec
	if d.MigratedTasks != len(plan) || d.StealsRemote != len(plan) {
		t.Errorf("lossy wire broke exactly-once: %d migrated / %d remote, plan scripted %d",
			d.MigratedTasks, d.StealsRemote, len(plan))
	}
	if d.Fault.Dropped == 0 {
		t.Error("drop plan injected nothing; the test exercised a clean wire")
	}
	if d.Fault.Retransmits == 0 {
		t.Error("no retransmits despite injected drops")
	}
	// No Messages parity here: retransmitted deliveries count, so a lossy
	// wire legitimately carries more messages than a clean one. Exactly-once
	// is the grid equality plus the exact migration count above.
}
