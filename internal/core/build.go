package core

import (
	"castencil/internal/grid"
	"castencil/internal/ptg"
	"castencil/internal/stencil"
)

// tileInfo caches per-tile geometry and classification for graph building.
type tileInfo struct {
	ti, tj     int
	rows, cols int
	r0, c0     int
	node       int32
	// boundary marks tiles with at least one remote cardinal neighbor —
	// the paper's "boundary tiles", which the CA variant equips with a
	// deep ghost region and phase-based communication.
	boundary bool
	halo     int
}

type builder struct {
	v    Variant
	cfg  Config
	part *grid.Partition
	info [][]*tileInfo
}

// BuildGraph constructs the task graph of a stencil variant. With
// cfg.WithBodies the graph is executable by internal/runtime; without, it is
// a cost-only graph for internal/desim.
func BuildGraph(v Variant, cfg Config) (*ptg.Graph, error) {
	cfg = cfg.withDefaults()
	part, err := cfg.validate(v)
	if err != nil {
		return nil, err
	}
	bd := &builder{v: v, cfg: cfg, part: part}
	bd.info = make([][]*tileInfo, part.TR)
	for ti := 0; ti < part.TR; ti++ {
		bd.info[ti] = make([]*tileInfo, part.TC)
		for tj := 0; tj < part.TC; tj++ {
			rows, cols := part.TileDims(ti, tj)
			r0, c0 := part.TileOrigin(ti, tj)
			inf := &tileInfo{
				ti: ti, tj: tj, rows: rows, cols: cols, r0: r0, c0: c0,
				node:     int32(part.Owner(ti, tj)),
				boundary: part.IsNodeBoundary(ti, tj),
			}
			inf.halo = 1
			if v == CA && inf.boundary {
				inf.halo = cfg.StepSize
			}
			bd.info[ti][tj] = inf
		}
	}

	gb := ptg.NewBuilder(part.Nodes())
	// Tasks: one chain per tile, steps 0 (init) .. Steps.
	for ti := 0; ti < part.TR; ti++ {
		for tj := 0; tj < part.TC; tj++ {
			inf := bd.info[ti][tj]
			for t := 0; t <= cfg.Steps; t++ {
				task := ptg.Task{
					ID:       taskID(ti, tj, t),
					Node:     inf.node,
					Kind:     bd.kind(inf, t),
					Priority: bd.priority(inf, t),
					Hint:     bd.hint(inf, t),
				}
				if cfg.WithBodies {
					task.Run = bd.body(inf, t)
				}
				if _, err := gb.AddTask(task); err != nil {
					return nil, err
				}
			}
		}
	}
	// Dependencies.
	for ti := 0; ti < part.TR; ti++ {
		for tj := 0; tj < part.TC; tj++ {
			inf := bd.info[ti][tj]
			for t := 1; t <= cfg.Steps; t++ {
				// Serial self-dependency: the tile's double buffer.
				if err := gb.AddDep(taskID(ti, tj, t), taskID(ti, tj, t-1), ptg.Dep{}); err != nil {
					return nil, err
				}
				for _, d := range grid.AllDirs {
					p := bd.neighbor(inf, d)
					if p == nil {
						continue
					}
					depth, ok := bd.flow(p, d.Opposite(), t-1)
					if !ok {
						continue
					}
					dep := ptg.Dep{}
					if p.node != inf.node {
						rect := bd.sendRect(p, d.Opposite(), depth)
						dep.Bytes = rect.Bytes()
						if cfg.WithBodies {
							key := BufKey{TI: p.ti, TJ: p.tj, Step: t - 1, Dir: d.Opposite()}
							dep.Pack = func(e ptg.Env) []byte {
								return EncodeFloats(e.Take(key).([]float64))
							}
							dep.Unpack = func(e ptg.Env, data []byte) {
								e.Put(key, DecodeFloats(data))
							}
						}
					}
					if err := gb.AddDep(taskID(ti, tj, t), taskID(p.ti, p.tj, t-1), dep); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return gb.Build()
}

func taskID(ti, tj, t int) ptg.TaskID {
	return ptg.TaskID{Class: "st", I: ti, J: tj, K: t}
}

func (b *builder) neighbor(inf *tileInfo, d grid.Dir) *tileInfo {
	ni, nj, ok := b.part.Neighbor(inf.ti, inf.tj, d)
	if !ok {
		return nil
	}
	return b.info[ni][nj]
}

// flow is the single source of truth for the dataflow: does tile prod
// produce a halo buffer toward direction d after iteration t, and how deep?
//
//   - Base: one-layer edges toward every cardinal neighbor, every step.
//   - CA, consumer is a boundary tile: s-deep edges (and s x s corners from
//     diagonals) only at phase starts (t divisible by the step size); the
//     final phase is truncated to the remaining steps.
//   - CA, consumer is interior: one-layer cardinal edges every step, as in
//     the base version.
func (b *builder) flow(prod *tileInfo, d grid.Dir, t int) (depth int, ok bool) {
	if t >= b.cfg.Steps || t < 0 {
		return 0, false
	}
	cons := b.neighbor(prod, d)
	if cons == nil {
		return 0, false
	}
	if b.v == CA && cons.boundary {
		s := b.cfg.StepSize
		if t%s != 0 {
			return 0, false
		}
		depth = s
		if rem := b.cfg.Steps - t; rem < depth {
			depth = rem
		}
		return depth, true
	}
	// The nine-point stencil reads diagonal neighbors, so the per-step
	// exchange includes 1x1 corner flows.
	if !d.Cardinal() && !b.cfg.NinePoint {
		return 0, false
	}
	return 1, true
}

// sendRect returns the rectangle prod packs when flowing depth layers
// toward d.
func (b *builder) sendRect(prod *tileInfo, d grid.Dir, depth int) grid.Rect {
	// Geometry only depends on interior dims, so a throwaway zero-halo
	// tile view suffices for rect computation; use a cheap struct instead.
	t := grid.Tile{Rows: prod.rows, Cols: prod.cols}
	return t.SendRect(d, depth)
}

func (b *builder) kind(inf *tileInfo, t int) ptg.Kind {
	switch {
	case t == 0:
		return ptg.KindInit
	case inf.boundary:
		return ptg.KindBoundary
	default:
		return ptg.KindInterior
	}
}

// priority favors earlier iterations, and boundary tiles within an
// iteration so their halos enter the network as soon as possible — the
// standard PaRSEC priority hint for stencils.
func (b *builder) priority(inf *tileInfo, t int) int32 {
	p := int32(b.cfg.Steps-t) * 2
	if inf.boundary {
		p++
	}
	return p
}

// phaseGeom returns, for a CA boundary tile at iteration t (>= 1), the
// effective phase length sp and the in-phase step index k (1-based).
func (b *builder) phaseGeom(t int) (sp, k int) {
	s := b.cfg.StepSize
	t0 := (t - 1) / s * s
	sp = s
	if rem := b.cfg.Steps - t0; rem < sp {
		sp = rem
	}
	return sp, t - t0
}

// region returns the rectangle a CA boundary tile updates at iteration t:
// the interior extended by the shrinking trapezoid margin on every side
// that has a neighbor (sides on the global boundary never extend).
func (b *builder) region(inf *tileInfo, t int) grid.Rect {
	sp, k := b.phaseGeom(t)
	ext := sp - k
	extOf := func(d grid.Dir) int {
		if ext <= 0 || b.neighbor(inf, d) == nil {
			return 0
		}
		return ext
	}
	n, s, w, e := extOf(grid.North), extOf(grid.South), extOf(grid.West), extOf(grid.East)
	return grid.Rect{
		R0: -n, C0: -w,
		H: inf.rows + n + s,
		W: inf.cols + w + e,
	}
}

// hint computes the DES cost quantities of a task.
func (b *builder) hint(inf *tileInfo, t int) ptg.CostHint {
	h := ptg.CostHint{Rows: inf.rows, Cols: inf.cols}
	// Points packed for outgoing flows.
	for _, d := range grid.AllDirs {
		if depth, ok := b.flow(inf, d, t); ok {
			h.CopyPoints += b.sendRect(inf, d, depth).Size()
		}
	}
	if t == 0 {
		// Init writes the tile once.
		h.CopyPoints += inf.rows * inf.cols
		return h
	}
	// Points unpacked from incoming flows.
	for _, d := range grid.AllDirs {
		p := b.neighbor(inf, d)
		if p == nil {
			continue
		}
		if depth, ok := b.flow(p, d.Opposite(), t-1); ok {
			h.CopyPoints += b.sendRect(p, d.Opposite(), depth).Size()
		}
	}
	h.Updates = inf.rows * inf.cols
	if b.v == CA && inf.boundary {
		h.RedundantUpdates = b.region(inf, t).Size() - h.Updates
	}
	return h
}

// body builds the executable closure of a task.
func (b *builder) body(inf *tileInfo, t int) func(ptg.Env) {
	if t == 0 {
		return b.initBody(inf)
	}
	return b.computeBody(inf, t)
}

func (b *builder) initBody(inf *tileInfo) func(ptg.Env) {
	cfg := b.cfg
	return func(e ptg.Env) {
		cur := grid.NewTile(inf.rows, inf.cols, inf.halo)
		next := grid.NewTile(inf.rows, inf.cols, inf.halo)
		for r := 0; r < inf.rows; r++ {
			row := cur.Row(r, 0, inf.cols)
			for c := range row {
				row[c] = cfg.Init(inf.r0+r, inf.c0+c)
			}
		}
		// Ghost cells outside the global domain hold the fixed boundary in
		// both buffers; they are never written afterwards.
		stencil.FillBoundary(cur, inf.r0, inf.c0, cfg.N, cfg.Boundary)
		stencil.FillBoundary(next, inf.r0, inf.c0, cfg.N, cfg.Boundary)
		st := &tileState{cur: cur, next: next, r0: inf.r0, c0: inf.c0}
		e.Put(TileKey{TI: inf.ti, TJ: inf.tj}, st)
		b.produce(e, st, inf, 0)
	}
}

func (b *builder) computeBody(inf *tileInfo, t int) func(ptg.Env) {
	w := b.cfg.Weights
	w9 := b.cfg.Weights9
	nine := b.cfg.NinePoint
	deepTile := b.v == CA && inf.boundary
	var rect grid.Rect
	if deepTile {
		rect = b.region(inf, t)
	} else {
		rect = grid.Rect{R0: 0, C0: 0, H: inf.rows, W: inf.cols}
	}
	return func(e ptg.Env) {
		st := e.Get(TileKey{TI: inf.ti, TJ: inf.tj}).(*tileState)
		b.consume(e, st, inf, t)
		if nine {
			stencil.Apply9(w9, st.next, st.cur, rect)
		} else {
			stencil.Apply(w, st.next, st.cur, rect)
		}
		st.cur, st.next = st.next, st.cur
		b.produce(e, st, inf, t)
	}
}

// produce packs and publishes every outgoing flow of iteration t.
func (b *builder) produce(e ptg.Env, st *tileState, inf *tileInfo, t int) {
	for _, d := range grid.AllDirs {
		depth, ok := b.flow(inf, d, t)
		if !ok {
			continue
		}
		buf := st.cur.Pack(st.cur.SendRect(d, depth), nil)
		e.Put(BufKey{TI: inf.ti, TJ: inf.tj, Step: t, Dir: d}, buf)
	}
}

// consume takes and unpacks every incoming flow feeding iteration t.
func (b *builder) consume(e ptg.Env, st *tileState, inf *tileInfo, t int) {
	for _, d := range grid.AllDirs {
		p := b.neighbor(inf, d)
		if p == nil {
			continue
		}
		depth, ok := b.flow(p, d.Opposite(), t-1)
		if !ok {
			continue
		}
		key := BufKey{TI: p.ti, TJ: p.tj, Step: t - 1, Dir: d.Opposite()}
		vals := e.Take(key).([]float64)
		st.cur.Unpack(st.cur.RecvRect(d, depth), vals)
	}
}

// GraphStats builds the graph (cost-only) and returns its statistics;
// convenient for tests and the documentation tables.
func GraphStats(v Variant, cfg Config) (ptg.Stats, error) {
	cfg.WithBodies = false
	g, err := BuildGraph(v, cfg)
	if err != nil {
		return ptg.Stats{}, err
	}
	return g.ComputeStats(), nil
}
