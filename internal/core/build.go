package core

import (
	"castencil/internal/grid"
	"castencil/internal/ptg"
	"castencil/internal/runtime"
	"castencil/internal/stencil"
)

// tileInfo caches per-tile geometry and classification for graph building.
type tileInfo struct {
	ti, tj     int
	rows, cols int
	r0, c0     int
	node       int32
	// boundary marks tiles with at least one remote cardinal neighbor —
	// the paper's "boundary tiles", which the CA variant equips with a
	// deep ghost region and phase-based communication.
	boundary bool
	halo     int

	// Store slots of the zero-copy fast path, reserved at build time when
	// the graph carries bodies; base -1 selects the keyed fallback.
	// stateSlot holds the tile's *tileState; sendSlot[d]/recvSlot[d] are
	// the slot ranges holding packed halo payloads flowing toward/arriving
	// from direction d, indexed round-robin by step or phase (see slotOf).
	// The range depth bounds the number of simultaneously live buffers of
	// the flow, which follows from how far the producer can run ahead of
	// the consumer (see slotDepth).
	stateSlot int32
	sendSlot  [grid.NumDirs]slotRange
	recvSlot  [grid.NumDirs]slotRange
}

// slotRange is a run of depth consecutive buffer slots cycled round-robin by
// one halo flow.
type slotRange struct{ base, depth int32 }

type builder struct {
	v    Variant
	cfg  Config
	part *grid.Partition
	info [][]*tileInfo
	// epochs is the number of compute tasks per tile: Steps for the
	// per-step variants, ceil(Steps/w) wavefront blocks for WF.
	epochs int
}

// effWidth returns the number of time steps WF block t (1-based) advances:
// the configured width, truncated on the final block to the remaining steps.
func (b *builder) effWidth(t int) int {
	w := b.cfg.Wavefront
	if rem := b.cfg.Steps - (t-1)*w; rem < w {
		return rem
	}
	return w
}

// BuildGraph constructs the task graph of a stencil variant. With
// cfg.WithBodies the graph is executable by internal/runtime; without, it is
// a cost-only graph for internal/desim.
func BuildGraph(v Variant, cfg Config) (*ptg.Graph, error) {
	cfg = cfg.withDefaults()
	part, err := cfg.validate(v)
	if err != nil {
		return nil, err
	}
	bd := &builder{v: v, cfg: cfg, part: part}
	bd.info = make([][]*tileInfo, part.TR)
	for ti := 0; ti < part.TR; ti++ {
		bd.info[ti] = make([]*tileInfo, part.TC)
		for tj := 0; tj < part.TC; tj++ {
			rows, cols := part.TileDims(ti, tj)
			r0, c0 := part.TileOrigin(ti, tj)
			inf := &tileInfo{
				ti: ti, tj: tj, rows: rows, cols: cols, r0: r0, c0: c0,
				node:     int32(part.Owner(ti, tj)),
				boundary: part.IsNodeBoundary(ti, tj),
			}
			inf.halo = 1
			if v == CA && inf.boundary {
				inf.halo = cfg.StepSize
			}
			if v == WF {
				// Every tile carries the deep ghost region: all flows —
				// intra-node ones included — happen once per block.
				inf.halo = cfg.Wavefront
			}
			inf.stateSlot = -1
			for d := range inf.sendSlot {
				inf.sendSlot[d] = slotRange{base: -1}
				inf.recvSlot[d] = slotRange{base: -1}
			}
			bd.info[ti][tj] = inf
		}
	}

	bd.epochs = cfg.Steps
	if v == WF {
		bd.epochs = (cfg.Steps + cfg.Wavefront - 1) / cfg.Wavefront
	}
	gb := ptg.NewBuilder(part.Nodes())
	if cfg.WithBodies {
		bd.allocSlots(gb)
	}
	// Tasks: one chain per tile, epochs 0 (init) .. epochs — one task per
	// step for Base/CA, one per wavefront block for WF.
	for ti := 0; ti < part.TR; ti++ {
		for tj := 0; tj < part.TC; tj++ {
			inf := bd.info[ti][tj]
			for t := 0; t <= bd.epochs; t++ {
				task := ptg.Task{
					ID:       taskID(ti, tj, t),
					Node:     inf.node,
					Kind:     bd.kind(inf, t),
					Priority: bd.priority(inf, t),
					// The iteration index is the exchange epoch: all halo
					// payloads a node produces at one iteration toward one
					// neighbor may ride a single coalesced bundle.
					Epoch: int32(t),
					Hint:  bd.hint(inf, t),
				}
				if cfg.WithBodies {
					task.Run = bd.body(inf, t)
				}
				task.Mig = bd.migration(inf, t)
				if _, err := gb.AddTask(task); err != nil {
					return nil, err
				}
			}
		}
	}
	// Dependencies.
	for ti := 0; ti < part.TR; ti++ {
		for tj := 0; tj < part.TC; tj++ {
			inf := bd.info[ti][tj]
			for t := 1; t <= bd.epochs; t++ {
				// Serial self-dependency: the tile's double buffer.
				if err := gb.AddDep(taskID(ti, tj, t), taskID(ti, tj, t-1), ptg.Dep{}); err != nil {
					return nil, err
				}
				for _, d := range grid.AllDirs {
					p := bd.neighbor(inf, d)
					if p == nil {
						continue
					}
					depth, ok := bd.flow(p, d.Opposite(), t-1)
					if !ok {
						continue
					}
					dep := ptg.Dep{}
					if p.node != inf.node {
						rect := bd.sendRect(p, d.Opposite(), depth)
						dep.Bytes = rect.Bytes()
						if cfg.WithBodies {
							key := BufKey{TI: p.ti, TJ: p.tj, Step: t - 1, Dir: d.Opposite()}
							ss, rs := int32(-1), int32(-1)
							if p.sendSlot[d.Opposite()].base >= 0 {
								ss = bd.slotOf(p.sendSlot[d.Opposite()], inf, t-1)
								rs = bd.slotOf(inf.recvSlot[d], inf, t-1)
							}
							dep.Pack = func(e ptg.Env) []byte {
								if se, ok := e.(ptg.SlotEnv); ok && ss >= 0 {
									return se.TakeBufSlot(ss)
								}
								return EncodeFloats(e.Take(key).([]float64))
							}
							dep.Unpack = func(e ptg.Env, data []byte) {
								if se, ok := e.(ptg.SlotEnv); ok && rs >= 0 {
									// Zero-copy: the in-flight payload itself
									// becomes the consumer-side buffer.
									se.PutBufSlot(rs, data)
									return
								}
								e.Put(key, DecodeFloats(data))
							}
						}
					}
					if err := gb.AddDep(taskID(ti, tj, t), taskID(p.ti, p.tj, t-1), dep); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	g, err := gb.Build()
	if err != nil {
		return nil, err
	}
	if cfg.Transform == TransformSplit {
		return ptg.ApplyTransforms(g, &splitPass{b: bd})
	}
	return g, nil
}

func taskID(ti, tj, t int) ptg.TaskID {
	return ptg.TaskID{Class: "st", I: ti, J: tj, K: t}
}

// allocSlots reserves store slots for the zero-copy fast path: one general
// slot per tile for its state, and one buffer-slot range per halo flow.
// Same-node flows share a single range (producer deposits, consumer takes);
// cross-node flows get a range on each side (Pack drains the producer's,
// Unpack fills the consumer's).
func (b *builder) allocSlots(gb *ptg.Builder) {
	for ti := 0; ti < b.part.TR; ti++ {
		for tj := 0; tj < b.part.TC; tj++ {
			b.info[ti][tj].stateSlot = gb.AllocSlot(b.info[ti][tj].node)
		}
	}
	alloc := func(node int32, depth int) slotRange {
		r := slotRange{depth: int32(depth)}
		for i := 0; i < depth; i++ {
			if s := gb.AllocBufSlot(node); i == 0 {
				r.base = s
			}
		}
		return r
	}
	for ti := 0; ti < b.part.TR; ti++ {
		for tj := 0; tj < b.part.TC; tj++ {
			cons := b.info[ti][tj]
			for _, d := range grid.AllDirs {
				p := b.neighbor(cons, d)
				if p == nil {
					continue
				}
				// Every flow kind fires after iteration 0, so existence at
				// t == 0 means the flow exists at all.
				if _, ok := b.flow(p, d.Opposite(), 0); !ok {
					continue
				}
				if !b.slottable(p, cons, d) {
					continue
				}
				depth := b.slotDepth(p, cons)
				p.sendSlot[d.Opposite()] = alloc(p.node, depth)
				if cons.node == p.node {
					cons.recvSlot[d] = p.sendSlot[d.Opposite()]
				} else {
					cons.recvSlot[d] = alloc(cons.node, depth)
				}
			}
		}
	}
}

// slotDepth bounds the number of simultaneously live buffers of the flow
// prod -> cons, i.e. how far the producer can run ahead of the take that
// frees a slot for reuse:
//
//   - Phase flows (CA, cons boundary): the producer cannot enter phase
//     p+2 before the consumer has finished the first step of phase p+1,
//     which consumed the phase-p payload. Two slots.
//   - Every-step flows from an interior (or Base) producer: the reverse
//     flow from the consumer reaches the producer the next step, so the
//     producer runs at most two steps ahead. Two slots.
//   - Every-step flows from a CA boundary producer: flows into a boundary
//     tile are phase-based, so nothing throttles the producer within a
//     phase — it can run a full phase (s productions) past a stalled
//     consumer, on top of the one unconsumed payload from the previous
//     phase boundary. s+1 slots.
func (b *builder) slotDepth(prod, cons *tileInfo) int {
	if b.v == CA && !cons.boundary && prod.boundary {
		return b.cfg.StepSize + 1
	}
	return 2
}

// slottable reports whether the flow prod -> cons arriving from direction d
// may use round-robin slots. The lone exception is the CA corner flow with
// StepSize 1 from an interior producer into a boundary tile: the producer
// has no reverse flow from the consumer (diagonal flows into interior tiles
// do not exist), so the take-before-reuse round-trip needs two cardinal
// hops — t+3 — while the producer refills the slot at t+2. Those rare 1x1
// corner payloads stay on the keyed fallback.
func (b *builder) slottable(prod, cons *tileInfo, d grid.Dir) bool {
	return d.Cardinal() || b.v != CA || !cons.boundary || prod.boundary ||
		b.cfg.StepSize >= 2
}

// slotOf indexes a flow's slot range for the payload produced at iteration
// t: phase flows (into CA boundary tiles) cycle per phase, every-step flows
// per step.
func (b *builder) slotOf(r slotRange, cons *tileInfo, t int) int32 {
	k := t
	if b.v == CA && cons.boundary {
		k = t / b.cfg.StepSize
	}
	return r.base + int32(k)%r.depth
}

func (b *builder) neighbor(inf *tileInfo, d grid.Dir) *tileInfo {
	ni, nj, ok := b.part.Neighbor(inf.ti, inf.tj, d)
	if !ok {
		return nil
	}
	return b.info[ni][nj]
}

// flow is the single source of truth for the dataflow: does tile prod
// produce a halo buffer toward direction d after iteration t, and how deep?
//
//   - Base: one-layer edges toward every cardinal neighbor, every step.
//   - CA, consumer is a boundary tile: s-deep edges (and s x s corners from
//     diagonals) only at phase starts (t divisible by the step size); the
//     final phase is truncated to the remaining steps.
//   - CA, consumer is interior: one-layer cardinal edges every step, as in
//     the base version.
//   - WF: every tile flows after every block; the depth is the effective
//     width of the consuming block t+1 (truncated on the final block), with
//     depth x depth corners from diagonals whenever the block is deeper
//     than one step (the shrinking per-level regions read corner data,
//     exactly as in CA).
func (b *builder) flow(prod *tileInfo, d grid.Dir, t int) (depth int, ok bool) {
	if t < 0 {
		return 0, false
	}
	if b.v == WF {
		if t >= b.epochs {
			return 0, false
		}
		cons := b.neighbor(prod, d)
		if cons == nil {
			return 0, false
		}
		depth = b.effWidth(t + 1)
		if depth == 1 && !d.Cardinal() && !b.cfg.NinePoint {
			return 0, false
		}
		return depth, true
	}
	if t >= b.cfg.Steps {
		return 0, false
	}
	cons := b.neighbor(prod, d)
	if cons == nil {
		return 0, false
	}
	if b.v == CA && cons.boundary {
		s := b.cfg.StepSize
		if t%s != 0 {
			return 0, false
		}
		depth = s
		if rem := b.cfg.Steps - t; rem < depth {
			depth = rem
		}
		return depth, true
	}
	// The nine-point stencil reads diagonal neighbors, so the per-step
	// exchange includes 1x1 corner flows.
	if !d.Cardinal() && !b.cfg.NinePoint {
		return 0, false
	}
	return 1, true
}

// sendRect returns the rectangle prod packs when flowing depth layers
// toward d.
func (b *builder) sendRect(prod *tileInfo, d grid.Dir, depth int) grid.Rect {
	// Geometry only depends on interior dims, so a throwaway zero-halo
	// tile view suffices for rect computation; use a cheap struct instead.
	t := grid.Tile{Rows: prod.rows, Cols: prod.cols}
	return t.SendRect(d, depth)
}

func (b *builder) kind(inf *tileInfo, t int) ptg.Kind {
	switch {
	case t == 0:
		return ptg.KindInit
	case inf.boundary:
		return ptg.KindBoundary
	default:
		return ptg.KindInterior
	}
}

// priority favors earlier iterations, and boundary tiles within an
// iteration so their halos enter the network as soon as possible — the
// standard PaRSEC priority hint for stencils.
func (b *builder) priority(inf *tileInfo, t int) int32 {
	p := int32(b.epochs-t) * 2
	if inf.boundary {
		p++
	}
	return p
}

// phaseGeom returns, for a CA boundary tile at iteration t (>= 1), the
// effective phase length sp and the in-phase step index k (1-based).
func (b *builder) phaseGeom(t int) (sp, k int) {
	s := b.cfg.StepSize
	t0 := (t - 1) / s * s
	sp = s
	if rem := b.cfg.Steps - t0; rem < sp {
		sp = rem
	}
	return sp, t - t0
}

// region returns the rectangle a CA boundary tile updates at iteration t:
// the interior extended by the shrinking trapezoid margin on every side
// that has a neighbor (sides on the global boundary never extend).
func (b *builder) region(inf *tileInfo, t int) grid.Rect {
	sp, k := b.phaseGeom(t)
	ext := sp - k
	extOf := func(d grid.Dir) int {
		if ext <= 0 || b.neighbor(inf, d) == nil {
			return 0
		}
		return ext
	}
	n, s, w, e := extOf(grid.North), extOf(grid.South), extOf(grid.West), extOf(grid.East)
	return grid.Rect{
		R0: -n, C0: -w,
		H: inf.rows + n + s,
		W: inf.cols + w + e,
	}
}

// hint computes the DES cost quantities of a task.
func (b *builder) hint(inf *tileInfo, t int) ptg.CostHint {
	h := ptg.CostHint{Rows: inf.rows, Cols: inf.cols}
	// Points packed for outgoing flows.
	for _, d := range grid.AllDirs {
		if depth, ok := b.flow(inf, d, t); ok {
			h.CopyPoints += b.sendRect(inf, d, depth).Size()
		}
	}
	if t == 0 {
		// Init writes the tile once.
		h.CopyPoints += inf.rows * inf.cols
		return h
	}
	// Points unpacked from incoming flows.
	for _, d := range grid.AllDirs {
		p := b.neighbor(inf, d)
		if p == nil {
			continue
		}
		if depth, ok := b.flow(p, d.Opposite(), t-1); ok {
			h.CopyPoints += b.sendRect(p, d.Opposite(), depth).Size()
		}
	}
	h.Updates = inf.rows * inf.cols
	if b.v == CA && inf.boundary {
		h.RedundantUpdates = b.region(inf, t).Size() - h.Updates
	}
	if b.v == WF {
		// One task covers a whole block: wb interior sweeps, plus the
		// shrinking ghost-region margins of every level above it.
		wb := b.effWidth(t)
		total := 0
		for _, rc := range b.wfRegions(inf, wb) {
			total += rc.Size()
		}
		h.Updates = wb * inf.rows * inf.cols
		h.RedundantUpdates = total - h.Updates
	}
	return h
}

// wfRegions returns the per-level update rects of tile inf's width-wb
// wavefront block (level k extends the interior by wb-k layers on sides
// with neighbors).
func (b *builder) wfRegions(inf *tileInfo, wb int) []grid.Rect {
	return stencil.WavefrontRegions(inf.rows, inf.cols, wb, func(d grid.Dir) bool {
		return b.neighbor(inf, d) != nil
	})
}

// body builds the executable closure of a task.
func (b *builder) body(inf *tileInfo, t int) func(ptg.Env) {
	if t == 0 {
		return b.initBody(inf)
	}
	if b.v == WF {
		return b.wavefrontBody(inf, t)
	}
	return b.computeBody(inf, t)
}

func (b *builder) initBody(inf *tileInfo) func(ptg.Env) {
	cfg := b.cfg
	return func(e ptg.Env) {
		cur := grid.NewTile(inf.rows, inf.cols, inf.halo)
		next := grid.NewTile(inf.rows, inf.cols, inf.halo)
		for r := 0; r < inf.rows; r++ {
			row := cur.Row(r, 0, inf.cols)
			for c := range row {
				row[c] = cfg.Init(inf.r0+r, inf.c0+c)
			}
		}
		// Ghost cells outside the global domain hold the fixed boundary in
		// both buffers; they are never written afterwards.
		stencil.FillBoundary(cur, inf.r0, inf.c0, cfg.N, cfg.Boundary)
		stencil.FillBoundary(next, inf.r0, inf.c0, cfg.N, cfg.Boundary)
		st := &tileState{cur: cur, next: next, r0: inf.r0, c0: inf.c0}
		// The keyed entry stays authoritative for out-of-graph readers
		// (Gather, hygiene tests); the slot gives compute tasks lock-free
		// access on the hot path.
		e.Put(TileKey{TI: inf.ti, TJ: inf.tj}, st)
		if se, ok := e.(ptg.SlotEnv); ok && inf.stateSlot >= 0 {
			se.PutSlot(inf.stateSlot, st)
		}
		b.produce(e, st, inf, 0)
	}
}

func (b *builder) computeBody(inf *tileInfo, t int) func(ptg.Env) {
	w := b.cfg.Weights
	w9 := b.cfg.Weights9
	nine := b.cfg.NinePoint
	deepTile := b.v == CA && inf.boundary
	var rect grid.Rect
	if deepTile {
		rect = b.region(inf, t)
	} else {
		rect = grid.Rect{R0: 0, C0: 0, H: inf.rows, W: inf.cols}
	}
	return func(e ptg.Env) {
		st := b.state(e, inf)
		b.consume(e, st, inf, t)
		if nine {
			stencil.Apply9(w9, st.next, st.cur, rect)
		} else {
			stencil.Apply(w, st.next, st.cur, rect)
		}
		st.cur, st.next = st.next, st.cur
		b.produce(e, st, inf, t)
	}
}

// wavefrontBody builds the fused WF task for block t (1-based): it consumes
// the fresh w-deep halos of the block, advances the tile effWidth(t) steps
// with one diagonal in-tile sweep, and publishes the next block's halos. The
// kernel leaves the final level in whichever buffer the depth's parity picks,
// so the double-buffer swap is conditional.
func (b *builder) wavefrontBody(inf *tileInfo, t int) func(ptg.Env) {
	w := b.cfg.Weights
	w9 := b.cfg.Weights9
	nine := b.cfg.NinePoint
	regions := b.wfRegions(inf, b.effWidth(t))
	return func(e ptg.Env) {
		st := b.state(e, inf)
		b.consume(e, st, inf, t)
		var res *grid.Tile
		if nine {
			res = stencil.Wavefront9(w9, st.cur, st.next, regions)
		} else {
			res = stencil.Wavefront(w, st.cur, st.next, regions)
		}
		if res != st.cur {
			st.cur, st.next = st.next, st.cur
		}
		b.produce(e, st, inf, t)
	}
}

// produce packs and publishes every outgoing flow of iteration t. On the
// fast path the halo is serialized straight into a pooled wire buffer
// (Tile.PackBytes) and deposited in the flow's parity slot; the float64
// round-trip and its allocations exist only on the keyed fallback.
func (b *builder) produce(e ptg.Env, st *tileState, inf *tileInfo, t int) {
	se, slotted := e.(ptg.SlotEnv)
	for _, d := range grid.AllDirs {
		depth, ok := b.flow(inf, d, t)
		if !ok {
			continue
		}
		rc := st.cur.SendRect(d, depth)
		if slotted && inf.sendSlot[d].base >= 0 {
			cons := b.neighbor(inf, d)
			buf := st.cur.PackBytes(rc, runtime.GetBuf(rc.Bytes()))
			se.PutBufSlot(b.slotOf(inf.sendSlot[d], cons, t), buf)
			continue
		}
		buf := st.cur.Pack(rc, nil)
		e.Put(BufKey{TI: inf.ti, TJ: inf.tj, Step: t, Dir: d}, buf)
	}
}

// consume takes and unpacks every incoming flow feeding iteration t. Fast
// path: the wire buffer is deserialized in place into the ghost region and
// immediately recycled into the runtime arena — steady state allocates
// nothing.
func (b *builder) consume(e ptg.Env, st *tileState, inf *tileInfo, t int) {
	for _, d := range grid.AllDirs {
		b.consumeDir(e, st, inf, d, t)
	}
}

// consumeDir takes and unpacks the single incoming flow arriving from
// direction d for iteration t, if it exists. Split border tasks use it to
// consume exactly the halo they are gated on; the unsplit path loops it
// over all directions.
func (b *builder) consumeDir(e ptg.Env, st *tileState, inf *tileInfo, d grid.Dir, t int) {
	p := b.neighbor(inf, d)
	if p == nil {
		return
	}
	depth, ok := b.flow(p, d.Opposite(), t-1)
	if !ok {
		return
	}
	rc := st.cur.RecvRect(d, depth)
	if se, slotted := e.(ptg.SlotEnv); slotted && inf.recvSlot[d].base >= 0 {
		buf := se.TakeBufSlot(b.slotOf(inf.recvSlot[d], inf, t-1))
		st.cur.UnpackBytes(rc, buf)
		runtime.PutBuf(buf)
		return
	}
	key := BufKey{TI: p.ti, TJ: p.tj, Step: t - 1, Dir: d.Opposite()}
	vals := e.Take(key).([]float64)
	st.cur.Unpack(rc, vals)
}

// migFlow is one halo flow a migrating task consumes or produces, resolved
// to its transfer mechanics at build time: the exact payload size, the slot
// it rides on the fast path, and the key of the slow-path fallback.
type migFlow struct {
	slot  int32 // -1 selects the keyed fallback
	key   BufKey
	bytes int
}

// migration builds the steal-protocol hooks of the compute task at iteration
// t (see ptg.Migration): the full ghost-inclusive tile contents plus every
// consumed input halo travel to the thief, the post-step tile contents plus
// every produced output halo travel back. Byte geometry is derived from the
// same flow() truth the dependency graph uses, so InBytes/OutBytes are exact
// on cost-only graphs too — the simulator prices migrations identically.
//
// Determinism argument: the payload ships cur's complete storage (interior
// and every ghost cell), so the thief executes the byte-identical kernel
// input a local run would have. The thief-side next buffer differs from the
// victim's only in ghost cells that are provably dead — every later read of
// a ghost is preceded by a halo consume or an in-task write — so the grid a
// committed migration leaves behind is bitwise-identical to local execution.
func (b *builder) migration(inf *tileInfo, t int) *ptg.Migration {
	if t == 0 {
		return nil // init allocates the tile state; it never migrates
	}
	var ins, outs []migFlow
	for _, d := range grid.AllDirs {
		if p := b.neighbor(inf, d); p != nil {
			if depth, ok := b.flow(p, d.Opposite(), t-1); ok {
				f := migFlow{
					slot:  -1,
					key:   BufKey{TI: p.ti, TJ: p.tj, Step: t - 1, Dir: d.Opposite()},
					bytes: b.sendRect(p, d.Opposite(), depth).Bytes(),
				}
				if inf.recvSlot[d].base >= 0 {
					f.slot = b.slotOf(inf.recvSlot[d], inf, t-1)
				}
				ins = append(ins, f)
			}
		}
		if depth, ok := b.flow(inf, d, t); ok {
			f := migFlow{
				slot:  -1,
				key:   BufKey{TI: inf.ti, TJ: inf.tj, Step: t, Dir: d},
				bytes: b.sendRect(inf, d, depth).Bytes(),
			}
			if inf.sendSlot[d].base >= 0 {
				f.slot = b.slotOf(inf.sendSlot[d], b.neighbor(inf, d), t)
			}
			outs = append(outs, f)
		}
	}
	full := grid.Rect{
		R0: -inf.halo, C0: -inf.halo,
		H: inf.rows + 2*inf.halo, W: inf.cols + 2*inf.halo,
	}
	mig := &ptg.Migration{InBytes: full.Bytes(), OutBytes: full.Bytes()}
	for _, f := range ins {
		mig.InBytes += f.bytes
	}
	for _, f := range outs {
		mig.OutBytes += f.bytes
	}
	if !b.cfg.WithBodies {
		return mig
	}
	cfg := b.cfg
	mig.PackIn = func(e ptg.Env) []byte {
		st := b.state(e, inf)
		data := runtime.GetBuf(mig.InBytes)[:mig.InBytes]
		off := full.Bytes()
		st.cur.PackBytes(full, data[:off])
		for _, f := range ins {
			seg := data[off : off+f.bytes]
			if se, ok := e.(ptg.SlotEnv); ok && f.slot >= 0 {
				buf := se.TakeBufSlot(f.slot)
				copy(seg, buf)
				runtime.PutBuf(buf)
			} else {
				copy(seg, EncodeFloats(e.Take(f.key).([]float64)))
			}
			off += f.bytes
		}
		return data
	}
	mig.Deposit = func(e ptg.Env, data []byte) {
		st := migState(e, inf, cfg)
		off := full.Bytes()
		st.cur.UnpackBytes(full, data[:off])
		for _, f := range ins {
			seg := data[off : off+f.bytes]
			if se, ok := e.(ptg.SlotEnv); ok && f.slot >= 0 {
				buf := runtime.GetBuf(f.bytes)[:f.bytes]
				copy(buf, seg)
				se.PutBufSlot(f.slot, buf)
			} else {
				e.Put(f.key, DecodeFloats(seg))
			}
			off += f.bytes
		}
	}
	mig.PackOut = func(e ptg.Env) []byte {
		st := b.state(e, inf)
		data := runtime.GetBuf(mig.OutBytes)[:mig.OutBytes]
		off := full.Bytes()
		st.cur.PackBytes(full, data[:off])
		for _, f := range outs {
			seg := data[off : off+f.bytes]
			if se, ok := e.(ptg.SlotEnv); ok && f.slot >= 0 {
				buf := se.TakeBufSlot(f.slot)
				copy(seg, buf)
				runtime.PutBuf(buf)
			} else {
				copy(seg, EncodeFloats(e.Take(f.key).([]float64)))
			}
			off += f.bytes
		}
		return data
	}
	mig.Commit = func(e ptg.Env, data []byte) {
		st := b.state(e, inf)
		off := full.Bytes()
		// The shipped result lands in next and the double buffer swaps, so
		// cur holds exactly what a local execution's swap would have left.
		st.next.UnpackBytes(full, data[:off])
		st.cur, st.next = st.next, st.cur
		for _, f := range outs {
			seg := data[off : off+f.bytes]
			if se, ok := e.(ptg.SlotEnv); ok && f.slot >= 0 {
				buf := runtime.GetBuf(f.bytes)[:f.bytes]
				copy(buf, seg)
				se.PutBufSlot(f.slot, buf)
			} else {
				e.Put(f.key, DecodeFloats(seg))
			}
			off += f.bytes
		}
	}
	return mig
}

// migState fetches — or, on a thief rank executing its first migrated task
// of this tile, creates — the tile's double-buffer state. The fresh next
// buffer gets the fixed global boundary in its out-of-domain ghosts (init
// fills them exactly once in a local run); its remaining cells are dead
// until written, per the determinism argument above.
func migState(e ptg.Env, inf *tileInfo, cfg Config) *tileState {
	if se, ok := e.(ptg.SlotEnv); ok && inf.stateSlot >= 0 {
		if v := se.GetSlot(inf.stateSlot); v != nil {
			return v.(*tileState)
		}
	} else if v := e.Get(TileKey{TI: inf.ti, TJ: inf.tj}); v != nil {
		return v.(*tileState)
	}
	cur := grid.NewTile(inf.rows, inf.cols, inf.halo)
	next := grid.NewTile(inf.rows, inf.cols, inf.halo)
	stencil.FillBoundary(next, inf.r0, inf.c0, cfg.N, cfg.Boundary)
	st := &tileState{cur: cur, next: next, r0: inf.r0, c0: inf.c0}
	e.Put(TileKey{TI: inf.ti, TJ: inf.tj}, st)
	if se, ok := e.(ptg.SlotEnv); ok && inf.stateSlot >= 0 {
		se.PutSlot(inf.stateSlot, st)
	}
	return st
}

// state fetches the tile's double-buffer state: slot fast path, keyed
// fallback.
func (b *builder) state(e ptg.Env, inf *tileInfo) *tileState {
	if se, ok := e.(ptg.SlotEnv); ok && inf.stateSlot >= 0 {
		return se.GetSlot(inf.stateSlot).(*tileState)
	}
	return e.Get(TileKey{TI: inf.ti, TJ: inf.tj}).(*tileState)
}

// GraphStats builds the graph (cost-only) and returns its statistics;
// convenient for tests and the documentation tables.
func GraphStats(v Variant, cfg Config) (ptg.Stats, error) {
	cfg.WithBodies = false
	g, err := BuildGraph(v, cfg)
	if err != nil {
		return ptg.Stats{}, err
	}
	return g.ComputeStats(), nil
}
