package core

import (
	"math/rand"
	"testing"

	"castencil/internal/grid"
	"castencil/internal/ptg"
	"castencil/internal/runtime"
	"castencil/internal/stencil"
)

// referenceFor runs the sequential oracle for a config.
func referenceFor(t *testing.T, cfg Config) *stencil.Reference {
	t.Helper()
	cfg = cfg.withDefaults()
	ref := stencil.NewReference(cfg.N, cfg.Weights, cfg.Init, cfg.Boundary)
	ref.Run(cfg.Steps)
	return ref
}

// assertMatchesReference runs a variant for real and checks the result is
// bitwise identical to the sequential oracle.
func assertMatchesReference(t *testing.T, v Variant, cfg Config, workers int) *RealResult {
	t.Helper()
	res, err := RunReal(v, cfg, runtime.Options{Workers: workers})
	if err != nil {
		t.Fatalf("%v %+v: %v", v, cfg, err)
	}
	ref := referenceFor(t, cfg)
	for r := 0; r < cfg.N; r++ {
		for c := 0; c < cfg.N; c++ {
			if got, want := res.Grid.At(r, c), ref.At(r, c); got != want {
				t.Fatalf("%v: (%d,%d) = %v, want %v (bitwise)", v, r, c, got, want)
			}
		}
	}
	return res
}

func TestBaseSingleNodeMatchesReference(t *testing.T) {
	assertMatchesReference(t, Base, Config{N: 24, TileRows: 6, P: 1, Steps: 10}, 3)
}

func TestBaseMultiNodeMatchesReference(t *testing.T) {
	assertMatchesReference(t, Base, Config{N: 24, TileRows: 6, P: 2, Steps: 10}, 2)
}

func TestBaseRaggedTilesMatchReference(t *testing.T) {
	// 25 does not divide by 6: edge tiles are 1 wide.
	assertMatchesReference(t, Base, Config{N: 25, TileRows: 6, P: 2, Steps: 7}, 2)
}

func TestBaseRectangularTilesAndGrid(t *testing.T) {
	assertMatchesReference(t, Base, Config{N: 24, TileRows: 4, TileCols: 8, P: 3, Q: 2, Steps: 6}, 2)
}

func TestCASingleNodeMatchesReference(t *testing.T) {
	// Single node: no boundary tiles at all; CA degenerates to base.
	assertMatchesReference(t, CA, Config{N: 24, TileRows: 6, P: 1, Steps: 10, StepSize: 4}, 3)
}

func TestCAMultiNodeMatchesReference(t *testing.T) {
	assertMatchesReference(t, CA, Config{N: 24, TileRows: 6, P: 2, Steps: 12, StepSize: 4}, 2)
}

func TestCAStepSizeSweepMatchesReference(t *testing.T) {
	// Includes step sizes that do not divide the iteration count (truncated
	// final phase) and s == 1 (degenerate: phase per step).
	for _, s := range []int{1, 2, 3, 5, 6} {
		cfg := Config{N: 24, TileRows: 6, P: 2, Steps: 11, StepSize: s}
		assertMatchesReference(t, CA, cfg, 2)
	}
}

func TestCANonSquareProcessGrid(t *testing.T) {
	assertMatchesReference(t, CA, Config{N: 30, TileRows: 5, P: 3, Q: 2, Steps: 9, StepSize: 3}, 2)
}

func TestCAWithHeatWeightsAndBoundary(t *testing.T) {
	cfg := Config{
		N: 20, TileRows: 5, P: 2, Steps: 8, StepSize: 4,
		Weights:  stencil.Heat(0.2),
		Boundary: func(gr, gc int) float64 { return float64(gr - gc) },
		Init:     stencil.HashInit(99),
	}
	assertMatchesReference(t, CA, cfg, 2)
}

func TestCAEqualsBaseBitwise(t *testing.T) {
	cfg := Config{N: 24, TileRows: 4, P: 2, Steps: 10, StepSize: 3}
	base, err := RunReal(Base, cfg, runtime.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ca, err := RunReal(CA, cfg, runtime.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !grid.InteriorEqual(base.Grid, ca.Grid) {
		t.Fatal("base and CA results differ")
	}
}

func TestRandomizedEquivalence(t *testing.T) {
	// Property-style sweep: random problem geometry, both variants must
	// reproduce the oracle bitwise.
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 6; trial++ {
		n := rng.Intn(20) + 12
		tile := rng.Intn(4) + 4
		p := rng.Intn(2) + 1
		q := rng.Intn(2) + 1
		steps := rng.Intn(8) + 3
		s := rng.Intn(3) + 2
		cfg := Config{
			N: n, TileRows: tile, P: p, Q: q, Steps: steps, StepSize: s,
			Init: stencil.HashInit(uint64(trial)),
		}
		if part, err := cfg.Partition(); err != nil || part.TR < p || part.TC < q {
			continue
		}
		if _, err := cfg.validate(CA); err != nil {
			continue // step size vs ragged tile; skip
		}
		assertMatchesReference(t, Base, cfg, rng.Intn(3)+1)
		assertMatchesReference(t, CA, cfg, rng.Intn(3)+1)
	}
}

func TestBufferHygiene(t *testing.T) {
	// Every halo buffer must be consumed: stores hold only tile states
	// after a run.
	for _, v := range []Variant{Base, CA} {
		res, err := RunReal(v, Config{N: 24, TileRows: 6, P: 2, Steps: 9, StepSize: 3}, runtime.Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if n := LeftoverBuffers(res.Exec.Stores); n != 0 {
			t.Errorf("%v: %d unconsumed buffers", v, n)
		}
	}
}

func TestCASendsFewerMessages(t *testing.T) {
	// The whole point: with step size s, boundary tiles exchange ~1/s as
	// many messages (plus corner flows).
	cfg := Config{N: 32, TileRows: 8, P: 2, Steps: 12, StepSize: 6}
	base, err := RunReal(Base, cfg, runtime.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ca, err := RunReal(CA, cfg, runtime.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ca.Exec.Messages >= base.Exec.Messages/2 {
		t.Errorf("CA sent %d messages vs base %d; expected a large reduction",
			ca.Exec.Messages, base.Exec.Messages)
	}
	if ca.Exec.BytesSent >= base.Exec.BytesSent*2 {
		t.Errorf("CA bytes %d should not blow up vs base %d", ca.Exec.BytesSent, base.Exec.BytesSent)
	}
}

func TestMessageCountsExact(t *testing.T) {
	// 2x2 tiles on 2x2 nodes (one tile per node), N=8, tile 4, 3 steps.
	// Base: every tile has 2 remote cardinal neighbors; flows per step:
	// 4 tiles * 2 dirs = 8 messages for steps 0..2 (step 3 produces none).
	cfg := Config{N: 8, TileRows: 4, P: 2, Steps: 3}
	base, err := RunReal(Base, cfg, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := 8 * 3; base.Exec.Messages != want {
		t.Errorf("base messages = %d, want %d", base.Exec.Messages, want)
	}
	// CA with s=3 (one phase): each tile sends once to each remote
	// neighbor: cardinal 2 + diagonal 1 = 3 flows per tile, at t=0 only.
	ca, err := RunReal(CA, Config{N: 8, TileRows: 4, P: 2, Steps: 3, StepSize: 3}, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * 3; ca.Exec.Messages != want {
		t.Errorf("ca messages = %d, want %d", ca.Exec.Messages, want)
	}
}

func TestGraphStatsShape(t *testing.T) {
	cfg := Config{N: 16, TileRows: 4, P: 2, Steps: 5, StepSize: 4}
	for _, v := range []Variant{Base, CA} {
		s, err := GraphStats(v, cfg)
		if err != nil {
			t.Fatal(err)
		}
		wantTasks := 16 * 6 // 4x4 tiles, steps 0..5
		if s.Tasks != wantTasks {
			t.Errorf("%v: tasks = %d, want %d", v, s.Tasks, wantTasks)
		}
		// Critical path: the serial chain of one tile, 6 tasks.
		if s.CriticalPathTasks != 6 {
			t.Errorf("%v: critical path = %d, want 6", v, s.CriticalPathTasks)
		}
	}
	b, _ := GraphStats(Base, cfg)
	c, _ := GraphStats(CA, cfg)
	if c.CrossDeps >= b.CrossDeps {
		t.Errorf("CA cross deps %d should be below base %d", c.CrossDeps, b.CrossDeps)
	}
}

func TestValidation(t *testing.T) {
	if _, err := BuildGraph(Base, Config{N: 16, TileRows: 4, P: 2}); err == nil {
		t.Error("Steps=0 must fail")
	}
	if _, err := BuildGraph(CA, Config{N: 16, TileRows: 4, P: 2, Steps: 5, StepSize: 4}); err != nil {
		t.Errorf("step size == tile size must be fine: %v", err)
	}
	if _, err := BuildGraph(CA, Config{N: 16, TileRows: 4, P: 2, Steps: 5, StepSize: 6}); err == nil {
		t.Error("step size > tile size must fail")
	}
	// Ragged: N=18, tile 4 -> last tile dim 2; s=3 must fail.
	if _, err := BuildGraph(CA, Config{N: 18, TileRows: 4, P: 2, Steps: 5, StepSize: 3}); err == nil {
		t.Error("step size > smallest ragged tile must fail")
	}
	if _, err := BuildGraph(Base, Config{N: 16, TileRows: 4, P: 8, Steps: 5}); err == nil {
		t.Error("process grid larger than tile grid must fail")
	}
}

func TestVariantString(t *testing.T) {
	if Base.String() != "base" || CA.String() != "ca" || Variant(7).String() != "unknown" {
		t.Error("variant names")
	}
}

func TestKindsAndPriorities(t *testing.T) {
	cfg := Config{N: 16, TileRows: 4, P: 2, Steps: 3, StepSize: 2}
	g, err := BuildGraph(CA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sawBoundary, sawInterior, sawInit bool
	for i := range g.Tasks {
		tk := &g.Tasks[i]
		switch tk.Kind {
		case ptg.KindInit:
			sawInit = true
			if tk.ID.K != 0 {
				t.Errorf("init task at step %d", tk.ID.K)
			}
		case ptg.KindBoundary:
			sawBoundary = true
		case ptg.KindInterior:
			sawInterior = true
		}
		// Earlier steps must have strictly higher priority for same tile.
		if tk.ID.K > 0 {
			prev, _ := g.Lookup(taskID(tk.ID.I, tk.ID.J, tk.ID.K-1))
			if g.Tasks[prev].Priority <= tk.Priority {
				t.Errorf("priority must decrease along the chain: %v", tk.ID)
			}
		}
	}
	if !sawBoundary || !sawInterior || !sawInit {
		t.Errorf("kinds missing: boundary=%v interior=%v init=%v", sawBoundary, sawInterior, sawInit)
	}
}

func TestHintsCAExcessWork(t *testing.T) {
	cfg := Config{N: 16, TileRows: 4, P: 2, Steps: 4, StepSize: 4}
	g, err := BuildGraph(CA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A boundary tile's first-phase task (k=1) must report redundant
	// updates; its last (k=s) must report none.
	var foundFirst, foundLast bool
	for i := range g.Tasks {
		tk := &g.Tasks[i]
		if tk.Kind != ptg.KindBoundary {
			continue
		}
		if tk.ID.K == 1 {
			foundFirst = true
			if tk.Hint.RedundantUpdates <= 0 {
				t.Errorf("%v: phase-start task needs redundant updates", tk.ID)
			}
		}
		if tk.ID.K == 4 {
			foundLast = true
			if tk.Hint.RedundantUpdates != 0 {
				t.Errorf("%v: phase-end task must have no redundant updates, got %d", tk.ID, tk.Hint.RedundantUpdates)
			}
		}
	}
	if !foundFirst || !foundLast {
		t.Error("boundary tasks not found")
	}
}

func TestRunRealAllPolicies(t *testing.T) {
	cfg := Config{N: 20, TileRows: 5, P: 2, Steps: 6, StepSize: 3}
	for _, pol := range []runtime.Policy{runtime.FIFO, runtime.LIFO, runtime.PriorityOrder} {
		res, err := RunReal(CA, cfg, runtime.Options{Workers: 3, Policy: pol})
		if err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
		ref := referenceFor(t, cfg)
		if d := ref.MaxAbsDiff(res.Grid.At); d != 0 {
			t.Errorf("policy %v: max diff %v", pol, d)
		}
	}
}
