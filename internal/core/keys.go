package core

import (
	"encoding/binary"
	"math"

	"castencil/internal/grid"
)

// TileKey addresses a tile's persistent state in a node store.
type TileKey struct {
	TI, TJ int
}

// BufKey addresses a packed halo buffer: the data tile (TI, TJ) produced at
// iteration Step, flowing toward its neighbor in direction Dir.
type BufKey struct {
	TI, TJ, Step int
	Dir          grid.Dir
}

// tileState is the double-buffered tile a task chain owns. Only the tasks
// of tile (ti, tj) ever touch it; neighbors see packed copies.
type tileState struct {
	cur, next *grid.Tile
	r0, c0    int // global origin
}

// EncodeFloats serializes a float64 slice for inter-node transport. The PTG
// fast path now serializes tiles straight to wire buffers (grid.Tile.
// PackBytes) and never calls this; it remains the transport of the DTD
// front-end and of the keyed fallback used by engines without slot support.
// The wire format is identical: little-endian IEEE-754 bits, row-major.
func EncodeFloats(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// DecodeFloats deserializes an inter-node payload.
func DecodeFloats(data []byte) []float64 {
	if len(data)%8 != 0 {
		panic("core: payload length not a multiple of 8")
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return out
}
