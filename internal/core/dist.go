package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"castencil/internal/grid"
	"castencil/internal/runtime"
)

// This file is the control-plane side of a distributed real run: after the
// runtime's data plane drains, the final tiles are gathered to rank 0 over
// the same conduit (a "tiles" gather in the run's epoch), so only rank 0
// materializes the global grid — exactly one process answers for the run,
// and its answer is bitwise-identical to a single-process execution.

// gatherDistributed assembles the final global grid on rank 0 of a
// distributed run. Every rank (rank 0 included) serializes the tiles its
// nodes own; rank 0 decodes all blobs uniformly into the output grid. On
// non-zero ranks the returned grid is nil.
func gatherDistributed(p *grid.Partition, stores []*runtime.Store, d *runtime.Dist) (*grid.Tile, error) {
	payload, err := encodeLocalTiles(p, stores, d)
	if err != nil {
		return nil, err
	}
	blobs, err := d.Net.Gather("tiles", payload)
	if err != nil {
		return nil, err
	}
	if d.Rank != 0 {
		return nil, nil
	}
	out := grid.NewTile(p.N, p.N, 0)
	tiles := 0
	for r, blob := range blobs {
		n, err := decodeTiles(p, out, blob)
		if err != nil {
			return nil, fmt.Errorf("core: bad tiles payload from rank %d: %v", r, err)
		}
		tiles += n
	}
	if tiles != p.Tiles() {
		return nil, fmt.Errorf("core: distributed gather produced %d tiles, want %d", tiles, p.Tiles())
	}
	return out, nil
}

// encodeLocalTiles serializes every tile owned by this rank's nodes as
// [i32 ti][i32 tj][i32 rows][i32 cols][float64-LE data...] records.
func encodeLocalTiles(p *grid.Partition, stores []*runtime.Store, d *runtime.Dist) ([]byte, error) {
	var out []byte
	var buf [8]byte
	le := binary.LittleEndian
	for ti := 0; ti < p.TR; ti++ {
		for tj := 0; tj < p.TC; tj++ {
			owner := p.Owner(ti, tj)
			if runtime.RankOfNode(owner, p.Nodes(), d.Ranks) != d.Rank {
				continue
			}
			v := stores[owner].Get(TileKey{TI: ti, TJ: tj})
			if v == nil {
				return nil, fmt.Errorf("core: tile (%d,%d) missing from its owner's store", ti, tj)
			}
			st := v.(*tileState)
			le.PutUint32(buf[:4], uint32(ti))
			out = append(out, buf[:4]...)
			le.PutUint32(buf[:4], uint32(tj))
			out = append(out, buf[:4]...)
			le.PutUint32(buf[:4], uint32(st.cur.Rows))
			out = append(out, buf[:4]...)
			le.PutUint32(buf[:4], uint32(st.cur.Cols))
			out = append(out, buf[:4]...)
			for r := 0; r < st.cur.Rows; r++ {
				for _, f := range st.cur.Row(r, 0, st.cur.Cols) {
					le.PutUint64(buf[:], math.Float64bits(f))
					out = append(out, buf[:]...)
				}
			}
		}
	}
	return out, nil
}

// decodeTiles copies one rank's tile records into the global grid and
// returns how many tiles the blob carried.
func decodeTiles(p *grid.Partition, out *grid.Tile, blob []byte) (int, error) {
	le := binary.LittleEndian
	n := 0
	for len(blob) > 0 {
		if len(blob) < 16 {
			return n, fmt.Errorf("truncated tile header (%d bytes left)", len(blob))
		}
		ti := int(int32(le.Uint32(blob)))
		tj := int(int32(le.Uint32(blob[4:])))
		rows := int(int32(le.Uint32(blob[8:])))
		cols := int(int32(le.Uint32(blob[12:])))
		blob = blob[16:]
		if !p.InTileGrid(ti, tj) {
			return n, fmt.Errorf("tile (%d,%d) outside the partition", ti, tj)
		}
		wantR, wantC := p.TileDims(ti, tj)
		if rows != wantR || cols != wantC {
			return n, fmt.Errorf("tile (%d,%d) is %dx%d, want %dx%d", ti, tj, rows, cols, wantR, wantC)
		}
		need := rows * cols * 8
		if len(blob) < need {
			return n, fmt.Errorf("tile (%d,%d) data truncated (%d of %d bytes)", ti, tj, len(blob), need)
		}
		r0, c0 := p.TileOrigin(ti, tj)
		for r := 0; r < rows; r++ {
			dst := out.Row(r0+r, c0, cols)
			for c := range dst {
				dst[c] = math.Float64frombits(le.Uint64(blob[(r*cols+c)*8:]))
			}
		}
		blob = blob[need:]
		n++
	}
	return n, nil
}
