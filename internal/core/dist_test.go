package core

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"castencil/internal/fault"
	"castencil/internal/netcomm"
	"castencil/internal/ptg"
	"castencil/internal/runtime"
)

// connectPair establishes a two-rank loopback mesh on pre-bound listeners
// (no port races) and tears it down with the test.
func connectPair(t testing.TB, mut func(r int, o *netcomm.Options)) [2]*netcomm.Transport {
	t.Helper()
	var lns [2]net.Listener
	addrs := make([]string, 2)
	for r := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[r] = ln
		addrs[r] = ln.Addr().String()
	}
	var ts [2]*netcomm.Transport
	var errs [2]error
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o := netcomm.Options{Rank: r, Addrs: addrs, Listener: lns[r]}
			if mut != nil {
				mut(r, &o)
			}
			ts[r], errs[r] = netcomm.Connect(o)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range ts {
			if tr != nil {
				tr.Close()
			}
		}
	})
	return ts
}

// runDistributed executes one real run across the two-rank mesh and returns
// both ranks' results (index = rank). Rank 0 carries the gathered grid and
// the globally-summed counters.
func runDistributed(t testing.TB, v Variant, cfg Config, base runtime.Options, ts [2]*netcomm.Transport) [2]*RealResult {
	t.Helper()
	var res [2]*RealResult
	var errs [2]error
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			opts := base
			opts.Dist = &runtime.Dist{Rank: r, Ranks: 2, Net: ts[r]}
			res[r], errs[r] = RunReal(v, cfg, opts)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d run: %v", r, err)
		}
	}
	return res
}

// TestDistributedMatchesSingleProcess is the tentpole's acceptance test: a
// two-process (two-transport) loopback run must be bitwise identical to the
// single-process run and carry exactly the same wire accounting — and the
// accounting must in turn match the virtual-time simulator — in both
// coalesce modes. One mesh serves all runs back to back, exercising the
// epoch machinery between jobs.
func TestDistributedMatchesSingleProcess(t *testing.T) {
	cfg := Config{N: 64, TileRows: 8, P: 2, Steps: 12, StepSize: 3}
	ts := connectPair(t, nil)
	for _, mode := range []ptg.CoalesceMode{ptg.CoalesceOff, ptg.CoalesceStep} {
		t.Run(fmt.Sprintf("coalesce=%s", mode), func(t *testing.T) {
			base := runtime.Options{Workers: 2, Coalesce: mode}
			single, err := RunReal(CA, cfg, base)
			if err != nil {
				t.Fatal(err)
			}
			dist := runDistributed(t, CA, cfg, base, ts)
			if dist[1].Grid != nil {
				t.Error("rank 1 materialized a grid; only rank 0 should")
			}
			assertGridsBitwiseEqual(t, "distributed vs single-process", single.Grid, dist[0].Grid)

			d, s := dist[0].Exec, single.Exec
			if d.Messages != s.Messages || d.BytesSent != s.BytesSent ||
				d.BundlesSent != s.BundlesSent || d.BundleSegments != s.BundleSegments {
				t.Errorf("distributed traffic (%d msgs, %d bytes, %d bundles, %d segments) != single-process (%d, %d, %d, %d)",
					d.Messages, d.BytesSent, d.BundlesSent, d.BundleSegments,
					s.Messages, s.BytesSent, s.BundlesSent, s.BundleSegments)
			}
			if d.Completed != s.Completed {
				t.Errorf("distributed completed %d tasks, single-process %d", d.Completed, s.Completed)
			}

			sim, err := Simulate(CA, cfg, SimOptions{Machine: machineForTest(), Coalesce: mode})
			if err != nil {
				t.Fatal(err)
			}
			if sim.Messages != d.Messages || sim.BytesSent != d.BytesSent ||
				sim.Bundles != d.BundlesSent || sim.Segments != d.BundleSegments {
				t.Errorf("sim traffic (%d msgs, %d bytes, %d bundles, %d segments) != distributed (%d, %d, %d, %d)",
					sim.Messages, sim.BytesSent, sim.Bundles, sim.Segments,
					d.Messages, d.BytesSent, d.BundlesSent, d.BundleSegments)
			}
		})
	}
}

// TestDistributedReliable runs the two-rank mesh with the reliable transport
// on (sequence numbers, acks, retransmit timers riding the socket lanes) and
// checks exactly-once delivery end to end: bitwise-identical grid, no
// counter drift from retransmits or dedup.
func TestDistributedReliable(t *testing.T) {
	cfg := Config{N: 48, TileRows: 8, P: 2, Steps: 6, StepSize: 2}
	ts := connectPair(t, nil)
	rec := runtime.Options{Workers: 2, Recovery: fault.DefaultRecovery()}
	single, err := RunReal(CA, cfg, rec)
	if err != nil {
		t.Fatal(err)
	}
	dist := runDistributed(t, CA, cfg, rec, ts)
	assertGridsBitwiseEqual(t, "reliable distributed vs single-process", single.Grid, dist[0].Grid)
	d, s := dist[0].Exec, single.Exec
	if d.Messages != s.Messages || d.BytesSent != s.BytesSent {
		t.Errorf("reliable distributed traffic (%d msgs, %d bytes) != single-process (%d, %d)",
			d.Messages, d.BytesSent, s.Messages, s.BytesSent)
	}
	if d.Dropped != 0 {
		t.Errorf("reliable distributed run dropped %d deliveries on a clean wire", d.Dropped)
	}
}

// TestDistributedWavefront covers the second kernel family over the wire:
// wavefront temporal blocking has a different dependency structure (diagonal
// pipelining) and so exercises different cross-rank traffic.
func TestDistributedWavefront(t *testing.T) {
	cfg := Config{N: 48, TileRows: 8, P: 2, Steps: 6, Wavefront: 3}
	ts := connectPair(t, nil)
	base := runtime.Options{Workers: 2}
	single, err := RunReal(WF, cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	dist := runDistributed(t, WF, cfg, base, ts)
	assertGridsBitwiseEqual(t, "wavefront distributed vs single-process", single.Grid, dist[0].Grid)
	if d, s := dist[0].Exec, single.Exec; d.Messages != s.Messages || d.BytesSent != s.BytesSent {
		t.Errorf("wavefront distributed traffic (%d msgs, %d bytes) != single-process (%d, %d)",
			d.Messages, d.BytesSent, s.Messages, s.BytesSent)
	}
}
