package core

import (
	"fmt"
	"math/rand"
	"testing"

	"castencil/internal/grid"
	"castencil/internal/ptg"
	"castencil/internal/runtime"
)

// splitCfg returns cfg with the inner/border split transform enabled.
func splitCfg(cfg Config) Config {
	cfg.Transform = TransformSplit
	return cfg
}

// TestSplitMatchesReference checks the split transform against the
// sequential oracle on every pipeline shape the splitter distinguishes:
// base, CA (trapezoid regions on boundary tiles), a ragged decomposition
// (uneven tile extents), and the nine-point kernel (diagonal halo flows,
// so corner border tasks carry real data deps).
func TestSplitMatchesReference(t *testing.T) {
	assertMatchesReference(t, Base, splitCfg(Config{N: 24, TileRows: 6, P: 2, Steps: 8}), 2)
	assertMatchesReference(t, CA, splitCfg(Config{N: 24, TileRows: 6, P: 2, Steps: 12, StepSize: 4}), 2)
	assertMatchesReference(t, CA, splitCfg(Config{N: 30, TileRows: 5, P: 3, Q: 2, Steps: 9, StepSize: 3}), 2)
	assertMatchesReference(t, Base, splitCfg(Config{N: 25, TileRows: 6, P: 2, Steps: 7}), 2)
}

// TestSplitMatchesReference9Point is the nine-point variant: diagonal
// flows make every corner border task consume a real halo payload.
func TestSplitMatchesReference9Point(t *testing.T) {
	assertMatches9(t, Base, splitCfg(Config{N: 24, TileRows: 6, P: 2, Steps: 8}), 2)
	assertMatches9(t, CA, splitCfg(Config{N: 24, TileRows: 6, P: 2, Steps: 8, StepSize: 2}), 2)
}

// TestSplitDeterminism is the acceptance criterion of the split transform:
// across both variants, every scheduler, 1/2/4 workers per node and halo
// coalescing off and on, the split run's grid is bitwise identical to the
// unsplit FIFO single-worker reference. Splitting re-partitions each tile
// update into disjoint rect sweeps of the same read-only inputs, so any
// divergence means a border task ran before its halo arrived or wrote
// outside its rect.
func TestSplitDeterminism(t *testing.T) {
	cases := []struct {
		name string
		v    Variant
		cfg  Config
	}{
		{"base", Base, Config{N: 24, TileRows: 6, P: 2, Steps: 8}},
		{"ca", CA, Config{N: 24, TileRows: 6, P: 2, Steps: 8, StepSize: 3}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ref := runSched(t, c.v, c.cfg, "fifo", 1) // unsplit reference
			for _, coal := range []ptg.CoalesceMode{ptg.CoalesceOff, ptg.CoalesceStep} {
				for _, sched := range schedVariants() {
					for _, workers := range []int{1, 2, 4} {
						label := fmt.Sprintf("split %s w=%d coalesce=%v", sched, workers, coal)
						got := runSchedCoalesce(t, c.v, splitCfg(c.cfg), sched, workers, coal)
						assertGridsBitwiseEqual(t, label, ref.Grid, got.Grid)
					}
				}
			}
		})
	}
}

// TestSplitTrafficMatchesUnsplit pins the transform's communication
// neutrality: because the commit task keeps the original producer's task
// ID, class and epoch, the split graph generates exactly the wire traffic
// of the unsplit one — same message count, bytes, and (under coalescing)
// same bundle plan.
func TestSplitTrafficMatchesUnsplit(t *testing.T) {
	cfg := Config{N: 48, TileRows: 8, P: 2, Steps: 10, StepSize: 2}
	for _, coal := range []ptg.CoalesceMode{ptg.CoalesceOff, ptg.CoalesceStep} {
		plain, err := RunReal(CA, cfg, runtime.Options{Workers: 2, Coalesce: coal})
		if err != nil {
			t.Fatal(err)
		}
		split, err := RunReal(CA, splitCfg(cfg), runtime.Options{Workers: 2, Coalesce: coal})
		if err != nil {
			t.Fatal(err)
		}
		if split.Exec.Messages != plain.Exec.Messages || split.Exec.BytesSent != plain.Exec.BytesSent ||
			split.Exec.BundlesSent != plain.Exec.BundlesSent || split.Exec.BundleSegments != plain.Exec.BundleSegments {
			t.Errorf("coalesce=%v: split traffic (%d msgs, %d B, %d bundles, %d segments) != unsplit (%d, %d, %d, %d)",
				coal, split.Exec.Messages, split.Exec.BytesSent, split.Exec.BundlesSent, split.Exec.BundleSegments,
				plain.Exec.Messages, plain.Exec.BytesSent, plain.Exec.BundlesSent, plain.Exec.BundleSegments)
		}
	}
}

// TestSplitSimMatchesReal checks the virtual-time engine accounts the same
// wire traffic as the real runtime on a split graph — the hint partition
// and bundle-plan preservation must agree across engines.
func TestSplitSimMatchesReal(t *testing.T) {
	cfg := splitCfg(Config{N: 64, TileRows: 8, P: 2, Steps: 12, StepSize: 3})
	for _, coal := range []ptg.CoalesceMode{ptg.CoalesceOff, ptg.CoalesceStep} {
		real, err := RunReal(CA, cfg, runtime.Options{Workers: 2, Coalesce: coal})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := Simulate(CA, cfg, SimOptions{Machine: machineForTest(), Coalesce: coal})
		if err != nil {
			t.Fatal(err)
		}
		if sim.Messages != real.Exec.Messages || sim.Bundles != real.Exec.BundlesSent ||
			sim.Segments != real.Exec.BundleSegments || sim.BytesSent != real.Exec.BytesSent {
			t.Errorf("coalesce=%v: sim traffic (%d msgs, %d bundles, %d segments, %d B) != real (%d, %d, %d, %d)",
				coal, sim.Messages, sim.Bundles, sim.Segments, sim.BytesSent,
				real.Exec.Messages, real.Exec.BundlesSent, real.Exec.BundleSegments, real.Exec.BytesSent)
		}
		if sim.InteriorTasks != real.Exec.InteriorTasks || sim.BorderTasks != real.Exec.BorderTasks {
			t.Errorf("coalesce=%v: sim split census (%d interior, %d border) != real (%d, %d)",
				coal, sim.InteriorTasks, sim.BorderTasks, real.Exec.InteriorTasks, real.Exec.BorderTasks)
		}
	}
}

// TestSplitHintPartition checks the cost hints partition exactly: for every
// original (tile, epoch) task the splitter rewrote, the interior + border +
// commit hints sum to the unsplit task's Updates, RedundantUpdates and
// CopyPoints — so the simulator charges the same work, just distributed.
func TestSplitHintPartition(t *testing.T) {
	for _, c := range []struct {
		name string
		v    Variant
		cfg  Config
	}{
		{"base", Base, Config{N: 24, TileRows: 6, P: 2, Steps: 6}},
		{"ca", CA, Config{N: 24, TileRows: 6, P: 2, Steps: 8, StepSize: 4}},
	} {
		t.Run(c.name, func(t *testing.T) {
			plain, err := BuildGraph(c.v, c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			split, err := BuildGraph(c.v, splitCfg(c.cfg))
			if err != nil {
				t.Fatal(err)
			}
			type key struct{ i, j, k int }
			sums := map[key]ptg.CostHint{}
			for i := range split.Tasks {
				task := &split.Tasks[i]
				k := key{task.ID.I, task.ID.J, task.ID.K}
				h := sums[k]
				h.Updates += task.Hint.Updates
				h.RedundantUpdates += task.Hint.RedundantUpdates
				h.CopyPoints += task.Hint.CopyPoints
				sums[k] = h
			}
			for i := range plain.Tasks {
				task := &plain.Tasks[i]
				k := key{task.ID.I, task.ID.J, task.ID.K}
				h := sums[k]
				if h.Updates != task.Hint.Updates || h.RedundantUpdates != task.Hint.RedundantUpdates ||
					h.CopyPoints != task.Hint.CopyPoints {
					t.Fatalf("%v: split hints sum to (upd=%d red=%d copy=%d), unsplit has (%d, %d, %d)",
						task.ID, h.Updates, h.RedundantUpdates, h.CopyPoints,
						task.Hint.Updates, task.Hint.RedundantUpdates, task.Hint.CopyPoints)
				}
			}
		})
	}
}

// TestSplitOverlapCounters checks both engines report the split census and
// a sane overlap ratio, that border tasks outrank their interior sibling,
// and that an unsplit run reports all-zero overlap fields (pay-for-use).
func TestSplitOverlapCounters(t *testing.T) {
	cfg := splitCfg(Config{N: 48, TileRows: 8, P: 2, Steps: 8})
	real, err := RunReal(Base, cfg, runtime.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if real.Exec.InteriorTasks == 0 || real.Exec.BorderTasks == 0 {
		t.Fatalf("real split census empty: %d interior, %d border", real.Exec.InteriorTasks, real.Exec.BorderTasks)
	}
	if r := real.Exec.OverlapRatio; r < 0 || r > 1 {
		t.Fatalf("real overlap ratio %v outside [0,1]", r)
	}
	sim, err := Simulate(Base, cfg, SimOptions{Machine: machineForTest()})
	if err != nil {
		t.Fatal(err)
	}
	if sim.InteriorTasks == 0 || sim.BorderTasks == 0 {
		t.Fatalf("sim split census empty: %d interior, %d border", sim.InteriorTasks, sim.BorderTasks)
	}
	if r := sim.OverlapRatio; r <= 0 || r > 1 {
		t.Fatalf("sim overlap ratio %v outside (0,1] on a multi-node run", r)
	}
	plain, err := RunReal(Base, Config{N: 48, TileRows: 8, P: 2, Steps: 8}, runtime.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Exec.InteriorTasks != 0 || plain.Exec.BorderTasks != 0 || plain.Exec.OverlapRatio != 0 {
		t.Fatalf("unsplit run reports overlap fields: %d/%d/%v",
			plain.Exec.InteriorTasks, plain.Exec.BorderTasks, plain.Exec.OverlapRatio)
	}
}

// TestSplitBorderPriority checks every border and commit task outranks its
// interior sibling — the scheduler-facing half of latency tolerance: halo
// producers and consumers go first so payloads enter the wire early.
func TestSplitBorderPriority(t *testing.T) {
	g, err := BuildGraph(Base, splitCfg(Config{N: 24, TileRows: 6, P: 2, Steps: 4}))
	if err != nil {
		t.Fatal(err)
	}
	inner := map[[3]int]int32{}
	for i := range g.Tasks {
		if g.Tasks[i].Kind == ptg.KindInner {
			inner[[3]int{g.Tasks[i].ID.I, g.Tasks[i].ID.J, g.Tasks[i].ID.K}] = g.Tasks[i].Priority
		}
	}
	if len(inner) == 0 {
		t.Fatal("no interior tasks in a split graph")
	}
	checked := 0
	for i := range g.Tasks {
		task := &g.Tasks[i]
		if task.Kind != ptg.KindBorder && task.ID.Class != "st" {
			continue
		}
		p, ok := inner[[3]int{task.ID.I, task.ID.J, task.ID.K}]
		if !ok {
			continue
		}
		if task.Priority <= p {
			t.Fatalf("%v priority %d does not outrank interior sibling %d", task.ID, task.Priority, p)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no border/commit tasks matched an interior sibling")
	}
}

// TestSplitWFRejected checks the transform is refused with the wavefront
// variant on both engines — WF's fused tasks have no halo-free interior.
func TestSplitWFRejected(t *testing.T) {
	cfg := splitCfg(Config{N: 24, TileRows: 6, P: 2, Steps: 8, Wavefront: 2})
	if _, err := RunReal(WF, cfg, runtime.Options{Workers: 1}); err == nil {
		t.Error("RunReal accepted transform=split with the wf variant")
	}
	if _, err := Simulate(WF, cfg, SimOptions{Machine: machineForTest()}); err == nil {
		t.Error("Simulate accepted transform=split with the wf variant")
	}
}

// TestSplitStatsFresh is the stats-lifecycle regression: the graph a
// transform returns must carry eagerly computed statistics identical to a
// from-scratch build of the same configuration, and InvalidateStats must
// force a recomputation that agrees with the memoized copy.
func TestSplitStatsFresh(t *testing.T) {
	cfg := splitCfg(Config{N: 24, TileRows: 6, P: 2, Steps: 6, StepSize: 2})
	g1, err := BuildGraph(CA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BuildGraph(CA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := g1.ComputeStats(), g2.ComputeStats()
	assertStatsEqual(t, "post-transform vs from-scratch", s1, s2)
	g1.InvalidateStats()
	assertStatsEqual(t, "memoized vs recomputed", s1, g1.ComputeStats())
	deps, bytes := g1.CrossNodeDeps()
	if deps != s1.CrossDeps || bytes != s1.CrossBytes {
		t.Fatalf("CrossNodeDeps (%d, %d) disagrees with stats (%d, %d)", deps, bytes, s1.CrossDeps, s1.CrossBytes)
	}
}

func assertStatsEqual(t *testing.T, label string, a, b ptg.Stats) {
	t.Helper()
	if a.Tasks != b.Tasks || a.Deps != b.Deps || a.CrossDeps != b.CrossDeps ||
		a.CrossBytes != b.CrossBytes || a.TasksPerNodeMin != b.TasksPerNodeMin ||
		a.TasksPerNodeMax != b.TasksPerNodeMax || a.CriticalPathTasks != b.CriticalPathTasks {
		t.Fatalf("%s: stats diverged: %+v vs %+v", label, a, b)
	}
	if len(a.KindCounts) != len(b.KindCounts) {
		t.Fatalf("%s: kind counts diverged: %v vs %v", label, a.KindCounts, b.KindCounts)
	}
	for k, v := range a.KindCounts {
		if b.KindCounts[k] != v {
			t.Fatalf("%s: kind %q count %d vs %d", label, k, v, b.KindCounts[k])
		}
	}
}

// TestSplitLeftoverBuffers checks buffer hygiene under the split dataflow:
// every halo buffer a border task consumes must be recycled, leaving no
// keyed values or live buffer slots after the run.
func TestSplitLeftoverBuffers(t *testing.T) {
	res, err := RunReal(CA, splitCfg(Config{N: 48, TileRows: 8, P: 2, Steps: 10, StepSize: 2}),
		runtime.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n := LeftoverBuffers(res.Exec.Stores); n != 0 {
		t.Fatalf("%d leftover buffers/keyed values after a split run", n)
	}
}

// TestSplitBorderRoundTripZeroAlloc pins the steady-state border-task halo
// hop at zero heap allocations: the thin border rect travels pooled buffer
// -> producer slot -> wire -> consumer slot -> in-place unpack -> pool,
// exactly the slot-ring fast path the splitter's consumeDir reuses.
func TestSplitBorderRoundTripZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := randomHaloTile(rng, 96, 1)
	dst := grid.NewTile(96, 96, 1)
	sendRc := src.SendRect(grid.West, 1) // thin column: a border task's halo
	recvRc := dst.RecvRect(grid.East, 1)
	producer := runtime.NewStoreWithSlots(0, 1)
	consumer := runtime.NewStoreWithSlots(0, 1)
	runtime.PutBuf(runtime.GetBuf(sendRc.Bytes())) // warm the arena

	hop := func() {
		buf := src.PackBytes(sendRc, runtime.GetBuf(sendRc.Bytes()))
		producer.PutBufSlot(0, buf)
		consumer.PutBufSlot(0, producer.TakeBufSlot(0))
		got := consumer.TakeBufSlot(0)
		dst.UnpackBytes(recvRc, got)
		runtime.PutBuf(got)
	}
	if n := testing.AllocsPerRun(50, hop); n != 0 {
		t.Errorf("split border halo round trip: %v allocs per run, want 0", n)
	}
}

// BenchmarkExecutorSplit compares the full concurrent engine with the
// split transform off and on, on the comm-inclusive multi-node shapes
// (the message path is live, so overlap has something to hide).
func BenchmarkExecutorSplit(b *testing.B) {
	shapes := []struct {
		name string
		v    Variant
		cfg  Config
	}{
		{"base-n4", Base, Config{N: 256, TileRows: 8, P: 2, Steps: 20}},
		{"ca-n4", CA, Config{N: 256, TileRows: 16, P: 2, Steps: 20, StepSize: 4}},
	}
	for _, sh := range shapes {
		for _, tr := range []TransformMode{TransformNone, TransformSplit} {
			cfg := sh.cfg
			cfg.Transform = tr
			b.Run(sh.name+"-"+tr.String(), func(b *testing.B) {
				benchExecutor(b, sh.v, cfg, runtime.Options{Workers: 2, Sched: runtime.WorkStealing})
			})
		}
	}
}
