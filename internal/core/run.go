package core

import (
	"context"
	"fmt"
	"time"

	"castencil/internal/desim"
	"castencil/internal/fault"
	"castencil/internal/grid"
	"castencil/internal/machine"
	"castencil/internal/memmodel"
	"castencil/internal/netsim"
	"castencil/internal/ptg"
	"castencil/internal/runtime"
	"castencil/internal/stencil"
	"castencil/internal/trace"
)

// RealResult is the outcome of a real (numerically exact) execution.
type RealResult struct {
	// Grid holds the final iterate over the whole domain, gathered from
	// all node stores. In a distributed run only rank 0 materializes it;
	// on other ranks Grid is nil.
	Grid      *grid.Tile
	Partition *grid.Partition
	Exec      *runtime.Result
}

// RunReal builds the graph with bodies and executes it on the concurrent
// runtime, gathering the final grid.
func RunReal(v Variant, cfg Config, opts runtime.Options) (*RealResult, error) {
	cfg = cfg.withDefaults()
	cfg.WithBodies = true
	part, err := cfg.validate(v)
	if err != nil {
		return nil, err
	}
	g, err := BuildGraph(v, cfg)
	if err != nil {
		return nil, err
	}
	if opts.Dist != nil {
		// Open the run's epoch before anything touches the wire: the
		// runtime's barriers and the tiles gather below all ride in it.
		opts.Dist.Net.Begin()
	}
	res, err := runtime.Run(g, opts)
	if err != nil {
		return nil, err
	}
	var full *grid.Tile
	if opts.Dist != nil {
		full, err = gatherDistributed(part, res.Stores, opts.Dist)
	} else {
		full, err = Gather(part, res.Stores)
	}
	if err != nil {
		return nil, err
	}
	return &RealResult{Grid: full, Partition: part, Exec: res}, nil
}

// Gather assembles the final global grid from the per-node stores of a
// completed real execution.
func Gather(p *grid.Partition, stores []*runtime.Store) (*grid.Tile, error) {
	out := grid.NewTile(p.N, p.N, 0)
	for ti := 0; ti < p.TR; ti++ {
		for tj := 0; tj < p.TC; tj++ {
			store := stores[p.Owner(ti, tj)]
			v := store.Get(TileKey{TI: ti, TJ: tj})
			if v == nil {
				return nil, fmt.Errorf("core: tile (%d,%d) missing from its owner's store", ti, tj)
			}
			st := v.(*tileState)
			for r := 0; r < st.cur.Rows; r++ {
				copy(out.Row(st.r0+r, st.c0, st.cur.Cols), st.cur.Row(r, 0, st.cur.Cols))
			}
		}
	}
	return out, nil
}

// LeftoverBuffers counts non-tile values remaining in the stores after a
// run — keyed entries other than tile states plus occupied buffer slots. A
// correct dataflow consumes every halo buffer exactly once, so this must be
// zero (used by hygiene tests).
func LeftoverBuffers(stores []*runtime.Store) int {
	n := 0
	for _, s := range stores {
		for _, k := range s.Keys() {
			if _, isTile := k.(TileKey); !isTile {
				n++
			}
		}
		n += s.LiveBufSlots()
	}
	return n
}

// SimOptions configures a virtual-time performance simulation.
type SimOptions struct {
	// Machine is the cluster model (required).
	Machine *machine.Model
	// Ratio is the paper's kernel-adjustment ratio (section VI-D): only a
	// (ratio*mb) x (ratio*nb) portion of each tile is updated, simulating
	// a faster memory system / optimized kernel. 0 or 1 = full kernel.
	Ratio float64
	// Policy orders oversubscribed cores (default priority, like the
	// stencil-tuned PaRSEC scheduler).
	FIFO bool
	// Trace, when non-nil, collects virtual-time events for TraceNode
	// (all nodes when TraceNode < 0).
	Trace     *trace.Trace
	TraceNode int32
	// Coalesce aggregates per-epoch halo payloads into per-neighbor
	// bundles (see runtime.Options.Coalesce for the modes).
	Coalesce ptg.CoalesceMode
	// Fault injects a deterministic fault schedule into the virtual wire;
	// the same plan injects the byte-identical schedule in a real run (see
	// runtime.Options.Fault). Recovery configures the modeled reliable
	// transport (auto-enabled for plans that need it).
	Fault    *fault.Plan
	Recovery *fault.Recovery
	// Ctx bounds the simulation in wall-clock time (nil = uninterruptible);
	// a cancelled or deadline-exceeded context stops the event loop with a
	// *ptg.CancelError. OnProgress streams (completed, total) task counts.
	Ctx        context.Context
	OnProgress func(done, total int64)
	// Steal mirrors a distributed run's forced work-stealing migrations in
	// virtual time (see desim.StealOpts). Node placement follows
	// runtime.RankOfNode over Steal.Ranks, exactly as a real distributed
	// run places nodes.
	Steal *SimSteal
}

// SimSteal scripts forced migrations for a simulated distributed run.
type SimSteal struct {
	Ranks int
	Force []runtime.ForcedSteal
}

// SimResult reports a simulated run.
type SimResult struct {
	Makespan  time.Duration
	GFLOPS    float64 // at the paper's 9*N^2*steps accounting
	Messages  int
	BytesSent int
	// Bundles and Segments count coalesced wire messages and the member
	// transfers they carried (zero when coalescing is off).
	Bundles  int
	Segments int
	// CommBusy is each node's communication-thread busy time; divide by
	// Makespan for comm-thread occupancy.
	CommBusy []time.Duration
	// Fault counts the injected fault schedule and modeled recovery work.
	Fault fault.Stats
	// OverlapRatio, InteriorTasks and BorderTasks report the split
	// transform's communication–computation overlap (see
	// desim.Result.OverlapRatio); all zero unless Config.Transform splits
	// the graph.
	OverlapRatio  float64
	InteriorTasks int
	BorderTasks   int
	// Work-stealing mirror counters, matching runtime.Result's fields of
	// the same names (all zero without SimOptions.Steal).
	StealsRemote  int
	MigratedTasks int
	MigratedBytes int
	Sim           *desim.Result
}

// BundleFill returns the mean member transfers per coalesced bundle (0
// when none were sent).
func (r *SimResult) BundleFill() float64 {
	if r.Bundles == 0 {
		return 0
	}
	return float64(r.Segments) / float64(r.Bundles)
}

// CostModel prices stencil tasks with the machine's kernel model. Following
// the paper's methodology, the kernel-adjustment ratio replaces the tile
// update with a (ratio*mb) x (ratio*nb) one and — exactly as in the paper's
// experiment — does not charge the CA trapezoid's redundant points ("we
// simulate the kernel time without the extra computation"), while halo-copy
// traffic is always charged (the CA version's bigger message copies are why
// its median kernel time exceeds the base version's in Fig. 10). With
// ratio >= 1 (the real kernel), redundant updates are charged in full.
func CostModel(m *machine.Model, ratio float64) desim.CostFn {
	full := ratio <= 0 || ratio >= 1
	if full {
		ratio = 1
	}
	return func(t *ptg.Task) time.Duration {
		if t.Kind == ptg.KindInit {
			// The paper times the iteration loop, not allocation and
			// initial data placement.
			return 0
		}
		h := t.Hint
		cost := m.Kern.TaskOverhead + memmodel.CopyTime(m, h.CopyPoints)
		updates := ratio * ratio * float64(h.Updates)
		if full {
			updates += float64(h.RedundantUpdates)
		}
		if updates > 0 {
			cost += memmodel.UpdateTime(m, h.Rows, h.Cols, updates)
		}
		return cost
	}
}

// Simulate replays a stencil variant in virtual time on a machine model and
// returns the predicted performance.
func Simulate(v Variant, cfg Config, opts SimOptions) (*SimResult, error) {
	if opts.Machine == nil {
		return nil, fmt.Errorf("core: SimOptions.Machine is required")
	}
	if err := opts.Machine.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	cfg.WithBodies = false
	part, err := cfg.validate(v)
	if err != nil {
		return nil, err
	}
	g, err := BuildGraph(v, cfg)
	if err != nil {
		return nil, err
	}
	policy := desim.Priority
	if opts.FIFO {
		policy = desim.FIFO
	}
	fabric := netsim.NewFabric(opts.Machine.Net, part.Nodes())
	var steal *desim.StealOpts
	if opts.Steal != nil && len(opts.Steal.Force) > 0 {
		nodes := part.Nodes()
		ranks := opts.Steal.Ranks
		force := make([]desim.ForcedSteal, len(opts.Steal.Force))
		for i, f := range opts.Steal.Force {
			force[i] = desim.ForcedSteal{Task: f.Task, Thief: f.Thief}
		}
		steal = &desim.StealOpts{
			Ranks:  ranks,
			RankOf: func(node int) int { return runtime.RankOfNode(node, nodes, ranks) },
			Force:  force,
		}
	}
	res, err := desim.Run(g, desim.Options{
		Cores:      opts.Machine.ComputeCores(),
		Cost:       CostModel(opts.Machine, opts.Ratio),
		Fabric:     fabric,
		Policy:     policy,
		Trace:      opts.Trace,
		TraceNode:  opts.TraceNode,
		Coalesce:   opts.Coalesce,
		Fault:      opts.Fault,
		Recovery:   opts.Recovery,
		Ctx:        opts.Ctx,
		OnProgress: opts.OnProgress,
		Steal:      steal,
	})
	if err != nil {
		return nil, err
	}
	flops := memmodel.SweepFlops(cfg.N, cfg.Steps)
	if cfg.NinePoint {
		flops = flops / memmodel.FlopsPerUpdate * stencil.Flops9PerUpdate
	}
	busy := make([]time.Duration, part.Nodes())
	for n := range busy {
		busy[n] = fabric.CommBusy(n)
	}
	return &SimResult{
		Makespan:      res.Makespan,
		GFLOPS:        flops / res.Makespan.Seconds() / 1e9,
		Messages:      res.Messages,
		BytesSent:     res.BytesSent,
		Bundles:       res.Bundles,
		Segments:      res.Segments,
		CommBusy:      busy,
		Fault:         res.Fault,
		OverlapRatio:  res.OverlapRatio,
		InteriorTasks: res.InteriorTasks,
		BorderTasks:   res.BorderTasks,
		StealsRemote:  res.StealsRemote,
		MigratedTasks: res.MigratedTasks,
		MigratedBytes: res.MigratedBytes,
		Sim:           res,
	}, nil
}
