package core

import (
	"testing"

	"castencil/internal/grid"
	"castencil/internal/runtime"
	"castencil/internal/stencil"
)

// assertMatches9 runs a variant with the nine-point kernel and checks the
// result is bitwise identical to the nine-point sequential oracle.
func assertMatches9(t *testing.T, v Variant, cfg Config, workers int) {
	t.Helper()
	cfg.NinePoint = true
	res, err := RunReal(v, cfg, runtime.Options{Workers: workers})
	if err != nil {
		t.Fatalf("%v: %v", v, err)
	}
	full := cfg.withDefaults()
	ref := stencil.NewReference9(full.N, full.Weights9, full.Init, full.Boundary)
	ref.Run(full.Steps)
	for r := 0; r < cfg.N; r++ {
		for c := 0; c < cfg.N; c++ {
			if got, want := res.Grid.At(r, c), ref.At(r, c); got != want {
				t.Fatalf("%v 9pt: (%d,%d) = %v, want %v", v, r, c, got, want)
			}
		}
	}
}

func TestNinePointBaseMatchesOracle(t *testing.T) {
	assertMatches9(t, Base, Config{N: 24, TileRows: 6, P: 2, Steps: 8}, 2)
}

func TestNinePointBaseSingleNode(t *testing.T) {
	assertMatches9(t, Base, Config{N: 20, TileRows: 5, P: 1, Steps: 6}, 3)
}

func TestNinePointCAMatchesOracle(t *testing.T) {
	for _, s := range []int{2, 3, 5} {
		assertMatches9(t, CA, Config{N: 24, TileRows: 6, P: 2, Steps: 9, StepSize: s}, 2)
	}
}

func TestNinePointCARagged(t *testing.T) {
	// 26 over tiles of 6: ragged 2-wide edge tiles; s must be <= 2.
	assertMatches9(t, CA, Config{N: 26, TileRows: 6, P: 2, Steps: 7, StepSize: 2}, 2)
}

func TestNinePointCustomWeights(t *testing.T) {
	cfg := Config{
		N: 18, TileRows: 6, P: 2, Steps: 5, StepSize: 2,
		NinePoint: true,
		Weights9: stencil.Weights9{
			C: 0.1, N: 0.1, S: 0.1, W: 0.1, E: 0.1,
			NW: 0.05, NE: 0.05, SW: 0.05, SE: 0.05,
		},
		Init:     stencil.HashInit(7),
		Boundary: func(gr, gc int) float64 { return 0.5 },
	}
	res, err := RunReal(CA, cfg, runtime.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref := stencil.NewReference9(cfg.N, cfg.Weights9, cfg.Init, cfg.Boundary)
	ref.Run(cfg.Steps)
	for r := 0; r < cfg.N; r++ {
		for c := 0; c < cfg.N; c++ {
			if res.Grid.At(r, c) != ref.At(r, c) {
				t.Fatalf("(%d,%d) mismatch", r, c)
			}
		}
	}
}

func TestNinePointBaseUsesCornerFlows(t *testing.T) {
	// Base 9-point must exchange more messages than base 5-point (corner
	// flows across node boundaries).
	cfg5 := Config{N: 16, TileRows: 4, P: 2, Steps: 4}
	cfg9 := cfg5
	cfg9.NinePoint = true
	g5, err := BuildGraph(Base, cfg5)
	if err != nil {
		t.Fatal(err)
	}
	g9, err := BuildGraph(Base, cfg9)
	if err != nil {
		t.Fatal(err)
	}
	c5, _ := g5.CrossNodeDeps()
	c9, _ := g9.CrossNodeDeps()
	if c9 <= c5 {
		t.Errorf("9-point cross deps %d must exceed 5-point %d", c9, c5)
	}
}

func TestNinePointCAMessageCountUnchanged(t *testing.T) {
	// CA boundary tiles already buffer corners, so the CA cross-node flow
	// count is the same for 5- and 9-point (only interior-local copies
	// change).
	cfg5 := Config{N: 16, TileRows: 4, P: 2, Steps: 4, StepSize: 4}
	cfg9 := cfg5
	cfg9.NinePoint = true
	g5, err := BuildGraph(CA, cfg5)
	if err != nil {
		t.Fatal(err)
	}
	g9, err := BuildGraph(CA, cfg9)
	if err != nil {
		t.Fatal(err)
	}
	c5, _ := g5.CrossNodeDeps()
	c9, _ := g9.CrossNodeDeps()
	if c5 != c9 {
		t.Errorf("CA cross deps changed: 5pt %d vs 9pt %d", c5, c9)
	}
}

func TestNinePointSimulateHigherAI(t *testing.T) {
	// Same memory traffic, 17 flops instead of 9: the 9-point run must
	// report higher GFLOP/s on the same machine (the section VII
	// arithmetic-intensity argument).
	m := machineForTest()
	cfg := Config{N: 2880, TileRows: 288, P: 2, Steps: 4, StepSize: 2}
	r5, err := Simulate(Base, cfg, SimOptions{Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	cfg.NinePoint = true
	r9, err := Simulate(Base, cfg, SimOptions{Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	if r9.GFLOPS <= r5.GFLOPS*1.5 {
		t.Errorf("9-point GFLOP/s %v should be ~17/9 of 5-point %v", r9.GFLOPS, r5.GFLOPS)
	}
}

func TestNinePointEqualGrids(t *testing.T) {
	cfg := Config{N: 20, TileRows: 5, P: 2, Steps: 6, StepSize: 3, NinePoint: true}
	b, err := RunReal(Base, cfg, runtime.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := RunReal(CA, cfg, runtime.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !grid.InteriorEqual(b.Grid, c.Grid) {
		t.Error("9-point base and CA differ")
	}
}
