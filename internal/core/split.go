package core

import (
	"fmt"

	"castencil/internal/grid"
	"castencil/internal/ptg"
	"castencil/internal/stencil"
)

// splitPass is the inner/border splitting rewrite (Eijkhout's latency-
// tolerance transformation): each (tile, iteration) compute task becomes
//
//   - one interior task (KindInner) updating the part of the tile that
//     needs no freshly arrived halo — it depends only on the tile's own
//     previous commit, so it runs while halos are still in flight;
//   - up to four edge tasks and four corner tasks (KindBorder), each a thin
//     strip gated on exactly the halo flow it reads (corners additionally
//     order after their two adjacent edges, whose unpacked ghosts they
//     read);
//   - one commit task that keeps the original task's ID, class, and Epoch:
//     it swaps the double buffer and publishes outgoing halos once every
//     part has written its piece of next.
//
// Keeping the original ID/Epoch on the commit means downstream consumers
// and the halo-bundle plan (Graph.Bundles groups cross deps by producer
// epoch) are untouched, and the original Pack closures continue to address
// the same send slots — sim==real parity on Messages/Bundles/Bytes is
// preserved by construction.
//
// Bitwise equality holds because the parts form a disjoint cover of the
// unsplit task's update rectangle and internal/stencil's row kernels
// compute each cell identically regardless of how the rectangle is
// partitioned; the interior rectangle is shrunk one layer past the halo
// extension on every side with an incoming flow, so it reads only cells
// the tile already owned from the previous iteration.
type splitPass struct{ b *builder }

func (p *splitPass) Name() string { return "split" }

func innerID(ti, tj, t int) ptg.TaskID {
	return ptg.TaskID{Class: "si", I: ti, J: tj, K: t}
}

func borderID(ti, tj, t int, d grid.Dir) ptg.TaskID {
	return ptg.TaskID{Class: "sb" + d.String(), I: ti, J: tj, K: t}
}

// cornerSides returns the two cardinal directions adjacent to a diagonal.
func cornerSides(d grid.Dir) (grid.Dir, grid.Dir) {
	switch d {
	case grid.NorthWest:
		return grid.North, grid.West
	case grid.NorthEast:
		return grid.North, grid.East
	case grid.SouthWest:
		return grid.South, grid.West
	default: // SouthEast
		return grid.South, grid.East
	}
}

// splitGeom is the region decomposition of one (tile, iteration) task.
type splitGeom struct {
	ok     bool                     // task is splittable
	update grid.Rect                // full update rect (CA trapezoid region or interior)
	inner  grid.Rect                // halo-independent interior part
	has    [grid.NumDirs]bool       // incoming halo flow from direction d
	part   [grid.NumDirs]bool       // border part d exists (edges cardinal, corners diagonal)
	rects  [grid.NumDirs]grid.Rect  // border part update rects
}

// splitGeom decomposes tile inf's iteration-t update rectangle. The
// interior is the update rect shrunk, on every side d with an incoming
// halo, by the halo's ghost extension plus one — one layer more than the
// deepest cell whose stencil reads freshly arrived ghost data — so the
// interior part depends only on cells the tile owned after iteration t-1.
// Edge strips take the shrunk-off cardinal margins at the interior's column
// span, and corners the remaining rectangles where two margins meet (a
// corner's stencil reads both adjacent cardinal halos and, when a diagonal
// flow exists, its own corner ghost block). Sides without an incoming flow
// are never shrunk: there the update rect ends at the global boundary,
// whose ghost cells are time-invariant. A task with no incoming flows
// (init, CA boundary mid-phase) or a tile too thin to hold a non-empty
// interior stays unsplit.
func (b *builder) splitGeom(inf *tileInfo, t int) splitGeom {
	var sg splitGeom
	if b.v == WF || t < 1 || t > b.epochs {
		return sg
	}
	any := false
	for _, d := range grid.AllDirs {
		p := b.neighbor(inf, d)
		if p == nil {
			continue
		}
		if _, ok := b.flow(p, d.Opposite(), t-1); ok {
			sg.has[d] = true
			any = true
		}
	}
	if !any {
		return sg
	}
	r := grid.Rect{R0: 0, C0: 0, H: inf.rows, W: inf.cols}
	if b.v == CA && inf.boundary {
		r = b.region(inf, t)
	}
	sg.update = r
	shrink := func(d grid.Dir, ext int) int {
		if sg.has[d] {
			return ext + 1
		}
		return 0
	}
	sN := shrink(grid.North, -r.R0)
	sS := shrink(grid.South, r.R0+r.H-inf.rows)
	sW := shrink(grid.West, -r.C0)
	sE := shrink(grid.East, r.C0+r.W-inf.cols)
	if r.H <= sN+sS || r.W <= sW+sE {
		return sg
	}
	in := grid.Rect{R0: r.R0 + sN, C0: r.C0 + sW, H: r.H - sN - sS, W: r.W - sW - sE}
	sg.inner = in
	set := func(d grid.Dir, rc grid.Rect) {
		if rc.H > 0 && rc.W > 0 {
			sg.part[d] = true
			sg.rects[d] = rc
		}
	}
	set(grid.North, grid.Rect{R0: r.R0, C0: in.C0, H: sN, W: in.W})
	set(grid.South, grid.Rect{R0: in.R0 + in.H, C0: in.C0, H: sS, W: in.W})
	set(grid.West, grid.Rect{R0: in.R0, C0: r.C0, H: in.H, W: sW})
	set(grid.East, grid.Rect{R0: in.R0, C0: in.C0 + in.W, H: in.H, W: sE})
	set(grid.NorthWest, grid.Rect{R0: r.R0, C0: r.C0, H: sN, W: sW})
	set(grid.NorthEast, grid.Rect{R0: r.R0, C0: in.C0 + in.W, H: sN, W: sE})
	set(grid.SouthWest, grid.Rect{R0: in.R0 + in.H, C0: r.C0, H: sS, W: sW})
	set(grid.SouthEast, grid.Rect{R0: in.R0 + in.H, C0: in.C0 + in.W, H: sS, W: sE})
	sg.ok = true
	return sg
}

// interiorOverlap counts the points of rc inside the tile's interior; the
// remainder is redundant ghost-region recompute (CA trapezoid margins).
func interiorOverlap(rc grid.Rect, inf *tileInfo) int {
	r0, c0 := rc.R0, rc.C0
	r1, c1 := rc.R0+rc.H, rc.C0+rc.W
	if r0 < 0 {
		r0 = 0
	}
	if c0 < 0 {
		c0 = 0
	}
	if r1 > inf.rows {
		r1 = inf.rows
	}
	if c1 > inf.cols {
		c1 = inf.cols
	}
	if r1 <= r0 || c1 <= c0 {
		return 0
	}
	return (r1 - r0) * (c1 - c0)
}

// recvPoints is the number of halo points arriving from direction d at
// iteration t (0 when no flow).
func (b *builder) recvPoints(inf *tileInfo, d grid.Dir, t int) int {
	p := b.neighbor(inf, d)
	if p == nil {
		return 0
	}
	depth, ok := b.flow(p, d.Opposite(), t-1)
	if !ok {
		return 0
	}
	return b.sendRect(p, d.Opposite(), depth).Size()
}

// partBody is the executable closure of a split part: unpack the one halo
// the part is gated on (if any), then apply the stencil to the part's
// rectangle. Same row kernels, same cells, same order as the unsplit task.
func (b *builder) partBody(inf *tileInfo, t int, rect grid.Rect, d grid.Dir, consume bool) func(ptg.Env) {
	w := b.cfg.Weights
	w9 := b.cfg.Weights9
	nine := b.cfg.NinePoint
	return func(e ptg.Env) {
		st := b.state(e, inf)
		if consume {
			b.consumeDir(e, st, inf, d, t)
		}
		if nine {
			stencil.Apply9(w9, st.next, st.cur, rect)
		} else {
			stencil.Apply(w, st.next, st.cur, rect)
		}
	}
}

// commitBody finishes a split iteration: swap the double buffer and publish
// outgoing halos, exactly as the tail of the unsplit compute body.
func (b *builder) commitBody(inf *tileInfo, t int) func(ptg.Env) {
	return func(e ptg.Env) {
		st := b.state(e, inf)
		st.cur, st.next = st.next, st.cur
		b.produce(e, st, inf, t)
	}
}

// Apply rewrites the stencil graph with inner/border splitting. Unsplit
// tasks (init, CA boundary mid-phase steps, degenerate thin tiles) are
// copied verbatim — bodies, hints, and dependency closures included.
func (p *splitPass) Apply(g *ptg.Graph) (*ptg.Graph, error) {
	b := p.b
	nb := ptg.NewBuilder(g.NumNodes)
	nb.PresetSlots(g.NodeSlots, g.NodeBufSlots)
	geoms := make([][][]splitGeom, b.part.TR)
	// Pass 1: tasks. Split hints partition the original exactly: the
	// interior and border Updates/RedundantUpdates sum to the unsplit
	// task's, incoming CopyPoints land on the border task that unpacks
	// them, outgoing CopyPoints on the commit that packs them — so both
	// engines price the split graph with the same machine model, plus one
	// honest per-part task overhead.
	for ti := 0; ti < b.part.TR; ti++ {
		geoms[ti] = make([][]splitGeom, b.part.TC)
		for tj := 0; tj < b.part.TC; tj++ {
			inf := b.info[ti][tj]
			geoms[ti][tj] = make([]splitGeom, b.epochs+1)
			for t := 0; t <= b.epochs; t++ {
				idx, ok := g.Lookup(taskID(ti, tj, t))
				if !ok {
					return nil, fmt.Errorf("split: missing task %v", taskID(ti, tj, t))
				}
				orig := g.Tasks[idx]
				sg := b.splitGeom(inf, t)
				geoms[ti][tj][t] = sg
				if !sg.ok {
					if _, err := nb.AddTask(orig); err != nil {
						return nil, err
					}
					continue
				}
				withBodies := orig.Run != nil
				// Interior: fills the steal deques at base priority while
				// border tasks (p0+1) drain first to unblock neighbors.
				it := ptg.Task{
					ID: innerID(ti, tj, t), Node: orig.Node, Kind: ptg.KindInner,
					Priority: orig.Priority, Epoch: orig.Epoch,
					Hint: ptg.CostHint{
						Rows: sg.inner.H, Cols: sg.inner.W,
						Updates: sg.inner.Size(),
					},
				}
				if withBodies {
					it.Run = b.partBody(inf, t, sg.inner, 0, false)
				}
				if _, err := nb.AddTask(it); err != nil {
					return nil, err
				}
				for _, d := range grid.AllDirs {
					if !sg.part[d] {
						continue
					}
					rc := sg.rects[d]
					own := interiorOverlap(rc, inf)
					bt := ptg.Task{
						ID: borderID(ti, tj, t, d), Node: orig.Node, Kind: ptg.KindBorder,
						Priority: orig.Priority + 1, Epoch: orig.Epoch,
						Hint: ptg.CostHint{
							Rows: rc.H, Cols: rc.W,
							Updates:          own,
							RedundantUpdates: rc.Size() - own,
						},
					}
					if sg.has[d] {
						bt.Hint.CopyPoints = b.recvPoints(inf, d, t)
					}
					if withBodies {
						bt.Run = b.partBody(inf, t, rc, d, sg.has[d])
					}
					if _, err := nb.AddTask(bt); err != nil {
						return nil, err
					}
				}
				ct := orig
				ct.Priority = orig.Priority + 1
				// The commit task only merges partial buffers; its Run is not
				// the original kernel, so the migration hooks don't apply.
				ct.Mig = nil
				ct.Hint = ptg.CostHint{Rows: inf.rows, Cols: inf.cols}
				for _, d := range grid.AllDirs {
					if depth, ok := b.flow(inf, d, t); ok {
						ct.Hint.CopyPoints += b.sendRect(inf, d, depth).Size()
					}
				}
				if withBodies {
					ct.Run = b.commitBody(inf, t)
				}
				if _, err := nb.AddTask(ct); err != nil {
					return nil, err
				}
			}
		}
	}
	// Pass 2: dependencies.
	for ti := 0; ti < b.part.TR; ti++ {
		for tj := 0; tj < b.part.TC; tj++ {
			inf := b.info[ti][tj]
			for t := 0; t <= b.epochs; t++ {
				idx, _ := g.Lookup(taskID(ti, tj, t))
				orig := &g.Tasks[idx]
				sg := &geoms[ti][tj][t]
				if !sg.ok {
					// Replay the original dependencies verbatim; producer
					// IDs are unchanged whether or not the producer was
					// split (its commit keeps the ID).
					for _, dp := range orig.Deps {
						if err := nb.AddDep(orig.ID, g.Tasks[dp.Producer].ID, dp); err != nil {
							return nil, err
						}
					}
					continue
				}
				prev := taskID(ti, tj, t-1)
				commit := orig.ID
				if err := nb.AddDep(innerID(ti, tj, t), prev, ptg.Dep{}); err != nil {
					return nil, err
				}
				if err := nb.AddDep(commit, innerID(ti, tj, t), ptg.Dep{}); err != nil {
					return nil, err
				}
				for _, d := range grid.AllDirs {
					if !sg.part[d] {
						continue
					}
					bid := borderID(ti, tj, t, d)
					if d.Cardinal() {
						// Edge: previous commit (double buffer) plus the
						// original halo flow from direction d, reattached
						// with its Bytes and Pack/Unpack closures intact.
						if err := nb.AddDep(bid, prev, ptg.Dep{}); err != nil {
							return nil, err
						}
					} else {
						// Corner: order after the two adjacent edges whose
						// unpacked ghosts its stencil reads (the previous
						// commit is implied transitively).
						ca, cb := cornerSides(d)
						if err := nb.AddDep(bid, borderID(ti, tj, t, ca), ptg.Dep{}); err != nil {
							return nil, err
						}
						if err := nb.AddDep(bid, borderID(ti, tj, t, cb), ptg.Dep{}); err != nil {
							return nil, err
						}
					}
					if sg.has[d] {
						nb1 := b.neighbor(inf, d)
						pid := taskID(nb1.ti, nb1.tj, t-1)
						dp, err := findFlowDep(g, orig, pid)
						if err != nil {
							return nil, err
						}
						if err := nb.AddDep(bid, pid, dp); err != nil {
							return nil, err
						}
					}
					if err := nb.AddDep(commit, bid, ptg.Dep{}); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return nb.Build()
}

// findFlowDep locates orig's dependency whose producer is pid; each
// (consumer, producer) tile pair carries exactly one flow per iteration.
func findFlowDep(g *ptg.Graph, orig *ptg.Task, pid ptg.TaskID) (ptg.Dep, error) {
	for _, dp := range orig.Deps {
		if g.Tasks[dp.Producer].ID == pid {
			return dp, nil
		}
	}
	return ptg.Dep{}, fmt.Errorf("split: task %v has no dependency on %v", orig.ID, pid)
}
