package machine

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBuiltinValidate(t *testing.T) {
	for _, m := range Builtin() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestTableIValues(t *testing.T) {
	// The STREAM numbers are the paper's Table I verbatim.
	n := NaCL()
	if n.StreamCore.Copy != 9814.2 || n.StreamNode.Copy != 40091.3 {
		t.Errorf("NaCL COPY mismatch: core=%v node=%v", n.StreamCore.Copy, n.StreamNode.Copy)
	}
	if n.StreamNode.Triad != 28547.2 {
		t.Errorf("NaCL node TRIAD = %v, want 28547.2", n.StreamNode.Triad)
	}
	s := Stampede2()
	if s.StreamCore.Add != 13427.1 || s.StreamNode.Add != 192560.3 {
		t.Errorf("Stampede2 ADD mismatch: core=%v node=%v", s.StreamCore.Add, s.StreamNode.Add)
	}
}

func TestComputeCores(t *testing.T) {
	if got := NaCL().ComputeCores(); got != 11 {
		t.Errorf("NaCL compute cores = %d, want 11", got)
	}
	if got := Stampede2().ComputeCores(); got != 47 {
		t.Errorf("Stampede2 compute cores = %d, want 47", got)
	}
	one := &Model{Name: "tiny", Nodes: 1, CoresPerNode: 1}
	if got := one.ComputeCores(); got != 1 {
		t.Errorf("single-core model compute cores = %d, want 1", got)
	}
}

func TestAchievedNodeBandwidth(t *testing.T) {
	// Paper: "achieved bandwidth NaCL and Stampede2 were 39.1 GB/s and
	// 172.5 GB/s" (GB = 2^30 there; we keep the MB/s table and check the
	// decimal conversion is in the right ballpark).
	if bw := NaCL().StreamNode.BytesPerSec(); math.Abs(bw-40.0913e9) > 1e6 {
		t.Errorf("NaCL node bandwidth = %v B/s", bw)
	}
	if bw := Stampede2().StreamNode.BytesPerSec(); math.Abs(bw-176.7011e9) > 1e6 {
		t.Errorf("Stampede2 node bandwidth = %v B/s", bw)
	}
}

func TestNetworkAsymptote(t *testing.T) {
	for _, m := range Builtin() {
		big := 64 << 20
		bw := m.Net.EffectiveBandwidth(big) * 8 / 1e9 // Gb/s
		if bw > m.Net.AsymptoteGbps {
			t.Errorf("%s: effective bandwidth %v exceeds asymptote %v", m.Name, bw, m.Net.AsymptoteGbps)
		}
		if bw < 0.99*m.Net.AsymptoteGbps {
			t.Errorf("%s: large-message bandwidth %v should approach asymptote %v", m.Name, bw, m.Net.AsymptoteGbps)
		}
	}
}

func TestNetworkFig5Shape(t *testing.T) {
	// Figure 5: small messages achieve a small fraction of peak; 1MB+
	// messages reach roughly 70-86%% of theoretical peak.
	for _, m := range Builtin() {
		small := m.Net.PercentOfPeak(256)
		large := m.Net.PercentOfPeak(4 << 20)
		if small > 25 {
			t.Errorf("%s: 256B messages at %.1f%% of peak, want small (<25%%)", m.Name, small)
		}
		if large < 60 || large > 95 {
			t.Errorf("%s: 4MB messages at %.1f%% of peak, want 60-95%%", m.Name, large)
		}
		if small >= large {
			t.Errorf("%s: efficiency must grow with message size (%.1f%% -> %.1f%%)", m.Name, small, large)
		}
	}
}

func TestTransferTimeLatencyFloor(t *testing.T) {
	n := NaCL().Net
	if got := n.TransferTime(0); got != n.Latency {
		t.Errorf("zero-byte transfer = %v, want latency %v", got, n.Latency)
	}
	if got := n.TransferTime(8); got <= n.Latency {
		t.Errorf("8-byte transfer %v must exceed latency %v", got, n.Latency)
	}
}

func TestTransferTimeMonotonic(t *testing.T) {
	// Property: transfer time is non-decreasing in message size, and
	// effective bandwidth is non-decreasing in message size.
	net := Stampede2().Net
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return net.TransferTime(x) <= net.TransferTime(y) &&
			net.EffectiveBandwidth(x) <= net.EffectiveBandwidth(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"NaCL", "nacl", "Stampede2", "stampede2"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("summit"); err == nil {
		t.Error("ByName(summit) should fail")
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	good := NaCL()
	cases := []func(m *Model){
		func(m *Model) { m.Name = "" },
		func(m *Model) { m.Nodes = 0 },
		func(m *Model) { m.CoresPerNode = 0 },
		func(m *Model) { m.StreamNode.Copy = 0 },
		func(m *Model) { m.Net.AsymptoteGbps = 0 },
		func(m *Model) { m.Net.Latency = 0 },
		func(m *Model) { m.Kern.BytesPerUpdate = 0 },
	}
	for i, mutate := range cases {
		m := *good
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: mutated model should not validate", i)
		}
	}
}

func TestPerCoreBandwidth(t *testing.T) {
	m := NaCL()
	want := m.StreamNode.BytesPerSec() / 11
	if got := m.PerCoreBandwidth(); math.Abs(got-want) > 1 {
		t.Errorf("per-core bandwidth = %v, want %v", got, want)
	}
}

func TestLatencyIsMicrosecond(t *testing.T) {
	// The paper: "The latency of the network is around 1 microseconds."
	for _, m := range Builtin() {
		if m.Net.Latency != time.Microsecond {
			t.Errorf("%s latency = %v, want 1us", m.Name, m.Net.Latency)
		}
	}
}
