// Package machine defines calibrated models of the two clusters evaluated in
// the paper (NaCL and Stampede2) plus helpers to build custom models.
//
// A Model carries everything the cost engines need: core counts, the STREAM
// memory-bandwidth table (Table I of the paper), the network parameters that
// generate the NetPIPE curve (Figure 5), and the kernel calibration constants
// discussed in DESIGN.md. Absolute numbers come straight from the paper;
// where the paper gives only a plot, the constants are calibrated so the
// regenerated figure matches the published shape.
package machine

import (
	"fmt"
	"time"
)

// StreamResult holds the four STREAM kernels' sustained bandwidth in MB/s,
// exactly as reported in Table I of the paper.
type StreamResult struct {
	Copy  float64 // a[i] = b[i]
	Scale float64 // a[i] = q*b[i]
	Add   float64 // a[i] = b[i] + c[i]
	Triad float64 // a[i] = b[i] + q*c[i]
}

// BytesPerSec converts the COPY figure (the paper uses COPY as "achieved
// memory bandwidth") from MB/s to bytes per second.
func (s StreamResult) BytesPerSec() float64 { return s.Copy * 1e6 }

// Network describes the latency/bandwidth behaviour of the interconnect.
// Effective bandwidth follows the classic half-performance ramp
//
//	B(m) = Asymptote * m / (m + HalfSize)
//
// which reproduces the NetPIPE curve of Figure 5: ~20% of theoretical peak
// for small messages rising towards Asymptote for megabyte messages.
type Network struct {
	// PeakGbps is the theoretical link rate (32 Gb/s IB QDR on NaCL,
	// 100 Gb/s Omni-Path on Stampede2); used only for "% of peak" axes.
	PeakGbps float64
	// AsymptoteGbps is the effective peak the paper measured with NetPIPE
	// (27 Gb/s on NaCL, 86 Gb/s on Stampede2).
	AsymptoteGbps float64
	// HalfSize is the message size (bytes) at which half the asymptotic
	// bandwidth is achieved.
	HalfSize float64
	// Latency is the one-way small-message latency (~1us on both systems).
	Latency time.Duration
	// MsgOverhead is the CPU time the communication thread spends per
	// message on each side (matching, active-message handling, MPI
	// bookkeeping) in addition to serialization. This per-message cost —
	// not the wire — is the bottleneck the CA scheme's aggregation
	// relieves: s one-layer messages cost s overheads, one s-layer
	// message costs one.
	MsgOverhead time.Duration
}

// EffectiveBandwidth returns the achievable bandwidth in bytes/second for a
// message of the given size in bytes.
func (n Network) EffectiveBandwidth(msgBytes int) float64 {
	if msgBytes <= 0 {
		return 0
	}
	m := float64(msgBytes)
	gbps := n.AsymptoteGbps * m / (m + n.HalfSize)
	return gbps * 1e9 / 8 // Gb/s -> B/s
}

// TransferTime returns the modeled one-way time for a message of the given
// size: latency plus serialization at the effective bandwidth.
func (n Network) TransferTime(msgBytes int) time.Duration {
	if msgBytes <= 0 {
		return n.Latency
	}
	ser := float64(msgBytes) / n.EffectiveBandwidth(msgBytes)
	return n.Latency + time.Duration(ser*float64(time.Second))
}

// MigrationTime returns the modeled round-trip cost of migrating a task to
// another rank: shipping its input state over plus its results back. The
// gated steal policy compares this against the thief's expected local wait.
func (n Network) MigrationTime(inBytes, outBytes int) time.Duration {
	return n.TransferTime(inBytes) + n.TransferTime(outBytes)
}

// PercentOfPeak returns the NetPIPE-style efficiency for a message size:
// achieved bandwidth (including the latency term) over theoretical peak,
// in percent. This is the y-axis of Figure 5.
func (n Network) PercentOfPeak(msgBytes int) float64 {
	t := n.TransferTime(msgBytes).Seconds()
	if t <= 0 {
		return 0
	}
	achieved := float64(msgBytes) / t // B/s
	peak := n.PeakGbps * 1e9 / 8
	return 100 * achieved / peak
}

// Kernel holds the calibration constants of the stencil kernel cost model
// (see internal/memmodel). They encode the gap the paper observed between
// the roofline bound and the actually-achieved unoptimized kernel.
type Kernel struct {
	// BytesPerUpdate is the effective memory traffic per grid-point update
	// of the unoptimized 5-point kernel. The roofline ideal is 16-24 B;
	// the calibrated values (~32-36 B) land the single-node plateau at the
	// paper's 11 / 43.5 GFLOP/s.
	BytesPerUpdate float64
	// CacheBytesPerCore is the per-core share of last-level cache. Tiles
	// whose working set exceeds it pay CachePenaltyBytes extra traffic per
	// update, producing the large-tile falloff in Figure 6.
	CacheBytesPerCore float64
	// CachePenaltyBytes is the additional per-update traffic once a tile
	// falls out of cache.
	CachePenaltyBytes float64
	// TaskOverhead is the fixed runtime cost per task (scheduling, dep
	// resolution); it produces the small-tile falloff in Figure 6.
	TaskOverhead time.Duration
	// CopyBytesPerGhostPoint models the halo pack/unpack traffic per ghost
	// point (read + write). CA tasks copy deeper halos, which is why the
	// paper's Fig. 10 reports a higher median kernel time for CA.
	CopyBytesPerGhostPoint float64
}

// Model is a complete machine description used by the cost engines.
type Model struct {
	Name string
	// Nodes is the cluster size available for experiments.
	Nodes int
	// CoresPerNode is the total core count; the task runtime dedicates one
	// core per node to communication (the paper's PaRSEC configuration).
	CoresPerNode int
	// StreamCore and StreamNode are Table I: single-core and full-node
	// STREAM results.
	StreamCore StreamResult
	StreamNode StreamResult
	Net        Network
	Kern       Kernel
}

// ComputeCores returns the number of worker cores per node once one core is
// dedicated to communication.
func (m *Model) ComputeCores() int {
	if m.CoresPerNode <= 1 {
		return 1
	}
	return m.CoresPerNode - 1
}

// PerCoreBandwidth returns the memory bandwidth (B/s) available to each
// compute core when all of them stream concurrently: the node STREAM COPY
// figure divided over the compute cores.
func (m *Model) PerCoreBandwidth() float64 {
	return m.StreamNode.BytesPerSec() / float64(m.ComputeCores())
}

func (m *Model) String() string {
	return fmt.Sprintf("%s: %d nodes x %d cores, %.1f GB/s node STREAM, %g Gb/s net",
		m.Name, m.Nodes, m.CoresPerNode, m.StreamNode.BytesPerSec()/1e9, m.Net.AsymptoteGbps)
}

// Validate reports whether the model is internally consistent.
func (m *Model) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("machine: model needs a name")
	case m.Nodes < 1:
		return fmt.Errorf("machine %s: Nodes must be >= 1, got %d", m.Name, m.Nodes)
	case m.CoresPerNode < 1:
		return fmt.Errorf("machine %s: CoresPerNode must be >= 1, got %d", m.Name, m.CoresPerNode)
	case m.StreamNode.Copy <= 0 || m.StreamCore.Copy <= 0:
		return fmt.Errorf("machine %s: STREAM COPY must be positive", m.Name)
	case m.Net.AsymptoteGbps <= 0 || m.Net.PeakGbps <= 0:
		return fmt.Errorf("machine %s: network bandwidth must be positive", m.Name)
	case m.Net.Latency <= 0:
		return fmt.Errorf("machine %s: network latency must be positive", m.Name)
	case m.Kern.BytesPerUpdate <= 0:
		return fmt.Errorf("machine %s: BytesPerUpdate must be positive", m.Name)
	}
	return nil
}

// NaCL returns the model of the paper's in-house cluster: 64 nodes, two
// 6-core Intel Xeon X5660 (Westmere) sockets, 23 GB RAM, InfiniBand QDR
// (32 Gb/s peak, ~27 Gb/s effective, ~1us latency). STREAM values are
// Table I verbatim.
func NaCL() *Model {
	return &Model{
		Name:         "NaCL",
		Nodes:        64,
		CoresPerNode: 12,
		StreamCore:   StreamResult{Copy: 9814.2, Scale: 10080.3, Add: 10289.3, Triad: 10271.6},
		StreamNode:   StreamResult{Copy: 40091.3, Scale: 26335.8, Add: 28992.0, Triad: 28547.2},
		Net: Network{
			PeakGbps:      32,
			AsymptoteGbps: 27,
			HalfSize:      16 << 10,
			Latency:       time.Microsecond,
			MsgOverhead:   16 * time.Microsecond,
		},
		Kern: Kernel{
			// Calibrated: 11 compute cores at 40.09 GB/s node bandwidth
			// reach the paper's ~11 GFLOP/s plateau when each 9-flop
			// update moves ~33 bytes.
			BytesPerUpdate: 33,
			// Westmere: 12 MB L3 per 6-core socket => 2 MB/core share;
			// the Fig. 6 falloff starts past tile ~300 (2*300^2*8=1.44MB).
			CacheBytesPerCore:      2 << 20,
			CachePenaltyBytes:      10,
			TaskOverhead:           25 * time.Microsecond,
			CopyBytesPerGhostPoint: 32,
		},
	}
}

// Stampede2 returns the model of the TACC Stampede2 SKX partition used in
// the paper: two 24-core Intel Xeon Platinum 8160 sockets per node, 192 GB
// RAM, 100 Gb/s Omni-Path (~86 Gb/s effective). STREAM values are Table I.
func Stampede2() *Model {
	return &Model{
		Name:         "Stampede2",
		Nodes:        64,
		CoresPerNode: 48,
		StreamCore:   StreamResult{Copy: 10632.6, Scale: 10772.0, Add: 13427.1, Triad: 13440.0},
		StreamNode:   StreamResult{Copy: 176701.1, Scale: 178718.7, Add: 192560.3, Triad: 193216.3},
		Net: Network{
			PeakGbps:      100,
			AsymptoteGbps: 86,
			HalfSize:      32 << 10,
			Latency:       time.Microsecond,
			MsgOverhead:   10 * time.Microsecond,
		},
		Kern: Kernel{
			// 47 compute cores at 176.7 GB/s reach ~43.5 GFLOP/s when an
			// update moves ~36 bytes.
			BytesPerUpdate: 36,
			// SKX streams well from DRAM; the Fig. 6 optimum extends to
			// tile ~2000, so the residency threshold is much larger
			// (effective per-core share incl. MCDRAM-less DDR streaming).
			CacheBytesPerCore:      70 << 20,
			CachePenaltyBytes:      10,
			TaskOverhead:           25 * time.Microsecond,
			CopyBytesPerGhostPoint: 32,
		},
	}
}

// ByName returns a built-in model by (case-sensitive) name.
func ByName(name string) (*Model, error) {
	switch name {
	case "NaCL", "nacl":
		return NaCL(), nil
	case "Stampede2", "stampede2":
		return Stampede2(), nil
	}
	return nil, fmt.Errorf("machine: unknown model %q (want NaCL or Stampede2)", name)
}

// Builtin lists the built-in machine models.
func Builtin() []*Model { return []*Model{NaCL(), Stampede2()} }
