// Package server is the stencil-as-a-service layer: a job manager over the
// castencil.Run/Sim facade with a bounded admission queue (explicit
// backpressure instead of hangs), priority classes, a concurrency-limited
// executor pool that shares the host's worker budget across jobs, per-job
// lifecycle state machines with deadlines and cancellation (context
// threading through both engines), streaming progress, live metrics, and a
// graceful drain for daemon shutdown. cmd/stencild fronts it with HTTP
// (http.go).
package server

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	castencil "castencil"
)

// State is a job's lifecycle position. The machine is strictly
//
//	queued -> running -> done | failed | cancelled
//	queued -> cancelled            (cancelled before an executor picked it up)
//
// and terminal states never transition again.
type State string

// Lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Priority is a job's admission class: within the queue, all high jobs
// dispatch before any normal job, which dispatch before any low job; FIFO
// within a class.
type Priority int

// Priority classes, best first.
const (
	PriorityHigh Priority = iota
	PriorityNormal
	PriorityLow
	numPriorities
)

func (p Priority) String() string {
	switch p {
	case PriorityHigh:
		return "high"
	case PriorityLow:
		return "low"
	default:
		return "normal"
	}
}

// ParsePriority maps a submit-body spelling to a class ("" = normal).
func ParsePriority(s string) (Priority, error) {
	switch strings.ToLower(s) {
	case "", "normal":
		return PriorityNormal, nil
	case "high":
		return PriorityHigh, nil
	case "low":
		return PriorityLow, nil
	}
	return PriorityNormal, fmt.Errorf("server: unknown priority %q (high, normal, low)", s)
}

// Spec is one job request — the JSON submit body. Fields map onto the
// facade's Config and functional options; string-typed knobs go through
// the same canonical parsers the command-line flags use, so every spelling
// a flag accepts the daemon accepts too.
type Spec struct {
	// Engine selects the execution engine: "real" (castencil.Run, exact
	// numerics; the default) or "sim" (castencil.Sim, virtual time).
	Engine string `json:"engine,omitempty"`
	// Variant is "base", "ca" or "wf" (default "ca"). Ignored when Plan
	// is "auto".
	Variant string `json:"variant,omitempty"`
	// Plan, when "auto", runs the AutoPlan kernel-family planner against
	// the machine model first and executes the recommended configuration
	// (base, CA with the winning step size, or WF with the winning
	// wavefront width) — the paper's section-VII "transparent CA" as a
	// per-request decision.
	Plan string `json:"plan,omitempty"`

	N        int `json:"n"`
	Tile     int `json:"tile"`
	Nodes    int `json:"nodes,omitempty"` // perfect square, default 1
	Steps    int `json:"steps"`
	StepSize int `json:"step_size,omitempty"`
	// Wavefront is the WF variant's block width (0 = library default).
	Wavefront int `json:"wavefront,omitempty"`
	// Seed selects the deterministic initial condition (HashInit); 0 means
	// the library default (seed 1). Two jobs with equal geometry and seed
	// produce bitwise-identical grids, whatever else runs concurrently.
	Seed uint64 `json:"seed,omitempty"`

	// Workers is the per-node worker count for real jobs; 0 lets the
	// manager divide its worker budget across concurrent jobs.
	Workers  int     `json:"workers,omitempty"`
	Sched    string  `json:"sched,omitempty"`
	Coalesce string  `json:"coalesce,omitempty"`
	// Transform selects a graph-transformation pass ("none" or "split":
	// inner/border task splitting for communication–computation overlap).
	// Rejected at admission for the wf variant and for plan=auto (the
	// planner may pick wf).
	Transform string `json:"transform,omitempty"`
	Fault     string `json:"fault,omitempty"`
	Machine  string  `json:"machine,omitempty"` // sim + plan=auto; default NaCL
	Ratio    float64 `json:"ratio,omitempty"`

	// Ranks marks the job distributed: it runs across this many stencild
	// processes over the daemon's -ranks mesh (rank 0 broadcasts the spec,
	// every follower executes it with the shared transport). Must equal the
	// mesh size, needs the real engine, and is only accepted by rank 0.
	// 0 (the default) runs single-process.
	Ranks int `json:"ranks,omitempty"`
	// Steal selects the inter-node work-stealing policy of a distributed
	// job: "off" (default), "greedy", or "gated". Validated at admission
	// with the same parser the -steal flag uses; anything but off needs
	// Ranks. The broadcast spec carries the raw string, so every rank
	// resolves the identical policy.
	Steal string `json:"steal,omitempty"`

	Priority string `json:"priority,omitempty"`
	// TimeoutMS is the job's run deadline in milliseconds (0 = the
	// manager's default). A job past its deadline stops promptly and
	// reports failed with a deadline error.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Tenant names the submitting tenant for the fleet gateway's weighted
	// fair-share admission (stencilgate); "" is the default tenant. The
	// daemon itself validates and carries it but applies no policy.
	Tenant string `json:"tenant,omitempty"`
	// Cache controls the fleet gateway's content-addressed result cache
	// for this job: "" (cacheable, the default) or "bypass" (force
	// re-execution). The daemon itself runs every admitted job regardless.
	Cache string `json:"cache,omitempty"`
}

// buildSpec is a Spec resolved through the canonical parsers: everything a
// job run needs, validated at admission so a bad request is rejected
// before it ever queues.
type buildSpec struct {
	engine   string // "real" or "sim"
	variant  castencil.Variant
	planAuto bool
	cfg      castencil.Config
	prio     Priority
	timeout  time.Duration
	workers  int
	sched    castencil.Sched
	policy   castencil.Policy
	schedSet bool
	coalesce castencil.CoalesceMode
	fault    *castencil.FaultPlan
	machine  *castencil.Machine
	ratio    float64
	ranks    int
	steal    castencil.StealMode
}

// build validates the spec and resolves every string knob through the same
// parser its command-line flag uses.
func (s Spec) build() (*buildSpec, error) {
	b := &buildSpec{engine: strings.ToLower(s.Engine), ratio: s.Ratio}
	switch b.engine {
	case "", "real", "run":
		b.engine = "real"
	case "sim":
		b.engine = "sim"
	default:
		return nil, fmt.Errorf("server: unknown engine %q (real, sim)", s.Engine)
	}
	switch strings.ToLower(s.Variant) {
	case "", "ca":
		b.variant = castencil.CA
	case "base":
		b.variant = castencil.Base
	case "wf":
		b.variant = castencil.WF
	default:
		return nil, fmt.Errorf("server: unknown variant %q (base, ca, wf)", s.Variant)
	}
	switch strings.ToLower(s.Plan) {
	case "":
	case "auto":
		b.planAuto = true
	default:
		return nil, fmt.Errorf("server: unknown plan %q (only \"auto\")", s.Plan)
	}
	if s.N <= 0 || s.Tile <= 0 || s.Steps <= 0 {
		return nil, fmt.Errorf("server: n, tile and steps must be positive (got n=%d tile=%d steps=%d)", s.N, s.Tile, s.Steps)
	}
	nodes := s.Nodes
	if nodes == 0 {
		nodes = 1
	}
	p := 1
	for p*p < nodes {
		p++
	}
	if p*p != nodes {
		return nil, fmt.Errorf("server: nodes = %d is not a perfect square", nodes)
	}
	b.cfg = castencil.Config{N: s.N, TileRows: s.Tile, P: p, Steps: s.Steps, StepSize: s.StepSize, Wavefront: s.Wavefront}
	if s.Seed != 0 {
		b.cfg.Init = castencil.HashInit(s.Seed)
	}
	var err error
	if b.prio, err = ParsePriority(s.Priority); err != nil {
		return nil, err
	}
	if s.TimeoutMS < 0 {
		return nil, fmt.Errorf("server: timeout_ms must be >= 0")
	}
	b.timeout = time.Duration(s.TimeoutMS) * time.Millisecond
	if s.Workers < 0 {
		return nil, fmt.Errorf("server: workers must be >= 0")
	}
	b.workers = s.Workers
	if s.Sched != "" {
		if b.sched, b.policy, err = castencil.ParseSched(s.Sched); err != nil {
			return nil, err
		}
		b.schedSet = true
	}
	if s.Coalesce != "" {
		if b.coalesce, err = castencil.ParseCoalesce(s.Coalesce); err != nil {
			return nil, err
		}
	}
	if s.Transform != "" {
		tm, err := castencil.ParseTransform(s.Transform)
		if err != nil {
			return nil, err
		}
		if tm != castencil.TransformNone {
			if b.variant == castencil.WF {
				return nil, fmt.Errorf("server: spec rejected: transform %q is not supported with the wf variant", s.Transform)
			}
			if b.planAuto {
				return nil, fmt.Errorf("server: spec rejected: transform %q cannot combine with plan=auto (the planner may pick wf)", s.Transform)
			}
		}
		b.cfg.Transform = tm
	}
	if b.fault, err = castencil.ParseFaultPlan(s.Fault); err != nil {
		return nil, err
	}
	if s.Ranks < 0 {
		return nil, fmt.Errorf("server: ranks must be >= 0, got %d", s.Ranks)
	}
	if s.Ranks > 0 {
		if s.Ranks < 2 {
			return nil, fmt.Errorf("server: a distributed job needs ranks >= 2, got %d", s.Ranks)
		}
		if b.engine != "real" {
			return nil, fmt.Errorf("server: distributed jobs (ranks=%d) need the real engine, not %q", s.Ranks, b.engine)
		}
		if s.Ranks > nodes {
			return nil, fmt.Errorf("server: ranks=%d exceeds the job's %d virtual nodes", s.Ranks, nodes)
		}
	}
	b.ranks = s.Ranks
	if b.steal, err = castencil.ParseSteal(s.Steal); err != nil {
		return nil, err
	}
	if b.steal != castencil.StealOff && s.Ranks == 0 {
		return nil, fmt.Errorf("server: steal=%q needs a distributed job (ranks >= 2)", s.Steal)
	}
	switch strings.ToLower(s.Cache) {
	case "", "default", CacheBypass:
	default:
		return nil, fmt.Errorf("server: unknown cache mode %q (\"\" or %q)", s.Cache, CacheBypass)
	}
	if len(s.Tenant) > 128 {
		return nil, fmt.Errorf("server: tenant name exceeds 128 bytes")
	}
	machineName := s.Machine
	if machineName == "" {
		machineName = "NaCL"
	}
	if b.machine, err = castencil.MachineByName(machineName); err != nil {
		return nil, err
	}
	// Validate the geometry eagerly so admission errors beat queue time:
	// the partition must exist, and a deep-halo request's parameter (CA
	// step size, WF width) may not exceed the smallest tile dimension (the
	// core's own rule — checking it here turns a would-be run failure into
	// an immediate 400).
	part, err := b.cfg.Partition()
	if err != nil {
		return nil, fmt.Errorf("server: spec rejected: %w", err)
	}
	if b.variant == castencil.CA && !b.planAuto && s.StepSize > 0 {
		if minDim := part.MinTileDim(); s.StepSize > minDim {
			return nil, fmt.Errorf("server: spec rejected: CA step_size %d exceeds smallest tile dimension %d", s.StepSize, minDim)
		}
	}
	if b.variant == castencil.WF && !b.planAuto && s.Wavefront > 0 {
		if minDim := part.MinTileDim(); s.Wavefront > minDim {
			return nil, fmt.Errorf("server: spec rejected: WF wavefront %d exceeds smallest tile dimension %d", s.Wavefront, minDim)
		}
	}
	return b, nil
}

// Job is one unit of service work: a Spec moving through the lifecycle
// state machine under the manager's executor pool.
type Job struct {
	// ID is the manager-assigned identifier ("job-000001", monotone).
	ID string
	// Spec is the request as submitted.
	Spec Spec

	build *buildSpec

	mu        sync.Mutex
	state     State
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancelReq bool
	cancelFn  func() // cancels the running job's context (nil until running)
	real      *castencil.RealResult
	sim       *castencil.SimResult
	plan      *castencil.Plan

	// done closes when the job reaches a terminal state.
	done chan struct{}

	progDone  atomic.Int64
	progTotal atomic.Int64
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the terminal error of a failed job (nil otherwise).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// RealResult returns the exact-execution result of a done real job.
func (j *Job) RealResult() *castencil.RealResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.real
}

// SimResult returns the virtual-time result of a done sim job.
func (j *Job) SimResult() *castencil.SimResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sim
}

// Plan returns the AutoPlan outcome of a plan=auto job (nil otherwise or
// before planning ran).
func (j *Job) Plan() *castencil.Plan {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.plan
}

// View is a JSON-ready snapshot of a job, served by the status endpoints
// and the progress stream.
type View struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	Priority string `json:"priority"`
	Engine   string `json:"engine"`
	Error    string `json:"error,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	// TasksDone/TasksTotal are the live progress counters streamed from
	// the engine; Progress is their ratio in [0,1].
	TasksDone  int64   `json:"tasks_done"`
	TasksTotal int64   `json:"tasks_total"`
	Progress   float64 `json:"progress"`

	// Plan reports the AutoPlan decision of a plan=auto job: the chosen
	// kernel family ("base", "ca", "wf"), its parameter (step size for CA,
	// wavefront width for WF) and its predicted GFLOP/s. PlanStepSize is
	// the legacy two-way field (0 = not CA).
	PlanStepSize *int     `json:"plan_step_size,omitempty"`
	PlanGFLOPS   *float64 `json:"plan_gflops,omitempty"`
	PlanFamily   *string  `json:"plan_family,omitempty"`
	PlanWidth    *int     `json:"plan_width,omitempty"`
}

// Snapshot captures the job's current state for serialization.
func (j *Job) Snapshot() View {
	j.mu.Lock()
	v := View{
		ID:          j.ID,
		State:       j.state,
		Priority:    j.build.prio.String(),
		Engine:      j.build.engine,
		SubmittedAt: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if j.plan != nil {
		s, g := j.plan.BestStepSize, j.plan.BestGFLOPS
		fam, w := j.plan.BestFamily.String(), j.plan.BestWidth
		v.PlanStepSize, v.PlanGFLOPS = &s, &g
		v.PlanFamily, v.PlanWidth = &fam, &w
	}
	j.mu.Unlock()
	v.TasksDone = j.progDone.Load()
	v.TasksTotal = j.progTotal.Load()
	if v.State == StateDone {
		// The engines throttle progress callbacks; a finished job is by
		// definition fully progressed.
		v.TasksDone = v.TasksTotal
	}
	if v.TasksTotal > 0 {
		v.Progress = float64(v.TasksDone) / float64(v.TasksTotal)
	}
	return v
}
