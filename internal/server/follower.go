package server

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	castencil "castencil"
)

// RunFollower is the distributed follower loop: on every rank but 0 the
// daemon runs it against the mesh, executing each job spec rank 0
// broadcasts. Broadcast jobs bypass the admission queue — rank 0 is
// already committed to the run when the spec arrives, so the follower
// starts immediately instead of waiting behind local work — but they are
// registered in the job table like any other job, so /v1/jobs, the result
// endpoint and the progress stream see them on every rank (a follower's
// result carries its local counter slice and no grid; rank 0 holds the
// gathered field). The loop returns when ctx is cancelled or the
// transport closes.
func (m *Manager) RunFollower(ctx context.Context, t *castencil.NetTransport) error {
	if t.Rank() == 0 {
		return fmt.Errorf("server: RunFollower on rank 0 (rank 0 drives broadcasts, it does not follow them)")
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case payload, ok := <-t.Jobs():
			if !ok {
				return nil
			}
			m.runBroadcast(ctx, t, payload)
		}
	}
}

// runBroadcast executes one spec broadcast by rank 0. A spec this rank
// cannot decode or validate is a divergence from rank 0 (which validated
// the identical bytes with the identical parsers before sending); rather
// than leave rank 0 hanging in the run's start barrier, the follower
// enters the epoch and aborts it, so rank 0's job fails with a structured
// error naming this rank.
func (m *Manager) runBroadcast(ctx context.Context, t *castencil.NetTransport, payload []byte) {
	var spec Spec
	var b *buildSpec
	err := json.Unmarshal(payload, &spec)
	if err == nil {
		b, err = spec.build()
	}
	if err != nil {
		t.Begin()
		t.Abort(fmt.Sprintf("rank %d rejected broadcast spec: %v", t.Rank(), err))
		return
	}
	if b.timeout == 0 {
		b.timeout = m.cfg.DefaultTimeout
	}

	now := time.Now()
	m.mu.Lock()
	m.nextID++
	j := &Job{
		ID:        fmt.Sprintf("job-%06d", m.nextID),
		Spec:      spec,
		build:     b,
		state:     StateRunning,
		submitted: now,
		done:      make(chan struct{}),
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j)
	m.running++
	m.mu.Unlock()

	runCtx, cancel := context.WithCancel(ctx)
	if b.timeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, b.timeout)
	}
	defer cancel()
	j.mu.Lock()
	j.started = now
	j.cancelFn = cancel
	j.mu.Unlock()

	variant, cfg, err := m.resolvePlan(j, b)
	if err != nil {
		// Same divergence reasoning as a build failure: fail the epoch
		// instead of hanging every rank.
		t.Begin()
		t.Abort(fmt.Sprintf("rank %d planner rejected broadcast: %v", t.Rank(), err))
		m.finishJob(j, err)
	} else {
		opts := []castencil.Option{
			castencil.WithWorkers(m.workersFor(b)),
			castencil.WithCoalesce(b.coalesce),
			castencil.WithFaultPlan(b.fault),
			castencil.WithContext(runCtx),
			castencil.WithProgress(func(done, total int64) {
				j.progDone.Store(done)
				j.progTotal.Store(total)
			}),
			castencil.WithCluster(castencil.ClusterOptions{
				Transport: t,
				Steal:     castencil.StealPolicy{Mode: b.steal, Machine: b.machine},
			}),
		}
		if b.schedSet {
			opts = append(opts, castencil.WithSched(b.sched), castencil.WithPolicy(b.policy))
		}
		m.execReal(j, variant, cfg, opts)
	}
	m.mu.Lock()
	m.running--
	m.mu.Unlock()
}
