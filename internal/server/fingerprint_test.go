package server

import (
	"encoding/hex"
	"testing"
)

// baseSpec is a fully-spelled reference job for the fingerprint contract.
func fpBaseSpec() Spec {
	return Spec{
		Engine: "real", Variant: "ca",
		N: 256, Tile: 32, Nodes: 4, Steps: 40, StepSize: 4, Seed: 7,
	}
}

// The fingerprint must be a pure function of the result-affecting subset:
// perturbing any execution-only or policy-only field leaves it unchanged.
func TestFingerprintIgnoresNonResultFields(t *testing.T) {
	base := fpBaseSpec().Fingerprint()
	perturbed := map[string]Spec{}
	add := func(name string, mod func(*Spec)) {
		s := fpBaseSpec()
		mod(&s)
		perturbed[name] = s
	}
	add("workers", func(s *Spec) { s.Workers = 7 })
	add("sched", func(s *Spec) { s.Sched = "steal" })
	add("coalesce", func(s *Spec) { s.Coalesce = "step" })
	add("steal", func(s *Spec) { s.Steal = "greedy"; s.Ranks = 4 })
	add("transform", func(s *Spec) { s.Transform = "split" })
	add("ranks", func(s *Spec) { s.Ranks = 4 })
	add("priority", func(s *Spec) { s.Priority = "high" })
	add("timeout", func(s *Spec) { s.TimeoutMS = 5000 })
	add("tenant", func(s *Spec) { s.Tenant = "acme" })
	add("cache", func(s *Spec) { s.Cache = "bypass" })
	add("fault", func(s *Spec) { s.Fault = "drop=0.01,seed=3" })
	add("machine", func(s *Spec) { s.Machine = "Stampede2" })
	add("ratio", func(s *Spec) { s.Ratio = 0.4 })
	for name, s := range perturbed {
		if got := s.Fingerprint(); got != base {
			t.Errorf("perturbing non-result field %q changed the fingerprint: %s != %s", name, got, base)
		}
	}
}

// Every result-affecting field must perturb the hash.
func TestFingerprintCoversResultFields(t *testing.T) {
	base := fpBaseSpec().Fingerprint()
	perturbed := map[string]Spec{}
	add := func(name string, mod func(*Spec)) {
		s := fpBaseSpec()
		mod(&s)
		perturbed[name] = s
	}
	add("engine", func(s *Spec) { s.Engine = "sim" })
	add("variant", func(s *Spec) { s.Variant = "base" })
	add("plan", func(s *Spec) { s.Plan = "auto" })
	add("n", func(s *Spec) { s.N = 512 })
	add("tile", func(s *Spec) { s.Tile = 64 })
	add("nodes", func(s *Spec) { s.Nodes = 16 })
	add("steps", func(s *Spec) { s.Steps = 80 })
	add("step_size", func(s *Spec) { s.StepSize = 8 })
	add("wavefront", func(s *Spec) { s.Wavefront = 4; s.Variant = "wf"; s.StepSize = 0 })
	add("seed", func(s *Spec) { s.Seed = 8 })
	seen := map[string]string{"base": base}
	for name, s := range perturbed {
		got := s.Fingerprint()
		if got == base {
			t.Errorf("perturbing result-affecting field %q did not change the fingerprint", name)
		}
		for prev, h := range seen {
			if h == got {
				t.Errorf("fields %q and %q collide: %s", name, prev, got)
			}
		}
		seen[name] = got
	}
}

// Default normalization: the empty spellings hash like their canonical
// forms, so a cache hit does not depend on how the client spelled defaults.
func TestFingerprintNormalizesDefaults(t *testing.T) {
	full := fpBaseSpec()
	full.Seed = 1
	short := Spec{N: 256, Tile: 32, Nodes: 4, Steps: 40, StepSize: 4}
	if f, s := full.Fingerprint(), short.Fingerprint(); f != s {
		t.Fatalf("defaults not normalized: explicit %s != elided %s", f, s)
	}
	one := Spec{N: 256, Tile: 32, Steps: 40}
	oneExplicit := Spec{Engine: "run", Variant: "CA", N: 256, Tile: 32, Nodes: 1, Steps: 40, Seed: 1}
	if a, b := one.Fingerprint(), oneExplicit.Fingerprint(); a != b {
		t.Fatalf("nodes/seed/engine-case normalization broken: %s != %s", a, b)
	}
	// Shape sanity: hex sha256.
	if fp := one.Fingerprint(); len(fp) != 64 {
		t.Fatalf("fingerprint length %d, want 64 hex chars", len(fp))
	} else if _, err := hex.DecodeString(fp); err != nil {
		t.Fatalf("fingerprint is not hex: %v", err)
	}
}

func TestCacheSafe(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Spec)
		want bool
	}{
		{"default real job", func(s *Spec) {}, true},
		{"explicit real", func(s *Spec) { s.Engine = "real" }, true},
		{"plan auto default machine", func(s *Spec) { s.Plan = "auto"; s.Variant = "" }, true},
		{"sim", func(s *Spec) { s.Engine = "sim" }, false},
		{"bypass", func(s *Spec) { s.Cache = "bypass" }, false},
		{"bypass case", func(s *Spec) { s.Cache = "Bypass" }, false},
		{"distributed", func(s *Spec) { s.Ranks = 2 }, false},
		{"fault", func(s *Spec) { s.Fault = "drop=0.01,seed=3" }, false},
		{"fault off", func(s *Spec) { s.Fault = "off" }, true},
		{"auto with machine", func(s *Spec) { s.Plan = "auto"; s.Machine = "Stampede2" }, false},
		{"auto with ratio", func(s *Spec) { s.Plan = "auto"; s.Ratio = 0.4 }, false},
	}
	for _, c := range cases {
		s := fpBaseSpec()
		c.mod(&s)
		if got := s.CacheSafe(); got != c.want {
			t.Errorf("%s: CacheSafe = %v, want %v", c.name, got, c.want)
		}
	}
}

// Validate mirrors admission exactly — including the new tenant and cache
// fields — so the gateway can 400 locally.
func TestSpecValidate(t *testing.T) {
	ok := fpBaseSpec()
	ok.Tenant, ok.Cache = "acme", "bypass"
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := fpBaseSpec()
	bad.Cache = "maybe"
	if err := bad.Validate(); err == nil {
		t.Fatal("bad cache mode accepted")
	}
	neg := fpBaseSpec()
	neg.N = 0
	if err := neg.Validate(); err == nil {
		t.Fatal("n=0 accepted")
	}
}
