package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	m := New(cfg)
	srv := httptest.NewServer(Handler(m))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	})
	return m, srv
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, b.Bytes()
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// TestHTTPSubmitStatusResult drives the full request lifecycle over the
// wire: submit, poll, fetch the result with its determinism checksum, and
// confirm the grid bytes round-trip matches the checksum.
func TestHTTPSubmitStatusResult(t *testing.T) {
	_, srv := newTestServer(t, Config{MaxJobs: 2, QueueSize: 8})

	resp, body := postJSON(t, srv.URL+"/v1/jobs",
		`{"n":64,"tile":16,"steps":6,"step_size":3,"seed":7,"workers":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || (v.State != StateQueued && v.State != StateRunning) {
		t.Fatalf("submit view: %+v", v)
	}

	// Poll until terminal.
	deadline := time.Now().Add(30 * time.Second)
	for !v.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", v)
		}
		time.Sleep(10 * time.Millisecond)
		getJSON(t, srv.URL+"/v1/jobs/"+v.ID, &v)
	}
	if v.State != StateDone {
		t.Fatalf("job state %s, error %q", v.State, v.Error)
	}
	if v.TasksDone != v.TasksTotal || v.Progress != 1 {
		t.Errorf("done job progress %d/%d (%v)", v.TasksDone, v.TasksTotal, v.Progress)
	}

	var res Result
	if code := getJSON(t, srv.URL+"/v1/jobs/"+v.ID+"/result?grid=1", &res).StatusCode; code != http.StatusOK {
		t.Fatalf("result: %d", code)
	}
	if res.GridSHA256 == "" || res.GridN != 64 || res.Tasks == 0 {
		t.Errorf("result incomplete: %+v", res)
	}
	raw, err := base64.StdEncoding.DecodeString(res.GridData)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 64*64*8 {
		t.Errorf("grid payload %d bytes, want %d", len(raw), 64*64*8)
	}
	// Same spec, same seed, second job: the service's determinism contract
	// over the wire.
	_, body2 := postJSON(t, srv.URL+"/v1/jobs",
		`{"n":64,"tile":16,"steps":6,"step_size":3,"seed":7,"workers":1}`)
	var v2 View
	if err := json.Unmarshal(body2, &v2); err != nil {
		t.Fatal(err)
	}
	for !v2.State.Terminal() {
		time.Sleep(10 * time.Millisecond)
		getJSON(t, srv.URL+"/v1/jobs/"+v2.ID, &v2)
	}
	var res2 Result
	getJSON(t, srv.URL+"/v1/jobs/"+v2.ID+"/result", &res2)
	if res2.GridSHA256 != res.GridSHA256 {
		t.Errorf("same seed, different checksum: %s vs %s", res2.GridSHA256, res.GridSHA256)
	}

	// Listing includes both jobs.
	var list struct {
		Jobs []View `json:"jobs"`
	}
	getJSON(t, srv.URL+"/v1/jobs", &list)
	if len(list.Jobs) != 2 {
		t.Errorf("list has %d jobs, want 2", len(list.Jobs))
	}
}

// TestHTTPErrors covers the failure surface: malformed body, invalid spec,
// unknown job, premature result, queue-full 429.
func TestHTTPErrors(t *testing.T) {
	m, srv := newTestServer(t, Config{MaxJobs: 1, QueueSize: 1})

	if resp, _ := postJSON(t, srv.URL+"/v1/jobs", `{not json`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", resp.StatusCode)
	}
	if resp, body := postJSON(t, srv.URL+"/v1/jobs", `{"n":64,"tile":16,"steps":6,"nodes":3}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec: %d %s, want 400", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, srv.URL+"/v1/jobs", `{"n":64,"tile":16,"steps":6,"bogus_knob":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/v1/jobs/job-999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/v1/jobs/job-999999/cancel", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown: %d, want 404", resp.StatusCode)
	}

	// Occupy the executor, fill the queue, then overflow it. The blocker
	// must outlast several HTTP round-trips, so give it plenty of steps.
	blocker, err := m.Submit(Spec{N: 256, Tile: 32, Steps: 4000, StepSize: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning, 10*time.Second)
	if resp, body := postJSON(t, srv.URL+"/v1/jobs", `{"n":64,"tile":16,"steps":6,"step_size":3}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue fill: %d %s", resp.StatusCode, body)
	}
	resp, body := postJSON(t, srv.URL+"/v1/jobs", `{"n":64,"tile":16,"steps":6,"step_size":3}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("overflow: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// A running job has no result yet.
	if resp := getJSON(t, srv.URL+"/v1/jobs/"+blocker.ID+"/result", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("premature result: %d, want 409", resp.StatusCode)
	}
	// Cancel over the wire.
	if resp, _ := postJSON(t, srv.URL+"/v1/jobs/"+blocker.ID+"/cancel", ""); resp.StatusCode != http.StatusAccepted {
		t.Errorf("cancel: %d, want 202", resp.StatusCode)
	}
	waitState(t, blocker, StateCancelled, 30*time.Second)
}

// TestHTTPMetricsAndHealth checks the observability endpoints: Prometheus
// exposition with the service families, healthz flipping to 503 on drain.
func TestHTTPMetricsAndHealth(t *testing.T) {
	m, srv := newTestServer(t, Config{MaxJobs: 1, QueueSize: 4})

	j, err := m.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone, 30*time.Second)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	_, _ = b.ReadFrom(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	out := b.String()
	for _, want := range []string{
		`stencild_jobs_total{state="done"} 1`,
		"stencild_queue_depth 0",
		"stencild_jobs_running 0",
		"stencild_tasks_executed_total",
		"stencild_job_duration_seconds_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q\n%s", want, out)
		}
	}

	if resp := getJSON(t, srv.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d, want 200", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if resp := getJSON(t, srv.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/v1/jobs", `{"n":64,"tile":16,"steps":6,"step_size":3}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: %d, want 503", resp.StatusCode)
	}
}

// TestHTTPHealthPayload checks the machine-readable healthz contract the
// fleet gateway depends on: the first line stays the plain status word
// (back-compat) and the last line parses as a Health JSON object carrying
// the daemon's capacity limits.
func TestHTTPHealthPayload(t *testing.T) {
	_, srv := newTestServer(t, Config{MaxJobs: 3, QueueSize: 5})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	_, _ = b.ReadFrom(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "ok" {
		t.Errorf("first healthz line %q, want ok", lines[0])
	}
	var h Health
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &h); err != nil {
		t.Fatalf("last healthz line is not Health JSON: %v\n%s", err, b.String())
	}
	if h.Status != "ok" || h.MaxJobs != 3 || h.QueueSize != 5 {
		t.Errorf("health payload %+v, want status ok, max_jobs 3, queue_size 5", h)
	}
	if h.QueueDepth != 0 || h.Running != 0 {
		t.Errorf("idle daemon reports load %+v", h)
	}
}

// TestHTTPStream reads the NDJSON progress stream: at least an initial and
// a terminal snapshot, the last one terminal with full progress.
func TestHTTPStream(t *testing.T) {
	m, srv := newTestServer(t, Config{MaxJobs: 1, QueueSize: 4})
	j, err := m.Submit(Spec{N: 128, Tile: 32, Steps: 60, StepSize: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/stream", srv.URL, j.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	var views []View
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var v View
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		views = append(views, v)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(views) < 2 {
		t.Fatalf("stream delivered %d snapshots, want >= 2", len(views))
	}
	last := views[len(views)-1]
	if !last.State.Terminal() {
		t.Errorf("final snapshot not terminal: %+v", last)
	}
	if last.State == StateDone && last.Progress != 1 {
		t.Errorf("final progress %v, want 1", last.Progress)
	}
}
