package server

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	castencil "castencil"
)

// Handler returns the daemon's HTTP API over the manager:
//
//	POST /v1/jobs              submit a Spec (JSON body) -> 202 + job view
//	GET  /v1/jobs              list all jobs
//	GET  /v1/jobs/{id}         one job's live view
//	GET  /v1/jobs/{id}/stream  NDJSON progress stream until terminal
//	POST /v1/jobs/{id}/cancel  request cancellation
//	GET  /v1/jobs/{id}/result  terminal result (add ?grid=1 for the field data)
//	GET  /metrics              Prometheus text exposition
//	GET  /healthz              200 ok / 503 draining
//
// Backpressure is explicit: a full admission queue answers 429 with
// Retry-After, a draining daemon 503. Malformed or invalid specs answer
// 400 before anything queues.
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		j, err := m.Submit(spec)
		if err != nil {
			switch {
			case errors.Is(err, ErrQueueFull):
				w.Header().Set("Retry-After", "1")
				writeErr(w, http.StatusTooManyRequests, err)
			case errors.Is(err, ErrDraining):
				writeErr(w, http.StatusServiceUnavailable, err)
			default:
				writeErr(w, http.StatusBadRequest, err)
			}
			return
		}
		writeJSON(w, http.StatusAccepted, j.Snapshot())
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := m.Jobs()
		views := make([]View, len(jobs))
		for i, j := range jobs {
			views[i] = j.Snapshot()
		}
		writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, ErrNotFound)
			return
		}
		writeJSON(w, http.StatusOK, j.Snapshot())
	})
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Cancel(r.PathValue("id")); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		j, _ := m.Get(r.PathValue("id"))
		writeJSON(w, http.StatusAccepted, j.Snapshot())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, ErrNotFound)
			return
		}
		if !j.State().Terminal() {
			writeErr(w, http.StatusConflict, fmt.Errorf("job %s is %s, not terminal", j.ID, j.State()))
			return
		}
		writeJSON(w, http.StatusOK, buildResult(j, r.URL.Query().Get("grid") != ""))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, ErrNotFound)
			return
		}
		streamJob(w, r, j)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// The first line stays the plain status word ("ok" / "draining" /
		// "degraded") for back-compat with scripts that `head -n 1` it; the
		// last line is the machine-readable Health JSON the fleet gateway
		// parses for load-aware routing. A degraded mesh cannot accept
		// distributed jobs, so it is surfaced the same way draining is —
		// load balancers and the smoke tests see the gap before a run
		// hangs on it.
		h := m.Health()
		status := http.StatusOK
		if h.Status != "ok" {
			status = http.StatusServiceUnavailable
		}
		w.WriteHeader(status)
		fmt.Fprintln(w, h.Status)
		if t := m.Transport(); t != nil {
			fmt.Fprintf(w, "transport: rank %d, %d/%d ranks connected\n", h.Rank, h.RanksConnected, h.Ranks)
		}
		_ = json.NewEncoder(w).Encode(h)
	})
	return mux
}

// Result is the terminal report served by /v1/jobs/{id}/result. For real
// jobs GridSHA256 fingerprints the final field (sha256 over the row-major
// float64 little-endian bytes), so clients can check bitwise determinism
// without shipping the data; ?grid=1 adds the same bytes base64-encoded.
type Result struct {
	View View `json:"job"`

	// Real-engine outcome.
	GridN      int    `json:"grid_n,omitempty"`
	GridSHA256 string `json:"grid_sha256,omitempty"`
	GridData   string `json:"grid_data,omitempty"` // base64 float64-LE, on request
	Tasks      int    `json:"tasks,omitempty"`
	Messages   int    `json:"messages,omitempty"`
	BytesSent  int    `json:"bytes_sent,omitempty"`
	Steals     int    `json:"steals,omitempty"`
	ElapsedMS  int64  `json:"elapsed_ms,omitempty"`

	// Sim-engine outcome.
	MakespanMS float64 `json:"makespan_ms,omitempty"`
	GFLOPS     float64 `json:"gflops,omitempty"`
}

func buildResult(j *Job, withGrid bool) Result {
	out := Result{View: j.Snapshot()}
	if res := j.RealResult(); res != nil {
		// A distributed follower's result has no grid (rank 0 holds the
		// gathered field); its counters are still its rank's local view.
		if res.Grid != nil {
			out.GridN = res.Grid.Rows
			out.GridSHA256 = castencil.GridSHA256(res.Grid)
			if withGrid {
				out.GridData = base64.StdEncoding.EncodeToString(castencil.GridBytes(res.Grid))
			}
		}
		ex := res.Exec
		out.Tasks = ex.Completed
		out.Messages = ex.Messages
		out.BytesSent = ex.BytesSent
		out.ElapsedMS = ex.Elapsed.Milliseconds()
		for _, s := range ex.NodeSteals {
			out.Steals += s
		}
	}
	if res := j.SimResult(); res != nil {
		out.MakespanMS = float64(res.Makespan) / float64(time.Millisecond)
		out.GFLOPS = res.GFLOPS
		out.Tasks = res.Sim.Tasks
		out.Messages = res.Messages
		out.BytesSent = res.BytesSent
	}
	return out
}

// streamJob writes newline-delimited JSON snapshots until the job is
// terminal or the client goes away, flushing each line. The final line is
// always the terminal view.
func streamJob(w http.ResponseWriter, r *http.Request, j *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func() {
		_ = enc.Encode(j.Snapshot())
		if fl != nil {
			fl.Flush()
		}
	}
	emit()
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-j.Done():
			emit()
			return
		case <-r.Context().Done():
			return
		case <-tick.C:
			emit()
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
