package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	castencil "castencil"
	"castencil/internal/metrics"
)

// Sentinel errors of the admission path. HTTP maps ErrQueueFull to 429 and
// ErrDraining to 503.
var (
	// ErrQueueFull is the backpressure signal: the bounded admission queue
	// is at capacity and the submission is rejected immediately — the
	// service never parks a client on a full queue.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrDraining rejects submissions during graceful shutdown.
	ErrDraining = errors.New("server: draining, not accepting jobs")
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("server: no such job")
)

// Config sizes a Manager.
type Config struct {
	// QueueSize bounds the admission queue across all priority classes
	// (default 64). A submission arriving at a full queue fails with
	// ErrQueueFull.
	QueueSize int
	// MaxJobs is the executor pool size — jobs running concurrently
	// (default 2).
	MaxJobs int
	// WorkerBudget is the total per-node compute workers the manager
	// divides across concurrently running real jobs that do not pin their
	// own count (default GOMAXPROCS, floor 1): a job with Workers=0 runs
	// with max(1, WorkerBudget/(MaxJobs*nodes)) workers per node, so the
	// service's goroutine appetite stays bounded whatever jobs arrive.
	// Worker count never changes numerics, only latency.
	WorkerBudget int
	// DefaultTimeout bounds jobs that do not carry their own timeout_ms
	// (0 = unbounded).
	DefaultTimeout time.Duration
	// Registry receives the service metrics (nil = a fresh registry,
	// exposed via Metrics()).
	Registry *metrics.Registry
	// Transport is the distributed mesh of a multi-rank deployment (nil =
	// single-process daemon). A job submitted with ranks>0 runs across it:
	// rank 0 broadcasts the spec over the mesh and runs with the shared
	// transport while every follower executes the broadcast through
	// RunFollower. Distributed jobs serialize — the mesh carries one run
	// at a time, in the same order on every rank.
	Transport *castencil.NetTransport
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 2
	}
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = runtime.GOMAXPROCS(0)
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	return c
}

// Manager owns the job table, the bounded priority admission queue and the
// executor pool. All exported methods are safe for concurrent use.
type Manager struct {
	cfg Config
	reg *metrics.Registry

	mu       sync.Mutex
	cond     *sync.Cond
	queues   [numPriorities][]*Job
	queued   int
	jobs     map[string]*Job
	order    []*Job // submission order, for listing
	running  int
	draining bool
	aborting bool // drain deadline passed: stop starting queued jobs
	nextID   uint64

	execWg sync.WaitGroup

	// distMu serializes distributed jobs: every rank must execute mesh
	// broadcasts in the same order, so rank 0 admits one onto the wire at
	// a time (local single-process jobs run unserialized alongside).
	distMu sync.Mutex

	// Instruments. Counter families are documented in DESIGN.md.
	mSubmitted  *metrics.Counter
	mRejected   *metrics.Counter
	mTerminal   map[State]*metrics.Counter
	mTasks      *metrics.Counter
	mSteals     *metrics.Counter
	mMessages   *metrics.Counter
	mBytes      *metrics.Counter
	mBundles    *metrics.Counter
	mSegments   *metrics.Counter
	mRetransmit *metrics.Counter
	mDuration   map[string]*metrics.Histogram // by engine
	mQueueWait  *metrics.Histogram
}

// New starts a manager and its executor pool.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{cfg: cfg, reg: cfg.Registry, jobs: make(map[string]*Job)}
	m.cond = sync.NewCond(&m.mu)

	r := m.reg
	m.mSubmitted = r.Counter("stencild_jobs_submitted_total", "jobs accepted into the admission queue", nil)
	m.mRejected = r.Counter("stencild_jobs_rejected_total", "submissions rejected by queue-full backpressure", nil)
	m.mTerminal = map[State]*metrics.Counter{
		StateDone:      r.Counter("stencild_jobs_total", "jobs by terminal state", metrics.Labels{"state": "done"}),
		StateFailed:    r.Counter("stencild_jobs_total", "jobs by terminal state", metrics.Labels{"state": "failed"}),
		StateCancelled: r.Counter("stencild_jobs_total", "jobs by terminal state", metrics.Labels{"state": "cancelled"}),
	}
	r.GaugeFunc("stencild_queue_depth", "jobs waiting in the admission queue", nil, func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return int64(m.queued)
	})
	r.GaugeFunc("stencild_jobs_running", "jobs currently executing", nil, func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return int64(m.running)
	})
	m.mTasks = r.Counter("stencild_tasks_executed_total", "graph tasks executed across all jobs", nil)
	m.mSteals = r.Counter("stencild_steals_total", "work-stealing scheduler steals across all jobs", nil)
	m.mMessages = r.Counter("stencild_messages_total", "inter-node wire messages across all jobs", nil)
	m.mBytes = r.Counter("stencild_bytes_sent_total", "inter-node wire bytes across all jobs", nil)
	m.mBundles = r.Counter("stencild_bundles_total", "coalesced halo bundles sent across all jobs", nil)
	m.mSegments = r.Counter("stencild_bundle_segments_total", "member transfers carried by coalesced bundles", nil)
	m.mRetransmit = r.Counter("stencild_retransmits_total", "reliable-transport retransmissions across all jobs", nil)
	m.mDuration = map[string]*metrics.Histogram{
		"real": r.Histogram("stencild_job_duration_seconds", "job run wall time by engine", nil, metrics.Labels{"engine": "real"}),
		"sim":  r.Histogram("stencild_job_duration_seconds", "job run wall time by engine", nil, metrics.Labels{"engine": "sim"}),
	}
	m.mQueueWait = r.Histogram("stencild_job_queue_wait_seconds", "time from admission to execution start", nil, nil)

	for i := 0; i < cfg.MaxJobs; i++ {
		m.execWg.Add(1)
		go m.executor()
	}
	return m
}

// Metrics returns the registry the manager reports into.
func (m *Manager) Metrics() *metrics.Registry { return m.reg }

// Transport returns the distributed mesh the manager serves (nil in a
// single-process daemon).
func (m *Manager) Transport() *castencil.NetTransport { return m.cfg.Transport }

// Health is the machine-readable /healthz payload: the daemon's live load
// (for the fleet gateway's load-aware routing) plus its capacity limits and
// transport state. Status mirrors the endpoint's human text line: "ok",
// "draining", or "degraded" (mesh rank down).
type Health struct {
	Status     string `json:"status"`
	QueueDepth int    `json:"queue_depth"`
	Running    int    `json:"running"`
	MaxJobs    int    `json:"max_jobs"`
	QueueSize  int    `json:"queue_size"`

	// Transport state of a distributed daemon (absent single-process).
	Rank           int `json:"rank,omitempty"`
	Ranks          int `json:"ranks,omitempty"`
	RanksConnected int `json:"ranks_connected,omitempty"`
}

// Health snapshots the manager's live load and transport state.
func (m *Manager) Health() Health {
	m.mu.Lock()
	h := Health{
		Status:     "ok",
		QueueDepth: m.queued,
		Running:    m.running,
		MaxJobs:    m.cfg.MaxJobs,
		QueueSize:  m.cfg.QueueSize,
	}
	if m.draining {
		h.Status = "draining"
	}
	m.mu.Unlock()
	if t := m.cfg.Transport; t != nil {
		up, want := t.Connected()
		h.Rank, h.Ranks, h.RanksConnected = t.Rank(), want, up
		if up < want && h.Status == "ok" {
			h.Status = "degraded"
		}
	}
	return h
}

// Submit validates and admits a job, returning it in StateQueued. The
// queue is bounded: a full queue rejects with ErrQueueFull immediately.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	b, err := spec.build()
	if err != nil {
		return nil, err
	}
	if b.ranks > 0 {
		t := m.cfg.Transport
		switch {
		case t == nil:
			return nil, fmt.Errorf("server: distributed job (ranks=%d) needs a daemon started with -ranks", b.ranks)
		case t.Rank() != 0:
			return nil, fmt.Errorf("server: distributed jobs are submitted to rank 0 (this daemon is rank %d)", t.Rank())
		case b.ranks != t.Ranks():
			return nil, fmt.Errorf("server: spec ranks %d does not match the %d-rank mesh", b.ranks, t.Ranks())
		}
	}
	if b.timeout == 0 {
		b.timeout = m.cfg.DefaultTimeout
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	if m.queued >= m.cfg.QueueSize {
		m.mu.Unlock()
		m.mRejected.Inc()
		return nil, ErrQueueFull
	}
	m.nextID++
	j := &Job{
		ID:        fmt.Sprintf("job-%06d", m.nextID),
		Spec:      spec,
		build:     b,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j)
	m.queues[b.prio] = append(m.queues[b.prio], j)
	m.queued++
	m.cond.Signal()
	m.mu.Unlock()
	m.mSubmitted.Inc()
	return j, nil
}

// Get returns a job by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs lists all known jobs in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, len(m.order))
	copy(out, m.order)
	return out
}

// Cancel stops a job: a queued job transitions to cancelled immediately; a
// running job has its context cancelled and reports cancelled once its
// workers stop (promptly, at task granularity). Cancelling a terminal job
// is a no-op. Unknown ids return ErrNotFound.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrNotFound
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		m.removeQueuedLocked(j)
		j.state = StateCancelled
		j.err = context.Canceled
		j.finished = time.Now()
		close(j.done)
		j.mu.Unlock()
		m.mu.Unlock()
		m.mTerminal[StateCancelled].Inc()
		return nil
	case StateRunning:
		j.cancelReq = true
		if j.cancelFn != nil {
			j.cancelFn()
		}
	}
	j.mu.Unlock()
	m.mu.Unlock()
	return nil
}

// removeQueuedLocked drops j from its priority queue (both locks held).
func (m *Manager) removeQueuedLocked(j *Job) {
	q := m.queues[j.build.prio]
	for i, cand := range q {
		if cand == j {
			m.queues[j.build.prio] = append(q[:i], q[i+1:]...)
			m.queued--
			return
		}
	}
}

// next blocks until a job is available (highest class first, FIFO within a
// class) or the pool is shutting down (returns nil).
func (m *Manager) next() *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if !m.aborting {
			for p := Priority(0); p < numPriorities; p++ {
				if q := m.queues[p]; len(q) > 0 {
					j := q[0]
					m.queues[p] = q[1:]
					m.queued--
					m.running++
					return j
				}
			}
		}
		if m.draining {
			return nil
		}
		m.cond.Wait()
	}
}

// executor is one pool worker: it claims jobs in priority order and runs
// them to a terminal state.
func (m *Manager) executor() {
	defer m.execWg.Done()
	for {
		j := m.next()
		if j == nil {
			return
		}
		m.runJob(j)
		m.mu.Lock()
		m.running--
		m.mu.Unlock()
	}
}

// workersFor resolves a real job's per-node worker count against the
// manager's budget: an explicit request is honored; otherwise the budget
// is divided evenly across the pool's job slots and the job's nodes.
func (m *Manager) workersFor(b *buildSpec) int {
	if b.workers > 0 {
		return b.workers
	}
	nodes := b.cfg.P * b.cfg.Q
	if nodes <= 0 {
		nodes = b.cfg.P * b.cfg.P
	}
	if nodes <= 0 {
		nodes = 1
	}
	w := m.cfg.WorkerBudget / (m.cfg.MaxJobs * nodes)
	if w < 1 {
		w = 1
	}
	return w
}

// runJob drives one job from running to a terminal state.
func (m *Manager) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued {
		// Cancelled between claim and start — nothing to do.
		j.mu.Unlock()
		return
	}
	if j.cancelReq {
		j.state = StateCancelled
		j.err = context.Canceled
		j.finished = time.Now()
		close(j.done)
		j.mu.Unlock()
		m.mTerminal[StateCancelled].Inc()
		return
	}
	b := j.build
	ctx, cancel := context.WithCancel(context.Background())
	if b.timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), b.timeout)
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancelFn = cancel
	wait := j.started.Sub(j.submitted)
	j.mu.Unlock()
	defer cancel()
	m.mQueueWait.Observe(wait.Seconds())

	variant, cfg, err := m.resolvePlan(j, b)
	if err != nil {
		m.finishJob(j, err)
		return
	}

	progress := func(done, total int64) {
		j.progDone.Store(done)
		j.progTotal.Store(total)
	}
	switch b.engine {
	case "sim":
		start := time.Now()
		res, err := castencil.Sim(variant, cfg,
			castencil.WithMachine(b.machine),
			castencil.WithRatio(b.ratio),
			castencil.WithCoalesce(b.coalesce),
			castencil.WithFaultPlan(b.fault),
			castencil.WithContext(ctx),
			castencil.WithProgress(progress))
		m.mDuration["sim"].Observe(time.Since(start).Seconds())
		if err == nil {
			m.mTasks.Add(int64(res.Sim.Tasks))
			m.mMessages.Add(int64(res.Messages))
			m.mBytes.Add(int64(res.BytesSent))
			m.mBundles.Add(int64(res.Bundles))
			m.mSegments.Add(int64(res.Segments))
			m.mRetransmit.Add(int64(res.Fault.Retransmits))
			j.mu.Lock()
			j.sim = res
			j.mu.Unlock()
		}
		m.finishJob(j, err)
	default:
		opts := []castencil.Option{
			castencil.WithWorkers(m.workersFor(b)),
			castencil.WithCoalesce(b.coalesce),
			castencil.WithFaultPlan(b.fault),
			castencil.WithContext(ctx),
			castencil.WithProgress(progress),
		}
		if b.schedSet {
			opts = append(opts, castencil.WithSched(b.sched), castencil.WithPolicy(b.policy))
		}
		if b.ranks > 0 {
			// Distributed: broadcast the spec so every follower enters the
			// same run, then execute with the shared mesh. The broadcast
			// carries the raw submitted spec — followers re-validate and
			// re-resolve it with the same deterministic parsers and planner,
			// so every rank agrees on the resulting configuration.
			m.distMu.Lock()
			defer m.distMu.Unlock()
			payload, err := json.Marshal(j.Spec)
			if err == nil {
				err = m.cfg.Transport.SendJob(payload)
			}
			if err != nil {
				m.finishJob(j, err)
				return
			}
			opts = append(opts, castencil.WithCluster(castencil.ClusterOptions{
				Transport: m.cfg.Transport,
				Steal:     castencil.StealPolicy{Mode: b.steal, Machine: b.machine},
			}))
		}
		m.execReal(j, variant, cfg, opts)
	}
}

// resolvePlan applies a plan=auto decision, recording it on the job. The
// planner is a deterministic function of the spec and machine model, so
// every rank of a distributed job resolves the identical configuration.
func (m *Manager) resolvePlan(j *Job, b *buildSpec) (castencil.Variant, castencil.Config, error) {
	variant, cfg := b.variant, b.cfg
	if !b.planAuto {
		return variant, cfg, nil
	}
	plan, err := castencil.AutoPlan(cfg, b.machine, planRatio(b.ratio), nil)
	if err != nil {
		return variant, cfg, err
	}
	j.mu.Lock()
	j.plan = plan
	j.mu.Unlock()
	switch {
	case plan.UseCA():
		variant = castencil.CA
		cfg.StepSize = plan.BestStepSize
	case plan.UseWavefront():
		variant = castencil.WF
		cfg.Wavefront = plan.BestWidth
	default:
		variant = castencil.Base
	}
	return variant, cfg, nil
}

// execReal runs a real-engine job to its terminal state and folds the
// outcome into the service counters. On a distributed run, rank 0's result
// carries the global counters (the runtime folds every rank's slice at the
// drain gather) while a follower's carries only its local slice — each
// daemon's metrics report its own rank's view.
func (m *Manager) execReal(j *Job, variant castencil.Variant, cfg castencil.Config, opts []castencil.Option) {
	start := time.Now()
	res, err := castencil.Run(variant, cfg, opts...)
	m.mDuration["real"].Observe(time.Since(start).Seconds())
	if err == nil {
		ex := res.Exec
		m.mTasks.Add(int64(ex.Completed))
		m.mMessages.Add(int64(ex.Messages))
		m.mBytes.Add(int64(ex.BytesSent))
		m.mBundles.Add(int64(ex.BundlesSent))
		m.mSegments.Add(int64(ex.BundleSegments))
		m.mRetransmit.Add(int64(ex.Fault.Retransmits))
		steals := 0
		for _, s := range ex.NodeSteals {
			steals += s
		}
		m.mSteals.Add(int64(steals))
		j.mu.Lock()
		j.real = res
		j.mu.Unlock()
	}
	m.finishJob(j, err)
}

// planRatio maps the spec's ratio (0 = unset) onto AutoPlan's knob, where
// 1 means the real kernel.
func planRatio(r float64) float64 {
	if r <= 0 {
		return 1
	}
	return r
}

// finishJob records the terminal state for a run outcome: nil error means
// done; a cancellation surfaces as cancelled; everything else (including a
// blown deadline) as failed.
func (m *Manager) finishJob(j *Job, err error) {
	state := StateDone
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		state = StateCancelled
	default:
		state = StateFailed
	}
	j.mu.Lock()
	j.state = state
	j.err = err
	j.finished = time.Now()
	close(j.done)
	j.mu.Unlock()
	m.mTerminal[state].Inc()
}

// Shutdown drains the service: admission closes immediately (Submit
// returns ErrDraining), queued and running jobs are given until ctx
// expires to finish, and past that every remaining job is cancelled —
// running ones via their contexts, queued ones directly — before Shutdown
// waits out the pool and returns. The executor pool's goroutines are gone
// when it returns; the error is ctx's when the drain had to force-cancel.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.cond.Broadcast()
	m.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		m.execWg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
	}

	// Force the drain: stop dispatching queued work, cancel what runs.
	m.mu.Lock()
	m.aborting = true
	var queued []*Job
	for p := Priority(0); p < numPriorities; p++ {
		queued = append(queued, m.queues[p]...)
		m.queues[p] = nil
	}
	m.queued = 0
	var running []*Job
	for _, j := range m.jobs {
		if j.State() == StateRunning {
			running = append(running, j)
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	for _, j := range queued {
		j.mu.Lock()
		if j.state == StateQueued {
			j.state = StateCancelled
			j.err = context.Canceled
			j.finished = time.Now()
			close(j.done)
			m.mTerminal[StateCancelled].Inc()
		}
		j.mu.Unlock()
	}
	for _, j := range running {
		j.mu.Lock()
		j.cancelReq = true
		if j.cancelFn != nil {
			j.cancelFn()
		}
		j.mu.Unlock()
	}
	<-drained
	return ctx.Err()
}
