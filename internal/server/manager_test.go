package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"runtime"
	"testing"
	"time"

	castencil "castencil"
)

// waitGoroutines fails the test if the goroutine count does not settle back
// to at most base within 15s (cancellation and shutdown must not leak; the
// generous window absorbs race-detector scheduling on a loaded 1-CPU host).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, j *Job, want State, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if s := j.State(); s == want {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s (err: %v)", j.ID, s, want, j.Err())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func shutdownNow(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

func quickSpec(seed uint64) Spec {
	return Spec{Engine: "real", Variant: "ca", N: 64, Tile: 16, Steps: 6, StepSize: 3, Seed: seed, Workers: 1}
}

// gridHash is the determinism fingerprint: sha256 over the grid's
// canonical byte form (the same bytes /result serves).
func gridHash(res *castencil.RealResult) [32]byte {
	return sha256.Sum256(castencil.GridBytes(res.Grid))
}

// TestConcurrentJobsDeterministic is the service's core guarantee: N jobs
// running concurrently under the manager produce bitwise-identical grids to
// direct castencil.Run calls with the same seeds, whatever interleaving the
// executor pool and worker-budget division produce.
func TestConcurrentJobsDeterministic(t *testing.T) {
	seeds := []uint64{1, 7, 42, 7} // includes a duplicate: equal seeds, equal bits
	want := make(map[uint64][32]byte)
	for _, s := range seeds {
		if _, ok := want[s]; ok {
			continue
		}
		cfg := castencil.Config{N: 64, TileRows: 16, P: 1, Steps: 6, StepSize: 3, Init: castencil.HashInit(s)}
		res, err := castencil.Run(castencil.CA, cfg, castencil.WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		want[s] = gridHash(res)
	}

	m := New(Config{MaxJobs: 3, QueueSize: 16})
	defer shutdownNow(t, m)
	var jobs []*Job
	for _, s := range seeds {
		j, err := m.Submit(quickSpec(s))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for i, j := range jobs {
		waitState(t, j, StateDone, 30*time.Second)
		got := gridHash(j.RealResult())
		if got != want[seeds[i]] {
			t.Errorf("job %s (seed %d): grid differs from direct Run", j.ID, seeds[i])
		}
	}
}

// TestQueueFullBackpressure checks the bounded queue rejects explicitly
// instead of blocking: with one busy executor and a full queue, the next
// submit fails with ErrQueueFull and the rejection counter moves.
func TestQueueFullBackpressure(t *testing.T) {
	m := New(Config{MaxJobs: 1, QueueSize: 2})
	// A blocker big enough to outlive three Submit calls.
	blocker, err := m.Submit(Spec{N: 256, Tile: 32, Steps: 400, StepSize: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning, 10*time.Second)
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(quickSpec(1)); err != nil {
			t.Fatalf("queue fill %d: %v", i, err)
		}
	}
	_, err = m.Submit(quickSpec(1))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull submit: got %v, want ErrQueueFull", err)
	}
	if n := m.mRejected.Value(); n != 1 {
		t.Errorf("rejected counter = %d, want 1", n)
	}
	// Cancelling the blocker frees the slot; force-drain cleans the rest.
	if err := m.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expire instantly: exercise the force-cancel path
	_ = m.Shutdown(ctx)
	for _, j := range m.Jobs() {
		if s := j.State(); !s.Terminal() {
			t.Errorf("job %s not terminal after shutdown: %s", j.ID, s)
		}
	}
}

// TestCancelRunningRealJob cancels a real-engine job mid-flight: the job
// must report cancelled promptly (not run to completion) and the manager
// must not leak goroutines.
func TestCancelRunningRealJob(t *testing.T) {
	base := runtime.NumGoroutine()
	m := New(Config{MaxJobs: 1, QueueSize: 4})
	j, err := m.Submit(Spec{N: 256, Tile: 32, Steps: 400, StepSize: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning, 10*time.Second)
	// Let it make some progress so the cancel is genuinely mid-run.
	deadline := time.Now().Add(30 * time.Second)
	for j.progDone.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateCancelled, 30*time.Second)
	var ce *castencil.CancelError
	if !errors.As(j.Err(), &ce) {
		t.Errorf("err = %v, want *CancelError", j.Err())
	} else if ce.Done >= ce.Total {
		t.Errorf("cancelled job completed all %d tasks", ce.Total)
	}
	shutdownNow(t, m)
	waitGoroutines(t, base)
}

// TestCancelRunningSimJob cancels a virtual-time job mid-replay.
func TestCancelRunningSimJob(t *testing.T) {
	m := New(Config{MaxJobs: 1, QueueSize: 4})
	defer shutdownNow(t, m)
	// Big enough that the cancel (issued the moment the job goes running)
	// always lands before the replay completes: the graph build alone
	// outlasts the sub-millisecond gap, and a cancel during build is
	// caught by the engine's entry check, one during replay by its event
	// polling.
	j, err := m.Submit(Spec{Engine: "sim", N: 1024, Tile: 32, Steps: 20, StepSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning, 10*time.Second)
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateCancelled, 30*time.Second)
	if !errors.Is(j.Err(), context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", j.Err())
	}
}

// TestCancelQueuedJob cancels before an executor picks the job up: the job
// goes terminal immediately and never runs.
func TestCancelQueuedJob(t *testing.T) {
	m := New(Config{MaxJobs: 1, QueueSize: 4})
	blocker, err := m.Submit(Spec{N: 256, Tile: 32, Steps: 400, StepSize: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning, 10*time.Second)
	queued, err := m.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if s := queued.State(); s != StateCancelled {
		t.Fatalf("queued job state = %s, want cancelled", s)
	}
	if queued.RealResult() != nil {
		t.Error("cancelled queued job has a result")
	}
	if err := m.Cancel("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown id: got %v, want ErrNotFound", err)
	}
	_ = m.Cancel(blocker.ID)
	shutdownNow(t, m)
}

// TestJobDeadline submits a job whose timeout_ms cannot be met: it must
// stop promptly and report failed with a deadline error.
func TestJobDeadline(t *testing.T) {
	m := New(Config{MaxJobs: 1, QueueSize: 4})
	defer shutdownNow(t, m)
	j, err := m.Submit(Spec{N: 256, Tile: 32, Steps: 400, StepSize: 8, Workers: 1, TimeoutMS: 30})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateFailed, 30*time.Second)
	if !errors.Is(j.Err(), context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", j.Err())
	}
}

// TestPriorityDispatch: with one executor busy, a high-priority job
// submitted after a low-priority one must start first.
func TestPriorityDispatch(t *testing.T) {
	m := New(Config{MaxJobs: 1, QueueSize: 8})
	defer shutdownNow(t, m)
	blocker, err := m.Submit(Spec{N: 128, Tile: 32, Steps: 100, StepSize: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning, 10*time.Second)
	low, err := m.Submit(withPriority(quickSpec(1), "low"))
	if err != nil {
		t.Fatal(err)
	}
	high, err := m.Submit(withPriority(quickSpec(2), "high"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, low, StateDone, 30*time.Second)
	waitState(t, high, StateDone, 30*time.Second)
	high.mu.Lock()
	hs := high.started
	high.mu.Unlock()
	low.mu.Lock()
	ls := low.started
	low.mu.Unlock()
	if !hs.Before(ls) {
		t.Errorf("high started %v, low %v: high should dispatch first", hs, ls)
	}
}

func withPriority(s Spec, p string) Spec { s.Priority = p; return s }

// TestGracefulShutdown drains queued and running work, rejects new
// submissions, and returns with no executor goroutines left.
func TestGracefulShutdown(t *testing.T) {
	base := runtime.NumGoroutine()
	m := New(Config{MaxJobs: 2, QueueSize: 8})
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := m.Submit(quickSpec(uint64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	for _, j := range jobs {
		if s := j.State(); s != StateDone {
			t.Errorf("job %s = %s after graceful drain, want done", j.ID, s)
		}
	}
	if _, err := m.Submit(quickSpec(1)); !errors.Is(err, ErrDraining) {
		t.Errorf("post-shutdown submit: got %v, want ErrDraining", err)
	}
	waitGoroutines(t, base)
}

// TestSpecValidation: bad specs are rejected at admission with a useful
// error, before anything queues.
func TestSpecValidation(t *testing.T) {
	m := New(Config{})
	defer shutdownNow(t, m)
	cases := []Spec{
		{},                                    // no geometry
		{N: 64, Tile: 16, Steps: 4, Nodes: 3}, // not a perfect square
		{N: 64, Tile: 16, Steps: 4, Engine: "gpu"},
		{N: 64, Tile: 16, Steps: 4, Variant: "fancy"},
		{N: 64, Tile: 16, Steps: 4, Plan: "manual"},
		{N: 64, Tile: 16, Steps: 4, Priority: "urgent"},
		{N: 64, Tile: 16, Steps: 4, Sched: "mystery"},
		{N: 64, Tile: 16, Steps: 4, Machine: "Cray-1"},
		{N: 64, Tile: 16, Steps: 4, TimeoutMS: -1},
		{N: 64, Tile: 16, Steps: 4, StepSize: 64, Variant: "ca"},  // step > tile
		{N: 64, Tile: 16, Steps: 4, Wavefront: 64, Variant: "wf"}, // width > tile
	}
	for i, spec := range cases {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("case %d (%+v): accepted, want rejection", i, spec)
		}
	}
	if n := len(m.Jobs()); n != 0 {
		t.Errorf("%d jobs queued from invalid specs", n)
	}
}

// TestAutoPlanJob submits plan=auto: the job must record the planner's
// decision and still produce the exact grid for the chosen configuration.
func TestAutoPlanJob(t *testing.T) {
	m := New(Config{MaxJobs: 1, QueueSize: 4})
	defer shutdownNow(t, m)
	j, err := m.Submit(Spec{Plan: "auto", N: 64, Tile: 16, Steps: 6, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone, 60*time.Second)
	plan := j.Plan()
	if plan == nil {
		t.Fatal("plan=auto job recorded no plan")
	}
	v := j.Snapshot()
	if v.PlanStepSize == nil || *v.PlanStepSize != plan.BestStepSize {
		t.Errorf("view plan step = %v, want %d", v.PlanStepSize, plan.BestStepSize)
	}
	if v.PlanFamily == nil || *v.PlanFamily != plan.BestFamily.String() {
		t.Errorf("view plan family = %v, want %q", v.PlanFamily, plan.BestFamily)
	}
	// Replay the planner's choice directly: grids must match bitwise.
	variant, cfg := castencil.Base, castencil.Config{N: 64, TileRows: 16, P: 1, Steps: 6, Init: castencil.HashInit(3)}
	switch {
	case plan.UseCA():
		variant = castencil.CA
		cfg.StepSize = plan.BestStepSize
	case plan.UseWavefront():
		variant = castencil.WF
		cfg.Wavefront = plan.BestWidth
	}
	res, err := castencil.Run(variant, cfg, castencil.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	got := gridHash(j.RealResult())
	want := gridHash(res)
	if got != want {
		t.Error("plan=auto grid differs from direct run of the planned configuration")
	}
}

// TestWavefrontJob submits variant=wf and checks the service path produces
// the exact grid a direct library run does.
func TestWavefrontJob(t *testing.T) {
	m := New(Config{MaxJobs: 1, QueueSize: 4})
	defer shutdownNow(t, m)
	j, err := m.Submit(Spec{Engine: "real", Variant: "wf", N: 64, Tile: 16, Steps: 8, Wavefront: 4, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone, 60*time.Second)
	cfg := castencil.Config{N: 64, TileRows: 16, P: 1, Steps: 8, Wavefront: 4, Init: castencil.HashInit(5)}
	res, err := castencil.Run(castencil.WF, cfg, castencil.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if gridHash(j.RealResult()) != gridHash(res) {
		t.Error("variant=wf job grid differs from direct run")
	}
}

// TestMetricsWiring: after a mixed workload the registry must expose the
// service families with sane values.
func TestMetricsWiring(t *testing.T) {
	m := New(Config{MaxJobs: 2, QueueSize: 8})
	j1, err := m.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.Submit(Spec{Engine: "sim", N: 64, Tile: 16, Steps: 6, StepSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, StateDone, 30*time.Second)
	waitState(t, j2, StateDone, 30*time.Second)
	shutdownNow(t, m)
	if n := m.mSubmitted.Value(); n != 2 {
		t.Errorf("submitted = %d, want 2", n)
	}
	if n := m.mTerminal[StateDone].Value(); n != 2 {
		t.Errorf("done = %d, want 2", n)
	}
	if m.mTasks.Value() == 0 {
		t.Error("tasks counter never moved")
	}
	var b bytes.Buffer
	if err := m.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, fam := range []string{
		"stencild_jobs_submitted_total", "stencild_jobs_total",
		"stencild_queue_depth", "stencild_jobs_running",
		"stencild_tasks_executed_total", "stencild_job_duration_seconds_bucket",
		"stencild_job_queue_wait_seconds_count",
	} {
		if !bytes.Contains(b.Bytes(), []byte(fam)) {
			t.Errorf("exposition missing family %s\n%s", fam, out)
		}
	}
}

// TestWorkerBudgetDivision: the manager divides its budget across job
// slots and nodes, flooring at one worker.
func TestWorkerBudgetDivision(t *testing.T) {
	m := New(Config{MaxJobs: 2, WorkerBudget: 8})
	defer shutdownNow(t, m)
	for _, tc := range []struct {
		workers, nodes, want int
	}{
		{0, 1, 4},  // 8 / (2*1)
		{0, 4, 1},  // 8 / (2*4)
		{3, 1, 3},  // explicit request wins
		{0, 16, 1}, // floor at 1
	} {
		spec := Spec{N: 64, Tile: 4, Steps: 2, StepSize: 2, Nodes: tc.nodes, Workers: tc.workers}
		b, err := spec.build()
		if err != nil {
			t.Fatalf("nodes=%d: %v", tc.nodes, err)
		}
		if got := m.workersFor(b); got != tc.want {
			t.Errorf("workers=%d nodes=%d: got %d, want %d", tc.workers, tc.nodes, got, tc.want)
		}
	}
}
