package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	castencil "castencil"
)

// Fingerprint is the canonical content address of a spec's result: a sha256
// over the result-affecting subset of the fields, with defaults normalized
// first so every spelling of the same job hashes identically. It is the key
// of the fleet gateway's content-addressed result cache and of its sharded
// routing, so the contract matters:
//
//   - Included (result-affecting): engine, variant, plan, n, tile, nodes,
//     steps, step_size, wavefront, seed. These select what is computed and
//     what the terminal result reports.
//   - Excluded (execution-affecting only): workers, sched, coalesce, steal,
//     transform, ranks — the determinism suites prove the grid is bitwise
//     identical across every value of these (BENCH_2/3/7/8/9), so two specs
//     differing only here are the same result.
//   - Excluded (policy-only): tenant, cache, priority, timeout_ms, fault,
//     machine, ratio. Fault injection is fully masked by the recovery layer
//     (bitwise-equal grids, BENCH_4); machine/ratio price simulations. Jobs
//     whose *reported* result still depends on one of these (sim makespans,
//     plan=auto decisions under a non-default model, injected-fault
//     counters) are marked not cache-safe by CacheSafe instead of widening
//     the key.
//
// Normalization pins the defaults the daemon would apply anyway: empty
// engine -> "real", empty variant -> "ca", nodes 0 -> 1, seed 0 -> 1 (the
// library default HashInit seed).
func (s Spec) Fingerprint() string {
	engine := strings.ToLower(s.Engine)
	if engine == "" || engine == "run" {
		engine = "real"
	}
	variant := strings.ToLower(s.Variant)
	if variant == "" {
		variant = "ca"
	}
	plan := strings.ToLower(s.Plan)
	nodes := s.Nodes
	if nodes == 0 {
		nodes = 1
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	h := sha256.New()
	fmt.Fprintf(h, "castencil-spec-v1|engine=%s|variant=%s|plan=%s|n=%d|tile=%d|nodes=%d|steps=%d|step_size=%d|wavefront=%d|seed=%d",
		engine, variant, plan, s.N, s.Tile, nodes, s.Steps, s.StepSize, s.Wavefront, seed)
	return hex.EncodeToString(h.Sum(nil))
}

// CacheSafe reports whether Fingerprint fully determines the terminal
// result this spec would report, i.e. whether a cached result may be served
// in place of re-execution. The grid itself is always a pure function of
// the fingerprint; what disqualifies a spec is a *reported* payload that
// depends on excluded fields:
//
//   - sim jobs: the makespan/GFLOPS depend on machine and ratio, which the
//     fingerprint excludes;
//   - plan=auto with a non-default machine or ratio: the planner's family
//     decision (and hence the reported counters) depends on the model;
//   - fault injection: the grid is provably identical but the retransmit
//     counters are the experiment, so a faulted run must execute;
//   - distributed jobs (ranks > 0): they must reach rank 0 of a live mesh;
//   - cache "bypass": the client asked for re-execution.
func (s Spec) CacheSafe() bool {
	engine := strings.ToLower(s.Engine)
	if engine != "" && engine != "real" && engine != "run" {
		return false
	}
	if strings.ToLower(s.Cache) == CacheBypass {
		return false
	}
	if s.Ranks > 0 {
		return false
	}
	if plan, err := castencil.ParseFaultPlan(s.Fault); err != nil || plan != nil {
		return false
	}
	if strings.ToLower(s.Plan) == "auto" && (s.Machine != "" || s.Ratio > 0) {
		return false
	}
	return true
}

// CacheBypass is the spec "cache" spelling that forces re-execution at the
// fleet gateway (the daemon itself runs every admitted job regardless).
const CacheBypass = "bypass"

// Validate checks a spec exactly the way admission would — every string
// knob through its canonical parser, geometry through Config.Partition —
// without queueing anything. The fleet gateway uses it to answer 400 at its
// own front door instead of shipping a doomed spec across the fleet.
func (s Spec) Validate() error {
	_, err := s.build()
	return err
}
