package server

import (
	"context"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	castencil "castencil"
)

// connectMesh brings up a 2-rank loopback mesh: listeners are bound first
// so both addresses are known before either rank dials.
func connectMesh(t *testing.T) [2]*castencil.NetTransport {
	t.Helper()
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	var ts [2]*castencil.NetTransport
	var errs [2]error
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ts[r], errs[r] = castencil.NetConnect(r, addrs, castencil.NetOptions{Listener: lns[r]})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", r, err)
		}
	}
	t.Cleanup(func() {
		ts[0].Close()
		ts[1].Close()
	})
	return ts
}

// TestDistributedJobMatchesSingleProcess is the service-level parity check:
// a ranks=2 job submitted to rank 0's manager — spec broadcast over the
// mesh, follower executing it through RunFollower — produces a grid
// bitwise identical to the same spec run single-process, and the follower
// registers the broadcast in its own job table.
func TestDistributedJobMatchesSingleProcess(t *testing.T) {
	ts := connectMesh(t)
	lead := New(Config{MaxJobs: 1, WorkerBudget: 2, Transport: ts[0]})
	fol := New(Config{MaxJobs: 1, WorkerBudget: 2, Transport: ts[1]})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	folDone := make(chan struct{})
	go func() {
		defer close(folDone)
		_ = fol.RunFollower(ctx, ts[1])
	}()

	spec := quickSpec(7)
	spec.Nodes = 4
	spec.Coalesce = "step"
	spec.Ranks = 2
	j, err := lead.Submit(spec)
	if err != nil {
		t.Fatalf("submit distributed: %v", err)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("distributed job did not finish")
	}
	if j.State() != StateDone {
		t.Fatalf("distributed job %s: %v", j.State(), j.Err())
	}
	res := j.RealResult()
	if res == nil || res.Grid == nil {
		t.Fatal("rank 0's distributed result must carry the gathered grid")
	}

	single := quickSpec(7)
	single.Nodes = 4
	single.Coalesce = "step"
	j2, err := lead.Submit(single)
	if err != nil {
		t.Fatalf("submit single: %v", err)
	}
	<-j2.Done()
	if j2.State() != StateDone {
		t.Fatalf("single job %s: %v", j2.State(), j2.Err())
	}
	if gridHash(res) != gridHash(j2.RealResult()) {
		t.Error("distributed grid differs from single-process grid")
	}
	// Rank 0 folds every rank's counters at the drain gather, so the
	// distributed job's wire accounting equals the single-process run's.
	if a, b := res.Exec.Messages, j2.RealResult().Exec.Messages; a != b {
		t.Errorf("messages: distributed %d != single %d", a, b)
	}
	if a, b := res.Exec.BundlesSent, j2.RealResult().Exec.BundlesSent; a != b {
		t.Errorf("bundles: distributed %d != single %d", a, b)
	}

	// The follower saw the broadcast: one job in its table, done, local
	// counters but no grid.
	var fj *Job
	for _, cand := range fol.Jobs() {
		fj = cand
	}
	if fj == nil {
		t.Fatal("follower registered no job for the broadcast")
	}
	select {
	case <-fj.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("follower job did not finish")
	}
	if fj.State() != StateDone {
		t.Fatalf("follower job %s: %v", fj.State(), fj.Err())
	}
	fres := fj.RealResult()
	if fres == nil {
		t.Fatal("follower job has no result")
	}
	if fres.Grid != nil {
		t.Error("follower result must not carry a grid")
	}
	if fres.Exec.Messages <= 0 || fres.Exec.Messages >= res.Exec.Messages {
		t.Errorf("follower local messages %d should be a proper slice of the global %d", fres.Exec.Messages, res.Exec.Messages)
	}
	if r := buildResult(fj, true); r.GridSHA256 != "" || r.GridData != "" {
		t.Error("follower /result must omit the grid fingerprint")
	}

	if err := lead.Shutdown(context.Background()); err != nil {
		t.Errorf("lead shutdown: %v", err)
	}
	cancel()
	select {
	case <-folDone:
	case <-time.After(5 * time.Second):
		t.Fatal("follower loop did not stop on cancel")
	}
}

// TestDistributedAdmission covers the mesh-aware admission rules: ranks
// jobs need a transport, must match the mesh size, and go to rank 0 only.
func TestDistributedAdmission(t *testing.T) {
	plain := New(Config{MaxJobs: 1})
	spec := quickSpec(1)
	spec.Nodes = 4
	spec.Ranks = 2
	if _, err := plain.Submit(spec); err == nil || !strings.Contains(err.Error(), "-ranks") {
		t.Errorf("transportless distributed submit: got %v", err)
	}
	bad := spec
	bad.Ranks = 1
	if _, err := plain.Submit(bad); err == nil {
		t.Error("ranks=1 must be rejected")
	}
	bad.Ranks = 2
	bad.Engine = "sim"
	if _, err := plain.Submit(bad); err == nil || !strings.Contains(err.Error(), "real engine") {
		t.Errorf("sim distributed submit: got %v", err)
	}
	_ = plain.Shutdown(context.Background())

	ts := connectMesh(t)
	lead := New(Config{MaxJobs: 1, Transport: ts[0]})
	fol := New(Config{MaxJobs: 1, Transport: ts[1]})
	mismatch := spec
	mismatch.Ranks = 3
	if _, err := lead.Submit(mismatch); err == nil || !strings.Contains(err.Error(), "mesh") {
		t.Errorf("mesh-size mismatch: got %v", err)
	}
	if _, err := fol.Submit(spec); err == nil || !strings.Contains(err.Error(), "rank 0") {
		t.Errorf("follower submit: got %v", err)
	}
	if err := fol.RunFollower(context.Background(), ts[0]); err == nil {
		t.Error("RunFollower on rank 0's transport must refuse")
	}
	_ = lead.Shutdown(context.Background())
	_ = fol.Shutdown(context.Background())
}

// TestStealAdmission covers the "steal" spec field: resolved with the
// canonical parser at admission, refused outside distributed jobs, and
// carried into the resolved buildSpec so rank 0 and every follower derive
// the identical policy from the broadcast bytes.
func TestStealAdmission(t *testing.T) {
	spec := quickSpec(1)
	spec.Steal = "greedy"
	if _, err := spec.build(); err == nil || !strings.Contains(err.Error(), "distributed") {
		t.Errorf("single-process steal spec: got %v", err)
	}
	spec.Nodes = 4
	spec.Ranks = 2
	spec.Steal = "sneaky"
	if _, err := spec.build(); err == nil {
		t.Error("unknown steal mode accepted")
	}
	for name, want := range map[string]castencil.StealMode{
		"": castencil.StealOff, "off": castencil.StealOff,
		"greedy": castencil.StealGreedy, "gated": castencil.StealGated,
	} {
		spec.Steal = name
		b, err := spec.build()
		if err != nil {
			t.Fatalf("steal=%q: %v", name, err)
		}
		if b.steal != want {
			t.Errorf("steal=%q resolved to %v, want %v", name, b.steal, want)
		}
	}
}

// TestHealthzTransport checks the daemon's liveness surface of the mesh:
// all ranks connected reports 200 with the transport line; a vanished peer
// flips it to 503 degraded.
func TestHealthzTransport(t *testing.T) {
	ts := connectMesh(t)
	lead := New(Config{MaxJobs: 1, Transport: ts[0]})
	h := Handler(lead)

	get := func() (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		return rec.Code, rec.Body.String()
	}
	code, body := get()
	if code != 200 || !strings.Contains(body, "transport: rank 0, 2/2 ranks connected") {
		t.Errorf("healthy mesh: got %d %q", code, body)
	}

	ts[1].Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body = get()
		if code == 503 && strings.Contains(body, "1/2 ranks connected") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mesh loss not reflected: got %d %q", code, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !strings.Contains(body, "degraded") {
		t.Errorf("degraded mesh body: %q", body)
	}
	_ = lead.Shutdown(context.Background())
}
