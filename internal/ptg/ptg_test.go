package ptg

import (
	"strings"
	"testing"
)

func id(class string, i, j, k int) TaskID { return TaskID{Class: class, I: i, J: j, K: k} }

func TestBuilderBasicChain(t *testing.T) {
	b := NewBuilder(2)
	a, err := b.AddTask(Task{ID: id("a", 0, 0, 0), Node: 0, Kind: KindInit})
	if err != nil || a != 0 {
		t.Fatalf("AddTask: %v %v", a, err)
	}
	if _, err := b.AddTask(Task{ID: id("b", 0, 0, 0), Node: 1, Kind: KindInterior}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddDep(id("b", 0, 0, 0), id("a", 0, 0, 0), Dep{Bytes: 64}); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Tasks) != 2 {
		t.Fatalf("tasks = %d", len(g.Tasks))
	}
	if len(g.Tasks[0].Succs) != 1 || g.Tasks[0].Succs[0] != 1 {
		t.Errorf("successor list wrong: %v", g.Tasks[0].Succs)
	}
	roots := g.Roots()
	if len(roots) != 1 || roots[0] != 0 {
		t.Errorf("roots = %v", roots)
	}
	c, bytes := g.CrossNodeDeps()
	if c != 1 || bytes != 64 {
		t.Errorf("cross deps = %d/%d, want 1/64", c, bytes)
	}
}

func TestBuilderRejectsDuplicates(t *testing.T) {
	b := NewBuilder(1)
	if _, err := b.AddTask(Task{ID: id("a", 1, 2, 3), Node: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddTask(Task{ID: id("a", 1, 2, 3), Node: 0}); err == nil {
		t.Error("duplicate task must be rejected")
	}
}

func TestBuilderRejectsBadNode(t *testing.T) {
	b := NewBuilder(2)
	if _, err := b.AddTask(Task{ID: id("a", 0, 0, 0), Node: 2}); err == nil {
		t.Error("node out of range must be rejected")
	}
	if _, err := b.AddTask(Task{ID: id("b", 0, 0, 0), Node: -1}); err == nil {
		t.Error("negative node must be rejected")
	}
}

func TestBuilderRejectsUnknownEndpoints(t *testing.T) {
	b := NewBuilder(1)
	b.AddTask(Task{ID: id("a", 0, 0, 0), Node: 0})
	if err := b.AddDep(id("a", 0, 0, 0), id("ghost", 0, 0, 0), Dep{}); err == nil {
		t.Error("unknown producer must be rejected")
	}
	if err := b.AddDep(id("ghost", 0, 0, 0), id("a", 0, 0, 0), Dep{}); err == nil {
		t.Error("unknown consumer must be rejected")
	}
}

func TestBuilderRejectsCrossNodeDepWithoutBytes(t *testing.T) {
	b := NewBuilder(2)
	b.AddTask(Task{ID: id("a", 0, 0, 0), Node: 0})
	b.AddTask(Task{ID: id("b", 0, 0, 0), Node: 1})
	if err := b.AddDep(id("b", 0, 0, 0), id("a", 0, 0, 0), Dep{}); err == nil {
		t.Error("cross-node dep without payload must be rejected")
	}
	// Local deps are fine without payload.
	b.AddTask(Task{ID: id("c", 0, 0, 0), Node: 0})
	if err := b.AddDep(id("c", 0, 0, 0), id("a", 0, 0, 0), Dep{}); err != nil {
		t.Errorf("local dep rejected: %v", err)
	}
}

func TestBuildDetectsCycle(t *testing.T) {
	b := NewBuilder(1)
	b.AddTask(Task{ID: id("a", 0, 0, 0), Node: 0})
	b.AddTask(Task{ID: id("b", 0, 0, 0), Node: 0})
	b.AddDep(id("b", 0, 0, 0), id("a", 0, 0, 0), Dep{})
	b.AddDep(id("a", 0, 0, 0), id("b", 0, 0, 0), Dep{})
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestComputeStats(t *testing.T) {
	// Diamond: a -> b, a -> c, b -> d, c -> d over 2 nodes.
	b := NewBuilder(2)
	b.AddTask(Task{ID: id("a", 0, 0, 0), Node: 0, Kind: KindInit})
	b.AddTask(Task{ID: id("b", 0, 0, 0), Node: 0, Kind: KindInterior})
	b.AddTask(Task{ID: id("c", 0, 0, 0), Node: 1, Kind: KindBoundary})
	b.AddTask(Task{ID: id("d", 0, 0, 0), Node: 1, Kind: KindBoundary})
	b.AddDep(id("b", 0, 0, 0), id("a", 0, 0, 0), Dep{})
	b.AddDep(id("c", 0, 0, 0), id("a", 0, 0, 0), Dep{Bytes: 8})
	b.AddDep(id("d", 0, 0, 0), id("b", 0, 0, 0), Dep{Bytes: 16})
	b.AddDep(id("d", 0, 0, 0), id("c", 0, 0, 0), Dep{})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := g.ComputeStats()
	if s.Tasks != 4 || s.Deps != 4 {
		t.Errorf("tasks/deps = %d/%d, want 4/4", s.Tasks, s.Deps)
	}
	if s.CrossDeps != 2 || s.CrossBytes != 24 {
		t.Errorf("cross = %d/%d, want 2/24", s.CrossDeps, s.CrossBytes)
	}
	if s.CriticalPathTasks != 3 {
		t.Errorf("critical path = %d, want 3 (a,b,d)", s.CriticalPathTasks)
	}
	if s.TasksPerNodeMin != 2 || s.TasksPerNodeMax != 2 {
		t.Errorf("per-node = %d..%d, want 2..2", s.TasksPerNodeMin, s.TasksPerNodeMax)
	}
	if s.KindCounts["boundary"] != 2 || s.KindCounts["interior"] != 1 || s.KindCounts["init"] != 1 {
		t.Errorf("kind counts = %v", s.KindCounts)
	}
}

func TestMultipleDepsFromSameProducer(t *testing.T) {
	// A CA boundary task consumes both an edge and a corner flow from the
	// same producer: the successor list must stay deduplicated and the
	// topological machinery must still see both dependencies.
	b := NewBuilder(2)
	b.AddTask(Task{ID: id("p", 0, 0, 0), Node: 0})
	b.AddTask(Task{ID: id("c", 0, 0, 0), Node: 1})
	b.AddDep(id("c", 0, 0, 0), id("p", 0, 0, 0), Dep{Bytes: 8})
	b.AddDep(id("c", 0, 0, 0), id("p", 0, 0, 0), Dep{Bytes: 16})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Tasks[0].Succs) != 1 {
		t.Errorf("Succs = %v, want a single deduplicated entry", g.Tasks[0].Succs)
	}
	if len(g.Tasks[1].Deps) != 2 {
		t.Errorf("Deps = %d, want 2", len(g.Tasks[1].Deps))
	}
	s := g.ComputeStats()
	if s.CriticalPathTasks != 2 {
		t.Errorf("critical path = %d, want 2", s.CriticalPathTasks)
	}
	if s.CrossDeps != 2 || s.CrossBytes != 24 {
		t.Errorf("cross = %d/%d, want 2/24", s.CrossDeps, s.CrossBytes)
	}
}

func TestLookup(t *testing.T) {
	b := NewBuilder(1)
	b.AddTask(Task{ID: id("x", 3, 1, 4), Node: 0})
	g, _ := b.Build()
	if i, ok := g.Lookup(id("x", 3, 1, 4)); !ok || i != 0 {
		t.Errorf("Lookup = %d,%v", i, ok)
	}
	if _, ok := g.Lookup(id("x", 0, 0, 0)); ok {
		t.Error("missing task found")
	}
}

func TestKindString(t *testing.T) {
	if KindBoundary.String() != "boundary" || KindInterior.String() != "interior" || KindInit.String() != "init" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should print its number")
	}
}

func TestTaskIDString(t *testing.T) {
	if got := id("jacobi", 1, 2, 3).String(); got != "jacobi(1,2,3)" {
		t.Errorf("TaskID.String = %q", got)
	}
}

func TestWriteDOT(t *testing.T) {
	b := NewBuilder(2)
	b.AddTask(Task{ID: id("a", 0, 0, 0), Node: 0, Kind: KindInit})
	b.AddTask(Task{ID: id("b", 0, 0, 0), Node: 0, Kind: KindInterior})
	b.AddTask(Task{ID: id("c", 0, 0, 0), Node: 1, Kind: KindBoundary})
	b.AddDep(id("b", 0, 0, 0), id("a", 0, 0, 0), Dep{})
	b.AddDep(id("c", 0, 0, 0), id("b", 0, 0, 0), Dep{Bytes: 128})
	g, _ := b.Build()
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "test"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph", "cluster_node0", "cluster_node1",
		"a(0,0,0)", "style=bold, color=red, label=\"128B\"",
		"lightsalmon", "lightgrey",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
