package ptg

import (
	"errors"
	"strings"
	"testing"
)

// chainGraph builds a 3-task chain a -> b -> c on one node.
func chainGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(1)
	a := TaskID{Class: "a"}
	m := TaskID{Class: "m"}
	z := TaskID{Class: "z"}
	for _, id := range []TaskID{a, m, z} {
		if _, err := b.AddTask(Task{ID: id, Kind: KindInterior}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddDep(m, a, Dep{}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddDep(z, m, Dep{}); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// fnPass adapts a function to the Transform interface for tests.
type fnPass struct {
	name string
	fn   func(*Graph) (*Graph, error)
}

func (p fnPass) Name() string                   { return p.name }
func (p fnPass) Apply(g *Graph) (*Graph, error) { return p.fn(g) }

// TestApplyTransformsPipeline runs two passes in order — one that doubles
// every task's priority and one that appends a sentinel task — and checks
// the output graph reflects both, with fresh stats.
func TestApplyTransformsPipeline(t *testing.T) {
	g := chainGraph(t)
	boost := fnPass{"boost", func(in *Graph) (*Graph, error) {
		nb := NewBuilder(in.NumNodes)
		nb.PresetSlots(in.NodeSlots, in.NodeBufSlots)
		for i := range in.Tasks {
			task := in.Tasks[i]
			task.Priority *= 2
			task.Priority += 5
			if _, err := nb.AddTask(task); err != nil {
				return nil, err
			}
		}
		for i := range in.Tasks {
			for _, d := range in.Tasks[i].Deps {
				if err := nb.AddDep(in.Tasks[i].ID, in.Tasks[d.Producer].ID, d); err != nil {
					return nil, err
				}
			}
		}
		return nb.Build()
	}}
	sentinel := fnPass{"sentinel", func(in *Graph) (*Graph, error) {
		nb := NewBuilder(in.NumNodes)
		nb.PresetSlots(in.NodeSlots, in.NodeBufSlots)
		for i := range in.Tasks {
			if _, err := nb.AddTask(in.Tasks[i]); err != nil {
				return nil, err
			}
		}
		if _, err := nb.AddTask(Task{ID: TaskID{Class: "end"}, Kind: KindInterior}); err != nil {
			return nil, err
		}
		for i := range in.Tasks {
			for _, d := range in.Tasks[i].Deps {
				if err := nb.AddDep(in.Tasks[i].ID, in.Tasks[d.Producer].ID, d); err != nil {
					return nil, err
				}
			}
		}
		if err := nb.AddDep(TaskID{Class: "end"}, TaskID{Class: "z"}, Dep{}); err != nil {
			return nil, err
		}
		return nb.Build()
	}}
	out, err := ApplyTransforms(g, boost, sentinel)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tasks) != len(g.Tasks)+1 {
		t.Fatalf("pipeline output has %d tasks, want %d", len(out.Tasks), len(g.Tasks)+1)
	}
	for i := range g.Tasks {
		if out.Tasks[i].Priority != g.Tasks[i].Priority*2+5 {
			t.Fatalf("task %d priority %d, want %d", i, out.Tasks[i].Priority, g.Tasks[i].Priority*2+5)
		}
	}
	s := out.ComputeStats()
	if s.Tasks != len(out.Tasks) || s.CriticalPathTasks != 4 {
		t.Fatalf("stats stale after pipeline: %+v", s)
	}
	// The input graph must be untouched.
	if gs := g.ComputeStats(); gs.Tasks != 3 {
		t.Fatalf("input graph mutated: %+v", gs)
	}
}

// TestApplyTransformsIdentity allows a pass to return its input unchanged.
func TestApplyTransformsIdentity(t *testing.T) {
	g := chainGraph(t)
	out, err := ApplyTransforms(g, fnPass{"id", func(in *Graph) (*Graph, error) { return in, nil }})
	if err != nil {
		t.Fatal(err)
	}
	if out != g {
		t.Error("identity pass did not return the input graph")
	}
}

// TestApplyTransformsErrorWrapping checks a failing pass is reported with
// its name and the underlying error preserved for errors.Is.
func TestApplyTransformsErrorWrapping(t *testing.T) {
	g := chainGraph(t)
	sentinelErr := errors.New("boom")
	_, err := ApplyTransforms(g, fnPass{"exploder", func(*Graph) (*Graph, error) { return nil, sentinelErr }})
	if err == nil {
		t.Fatal("no error from a failing pass")
	}
	if !errors.Is(err, sentinelErr) {
		t.Errorf("wrapped error lost the cause: %v", err)
	}
	if !strings.Contains(err.Error(), "exploder") {
		t.Errorf("error does not name the pass: %v", err)
	}
	if _, err := ApplyTransforms(g, fnPass{"nilpass", func(*Graph) (*Graph, error) { return nil, nil }}); err == nil {
		t.Error("nil output graph accepted")
	}
}

// TestApplyTransformsRejectsCycle checks a pass that introduces a
// dependency cycle is caught by the rebuild's Kahn validation.
func TestApplyTransformsRejectsCycle(t *testing.T) {
	g := chainGraph(t)
	cyclic := fnPass{"cycle", func(in *Graph) (*Graph, error) {
		nb := NewBuilder(in.NumNodes)
		for i := range in.Tasks {
			if _, err := nb.AddTask(in.Tasks[i]); err != nil {
				return nil, err
			}
		}
		for i := range in.Tasks {
			for _, d := range in.Tasks[i].Deps {
				if err := nb.AddDep(in.Tasks[i].ID, in.Tasks[d.Producer].ID, d); err != nil {
					return nil, err
				}
			}
		}
		// Close the loop: a depends on z.
		if err := nb.AddDep(TaskID{Class: "a"}, TaskID{Class: "z"}, Dep{}); err != nil {
			return nil, err
		}
		return nb.Build()
	}}
	if _, err := ApplyTransforms(g, cyclic); err == nil {
		t.Fatal("cyclic rewrite passed validation")
	}
}

// TestPresetSlotsCarriesAllocations checks a rewrite seeded with
// PresetSlots continues slot numbering where the original builder stopped,
// so closures compiled against old slot indices stay valid and new
// allocations never collide.
func TestPresetSlotsCarriesAllocations(t *testing.T) {
	b := NewBuilder(2)
	if _, err := b.AddTask(Task{ID: TaskID{Class: "a"}}); err != nil {
		t.Fatal(err)
	}
	s0 := b.AllocSlot(0)
	s1 := b.AllocSlot(0)
	bs0 := b.AllocBufSlot(1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if s0 != 0 || s1 != 1 || bs0 != 0 {
		t.Fatalf("unexpected slot layout: %d %d %d", s0, s1, bs0)
	}
	nb := NewBuilder(g.NumNodes)
	nb.PresetSlots(g.NodeSlots, g.NodeBufSlots)
	if next := nb.AllocSlot(0); next != 2 {
		t.Errorf("AllocSlot(0) after preset = %d, want 2", next)
	}
	if next := nb.AllocBufSlot(1); next != 1 {
		t.Errorf("AllocBufSlot(1) after preset = %d, want 1", next)
	}
	if next := nb.AllocSlot(1); next != 0 {
		t.Errorf("AllocSlot(1) after preset = %d, want 0", next)
	}
}

// TestStatsEagerAndInvalidate checks Build memoizes stats eagerly, the
// memo survives repeated reads, and InvalidateStats forces a fresh
// recomputation that matches.
func TestStatsEagerAndInvalidate(t *testing.T) {
	g := chainGraph(t)
	s1 := g.ComputeStats()
	s2 := g.ComputeStats()
	if s1.Tasks != 3 || s1.Deps != 2 || s1.CriticalPathTasks != 3 {
		t.Fatalf("unexpected stats: %+v", s1)
	}
	if s2.Tasks != s1.Tasks || s2.CriticalPathTasks != s1.CriticalPathTasks {
		t.Fatalf("memoized read diverged: %+v vs %+v", s1, s2)
	}
	// The returned copy owns its map: mutating it must not poison the memo.
	s1.KindCounts["interior"] = -1
	if g.ComputeStats().KindCounts["interior"] == -1 {
		t.Fatal("caller mutation leaked into the stats memo")
	}
	g.InvalidateStats()
	if s3 := g.ComputeStats(); s3.Tasks != 3 || s3.KindCounts["interior"] != 3 {
		t.Fatalf("recomputation after invalidate diverged: %+v", s3)
	}
}
