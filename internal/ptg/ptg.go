// Package ptg is the parameterized-task-graph abstraction of this
// repository's PaRSEC analog. Algorithms (the base and CA stencils, see
// internal/core) are expressed as graphs of task instances with explicit
// dataflow dependencies; communication is implied by dependencies that cross
// node boundaries, exactly like PaRSEC's PTG/JDF representation where the
// runtime infers all messages from the task expressions.
//
// Two engines consume a Graph: internal/runtime executes it for real
// (concurrent workers per node, byte-serialized inter-node messages) and
// internal/desim replays it in virtual time against machine cost models.
package ptg

import (
	"fmt"
	"sort"
)

// TaskID names a task instance: a class (e.g. "jacobi") plus up to three
// integer parameters (tile row, tile column, step for the stencil graphs).
type TaskID struct {
	Class   string
	I, J, K int
}

func (id TaskID) String() string {
	return fmt.Sprintf("%s(%d,%d,%d)", id.Class, id.I, id.J, id.K)
}

// Kind classifies tasks for cost modeling and trace rendering. The paper's
// Figure 10 distinguishes boundary tasks (tiles that exchange data with
// remote nodes) from interior tasks.
type Kind uint8

const (
	KindInit Kind = iota
	KindInterior
	KindBoundary
	// KindComm labels communication-goroutine activity in traces (packing
	// and fan-out on the dedicated comm thread); graph tasks never carry it.
	KindComm
	// KindFault labels fault-injection and recovery activity in traces
	// (drops, duplicates, delays, retransmits, dedup, pauses); graph tasks
	// never carry it.
	KindFault
	// KindInner and KindBorder label the products of the inner/border
	// splitting transform (see Transform and core's split pass): an inner
	// task updates the part of a tile that needs no freshly arrived halo
	// data — it can run while messages are in flight — while a border task
	// is the thin strip gated on one halo arrival. They appear after
	// KindFault so trace CSVs written before the transform existed keep
	// their kind encoding.
	KindInner
	KindBorder
	NumKinds
)

var kindNames = [NumKinds]string{"init", "interior", "boundary", "comm", "fault", "inner", "border"}

func (k Kind) String() string {
	if k >= NumKinds {
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
	return kindNames[k]
}

// Env is the node-local execution environment handed to task bodies by the
// real runtime. Get/Put/Take operate on the node's private store; tasks of
// one node never see another node's store (node isolation — the analog of
// distributed memory).
type Env interface {
	NodeID() int
	// Put stores a write-once value under a key. Putting an existing key
	// panics: dataflow values are produced exactly once.
	Put(key, val any)
	// Take removes and returns a value, panicking if absent: by
	// construction a task only runs when its inputs have been produced.
	Take(key any) any
	// Get returns a value without removing it (nil if absent).
	Get(key any) any
}

// SlotEnv is an optional extension of Env offered by engines that support
// precomputed key slots. When a graph's dataflow keys are static (known at
// build time, as in the stencil graphs), the builder can reserve integer
// slots via Builder.AllocSlot/AllocBufSlot and task bodies can exchange
// values through direct array indexing instead of the mutex-protected key
// map — removing per-Put/Take lock and hash traffic from the hot path.
// Bodies must fall back to the keyed Env methods when the assertion to
// SlotEnv fails, so graphs stay runnable on engines without slot support.
//
// Slot accesses carry no locking of their own: the runtime's scheduling
// edges (ready-queue handoff, send/inbox channels, pending-counter atomics)
// already order every producer before its consumer.
type SlotEnv interface {
	Env
	// PutSlot stores a write-once value in a general slot (persistent
	// state such as tile buffers). Reusing an occupied slot panics.
	PutSlot(slot int32, v any)
	// GetSlot returns a general slot's value without removing it.
	GetSlot(slot int32) any
	// PutBufSlot deposits a message payload in a buffer slot. Occupied
	// slots panic (a duplicated delivery or a dataflow bug).
	PutBufSlot(slot int32, b []byte)
	// TakeBufSlot removes and returns a buffer slot's payload, panicking
	// when empty (consumption before production).
	TakeBufSlot(slot int32) []byte
}

// CostHint carries the quantities the discrete-event simulator needs to
// price a task with the machine's kernel model. All counts are in grid
// points.
type CostHint struct {
	// Rows, Cols are the tile's interior extent (for working-set / cache
	// modeling).
	Rows, Cols int
	// Updates is the nominal tile update count (mb*nb) — subject to the
	// paper's kernel-adjustment ratio.
	Updates int
	// RedundantUpdates is the extra trapezoid work a CA boundary task
	// performs on ghost regions. The paper's ratio-tuned experiments
	// exclude it ("we simulate the kernel time without the extra
	// computation"); real-kernel runs include it.
	RedundantUpdates int
	// CopyPoints counts halo points packed/unpacked by this task (the
	// "extra copies in the body" behind the CA version's larger median
	// kernel time in Fig. 10).
	CopyPoints int
}

// Dep is one input dependency of a task. If the producer lives on a
// different node the dependency carries a payload of Bytes bytes and, when
// the graph is built with bodies, Pack/Unpack closures that serialize the
// value out of the producer node's store and deposit it into the consumer
// node's store.
type Dep struct {
	Producer int32 // task index
	Bytes    int   // payload size; 0 for pure-ordering local deps
	Pack     func(env Env) []byte
	Unpack   func(env Env, data []byte)
}

// Migration makes a task stealable across ranks of a distributed run: it
// describes how to serialize the task's entire input state out of its home
// node's store (PackIn), materialize it on a remote rank (Deposit), ship the
// results back (PackOut) and install them at home exactly as a local
// execution would have (Commit). A task with a nil Mig never migrates.
//
// InBytes and OutBytes are the exact payload sizes PackIn and PackOut
// produce; they are populated even on cost-only graphs so the virtual-time
// engine prices migrations identically to the real one.
type Migration struct {
	InBytes  int
	OutBytes int
	// PackIn serializes the task's input state (tile contents plus every
	// already-delivered input payload, which it consumes) from the home
	// store. Runs on the victim rank before the task leaves.
	PackIn func(env Env) []byte
	// Deposit installs a PackIn payload into the thief rank's store for the
	// task's node, creating state as needed, so Run can execute unchanged.
	Deposit func(env Env, data []byte)
	// PackOut serializes (and consumes) everything Run produced on the
	// thief: the post-step tile contents and every output payload.
	PackOut func(env Env) []byte
	// Commit installs a PackOut payload into the home store — after it the
	// store is bitwise-identical to a local execution's, and the task's
	// successors may be released.
	Commit func(env Env, data []byte)
}

// Task is one node of the graph.
type Task struct {
	ID       TaskID
	Node     int32
	Kind     Kind
	Priority int32 // higher runs earlier when schedulers must choose
	// Epoch is the task's logical exchange epoch (the iteration index for
	// the stencil graphs). Cross-node payloads produced by tasks of one
	// node in the same epoch toward one destination may be coalesced into
	// a single halo bundle (see Graph.Bundles); graphs that leave Epoch at
	// zero everywhere simply do not admit a bundle plan.
	Epoch int32
	Hint  CostHint
	Deps  []Dep
	Succs []int32 // consumer task indices, filled by Build
	Run   func(env Env)
	// Mig, when non-nil, lets a distributed run migrate this task to
	// another rank (see Migration). Kept out of the hot path: engines only
	// consult it on the steal protocol's slow path.
	Mig *Migration
}

// Graph is an immutable task graph over a fixed set of nodes.
type Graph struct {
	NumNodes int
	Tasks    []Task
	// NodeSlots and NodeBufSlots are the per-node counts of general and
	// buffer slots reserved at build time (nil when the graph uses keyed
	// dataflow only). Engines with slot support size their stores from
	// these.
	NodeSlots    []int
	NodeBufSlots []int
	index        map[TaskID]int32
	stats        *Stats
}

// Lookup returns the index of a task by ID.
func (g *Graph) Lookup(id TaskID) (int32, bool) {
	i, ok := g.index[id]
	return i, ok
}

// Roots returns the indices of tasks with no dependencies.
func (g *Graph) Roots() []int32 {
	var out []int32
	for i := range g.Tasks {
		if len(g.Tasks[i].Deps) == 0 {
			out = append(out, int32(i))
		}
	}
	return out
}

// CrossNodeDeps counts dependencies whose producer and consumer live on
// different nodes, and the total payload bytes they carry. It reads the
// stats computed at Build time (see ComputeStats).
func (g *Graph) CrossNodeDeps() (count, bytes int) {
	s := g.ComputeStats()
	return s.CrossDeps, s.CrossBytes
}

// Builder accumulates tasks and dependencies and validates the result.
type Builder struct {
	numNodes int
	tasks    []Task
	index    map[TaskID]int32
	slots    []int
	bufSlots []int
}

// NewBuilder creates a builder for a graph over numNodes nodes.
func NewBuilder(numNodes int) *Builder {
	return &Builder{numNodes: numNodes, index: make(map[TaskID]int32)}
}

// AddTask registers a task instance and returns its index. The Deps and
// Succs fields of the argument are ignored; use AddDep.
func (b *Builder) AddTask(t Task) (int32, error) {
	if _, dup := b.index[t.ID]; dup {
		return 0, fmt.Errorf("ptg: duplicate task %v", t.ID)
	}
	if t.Node < 0 || int(t.Node) >= b.numNodes {
		return 0, fmt.Errorf("ptg: task %v on invalid node %d (have %d)", t.ID, t.Node, b.numNodes)
	}
	t.Deps = nil
	t.Succs = nil
	idx := int32(len(b.tasks))
	b.tasks = append(b.tasks, t)
	b.index[t.ID] = idx
	return idx, nil
}

// AllocSlot reserves a general store slot on a node and returns its index.
// Slots let bodies bypass the keyed store for dataflow values whose keys
// are static at build time (see SlotEnv).
func (b *Builder) AllocSlot(node int32) int32 {
	if b.slots == nil {
		b.slots = make([]int, b.numNodes)
	}
	s := int32(b.slots[node])
	b.slots[node]++
	return s
}

// AllocBufSlot reserves a message-payload buffer slot on a node and returns
// its index.
func (b *Builder) AllocBufSlot(node int32) int32 {
	if b.bufSlots == nil {
		b.bufSlots = make([]int, b.numNodes)
	}
	s := int32(b.bufSlots[node])
	b.bufSlots[node]++
	return s
}

// PresetSlots seeds the builder's per-node slot counters from an existing
// graph's NodeSlots/NodeBufSlots. Rewrite passes (see Transform) reuse the
// original graph's task bodies and Pack/Unpack closures, which address
// store slots by the indices assigned at first build; preseeding keeps
// those indices valid in the rewritten graph while still allowing a pass
// to allocate additional slots on top.
func (b *Builder) PresetSlots(slots, bufSlots []int) {
	if slots != nil {
		b.slots = append([]int(nil), slots...)
	}
	if bufSlots != nil {
		b.bufSlots = append([]int(nil), bufSlots...)
	}
}

// AddDep records that consumer depends on producer. Cross-node dependencies
// must carry a positive payload size; Pack/Unpack may be nil when the graph
// is cost-only (no bodies).
func (b *Builder) AddDep(consumer, producer TaskID, d Dep) error {
	ci, ok := b.index[consumer]
	if !ok {
		return fmt.Errorf("ptg: unknown consumer %v", consumer)
	}
	pi, ok := b.index[producer]
	if !ok {
		return fmt.Errorf("ptg: unknown producer %v", producer)
	}
	if b.tasks[ci].Node != b.tasks[pi].Node && d.Bytes <= 0 {
		return fmt.Errorf("ptg: cross-node dep %v -> %v needs payload bytes", producer, consumer)
	}
	d.Producer = pi
	b.tasks[ci].Deps = append(b.tasks[ci].Deps, d)
	return nil
}

// Build validates the graph (acyclicity via topological sort) and freezes
// it, computing successor lists.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.tasks)
	indeg := make([]int, n)
	for i := range b.tasks {
		t := &b.tasks[i]
		indeg[i] = len(t.Deps)
		for _, d := range t.Deps {
			// A consumer appears once in the producer's successor list even
			// when it has several dependencies on it (e.g. an edge and a
			// corner flow); the engines scan all matching deps per entry.
			succs := b.tasks[d.Producer].Succs
			if n := len(succs); n > 0 && succs[n-1] == int32(i) {
				continue
			}
			b.tasks[d.Producer].Succs = append(succs, int32(i))
		}
	}
	// Kahn's algorithm to verify acyclicity.
	queue := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	visited := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		visited++
		for _, s := range b.tasks[u].Succs {
			for _, d := range b.tasks[s].Deps {
				if d.Producer != u {
					continue
				}
				indeg[s]--
				if indeg[s] == 0 {
					queue = append(queue, s)
				}
			}
		}
	}
	if visited != n {
		return nil, fmt.Errorf("ptg: graph has a dependency cycle (%d of %d tasks reachable)", visited, n)
	}
	g := &Graph{
		NumNodes: b.numNodes, Tasks: b.tasks, index: b.index,
		NodeSlots: b.slots, NodeBufSlots: b.bufSlots,
	}
	// Stats are computed eagerly so transforms cannot leave stale summaries
	// behind: every (re)build refreshes them, and readers share the memo.
	g.stats = g.computeStats()
	b.tasks = nil
	b.index = nil
	return g, nil
}

// Stats summarizes a graph for logging and tests.
type Stats struct {
	Tasks, Deps       int
	CrossDeps         int
	CrossBytes        int
	TasksPerNodeMin   int
	TasksPerNodeMax   int
	KindCounts        map[string]int
	CriticalPathTasks int
}

// ComputeStats returns the graph's summary statistics, including the length
// (in tasks) of the longest dependency chain. Stats are computed eagerly at
// Build() and memoized; a rewrite pass that mutates a graph in place must
// call InvalidateStats (ApplyTransforms handles this). The returned value
// owns its KindCounts map, so callers may mutate it freely.
func (g *Graph) ComputeStats() Stats {
	if g.stats == nil {
		g.stats = g.computeStats()
	}
	s := *g.stats
	kc := make(map[string]int, len(s.KindCounts))
	for k, v := range s.KindCounts {
		kc[k] = v
	}
	s.KindCounts = kc
	return s
}

// InvalidateStats drops the memoized stats so the next ComputeStats (or the
// next Build of a derived graph) recomputes them from the task list.
func (g *Graph) InvalidateStats() {
	g.stats = nil
}

func (g *Graph) computeStats() *Stats {
	s := Stats{KindCounts: make(map[string]int)}
	perNode := make([]int, g.NumNodes)
	depth := make([]int, len(g.Tasks))
	// Tasks are not stored topologically; compute depth by processing in
	// topological order (Kahn again).
	indeg := make([]int, len(g.Tasks))
	for i := range g.Tasks {
		t := &g.Tasks[i]
		s.Deps += len(t.Deps)
		perNode[t.Node]++
		s.KindCounts[t.Kind.String()]++
		indeg[i] = len(t.Deps)
		for _, d := range t.Deps {
			if g.Tasks[d.Producer].Node != t.Node {
				s.CrossDeps++
				s.CrossBytes += d.Bytes
			}
		}
	}
	var queue []int32
	for i := range indeg {
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
			depth[i] = 1
		}
	}
	maxDepth := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if depth[u] > maxDepth {
			maxDepth = depth[u]
		}
		for _, v := range g.Tasks[u].Succs {
			if d := depth[u] + 1; d > depth[v] {
				depth[v] = d
			}
			for _, dep := range g.Tasks[v].Deps {
				if dep.Producer != u {
					continue
				}
				indeg[v]--
				if indeg[v] == 0 {
					queue = append(queue, v)
				}
			}
		}
	}
	s.Tasks = len(g.Tasks)
	s.CriticalPathTasks = maxDepth
	if g.NumNodes > 0 {
		sort.Ints(perNode)
		s.TasksPerNodeMin = perNode[0]
		s.TasksPerNodeMax = perNode[len(perNode)-1]
	}
	return &s
}
