package ptg

import "testing"

func bundleTask(t *testing.T, b *Builder, name string, node, epoch int32) TaskID {
	t.Helper()
	id := TaskID{Class: name}
	if _, err := b.AddTask(Task{ID: id, Node: node, Epoch: epoch}); err != nil {
		t.Fatal(err)
	}
	return id
}

// TestBundlesGroupByTriple checks the planner's grouping and its
// deterministic member order: deps sharing (src node, dst node, producer
// epoch) coalesce, everything else stays apart.
func TestBundlesGroupByTriple(t *testing.T) {
	b := NewBuilder(3)
	// Node 0 producers at epoch 0 and 1; consumers on nodes 1 and 2.
	p0 := bundleTask(t, b, "p0", 0, 0)
	p1 := bundleTask(t, b, "p1", 0, 0)
	p2 := bundleTask(t, b, "p2", 0, 1)
	c0 := bundleTask(t, b, "c0", 1, 0)
	c1 := bundleTask(t, b, "c1", 1, 0)
	c2 := bundleTask(t, b, "c2", 2, 0)
	for _, d := range []struct {
		cons, prod TaskID
		bytes      int
	}{
		{c0, p0, 8},  // bundle (0->1, e0)
		{c1, p1, 16}, // bundle (0->1, e0)
		{c1, p2, 32}, // bundle (0->1, e1): different epoch
		{c2, p0, 8},  // bundle (0->2, e0): different destination
	} {
		if err := b.AddDep(d.cons, d.prod, Dep{Bytes: d.bytes}); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	bundles, err := g.Bundles()
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 3 {
		t.Fatalf("got %d bundles, want 3: %+v", len(bundles), bundles)
	}
	first := bundles[0]
	if first.Src != 0 || first.Dst != 1 || first.Epoch != 0 {
		t.Fatalf("bundle 0 = (%d->%d, e%d), want (0->1, e0)", first.Src, first.Dst, first.Epoch)
	}
	if len(first.Members) != 2 || first.Bytes != 24 {
		t.Fatalf("bundle 0 has %d members, %d bytes; want 2 members, 24 bytes", len(first.Members), first.Bytes)
	}
	if first.WireBytes() != 4*(1+2)+24 {
		t.Fatalf("WireBytes = %d, want %d", first.WireBytes(), 4*3+24)
	}
	// Members must be in task-index order (c0 before c1).
	i0, _ := g.Lookup(c0)
	i1, _ := g.Lookup(c1)
	if first.Members[0].Task != i0 || first.Members[1].Task != i1 {
		t.Fatalf("member order %+v, want tasks [%d %d]", first.Members, i0, i1)
	}
}

// TestBundlesNoCrossDeps returns an empty plan for single-node graphs.
func TestBundlesNoCrossDeps(t *testing.T) {
	b := NewBuilder(1)
	a := bundleTask(t, b, "a", 0, 0)
	c := bundleTask(t, b, "c", 0, 0)
	if err := b.AddDep(c, a, Dep{}); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	bundles, err := g.Bundles()
	if err != nil {
		t.Fatal(err)
	}
	if bundles != nil {
		t.Fatalf("single-node graph planned %d bundles, want none", len(bundles))
	}
}

// TestBundlesDetectDeadlock: a chain bouncing between two nodes with
// degenerate (all-zero) epochs becomes cyclic under bundling — the first
// hop's bundle would wait for a payload that transitively needs the bundle
// itself. The planner must refuse rather than hand the engines a deadlock.
func TestBundlesDetectDeadlock(t *testing.T) {
	b := NewBuilder(2)
	a := bundleTask(t, b, "a", 0, 0)
	bb := bundleTask(t, b, "b", 1, 0)
	c := bundleTask(t, b, "c", 0, 0)
	d := bundleTask(t, b, "d", 1, 0)
	for _, e := range []struct{ cons, prod TaskID }{{bb, a}, {c, bb}, {d, c}} {
		if err := b.AddDep(e.cons, e.prod, Dep{Bytes: 8}); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Bundles(); err == nil {
		t.Fatal("Bundles accepted a plan that deadlocks an alternating-node chain")
	}
	// The same chain with advancing epochs is bundle-safe: each hop lands
	// in its own bundle.
	b2 := NewBuilder(2)
	ids := []TaskID{
		bundleTask(t, b2, "a", 0, 0),
		bundleTask(t, b2, "b", 1, 1),
		bundleTask(t, b2, "c", 0, 2),
		bundleTask(t, b2, "d", 1, 3),
	}
	for i := 1; i < len(ids); i++ {
		if err := b2.AddDep(ids[i], ids[i-1], Dep{Bytes: 8}); err != nil {
			t.Fatal(err)
		}
	}
	g2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	bundles, err := g2.Bundles()
	if err != nil {
		t.Fatalf("epoch-stamped chain refused: %v", err)
	}
	if len(bundles) != 3 {
		t.Fatalf("epoch-stamped chain planned %d bundles, want 3", len(bundles))
	}
}

func TestParseCoalesce(t *testing.T) {
	for _, c := range []struct {
		name string
		want CoalesceMode
	}{{"off", CoalesceOff}, {"none", CoalesceOff}, {"", CoalesceOff}, {"step", CoalesceStep}, {"auto", CoalesceAuto}} {
		got, err := ParseCoalesce(c.name)
		if err != nil || got != c.want {
			t.Errorf("ParseCoalesce(%q) = %v, %v; want %v", c.name, got, err, c.want)
		}
		if c.name != "" && c.name != "none" && got.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), c.name)
		}
	}
	if _, err := ParseCoalesce("bogus"); err == nil {
		t.Error("ParseCoalesce accepted an unknown mode")
	}
}
