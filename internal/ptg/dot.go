package ptg

import (
	"fmt"
	"io"
	"sort"
)

// dotStyle maps a task kind to its Graphviz shape and fill. Inner and
// border tasks (products of the splitting transform) get distinct shapes so
// a transformed graph is visually distinguishable from the unsplit one at a
// glance: interiors are rounded, borders are trapezoids (thin strips).
func dotStyle(k Kind) (shape, fill string) {
	switch k {
	case KindInit:
		return "ellipse", "lightgrey"
	case KindBoundary:
		return "box", "lightsalmon"
	case KindInner:
		return "box", "lightblue"
	case KindBorder:
		return "trapezium", "lightyellow"
	default:
		return "box", "white"
	}
}

// WriteDOT renders the graph in Graphviz DOT format for debugging: tasks
// grouped into per-node clusters with nested per-epoch rank groups (so a
// node's timeline reads top to bottom and epochs align horizontally),
// per-kind shapes — inner/border tasks from the splitting transform render
// distinctly — and cross-node dependencies drawn bold with their payload
// sizes. Output is deterministic for golden-file testing. Intended for
// small graphs (a few hundred tasks); use ComputeStats for anything larger.
func (g *Graph) WriteDOT(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", title); err != nil {
		return err
	}
	byNode := make(map[int32][]int32)
	for i := range g.Tasks {
		byNode[g.Tasks[i].Node] = append(byNode[g.Tasks[i].Node], int32(i))
	}
	nodes := make([]int32, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		fmt.Fprintf(w, "  subgraph cluster_node%d {\n    label=\"node %d\";\n", n, n)
		// Group the node's tasks by epoch; within an epoch keep build
		// order so repeated renders of the same graph are identical.
		byEpoch := make(map[int32][]int32)
		for _, i := range byNode[n] {
			e := g.Tasks[i].Epoch
			byEpoch[e] = append(byEpoch[e], i)
		}
		epochs := make([]int32, 0, len(byEpoch))
		for e := range byEpoch {
			epochs = append(epochs, e)
		}
		sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
		for _, e := range epochs {
			fmt.Fprintf(w, "    { rank=same; // epoch %d\n", e)
			for _, i := range byEpoch[e] {
				t := &g.Tasks[i]
				shape, fill := dotStyle(t.Kind)
				fmt.Fprintf(w, "      t%d [label=%q, shape=%s, style=filled, fillcolor=%s];\n",
					i, t.ID.String(), shape, fill)
			}
			fmt.Fprintln(w, "    }")
		}
		fmt.Fprintln(w, "  }")
	}
	for i := range g.Tasks {
		t := &g.Tasks[i]
		for _, d := range t.Deps {
			p := &g.Tasks[d.Producer]
			if p.Node != t.Node {
				fmt.Fprintf(w, "  t%d -> t%d [style=bold, color=red, label=\"%dB\"];\n", d.Producer, i, d.Bytes)
			} else {
				fmt.Fprintf(w, "  t%d -> t%d;\n", d.Producer, i)
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
