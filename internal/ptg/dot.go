package ptg

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT renders the graph in Graphviz DOT format for debugging: tasks
// grouped into per-node clusters, cross-node dependencies drawn bold with
// their payload sizes. Intended for small graphs (a few hundred tasks);
// use ComputeStats for anything larger.
func (g *Graph) WriteDOT(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", title); err != nil {
		return err
	}
	byNode := make(map[int32][]int32)
	for i := range g.Tasks {
		byNode[g.Tasks[i].Node] = append(byNode[g.Tasks[i].Node], int32(i))
	}
	nodes := make([]int32, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		fmt.Fprintf(w, "  subgraph cluster_node%d {\n    label=\"node %d\";\n", n, n)
		for _, i := range byNode[n] {
			t := &g.Tasks[i]
			color := "white"
			switch t.Kind {
			case KindBoundary:
				color = "lightsalmon"
			case KindInit:
				color = "lightgrey"
			}
			fmt.Fprintf(w, "    t%d [label=%q, style=filled, fillcolor=%s];\n", i, t.ID.String(), color)
		}
		fmt.Fprintln(w, "  }")
	}
	for i := range g.Tasks {
		t := &g.Tasks[i]
		for _, d := range t.Deps {
			p := &g.Tasks[d.Producer]
			if p.Node != t.Node {
				fmt.Fprintf(w, "  t%d -> t%d [style=bold, color=red, label=\"%dB\"];\n", d.Producer, i, d.Bytes)
			} else {
				fmt.Fprintf(w, "  t%d -> t%d;\n", d.Producer, i)
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
