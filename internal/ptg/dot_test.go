package ptg

import (
	"strings"
	"testing"
)

// dotTestGraph hand-builds a two-node, two-epoch graph exercising every
// task kind the renderer styles: init, interior, boundary, and the split
// transform's inner/border pair, with one cross-node dependency.
func dotTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(2)
	add := func(id TaskID, node int32, kind Kind, epoch int32) {
		if _, err := b.AddTask(Task{ID: id, Node: node, Kind: kind, Epoch: epoch}); err != nil {
			t.Fatal(err)
		}
	}
	init0 := TaskID{Class: "in", I: 0}
	init1 := TaskID{Class: "in", I: 1}
	inner := TaskID{Class: "si", I: 0, K: 1}
	border := TaskID{Class: "sbE", I: 0, K: 1}
	commit := TaskID{Class: "st", I: 0, K: 1}
	bnd := TaskID{Class: "st", I: 1, K: 1}
	add(init0, 0, KindInit, 0)
	add(init1, 1, KindInit, 0)
	add(inner, 0, KindInner, 1)
	add(border, 0, KindBorder, 1)
	add(commit, 0, KindInterior, 1)
	add(bnd, 1, KindBoundary, 1)
	dep := func(consumer, producer TaskID, d Dep) {
		if err := b.AddDep(consumer, producer, d); err != nil {
			t.Fatal(err)
		}
	}
	dep(inner, init0, Dep{})
	dep(border, init0, Dep{})
	dep(border, init1, Dep{Bytes: 96})
	dep(commit, inner, Dep{})
	dep(commit, border, Dep{})
	dep(bnd, init1, Dep{})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestWriteDOTGolden pins the exact DOT rendering: per-node clusters,
// nested per-epoch rank groups, per-kind shapes (inner = lightblue box,
// border = lightyellow trapezium), and bold red cross-node edges labeled
// with their payload size. A rendering change must update this golden
// deliberately.
func TestWriteDOTGolden(t *testing.T) {
	g := dotTestGraph(t)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "split sample"); err != nil {
		t.Fatal(err)
	}
	const want = `digraph "split sample" {
  rankdir=TB;
  node [shape=box, fontsize=10];
  subgraph cluster_node0 {
    label="node 0";
    { rank=same; // epoch 0
      t0 [label="in(0,0,0)", shape=ellipse, style=filled, fillcolor=lightgrey];
    }
    { rank=same; // epoch 1
      t2 [label="si(0,0,1)", shape=box, style=filled, fillcolor=lightblue];
      t3 [label="sbE(0,0,1)", shape=trapezium, style=filled, fillcolor=lightyellow];
      t4 [label="st(0,0,1)", shape=box, style=filled, fillcolor=white];
    }
  }
  subgraph cluster_node1 {
    label="node 1";
    { rank=same; // epoch 0
      t1 [label="in(1,0,0)", shape=ellipse, style=filled, fillcolor=lightgrey];
    }
    { rank=same; // epoch 1
      t5 [label="st(1,0,1)", shape=box, style=filled, fillcolor=lightsalmon];
    }
  }
  t0 -> t2;
  t0 -> t3;
  t1 -> t3 [style=bold, color=red, label="96B"];
  t2 -> t4;
  t3 -> t4;
  t1 -> t5;
}
`
	if got := sb.String(); got != want {
		t.Errorf("WriteDOT output diverged from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWriteDOTDeterministic renders the same graph twice and requires
// byte-identical output (map iteration must not leak into the rendering).
func TestWriteDOTDeterministic(t *testing.T) {
	g := dotTestGraph(t)
	var a, b strings.Builder
	if err := g.WriteDOT(&a, "x"); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteDOT(&b, "x"); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two renders of the same graph differ")
	}
}
