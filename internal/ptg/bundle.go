package ptg

import "fmt"

// This file implements halo-bundle planning: grouping all cross-node
// dependencies that share a (source node, destination node, epoch) triple
// into a single coalesced message. The paper's CA scheme wins by aggregating
// many small halo messages into fewer large ones — this extends the same
// lever to the runtime's transport, collapsing the per-(neighbor, step)
// message storm to one message per neighbor pair per exchange epoch while
// leaving the dataflow semantics untouched (the receiver fans the member
// payloads out to exactly the deliveries a point-to-point run would make).

// CoalesceMode selects how the engines group cross-node dependencies into
// bundles.
type CoalesceMode uint8

const (
	// CoalesceOff sends one message per cross-node dependency (the
	// historical behavior; the zero value).
	CoalesceOff CoalesceMode = iota
	// CoalesceStep bundles all cross-node dependencies sharing a
	// (source node, destination node, producer epoch) triple into one
	// message. Building the bundle plan fails if bundling would deadlock
	// the graph (see Graph.Bundles).
	CoalesceStep
	// CoalesceAuto behaves like CoalesceStep when the graph admits a
	// deadlock-free bundle plan and silently falls back to CoalesceOff
	// otherwise (e.g. graphs whose tasks carry no epoch information).
	CoalesceAuto
)

// CoalesceNames lists the names ParseCoalesce accepts, for flag help text.
const CoalesceNames = "off, step, auto"

// ParseCoalesce maps a command-line mode name to a CoalesceMode.
func ParseCoalesce(name string) (CoalesceMode, error) {
	switch name {
	case "off", "none", "":
		return CoalesceOff, nil
	case "step":
		return CoalesceStep, nil
	case "auto":
		return CoalesceAuto, nil
	}
	return CoalesceOff, fmt.Errorf("ptg: unknown coalesce mode %q (valid: %s)", name, CoalesceNames)
}

func (m CoalesceMode) String() string {
	switch m {
	case CoalesceOff:
		return "off"
	case CoalesceStep:
		return "step"
	case CoalesceAuto:
		return "auto"
	}
	return fmt.Sprintf("CoalesceMode(%d)", uint8(m))
}

// BundleMember identifies one cross-node dependency carried by a bundle:
// the consumer task and the index into its Deps.
type BundleMember struct {
	Task int32
	Dep  int32
}

// Bundle is one planned coalesced message: every cross-node dependency whose
// producer lives on node Src at epoch Epoch and whose consumer lives on node
// Dst. Members are listed in deterministic graph order (task index, then dep
// index), which fixes the segment layout of the wire message.
type Bundle struct {
	Src, Dst int32
	Epoch    int32
	Members  []BundleMember
	// Bytes is the summed member payload size (excluding framing).
	Bytes int
}

// WireBytes is the on-wire size of the bundle under the runtime's
// length-prefixed segment format: a u32 member count, one u32 length per
// segment, then the concatenated payloads. The simulator charges this same
// size so virtual and real byte accounting agree.
func (b *Bundle) WireBytes() int { return 4*(1+len(b.Members)) + b.Bytes }

// bundleKey groups cross-node deps by (source node, destination node,
// producer epoch).
type bundleKey struct {
	src, dst, epoch int32
}

// Bundles plans the halo bundles of the graph: every cross-node dependency
// is assigned to the bundle of its (producer node, consumer node, producer
// epoch) triple. The returned slice is in deterministic first-seen order.
//
// Bundling tightens the dependency structure: a bundle is sent only when
// all of its member payloads have been produced, so every member consumer
// transitively waits on every member producer. For graphs whose epochs
// advance with logical time (the stencil graphs stamp the iteration index)
// this adds no ordering that the step structure did not already imply; but
// a graph with degenerate epochs (e.g. all zero) can become cyclic — a
// chain bouncing between two nodes would wait on its own future. Bundles
// therefore validates the bundled graph with a topological sort over tasks
// plus bundle barrier nodes and returns an error when bundling would
// deadlock, leaving callers to fall back to point-to-point delivery.
func (g *Graph) Bundles() ([]Bundle, error) {
	var bundles []Bundle
	byKey := map[bundleKey]int32{}
	// memberOf maps a cross dep (task<<32 | dep) to its bundle index.
	memberOf := map[int64]int32{}
	for i := range g.Tasks {
		t := &g.Tasks[i]
		for di := range t.Deps {
			d := &t.Deps[di]
			p := &g.Tasks[d.Producer]
			if p.Node == t.Node {
				continue
			}
			k := bundleKey{src: p.Node, dst: t.Node, epoch: p.Epoch}
			bi, ok := byKey[k]
			if !ok {
				bi = int32(len(bundles))
				byKey[k] = bi
				bundles = append(bundles, Bundle{Src: k.src, Dst: k.dst, Epoch: k.epoch})
			}
			b := &bundles[bi]
			b.Members = append(b.Members, BundleMember{Task: int32(i), Dep: int32(di)})
			b.Bytes += d.Bytes
			memberOf[int64(i)<<32|int64(di)] = bi
		}
	}
	if len(bundles) == 0 {
		return nil, nil
	}

	// Kahn's algorithm over the augmented graph: producer -> bundle edges
	// (one per member) and bundle -> consumer edges (one per member), local
	// deps unchanged. The graph deadlocks under bundling iff this does not
	// visit every task.
	taskIndeg := make([]int32, len(g.Tasks))
	bundleIndeg := make([]int32, len(bundles))
	for i := range g.Tasks {
		taskIndeg[i] = int32(len(g.Tasks[i].Deps))
	}
	for bi := range bundles {
		bundleIndeg[bi] = int32(len(bundles[bi].Members))
	}
	queue := make([]int32, 0, len(g.Tasks))
	for i := range taskIndeg {
		if taskIndeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	visited := 0
	releaseBundle := func(bi int32) []int32 {
		var ready []int32
		for _, m := range bundles[bi].Members {
			taskIndeg[m.Task]--
			if taskIndeg[m.Task] == 0 {
				ready = append(ready, m.Task)
			}
		}
		return ready
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		visited++
		for _, s := range g.Tasks[u].Succs {
			st := &g.Tasks[s]
			for di := range st.Deps {
				if st.Deps[di].Producer != u {
					continue
				}
				if st.Node == g.Tasks[u].Node {
					taskIndeg[s]--
					if taskIndeg[s] == 0 {
						queue = append(queue, s)
					}
					continue
				}
				bi := memberOf[int64(s)<<32|int64(di)]
				bundleIndeg[bi]--
				if bundleIndeg[bi] == 0 {
					queue = append(queue, releaseBundle(bi)...)
				}
			}
		}
	}
	if visited != len(g.Tasks) {
		return nil, fmt.Errorf("ptg: bundling by epoch deadlocks the graph (%d of %d tasks reachable); run with coalescing off",
			visited, len(g.Tasks))
	}
	return bundles, nil
}
