package ptg

import "fmt"

// CancelError is the structured error both execution engines return when a
// run is stopped by context cancellation or a deadline before the graph
// completes. It lives here (the engines' shared dependency) so the real
// runtime and the virtual-time simulator report cancellation identically
// and callers can handle either engine with one errors.As target.
//
// Err is the underlying context error (context.Canceled or
// context.DeadlineExceeded), exposed through Unwrap so errors.Is works:
//
//	if errors.Is(err, context.Canceled) { ... }
//	var ce *ptg.CancelError
//	if errors.As(err, &ce) { log.Printf("stopped at %d/%d tasks", ce.Done, ce.Total) }
type CancelError struct {
	// Engine names the engine that was interrupted ("runtime" or "desim").
	Engine string
	// Done and Total count executed tasks at interruption and the graph's
	// task count — the progress the run achieved before being stopped.
	Done, Total int
	// Err is the context's error: context.Canceled or
	// context.DeadlineExceeded.
	Err error
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("%s: run stopped after %d of %d tasks: %v", e.Engine, e.Done, e.Total, e.Err)
}

// Unwrap exposes the context error to errors.Is/errors.As.
func (e *CancelError) Unwrap() error { return e.Err }
