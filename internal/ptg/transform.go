package ptg

import "fmt"

// Transform is a graph rewrite pass. A pass receives a frozen Graph and
// returns a rewritten one — typically by replaying tasks into a fresh
// Builder (seeded with PresetSlots so reused closures keep addressing the
// same store slots), re-wiring dependencies, and calling Build, which
// re-runs the Kahn acyclicity check and recomputes Stats.
//
// Contract for passes:
//   - The input graph is read-only; never mutate it.
//   - Preserve Task.Epoch on every task that produces cross-node payloads,
//     so the halo-bundle plan (Graph.Bundles groups cross deps by producer
//     epoch) survives the rewrite.
//   - Reused Pack/Unpack closures and task bodies must see the same slot
//     indices; seed the new builder with PresetSlots.
//
// The first pass is inner/border splitting (internal/core's split pass);
// the framework exists so future rewrites — task fusion, priority
// recomputation — compose without touching the graph builders.
type Transform interface {
	// Name identifies the pass in errors and logs.
	Name() string
	// Apply rewrites g into a new graph. Returning g unchanged is legal
	// for passes that find nothing to rewrite.
	Apply(g *Graph) (*Graph, error)
}

// ApplyTransforms runs a pipeline of rewrite passes in order. Each pass
// output is validated: passes built through Builder.Build have already run
// the Kahn check, and ApplyTransforms refreshes the stats memo so no stale
// pre-rewrite summary can leak through ComputeStats or CrossNodeDeps.
func ApplyTransforms(g *Graph, passes ...Transform) (*Graph, error) {
	for _, p := range passes {
		out, err := p.Apply(g)
		if err != nil {
			return nil, fmt.Errorf("ptg: transform %s: %w", p.Name(), err)
		}
		if out == nil {
			return nil, fmt.Errorf("ptg: transform %s returned nil graph", p.Name())
		}
		if out != g && out.stats == nil {
			// A pass that bypassed Builder.Build (hand-assembled Graph)
			// has no memoized stats yet; compute them so downstream
			// readers see the rewritten graph eagerly summarized.
			out.ComputeStats()
		}
		g = out
	}
	return g, nil
}
