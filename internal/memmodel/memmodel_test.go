package memmodel

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"castencil/internal/machine"
)

func TestArithmeticIntensityBand(t *testing.T) {
	// Paper section V: "we will use the range of 0.37 to 0.56 as our
	// arithmetic intensity".
	if AIMin < 0.37 || AIMin > 0.38 {
		t.Errorf("AIMin = %v, want ~0.375", AIMin)
	}
	if AIMax < 0.56 || AIMax > 0.57 {
		t.Errorf("AIMax = %v, want ~0.5625", AIMax)
	}
}

func TestRooflineBands(t *testing.T) {
	// Paper: "effective peak performance between 14.5 to 21.9 GFLOP/s and
	// 63.8 to 96.6 GFLOP/s" for NaCL and Stampede2. Our STREAM table uses
	// decimal MB, so allow a few percent slack.
	r := RooflineFor(machine.NaCL())
	if r.PeakMinGF < 13.5 || r.PeakMinGF > 15.5 {
		t.Errorf("NaCL roofline min = %.1f GF, want ~14.5-15", r.PeakMinGF)
	}
	if r.PeakMaxGF < 21 || r.PeakMaxGF > 23.5 {
		t.Errorf("NaCL roofline max = %.1f GF, want ~21.9-22.5", r.PeakMaxGF)
	}
	r = RooflineFor(machine.Stampede2())
	if r.PeakMinGF < 62 || r.PeakMinGF > 68 {
		t.Errorf("Stampede2 roofline min = %.1f GF, want ~63.8-66.3", r.PeakMinGF)
	}
	if r.PeakMaxGF < 94 || r.PeakMaxGF > 101 {
		t.Errorf("Stampede2 roofline max = %.1f GF, want ~96.6-99.4", r.PeakMaxGF)
	}
}

func TestKernelCostSingleNodePlateau(t *testing.T) {
	// With the calibrated model, a full node running the optimal tile size
	// should land near the paper's Fig. 6 plateaus: ~11 GFLOP/s on NaCL
	// (tiles 200-300), ~43.5 GFLOP/s on Stampede2 (tiles 400-2000).
	cases := []struct {
		m      *machine.Model
		tile   int
		wantGF float64
		tolGF  float64
	}{
		{machine.NaCL(), 288, 11, 1.5},
		{machine.Stampede2(), 864, 43.5, 4},
	}
	for _, c := range cases {
		dt := KernelCost(c.m, c.tile, c.tile, 1, 0)
		perCore := GFLOPS(float64(c.tile)*float64(c.tile), dt)
		node := perCore * float64(c.m.ComputeCores())
		if math.Abs(node-c.wantGF) > c.tolGF {
			t.Errorf("%s tile %d: node GFLOP/s = %.2f, want %.1f +/- %.1f",
				c.m.Name, c.tile, node, c.wantGF, c.tolGF)
		}
	}
}

func TestKernelCostSmallTileOverheadDominates(t *testing.T) {
	m := machine.NaCL()
	tiny := KernelCost(m, 16, 16, 1, 0)
	if tiny < m.Kern.TaskOverhead {
		t.Errorf("cost %v below task overhead %v", tiny, m.Kern.TaskOverhead)
	}
	// Per-update efficiency must be much worse for tiny tiles.
	effTiny := GFLOPS(16*16, tiny)
	effGood := GFLOPS(288*288, KernelCost(m, 288, 288, 1, 0))
	if effTiny > effGood/2 {
		t.Errorf("tiny tile efficiency %.3f should be far below plateau %.3f", effTiny, effGood)
	}
}

func TestKernelCostCachePenalty(t *testing.T) {
	m := machine.NaCL()
	// Per-update time should jump once the working set exceeds the cache
	// share (2MB on NaCL => tile ~360).
	in := KernelCost(m, 300, 300, 1, 0).Seconds() / (300 * 300)
	out := KernelCost(m, 500, 500, 1, 0).Seconds() / (500 * 500)
	if out <= in {
		t.Errorf("per-update cost should rise out of cache: in=%.3g out=%.3g", in, out)
	}
}

func TestKernelCostRatio(t *testing.T) {
	m := machine.Stampede2()
	full := KernelCost(m, 864, 864, 1, 0)
	half := KernelCost(m, 864, 864, 0.5, 0)
	// ratio 0.5 updates a quarter of the points; minus overhead the
	// variable part should scale by ~4x.
	varFull := full - m.Kern.TaskOverhead
	varHalf := half - m.Kern.TaskOverhead
	got := float64(varFull) / float64(varHalf)
	if math.Abs(got-4) > 0.01 {
		t.Errorf("ratio 0.5 variable-cost scaling = %.3f, want 4", got)
	}
}

func TestKernelCostInvalidRatioMeansFull(t *testing.T) {
	m := machine.NaCL()
	if KernelCost(m, 100, 100, 0, 0) != KernelCost(m, 100, 100, 1, 0) {
		t.Error("ratio 0 should fall back to full kernel")
	}
	if KernelCost(m, 100, 100, 1.5, 0) != KernelCost(m, 100, 100, 1, 0) {
		t.Error("ratio > 1 should fall back to full kernel")
	}
}

func TestKernelCostGhostTraffic(t *testing.T) {
	m := machine.NaCL()
	base := KernelCost(m, 288, 288, 1, 0)
	withGhost := KernelCost(m, 288, 288, 1, 4*288)
	if withGhost <= base {
		t.Error("ghost copy traffic must increase task cost")
	}
}

func TestKernelCostMonotonicInSize(t *testing.T) {
	m := machine.Stampede2()
	f := func(a, b uint8) bool {
		x, y := int(a)+1, int(b)+1
		if x > y {
			x, y = y, x
		}
		return KernelCost(m, x, x, 1, 0) <= KernelCost(m, y, y, 1, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGFLOPS(t *testing.T) {
	if g := GFLOPS(1e9, time.Second); math.Abs(g-9) > 1e-9 {
		t.Errorf("GFLOPS(1e9, 1s) = %v, want 9", g)
	}
	if g := GFLOPS(100, 0); g != 0 {
		t.Errorf("GFLOPS with zero time = %v, want 0", g)
	}
}

func TestSweepFlops(t *testing.T) {
	// The paper's FLOP accounting: 9 n^2 per sweep.
	if got := SweepFlops(1000, 100); got != 9e8*1 {
		t.Errorf("SweepFlops(1000,100) = %g, want 9e8", got)
	}
}

func TestPerUpdateBytes(t *testing.T) {
	m := machine.NaCL()
	if got := PerUpdateBytes(m, 100, 100); got != m.Kern.BytesPerUpdate {
		t.Errorf("in-cache bytes = %v, want %v", got, m.Kern.BytesPerUpdate)
	}
	if got := PerUpdateBytes(m, 1000, 1000); got != m.Kern.BytesPerUpdate+m.Kern.CachePenaltyBytes {
		t.Errorf("out-of-cache bytes = %v", got)
	}
}

func TestUpdateTimeLinearInUpdates(t *testing.T) {
	m := machine.Stampede2()
	one := UpdateTime(m, 288, 288, 1000)
	two := UpdateTime(m, 288, 288, 2000)
	if math.Abs(float64(two)-2*float64(one)) > 2 {
		t.Errorf("UpdateTime not linear: %v vs 2*%v", two, one)
	}
}

func TestCopyTimePositive(t *testing.T) {
	m := machine.NaCL()
	if CopyTime(m, 0) != 0 {
		t.Error("zero points must cost zero")
	}
	if CopyTime(m, 1000) <= 0 {
		t.Error("positive points must cost time")
	}
}

func TestKernelCostDecomposition(t *testing.T) {
	// KernelCost must equal overhead + UpdateTime + CopyTime exactly.
	m := machine.NaCL()
	mb, nb, ghost := 288, 288, 1200
	want := m.Kern.TaskOverhead + UpdateTime(m, mb, nb, float64(mb*nb)) + CopyTime(m, ghost)
	if got := KernelCost(m, mb, nb, 1, ghost); got != want {
		t.Errorf("KernelCost = %v, want %v", got, want)
	}
}
