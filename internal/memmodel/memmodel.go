// Package memmodel implements the kernel-time cost model and the roofline
// analysis used throughout the paper's evaluation (section V).
//
// The paper's stencil update performs 9 floating-point operations per grid
// point (5 multiplies + 4 adds) and moves 16-24 bytes per update in the
// ideal case, giving an arithmetic intensity between 0.37 and 0.56 flop/byte.
// Under the roofline model that bounds the achievable performance by
// AI * memory bandwidth. The unoptimized kernel the paper actually ran lands
// well below that bound; the machine model's calibrated BytesPerUpdate
// captures the observed plateau (11 GFLOP/s on NaCL, 43.5 on Stampede2).
package memmodel

import (
	"time"

	"castencil/internal/machine"
)

// FlopsPerUpdate is the paper's per-point flop count for the generic-weight
// five-point stencil: 5 multiplications and 4 additions.
const FlopsPerUpdate = 9

// AIMin and AIMax bound the arithmetic intensity (flop/byte) of the stencil:
// 9 flops over 24 bytes and 9 flops over 16 bytes respectively, matching the
// 0.37-0.56 range quoted in section V.
const (
	AIMin = FlopsPerUpdate / 24.0
	AIMax = FlopsPerUpdate / 16.0
)

// Roofline summarizes the roofline bound for one machine.
type Roofline struct {
	Machine     string
	BandwidthBs float64 // node STREAM COPY, B/s
	AIMin       float64
	AIMax       float64
	// PeakMin/PeakMax are the expected effective peak GFLOP/s band the
	// paper derives: bandwidth * AI.
	PeakMinGF float64
	PeakMaxGF float64
}

// RooflineFor computes the paper's section-V roofline band for a machine.
func RooflineFor(m *machine.Model) Roofline {
	bw := m.StreamNode.BytesPerSec()
	return Roofline{
		Machine:     m.Name,
		BandwidthBs: bw,
		AIMin:       AIMin,
		AIMax:       AIMax,
		PeakMinGF:   bw * AIMin / 1e9,
		PeakMaxGF:   bw * AIMax / 1e9,
	}
}

// KernelCost models the execution time of one stencil task: the Jacobi
// update of an mb-by-nb tile, optionally reduced by the paper's "kernel
// adjustment ratio" (section VI-D), which updates only
// (ratio*mb) x (ratio*nb) points to simulate a faster memory system or an
// optimized kernel.
//
// The model is
//
//	t = TaskOverhead + updates * bytesPerUpdate / perCoreBandwidth
//
// where bytesPerUpdate gains a cache penalty when the tile's working set
// (two copies of the tile, read grid + write grid) exceeds the per-core
// cache share. ghostPoints adds halo pack/unpack traffic (deeper for CA
// tasks, which is why the paper's Fig. 10 reports a larger median kernel
// time for the CA version).
func KernelCost(m *machine.Model, mb, nb int, ratio float64, ghostPoints int) time.Duration {
	if ratio <= 0 || ratio > 1 {
		ratio = 1
	}
	updates := ratio * float64(mb) * ratio * float64(nb)
	return m.Kern.TaskOverhead + UpdateTime(m, mb, nb, updates) + CopyTime(m, ghostPoints)
}

// PerUpdateBytes returns the effective memory traffic per point update for
// a tile of the given interior extent, including the out-of-cache penalty.
func PerUpdateBytes(m *machine.Model, mb, nb int) float64 {
	b := m.Kern.BytesPerUpdate
	if workingSet(mb, nb) > m.Kern.CacheBytesPerCore {
		b += m.Kern.CachePenaltyBytes
	}
	return b
}

// UpdateTime returns the streaming time of the given number of point
// updates on one core of the machine, for a tile of extent mb x nb.
func UpdateTime(m *machine.Model, mb, nb int, updates float64) time.Duration {
	sec := updates * PerUpdateBytes(m, mb, nb) / m.PerCoreBandwidth()
	return time.Duration(sec * float64(time.Second))
}

// CopyTime returns the time one core spends packing/unpacking the given
// number of halo points.
func CopyTime(m *machine.Model, points int) time.Duration {
	sec := float64(points) * m.Kern.CopyBytesPerGhostPoint / m.PerCoreBandwidth()
	return time.Duration(sec * float64(time.Second))
}

// workingSet returns the bytes touched by one task: read tile + write tile
// of float64 values.
func workingSet(mb, nb int) float64 {
	return 2 * 8 * float64(mb) * float64(nb)
}

// GFLOPS converts a number of point updates and an elapsed duration into
// GFLOP/s at the paper's 9 flop/update accounting. The paper always counts
// 9*n^2 flops per sweep regardless of implementation, so redundant CA work
// and the ratio knob do NOT increase the flop count.
func GFLOPS(updates float64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return updates * FlopsPerUpdate / elapsed.Seconds() / 1e9
}

// SweepFlops returns the nominal flop count of iters Jacobi sweeps over an
// n x n grid: 9 * n^2 * iters.
func SweepFlops(n, iters int) float64 {
	return FlopsPerUpdate * float64(n) * float64(n) * float64(iters)
}
