package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"castencil/internal/machine"
)

func TestNetPIPESweepShape(t *testing.T) {
	for _, m := range machine.Builtin() {
		pts := NetPIPE(m.Net, 256, 4<<20)
		if len(pts) < 10 {
			t.Fatalf("%s: sweep too short: %d points", m.Name, len(pts))
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].PercentPeak < pts[i-1].PercentPeak {
				t.Errorf("%s: efficiency not monotone at %d bytes", m.Name, pts[i].Bytes)
			}
			if pts[i].Bytes != pts[i-1].Bytes*2 {
				t.Errorf("%s: sweep must double sizes", m.Name)
			}
		}
		last := pts[len(pts)-1]
		if last.BandwidthGbps > m.Net.AsymptoteGbps {
			t.Errorf("%s: achieved %v Gb/s exceeds asymptote", m.Name, last.BandwidthGbps)
		}
	}
}

func TestNetPIPEPaperEndpoints(t *testing.T) {
	// Paper section VII: bandwidth efficiency grows "from 20 percent to 70
	// percent of peak" as CA aggregates messages. Check the Fig. 5 curves
	// bracket that range.
	nacl := NetPIPE(machine.NaCL().Net, 256, 4<<20)
	if first := nacl[0].PercentPeak; first > 25 {
		t.Errorf("NaCL 256B efficiency %.1f%%, want <= 25%%", first)
	}
	if last := nacl[len(nacl)-1].PercentPeak; last < 70 {
		t.Errorf("NaCL 4MB efficiency %.1f%%, want >= 70%%", last)
	}
}

func TestFabricSameNodeFree(t *testing.T) {
	f := NewFabric(machine.NaCL().Net, 4)
	if got := f.Send(2, 2, 1<<20, 5*time.Millisecond); got != 5*time.Millisecond {
		t.Errorf("same-node send should be free, got %v", got)
	}
	if f.Messages != 0 {
		t.Errorf("same-node send counted as message")
	}
}

func TestFabricLatencyAndSerialization(t *testing.T) {
	net := machine.NaCL().Net
	f := NewFabric(net, 2)
	bytes := 1 << 20
	done := f.Send(0, 1, bytes, 0)
	want := 2*f.Serialization(bytes) + net.Latency
	if done != want {
		t.Errorf("single message done at %v, want %v", done, want)
	}
}

func TestFabricNICSerializesSends(t *testing.T) {
	net := machine.NaCL().Net
	f := NewFabric(net, 3)
	bytes := 64 << 10
	d1 := f.Send(0, 1, bytes, 0)
	d2 := f.Send(0, 2, bytes, 0) // same sender NIC: must queue behind d1's injection
	if d2 <= d1 {
		t.Errorf("second send on the same NIC finished at %v, not after first %v", d2, d1)
	}
	ser := f.Serialization(bytes)
	if d2 != d1+ser {
		t.Errorf("second send %v, want first(%v)+serialization(%v)", d2, d1, ser)
	}
}

func TestFabricReceiverContention(t *testing.T) {
	net := machine.NaCL().Net
	f := NewFabric(net, 3)
	bytes := 64 << 10
	d1 := f.Send(0, 2, bytes, 0)
	d2 := f.Send(1, 2, bytes, 0) // distinct senders, same receiver NIC
	if d2 <= d1 {
		t.Errorf("receiver NIC must serialize: %v then %v", d1, d2)
	}
}

func TestFabricAggregationBeatsManySmall(t *testing.T) {
	// The CA premise: one s-layer message beats s one-layer messages.
	net := machine.NaCL().Net
	s := 15
	edge := 288 * 8 // one tile edge in bytes

	many := NewFabric(net, 2)
	var t1 time.Duration
	for i := 0; i < s; i++ {
		t1 = many.Send(0, 1, edge, t1)
	}

	one := NewFabric(net, 2)
	t2 := one.Send(0, 1, s*edge, 0)

	if t2 >= t1 {
		t.Errorf("aggregated message (%v) should beat %d small messages (%v)", t2, s, t1)
	}
}

func TestFabricReset(t *testing.T) {
	f := NewFabric(machine.NaCL().Net, 2)
	f.Send(0, 1, 1024, 0)
	f.Reset()
	if f.Messages != 0 || f.BytesSent != 0 {
		t.Error("reset must clear stats")
	}
	if d := f.Send(0, 1, 1024, 0); d != 2*f.Serialization(1024)+machine.NaCL().Net.Latency {
		t.Error("reset must clear NIC occupancy")
	}
}

func TestFabricMonotoneReadyTime(t *testing.T) {
	// Property: delaying the ready time never makes the arrival earlier.
	net := machine.Stampede2().Net
	fn := func(r1, r2 uint16, sz uint16) bool {
		a, b := time.Duration(r1)*time.Microsecond, time.Duration(r2)*time.Microsecond
		if a > b {
			a, b = b, a
		}
		bytes := int(sz) + 1
		f1 := NewFabric(net, 2)
		f2 := NewFabric(net, 2)
		return f1.Send(0, 1, bytes, a) <= f2.Send(0, 1, bytes, b)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestCommBusyAccounting(t *testing.T) {
	net := machine.NaCL().Net
	f := NewFabric(net, 3)
	f.Send(0, 1, 1024, 0)
	f.Send(0, 2, 2048, 0)
	// Node 0 paid serialization for both sends; 1 and 2 one receive each.
	want0 := f.Serialization(1024) + f.Serialization(2048)
	if f.CommBusy(0) != want0 {
		t.Errorf("node 0 busy = %v, want %v", f.CommBusy(0), want0)
	}
	if f.CommBusy(1) != f.Serialization(1024) {
		t.Errorf("node 1 busy = %v", f.CommBusy(1))
	}
	f.Reset()
	if f.CommBusy(0) != 0 {
		t.Error("reset must clear busy time")
	}
}

func TestSerializationIncludesOverhead(t *testing.T) {
	net := machine.NaCL().Net
	f := NewFabric(net, 2)
	if f.Serialization(0) != net.MsgOverhead {
		t.Errorf("zero-byte serialization = %v, want overhead %v", f.Serialization(0), net.MsgOverhead)
	}
	if f.Serialization(1024) <= net.MsgOverhead {
		t.Error("payload must add to overhead")
	}
}

// TestFabricReceiverCommBusy pins the two-sided accounting: a message
// occupies the destination node's communication thread for the same
// serialization time as the sender's, and a busy receiver delays delivery
// even when the sender and wire are idle.
func TestFabricReceiverCommBusy(t *testing.T) {
	net := machine.NaCL().Net
	f := NewFabric(net, 3)
	bytes := 1 << 18
	ser := f.Serialization(bytes)

	f.Send(0, 2, bytes, 0)
	if got := f.CommBusy(2); got != ser {
		t.Errorf("receiver commBusy = %v, want %v (one serialization)", got, ser)
	}
	if got := f.CommBusy(0); got != ser {
		t.Errorf("sender commBusy = %v, want %v", got, ser)
	}
	if got := f.CommBusy(1); got != 0 {
		t.Errorf("bystander commBusy = %v, want 0", got)
	}

	// A second message from a different sender lands on node 2 while it is
	// still streaming the first: delivery must wait for the receiver NIC,
	// and the receiver's busy time must accumulate both.
	done := f.Send(1, 2, bytes, 0)
	first := ser + net.Latency + ser
	if want := first + ser; done != want {
		t.Errorf("second delivery at %v, want %v (queued behind the receiver NIC)", done, want)
	}
	if got := f.CommBusy(2); got != 2*ser {
		t.Errorf("receiver commBusy after two messages = %v, want %v", got, 2*ser)
	}
}

// TestFabricSendBundle checks the bundle path: one NIC occupancy per side
// and one wire latency for the whole bundle, with the coalescing counters
// recording the aggregation and Reset clearing them.
func TestFabricSendBundle(t *testing.T) {
	net := machine.NaCL().Net
	f := NewFabric(net, 2)
	bytes, segs := 1<<16, 9
	done := f.SendBundle(0, 1, bytes, segs, 0)
	ser := f.Serialization(bytes)
	if want := 2*ser + net.Latency; done != want {
		t.Errorf("bundle delivered at %v, want %v (single-message cost)", done, want)
	}
	if f.Messages != 1 || f.Bundles != 1 || f.Segments != segs || f.BytesSent != bytes {
		t.Errorf("counters = %d msgs, %d bundles, %d segments, %d bytes; want 1, 1, %d, %d",
			f.Messages, f.Bundles, f.Segments, f.BytesSent, segs, bytes)
	}
	if got := f.CommBusy(1); got != ser {
		t.Errorf("receiver commBusy = %v, want one bundle serialization %v", got, ser)
	}
	// The bundle must be cheaper than its members sent point-to-point:
	// per-message overhead is paid once instead of segs times.
	f2 := NewFabric(net, 2)
	var p2p time.Duration
	for i := 0; i < segs; i++ {
		p2p = f2.Send(0, 1, bytes/segs, 0) // all ready at once; the NIC serializes them
	}
	if done >= p2p {
		t.Errorf("bundle delivered at %v, not faster than %d point-to-point messages (%v)", done, segs, p2p)
	}
	if f2.Bundles != 0 || f2.Segments != 0 {
		t.Errorf("point-to-point sends touched bundle counters: %d/%d", f2.Bundles, f2.Segments)
	}

	f.Reset()
	if f.Messages != 0 || f.Bundles != 0 || f.Segments != 0 || f.BytesSent != 0 {
		t.Errorf("Reset left counters %d/%d/%d/%d", f.Messages, f.Bundles, f.Segments, f.BytesSent)
	}
	if f.CommBusy(0) != 0 || f.CommBusy(1) != 0 {
		t.Error("Reset left commBusy nonzero")
	}

	// Same-node bundles are free and uncounted, like same-node sends.
	if got := f.SendBundle(1, 1, bytes, segs, 3*time.Millisecond); got != 3*time.Millisecond {
		t.Errorf("same-node bundle should be free, got %v", got)
	}
	if f.Bundles != 0 {
		t.Error("same-node bundle counted")
	}
}
