// Package netsim provides the simulated-interconnect pieces built on top of
// the machine.Network latency/bandwidth model: a NetPIPE-style sweep that
// regenerates Figure 5, and a Fabric that the discrete-event engine uses to
// account NIC serialization and wire latency per message.
package netsim

import (
	"fmt"
	"time"

	"castencil/internal/machine"
)

// Point is one sample of the NetPIPE sweep.
type Point struct {
	Bytes         int
	Time          time.Duration
	BandwidthGbps float64
	PercentPeak   float64
}

// NetPIPE sweeps message sizes from minBytes to maxBytes (doubling) and
// returns the effective transfer time, achieved bandwidth and percent of
// theoretical peak at each size, reproducing Figure 5.
func NetPIPE(net machine.Network, minBytes, maxBytes int) []Point {
	if minBytes < 1 {
		minBytes = 1
	}
	var pts []Point
	for m := minBytes; m <= maxBytes; m *= 2 {
		t := net.TransferTime(m)
		achieved := float64(m) / t.Seconds() * 8 / 1e9
		pts = append(pts, Point{
			Bytes:         m,
			Time:          t,
			BandwidthGbps: achieved,
			PercentPeak:   net.PercentOfPeak(m),
		})
	}
	return pts
}

// Fabric models the cluster interconnect for the discrete-event simulator.
// Each node owns one NIC; a message occupies the sender NIC for its
// serialization time, travels one wire latency, then occupies the receiver
// NIC for its serialization time. NIC occupancy is what creates the
// latency/injection bottleneck the CA scheme avoids: many small messages
// serialize on the communication thread even when the wire is idle.
type Fabric struct {
	net machine.Network
	// commFree[n] is the virtual time at which node n's communication
	// thread becomes free. One resource handles both sends and receives,
	// matching the paper's PaRSEC configuration of a single thread
	// dedicated to communication per node.
	commFree []time.Duration
	// commBusy[n] accumulates the time node n's communication thread spent
	// handling messages (serialization + per-message overhead, both
	// directions).
	commBusy []time.Duration
	// Stats
	Messages  int
	BytesSent int
	// Bundles counts the wire messages that were coalesced halo bundles
	// (each also counted once in Messages); Segments totals the member
	// transfers those bundles carried. Segments/Bundles is the mean bundle
	// fill — the aggregation factor the coalescing optimization achieves.
	Bundles  int
	Segments int
	// MigMsgs and MigBytes count work-stealing migration transfers (task
	// state out, results back). They are deliberately NOT folded into
	// Messages/BytesSent: the real engine keeps steal frames out of its halo
	// message counters too, so sim==real parity holds for both families.
	MigMsgs  int
	MigBytes int
}

// NewFabric creates a fabric connecting n nodes with the given network model.
func NewFabric(net machine.Network, n int) *Fabric {
	return &Fabric{
		net:      net,
		commFree: make([]time.Duration, n),
		commBusy: make([]time.Duration, n),
	}
}

// Nodes returns the number of endpoints.
func (f *Fabric) Nodes() int { return len(f.commFree) }

// Serialization returns the time a message of the given size occupies a NIC
// (and its communication thread): the per-message handling overhead plus
// streaming at the effective bandwidth.
func (f *Fabric) Serialization(bytes int) time.Duration {
	if bytes <= 0 {
		return f.net.MsgOverhead
	}
	sec := float64(bytes) / f.net.EffectiveBandwidth(bytes)
	return f.net.MsgOverhead + time.Duration(sec*float64(time.Second))
}

// Send schedules a message from src to dst that becomes ready to send at
// time ready, and returns the virtual time at which it is fully received.
// Same-node "sends" are free (they model local memory copies already
// accounted in the kernel cost).
func (f *Fabric) Send(src, dst int, bytes int, ready time.Duration) time.Duration {
	if src == dst {
		return ready
	}
	f.Messages++
	f.BytesSent += bytes
	ser := f.Serialization(bytes)

	start := ready
	if f.commFree[src] > start {
		start = f.commFree[src]
	}
	injected := start + ser
	f.commFree[src] = injected
	f.commBusy[src] += ser

	arrival := injected + f.net.Latency
	recvStart := arrival
	if f.commFree[dst] > recvStart {
		recvStart = f.commFree[dst]
	}
	done := recvStart + ser
	f.commFree[dst] = done
	f.commBusy[dst] += ser
	return done
}

// SendBundle schedules one coalesced halo bundle carrying segments member
// payloads in bytes total wire bytes. The fabric charges exactly one NIC
// occupancy per side and one wire latency for the whole bundle — the
// communication-avoiding payoff: the per-message overhead that would have
// been paid segments times is paid once.
func (f *Fabric) SendBundle(src, dst int, bytes, segments int, ready time.Duration) time.Duration {
	if src == dst {
		return ready
	}
	done := f.Send(src, dst, bytes, ready)
	f.Bundles++
	f.Segments += segments
	return done
}

// SendSteal schedules one work-stealing migration transfer (task inputs
// toward the thief, or results back toward the victim). The NIC math is
// exactly Send's — the frames ride the same comm threads and wire — but the
// traffic is accounted in MigMsgs/MigBytes instead of Messages/BytesSent,
// mirroring the real transport's separate steal-frame counters.
func (f *Fabric) SendSteal(src, dst int, bytes int, ready time.Duration) time.Duration {
	if src == dst {
		return ready
	}
	f.MigMsgs++
	f.MigBytes += bytes
	ser := f.Serialization(bytes)

	start := ready
	if f.commFree[src] > start {
		start = f.commFree[src]
	}
	injected := start + ser
	f.commFree[src] = injected
	f.commBusy[src] += ser

	arrival := injected + f.net.Latency
	recvStart := arrival
	if f.commFree[dst] > recvStart {
		recvStart = f.commFree[dst]
	}
	done := recvStart + ser
	f.commFree[dst] = done
	f.commBusy[dst] += ser
	return done
}

// SendDropped charges a transmission that leaves src but never reaches its
// destination — a fault-injected drop. The sender NIC pays full
// serialization (the bytes left the node) and the message counts as wire
// traffic, mirroring the real engine's accounting, but the receiver is
// untouched and no arrival time exists.
func (f *Fabric) SendDropped(src int, bytes int, ready time.Duration) {
	f.Messages++
	f.BytesSent += bytes
	ser := f.Serialization(bytes)
	start := ready
	if f.commFree[src] > start {
		start = f.commFree[src]
	}
	f.commFree[src] = start + ser
	f.commBusy[src] += ser
}

// Free returns the virtual time at which a node's communication thread is
// next idle.
func (f *Fabric) Free(node int) time.Duration { return f.commFree[node] }

// Block makes a node's communication thread unavailable until the given
// virtual time (if that is later than its current horizon) without
// accruing busy time — a fault-injected stall or whole-node pause, during
// which the thread does no useful work.
func (f *Fabric) Block(node int, until time.Duration) {
	if until > f.commFree[node] {
		f.commFree[node] = until
	}
}

// CommBusy returns the accumulated communication-thread busy time of a
// node — how long its dedicated comm thread spent packing, matching and
// streaming messages. Comparing it to the makespan shows whether a run is
// communication-bound (the quantity the CA scheme attacks).
func (f *Fabric) CommBusy(node int) time.Duration { return f.commBusy[node] }

// Reset clears comm-thread occupancy and statistics.
func (f *Fabric) Reset() {
	for i := range f.commFree {
		f.commFree[i] = 0
		f.commBusy[i] = 0
	}
	f.Messages = 0
	f.BytesSent = 0
	f.Bundles = 0
	f.Segments = 0
	f.MigMsgs = 0
	f.MigBytes = 0
}

func (f *Fabric) String() string {
	return fmt.Sprintf("fabric(%d nodes, %d msgs, %d bytes)", f.Nodes(), f.Messages, f.BytesSent)
}
