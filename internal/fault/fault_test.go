package fault

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

// Decisions must be pure functions of (seed, identity, attempt): repeated
// queries agree, different seeds/attempts decorrelate, and the empirical
// rate tracks the configured probability.
func TestDecisionsDeterministic(t *testing.T) {
	p := &Plan{Seed: 7, Drop: 0.3, Dup: 0.2, Delay: 0.1, Reorder: 0.05}
	for i := 0; i < 1000; i++ {
		id := MsgID{Src: int32(i % 5), Dst: int32(i % 7), Task: int32(i), Dep: int32(i % 3)}
		for a := int32(0); a < 3; a++ {
			if p.ShouldDrop(id, a) != p.ShouldDrop(id, a) {
				t.Fatal("ShouldDrop not deterministic")
			}
			if p.ShouldDup(id, a) != p.ShouldDup(id, a) {
				t.Fatal("ShouldDup not deterministic")
			}
			if p.DelayOf(id, a) != p.DelayOf(id, a) {
				t.Fatal("DelayOf not deterministic")
			}
		}
	}
}

func TestDecisionRatesTrackProbabilities(t *testing.T) {
	p := &Plan{Seed: 42, Drop: 0.25, Dup: 0.1, Delay: 0.4}
	const n = 20000
	drops, dups, delays := 0, 0, 0
	for i := 0; i < n; i++ {
		id := MsgID{Src: int32(i % 16), Dst: int32((i + 1) % 16), Task: int32(i), Dep: int32(i % 4)}
		if p.ShouldDrop(id, 0) {
			drops++
		}
		if p.ShouldDup(id, 0) {
			dups++
		}
		if p.DelayOf(id, 0) > 0 {
			delays++
		}
	}
	check := func(name string, got int, want float64) {
		rate := float64(got) / n
		if math.Abs(rate-want) > 0.02 {
			t.Errorf("%s rate %.3f, want ~%.3f", name, rate, want)
		}
	}
	check("drop", drops, 0.25)
	check("dup", dups, 0.1)
	check("delay", delays, 0.4)
}

func TestSeedAndAttemptDecorrelate(t *testing.T) {
	a := &Plan{Seed: 1, Drop: 0.5}
	b := &Plan{Seed: 2, Drop: 0.5}
	diffSeed, diffAttempt := 0, 0
	const n = 4000
	for i := 0; i < n; i++ {
		id := MsgID{Task: int32(i)}
		if a.ShouldDrop(id, 0) != b.ShouldDrop(id, 0) {
			diffSeed++
		}
		if a.ShouldDrop(id, 0) != a.ShouldDrop(id, 1) {
			diffAttempt++
		}
	}
	// Independent fair coins disagree ~half the time.
	if diffSeed < n/3 || diffAttempt < n/3 {
		t.Errorf("decisions too correlated: seed %d/%d, attempt %d/%d", diffSeed, n, diffAttempt, n)
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	spec := "drop=0.01,dup=0.02,delay=0.05,delayby=200µs,seed=7,pause=2:10:50ms,stall=1:5:2ms,slow=0:1:50µs:100"
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop != 0.01 || p.Dup != 0.02 || p.Delay != 0.05 || p.Seed != 7 {
		t.Fatalf("parsed %+v", p)
	}
	if p.DelayBy != 200*time.Microsecond {
		t.Fatalf("DelayBy = %v", p.DelayBy)
	}
	if len(p.Pauses) != 1 || p.Pauses[0] != (NodePause{Node: 2, AfterTasks: 10, Pause: 50 * time.Millisecond}) {
		t.Fatalf("Pauses = %+v", p.Pauses)
	}
	if len(p.CommStalls) != 1 || p.CommStalls[0] != (CommStall{Node: 1, After: 5, Stall: 2 * time.Millisecond}) {
		t.Fatalf("CommStalls = %+v", p.CommStalls)
	}
	if len(p.SlowCores) != 1 || p.SlowCores[0] != (SlowCore{Node: 0, Core: 1, Extra: 50 * time.Microsecond, Tasks: 100}) {
		t.Fatalf("SlowCores = %+v", p.SlowCores)
	}
	// String() renders a spec ParsePlan accepts back to an equal plan.
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	if p2.Drop != p.Drop || p2.Seed != p.Seed || len(p2.Pauses) != 1 {
		t.Fatalf("round trip lost fields: %q -> %+v", p.String(), p2)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"drop=1.5", "drop=x", "nope=1", "drop", "delayby=zz",
		"pause=1:2", "slow=1:2:3", "drop=1",
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted", spec)
		}
	}
	for _, spec := range []string{"", "off", "none"} {
		p, err := ParsePlan(spec)
		if err != nil || p != nil {
			t.Errorf("ParsePlan(%q) = %v, %v; want nil, nil", spec, p, err)
		}
	}
}

func TestRecoveryBackoff(t *testing.T) {
	r := Recovery{Timeout: 10 * time.Millisecond, Backoff: 2, MaxTimeout: 35 * time.Millisecond}.WithDefaults()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 35 * time.Millisecond, 35 * time.Millisecond}
	for a, w := range want {
		if got := r.TimeoutAt(int32(a)); got != w {
			t.Errorf("TimeoutAt(%d) = %v, want %v", a, got, w)
		}
	}
	d := Recovery{}.WithDefaults()
	if d.Timeout != DefaultTimeout || d.Deadline != DefaultDeadline {
		t.Errorf("defaults not filled: %+v", d)
	}
}

func TestReportIsError(t *testing.T) {
	var err error = &Report{
		ID: MsgID{Src: 0, Dst: 3, Bundle: 2}, Seq: 17, Attempts: 4,
		Waited: 120 * time.Millisecond, Deadline: 100 * time.Millisecond,
		Stats: Stats{Dropped: 3, Retransmits: 3, Timeouts: 4},
	}
	wrapped := fmt.Errorf("run failed: %w", err)
	var rep *Report
	if !errors.As(wrapped, &rep) {
		t.Fatal("errors.As failed to unwrap Report")
	}
	if rep.ID.Dst != 3 || rep.Seq != 17 {
		t.Fatalf("report fields lost: %+v", rep)
	}
	if rep.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestTimeDomainFaults(t *testing.T) {
	p := &Plan{
		SlowCores:  []SlowCore{{Node: 1, Core: 0, Extra: time.Millisecond, Tasks: 2}},
		CommStalls: []CommStall{{Node: 0, After: 3, Stall: 5 * time.Millisecond}},
		Pauses:     []NodePause{{Node: 2, AfterTasks: 4, Pause: 7 * time.Millisecond}},
	}
	if p.CoreExtra(1, 0, 0) != time.Millisecond || p.CoreExtra(1, 0, 1) != time.Millisecond {
		t.Error("slow window not applied")
	}
	if p.CoreExtra(1, 0, 2) != 0 || p.CoreExtra(0, 0, 0) != 0 {
		t.Error("slow window leaked")
	}
	if p.StallAt(0, 3) != 5*time.Millisecond || p.StallAt(0, 2) != 0 || p.StallAt(1, 3) != 0 {
		t.Error("stall misapplied")
	}
	if p.PauseAt(2, 4) != 7*time.Millisecond || p.PauseAt(2, 5) != 0 {
		t.Error("pause misapplied")
	}
	if !p.Active() || p.NeedsRecovery() == false {
		// pause needs the deadline machinery
		t.Error("Active/NeedsRecovery wrong")
	}
	if (&Plan{Delay: 0.1}).NeedsRecovery() {
		t.Error("pure delay should not require recovery")
	}
	var nilPlan *Plan
	if nilPlan.Active() || nilPlan.ShouldDrop(MsgID{}, 0) || nilPlan.DelayOf(MsgID{}, 0) != 0 {
		t.Error("nil plan should be inert")
	}
}
