// Package fault is the deterministic fault-injection and recovery layer of
// the runtime: a seedable Plan describes which wire messages are dropped,
// duplicated, delayed or reordered, which cores run transiently slow, where
// a communication goroutine stalls and when a whole node pauses; a Recovery
// policy describes how the transport masks the message-level faults
// (sequence numbers, acknowledgements, retransmit with exponential backoff,
// receiver-side dedup) and when a run should stop waiting and fail fast
// with a structured Report.
//
// Every message-level decision is a pure function of the plan's seed and
// the message's graph identity (source node, destination node, consumer
// task/dependency or bundle id) plus the delivery attempt — never of
// arrival order or wall-clock time. The real executor and the virtual-time
// engine therefore inject byte-identical fault schedules for the same graph
// and plan, which is what lets the determinism suite prove that recovery
// masks every schedule without perturbing numerics. The time-domain faults
// (slow cores, comm stall, node pause) are deterministic per engine but
// inherently timing-shaped; they perturb performance, never data.
package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// MsgID is the engine-independent identity of one wire transfer: the
// consumer task and dependency index for a point-to-point message, or the
// 1-based bundle id for a coalesced halo bundle (Task/Dep zero). Both
// engines build the same graph and the same bundle plan, so the identity —
// and every fault decision keyed on it — is identical across them.
type MsgID struct {
	Src, Dst  int32
	Task, Dep int32
	Bundle    int32
}

func (id MsgID) String() string {
	if id.Bundle != 0 {
		return fmt.Sprintf("bundle %d (%d->%d)", id.Bundle, id.Src, id.Dst)
	}
	return fmt.Sprintf("msg task=%d dep=%d (%d->%d)", id.Task, id.Dep, id.Src, id.Dst)
}

// SlowCore makes one compute core transiently slow: the first Tasks tasks
// that core executes each take Extra longer (a sleep in the real engine, an
// added cost in the virtual-time engine).
type SlowCore struct {
	Node, Core int32
	Extra      time.Duration
	Tasks      int
}

// CommStall injects one stall episode into a node's communication
// goroutine: before handling its (After+1)-th outgoing wire message the
// goroutine blocks for Stall.
type CommStall struct {
	Node  int32
	After int
	Stall time.Duration
}

// NodePause suspends a whole node — workers and communication goroutine —
// for Pause once the node has completed AfterTasks tasks. A pause longer
// than the recovery deadline makes the run fail fast with a Report instead
// of hanging (graceful degradation).
type NodePause struct {
	Node       int32
	AfterTasks int
	Pause      time.Duration
}

// Plan is a deterministic, seedable fault schedule. The zero value injects
// nothing; all probabilities are per message (Drop is per delivery
// attempt, so a retransmitted message rolls a fresh, independent and
// equally deterministic decision).
type Plan struct {
	// Seed keys every pseudo-random decision. Two runs of the same graph
	// with the same seed inject exactly the same faults, on either engine.
	Seed uint64

	// Drop is the probability that a delivery attempt is lost on the wire
	// (the sender pays injection, the receiver sees nothing).
	Drop float64
	// Dup is the probability that a delivered attempt arrives twice.
	Dup float64
	// Delay is the probability that a delivered attempt arrives DelayBy
	// late.
	Delay float64
	// DelayBy is the added latency of a delayed message (default 200us).
	DelayBy time.Duration
	// Reorder is the probability that a message is deferred by ReorderBy,
	// letting later traffic on the same lane overtake it — differential
	// delay is how the plan scrambles delivery order deterministically.
	Reorder float64
	// ReorderBy is the deferral of a reordered message (default 100us).
	ReorderBy time.Duration

	// SlowCores, CommStalls and Pauses are the time-domain faults.
	SlowCores  []SlowCore
	CommStalls []CommStall
	Pauses     []NodePause
}

// Default fault magnitudes.
const (
	DefaultDelayBy   = 200 * time.Microsecond
	DefaultReorderBy = 100 * time.Microsecond
)

// Active reports whether the plan injects anything at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.Drop > 0 || p.Dup > 0 || p.Delay > 0 || p.Reorder > 0 ||
		len(p.SlowCores) > 0 || len(p.CommStalls) > 0 || len(p.Pauses) > 0
}

// NeedsRecovery reports whether the plan injects faults that only a
// reliable transport can mask: drops need retransmit, duplicates need
// receiver dedup, and a paused node needs the fail-fast deadline.
func (p *Plan) NeedsRecovery() bool {
	if p == nil {
		return false
	}
	return p.Drop > 0 || p.Dup > 0 || len(p.Pauses) > 0
}

// Validate rejects out-of-range probabilities and negative durations.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, pr := range []struct {
		name string
		v    float64
	}{{"drop", p.Drop}, {"dup", p.Dup}, {"delay", p.Delay}, {"reorder", p.Reorder}} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault: %s probability %v outside [0,1]", pr.name, pr.v)
		}
	}
	if p.Drop >= 1 {
		return fmt.Errorf("fault: drop probability 1 makes every retransmit fail; use < 1")
	}
	if p.DelayBy < 0 || p.ReorderBy < 0 {
		return fmt.Errorf("fault: negative delay")
	}
	for _, s := range p.SlowCores {
		if s.Extra < 0 || s.Tasks < 0 {
			return fmt.Errorf("fault: negative slow-core window")
		}
	}
	for _, s := range p.CommStalls {
		if s.Stall < 0 || s.After < 0 {
			return fmt.Errorf("fault: negative comm stall")
		}
	}
	for _, s := range p.Pauses {
		if s.Pause < 0 || s.AfterTasks < 0 {
			return fmt.Errorf("fault: negative node pause")
		}
	}
	return nil
}

// Decision salts: each fault class draws from an independent stream.
const (
	saltDrop uint64 = 0x9e3779b97f4a7c15
	saltDup  uint64 = 0xd1b54a32d192ed03
	saltDel  uint64 = 0x8bb84b93962eacc9
	saltOrd  uint64 = 0x2545f4914f6cdd1d
)

// mix64 is the splitmix64 finalizer — a full-avalanche 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unit maps (seed, id, attempt, salt) to a uniform float64 in [0,1).
func (p *Plan) unit(id MsgID, attempt int32, salt uint64) float64 {
	h := mix64(p.Seed ^ salt)
	h = mix64(h ^ uint64(uint32(id.Src))<<32 ^ uint64(uint32(id.Dst)))
	h = mix64(h ^ uint64(uint32(id.Task))<<32 ^ uint64(uint32(id.Dep)))
	h = mix64(h ^ uint64(uint32(id.Bundle))<<32 ^ uint64(uint32(attempt)))
	return float64(h>>11) / float64(1<<53)
}

// ShouldDrop decides whether delivery attempt `attempt` (0 = the original
// send) of the message is lost on the wire.
func (p *Plan) ShouldDrop(id MsgID, attempt int32) bool {
	return p != nil && p.Drop > 0 && p.unit(id, attempt, saltDrop) < p.Drop
}

// ShouldDup decides whether a delivered attempt arrives twice.
func (p *Plan) ShouldDup(id MsgID, attempt int32) bool {
	return p != nil && p.Dup > 0 && p.unit(id, attempt, saltDup) < p.Dup
}

// DelayOf returns the extra latency injected into a delivered attempt:
// the sum of the delay fault (if drawn) and the reorder deferral (if
// drawn). Zero means the message travels fault-free.
func (p *Plan) DelayOf(id MsgID, attempt int32) time.Duration {
	if p == nil {
		return 0
	}
	var d time.Duration
	if p.Delay > 0 && p.unit(id, attempt, saltDel) < p.Delay {
		if p.DelayBy > 0 {
			d += p.DelayBy
		} else {
			d += DefaultDelayBy
		}
	}
	if p.Reorder > 0 && p.unit(id, attempt, saltOrd) < p.Reorder {
		if p.ReorderBy > 0 {
			d += p.ReorderBy
		} else {
			d += DefaultReorderBy
		}
	}
	return d
}

// CoreExtra returns the added execution time of the taskSeq-th task (0-based)
// that core of node runs, per the plan's slow-core windows.
func (p *Plan) CoreExtra(node, core int32, taskSeq int) time.Duration {
	if p == nil {
		return 0
	}
	var d time.Duration
	for _, s := range p.SlowCores {
		if s.Node == node && s.Core == core && taskSeq < s.Tasks {
			d += s.Extra
		}
	}
	return d
}

// StallAt returns the stall injected before node's nth outgoing wire
// message (0-based). Each CommStall entry fires exactly once.
func (p *Plan) StallAt(node int32, nth int) time.Duration {
	if p == nil {
		return 0
	}
	var d time.Duration
	for _, s := range p.CommStalls {
		if s.Node == node && s.After == nth {
			d += s.Stall
		}
	}
	return d
}

// PauseAt returns the pause injected when node completes its nth task
// (1-based count reaching AfterTasks).
func (p *Plan) PauseAt(node int32, completed int) time.Duration {
	if p == nil {
		return 0
	}
	var d time.Duration
	for _, s := range p.Pauses {
		if s.Node == node && s.AfterTasks == completed {
			d += s.Pause
		}
	}
	return d
}

// Stats counts injected faults and recovery work. The injection counters
// (Dropped, Duplicated, Delayed) are deterministic for a given graph and
// plan on either engine; the recovery counters are deterministic whenever
// the recovery timeout comfortably exceeds real delivery latency (no
// spurious retransmits), which the stress suite pins.
type Stats struct {
	// Injected faults.
	Dropped    int // delivery attempts lost on the wire
	Duplicated int // attempts delivered twice
	Delayed    int // attempts delivered late (delay and/or reorder)
	// Recovery work.
	Retransmits int // attempts resent after an ack timeout
	DupDrops    int // deliveries suppressed by receiver-side dedup
	Timeouts    int // ack-timeout expirations (one per retransmit or deadline failure)
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Dropped += o.Dropped
	s.Duplicated += o.Duplicated
	s.Delayed += o.Delayed
	s.Retransmits += o.Retransmits
	s.DupDrops += o.DupDrops
	s.Timeouts += o.Timeouts
}

// Any reports whether any counter is nonzero.
func (s Stats) Any() bool { return s != Stats{} }

func (s Stats) String() string {
	return fmt.Sprintf("faults(drop=%d dup=%d delay=%d retransmit=%d dupdrop=%d timeout=%d)",
		s.Dropped, s.Duplicated, s.Delayed, s.Retransmits, s.DupDrops, s.Timeouts)
}

// Recovery is the reliable-delivery policy that masks message-level
// faults: every sequenced message is retained by the sender until acked;
// an unacked message is retransmitted after Timeout, then Timeout*Backoff,
// then Timeout*Backoff^2 ... capped at MaxTimeout; a message still unacked
// Deadline after its first send fails the run fast with a Report.
type Recovery struct {
	// Timeout is the initial ack timeout (default 25ms).
	Timeout time.Duration
	// Backoff multiplies the timeout per retransmit (default 2).
	Backoff float64
	// MaxTimeout caps the backed-off timeout (default 250ms).
	MaxTimeout time.Duration
	// Deadline is the total time a message may stay unacked before the
	// run degrades gracefully — fails fast with a Report instead of
	// hanging on a dead or paused node (default 5s).
	Deadline time.Duration
}

// Recovery defaults.
const (
	DefaultTimeout    = 25 * time.Millisecond
	DefaultBackoff    = 2.0
	DefaultMaxTimeout = 250 * time.Millisecond
	DefaultDeadline   = 5 * time.Second
)

// DefaultRecovery returns the default reliable-delivery policy.
func DefaultRecovery() *Recovery {
	return &Recovery{
		Timeout:    DefaultTimeout,
		Backoff:    DefaultBackoff,
		MaxTimeout: DefaultMaxTimeout,
		Deadline:   DefaultDeadline,
	}
}

// WithDefaults fills zero fields with the default policy values.
func (r Recovery) WithDefaults() Recovery {
	if r.Timeout <= 0 {
		r.Timeout = DefaultTimeout
	}
	if r.Backoff < 1 {
		r.Backoff = DefaultBackoff
	}
	if r.MaxTimeout <= 0 {
		r.MaxTimeout = DefaultMaxTimeout
	}
	if r.MaxTimeout < r.Timeout {
		r.MaxTimeout = r.Timeout
	}
	if r.Deadline <= 0 {
		r.Deadline = DefaultDeadline
	}
	return r
}

// TimeoutAt returns the ack timeout armed after delivery attempt
// `attempt` (0 = the original send): Timeout*Backoff^attempt, capped at
// MaxTimeout. Call on a policy with defaults filled.
func (r Recovery) TimeoutAt(attempt int32) time.Duration {
	d := float64(r.Timeout)
	for i := int32(0); i < attempt; i++ {
		d *= r.Backoff
		if d >= float64(r.MaxTimeout) {
			return r.MaxTimeout
		}
	}
	if t := time.Duration(d); t < r.MaxTimeout {
		return t
	}
	return r.MaxTimeout
}

// Report is the structured outcome of graceful degradation: a message
// stayed unacknowledged past the recovery deadline (a node died, paused
// past the deadline, or the fault plan outran the retransmit budget), so
// the run stopped instead of hanging. It implements error; unwrap it with
// errors.As.
type Report struct {
	// ID identifies the oldest unacknowledged message; its Dst is the
	// unresponsive node.
	ID MsgID
	// Seq is the message's lane sequence number.
	Seq uint64
	// Attempts is the number of delivery attempts made (1 = only the
	// original send).
	Attempts int32
	// Waited is how long the sender waited past the first send.
	Waited time.Duration
	// Deadline is the policy deadline that expired.
	Deadline time.Duration
	// Stats snapshots the run's fault counters at failure time.
	Stats Stats
	// PeerLost marks a transport-level failure of a distributed run: the
	// connection to rank DeadRank stayed down past the recovery deadline
	// (the message fields above are zero — no single message is to blame,
	// the peer process is gone).
	PeerLost bool
	DeadRank int
}

func (r *Report) Error() string {
	if r.PeerLost {
		return fmt.Sprintf("fault: rank %d lost: connection down past deadline %v (waited %v); %v",
			r.DeadRank, r.Deadline, r.Waited.Round(time.Millisecond), r.Stats)
	}
	return fmt.Sprintf("fault: node %d unresponsive: %v unacked after %v (%d attempts, deadline %v); %v",
		r.ID.Dst, r.ID, r.Waited.Round(time.Millisecond), r.Attempts, r.Deadline, r.Stats)
}

// --- plan spec parsing (the -fault flag) ---

// SpecSyntax documents the ParsePlan grammar, for flag help.
const SpecSyntax = "drop=P,dup=P,delay=P[,delayby=DUR],reorder=P[,reorderby=DUR],seed=N" +
	",slow=NODE:CORE:EXTRA:TASKS,stall=NODE:AFTER:DUR,pause=NODE:AFTER:DUR"

// ParsePlan parses a fault-plan spec string like
//
//	drop=0.01,dup=0.02,delay=0.05,delayby=200us,seed=7,pause=2:10:50ms
//
// Keys: drop, dup, delay, reorder (probabilities in [0,1]); delayby,
// reorderby (durations); seed (uint64); slow=NODE:CORE:EXTRA:TASKS,
// stall=NODE:AFTER:DUR and pause=NODE:AFTER:DUR (repeatable). An empty
// spec (or "off"/"none") returns nil — no faults.
func ParsePlan(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" || spec == "none" {
		return nil, nil
	}
	p := &Plan{}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("fault: bad spec element %q (want key=value; syntax: %s)", kv, SpecSyntax)
		}
		var err error
		switch k {
		case "drop":
			p.Drop, err = parseProb(k, v)
		case "dup":
			p.Dup, err = parseProb(k, v)
		case "delay":
			p.Delay, err = parseProb(k, v)
		case "reorder":
			p.Reorder, err = parseProb(k, v)
		case "delayby":
			p.DelayBy, err = time.ParseDuration(v)
		case "reorderby":
			p.ReorderBy, err = time.ParseDuration(v)
		case "seed":
			p.Seed, err = strconv.ParseUint(v, 0, 64)
		case "slow":
			var s SlowCore
			s, err = parseSlow(v)
			p.SlowCores = append(p.SlowCores, s)
		case "stall":
			var n int32
			var after int
			var d time.Duration
			n, after, d, err = parseNodeEpisode(k, v)
			p.CommStalls = append(p.CommStalls, CommStall{Node: n, After: after, Stall: d})
		case "pause":
			var n int32
			var after int
			var d time.Duration
			n, after, d, err = parseNodeEpisode(k, v)
			p.Pauses = append(p.Pauses, NodePause{Node: n, AfterTasks: after, Pause: d})
		default:
			return nil, fmt.Errorf("fault: unknown spec key %q (syntax: %s)", k, SpecSyntax)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: bad %s value %q: %v", k, v, err)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseProb(key, v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("probability outside [0,1]")
	}
	return f, nil
}

func parseSlow(v string) (SlowCore, error) {
	parts := strings.Split(v, ":")
	if len(parts) != 4 {
		return SlowCore{}, fmt.Errorf("want NODE:CORE:EXTRA:TASKS")
	}
	node, err := strconv.Atoi(parts[0])
	if err != nil {
		return SlowCore{}, err
	}
	core, err := strconv.Atoi(parts[1])
	if err != nil {
		return SlowCore{}, err
	}
	extra, err := time.ParseDuration(parts[2])
	if err != nil {
		return SlowCore{}, err
	}
	tasks, err := strconv.Atoi(parts[3])
	if err != nil {
		return SlowCore{}, err
	}
	return SlowCore{Node: int32(node), Core: int32(core), Extra: extra, Tasks: tasks}, nil
}

func parseNodeEpisode(key, v string) (int32, int, time.Duration, error) {
	parts := strings.Split(v, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("want NODE:AFTER:DUR")
	}
	node, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, 0, err
	}
	after, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, 0, err
	}
	d, err := time.ParseDuration(parts[2])
	if err != nil {
		return 0, 0, 0, err
	}
	return int32(node), after, d, nil
}

// String renders the plan back into (canonical) spec syntax.
func (p *Plan) String() string {
	if p == nil {
		return "off"
	}
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, k+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	add("drop", p.Drop)
	add("dup", p.Dup)
	add("delay", p.Delay)
	if p.DelayBy > 0 {
		parts = append(parts, "delayby="+p.DelayBy.String())
	}
	add("reorder", p.Reorder)
	if p.ReorderBy > 0 {
		parts = append(parts, "reorderby="+p.ReorderBy.String())
	}
	if p.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatUint(p.Seed, 10))
	}
	for _, s := range p.SlowCores {
		parts = append(parts, fmt.Sprintf("slow=%d:%d:%v:%d", s.Node, s.Core, s.Extra, s.Tasks))
	}
	for _, s := range p.CommStalls {
		parts = append(parts, fmt.Sprintf("stall=%d:%d:%v", s.Node, s.After, s.Stall))
	}
	for _, s := range p.Pauses {
		parts = append(parts, fmt.Sprintf("pause=%d:%d:%v", s.Node, s.AfterTasks, s.Pause))
	}
	if len(parts) == 0 {
		return "off"
	}
	return strings.Join(parts, ",")
}
