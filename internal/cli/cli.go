// Package cli is the shared flag registry for the stencil command-line
// binaries. Each engine-facing flag is defined exactly once here as a
// flag.Value wrapping the canonical parser (runtime.ParseSched,
// ptg.ParseCoalesce, machine.ByName, fault.ParsePlan), so every binary
// accepts identical spellings with identical help text, typos fail at
// flag-parse time instead of deep inside a run, and adding a spelling in
// one parser updates every command at once.
package cli

import (
	"flag"
	"fmt"
	"net"
	"strconv"

	"castencil/internal/core"
	"castencil/internal/fault"
	"castencil/internal/machine"
	"castencil/internal/ptg"
	"castencil/internal/runtime"
)

// SchedFlag is the -sched flag: a scheduler spelling resolved through
// runtime.ParseSched. The zero value means "not set" (bench experiments
// read that as "all schedulers").
type SchedFlag struct {
	// Name is the raw spelling as passed ("" when unset).
	Name string
	// Sched and Policy are the resolved configuration (valid when Name
	// is non-empty).
	Sched  runtime.Sched
	Policy runtime.Policy
}

func (f *SchedFlag) String() string { return f.Name }

// Set parses and validates a scheduler spelling; "" resets to unset.
func (f *SchedFlag) Set(s string) error {
	if s == "" {
		*f = SchedFlag{}
		return nil
	}
	sc, pol, err := runtime.ParseSched(s)
	if err != nil {
		return err
	}
	f.Name, f.Sched, f.Policy = s, sc, pol
	return nil
}

// SchedVar registers -sched on fs with the given default spelling (""
// leaves it unset). A bad default is a programmer error and panics.
func SchedVar(fs *flag.FlagSet, def string) *SchedFlag {
	f := &SchedFlag{}
	if err := f.Set(def); err != nil {
		panic(fmt.Sprintf("cli: bad default -sched %q: %v", def, err))
	}
	fs.Var(f, "sched", "real-engine scheduler: "+runtime.SchedNames)
	return f
}

// ParseSteal is the canonical parser for inter-node work-stealing modes:
// "off" (or ""), "greedy", "gated". Every surface that accepts a steal
// spelling — the -steal flag here, the job-spec "steal" field in
// internal/server, the facade's cluster options — resolves through it, so
// the accepted vocabulary is defined exactly once.
func ParseSteal(s string) (runtime.StealMode, error) {
	switch s {
	case "", "off":
		return runtime.StealOff, nil
	case "greedy":
		return runtime.StealGreedy, nil
	case "gated":
		return runtime.StealGated, nil
	}
	return runtime.StealOff, fmt.Errorf("unknown steal mode %q (want %s)", s, runtime.StealNames)
}

// StealFlag is the -steal flag: an inter-node work-stealing mode resolved
// through ParseSteal. Name keeps the raw spelling so bench experiments can
// distinguish "unset" from an explicit "off".
type StealFlag struct {
	Name string
	Mode runtime.StealMode
}

func (f *StealFlag) String() string { return f.Name }

// Set parses and validates a steal mode; "" resets to unset.
func (f *StealFlag) Set(s string) error {
	if s == "" {
		*f = StealFlag{}
		return nil
	}
	m, err := ParseSteal(s)
	if err != nil {
		return err
	}
	f.Name, f.Mode = s, m
	return nil
}

// StealVar registers -steal on fs with the given default spelling (""
// leaves it unset). A bad default panics.
func StealVar(fs *flag.FlagSet, def string) *StealFlag {
	f := &StealFlag{}
	if err := f.Set(def); err != nil {
		panic(fmt.Sprintf("cli: bad default -steal %q: %v", def, err))
	}
	fs.Var(f, "steal", "inter-node work stealing (distributed runs): "+runtime.StealNames)
	return f
}

// CoalesceFlag is the -coalesce flag: a halo-bundle coalescing mode
// resolved through ptg.ParseCoalesce. Name keeps the raw spelling so
// bench experiments can distinguish "unset" (run every mode) from an
// explicit "off".
type CoalesceFlag struct {
	Name string
	Mode ptg.CoalesceMode
}

func (f *CoalesceFlag) String() string { return f.Name }

// Set parses and validates a coalescing mode; "" resets to unset.
func (f *CoalesceFlag) Set(s string) error {
	if s == "" {
		*f = CoalesceFlag{}
		return nil
	}
	m, err := ptg.ParseCoalesce(s)
	if err != nil {
		return err
	}
	f.Name, f.Mode = s, m
	return nil
}

// CoalesceVar registers -coalesce on fs with the given default spelling
// ("" leaves it unset). A bad default panics.
func CoalesceVar(fs *flag.FlagSet, def string) *CoalesceFlag {
	f := &CoalesceFlag{}
	if err := f.Set(def); err != nil {
		panic(fmt.Sprintf("cli: bad default -coalesce %q: %v", def, err))
	}
	fs.Var(f, "coalesce", "halo-bundle coalescing: "+ptg.CoalesceNames)
	return f
}

// TransformFlag is the -transform flag: a graph-transformation mode
// resolved through core.ParseTransform. Name keeps the raw spelling so
// bench experiments can distinguish "unset" (run both) from an explicit
// "none".
type TransformFlag struct {
	Name string
	Mode core.TransformMode
}

func (f *TransformFlag) String() string { return f.Name }

// Set parses and validates a transform mode; "" resets to unset.
func (f *TransformFlag) Set(s string) error {
	if s == "" {
		*f = TransformFlag{}
		return nil
	}
	m, err := core.ParseTransform(s)
	if err != nil {
		return err
	}
	f.Name, f.Mode = s, m
	return nil
}

// TransformVar registers -transform on fs with the given default spelling
// ("" leaves it unset). A bad default panics.
func TransformVar(fs *flag.FlagSet, def string) *TransformFlag {
	f := &TransformFlag{}
	if err := f.Set(def); err != nil {
		panic(fmt.Sprintf("cli: bad default -transform %q: %v", def, err))
	}
	fs.Var(f, "transform", "graph transformation: "+core.TransformNames+" (split = inner/border overlap)")
	return f
}

// MachineFlag is the -machine flag: a built-in cluster model resolved
// through machine.ByName.
type MachineFlag struct {
	Name  string
	Model *machine.Model
}

func (f *MachineFlag) String() string { return f.Name }

func (f *MachineFlag) Set(s string) error {
	m, err := machine.ByName(s)
	if err != nil {
		return err
	}
	f.Name, f.Model = s, m
	return nil
}

// MachineVar registers -machine on fs with the given default model name.
// A bad default panics.
func MachineVar(fs *flag.FlagSet, def string) *MachineFlag {
	f := &MachineFlag{}
	if err := f.Set(def); err != nil {
		panic(fmt.Sprintf("cli: bad default -machine %q: %v", def, err))
	}
	fs.Var(f, "machine", "machine model: NaCL or Stampede2")
	return f
}

// FaultFlag is the -fault flag: a deterministic fault-injection spec
// parsed through fault.ParsePlan. Plan is nil when unset (or when the
// spec is "off"/"none").
type FaultFlag struct {
	Spec string
	Plan *fault.Plan
}

func (f *FaultFlag) String() string { return f.Spec }

func (f *FaultFlag) Set(s string) error {
	p, err := fault.ParsePlan(s)
	if err != nil {
		return err
	}
	f.Spec, f.Plan = s, p
	return nil
}

// FaultVar registers -fault on fs (default: no fault injection).
func FaultVar(fs *flag.FlagSet) *FaultFlag {
	f := &FaultFlag{}
	fs.Var(f, "fault", "fault-injection spec, e.g. \"drop=0.01,seed=7\"; grammar: "+fault.SpecSyntax)
	return f
}

// ListenFlag is the -listen flag: a TCP listen address validated at
// flag-parse time (net.SplitHostPort rules, port required), so a daemon
// fails before binding rather than at first request.
type ListenFlag struct {
	Addr string
}

func (f *ListenFlag) String() string { return f.Addr }

func (f *ListenFlag) Set(s string) error {
	host, port, err := net.SplitHostPort(s)
	if err != nil {
		return fmt.Errorf("listen address %q: %v", s, err)
	}
	if port == "" {
		return fmt.Errorf("listen address %q has no port", s)
	}
	if _, err := net.LookupPort("tcp", port); err != nil {
		return fmt.Errorf("listen address %q: bad port: %v", s, err)
	}
	_ = host // empty host = all interfaces, valid
	f.Addr = s
	return nil
}

// ListenVar registers -listen on fs with the given default address. A bad
// default panics.
func ListenVar(fs *flag.FlagSet, def string) *ListenFlag {
	f := &ListenFlag{}
	if err := f.Set(def); err != nil {
		panic(fmt.Sprintf("cli: bad default -listen %q: %v", def, err))
	}
	fs.Var(f, "listen", "TCP listen address (host:port; empty host = all interfaces)")
	return f
}

// RanksFlag is the -ranks flag: the static member list of a multi-process
// distributed run — comma-separated host:port addresses, one per rank, the
// identical list passed to every process. Each address is validated with
// the -listen rules at parse time. Empty (the default) means no
// distribution.
type RanksFlag struct {
	Addrs []string
	raw   string
}

func (f *RanksFlag) String() string { return f.raw }

func (f *RanksFlag) Set(s string) error {
	if s == "" {
		*f = RanksFlag{}
		return nil
	}
	var addrs []string
	for start := 0; start <= len(s); {
		end := start
		for end < len(s) && s[end] != ',' {
			end++
		}
		addr := s[start:end]
		var probe ListenFlag
		if err := probe.Set(addr); err != nil {
			return fmt.Errorf("rank %d: %v", len(addrs), err)
		}
		addrs = append(addrs, addr)
		start = end + 1
	}
	if len(addrs) < 2 {
		return fmt.Errorf("-ranks needs at least 2 addresses, got %d", len(addrs))
	}
	f.Addrs, f.raw = addrs, s
	return nil
}

// RanksVar registers -ranks on fs (default: unset, single-process).
func RanksVar(fs *flag.FlagSet) *RanksFlag {
	f := &RanksFlag{}
	fs.Var(f, "ranks", "distributed member list: comma-separated host:port, one per rank (empty = single process)")
	return f
}

// RankFlag is the -rank flag: this process's index into the -ranks list.
// Bounds against the list length are checked by the caller once both flags
// are parsed; here only non-negativity is enforced.
type RankFlag struct {
	N int
}

func (f *RankFlag) String() string { return strconv.Itoa(f.N) }

func (f *RankFlag) Set(s string) error {
	n, err := strconv.Atoi(s)
	if err != nil {
		return fmt.Errorf("-rank %q: %v", s, err)
	}
	if n < 0 {
		return fmt.Errorf("-rank must be >= 0, got %d", n)
	}
	f.N = n
	return nil
}

// RankVar registers -rank on fs (default 0).
func RankVar(fs *flag.FlagSet) *RankFlag {
	f := &RankFlag{}
	fs.Var(f, "rank", "this process's rank in the -ranks list")
	return f
}

// ResolveRanks cross-validates the -rank/-ranks pair after parsing: with
// -ranks set it returns (rank, addrs, true) and errors on an out-of-range
// rank; unset returns ok=false (single-process).
func ResolveRanks(rank *RankFlag, ranks *RanksFlag) (int, []string, bool, error) {
	if len(ranks.Addrs) == 0 {
		if rank.N != 0 {
			return 0, nil, false, fmt.Errorf("-rank %d without -ranks", rank.N)
		}
		return 0, nil, false, nil
	}
	if rank.N >= len(ranks.Addrs) {
		return 0, nil, false, fmt.Errorf("-rank %d out of range for %d ranks", rank.N, len(ranks.Addrs))
	}
	return rank.N, ranks.Addrs, true, nil
}

// PosIntFlag is a strictly positive integer flag (daemon sizing knobs:
// -maxjobs, -queue). Zero or negative values fail at parse time.
type PosIntFlag struct {
	name string
	N    int
}

func (f *PosIntFlag) String() string { return strconv.Itoa(f.N) }

func (f *PosIntFlag) Set(s string) error {
	n, err := strconv.Atoi(s)
	if err != nil {
		return fmt.Errorf("-%s %q: %v", f.name, s, err)
	}
	if n < 1 {
		return fmt.Errorf("-%s must be >= 1, got %d", f.name, n)
	}
	f.N = n
	return nil
}

// WavefrontVar registers -wavefront: the WF variant's block width (time
// steps per fused wavefront task, ghost depth, exchange period). The
// registry reuses the positive-integer validation of the sizing knobs, so a
// zero or negative width fails at parse time in every binary identically.
func WavefrontVar(fs *flag.FlagSet, def int) *PosIntFlag {
	f := &PosIntFlag{name: "wavefront", N: def}
	fs.Var(f, "wavefront", "WF block width w (steps per fused wavefront task)")
	return f
}

// MaxJobsVar registers -maxjobs: the daemon's executor pool size (jobs
// running concurrently).
func MaxJobsVar(fs *flag.FlagSet, def int) *PosIntFlag {
	f := &PosIntFlag{name: "maxjobs", N: def}
	fs.Var(f, "maxjobs", "jobs executing concurrently (executor pool size)")
	return f
}

// QueueVar registers -queue: the daemon's admission queue bound, past
// which submissions are rejected with backpressure.
func QueueVar(fs *flag.FlagSet, def int) *PosIntFlag {
	f := &PosIntFlag{name: "queue", N: def}
	fs.Var(f, "queue", "admission queue bound (submissions past it get 429)")
	return f
}

// BackendsFlag is the -backends flag of the fleet gateway: the
// comma-separated stencild addresses the gateway shards across. Each entry
// is host:port or a full http(s) URL; bare addresses are validated with
// the -listen rules at parse time. At least one backend is required.
type BackendsFlag struct {
	Addrs []string
	raw   string
}

func (f *BackendsFlag) String() string { return f.raw }

func (f *BackendsFlag) Set(s string) error {
	if s == "" {
		*f = BackendsFlag{}
		return nil
	}
	var addrs []string
	for start := 0; start <= len(s); {
		end := start
		for end < len(s) && s[end] != ',' {
			end++
		}
		addr := s[start:end]
		bare := addr
		if after, ok := cutPrefix(bare, "http://"); ok {
			bare = after
		} else if after, ok := cutPrefix(bare, "https://"); ok {
			bare = after
		}
		for len(bare) > 0 && bare[len(bare)-1] == '/' {
			bare = bare[:len(bare)-1]
		}
		var probe ListenFlag
		if err := probe.Set(bare); err != nil {
			return fmt.Errorf("backend %d: %v", len(addrs), err)
		}
		addrs = append(addrs, addr)
		start = end + 1
	}
	f.Addrs, f.raw = addrs, s
	return nil
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return s, false
}

// BackendsVar registers -backends on fs (no default; the gateway refuses
// to start without at least one).
func BackendsVar(fs *flag.FlagSet) *BackendsFlag {
	f := &BackendsFlag{}
	fs.Var(f, "backends", "stencild backends: comma-separated host:port (or http URLs) the gateway shards across")
	return f
}

// TenantsFlag is the -tenants flag of the fleet gateway: the fair-share
// weight table, "name=weight" pairs comma-separated (e.g.
// "prod=4,batch=1"). Weights are strictly positive integers; tenants not
// listed weigh 1.
type TenantsFlag struct {
	Weights map[string]int
	raw     string
}

func (f *TenantsFlag) String() string { return f.raw }

func (f *TenantsFlag) Set(s string) error {
	if s == "" {
		*f = TenantsFlag{}
		return nil
	}
	w := make(map[string]int)
	for start := 0; start <= len(s); {
		end := start
		for end < len(s) && s[end] != ',' {
			end++
		}
		pair := s[start:end]
		eq := -1
		for i := 0; i < len(pair); i++ {
			if pair[i] == '=' {
				eq = i
				break
			}
		}
		if eq <= 0 || eq == len(pair)-1 {
			return fmt.Errorf("-tenants entry %q: want name=weight", pair)
		}
		name := pair[:eq]
		n, err := strconv.Atoi(pair[eq+1:])
		if err != nil {
			return fmt.Errorf("-tenants entry %q: bad weight: %v", pair, err)
		}
		if n < 1 {
			return fmt.Errorf("-tenants entry %q: weight must be >= 1", pair)
		}
		if _, dup := w[name]; dup {
			return fmt.Errorf("-tenants entry %q: duplicate tenant", pair)
		}
		w[name] = n
		start = end + 1
	}
	f.Weights, f.raw = w, s
	return nil
}

// TenantsVar registers -tenants on fs (default: every tenant weighs 1).
func TenantsVar(fs *flag.FlagSet) *TenantsFlag {
	f := &TenantsFlag{}
	fs.Var(f, "tenants", "fair-share weights: comma-separated name=weight (unlisted tenants weigh 1)")
	return f
}

// SizeFlag is a byte-size flag (-cache-bytes): a positive integer with an
// optional k/m/g suffix (binary units), e.g. "64m". Zero disables the
// bounded resource it sizes only where the command says so; here the
// parser just requires >= 1 byte.
type SizeFlag struct {
	name  string
	Bytes int64
}

func (f *SizeFlag) String() string { return strconv.FormatInt(f.Bytes, 10) }

func (f *SizeFlag) Set(s string) error {
	if s == "" {
		return fmt.Errorf("-%s: empty size", f.name)
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return fmt.Errorf("-%s %q: %v", f.name, s, err)
	}
	if n < 1 {
		return fmt.Errorf("-%s must be >= 1 byte, got %d", f.name, n)
	}
	f.Bytes = n * mult
	return nil
}

// SizeVar registers a byte-size flag with a binary-suffix grammar.
func SizeVar(fs *flag.FlagSet, name string, def int64, usage string) *SizeFlag {
	f := &SizeFlag{name: name, Bytes: def}
	fs.Var(f, name, usage)
	return f
}
