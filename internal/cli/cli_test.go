package cli

import (
	"flag"
	"testing"

	"castencil/internal/ptg"
	"castencil/internal/runtime"
)

func newSet(t *testing.T) *flag.FlagSet {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	return fs
}

func TestSchedFlag(t *testing.T) {
	fs := newSet(t)
	f := SchedVar(fs, "steal")
	if f.Sched != runtime.WorkStealing {
		t.Fatalf("default: got %v, want WorkStealing", f.Sched)
	}
	if err := fs.Parse([]string{"-sched", "priority"}); err != nil {
		t.Fatal(err)
	}
	if f.Sched != runtime.SharedQueue || f.Policy != runtime.PriorityOrder {
		t.Fatalf("got (%v, %v), want (SharedQueue, PriorityOrder)", f.Sched, f.Policy)
	}
	if err := fs.Parse([]string{"-sched", "bogus"}); err == nil {
		t.Fatal("bad spelling accepted")
	}
}

func TestCoalesceFlag(t *testing.T) {
	fs := newSet(t)
	f := CoalesceVar(fs, "")
	if f.Name != "" {
		t.Fatalf("unset default has Name %q", f.Name)
	}
	if err := fs.Parse([]string{"-coalesce", "step"}); err != nil {
		t.Fatal(err)
	}
	if f.Mode != ptg.CoalesceStep || f.Name != "step" {
		t.Fatalf("got (%v, %q)", f.Mode, f.Name)
	}
	if err := fs.Parse([]string{"-coalesce", "sideways"}); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestMachineFlag(t *testing.T) {
	fs := newSet(t)
	f := MachineVar(fs, "NaCL")
	if f.Model == nil || f.Model.Name != "NaCL" {
		t.Fatalf("default model = %+v", f.Model)
	}
	if err := fs.Parse([]string{"-machine", "Stampede2"}); err != nil {
		t.Fatal(err)
	}
	if f.Model.Name != "Stampede2" {
		t.Fatalf("got %q", f.Model.Name)
	}
	if err := fs.Parse([]string{"-machine", "Frontier"}); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestFaultFlag(t *testing.T) {
	fs := newSet(t)
	f := FaultVar(fs)
	if f.Plan != nil {
		t.Fatal("default plan should be nil")
	}
	if err := fs.Parse([]string{"-fault", "drop=0.01,seed=7"}); err != nil {
		t.Fatal(err)
	}
	if f.Plan == nil || f.Plan.Drop != 0.01 || f.Plan.Seed != 7 {
		t.Fatalf("plan = %+v", f.Plan)
	}
	if err := fs.Parse([]string{"-fault", "drop=2"}); err == nil {
		t.Fatal("out-of-range probability accepted")
	}
	if err := fs.Parse([]string{"-fault", "off"}); err != nil {
		t.Fatal(err)
	} else if f.Plan != nil {
		t.Fatal("\"off\" should clear the plan")
	}
}

func TestBadDefaultsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad default did not panic")
		}
	}()
	SchedVar(newSet(t), "bogus")
}

func TestListenFlag(t *testing.T) {
	fs := newSet(t)
	f := ListenVar(fs, ":8080")
	if f.Addr != ":8080" {
		t.Fatalf("default = %q", f.Addr)
	}
	if err := fs.Parse([]string{"-listen", "127.0.0.1:9000"}); err != nil {
		t.Fatal(err)
	}
	if f.Addr != "127.0.0.1:9000" {
		t.Fatalf("got %q", f.Addr)
	}
	for _, bad := range []string{"no-port", "127.0.0.1", ":notaport", ""} {
		if err := fs.Parse([]string{"-listen", bad}); err == nil {
			t.Errorf("bad address %q accepted", bad)
		}
	}
}

func TestPosIntFlags(t *testing.T) {
	fs := newSet(t)
	mj := MaxJobsVar(fs, 2)
	q := QueueVar(fs, 64)
	if mj.N != 2 || q.N != 64 {
		t.Fatalf("defaults = %d, %d", mj.N, q.N)
	}
	if err := fs.Parse([]string{"-maxjobs", "4", "-queue", "128"}); err != nil {
		t.Fatal(err)
	}
	if mj.N != 4 || q.N != 128 {
		t.Fatalf("got %d, %d", mj.N, q.N)
	}
	for _, bad := range []string{"0", "-1", "two"} {
		if err := fs.Parse([]string{"-maxjobs", bad}); err == nil {
			t.Errorf("bad -maxjobs %q accepted", bad)
		}
	}
}

func TestRanksFlags(t *testing.T) {
	fs := newSet(t)
	rank := RankVar(fs)
	ranks := RanksVar(fs)
	if err := fs.Parse([]string{"-rank", "1", "-ranks", "127.0.0.1:9000,127.0.0.1:9001"}); err != nil {
		t.Fatal(err)
	}
	r, addrs, ok, err := ResolveRanks(rank, ranks)
	if err != nil || !ok {
		t.Fatalf("ResolveRanks: %v ok=%v", err, ok)
	}
	if r != 1 || len(addrs) != 2 || addrs[0] != "127.0.0.1:9000" || addrs[1] != "127.0.0.1:9001" {
		t.Fatalf("resolved rank %d addrs %v", r, addrs)
	}
	for _, bad := range []string{
		"127.0.0.1:9000",                // one rank is not distributed
		"127.0.0.1:9000,no-port",        // member without a port
		"127.0.0.1:9000,,127.0.0.1:901", // empty member
		"",                              // -ranks= explicit empty stays unset, but rank 1 then errors in resolve
	} {
		fs2 := newSet(t)
		ranks2 := RanksVar(fs2)
		if err := fs2.Parse([]string{"-ranks", bad}); bad != "" && err == nil {
			t.Errorf("bad -ranks %q accepted", bad)
		}
		_ = ranks2
	}
	// -rank without -ranks is an error at resolve time.
	fs3 := newSet(t)
	rank3 := RankVar(fs3)
	ranks3 := RanksVar(fs3)
	if err := fs3.Parse([]string{"-rank", "1"}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ResolveRanks(rank3, ranks3); err == nil {
		t.Error("-rank without -ranks accepted")
	}
	// Out-of-range rank.
	fs4 := newSet(t)
	rank4 := RankVar(fs4)
	ranks4 := RanksVar(fs4)
	if err := fs4.Parse([]string{"-rank", "2", "-ranks", "127.0.0.1:9000,127.0.0.1:9001"}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ResolveRanks(rank4, ranks4); err == nil {
		t.Error("out-of-range -rank accepted")
	}
	// Negative rank fails at parse time.
	fs5 := newSet(t)
	RankVar(fs5)
	if err := fs5.Parse([]string{"-rank", "-1"}); err == nil {
		t.Error("negative -rank accepted")
	}
}

func TestBackendsFlag(t *testing.T) {
	fs := newSet(t)
	backends := BackendsVar(fs)
	if err := fs.Parse([]string{"-backends", "127.0.0.1:8421,http://127.0.0.1:8422,https://box:8423/"}); err != nil {
		t.Fatal(err)
	}
	want := []string{"127.0.0.1:8421", "http://127.0.0.1:8422", "https://box:8423/"}
	if len(backends.Addrs) != len(want) {
		t.Fatalf("parsed %d backends, want %d", len(backends.Addrs), len(want))
	}
	for i := range want {
		if backends.Addrs[i] != want[i] {
			t.Errorf("backend[%d] = %q, want %q", i, backends.Addrs[i], want[i])
		}
	}
	for _, bad := range []string{"no-port", "127.0.0.1:8421,,127.0.0.1:8422", "http://nohost"} {
		fs2 := newSet(t)
		BackendsVar(fs2)
		if err := fs2.Parse([]string{"-backends", bad}); err == nil {
			t.Errorf("bad -backends %q accepted", bad)
		}
	}
}

func TestTenantsFlag(t *testing.T) {
	fs := newSet(t)
	tenants := TenantsVar(fs)
	if err := fs.Parse([]string{"-tenants", "prod=4,batch=1"}); err != nil {
		t.Fatal(err)
	}
	if tenants.Weights["prod"] != 4 || tenants.Weights["batch"] != 1 {
		t.Fatalf("weights = %v, want prod=4 batch=1", tenants.Weights)
	}
	for _, bad := range []string{"prod", "prod=", "=4", "prod=0", "prod=-1", "prod=x", "prod=1,prod=2"} {
		fs2 := newSet(t)
		TenantsVar(fs2)
		if err := fs2.Parse([]string{"-tenants", bad}); err == nil {
			t.Errorf("bad -tenants %q accepted", bad)
		}
	}
}

func TestSizeFlag(t *testing.T) {
	cases := map[string]int64{
		"100": 100, "4k": 4 << 10, "64M": 64 << 20, "2g": 2 << 30,
	}
	for in, want := range cases {
		fs := newSet(t)
		size := SizeVar(fs, "cache-bytes", 1, "test")
		if err := fs.Parse([]string{"-cache-bytes", in}); err != nil {
			t.Fatalf("-cache-bytes %q: %v", in, err)
		}
		if size.Bytes != want {
			t.Errorf("-cache-bytes %q = %d, want %d", in, size.Bytes, want)
		}
	}
	for _, bad := range []string{"", "0", "-5", "x", "4t"} {
		fs := newSet(t)
		SizeVar(fs, "cache-bytes", 1, "test")
		if err := fs.Parse([]string{"-cache-bytes", bad}); err == nil {
			t.Errorf("bad -cache-bytes %q accepted", bad)
		}
	}
}
