package netcomm

import (
	"testing"

	"castencil/internal/runtime"
)

func BenchmarkLaneRoundTrip(b *testing.B) {
	ts := newMesh(b, 2, nil)
	for _, tr := range ts {
		tr.Begin()
	}
	got0, _ := bindSink(b, ts[0], 2)
	got1, _ := bindSink(b, ts[1], 2)
	const payloadLen = 512
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := runtime.GetBuf(payloadLen)
		ts[0].Send(runtime.Message{Src: 0, Dst: 1, Task: 1, Data: out})
		runtime.PutBuf(out)
		in := <-got1
		echo := runtime.GetBuf(payloadLen)
		copy(echo, in.Data)
		runtime.PutBuf(in.Data)
		ts[1].Send(runtime.Message{Src: 1, Dst: 0, Task: 2, Data: echo})
		runtime.PutBuf(echo)
		back := <-got0
		runtime.PutBuf(back.Data)
	}
}
