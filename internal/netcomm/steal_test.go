package netcomm

import (
	"bytes"
	"testing"

	"castencil/internal/runtime"
)

// TestStealFrameRoundTrip pins the steal codec for all four protocol kinds:
// the frame kind byte carries the steal kind, the body the shared header,
// and a decode must return the identical message.
func TestStealFrameRoundTrip(t *testing.T) {
	msgs := []runtime.StealMsg{
		{Kind: runtime.StealReq, From: 1, ID: 7, Task: -1},
		{Kind: runtime.StealRsp, From: 0, ID: 7, Task: 42, Forced: true, Data: bytes.Repeat([]byte{0xC5}, 300)},
		{Kind: runtime.StealRet, From: 1, ID: 8, Task: 42, Attempt: 3, Data: []byte("result payload")},
		{Kind: runtime.StealAck, From: 0, ID: 8, Task: 42},
	}
	for _, m := range msgs {
		f := mustFrame(t, appendStealFrame(nil, 5, m))
		if !stealFrame(f.Kind) {
			t.Fatalf("kind %d: frame kind %d is not a steal kind", m.Kind, f.Kind)
		}
		if f.Epoch != 5 {
			t.Errorf("kind %d: epoch %d, want 5", m.Kind, f.Epoch)
		}
		g := f.Steal
		if g.Kind != m.Kind || g.From != m.From || g.ID != m.ID || g.Task != m.Task ||
			g.Forced != m.Forced || g.Attempt != m.Attempt || !bytes.Equal(g.Data, m.Data) {
			t.Errorf("round trip mutated the message: sent %+v, got %+v", m, g)
		}
	}
}

// TestStealFrameTooShort pins rejection of a steal frame whose declared body
// is shorter than the fixed header.
func TestStealFrameTooShort(t *testing.T) {
	raw := appendStealFrame(nil, 0, runtime.StealMsg{Kind: runtime.StealReq})
	raw[0] = stealHdrLen - 1 // shrink the length prefix below the header
	var st readState
	if _, err := readFrame(bytes.NewReader(raw[:4+1+4+stealHdrLen-1]), &st, nil, 0); err == nil {
		t.Error("undersized steal frame accepted")
	}
}

// TestTransportStealExchange sends steal traffic and data traffic over the
// same mesh and checks the two are accounted apart: steal frames appear in
// both the general totals and the Steal* breakdown, so the halo-only view
// (FramesSent - StealFramesSent) is unpolluted.
func TestTransportStealExchange(t *testing.T) {
	ts := newMesh(t, 2, nil)
	for _, tr := range ts {
		tr.Begin()
	}
	bindSink(t, ts[0], 2)
	got1, _ := bindSink(t, ts[1], 2)
	base := ts[0].Stats() // mesh bring-up already cost hello frames
	steals := make(chan runtime.StealMsg, 8)
	ts[1].BindSteal(func(m runtime.StealMsg) { steals <- m })
	defer ts[1].BindSteal(nil)

	if err := ts[0].SendSteal(1, runtime.StealMsg{Kind: runtime.StealReq, From: 0, ID: 1, Task: -1}); err != nil {
		t.Fatal(err)
	}
	if err := ts[0].Send(runtime.Message{Src: 0, Dst: 1, Task: 9, Data: []byte("halo")}); err != nil {
		t.Fatal(err)
	}
	if err := ts[0].SendSteal(1, runtime.StealMsg{Kind: runtime.StealRsp, From: 0, ID: 1, Task: 9, Forced: true, Data: []byte("tile bytes")}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m := <-steals
		if m.ID != 1 {
			t.Errorf("steal delivery %d: id %d, want 1", i, m.ID)
		}
	}
	<-got1

	if err := ts[0].SendSteal(0, runtime.StealMsg{}); err == nil {
		t.Error("self-addressed steal frame accepted")
	}
	if err := ts[0].SendSteal(5, runtime.StealMsg{}); err == nil {
		t.Error("out-of-range steal rank accepted")
	}

	s := ts[0].Stats()
	if got := s.StealFramesSent - base.StealFramesSent; got != 2 {
		t.Errorf("StealFramesSent = %d, want 2", got)
	}
	halo := (s.FramesSent - base.FramesSent) - (s.StealFramesSent - base.StealFramesSent)
	if halo != 1 {
		t.Errorf("halo-only frames = %d, want the 1 data frame", halo)
	}
	stealB, totalB := s.StealBytesSent-base.StealBytesSent, s.BytesSent-base.BytesSent
	if stealB == 0 || stealB >= totalB {
		t.Errorf("steal bytes %d not a proper share of total %d", stealB, totalB)
	}
	r := ts[1].Stats()
	if r.StealFramesRecv != 2 {
		t.Errorf("receiver StealFramesRecv = %d, want 2", r.StealFramesRecv)
	}
}

// BenchmarkStealRoundTrip measures one probe/offer exchange over a real
// loopback lane: a payload-free StealReq one way, a tile-sized StealRsp
// back — the latency-bound control path the protocol's timers are tuned to.
func BenchmarkStealRoundTrip(b *testing.B) {
	ts := newMesh(b, 2, nil)
	for _, tr := range ts {
		tr.Begin()
	}
	const tileBytes = 16 * 1024
	reqs := make(chan runtime.StealMsg, 1)
	offers := make(chan runtime.StealMsg, 1)
	ts[1].BindSteal(func(m runtime.StealMsg) { reqs <- m })
	ts[0].BindSteal(func(m runtime.StealMsg) { offers <- m })
	defer ts[0].BindSteal(nil)
	defer ts[1].BindSteal(nil)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := uint64(i + 1)
		if err := ts[0].SendSteal(1, runtime.StealMsg{Kind: runtime.StealReq, From: 0, ID: id, Task: -1}); err != nil {
			b.Fatal(err)
		}
		req := <-reqs
		payload := runtime.GetBuf(tileBytes)
		err := ts[1].SendSteal(0, runtime.StealMsg{Kind: runtime.StealRsp, From: 1, ID: req.ID, Task: 3, Data: payload})
		runtime.PutBuf(payload)
		if err != nil {
			b.Fatal(err)
		}
		offer := <-offers
		if offer.Data != nil {
			runtime.PutBuf(offer.Data)
		}
	}
}
