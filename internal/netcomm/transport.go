package netcomm

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"castencil/internal/fault"
	"castencil/internal/metrics"
	"castencil/internal/ptg"
	"castencil/internal/runtime"
	"castencil/internal/trace"
)

var (
	errClosed   = errors.New("netcomm: transport closed")
	errPeerGone = errors.New("netcomm: connection down past recovery deadline")
)

// AbortError is the failure a peer broadcast instead of finishing its run;
// it fails this rank's collectives and bound run so nobody hangs waiting for
// data that will never arrive.
type AbortError struct {
	Rank   int
	Reason string
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("netcomm: rank %d aborted the run: %s", e.Rank, e.Reason)
}

// Options configures Connect.
type Options struct {
	// Rank is this process's index into Addrs; Addrs is the full static
	// member list (host:port per rank), identical on every rank.
	Rank  int
	Addrs []string
	// Listener, when non-nil, is the pre-bound listener for this rank's
	// address (tests bind 127.0.0.1:0 themselves to dodge port races). When
	// nil, Connect listens on Addrs[Rank].
	Listener net.Listener
	// PerMessage switches data frames to a fresh connection per message —
	// the non-persistent arm of the lanes ablation. The control plane stays
	// on persistent lanes.
	PerMessage bool
	// Recovery bounds reconnection: a lane down for longer than
	// Recovery.Deadline declares the peer dead. Zero value uses
	// fault.DefaultRecovery().
	Recovery fault.Recovery
	// ConnectTimeout bounds the initial mesh establishment (peers may start
	// seconds apart); default 30s.
	ConnectTimeout time.Duration
	// MaxFrame bounds an inbound frame body; 0 means DefaultMaxFrame.
	MaxFrame int
	// Trace, when non-nil, records wire:send / wire:recv events for the
	// traceview utilization rows. Metrics, when non-nil, registers the
	// stencild_net_* families.
	Trace   *trace.Trace
	Metrics *metrics.Registry
}

// binding is the run currently attached to the transport; swapped atomically
// so the readLoop hot path takes no lock.
type binding struct {
	numNodes int
	deliver  func(runtime.Message)
	fail     func(error)
}

// Stats is a snapshot of the transport's wire counters. Steal frames count
// in both the general totals and the Steal* breakdown, so halo-only traffic
// is FramesSent-StealFramesSent.
type Stats struct {
	FramesSent, FramesRecv           int64
	BytesSent, BytesRecv             int64
	StealFramesSent, StealFramesRecv int64
	StealBytesSent, StealBytesRecv   int64
	Reconnects                       int64
	Dials                            int64
	StaleFrames                      int64
}

// Transport implements runtime.Conduit over TCP. Construct with Connect; one
// Transport serves any number of sequential runs (epochs).
type Transport struct {
	rank  int
	addrs []string
	o     Options

	ln       net.Listener
	lanes    []*lane // indexed by rank; lanes[rank] == nil
	deadline time.Duration
	maxFrame int

	epoch     atomic.Uint32
	bind      atomic.Pointer[binding]
	stealBind atomic.Pointer[func(runtime.StealMsg)]
	col       *collectives

	jobs    chan []byte
	closed  atomic.Bool
	closeCh chan struct{}
	wg      sync.WaitGroup

	t0 atomic.Int64 // run start, unix nanos (trace timestamps)
	tr *trace.Trace
	nm *netMetrics

	framesSent, framesRecv           atomic.Int64
	bytesSent, bytesRecv             atomic.Int64
	stealFramesSent, stealFramesRecv atomic.Int64
	stealBytesSent, stealBytesRecv   atomic.Int64
	reconnects, dials                atomic.Int64
	staleFrames                      atomic.Int64
}

// Connect establishes the full mesh for Options.Rank: it listens on its own
// address, dials every lower rank, accepts every higher rank, and holds a
// hello barrier so no rank proceeds before the whole mesh is up. The
// returned Transport is ready to Bind a run.
func Connect(o Options) (*Transport, error) {
	if o.Rank < 0 || o.Rank >= len(o.Addrs) {
		return nil, fmt.Errorf("netcomm: rank %d out of range for %d addrs", o.Rank, len(o.Addrs))
	}
	if len(o.Addrs) < 2 {
		return nil, fmt.Errorf("netcomm: need at least 2 ranks, got %d", len(o.Addrs))
	}
	rec := o.Recovery
	if rec.Deadline <= 0 {
		rec = *fault.DefaultRecovery()
	}
	if o.ConnectTimeout <= 0 {
		o.ConnectTimeout = 30 * time.Second
	}
	t := &Transport{
		rank:     o.Rank,
		addrs:    o.Addrs,
		o:        o,
		deadline: rec.Deadline,
		maxFrame: o.MaxFrame,
		jobs:     make(chan []byte, 8),
		closeCh:  make(chan struct{}),
		tr:       o.Trace,
	}
	if t.maxFrame <= 0 {
		t.maxFrame = DefaultMaxFrame
	}
	if o.Metrics != nil {
		t.nm = newNetMetrics(o.Metrics, t)
	}
	t.col = newCollectives()
	t.t0.Store(time.Now().UnixNano())

	ln := o.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", o.Addrs[o.Rank])
		if err != nil {
			return nil, fmt.Errorf("netcomm: listen %s: %w", o.Addrs[o.Rank], err)
		}
	}
	t.ln = ln
	t.lanes = make([]*lane, len(o.Addrs))
	for p := range t.lanes {
		if p != t.rank {
			t.lanes[p] = newLane(t, p)
		}
	}

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.acceptLoop()
	}()

	// Dial every lower rank; higher ranks dial us and arrive via the accept
	// loop. Retry: peers may not be listening yet.
	start := time.Now()
	for p := 0; p < t.rank; p++ {
		backoff := 10 * time.Millisecond
		for {
			c, err := t.dialPeer(p, false)
			if err == nil {
				t.lanes[p].attach(c)
				break
			}
			if time.Since(start) > o.ConnectTimeout {
				t.Close()
				return nil, fmt.Errorf("netcomm: rank %d unreachable at %s: %w", p, o.Addrs[p], err)
			}
			time.Sleep(backoff)
			if backoff < 200*time.Millisecond {
				backoff *= 2
			}
		}
	}
	// Wait for every higher rank to have attached (they dial us).
	waitDeadline := start.Add(o.ConnectTimeout)
	for p := t.rank + 1; p < len(o.Addrs); p++ {
		for !t.lanes[p].up() {
			if time.Now().After(waitDeadline) {
				t.Close()
				return nil, fmt.Errorf("netcomm: rank %d never connected within %v", p, o.ConnectTimeout)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	// Hello barrier at epoch 0: nobody returns from Connect before every
	// pair of lanes is live in both directions.
	if err := t.Barrier("hello"); err != nil {
		t.Close()
		return nil, fmt.Errorf("netcomm: hello barrier: %w", err)
	}
	return t, nil
}

// dialPeer opens one connection to peer and speaks the hello. transient
// marks a per-message connection the acceptor must not attach as a lane.
func (t *Transport) dialPeer(peer int, transient bool) (net.Conn, error) {
	c, err := net.DialTimeout("tcp", t.addrs[peer], 2*time.Second)
	if err != nil {
		return nil, err
	}
	t.dials.Add(1)
	hello := appendHelloFrame(nil, t.rank, len(t.addrs), transient)
	if _, err := c.Write(hello); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// acceptLoop attaches inbound connections to their lanes by hello rank.
func (t *Transport) acceptLoop() {
	for {
		c, err := t.ln.Accept()
		if err != nil {
			if t.closed.Load() {
				return
			}
			select {
			case <-t.closeCh:
				return
			default:
			}
			continue
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.handleInbound(c)
		}()
	}
}

// handleInbound reads the hello and either attaches the connection as the
// peer's lane or (transient mode) drains data frames until EOF.
func (t *Transport) handleInbound(c net.Conn) {
	var st readState
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := readFrame(c, &st, nil, t.maxFrame)
	c.SetReadDeadline(time.Time{})
	if err != nil || f.Kind != kindHello {
		c.Close()
		return
	}
	h := f.Hello
	if h.Ranks != len(t.addrs) || h.Rank < 0 || h.Rank >= len(t.addrs) || h.Rank == t.rank {
		c.Close()
		return
	}
	if h.Transient {
		t.readLoop(nil, c)
		return
	}
	t.lanes[h.Rank].attach(c)
}

// readLoop decodes and dispatches frames from one connection until it drops.
// l is nil for transient (per-message) connections, which end at EOF without
// recovery.
func (t *Transport) readLoop(l *lane, c net.Conn) {
	var st readState
	var sr *stampReader
	var r = ioReader(c)
	if t.tr != nil {
		sr = &stampReader{r: c}
		r = sr
	}
	for {
		if sr != nil {
			sr.armed = true
		}
		f, err := readFrame(r, &st, runtime.GetBuf, t.maxFrame)
		if err != nil {
			c.Close()
			if l != nil && !t.closed.Load() {
				l.drop(c, err)
			}
			return
		}
		t.dispatch(l, f, sr)
	}
}

// ioReader exists so readLoop's reader variable has an interface type
// whether or not the stamp wrapper is in play.
func ioReader(c net.Conn) interface{ Read([]byte) (int, error) } { return c }

// stampReader notes the arrival time of the first byte of each frame, so
// wire:recv trace events measure transfer time, not idle blocking.
type stampReader struct {
	r     interface{ Read([]byte) (int, error) }
	armed bool
	stamp time.Time
}

func (s *stampReader) Read(p []byte) (int, error) {
	n, err := s.r.Read(p)
	if s.armed && n > 0 {
		s.stamp = time.Now()
		s.armed = false
	}
	return n, err
}

// dispatch routes one decoded frame. Data frames from a stale epoch are
// dropped (their payload recycled); control frames feed the collectives.
func (t *Transport) dispatch(l *lane, f Frame, sr *stampReader) {
	wire := prefixLen + frameBodyLen(f)
	t.framesRecv.Add(1)
	t.bytesRecv.Add(int64(wire))
	if t.nm != nil {
		t.nm.framesRecv.Inc()
		t.nm.bytesRecv.Add(int64(wire))
	}
	if stealFrame(f.Kind) {
		t.stealFramesRecv.Add(1)
		t.stealBytesRecv.Add(int64(wire))
		if sr != nil {
			t0 := t.runT0()
			peer := -1
			if l != nil {
				peer = l.peer
			}
			t.tr.Record(trace.Event{
				ID:   ptg.TaskID{Class: "wire:steal", I: peer, J: t.rank, K: int(f.Steal.Task)},
				Kind: ptg.KindComm, Node: int32(t.rank), Core: 0,
				Start: sr.stamp.Sub(t0), End: time.Since(t0), Msgs: 1, Bytes: wire,
			})
		}
		h := t.stealBind.Load()
		if f.Epoch != t.epoch.Load() || h == nil {
			// Stale epoch, or no steal-enabled run is bound (e.g. a retransmit
			// straggling past the drain barrier). Drop, recycling the payload.
			t.staleFrames.Add(1)
			if f.Steal.Data != nil {
				runtime.PutBuf(f.Steal.Data)
			}
			return
		}
		(*h)(f.Steal)
		return
	}
	switch f.Kind {
	case kindData:
		if sr != nil {
			t0 := t.runT0()
			peer := -1
			if l != nil {
				peer = l.peer
			}
			t.tr.Record(trace.Event{
				ID:   ptg.TaskID{Class: "wire:recv", I: peer, J: t.rank, K: int(f.Msg.Bundle)},
				Kind: ptg.KindComm, Node: int32(t.rank), Core: 0,
				Start: sr.stamp.Sub(t0), End: time.Since(t0), Msgs: 1, Bytes: wire,
			})
		}
		if f.Epoch != t.epoch.Load() {
			t.staleFrames.Add(1)
			if f.Msg.Data != nil {
				runtime.PutBuf(f.Msg.Data)
			}
			return
		}
		if l != nil && f.Msg.Ack && t.nm != nil {
			l.noteRTTAck(f.Msg)
		}
		b := t.bind.Load()
		if b == nil {
			// No run bound for the current epoch (should not happen: Bind
			// precedes the start barrier). Drop, don't crash.
			t.staleFrames.Add(1)
			if f.Msg.Data != nil {
				runtime.PutBuf(f.Msg.Data)
			}
			return
		}
		b.deliver(f.Msg)
	case kindCtl:
		switch f.Ctl.Op {
		case opJob:
			select {
			case t.jobs <- f.Ctl.Payload:
			case <-t.closeCh:
			}
		case opAbort:
			err := &AbortError{Rank: f.Ctl.From, Reason: string(f.Ctl.Payload)}
			t.col.abort(f.Epoch, err)
			if f.Epoch == t.epoch.Load() {
				t.failRun(err)
			}
		default:
			t.col.deposit(f.Epoch, f.Ctl.Op, f.Ctl.Tag, f.Ctl.From, f.Ctl.Payload)
		}
	case kindHello:
		// Late hello on an attached lane: ignore.
	}
}

// frameBodyLen reconstructs the body length of a decoded frame for byte
// accounting.
func frameBodyLen(f Frame) int {
	switch {
	case f.Kind == kindData:
		return dataHdrLen + len(f.Msg.Data)
	case stealFrame(f.Kind):
		return stealHdrLen + len(f.Steal.Data)
	case f.Kind == kindHello:
		return helloLen
	default:
		return 5 + len(f.Ctl.Tag) + len(f.Ctl.Payload)
	}
}

// failRun feeds a transport-level failure to the bound run, if any.
func (t *Transport) failRun(err error) {
	if b := t.bind.Load(); b != nil {
		b.fail(err)
	}
}

// peerDead declares a peer lost: its lane fails permanently with a
// *fault.Report naming the rank, collectives are poisoned transport-wide,
// and the bound run is failed.
func (t *Transport) peerDead(l *lane, cause error) {
	l.mu.Lock()
	if l.dead != nil {
		l.mu.Unlock()
		return
	}
	waited := time.Since(l.downSince)
	l.mu.Unlock()
	rep := &fault.Report{
		PeerLost: true,
		DeadRank: l.peer,
		Deadline: t.deadline,
		Waited:   waited,
	}
	_ = cause // the report is the user-facing error; cause is TCP noise
	l.die(rep)
	t.col.fatal(rep)
	t.failRun(rep)
}

// --- runtime.Conduit ---

// Rank reports this process's rank.
func (t *Transport) Rank() int { return t.rank }

// Ranks reports the member count.
func (t *Transport) Ranks() int { return len(t.addrs) }

// Begin opens the next run epoch: prior epochs' collective leftovers and
// poison are pruned, RTT tracking resets, and the trace clock re-zeroes so
// wire events line up with the run's own timeline.
func (t *Transport) Begin() {
	ep := t.epoch.Add(1)
	t.col.begin(ep)
	t.t0.Store(time.Now().UnixNano())
	for _, l := range t.lanes {
		if l != nil {
			l.clearRTT()
		}
	}
}

// Bind attaches a run (runtime.Conduit).
func (t *Transport) Bind(numNodes int, deliver func(runtime.Message), fail func(error)) error {
	if t.closed.Load() {
		return errClosed
	}
	if numNodes < len(t.addrs) {
		return fmt.Errorf("netcomm: %d ranks exceed %d virtual nodes", len(t.addrs), numNodes)
	}
	if err := t.col.fatalErr(); err != nil {
		return err
	}
	b := &binding{numNodes: numNodes, deliver: deliver, fail: fail}
	if !t.bind.CompareAndSwap(nil, b) {
		return fmt.Errorf("netcomm: a run is already bound")
	}
	return nil
}

// Unbind detaches the bound run.
func (t *Transport) Unbind() { t.bind.Store(nil) }

// Send ships m to the rank owning m.Dst (runtime.Conduit). The persistent
// path is allocation-free; the per-message path (lanes ablation) dials a
// fresh connection per frame.
func (t *Transport) Send(m runtime.Message) error {
	b := t.bind.Load()
	if b == nil {
		return fmt.Errorf("netcomm: Send with no bound run")
	}
	r := runtime.RankOfNode(int(m.Dst), b.numNodes, len(t.addrs))
	if r == t.rank {
		return fmt.Errorf("netcomm: message for node %d routes to own rank %d", m.Dst, t.rank)
	}
	l := t.lanes[r]
	ep := t.epoch.Load()
	if t.o.PerMessage {
		return t.sendPerMessage(l, ep, m)
	}
	return l.sendData(ep, m)
}

// SendSteal ships a steal-protocol message to the given rank
// (runtime.StealConduit). Steal frames always ride the persistent lane, even
// in per-message mode: the protocol is latency-bound control traffic, and the
// retransmit layer above assumes FIFO delivery per rank pair.
func (t *Transport) SendSteal(dst int, m runtime.StealMsg) error {
	if dst < 0 || dst >= len(t.addrs) || dst == t.rank {
		return fmt.Errorf("netcomm: steal frame for invalid rank %d", dst)
	}
	return t.lanes[dst].sendSteal(t.epoch.Load(), m)
}

// BindSteal installs (or, with nil, removes) the handler inbound steal frames
// are delivered to (runtime.StealConduit). The handler runs on the lane's
// reader goroutine and must not block; it owns m.Data.
func (t *Transport) BindSteal(h func(runtime.StealMsg)) {
	if h == nil {
		t.stealBind.Store(nil)
		return
	}
	t.stealBind.Store(&h)
}

// sendPerMessage is the ablation's non-persistent data path: dial, hello,
// one frame, close. Failures defer to the persistent control lane's health —
// if the peer is dead its lane says so; otherwise the dial error surfaces.
func (t *Transport) sendPerMessage(l *lane, epoch uint32, m runtime.Message) error {
	l.mu.Lock()
	dead := l.dead
	l.mu.Unlock()
	if dead != nil {
		return dead
	}
	c, err := t.dialPeer(l.peer, true)
	if err != nil {
		return fmt.Errorf("netcomm: per-message dial rank %d: %w", l.peer, err)
	}
	defer c.Close()
	frame := appendDataFrame(nil, epoch, m)
	if _, err := c.Write(frame); err != nil {
		return fmt.Errorf("netcomm: per-message send to rank %d: %w", l.peer, err)
	}
	t.framesSent.Add(1)
	t.bytesSent.Add(int64(len(frame)))
	if t.nm != nil {
		t.nm.framesSent.Inc()
		t.nm.bytesSent.Add(int64(len(frame)))
	}
	return nil
}

// Barrier blocks until every rank entered the barrier with this tag in the
// current epoch (runtime.Conduit). All-to-all marker exchange: because lanes
// are FIFO, a peer's marker arriving means every data frame that peer sent
// before entering the barrier has been received — the flush property the
// drain barrier relies on.
func (t *Transport) Barrier(tag string) error {
	ep := t.epoch.Load()
	for p, l := range t.lanes {
		if l == nil {
			continue
		}
		if err := l.sendBytes(appendCtlFrame(nil, ep, t.rank, opBarrier, tag, nil)); err != nil {
			return fmt.Errorf("netcomm: barrier %q to rank %d: %w", tag, p, err)
		}
	}
	for p, l := range t.lanes {
		if l == nil {
			continue
		}
		if _, err := t.col.take(ep, opBarrier, tag, p); err != nil {
			return fmt.Errorf("netcomm: barrier %q from rank %d: %w", tag, p, err)
		}
	}
	return nil
}

// Gather collects one payload per rank at rank 0 (runtime.Conduit).
func (t *Transport) Gather(tag string, payload []byte) ([][]byte, error) {
	ep := t.epoch.Load()
	if t.rank == 0 {
		blobs := make([][]byte, len(t.addrs))
		blobs[0] = payload
		for p := 1; p < len(t.addrs); p++ {
			b, err := t.col.take(ep, opGather, tag, p)
			if err != nil {
				return nil, fmt.Errorf("netcomm: gather %q from rank %d: %w", tag, p, err)
			}
			blobs[p] = b
		}
		for p := 1; p < len(t.addrs); p++ {
			if err := t.lanes[p].sendBytes(appendCtlFrame(nil, ep, 0, opGatherOK, tag, nil)); err != nil {
				return nil, fmt.Errorf("netcomm: gather %q release to rank %d: %w", tag, p, err)
			}
		}
		return blobs, nil
	}
	if err := t.lanes[0].sendBytes(appendCtlFrame(nil, ep, t.rank, opGather, tag, payload)); err != nil {
		return nil, fmt.Errorf("netcomm: gather %q to rank 0: %w", tag, err)
	}
	if _, err := t.col.take(ep, opGatherOK, tag, 0); err != nil {
		return nil, fmt.Errorf("netcomm: gather %q ack from rank 0: %w", tag, err)
	}
	return nil, nil
}

// Abort broadcasts a failure to all peers and poisons local collectives
// (runtime.Conduit). Best-effort: unreachable peers are already failing on
// their own.
func (t *Transport) Abort(reason string) {
	ep := t.epoch.Load()
	t.col.abort(ep, &AbortError{Rank: t.rank, Reason: reason})
	for _, l := range t.lanes {
		if l == nil {
			continue
		}
		_ = l.sendBytes(appendCtlFrame(nil, ep, t.rank, opAbort, "", []byte(reason)))
	}
}

// --- management plane ---

// SendJob broadcasts a job-spec payload from rank 0 to every peer's Jobs
// channel (the stencild manager's dispatch path).
func (t *Transport) SendJob(payload []byte) error {
	if t.rank != 0 {
		return fmt.Errorf("netcomm: SendJob is rank 0's")
	}
	for p, l := range t.lanes {
		if l == nil {
			continue
		}
		if err := l.sendBytes(appendCtlFrame(nil, t.epoch.Load(), 0, opJob, "", payload)); err != nil {
			return fmt.Errorf("netcomm: job to rank %d: %w", p, err)
		}
	}
	return nil
}

// Jobs delivers job-spec payloads broadcast by rank 0 (follower side).
func (t *Transport) Jobs() <-chan []byte { return t.jobs }

// Connected reports how many ranks are currently reachable (self included)
// and how many the mesh expects — stencild's /healthz line.
func (t *Transport) Connected() (up, want int) {
	up = 1
	for _, l := range t.lanes {
		if l != nil && l.up() {
			up++
		}
	}
	return up, len(t.addrs)
}

// Stats snapshots the wire counters.
func (t *Transport) Stats() Stats {
	return Stats{
		FramesSent:      t.framesSent.Load(),
		FramesRecv:      t.framesRecv.Load(),
		BytesSent:       t.bytesSent.Load(),
		BytesRecv:       t.bytesRecv.Load(),
		StealFramesSent: t.stealFramesSent.Load(),
		StealFramesRecv: t.stealFramesRecv.Load(),
		StealBytesSent:  t.stealBytesSent.Load(),
		StealBytesRecv:  t.stealBytesRecv.Load(),
		Reconnects:      t.reconnects.Load(),
		Dials:           t.dials.Load(),
		StaleFrames:     t.staleFrames.Load(),
	}
}

// Addr reports the transport's bound listen address (useful when Addrs held
// a ":0" port).
func (t *Transport) Addr() net.Addr { return t.ln.Addr() }

// runT0 is the run-relative trace origin.
func (t *Transport) runT0() time.Time { return time.Unix(0, t.t0.Load()) }

// Close tears the transport down: the listener and every lane close, blocked
// collective calls fail, and all reader goroutines exit.
func (t *Transport) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(t.closeCh)
	t.ln.Close()
	for _, l := range t.lanes {
		if l != nil {
			l.close()
		}
	}
	t.col.fatal(errClosed)
	t.wg.Wait()
	return nil
}
