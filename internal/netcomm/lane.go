package netcomm

import (
	"net"
	"sync"
	"time"

	"castencil/internal/fault"
	"castencil/internal/ptg"
	"castencil/internal/runtime"
	"castencil/internal/trace"
)

// lane is the socket analogue of the runtime's commLane: the persistent
// connection between this rank and one peer, carrying both directions of
// every (src-node, dst-node) pair the two ranks own. The send side is
// mutex-serialized (several comm goroutines may route onto one lane) and
// allocation-free in the steady state: the frame header is encoded into a
// lane-owned array and the payload rides the same writev as the header
// (net.Buffers), so payload bytes are handed to the kernel without a copy.
//
// Lifecycle: a dropped connection does not fail the run immediately — the
// dialing side redials with backoff, the accepting side waits for the peer
// to redial, and senders block until the lane is back. Only when the lane
// stays down past the recovery deadline is the peer declared dead: the lane
// turns into a sticky *fault.Report naming the dead rank, every pending and
// future operation on it fails, and the bound run is failed instead of
// hanging (see transport.go).
type lane struct {
	t    *Transport
	peer int

	mu   sync.Mutex
	cond *sync.Cond
	conn net.Conn
	// gen counts attachments: a drop only applies to the connection that
	// suffered it, and a re-accept deadline only fires if no newer
	// connection arrived in the meantime.
	gen       uint64
	downSince time.Time
	dead      *fault.Report

	// Steady-state send scratch, guarded by mu. bufs must be re-sliced
	// from bufArr on every send: net.Buffers.WriteTo consumes the slice
	// (advances it past its backing array), so appending to the leftover
	// would reallocate per send.
	hdr    [prefixLen + dataHdrLen]byte
	bufArr [2][]byte
	bufs   net.Buffers

	// rtt maps an in-flight sequenced message to its send stamp for the ack
	// RTT histogram; only maintained when metrics are on (rttMu guards it
	// against the reader goroutine).
	rttMu sync.Mutex
	rtt   map[rttKey]time.Time
}

type rttKey struct {
	src, dst int32
	seq      uint64
}

// rttCap bounds the RTT tracking table; past it new sends simply go
// unmeasured (the histogram is observability, not accounting).
const rttCap = 4096

func newLane(t *Transport, peer int) *lane {
	l := &lane{t: t, peer: peer}
	l.cond = sync.NewCond(&l.mu)
	if t.nm != nil {
		l.rtt = make(map[rttKey]time.Time, 64)
	}
	return l
}

// attach installs a fresh connection (initial dial, accept, or reconnect)
// and spawns its reader. An existing connection is displaced — the peer only
// dials anew after losing the old one, so the newest connection wins.
func (l *lane) attach(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	l.mu.Lock()
	if l.dead != nil || l.t.closed.Load() {
		l.mu.Unlock()
		c.Close()
		return
	}
	if old := l.conn; old != nil {
		old.Close()
	}
	l.conn = c
	l.gen++
	l.downSince = time.Time{}
	l.cond.Broadcast()
	l.mu.Unlock()
	l.t.wg.Add(1)
	go func() {
		defer l.t.wg.Done()
		l.t.readLoop(l, c)
	}()
}

// drop reacts to a read or write error on connection c: if c is still the
// lane's current connection, the lane goes down and recovery starts — the
// dialing side (peer rank below ours) redials, the accepting side arms the
// deadline and waits for the peer to come back.
func (l *lane) drop(c net.Conn, cause error) {
	l.mu.Lock()
	if l.conn != c || l.dead != nil || l.t.closed.Load() {
		l.mu.Unlock()
		c.Close()
		return
	}
	l.conn = nil
	l.gen++
	gen := l.gen
	l.downSince = time.Now()
	l.mu.Unlock()
	c.Close()
	l.t.reconnects.Add(1)
	if l.t.nm != nil {
		l.t.nm.reconnects.Inc()
	}
	if l.peer < l.t.rank {
		go l.redial(gen)
	} else {
		deadline := l.t.deadline
		time.AfterFunc(deadline, func() {
			l.mu.Lock()
			lost := l.gen == gen && l.conn == nil && l.dead == nil
			l.mu.Unlock()
			if lost {
				l.t.peerDead(l, cause)
			}
		})
	}
}

// redial re-establishes a dropped connection from the dialing side, backing
// off between attempts, until the recovery deadline declares the peer dead.
func (l *lane) redial(gen uint64) {
	backoff := 5 * time.Millisecond
	for {
		l.mu.Lock()
		stale := l.gen != gen || l.conn != nil || l.dead != nil
		since := l.downSince
		l.mu.Unlock()
		if stale || l.t.closed.Load() {
			return
		}
		if time.Since(since) > l.t.deadline {
			l.t.peerDead(l, errPeerGone)
			return
		}
		c, err := l.t.dialPeer(l.peer, false)
		if err == nil {
			l.mu.Lock()
			stale = l.gen != gen
			l.mu.Unlock()
			if stale {
				c.Close()
				return
			}
			l.attach(c)
			return
		}
		time.Sleep(backoff)
		if backoff < 100*time.Millisecond {
			backoff *= 2
		}
	}
}

// die makes the lane's failure sticky and wakes every blocked sender.
func (l *lane) die(rep *fault.Report) {
	l.mu.Lock()
	if l.dead == nil {
		l.dead = rep
	}
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// close tears the lane down on transport shutdown.
func (l *lane) close() {
	l.mu.Lock()
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// sendData ships one runtime.Message as a data frame on the persistent
// connection — the zero-alloc hot path. If the lane is down it blocks until
// reconnection (or the peer's death report); a frame whose write fails is
// retried on the next connection, so a transparent reconnect loses at most
// what the kernel already buffered (which the runtime's reliable transport
// recovers — see DESIGN.md on failure semantics).
func (l *lane) sendData(epoch uint32, m runtime.Message) error {
	tr := l.t.tr
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.dead != nil {
			return l.dead
		}
		if l.t.closed.Load() {
			return errClosed
		}
		c := l.conn
		if c == nil {
			l.cond.Wait()
			continue
		}
		var start time.Time
		if tr != nil {
			start = time.Now()
		}
		n := putDataHeader(l.hdr[:], epoch, m)
		var err error
		if len(m.Data) == 0 {
			_, err = c.Write(l.hdr[:n])
		} else {
			l.bufArr[0] = l.hdr[:n]
			l.bufArr[1] = m.Data
			l.bufs = net.Buffers(l.bufArr[:])
			_, err = l.bufs.WriteTo(c)
			l.bufArr[1] = nil // do not retain the payload past the send
		}
		if err != nil {
			l.noteDropLocked(c, err)
			continue
		}
		wire := n + len(m.Data)
		l.t.framesSent.Add(1)
		l.t.bytesSent.Add(int64(wire))
		if nm := l.t.nm; nm != nil {
			nm.framesSent.Inc()
			nm.bytesSent.Add(int64(wire))
			if m.Seq != 0 && !m.Ack {
				l.noteRTTSend(m)
			}
		}
		if tr != nil {
			t0 := l.t.runT0()
			tr.Record(trace.Event{
				ID:   ptg.TaskID{Class: "wire:send", I: l.t.rank, J: l.peer, K: int(m.Bundle)},
				Kind: ptg.KindComm, Node: int32(l.t.rank), Core: 0,
				Start: start.Sub(t0), End: time.Since(t0), Msgs: 1, Bytes: wire,
			})
		}
		return nil
	}
}

// sendSteal ships one steal-protocol message on the persistent connection,
// with sendData's exact block-until-up and retry-on-reconnect discipline.
// Steal frames are accounted separately (Stats.StealFramesSent/StealBytesSent
// and the "wire:steal" trace class) so migration traffic never pollutes the
// halo-exchange wire numbers, but they also count in the general frame/byte
// totals — they are real bytes on the same socket.
func (l *lane) sendSteal(epoch uint32, m runtime.StealMsg) error {
	tr := l.t.tr
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.dead != nil {
			return l.dead
		}
		if l.t.closed.Load() {
			return errClosed
		}
		c := l.conn
		if c == nil {
			l.cond.Wait()
			continue
		}
		var start time.Time
		if tr != nil {
			start = time.Now()
		}
		n := putStealHeader(l.hdr[:], epoch, m)
		var err error
		if len(m.Data) == 0 {
			_, err = c.Write(l.hdr[:n])
		} else {
			l.bufArr[0] = l.hdr[:n]
			l.bufArr[1] = m.Data
			l.bufs = net.Buffers(l.bufArr[:])
			_, err = l.bufs.WriteTo(c)
			l.bufArr[1] = nil // do not retain the payload past the send
		}
		if err != nil {
			l.noteDropLocked(c, err)
			continue
		}
		wire := n + len(m.Data)
		l.t.framesSent.Add(1)
		l.t.bytesSent.Add(int64(wire))
		l.t.stealFramesSent.Add(1)
		l.t.stealBytesSent.Add(int64(wire))
		if nm := l.t.nm; nm != nil {
			nm.framesSent.Inc()
			nm.bytesSent.Add(int64(wire))
		}
		if tr != nil {
			t0 := l.t.runT0()
			tr.Record(trace.Event{
				ID:   ptg.TaskID{Class: "wire:steal", I: l.t.rank, J: l.peer, K: int(m.Task)},
				Kind: ptg.KindComm, Node: int32(l.t.rank), Core: 0,
				Start: start.Sub(t0), End: time.Since(t0), Msgs: 1, Bytes: wire,
			})
		}
		return nil
	}
}

// sendBytes writes a pre-encoded frame (hello/ctl — cold path) with the same
// block-until-up discipline as sendData.
func (l *lane) sendBytes(b []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.dead != nil {
			return l.dead
		}
		if l.t.closed.Load() {
			return errClosed
		}
		c := l.conn
		if c == nil {
			l.cond.Wait()
			continue
		}
		if _, err := c.Write(b); err != nil {
			l.noteDropLocked(c, err)
			continue
		}
		l.t.framesSent.Add(1)
		l.t.bytesSent.Add(int64(len(b)))
		if nm := l.t.nm; nm != nil {
			nm.framesSent.Inc()
			nm.bytesSent.Add(int64(len(b)))
		}
		return nil
	}
}

// noteDropLocked starts drop recovery from the send path (mu held): the
// lock is released around drop, whose work re-acquires it.
func (l *lane) noteDropLocked(c net.Conn, err error) {
	l.mu.Unlock()
	l.drop(c, err)
	l.mu.Lock()
}

// noteRTTSend stamps a sequenced outgoing message for the ack RTT histogram.
func (l *lane) noteRTTSend(m runtime.Message) {
	l.rttMu.Lock()
	if len(l.rtt) < rttCap {
		l.rtt[rttKey{src: m.Src, dst: m.Dst, seq: m.Seq}] = time.Now()
	}
	l.rttMu.Unlock()
}

// noteRTTAck resolves an inbound ack against the send stamp; the ack's
// Src/Dst are the reverse of the data message's.
func (l *lane) noteRTTAck(m runtime.Message) {
	k := rttKey{src: m.Dst, dst: m.Src, seq: m.Seq}
	l.rttMu.Lock()
	sent, ok := l.rtt[k]
	if ok {
		delete(l.rtt, k)
	}
	l.rttMu.Unlock()
	if ok {
		l.t.nm.ackRTT.Observe(time.Since(sent).Seconds())
	}
}

// clearRTT resets the tracking table between runs.
func (l *lane) clearRTT() {
	if l.rtt == nil {
		return
	}
	l.rttMu.Lock()
	clear(l.rtt)
	l.rttMu.Unlock()
}

// up reports whether the lane currently holds a live connection.
func (l *lane) up() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.conn != nil
}
