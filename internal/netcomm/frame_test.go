package netcomm

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"

	"castencil/internal/runtime"
)

// mustFrame decodes one frame from raw or fails the test.
func mustFrame(t *testing.T, raw []byte) Frame {
	t.Helper()
	var st readState
	f, err := readFrame(bytes.NewReader(raw), &st, nil, 0)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	return f
}

func sameMsg(a, b runtime.Message) bool {
	return a.Src == b.Src && a.Dst == b.Dst && a.Task == b.Task && a.Dep == b.Dep &&
		a.Bundle == b.Bundle && a.Seq == b.Seq && a.Ack == b.Ack && a.Attempt == b.Attempt &&
		a.SentNanos == b.SentNanos && bytes.Equal(a.Data, b.Data)
}

// FuzzFrameRoundTrip encodes a data frame from fuzzed message fields and
// checks the decode returns the identical message; it also feeds the raw
// fuzz bytes straight to the decoder, which must reject garbage with an
// error, never a panic or an over-allocation.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint32(1), int32(0), int32(1), int32(7), int32(-1), int32(0), uint64(42), false, int32(0), int64(12345), []byte("halo"))
	f.Add(uint32(0), int32(3), int32(2), int32(0), int32(9), int32(5), uint64(0), true, int32(3), int64(-1), []byte{})
	f.Add(uint32(7), int32(-2), int32(-3), int32(1<<20), int32(99), int32(-5), uint64(1<<63), false, int32(-1), int64(1<<40), bytes.Repeat([]byte{0xAB}, 300))
	f.Fuzz(func(t *testing.T, epoch uint32, src, dst, task, dep, bundle int32, seq uint64, ack bool, attempt int32, sentNanos int64, payload []byte) {
		m := runtime.Message{
			Src: src, Dst: dst, Task: task, Dep: dep, Bundle: bundle,
			Seq: seq, Ack: ack, Attempt: attempt, SentNanos: sentNanos,
		}
		if len(payload) > 0 {
			m.Data = payload
		}
		raw := appendDataFrame(nil, epoch, m)
		var st readState
		got, err := readFrame(bytes.NewReader(raw), &st, nil, 0)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if got.Kind != kindData || got.Epoch != epoch || !sameMsg(m, got.Msg) {
			t.Fatalf("round trip mutated the frame: sent %+v epoch %d, got %+v epoch %d", m, epoch, got.Msg, got.Epoch)
		}
		// Adversarial decode: the raw fuzz payload as a wire stream. Cap the
		// frame size so a fuzzed length prefix cannot make ReadFull allocate
		// wildly; any outcome but a panic is acceptable.
		var st2 readState
		for r := bytes.NewReader(payload); ; {
			if _, err := readFrame(r, &st2, nil, 1<<20); err != nil {
				break
			}
		}
	})
}

// TestFrameRoundTripHelloCtl pins the cold-path codecs.
func TestFrameRoundTripHelloCtl(t *testing.T) {
	h := mustFrame(t, appendHelloFrame(nil, 3, 8, true))
	if h.Kind != kindHello || h.Hello.Rank != 3 || h.Hello.Ranks != 8 || !h.Hello.Transient {
		t.Fatalf("hello round trip: %+v", h.Hello)
	}
	c := mustFrame(t, appendCtlFrame(nil, 9, 2, opGather, "stats", []byte("payload")))
	if c.Kind != kindCtl || c.Epoch != 9 || c.Ctl.From != 2 || c.Ctl.Op != opGather ||
		c.Ctl.Tag != "stats" || string(c.Ctl.Payload) != "payload" {
		t.Fatalf("ctl round trip: %+v", c.Ctl)
	}
	c = mustFrame(t, appendCtlFrame(nil, 1, 0, opBarrier, "", nil))
	if c.Ctl.Tag != "" || len(c.Ctl.Payload) != 0 {
		t.Fatalf("empty ctl round trip: %+v", c.Ctl)
	}
}

// TestTornFrames feeds a multi-frame stream through a net.Pipe one byte at a
// time — every frame boundary and every intra-frame boundary becomes a short
// read — and checks the reader reassembles all frames intact.
func TestTornFrames(t *testing.T) {
	msgs := []runtime.Message{
		{Src: 0, Dst: 1, Task: 5, Dep: 2, Data: []byte("north halo row")},
		{Src: 1, Dst: 0, Task: 6, Seq: 9, Ack: true},
		{Src: 0, Dst: 1, Bundle: 3, Data: bytes.Repeat([]byte{7}, 129)},
	}
	var stream []byte
	stream = appendHelloFrame(stream, 1, 2, false)
	for _, m := range msgs {
		stream = appendDataFrame(stream, 4, m)
	}
	stream = appendCtlFrame(stream, 4, 1, opBarrier, "drain", nil)

	client, server := net.Pipe()
	go func() {
		defer client.Close()
		for _, b := range stream {
			if _, err := client.Write([]byte{b}); err != nil {
				return
			}
		}
	}()

	var st readState
	var got []Frame
	for {
		f, err := readFrame(server, &st, nil, 0)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("torn stream: %v", err)
		}
		got = append(got, f)
	}
	if len(got) != len(msgs)+2 {
		t.Fatalf("decoded %d frames, want %d", len(got), len(msgs)+2)
	}
	if got[0].Kind != kindHello || got[0].Hello.Rank != 1 {
		t.Errorf("first frame: %+v", got[0])
	}
	for i, m := range msgs {
		if !sameMsg(m, got[i+1].Msg) {
			t.Errorf("frame %d mutated: sent %+v got %+v", i, m, got[i+1].Msg)
		}
	}
	if last := got[len(got)-1]; last.Kind != kindCtl || last.Ctl.Tag != "drain" {
		t.Errorf("last frame: %+v", last)
	}
}

// TestShortRead truncates a valid frame at every byte offset: a stream
// ending at offset 0 is a clean io.EOF, anywhere inside a frame it must be
// io.ErrUnexpectedEOF — never a hang, never a partial frame.
func TestShortRead(t *testing.T) {
	raw := appendDataFrame(nil, 2, runtime.Message{Src: 0, Dst: 1, Task: 3, Data: []byte("0123456789abcdef")})
	for cut := 0; cut < len(raw); cut++ {
		var st readState
		_, err := readFrame(bytes.NewReader(raw[:cut]), &st, nil, 0)
		switch {
		case cut == 0:
			if err != io.EOF {
				t.Fatalf("cut at 0: got %v, want io.EOF", err)
			}
		default:
			if err != io.ErrUnexpectedEOF {
				t.Fatalf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
			}
		}
	}
}

// TestBadFrames pins rejection of malformed input.
func TestBadFrames(t *testing.T) {
	decode := func(raw []byte, maxFrame int) error {
		var st readState
		_, err := readFrame(bytes.NewReader(raw), &st, nil, maxFrame)
		return err
	}
	// Oversized length prefix.
	huge := appendDataFrame(nil, 0, runtime.Message{Data: bytes.Repeat([]byte{1}, 100)})
	if err := decode(huge, 50); err == nil {
		t.Error("oversized frame accepted")
	}
	// Unknown kind.
	raw := appendDataFrame(nil, 0, runtime.Message{})
	raw[4] = 99
	if err := decode(raw, 0); err == nil {
		t.Error("unknown kind accepted")
	}
	// Bad hello magic.
	raw = appendHelloFrame(nil, 0, 2, false)
	raw[prefixLen] ^= 0xFF
	if err := decode(raw, 0); err == nil {
		t.Error("bad magic accepted")
	}
	// Wrong protocol version.
	raw = appendHelloFrame(nil, 0, 2, false)
	raw[prefixLen+4] = 0xFF
	if err := decode(raw, 0); err == nil {
		t.Error("wrong version accepted")
	}
	// Ctl tag length overrunning the body.
	raw = appendCtlFrame(nil, 0, 1, opBarrier, "tag", nil)
	raw[prefixLen+3] = 0xFF
	if err := decode(raw, 0); err == nil {
		t.Error("tag overrun accepted")
	}
	// Data frame shorter than its fixed header.
	raw = appendCtlFrame(nil, 0, 1, opBarrier, "", nil)
	raw[4] = kindData
	if err := decode(raw, 0); err == nil {
		t.Error("undersized data frame accepted")
	}
	// A clean close must not be reported as a torn frame.
	if err := decode(nil, 0); !errors.Is(err, io.EOF) {
		t.Errorf("empty stream: got %v, want io.EOF", err)
	}
}
