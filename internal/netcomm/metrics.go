package netcomm

import "castencil/internal/metrics"

// netMetrics holds the stencild_net_* metric families a transport exports
// when constructed with Options.Metrics. The counters are plain atomics
// under the hood, so the hot path pays two atomic adds per frame and no
// allocation; the ack RTT histogram additionally keeps a per-lane map of
// in-flight sequenced sends (see lane.go), which is why the whole family is
// opt-in.
type netMetrics struct {
	framesSent *metrics.Counter
	framesRecv *metrics.Counter
	bytesSent  *metrics.Counter
	bytesRecv  *metrics.Counter
	reconnects *metrics.Counter
	ackRTT     *metrics.Histogram
}

func newNetMetrics(r *metrics.Registry, t *Transport) *netMetrics {
	nm := &netMetrics{
		framesSent: r.Counter("stencild_net_frames_total",
			"Wire frames moved by the distributed transport.",
			metrics.Labels{"dir": "sent"}),
		framesRecv: r.Counter("stencild_net_frames_total",
			"Wire frames moved by the distributed transport.",
			metrics.Labels{"dir": "recv"}),
		bytesSent: r.Counter("stencild_net_bytes_total",
			"Wire bytes moved by the distributed transport (frame headers included).",
			metrics.Labels{"dir": "sent"}),
		bytesRecv: r.Counter("stencild_net_bytes_total",
			"Wire bytes moved by the distributed transport (frame headers included).",
			metrics.Labels{"dir": "recv"}),
		reconnects: r.Counter("stencild_net_reconnects_total",
			"Lane connections dropped and re-established.", nil),
		ackRTT: r.Histogram("stencild_net_ack_rtt_seconds",
			"Round-trip time from a reliable data frame's send to its ack.",
			nil, nil),
	}
	r.GaugeFunc("stencild_net_ranks_connected",
		"Ranks currently reachable, self included.", nil,
		func() int64 { up, _ := t.Connected(); return int64(up) })
	return nm
}
