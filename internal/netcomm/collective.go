package netcomm

import "sync"

// collectives is the rendezvous state of the control plane: barrier markers
// and gather payloads that arrived but have not been consumed yet, keyed by
// (epoch, op, tag, sender). Frames may arrive before the local rank reaches
// the matching collective call (or even before it reaches the epoch — a fast
// peer can enter run N+1's start barrier while we are still in run N's
// epilogue), so deposits for the current or any future epoch are queued;
// only strictly stale epochs are discarded.
type collectives struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items map[colKey][][]byte
	// dead poisons a single epoch (a peer's abort): pending and future take
	// calls for that epoch fail with the cause. fatalOnce poisons the whole
	// transport (peer dead, Close).
	dead      map[uint32]error
	fatalOnce error
	cur       uint32
}

type colKey struct {
	epoch uint32
	op    byte
	tag   string
	from  int
}

func newCollectives() *collectives {
	c := &collectives{
		items: make(map[colKey][][]byte),
		dead:  make(map[uint32]error),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// deposit queues an arrived control payload (reader goroutine side).
func (c *collectives) deposit(epoch uint32, op byte, tag string, from int, payload []byte) {
	c.mu.Lock()
	if epoch < c.cur {
		c.mu.Unlock()
		return
	}
	k := colKey{epoch: epoch, op: op, tag: tag, from: from}
	c.items[k] = append(c.items[k], payload)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// take blocks until the matching payload arrives, the epoch is poisoned, or
// the transport dies.
func (c *collectives) take(epoch uint32, op byte, tag string, from int) ([]byte, error) {
	k := colKey{epoch: epoch, op: op, tag: tag, from: from}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.fatalOnce != nil {
			return nil, c.fatalOnce
		}
		if err := c.dead[epoch]; err != nil {
			return nil, err
		}
		if q := c.items[k]; len(q) > 0 {
			p := q[0]
			if len(q) == 1 {
				delete(c.items, k)
			} else {
				c.items[k] = q[1:]
			}
			return p, nil
		}
		c.cond.Wait()
	}
}

// abort poisons one epoch (current or future; stale aborts are ignored). A
// future-epoch abort stays queued in dead until that epoch's begin — this is
// how a peer that failed run N+1's start barrier reaches a rank still
// finishing run N without corrupting it.
func (c *collectives) abort(epoch uint32, err error) {
	c.mu.Lock()
	if epoch >= c.cur && c.dead[epoch] == nil {
		c.dead[epoch] = err
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// fatal poisons the transport permanently (peer dead, Close).
func (c *collectives) fatal(err error) {
	c.mu.Lock()
	if c.fatalOnce == nil {
		c.fatalOnce = err
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// fatalErr reports the permanent poison, if any.
func (c *collectives) fatalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fatalOnce
}

// begin advances to a new epoch and prunes everything older.
func (c *collectives) begin(epoch uint32) {
	c.mu.Lock()
	c.cur = epoch
	for k := range c.items {
		if k.epoch < epoch {
			delete(c.items, k)
		}
	}
	for e := range c.dead {
		if e < epoch {
			delete(c.dead, e)
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}
