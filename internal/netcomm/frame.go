// Package netcomm is the TCP transport of a distributed run: the socket
// analogue of the runtime's in-process comm lanes. It implements
// runtime.Conduit — one long-lived connection per rank pair established at
// startup, length-prefixed frames carrying the exact bytes the in-process
// path produces, pre-negotiated size-classed receive buffers, and a
// writev-based send path that stays allocation-free in the steady state.
// The runtime's reliable ack/retransmit/dedup layer rides on top unchanged:
// acks are ordinary messages routed by destination node, so fault injection
// and recovery work identically over sockets.
package netcomm

import (
	"encoding/binary"
	"fmt"
	"io"

	"castencil/internal/runtime"
)

// Wire framing: every frame is
//
//	[u32 bodyLen] [u8 kind] [u32 epoch] [body ...]
//
// (little-endian). Epoch is the run counter collectives and data frames are
// scoped to (see transport.go); hello frames carry epoch 0.
//
// kindData body — a runtime.Message:
//
//	[u8 flags] [i32 src] [i32 dst] [i32 task] [i32 dep] [i32 bundle]
//	[u64 seq] [i32 attempt] [i64 sentNanos] [payload ...]
//
// The payload bytes are exactly what the in-process path would hand the
// destination inbox: a packed dependency payload or a coalesced bundle in
// the [u32 count][u32 len_i...][payload_i...] format of coalesce.go.
//
// kindHello body (handshake, one per fresh connection, dialer speaks first):
//
//	[u32 magic] [u16 version] [u16 rank] [u16 ranks] [u8 flags]
//
// kindCtl body (membership/collective control plane):
//
//	[u16 fromRank] [u8 op] [u16 tagLen] [tag ...] [payload ...]
//
// kindStealReq/Rsp/Ret/Ack body — a runtime.StealMsg (the steal kind itself
// travels in the frame kind byte, so the body layout is shared):
//
//	[u8 flags] [u16 from] [u64 id] [i32 task] [i32 attempt] [payload ...]
//
// flags bit 0 marks a forced (policy-scripted) migration; the payload is the
// migration blob (task inputs on Rsp, results on Ret), empty on Req/Ack and
// on an empty Rsp.
const (
	prefixLen   = 9
	dataHdrLen  = 1 + 5*4 + 8 + 4 + 8
	helloLen    = 4 + 2 + 2 + 2 + 1
	stealHdrLen = 1 + 2 + 8 + 4 + 4

	kindHello = byte(1)
	kindData  = byte(2)
	kindCtl   = byte(3)
	// The four steal frame kinds map 1:1 onto runtime.StealReq..StealAck:
	// frame kind = kindStealReq + (StealMsg.Kind - runtime.StealReq).
	kindStealReq = byte(4)
	kindStealRsp = byte(5)
	kindStealRet = byte(6)
	kindStealAck = byte(7)

	flagAck = byte(1 << 0)
	// stealForced marks a steal frame whose StealMsg.Forced flag is set.
	stealForced = byte(1 << 0)
	// helloTransient marks a per-message connection (the lanes ablation's
	// non-persistent mode): the acceptor reads frames until EOF instead of
	// attaching the connection as the peer's lane.
	helloTransient = byte(1 << 0)

	helloMagic   = uint32(0x43415354) // "CAST"
	protoVersion = uint16(1)

	// DefaultMaxFrame bounds a frame body so a corrupt or hostile length
	// prefix cannot ask the receiver to allocate unbounded memory. Large
	// enough for any coalesced halo bundle the stencil shapes produce.
	DefaultMaxFrame = 1 << 28
)

// Control-plane opcodes.
const (
	opBarrier  = byte(1)
	opGather   = byte(2)
	opGatherOK = byte(3)
	opAbort    = byte(4)
	opJob      = byte(5)
)

// Hello is a decoded handshake frame.
type Hello struct {
	Rank, Ranks int
	Version     uint16
	Transient   bool
}

// Ctl is a decoded control frame.
type Ctl struct {
	From    int
	Op      byte
	Tag     string
	Payload []byte
}

// Frame is one decoded wire frame.
type Frame struct {
	Kind  byte
	Epoch uint32
	Msg   runtime.Message  // valid when Kind == kindData
	Hello Hello            // valid when Kind == kindHello
	Ctl   Ctl              // valid when Kind == kindCtl
	Steal runtime.StealMsg // valid when kindStealReq <= Kind <= kindStealAck
}

// stealFrame reports whether a frame kind carries a steal-protocol message.
func stealFrame(kind byte) bool { return kind >= kindStealReq && kind <= kindStealAck }

// putDataHeader encodes the frame prefix and fixed message header for m into
// b (which must have room for prefixLen+dataHdrLen bytes) and returns the
// header length. The payload travels separately (writev), so the steady-
// state send path never copies it.
func putDataHeader(b []byte, epoch uint32, m runtime.Message) int {
	le := binary.LittleEndian
	le.PutUint32(b, uint32(dataHdrLen+len(m.Data)))
	b[4] = kindData
	le.PutUint32(b[5:], epoch)
	flags := byte(0)
	if m.Ack {
		flags |= flagAck
	}
	b[9] = flags
	le.PutUint32(b[10:], uint32(m.Src))
	le.PutUint32(b[14:], uint32(m.Dst))
	le.PutUint32(b[18:], uint32(m.Task))
	le.PutUint32(b[22:], uint32(m.Dep))
	le.PutUint32(b[26:], uint32(m.Bundle))
	le.PutUint64(b[30:], m.Seq)
	le.PutUint32(b[38:], uint32(m.Attempt))
	le.PutUint64(b[42:], uint64(m.SentNanos))
	return prefixLen + dataHdrLen
}

// parseDataHeader decodes the fixed message header (without payload) from b,
// the inverse of putDataHeader's body part.
func parseDataHeader(b []byte) runtime.Message {
	le := binary.LittleEndian
	return runtime.Message{
		Ack:       b[0]&flagAck != 0,
		Src:       int32(le.Uint32(b[1:])),
		Dst:       int32(le.Uint32(b[5:])),
		Task:      int32(le.Uint32(b[9:])),
		Dep:       int32(le.Uint32(b[13:])),
		Bundle:    int32(le.Uint32(b[17:])),
		Seq:       le.Uint64(b[21:]),
		Attempt:   int32(le.Uint32(b[29:])),
		SentNanos: int64(le.Uint64(b[33:])),
	}
}

// putStealHeader encodes the frame prefix and fixed steal header for m into
// b (which must have room for prefixLen+stealHdrLen bytes) and returns the
// header length; the payload travels separately (writev), like putDataHeader.
func putStealHeader(b []byte, epoch uint32, m runtime.StealMsg) int {
	le := binary.LittleEndian
	le.PutUint32(b, uint32(stealHdrLen+len(m.Data)))
	b[4] = kindStealReq + (m.Kind - runtime.StealReq)
	le.PutUint32(b[5:], epoch)
	flags := byte(0)
	if m.Forced {
		flags |= stealForced
	}
	b[9] = flags
	le.PutUint16(b[10:], uint16(m.From))
	le.PutUint64(b[12:], m.ID)
	le.PutUint32(b[20:], uint32(m.Task))
	le.PutUint32(b[24:], uint32(m.Attempt))
	return prefixLen + stealHdrLen
}

// parseStealHeader decodes the fixed steal header (without payload), the
// inverse of putStealHeader's body part. frameKind selects which of the four
// steal frame kinds the body belongs to.
func parseStealHeader(frameKind byte, b []byte) runtime.StealMsg {
	le := binary.LittleEndian
	return runtime.StealMsg{
		Kind:    runtime.StealReq + (frameKind - kindStealReq),
		Forced:  b[0]&stealForced != 0,
		From:    int(le.Uint16(b[1:])),
		ID:      le.Uint64(b[3:]),
		Task:    int32(le.Uint32(b[11:])),
		Attempt: int32(le.Uint32(b[15:])),
	}
}

// appendStealFrame appends the complete wire frame for a steal message
// (codec tests; the persistent-lane path uses putStealHeader plus writev).
func appendStealFrame(dst []byte, epoch uint32, m runtime.StealMsg) []byte {
	var hdr [prefixLen + stealHdrLen]byte
	n := putStealHeader(hdr[:], epoch, m)
	dst = append(dst, hdr[:n]...)
	return append(dst, m.Data...)
}

// appendDataFrame appends the complete wire frame for m (header and payload)
// to dst — the contiguous-encode used by the per-message connection mode and
// the codec tests; the persistent-lane hot path uses putDataHeader plus
// writev instead.
func appendDataFrame(dst []byte, epoch uint32, m runtime.Message) []byte {
	var hdr [prefixLen + dataHdrLen]byte
	n := putDataHeader(hdr[:], epoch, m)
	dst = append(dst, hdr[:n]...)
	return append(dst, m.Data...)
}

// appendHelloFrame appends a handshake frame.
func appendHelloFrame(dst []byte, rank, ranks int, transient bool) []byte {
	le := binary.LittleEndian
	var b [prefixLen + helloLen]byte
	le.PutUint32(b[:], helloLen)
	b[4] = kindHello
	le.PutUint32(b[5:], 0)
	le.PutUint32(b[9:], helloMagic)
	le.PutUint16(b[13:], protoVersion)
	le.PutUint16(b[15:], uint16(rank))
	le.PutUint16(b[17:], uint16(ranks))
	if transient {
		b[19] = helloTransient
	}
	return append(dst, b[:]...)
}

// appendCtlFrame appends a control frame.
func appendCtlFrame(dst []byte, epoch uint32, from int, op byte, tag string, payload []byte) []byte {
	le := binary.LittleEndian
	body := 2 + 1 + 2 + len(tag) + len(payload)
	var b [prefixLen + 5]byte
	le.PutUint32(b[:], uint32(body))
	b[4] = kindCtl
	le.PutUint32(b[5:], epoch)
	le.PutUint16(b[9:], uint16(from))
	b[11] = op
	le.PutUint16(b[12:], uint16(len(tag)))
	dst = append(dst, b[:]...)
	dst = append(dst, tag...)
	return append(dst, payload...)
}

// readState is the per-connection scratch a frame reader reuses across
// frames, keeping the steady-state receive path allocation-free.
type readState struct {
	prefix [prefixLen]byte
	hdr    [dataHdrLen]byte
}

// errShort maps mid-frame EOF to ErrUnexpectedEOF: a stream that ends at a
// frame boundary is a clean close, inside a frame it is a torn frame.
func errShort(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// readFrame reads and decodes one frame from r. getBuf supplies the payload
// buffer for data frames (nil falls back to make); the returned
// Frame.Msg.Data is owned by the caller, exactly like an in-process inbox
// delivery. Control and hello frames allocate — they are cold-path.
// maxFrame <= 0 means DefaultMaxFrame. A clean EOF at a frame boundary
// returns io.EOF; a truncation inside a frame returns io.ErrUnexpectedEOF.
func readFrame(r io.Reader, st *readState, getBuf func(int) []byte, maxFrame int) (Frame, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if _, err := io.ReadFull(r, st.prefix[:]); err != nil {
		return Frame{}, err // io.EOF here is a clean close
	}
	le := binary.LittleEndian
	body := int(le.Uint32(st.prefix[:]))
	f := Frame{Kind: st.prefix[4], Epoch: le.Uint32(st.prefix[5:])}
	if body > maxFrame {
		return Frame{}, fmt.Errorf("netcomm: frame body %d exceeds limit %d", body, maxFrame)
	}
	switch f.Kind {
	case kindData:
		if body < dataHdrLen {
			return Frame{}, fmt.Errorf("netcomm: data frame body %d shorter than header %d", body, dataHdrLen)
		}
		if _, err := io.ReadFull(r, st.hdr[:]); err != nil {
			return Frame{}, errShort(err)
		}
		f.Msg = parseDataHeader(st.hdr[:])
		if pl := body - dataHdrLen; pl > 0 {
			var buf []byte
			if getBuf != nil {
				buf = getBuf(pl)[:pl]
			} else {
				buf = make([]byte, pl)
			}
			if _, err := io.ReadFull(r, buf); err != nil {
				if getBuf != nil {
					runtime.PutBuf(buf)
				}
				return Frame{}, errShort(err)
			}
			f.Msg.Data = buf
		}
	case kindStealReq, kindStealRsp, kindStealRet, kindStealAck:
		if body < stealHdrLen {
			return Frame{}, fmt.Errorf("netcomm: steal frame body %d shorter than header %d", body, stealHdrLen)
		}
		if _, err := io.ReadFull(r, st.hdr[:stealHdrLen]); err != nil {
			return Frame{}, errShort(err)
		}
		f.Steal = parseStealHeader(f.Kind, st.hdr[:stealHdrLen])
		if pl := body - stealHdrLen; pl > 0 {
			var buf []byte
			if getBuf != nil {
				buf = getBuf(pl)[:pl]
			} else {
				buf = make([]byte, pl)
			}
			if _, err := io.ReadFull(r, buf); err != nil {
				if getBuf != nil {
					runtime.PutBuf(buf)
				}
				return Frame{}, errShort(err)
			}
			f.Steal.Data = buf
		}
	case kindHello:
		if body != helloLen {
			return Frame{}, fmt.Errorf("netcomm: hello frame body %d, want %d", body, helloLen)
		}
		b := st.hdr[:helloLen]
		if _, err := io.ReadFull(r, b); err != nil {
			return Frame{}, errShort(err)
		}
		if m := le.Uint32(b); m != helloMagic {
			return Frame{}, fmt.Errorf("netcomm: bad hello magic %#x", m)
		}
		f.Hello = Hello{
			Version:   le.Uint16(b[4:]),
			Rank:      int(le.Uint16(b[6:])),
			Ranks:     int(le.Uint16(b[8:])),
			Transient: b[10]&helloTransient != 0,
		}
		if f.Hello.Version != protoVersion {
			return Frame{}, fmt.Errorf("netcomm: protocol version %d, want %d", f.Hello.Version, protoVersion)
		}
	case kindCtl:
		if body < 5 {
			return Frame{}, fmt.Errorf("netcomm: ctl frame body %d too short", body)
		}
		b := make([]byte, body)
		if _, err := io.ReadFull(r, b); err != nil {
			return Frame{}, errShort(err)
		}
		tagLen := int(le.Uint16(b[3:]))
		if 5+tagLen > body {
			return Frame{}, fmt.Errorf("netcomm: ctl tag length %d overruns body %d", tagLen, body)
		}
		f.Ctl = Ctl{
			From:    int(le.Uint16(b)),
			Op:      b[2],
			Tag:     string(b[5 : 5+tagLen]),
			Payload: b[5+tagLen:],
		}
	default:
		return Frame{}, fmt.Errorf("netcomm: unknown frame kind %d", f.Kind)
	}
	return f, nil
}
