package netcomm

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"castencil/internal/fault"
	"castencil/internal/runtime"
)

// newMesh connects n loopback transports on pre-bound listeners.
func newMesh(t testing.TB, n int, mut func(r int, o *Options)) []*Transport {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for r := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[r] = ln
		addrs[r] = ln.Addr().String()
	}
	ts := make([]*Transport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o := Options{Rank: r, Addrs: addrs, Listener: lns[r]}
			if mut != nil {
				mut(r, &o)
			}
			ts[r], errs[r] = Connect(o)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range ts {
			if tr != nil {
				tr.Close()
			}
		}
	})
	return ts
}

// bindSink binds a run that collects every delivery into a channel.
func bindSink(t testing.TB, tr *Transport, numNodes int) (<-chan runtime.Message, <-chan error) {
	t.Helper()
	msgs := make(chan runtime.Message, 1024)
	fails := make(chan error, 8)
	err := tr.Bind(numNodes, func(m runtime.Message) { msgs <- m },
		func(err error) {
			select {
			case fails <- err:
			default:
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Unbind)
	return msgs, fails
}

// TestBarrierAndGather exercises the control plane across three ranks and
// two epochs.
func TestBarrierAndGather(t *testing.T) {
	ts := newMesh(t, 3, nil)
	for epoch := 0; epoch < 2; epoch++ {
		var wg sync.WaitGroup
		for _, tr := range ts {
			wg.Add(1)
			go func(tr *Transport) {
				defer wg.Done()
				tr.Begin()
				if err := tr.Barrier("start"); err != nil {
					t.Errorf("rank %d barrier: %v", tr.Rank(), err)
					return
				}
				blobs, err := tr.Gather("stats", []byte(fmt.Sprintf("rank-%d", tr.Rank())))
				if err != nil {
					t.Errorf("rank %d gather: %v", tr.Rank(), err)
					return
				}
				if tr.Rank() == 0 {
					if len(blobs) != 3 {
						t.Errorf("gather returned %d blobs, want 3", len(blobs))
						return
					}
					for r, b := range blobs {
						if want := fmt.Sprintf("rank-%d", r); string(b) != want {
							t.Errorf("blob[%d] = %q, want %q", r, b, want)
						}
					}
				} else if blobs != nil {
					t.Errorf("rank %d gather returned blobs", tr.Rank())
				}
			}(tr)
		}
		wg.Wait()
	}
}

// TestSendDeliver routes messages by destination node across a 2-rank mesh
// (4 virtual nodes, block placement: nodes 0-1 on rank 0, nodes 2-3 on
// rank 1) and checks exactly-once, payload-intact delivery.
func TestSendDeliver(t *testing.T) {
	ts := newMesh(t, 2, nil)
	const numNodes = 4
	for _, tr := range ts {
		tr.Begin()
	}
	got0, _ := bindSink(t, ts[0], numNodes)
	got1, _ := bindSink(t, ts[1], numNodes)
	const per = 100
	for i := 0; i < per; i++ {
		m := runtime.Message{Src: 0, Dst: 2, Task: int32(i), Data: []byte(fmt.Sprintf("payload-%d", i))}
		if err := ts[0].Send(m); err != nil {
			t.Fatal(err)
		}
		back := runtime.Message{Src: 3, Dst: 1, Task: int32(i)}
		if err := ts[1].Send(back); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < per; i++ {
		select {
		case m := <-got1:
			if m.Dst != 2 || string(m.Data) != fmt.Sprintf("payload-%d", m.Task) {
				t.Fatalf("rank 1 delivery mutated: %+v %q", m, m.Data)
			}
			runtime.PutBuf(m.Data)
		case <-time.After(5 * time.Second):
			t.Fatalf("rank 1 missing delivery %d of %d", i, per)
		}
		select {
		case m := <-got0:
			if m.Dst != 1 || m.Data != nil {
				t.Fatalf("rank 0 delivery mutated: %+v", m)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("rank 0 missing delivery %d of %d", i, per)
		}
	}
	select {
	case m := <-got1:
		t.Fatalf("rank 1 got an extra delivery: %+v", m)
	case m := <-got0:
		t.Fatalf("rank 0 got an extra delivery: %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestPerMessageMode covers the lanes ablation's non-persistent arm: data
// frames ride fresh connections, the control plane stays on lanes.
func TestPerMessageMode(t *testing.T) {
	ts := newMesh(t, 2, func(r int, o *Options) { o.PerMessage = true })
	for _, tr := range ts {
		tr.Begin()
	}
	_, _ = bindSink(t, ts[0], 2)
	got1, _ := bindSink(t, ts[1], 2)
	for i := 0; i < 10; i++ {
		if err := ts[0].Send(runtime.Message{Src: 0, Dst: 1, Task: int32(i), Data: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[int32]bool{}
	for i := 0; i < 10; i++ {
		select {
		case m := <-got1:
			if seen[m.Task] {
				t.Fatalf("task %d delivered twice", m.Task)
			}
			seen[m.Task] = true
			runtime.PutBuf(m.Data)
		case <-time.After(5 * time.Second):
			t.Fatalf("missing delivery %d of 10", i)
		}
	}
	if d := ts[0].Stats().Dials; d < 10 {
		t.Errorf("per-message mode dialed %d times for 10 sends", d)
	}
	var wg sync.WaitGroup
	for _, tr := range ts {
		wg.Add(1)
		go func(tr *Transport) {
			defer wg.Done()
			if err := tr.Barrier("drain"); err != nil {
				t.Errorf("rank %d barrier: %v", tr.Rank(), err)
			}
		}(tr)
	}
	wg.Wait()
}

// TestZeroAllocLaneRoundTrip is the ISSUE's steady-state allocation budget:
// after warm-up, sending a payload-bearing message and receiving one back
// performs zero heap allocations on the persistent lane (header array +
// writev on the way out, pooled size-classed buffer on the way in).
func TestZeroAllocLaneRoundTrip(t *testing.T) {
	ts := newMesh(t, 2, nil)
	for _, tr := range ts {
		tr.Begin()
	}
	got0, _ := bindSink(t, ts[0], 2)
	got1, _ := bindSink(t, ts[1], 2)

	const payloadLen = 512
	roundTrip := func() {
		out := runtime.GetBuf(payloadLen)
		if err := ts[0].Send(runtime.Message{Src: 0, Dst: 1, Task: 1, Data: out}); err != nil {
			t.Fatal(err)
		}
		runtime.PutBuf(out)
		in := <-got1
		echo := runtime.GetBuf(payloadLen)
		copy(echo, in.Data)
		runtime.PutBuf(in.Data)
		if err := ts[1].Send(runtime.Message{Src: 1, Dst: 0, Task: 2, Data: echo}); err != nil {
			t.Fatal(err)
		}
		runtime.PutBuf(echo)
		back := <-got0
		runtime.PutBuf(back.Data)
	}
	// Warm up: first sends populate the kernel iovec cache and the buffer
	// pool's size classes.
	for i := 0; i < 100; i++ {
		roundTrip()
	}
	if allocs := testing.AllocsPerRun(200, roundTrip); allocs != 0 {
		t.Errorf("lane round trip allocates %.1f times per message pair, want 0", allocs)
	}
}

// TestPeerLoss kills one side of the mesh and checks the survivor degrades
// gracefully: past the recovery deadline the bound run receives a structured
// *fault.Report naming the dead rank, and pending collective calls fail with
// it instead of hanging.
func TestPeerLoss(t *testing.T) {
	deadline := 150 * time.Millisecond
	ts := newMesh(t, 2, func(r int, o *Options) {
		o.Recovery = fault.Recovery{Deadline: deadline}
	})
	for _, tr := range ts {
		tr.Begin()
	}
	_, fails := bindSink(t, ts[0], 2)
	// Rank 1 dies mid-run: its process is gone, sockets reset.
	ts[1].Close()

	barrierErr := make(chan error, 1)
	go func() { barrierErr <- ts[0].Barrier("drain") }()

	wantReport := func(err error) *fault.Report {
		t.Helper()
		var rep *fault.Report
		if !errors.As(err, &rep) {
			t.Fatalf("got %T (%v), want *fault.Report", err, err)
		}
		if !rep.PeerLost || rep.DeadRank != 1 {
			t.Fatalf("report does not name the dead rank: %+v", rep)
		}
		return rep
	}
	select {
	case err := <-fails:
		wantReport(err)
	case <-time.After(10 * deadline):
		t.Fatal("bound run never notified of the dead peer")
	}
	select {
	case err := <-barrierErr:
		rep := wantReport(err)
		if rep.Waited < deadline {
			t.Errorf("peer declared dead after %v, before the %v deadline", rep.Waited, deadline)
		}
	case <-time.After(10 * deadline):
		t.Fatal("barrier hung on the dead peer")
	}
	// Sends to the dead rank fail fast now.
	if err := ts[0].Send(runtime.Message{Src: 0, Dst: 1}); err == nil {
		t.Error("send to a dead rank succeeded")
	}
	up, want := ts[0].Connected()
	if up != 1 || want != 2 {
		t.Errorf("Connected() = %d/%d, want 1/2", up, want)
	}
}

// TestReconnectMasksDrop severs the lane's TCP connection without killing
// the peer: the dialing side re-establishes it within the deadline and a
// blocked send completes — the drop is invisible to the caller.
func TestReconnectMasksDrop(t *testing.T) {
	ts := newMesh(t, 2, func(r int, o *Options) {
		o.Recovery = fault.Recovery{Deadline: 5 * time.Second}
	})
	for _, tr := range ts {
		tr.Begin()
	}
	_, _ = bindSink(t, ts[0], 2)
	got1, _ := bindSink(t, ts[1], 2)
	if err := ts[0].Send(runtime.Message{Src: 0, Dst: 1, Task: 1}); err != nil {
		t.Fatal(err)
	}
	m := <-got1
	if m.Task != 1 {
		t.Fatalf("delivery mutated: %+v", m)
	}
	// Sever the established lane from rank 1's side (rank 1 is the dialer:
	// peer 0 < rank 1, so it redials).
	ts[1].severLane(0)
	// A frame the kernel accepted just before the drop is lost by design
	// (the runtime's reliable layer recovers such losses); the raw
	// transport contract is only that a *later* send lands once the lane is
	// back. So: send, wait briefly, resend until one arrives.
	deadlineAt := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadlineAt) {
		if err := ts[0].Send(runtime.Message{Src: 0, Dst: 1, Task: 2}); err != nil {
			t.Fatalf("send after drop: %v", err)
		}
		select {
		case m = <-got1:
			if m.Task == 2 {
				if ts[0].Stats().Reconnects == 0 && ts[1].Stats().Reconnects == 0 {
					t.Error("delivery resumed but no reconnect was recorded")
				}
				return // reconnect masked the drop
			}
		case <-time.After(100 * time.Millisecond):
		}
	}
	t.Fatal("no delivery after reconnect")
}

// severLane force-closes the current connection to peer, simulating a
// network-level drop (test hook).
func (t *Transport) severLane(peer int) {
	l := t.lanes[peer]
	l.mu.Lock()
	c := l.conn
	l.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// TestAbortPropagates checks a rank's abort fails the peers' pending
// collectives and bound runs with the structured cause.
func TestAbortPropagates(t *testing.T) {
	ts := newMesh(t, 2, nil)
	for _, tr := range ts {
		tr.Begin()
	}
	_, fails := bindSink(t, ts[0], 2)
	barrierErr := make(chan error, 1)
	go func() { barrierErr <- ts[0].Barrier("drain") }()
	ts[1].Abort("task panic: boom")

	var abortErr *AbortError
	select {
	case err := <-barrierErr:
		if !errors.As(err, &abortErr) || abortErr.Rank != 1 {
			t.Fatalf("barrier got %v, want *AbortError from rank 1", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("barrier hung across the abort")
	}
	select {
	case err := <-fails:
		if !errors.As(err, &abortErr) {
			t.Fatalf("bound run got %v, want *AbortError", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("bound run never failed after abort")
	}
	// The next epoch starts clean on both ranks.
	var wg sync.WaitGroup
	for _, tr := range ts {
		wg.Add(1)
		go func(tr *Transport) {
			defer wg.Done()
			tr.Begin()
			if err := tr.Barrier("start"); err != nil {
				t.Errorf("rank %d post-abort barrier: %v", tr.Rank(), err)
			}
		}(tr)
	}
	wg.Wait()
}

// TestJobBroadcast covers the management plane stencild rides on: rank 0
// pushes a job spec, followers receive it on Jobs().
func TestJobBroadcast(t *testing.T) {
	ts := newMesh(t, 3, nil)
	if err := ts[0].SendJob([]byte(`{"n":64}`)); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 3; r++ {
		select {
		case b := <-ts[r].Jobs():
			if string(b) != `{"n":64}` {
				t.Errorf("rank %d job payload %q", r, b)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("rank %d never received the job", r)
		}
	}
	if err := ts[1].SendJob([]byte("x")); err == nil {
		t.Error("SendJob from a follower succeeded")
	}
}
