// Package trace records per-task execution events (which node and core ran
// which task, when) and renders them as text Gantt charts and occupancy
// statistics — the analog of PaRSEC's profiling system used to produce
// Figure 10 of the paper.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"castencil/internal/ptg"
)

// Event is one executed task, or (Kind ptg.KindComm) one wire message
// handled by a node's communication goroutine.
type Event struct {
	ID         ptg.TaskID
	Kind       ptg.Kind
	Node, Core int32
	Start, End time.Duration
	// Stolen marks a task the executing core took from a sibling
	// worker's deque (work-stealing scheduler only).
	Stolen bool
	// Msgs and Bytes are set on KindComm events only: the member transfers
	// carried (1 for a point-to-point message, the segment count for a
	// coalesced bundle) and the wire bytes handled.
	Msgs  int
	Bytes int
}

// Duration returns the event's execution time.
func (e Event) Duration() time.Duration { return e.End - e.Start }

// Trace is a concurrency-safe event collector.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// New returns an empty trace.
func New() *Trace { return &Trace{} }

// Record appends an event.
func (t *Trace) Record(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the recorded events sorted by start time.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Core < out[j].Core
	})
	return out
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Node returns the events of one node, sorted by start time.
func (t *Trace) Node(node int32) []Event {
	all := t.Events()
	out := all[:0:0]
	for _, e := range all {
		if e.Node == node {
			out = append(out, e)
		}
	}
	return out
}

// Makespan returns the latest end time across all events.
func (t *Trace) Makespan() time.Duration {
	var m time.Duration
	t.mu.Lock()
	for _, e := range t.events {
		if e.End > m {
			m = e.End
		}
	}
	t.mu.Unlock()
	return m
}

// Stats summarizes a set of events.
type Stats struct {
	Tasks        int
	Busy         time.Duration // summed task durations
	Span         time.Duration // last end - first start
	Cores        int
	Occupancy    float64 // Busy / (Span * Cores)
	MedianByKind map[string]time.Duration
	CountByKind  map[string]int
}

// Summarize computes occupancy and per-kind medians over events (typically
// one node's). cores is the number of compute cores those events share.
func Summarize(events []Event, cores int) Stats {
	s := Stats{Cores: cores, MedianByKind: map[string]time.Duration{}, CountByKind: map[string]int{}}
	if len(events) == 0 {
		return s
	}
	byKind := map[string][]time.Duration{}
	first, last := events[0].Start, time.Duration(0)
	for _, e := range events {
		s.Tasks++
		s.Busy += e.Duration()
		if e.Start < first {
			first = e.Start
		}
		if e.End > last {
			last = e.End
		}
		k := e.Kind.String()
		byKind[k] = append(byKind[k], e.Duration())
	}
	s.Span = last - first
	if s.Span > 0 && cores > 0 {
		s.Occupancy = float64(s.Busy) / (float64(s.Span) * float64(cores))
	}
	for k, ds := range byKind {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		s.MedianByKind[k] = ds[len(ds)/2]
		s.CountByKind[k] = len(ds)
	}
	return s
}

// CoreStats summarizes one core's share of a node's events: the raw
// material for spotting scheduler imbalance (a starved core shows low
// Util; a core living off its siblings shows high Stolen).
type CoreStats struct {
	Core   int32
	Tasks  int
	Stolen int           // tasks obtained by stealing from a sibling
	Busy   time.Duration // summed task durations on this core
	Util   float64       // Busy / node span
}

// SummarizeCores buckets one node's events per core (0..cores-1) and
// computes each core's busy time and utilization against the node's span
// (first start to last end across all the events given).
func SummarizeCores(events []Event, cores int) []CoreStats {
	out := make([]CoreStats, cores)
	for i := range out {
		out[i].Core = int32(i)
	}
	if len(events) == 0 {
		return out
	}
	first, last := events[0].Start, time.Duration(0)
	for _, e := range events {
		if e.Start < first {
			first = e.Start
		}
		if e.End > last {
			last = e.End
		}
		if int(e.Core) < 0 || int(e.Core) >= cores {
			continue
		}
		c := &out[e.Core]
		c.Tasks++
		c.Busy += e.Duration()
		if e.Stolen {
			c.Stolen++
		}
	}
	if span := last - first; span > 0 {
		for i := range out {
			out[i].Util = float64(out[i].Busy) / float64(span)
		}
	}
	return out
}

// SplitComm partitions events into compute events and communication
// (KindComm) events, preserving order. Compute statistics (Summarize,
// SummarizeCores) should run on the first slice so comm-goroutine activity
// does not pollute task occupancy and per-kind medians.
func SplitComm(events []Event) (compute, comm []Event) {
	for _, e := range events {
		if e.Kind == ptg.KindComm {
			comm = append(comm, e)
		} else {
			compute = append(compute, e)
		}
	}
	return compute, comm
}

// CommStats summarizes the communication-goroutine events of one node: the
// comm-utilization row of a trace.
type CommStats struct {
	Wire      int // wire messages handled (sends + receives)
	Transfers int // member transfers carried (== Wire without coalescing)
	Bytes     int
	Busy      time.Duration // summed handling time on the comm goroutine
}

// SummarizeComm aggregates KindComm events (others are ignored).
func SummarizeComm(events []Event) CommStats {
	var s CommStats
	for _, e := range events {
		if e.Kind != ptg.KindComm {
			continue
		}
		s.Wire++
		s.Transfers += e.Msgs
		s.Bytes += e.Bytes
		s.Busy += e.Duration()
	}
	return s
}

// GanttConfig controls text rendering.
type GanttConfig struct {
	Width int // columns of the time axis (default 100)
	// Glyphs maps task kinds to single-character glyphs; defaults are
	// 'B' for boundary, '.' for interior, 'i' for init.
	Glyphs map[ptg.Kind]byte
}

// Gantt renders one node's events as a text chart: one row per core, one
// glyph per time bucket (idle = space). This is the text analog of the
// paper's Figure 10 trace plots.
func Gantt(events []Event, cores int, cfg GanttConfig) string {
	if cfg.Width <= 0 {
		cfg.Width = 100
	}
	glyphs := cfg.Glyphs
	if glyphs == nil {
		glyphs = map[ptg.Kind]byte{
			ptg.KindBoundary: 'B',
			ptg.KindInterior: '.',
			ptg.KindInit:     'i',
			ptg.KindComm:     'c',
			ptg.KindInner:    ',',
			ptg.KindBorder:   'b',
		}
	}
	if len(events) == 0 {
		return "(no events)\n"
	}
	var first, last time.Duration
	first = events[0].Start
	for _, e := range events {
		if e.Start < first {
			first = e.Start
		}
		if e.End > last {
			last = e.End
		}
	}
	span := last - first
	if span <= 0 {
		span = 1
	}
	rows := make([][]byte, cores)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", cfg.Width))
	}
	bucket := func(d time.Duration) int {
		b := int(int64(d-first) * int64(cfg.Width) / int64(span))
		if b < 0 {
			b = 0
		}
		if b >= cfg.Width {
			b = cfg.Width - 1
		}
		return b
	}
	for _, e := range events {
		if int(e.Core) < 0 || int(e.Core) >= cores {
			continue
		}
		g, ok := glyphs[e.Kind]
		if !ok {
			g = '?'
		}
		for b := bucket(e.Start); b <= bucket(e.End); b++ {
			rows[e.Core][b] = g
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "time: 0 .. %v  (one column = %v)\n", span, span/time.Duration(cfg.Width))
	for i, r := range rows {
		fmt.Fprintf(&sb, "core %2d |%s|\n", i, r)
	}
	return sb.String()
}

// timeDuration converts nanoseconds to a time.Duration (helper for csv.go).
func timeDuration(ns int64) time.Duration { return time.Duration(ns) }
