package trace

import (
	"sort"

	"castencil/internal/ptg"
)

// Span is a half-open time interval in nanoseconds (relative to a run's
// origin). The overlap instrumentation of both engines collects two span
// families — wire messages in flight and inner (halo-independent) tasks
// executing — and reports their intersection over the in-flight union as
// the run's OverlapRatio: the fraction of communication hidden behind
// interior compute by the split transform.
type Span struct{ Start, End int64 }

// MergeSpans sorts spans and coalesces overlapping/adjacent ones into a
// disjoint union, in place.
func MergeSpans(sp []Span) []Span {
	if len(sp) < 2 {
		return sp
	}
	sort.Slice(sp, func(i, j int) bool { return sp[i].Start < sp[j].Start })
	out := sp[:1]
	for _, v := range sp[1:] {
		last := &out[len(out)-1]
		if v.Start <= last.End {
			if v.End > last.End {
				last.End = v.End
			}
			continue
		}
		out = append(out, v)
	}
	return out
}

// SpanTotal sums the lengths of a disjoint span list.
func SpanTotal(sp []Span) int64 {
	var t int64
	for _, v := range sp {
		t += v.End - v.Start
	}
	return t
}

// IntersectTotal returns the summed overlap between two disjoint, sorted
// span lists.
func IntersectTotal(a, b []Span) int64 {
	var t int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		s := a[i].Start
		if b[j].Start > s {
			s = b[j].Start
		}
		e := a[i].End
		if b[j].End < e {
			e = b[j].End
		}
		if e > s {
			t += e - s
		}
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	return t
}

// OverlapRatio computes |comm ∩ exec| / |comm| over the unions of the two
// span families; 0 when comm is empty. Both arguments are consumed (sorted
// and merged in place).
func OverlapRatio(comm, exec []Span) float64 {
	comm = MergeSpans(comm)
	inflight := SpanTotal(comm)
	if inflight == 0 {
		return 0
	}
	exec = MergeSpans(exec)
	return float64(IntersectTotal(comm, exec)) / float64(inflight)
}

// OverlapStats derives an event-level overlap summary from a trace: comm
// activity (KindComm send/recv handling windows) versus inner-task
// execution windows. It returns the total comm-active time and the part of
// it during which an inner task was running. Note the real engine's
// KindComm events time the comm goroutine's handling of a message, not the
// wire flight itself — the engines' Result.OverlapRatio measures the wire;
// this is the trace-replayable approximation traceview reports.
func OverlapStats(events []Event) (commActive, overlapped int64) {
	var comm, inner []Span
	for i := range events {
		e := &events[i]
		sp := Span{Start: int64(e.Start), End: int64(e.End)}
		switch e.Kind {
		case ptg.KindComm:
			comm = append(comm, sp)
		case ptg.KindInner:
			inner = append(inner, sp)
		}
	}
	comm = MergeSpans(comm)
	inner = MergeSpans(inner)
	return SpanTotal(comm), IntersectTotal(comm, inner)
}
