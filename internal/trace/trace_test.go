package trace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"castencil/internal/ptg"
)

func ev(node, core int32, kind ptg.Kind, startMS, endMS int) Event {
	return Event{
		ID:    ptg.TaskID{Class: "t", I: int(node), J: int(core), K: startMS},
		Kind:  kind,
		Node:  node,
		Core:  core,
		Start: time.Duration(startMS) * time.Millisecond,
		End:   time.Duration(endMS) * time.Millisecond,
	}
}

func TestRecordAndSortedEvents(t *testing.T) {
	tr := New()
	tr.Record(ev(0, 1, ptg.KindInterior, 10, 20))
	tr.Record(ev(0, 0, ptg.KindBoundary, 0, 5))
	tr.Record(ev(1, 0, ptg.KindInterior, 5, 8))
	got := tr.Events()
	if len(got) != 3 || tr.Len() != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].Start != 0 || got[2].Start != 10*time.Millisecond {
		t.Errorf("events not sorted: %v", got)
	}
	if tr.Makespan() != 20*time.Millisecond {
		t.Errorf("makespan = %v", tr.Makespan())
	}
}

func TestRecordConcurrent(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Record(ev(int32(w), 0, ptg.KindInterior, i, i+1))
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Errorf("concurrent record lost events: %d", tr.Len())
	}
}

func TestNodeFilter(t *testing.T) {
	tr := New()
	tr.Record(ev(0, 0, ptg.KindInterior, 0, 1))
	tr.Record(ev(1, 0, ptg.KindInterior, 0, 1))
	tr.Record(ev(1, 1, ptg.KindBoundary, 1, 2))
	if got := tr.Node(1); len(got) != 2 {
		t.Errorf("node 1 events = %d, want 2", len(got))
	}
	if got := tr.Node(5); len(got) != 0 {
		t.Errorf("node 5 events = %d, want 0", len(got))
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		ev(0, 0, ptg.KindBoundary, 0, 10),
		ev(0, 1, ptg.KindInterior, 0, 10),
		ev(0, 0, ptg.KindInterior, 10, 20),
		ev(0, 1, ptg.KindInterior, 10, 14),
	}
	s := Summarize(events, 2)
	if s.Tasks != 4 {
		t.Errorf("tasks = %d", s.Tasks)
	}
	if s.Span != 20*time.Millisecond {
		t.Errorf("span = %v", s.Span)
	}
	if s.Busy != 34*time.Millisecond {
		t.Errorf("busy = %v", s.Busy)
	}
	if want := 34.0 / 40.0; s.Occupancy < want-1e-9 || s.Occupancy > want+1e-9 {
		t.Errorf("occupancy = %v, want %v", s.Occupancy, want)
	}
	if s.CountByKind["interior"] != 3 || s.CountByKind["boundary"] != 1 {
		t.Errorf("counts = %v", s.CountByKind)
	}
	// Interior durations: 10, 10, 4 -> sorted 4,10,10 -> median index 1 = 10.
	if s.MedianByKind["interior"] != 10*time.Millisecond {
		t.Errorf("interior median = %v", s.MedianByKind["interior"])
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 4)
	if s.Tasks != 0 || s.Occupancy != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestGantt(t *testing.T) {
	events := []Event{
		ev(0, 0, ptg.KindBoundary, 0, 50),
		ev(0, 1, ptg.KindInterior, 25, 100),
	}
	out := Gantt(events, 2, GanttConfig{Width: 20})
	if !strings.Contains(out, "core  0") || !strings.Contains(out, "core  1") {
		t.Fatalf("missing core rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines", len(lines))
	}
	if !strings.Contains(lines[1], "B") {
		t.Errorf("core 0 row missing boundary glyph: %q", lines[1])
	}
	if !strings.Contains(lines[2], ".") {
		t.Errorf("core 1 row missing interior glyph: %q", lines[2])
	}
	// Core 0 is idle in the second half: its row must end with spaces.
	row0 := lines[1][strings.Index(lines[1], "|")+1:]
	if !strings.HasSuffix(strings.TrimSuffix(row0, "|"), "   ") {
		t.Errorf("core 0 should be idle at the end: %q", row0)
	}
}

func TestGanttEmpty(t *testing.T) {
	if out := Gantt(nil, 2, GanttConfig{}); !strings.Contains(out, "no events") {
		t.Errorf("empty gantt = %q", out)
	}
}

func TestGanttIgnoresOutOfRangeCores(t *testing.T) {
	events := []Event{ev(0, 7, ptg.KindInterior, 0, 1)}
	out := Gantt(events, 2, GanttConfig{Width: 10})
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "core") && strings.Contains(line, ".") {
			t.Errorf("out-of-range core must be skipped: %q", line)
		}
	}
}
