package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format ("Trace Event
// Format", complete events): viewable in chrome://tracing or Perfetto.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TsUS  float64        `json:"ts"`
	DurUS float64        `json:"dur"`
	PID   int32          `json:"pid"` // node
	TID   int32          `json:"tid"` // core
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome serializes the trace as a Chrome/Perfetto trace-event JSON
// array: one complete event per task, nodes as processes, cores as
// threads. This is the graphical counterpart of the text Gantt (Fig. 10).
func (t *Trace) WriteChrome(w io.Writer) error {
	events := t.Events()
	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		out = append(out, chromeEvent{
			Name:  e.ID.String(),
			Cat:   e.Kind.String(),
			Phase: "X",
			TsUS:  float64(e.Start.Nanoseconds()) / 1e3,
			DurUS: float64(e.Duration().Nanoseconds()) / 1e3,
			PID:   e.Node,
			TID:   e.Core,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
