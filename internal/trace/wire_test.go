package trace

import (
	"testing"
	"time"

	"castencil/internal/ptg"
)

func wireEvent(class string, rank int32, start, end time.Duration, bytes int) Event {
	return Event{
		ID:   ptg.TaskID{Class: class, I: int(rank)},
		Kind: ptg.KindComm, Node: rank,
		Start: start, End: end, Msgs: 1, Bytes: bytes,
	}
}

func TestSplitWire(t *testing.T) {
	events := []Event{
		{ID: ptg.TaskID{Class: "pt"}, Kind: ptg.KindInterior, Node: 0, Start: 0, End: 10},
		wireEvent("wire:send", 0, 5, 15, 100),
		{ID: ptg.TaskID{Class: "halo"}, Kind: ptg.KindComm, Node: 1, Start: 0, End: 4},
		wireEvent("wire:recv", 1, 20, 30, 50),
	}
	rest, wire := SplitWire(events)
	if len(rest) != 2 || len(wire) != 2 {
		t.Fatalf("split: %d rest, %d wire (want 2, 2)", len(rest), len(wire))
	}
	// Ordinary comm-goroutine events must stay in rest: only the transport's
	// wire: classes move, whatever their Kind.
	if rest[1].ID.Class != "halo" {
		t.Errorf("comm-goroutine event landed in the wrong half: %+v", rest[1])
	}
	for _, e := range wire {
		if !IsWire(e) {
			t.Errorf("non-wire event in wire half: %+v", e)
		}
	}
}

func TestSummarizeWire(t *testing.T) {
	// Rank 0: two overlapping windows [0,10) and [5,20) union to 20, plus a
	// disjoint [30,40) — busy 30 of a 100 span. Rank 1: one recv.
	wire := []Event{
		wireEvent("wire:send", 0, 0, 10*time.Nanosecond, 100),
		wireEvent("wire:send", 0, 5*time.Nanosecond, 20*time.Nanosecond, 200),
		wireEvent("wire:recv", 0, 30*time.Nanosecond, 40*time.Nanosecond, 300),
		wireEvent("wire:recv", 1, 0, 50*time.Nanosecond, 400),
	}
	stats := SummarizeWire(wire, 100*time.Nanosecond)
	if len(stats) != 2 {
		t.Fatalf("got %d ranks, want 2", len(stats))
	}
	r0 := stats[0]
	if r0.Rank != 0 || r0.Sends != 2 || r0.Recvs != 1 || r0.Bytes != 600 {
		t.Errorf("rank 0 counts: %+v", r0)
	}
	if r0.Busy != 30*time.Nanosecond {
		t.Errorf("rank 0 busy %v, want 30ns (overlapping windows must merge)", r0.Busy)
	}
	if r0.Util != 0.3 {
		t.Errorf("rank 0 util %v, want 0.3", r0.Util)
	}
	r1 := stats[1]
	if r1.Rank != 1 || r1.Sends != 0 || r1.Recvs != 1 || r1.Busy != 50*time.Nanosecond {
		t.Errorf("rank 1: %+v", r1)
	}
	if got := SummarizeWire(wire, 0); got[0].Util != 0 {
		t.Errorf("util without a span must stay 0, got %v", got[0].Util)
	}
}
