package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"castencil/internal/ptg"
)

// csvHeader is the column layout of the on-disk trace format. The "stolen"
// column was added with the work-stealing scheduler and the "msgs"/"bytes"
// comm-counter columns with halo-bundle coalescing; ReadCSV still accepts
// the earlier nine- and ten-column files.
var csvHeader = []string{"class", "i", "j", "k", "kind", "node", "core", "start_ns", "end_ns", "stolen", "msgs", "bytes"}

// csvWidths lists the accepted column counts, newest first: the full
// format, the pre-comm-counter format, and the pre-stolen format.
var csvWidths = []int{len(csvHeader), len(csvHeader) - 2, len(csvHeader) - 3}

// WriteCSV serializes the trace (sorted by start time) for later rendering
// with cmd/traceview.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, e := range t.Events() {
		stolen := "0"
		if e.Stolen {
			stolen = "1"
		}
		rec := []string{
			e.ID.Class,
			strconv.Itoa(e.ID.I), strconv.Itoa(e.ID.J), strconv.Itoa(e.ID.K),
			strconv.Itoa(int(e.Kind)),
			strconv.Itoa(int(e.Node)), strconv.Itoa(int(e.Core)),
			strconv.FormatInt(int64(e.Start), 10), strconv.FormatInt(int64(e.End), 10),
			stolen,
			strconv.Itoa(e.Msgs), strconv.Itoa(e.Bytes),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads a trace previously written with WriteCSV, accepting every
// historical width: nine columns (pre-"stolen"), ten (pre-comm-counter) and
// the current twelve.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	widthOK := false
	for _, w := range csvWidths {
		if len(rows[0]) == w {
			widthOK = true
		}
	}
	if !widthOK || rows[0][0] != "class" {
		return nil, fmt.Errorf("trace: unrecognized header %v (want %d, %d or %d columns starting with %q)",
			rows[0], csvWidths[2], csvWidths[1], csvWidths[0], "class")
	}
	t := New()
	for ln, rec := range rows[1:] {
		if len(rec) != len(rows[0]) {
			return nil, fmt.Errorf("trace: line %d has %d columns, want %d", ln+2, len(rec), len(rows[0]))
		}
		ints := make([]int64, 8)
		for i := 1; i < 9; i++ {
			v, err := strconv.ParseInt(rec[i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d column %s: %v", ln+2, csvHeader[i], err)
			}
			ints[i-1] = v
		}
		// Trailing columns are optional by format generation.
		opt := func(col int) (int64, error) {
			if len(rec) <= col {
				return 0, nil
			}
			v, err := strconv.ParseInt(rec[col], 10, 64)
			if err != nil {
				return 0, fmt.Errorf("trace: line %d column %s: %v", ln+2, csvHeader[col], err)
			}
			return v, nil
		}
		stolen, err := opt(9)
		if err != nil {
			return nil, err
		}
		msgs, err := opt(10)
		if err != nil {
			return nil, err
		}
		bytes, err := opt(11)
		if err != nil {
			return nil, err
		}
		t.Record(Event{
			ID:     ptg.TaskID{Class: rec[0], I: int(ints[0]), J: int(ints[1]), K: int(ints[2])},
			Kind:   ptg.Kind(ints[3]),
			Node:   int32(ints[4]),
			Core:   int32(ints[5]),
			Start:  timeDuration(ints[6]),
			End:    timeDuration(ints[7]),
			Stolen: stolen != 0,
			Msgs:   int(msgs),
			Bytes:  int(bytes),
		})
	}
	return t, nil
}

// MaxCore returns the largest core index seen plus one (the implied core
// count for rendering), and the set of node ids present.
func (t *Trace) MaxCore() (cores int, nodes []int32) {
	seen := map[int32]bool{}
	for _, e := range t.Events() {
		if int(e.Core) >= cores {
			cores = int(e.Core) + 1
		}
		if !seen[e.Node] {
			seen[e.Node] = true
			nodes = append(nodes, e.Node)
		}
	}
	return cores, nodes
}
