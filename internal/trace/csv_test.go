package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"castencil/internal/ptg"
)

func TestCSVRoundTrip(t *testing.T) {
	tr := New()
	tr.Record(ev(0, 1, ptg.KindBoundary, 3, 9))
	tr.Record(ev(2, 0, ptg.KindInterior, 0, 4))
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tr.Events(), got.Events()
	if len(a) != len(b) {
		t.Fatalf("len %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("event %d: %+v != %+v", i, a[i], b[i])
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("wrong header must fail")
	}
	bad := "class,i,j,k,kind,node,core,start_ns,end_ns\nst,x,0,0,1,0,0,0,1\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("non-numeric field must fail")
	}
}

func TestMaxCore(t *testing.T) {
	tr := New()
	tr.Record(ev(0, 3, ptg.KindInterior, 0, 1))
	tr.Record(ev(2, 1, ptg.KindInterior, 0, 1))
	cores, nodes := tr.MaxCore()
	if cores != 4 {
		t.Errorf("cores = %d, want 4", cores)
	}
	if len(nodes) != 2 {
		t.Errorf("nodes = %v", nodes)
	}
}

func TestWriteChrome(t *testing.T) {
	tr := New()
	tr.Record(ev(0, 1, ptg.KindBoundary, 3, 9))
	tr.Record(ev(1, 0, ptg.KindInterior, 0, 4))
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	first := events[0] // sorted by start: the interior one
	if first["cat"] != "interior" || first["ph"] != "X" {
		t.Errorf("first event = %v", first)
	}
	if first["dur"].(float64) != 4000 { // 4ms in us
		t.Errorf("dur = %v", first["dur"])
	}
	if first["pid"].(float64) != 1 {
		t.Errorf("pid = %v", first["pid"])
	}
}
