package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"castencil/internal/ptg"
)

func TestCSVRoundTrip(t *testing.T) {
	tr := New()
	tr.Record(ev(0, 1, ptg.KindBoundary, 3, 9))
	tr.Record(ev(2, 0, ptg.KindInterior, 0, 4))
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tr.Events(), got.Events()
	if len(a) != len(b) {
		t.Fatalf("len %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("event %d: %+v != %+v", i, a[i], b[i])
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("wrong header must fail")
	}
	bad := "class,i,j,k,kind,node,core,start_ns,end_ns\nst,x,0,0,1,0,0,0,1\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("non-numeric field must fail")
	}
}

func TestMaxCore(t *testing.T) {
	tr := New()
	tr.Record(ev(0, 3, ptg.KindInterior, 0, 1))
	tr.Record(ev(2, 1, ptg.KindInterior, 0, 1))
	cores, nodes := tr.MaxCore()
	if cores != 4 {
		t.Errorf("cores = %d, want 4", cores)
	}
	if len(nodes) != 2 {
		t.Errorf("nodes = %v", nodes)
	}
}

func TestWriteChrome(t *testing.T) {
	tr := New()
	tr.Record(ev(0, 1, ptg.KindBoundary, 3, 9))
	tr.Record(ev(1, 0, ptg.KindInterior, 0, 4))
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	first := events[0] // sorted by start: the interior one
	if first["cat"] != "interior" || first["ph"] != "X" {
		t.Errorf("first event = %v", first)
	}
	if first["dur"].(float64) != 4000 { // 4ms in us
		t.Errorf("dur = %v", first["dur"])
	}
	if first["pid"].(float64) != 1 {
		t.Errorf("pid = %v", first["pid"])
	}
}

// TestReadCSVBackCompat pins the on-disk format evolution: nine-column
// (pre-stolen), ten-column (pre-comm-counter) and the current twelve-column
// files must all load, with absent trailing columns defaulting to zero.
func TestReadCSVBackCompat(t *testing.T) {
	cases := []struct {
		file   string
		events int
		comm   int // KindComm events expected
	}{
		{"testdata/trace_v9.csv", 3, 0},
		{"testdata/trace_v10.csv", 3, 0},
		{"testdata/trace_v12.csv", 5, 2},
	}
	for _, c := range cases {
		f, err := os.Open(c.file)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := ReadCSV(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}
		if tr.Len() != c.events {
			t.Errorf("%s: %d events, want %d", c.file, tr.Len(), c.events)
		}
		_, comm := SplitComm(tr.Events())
		if len(comm) != c.comm {
			t.Errorf("%s: %d comm events, want %d", c.file, len(comm), c.comm)
		}
		for _, e := range tr.Events() {
			if e.Kind != ptg.KindComm && (e.Msgs != 0 || e.Bytes != 0) {
				t.Errorf("%s: compute event %v carries comm counters", c.file, e.ID)
			}
		}
	}
}

// TestReadCSVCommCounters checks the comm columns survive a fixture load and
// feed SummarizeComm.
func TestReadCSVCommCounters(t *testing.T) {
	f, err := os.Open("testdata/trace_v12.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	_, comm := SplitComm(tr.Events())
	s := SummarizeComm(comm)
	if s.Wire != 2 || s.Transfers != 6 || s.Bytes != 3120 {
		t.Errorf("comm stats = %+v, want Wire 2, Transfers 6, Bytes 3120", s)
	}
	if s.Busy != 400*time.Microsecond {
		t.Errorf("comm busy = %v, want 400µs", s.Busy)
	}
}

// TestCSVRoundTripCommEvent checks the twelve-column writer preserves the
// comm counters through a write/read cycle.
func TestCSVRoundTripCommEvent(t *testing.T) {
	tr := New()
	e := ev(0, 2, ptg.KindComm, 1, 2)
	e.Msgs, e.Bytes = 4, 2048
	tr.Record(e)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g := got.Events()[0]; g.Msgs != 4 || g.Bytes != 2048 {
		t.Errorf("round-tripped comm event = %+v", g)
	}
}

// TestCSVRoundTripSplitKinds checks the split transform's task kinds —
// KindInner (5) and KindBorder (6), appended after KindFault so older
// numeric kind values keep their meaning — survive a write/read cycle and
// render with their own Gantt glyphs.
func TestCSVRoundTripSplitKinds(t *testing.T) {
	tr := New()
	tr.Record(ev(0, 0, ptg.KindInner, 0, 8))
	tr.Record(ev(0, 1, ptg.KindBorder, 2, 4))
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	events := got.Events()
	if len(events) != 2 || events[0].Kind != ptg.KindInner || events[1].Kind != ptg.KindBorder {
		t.Fatalf("split kinds lost in round trip: %+v", events)
	}
	if int(ptg.KindInner) != 5 || int(ptg.KindBorder) != 6 {
		t.Fatalf("split kind codes moved: inner=%d border=%d (CSV back-compat requires 5, 6)",
			int(ptg.KindInner), int(ptg.KindBorder))
	}
	chart := Gantt(events, 2, GanttConfig{Width: 20})
	if !strings.Contains(chart, ",") || !strings.Contains(chart, "b") {
		t.Errorf("Gantt chart missing split glyphs:\n%s", chart)
	}
}
