package trace

import (
	"testing"

	"castencil/internal/ptg"
)

func TestMergeSpans(t *testing.T) {
	got := MergeSpans([]Span{{5, 9}, {0, 3}, {2, 4}, {9, 12}, {20, 21}})
	want := []Span{{0, 4}, {5, 12}, {20, 21}}
	if len(got) != len(want) {
		t.Fatalf("merged to %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged to %v, want %v", got, want)
		}
	}
	if total := SpanTotal(got); total != 12 {
		t.Errorf("SpanTotal = %d, want 12", total)
	}
}

func TestIntersectTotal(t *testing.T) {
	a := []Span{{0, 10}, {20, 30}}
	b := []Span{{5, 25}}
	if got := IntersectTotal(a, b); got != 10 {
		t.Errorf("IntersectTotal = %d, want 10 (5 from each span)", got)
	}
	if got := IntersectTotal(a, nil); got != 0 {
		t.Errorf("IntersectTotal with empty = %d, want 0", got)
	}
}

func TestOverlapRatio(t *testing.T) {
	// Comm in flight [0,10); inner exec [4,8): 40% hidden.
	if r := OverlapRatio([]Span{{0, 10}}, []Span{{4, 8}}); r != 0.4 {
		t.Errorf("ratio = %v, want 0.4", r)
	}
	if r := OverlapRatio(nil, []Span{{0, 5}}); r != 0 {
		t.Errorf("ratio with no comm = %v, want 0", r)
	}
	// Unsorted, overlapping inputs are normalized internally.
	if r := OverlapRatio([]Span{{5, 10}, {0, 6}}, []Span{{0, 10}, {2, 3}}); r != 1 {
		t.Errorf("fully covered ratio = %v, want 1", r)
	}
}

// TestOverlapStats checks the event-level summary traceview reports: comm
// handling windows intersected with inner-task execution windows.
func TestOverlapStats(t *testing.T) {
	events := []Event{
		ev(0, 2, ptg.KindComm, 0, 10),
		ev(0, 0, ptg.KindInner, 4, 12),
		ev(0, 1, ptg.KindInterior, 0, 10), // commit-class work must not count
		ev(0, 2, ptg.KindComm, 20, 24),
	}
	commActive, overlapped := OverlapStats(events)
	if commActive != int64(14e6) {
		t.Errorf("commActive = %d, want 14ms", commActive)
	}
	if overlapped != int64(6e6) {
		t.Errorf("overlapped = %d, want 6ms (comm [0,10) vs inner [4,12))", overlapped)
	}
	if ca, ov := OverlapStats(nil); ca != 0 || ov != 0 {
		t.Errorf("empty trace: %d/%d, want 0/0", ca, ov)
	}
}
