package trace

import (
	"sort"
	"strings"
	"time"
)

// Wire events are the TCP transport's contribution to a distributed run's
// trace: the netcomm layer records one KindComm event per frame it puts on
// or takes off a socket, with ID.Class "wire:send" or "wire:recv", Node set
// to the rank (not a virtual node), I the local rank, J the peer rank, and
// Msgs/Bytes the frame accounting. Because rank numbers alias low virtual
// node IDs, wire events must be split out of a trace before per-node
// statistics run — otherwise a rank's socket activity pollutes the
// same-numbered node's comm-goroutine row.

// IsWire reports whether e is a transport wire event.
func IsWire(e Event) bool { return strings.HasPrefix(e.ID.Class, "wire:") }

// SplitWire separates transport wire events from everything else,
// preserving order.
func SplitWire(events []Event) (rest, wire []Event) {
	for _, e := range events {
		if IsWire(e) {
			wire = append(wire, e)
		} else {
			rest = append(rest, e)
		}
	}
	return rest, wire
}

// WireStats is one rank's wire-utilization row: how much of the run the
// rank's sockets were actively moving frames.
type WireStats struct {
	Rank  int32
	Sends int // frames written (wire:send)
	Recvs int // frames read (wire:recv)
	Bytes int
	// Steals and StealBytes count the work-stealing protocol's frames
	// (wire:steal, both directions), kept out of Sends/Recvs/Bytes so
	// migration traffic is never misattributed to halo exchange.
	Steals     int
	StealBytes int
	// Busy is the union of the rank's wire-activity windows: overlapping
	// transfers on different lanes count once (merged-span math, the same
	// interval union the overlap instrumentation uses). Steal frames count:
	// the socket is busy either way.
	Busy time.Duration
	// Util is Busy over the caller's span (0 when no span was given).
	Util float64
}

// SummarizeWire aggregates wire events into per-rank utilization rows,
// sorted by rank. span is Util's denominator — pass the run's makespan, or
// <= 0 to leave Util zero.
func SummarizeWire(wire []Event, span time.Duration) []WireStats {
	byRank := map[int32]*WireStats{}
	spans := map[int32][]Span{}
	for _, e := range wire {
		if !IsWire(e) {
			continue
		}
		s := byRank[e.Node]
		if s == nil {
			s = &WireStats{Rank: e.Node}
			byRank[e.Node] = s
		}
		switch e.ID.Class {
		case "wire:steal":
			s.Steals++
			s.StealBytes += e.Bytes
		case "wire:recv":
			s.Recvs++
			s.Bytes += e.Bytes
		default:
			s.Sends++
			s.Bytes += e.Bytes
		}
		spans[e.Node] = append(spans[e.Node], Span{Start: int64(e.Start), End: int64(e.End)})
	}
	out := make([]WireStats, 0, len(byRank))
	for rank, s := range byRank {
		s.Busy = time.Duration(SpanTotal(MergeSpans(spans[rank])))
		if span > 0 {
			s.Util = float64(s.Busy) / float64(span)
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}
