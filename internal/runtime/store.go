package runtime

import (
	"fmt"
	"sync"
)

// Store is a node-private key/value space holding dataflow values (tile
// states, packed halo buffers). Values are write-once: producing the same
// key twice is a dataflow bug and panics. Take removes a value, enforcing
// the single-consumer discipline of halo buffers.
//
// In addition to the keyed map, a store can carry preallocated slots —
// fixed arrays of general values and message-payload buffers reserved at
// graph-build time (ptg.SlotEnv). Slot accesses are plain array indexing
// with no lock or hash: the runtime's scheduling edges already order every
// slot producer before its consumer, which is exactly the property that
// makes the keyed map's mutex redundant on the hot path.
type Store struct {
	mu sync.Mutex
	m  map[any]any

	slots    []any
	bufSlots [][]byte
}

// NewStore returns an empty store with no slots.
func NewStore() *Store { return &Store{m: make(map[any]any)} }

// NewStoreWithSlots returns an empty store carrying the given numbers of
// general and buffer slots.
func NewStoreWithSlots(general, buf int) *Store {
	s := NewStore()
	if general > 0 {
		s.slots = make([]any, general)
	}
	if buf > 0 {
		s.bufSlots = make([][]byte, buf)
	}
	return s
}

// PutSlot stores a write-once value in a general slot.
func (s *Store) PutSlot(slot int32, v any) {
	if v == nil {
		panic("runtime: PutSlot of nil value")
	}
	if s.slots[slot] != nil {
		panic(fmt.Sprintf("runtime: slot %d produced twice", slot))
	}
	s.slots[slot] = v
}

// GetSlot returns a general slot's value without removing it (nil when
// empty).
func (s *Store) GetSlot(slot int32) any { return s.slots[slot] }

// PutBufSlot deposits a payload in a buffer slot, panicking when the slot
// is occupied (duplicated delivery or slot-lifetime bug).
func (s *Store) PutBufSlot(slot int32, b []byte) {
	if b == nil {
		panic("runtime: PutBufSlot of nil payload")
	}
	if s.bufSlots[slot] != nil {
		panic(fmt.Sprintf("runtime: buffer slot %d produced twice", slot))
	}
	s.bufSlots[slot] = b
}

// TakeBufSlot removes and returns a buffer slot's payload, panicking when
// the slot is empty.
func (s *Store) TakeBufSlot(slot int32) []byte {
	b := s.bufSlots[slot]
	if b == nil {
		panic(fmt.Sprintf("runtime: buffer slot %d consumed before production", slot))
	}
	s.bufSlots[slot] = nil
	return b
}

// LiveBufSlots counts occupied buffer slots — zero after a hygienic run, in
// which every halo payload was consumed exactly once.
func (s *Store) LiveBufSlots() int {
	n := 0
	for _, b := range s.bufSlots {
		if b != nil {
			n++
		}
	}
	return n
}

// Put stores a value under key; the key must not already exist.
func (s *Store) Put(key, val any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.m[key]; dup {
		panic(fmt.Sprintf("runtime: value %v produced twice", key))
	}
	s.m[key] = val
}

// Take removes and returns the value under key, panicking if absent.
func (s *Store) Take(key any) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	if !ok {
		panic(fmt.Sprintf("runtime: value %v consumed before production", key))
	}
	delete(s.m, key)
	return v
}

// Get returns the value under key without removing it, or nil.
func (s *Store) Get(key any) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[key]
}

// Len returns the number of live values (useful to assert buffer hygiene:
// after a run only persistent tile states should remain).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Keys returns a snapshot of the stored keys.
func (s *Store) Keys() []any {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]any, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	return out
}
