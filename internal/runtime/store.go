package runtime

import (
	"fmt"
	"sync"
)

// Store is a node-private key/value space holding dataflow values (tile
// states, packed halo buffers). Values are write-once: producing the same
// key twice is a dataflow bug and panics. Take removes a value, enforcing
// the single-consumer discipline of halo buffers.
type Store struct {
	mu sync.Mutex
	m  map[any]any
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{m: make(map[any]any)} }

// Put stores a value under key; the key must not already exist.
func (s *Store) Put(key, val any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.m[key]; dup {
		panic(fmt.Sprintf("runtime: value %v produced twice", key))
	}
	s.m[key] = val
}

// Take removes and returns the value under key, panicking if absent.
func (s *Store) Take(key any) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	if !ok {
		panic(fmt.Sprintf("runtime: value %v consumed before production", key))
	}
	delete(s.m, key)
	return v
}

// Get returns the value under key without removing it, or nil.
func (s *Store) Get(key any) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[key]
}

// Len returns the number of live values (useful to assert buffer hygiene:
// after a run only persistent tile states should remain).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Keys returns a snapshot of the stored keys.
func (s *Store) Keys() []any {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]any, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	return out
}
