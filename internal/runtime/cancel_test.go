package runtime

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"castencil/internal/ptg"
)

// buildSlowChain makes a single-node chain of tasks that each sleep a
// little, so a run is long enough to cancel mid-flight.
func buildSlowChain(t *testing.T, length int, nodes int, delay time.Duration) *ptg.Graph {
	t.Helper()
	b := ptg.NewBuilder(nodes)
	for i := 0; i < length; i++ {
		node := int32(i % nodes)
		_, err := b.AddTask(ptg.Task{
			ID:   tid("slow", i, 0, 0),
			Node: node,
			Run:  func(e ptg.Env) { time.Sleep(delay) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			dep := ptg.Dep{}
			if (i-1)%nodes != i%nodes {
				dep.Bytes = 1
				dep.Pack = func(e ptg.Env) []byte { return []byte{1} }
				dep.Unpack = func(e ptg.Env, data []byte) {}
			}
			if err := b.AddDep(tid("slow", i, 0, 0), tid("slow", i-1, 0, 0), dep); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// waitGoroutines polls until the goroutine count settles back to at most
// base (plus slack for runtime background goroutines), failing after a
// generous deadline. Run must not leak goroutines however it ends.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before the run", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRunContextCancelStopsPromptly(t *testing.T) {
	for _, sched := range []Sched{SharedQueue, WorkStealing} {
		t.Run(fmt.Sprintf("sched=%v", sched), func(t *testing.T) {
			before := runtime.NumGoroutine()
			g := buildSlowChain(t, 200, 2, time.Millisecond)
			ctx, cancel := context.WithCancel(context.Background())
			started := make(chan struct{})
			var once sync.Once
			go func() {
				<-started
				cancel()
			}()
			_, err := Run(g, Options{
				Workers: 2,
				Sched:   sched,
				Ctx:     ctx,
				OnProgress: func(done, total int64) {
					once.Do(func() { close(started) })
				},
			})
			// Run is synchronous: by the time it returns, either the cancel
			// fired mid-run (expected) or the run somehow finished first.
			if err == nil {
				t.Fatal("run completed despite cancellation")
			}
			var ce *ptg.CancelError
			if !errors.As(err, &ce) {
				t.Fatalf("error %v is not a *ptg.CancelError", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error %v does not unwrap to context.Canceled", err)
			}
			if ce.Engine != "runtime" {
				t.Errorf("engine = %q", ce.Engine)
			}
			if ce.Done >= ce.Total {
				t.Errorf("cancelled run claims %d of %d tasks done", ce.Done, ce.Total)
			}
			waitGoroutines(t, before)
		})
	}
}

func TestRunContextCancelBeforeStart(t *testing.T) {
	g := buildChain(t, 5, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(g, Options{Ctx: ctx})
	var ce *ptg.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *ptg.CancelError", err)
	}
	if ce.Done != 0 || ce.Total != 5 {
		t.Errorf("pre-cancelled run reports %d/%d", ce.Done, ce.Total)
	}
}

func TestRunContextDeadline(t *testing.T) {
	before := runtime.NumGoroutine()
	g := buildSlowChain(t, 500, 1, time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := Run(g, Options{Workers: 1, Sched: WorkStealing, Ctx: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not unwrap to context.DeadlineExceeded", err)
	}
	waitGoroutines(t, before)
}

func TestRunContextUncancelledIsHarmless(t *testing.T) {
	g := buildChain(t, 10, 2)
	var last atomic.Int64
	res, err := Run(g, Options{
		Workers: 2,
		Ctx:     context.Background(),
		OnProgress: func(done, total int64) {
			// Progress is monotone per callback site but callbacks race
			// across workers; keep the max.
			for {
				cur := last.Load()
				if done <= cur || last.CompareAndSwap(cur, done) {
					return
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 10 {
		t.Errorf("completed = %d", res.Completed)
	}
	if got := last.Load(); got != 10 {
		t.Errorf("final progress callback reported %d, want 10", got)
	}
}
