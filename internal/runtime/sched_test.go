package runtime

import (
	"fmt"
	"testing"
	"time"

	"castencil/internal/ptg"
	"castencil/internal/trace"
)

func TestParseSched(t *testing.T) {
	cases := []struct {
		in     string
		sched  Sched
		policy Policy
	}{
		{"steal", WorkStealing, FIFO},
		{"ws", WorkStealing, FIFO},
		{"work-stealing", WorkStealing, FIFO},
		{"fifo", SharedQueue, FIFO},
		{"shared", SharedQueue, FIFO},
		{"LIFO", SharedQueue, LIFO},
		{"priority", SharedQueue, PriorityOrder},
		{"prio", SharedQueue, PriorityOrder},
	}
	for _, c := range cases {
		s, p, err := ParseSched(c.in)
		if err != nil || s != c.sched || p != c.policy {
			t.Errorf("ParseSched(%q) = %v,%v,%v; want %v,%v", c.in, s, p, err, c.sched, c.policy)
		}
	}
	if _, _, err := ParseSched("bogus"); err == nil {
		t.Error("ParseSched accepted a bogus name")
	}
}

// TestWorkStealingChain re-runs the cross-node pipeline tests under the
// work-stealing scheduler: same result, same message accounting.
func TestWorkStealingChain(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		g := buildChain(t, 20, 3)
		res, err := Run(g, Options{Workers: workers, Sched: WorkStealing})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Completed != 20 || res.Messages != 19 || res.Dropped != 0 {
			t.Fatalf("workers=%d: completed=%d messages=%d dropped=%d",
				workers, res.Completed, res.Messages, res.Dropped)
		}
		if got := res.Stores[19%3].Take("v19").(int); got != 20 {
			t.Errorf("workers=%d: final value = %d, want 20", workers, got)
		}
	}
}

// fanOutGraph is one root on node 0 fanning out to `fan` children, each
// followed by a chain of `depth` extra tasks. All tasks run `body`.
func fanOutGraph(t testing.TB, fan, depth int, body func()) *ptg.Graph {
	b := ptg.NewBuilder(1)
	root := ptg.TaskID{Class: "root"}
	if _, err := b.AddTask(ptg.Task{ID: root, Node: 0, Run: func(ptg.Env) {}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fan; i++ {
		prev := root
		for d := 0; d <= depth; d++ {
			id := ptg.TaskID{Class: "w", I: i, J: d}
			if _, err := b.AddTask(ptg.Task{ID: id, Node: 0, Run: func(ptg.Env) {
				if body != nil {
					body()
				}
			}}); err != nil {
				t.Fatal(err)
			}
			if err := b.AddDep(id, prev, ptg.Dep{}); err != nil {
				t.Fatal(err)
			}
			prev = id
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestWorkStealingActuallySteals forces the steal path: one root fans out
// onto the completing worker's own deque while every task is slow enough
// that siblings must wake and steal to participate.
func TestWorkStealingActuallySteals(t *testing.T) {
	g := fanOutGraph(t, 32, 0, func() { time.Sleep(time.Millisecond) })
	tr := trace.New()
	res, err := Run(g, Options{Workers: 4, Sched: WorkStealing, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 33 {
		t.Fatalf("completed = %d, want 33", res.Completed)
	}
	if res.NodeSteals[0] == 0 {
		t.Error("no steals recorded: siblings never took work from the fanning worker's deque")
	}
	stolen := 0
	for _, e := range tr.Events() {
		if e.Stolen {
			stolen++
		}
	}
	if stolen != res.NodeSteals[0] {
		t.Errorf("trace records %d stolen tasks, Result says %d", stolen, res.NodeSteals[0])
	}
}

// TestWorkStealingLocalityChains checks locality-first placement: a single
// worker running chains must take nearly everything from its own deque.
func TestWorkStealingLocalityChains(t *testing.T) {
	g := fanOutGraph(t, 4, 50, nil)
	res, err := Run(g, Options{Workers: 1, Sched: WorkStealing})
	if err != nil {
		t.Fatal(err)
	}
	total := 4*51 + 1
	if res.Completed != total {
		t.Fatalf("completed = %d, want %d", res.Completed, total)
	}
	// Only the root arrives via the injection queue; every successor is
	// pushed to (and popped from) the lone worker's own deque.
	if res.NodeLocalHits[0] != total-1 {
		t.Errorf("local hits = %d, want %d", res.NodeLocalHits[0], total-1)
	}
	if res.NodeSteals[0] != 0 {
		t.Errorf("steals = %d with one worker", res.NodeSteals[0])
	}
}

// TestStealStormTinyTasks is the steal-storm stress: thousands of tiny
// tasks released from single points, many workers hammering the deques.
// Meant to run under -race (the CI race gate covers this package).
func TestStealStormTinyTasks(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		g := fanOutGraph(t, 500, 3, nil)
		res, err := Run(g, Options{Workers: 8, Sched: WorkStealing})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := 500*4 + 1
		if res.Completed != want || res.Dropped != 0 {
			t.Fatalf("trial %d: completed=%d dropped=%d want %d,0", trial, res.Completed, res.Dropped, want)
		}
		if hits := res.NodeLocalHits[0] + res.NodeSteals[0]; hits > res.Completed {
			t.Fatalf("trial %d: localHits+steals = %d > completed %d", trial, hits, res.Completed)
		}
	}
}

// TestWorkStealingWorkersOutnumberTasks: workers >> tasks must neither
// deadlock nor drop work — most workers just park and exit. The chain
// sleeps so the run outlives worker spin-up and the idle 15 must park.
func TestWorkStealingWorkersOutnumberTasks(t *testing.T) {
	g := fanOutGraph(t, 1, 5, func() { time.Sleep(time.Millisecond) })
	res, err := Run(g, Options{Workers: 16, Sched: WorkStealing})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 7 || res.Dropped != 0 {
		t.Fatalf("completed=%d dropped=%d", res.Completed, res.Dropped)
	}
	if res.NodeParks[0] == 0 {
		t.Error("16 workers on a sequential 7-task chain should have parked at least once")
	}
}

// TestWorkStealingRandomDAGStress mirrors TestRandomDAGStress under the
// work-stealing scheduler, cross-node messages included.
func TestWorkStealingRandomDAGStress(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		nodes := trial%3 + 1
		g := buildChain(t, 40, nodes)
		res, err := Run(g, Options{Workers: trial%4 + 1, Sched: WorkStealing, Policy: Policy(trial % 3)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Completed != 40 {
			t.Fatalf("trial %d: completed %d of 40", trial, res.Completed)
		}
	}
}

// TestWorkStealingPanicPropagates: failure handling must survive the new
// worker loop (parked siblings wake and exit).
func TestWorkStealingPanicPropagates(t *testing.T) {
	b := ptg.NewBuilder(1)
	b.AddTask(ptg.Task{ID: ptg.TaskID{Class: "boom"}, Node: 0, Run: func(ptg.Env) { panic("kaboom") }})
	g, _ := b.Build()
	if _, err := Run(g, Options{Workers: 4, Sched: WorkStealing}); err == nil {
		t.Error("panic not propagated under work stealing")
	}
}

// schedulerVariants enumerates every scheduler configuration the runtime
// offers, for equivalence sweeps.
func schedulerVariants() []struct {
	Name string
	Opts Options
} {
	return []struct {
		Name string
		Opts Options
	}{
		{"shared-fifo", Options{Policy: FIFO}},
		{"shared-lifo", Options{Policy: LIFO}},
		{"shared-priority", Options{Policy: PriorityOrder}},
		{"steal", Options{Sched: WorkStealing}},
	}
}

// TestSchedulerEquivalence runs the same dataflow under every scheduler and
// checks the computed values agree — the runtime-level half of the
// determinism invariant (the stencil-level half lives in internal/core).
func TestSchedulerEquivalence(t *testing.T) {
	for _, sv := range schedulerVariants() {
		for _, workers := range []int{1, 2, 4} {
			g := buildChain(t, 24, 3)
			opts := sv.Opts
			opts.Workers = workers
			res, err := Run(g, opts)
			if err != nil {
				t.Fatalf("%s w=%d: %v", sv.Name, workers, err)
			}
			if res.Completed != 24 || res.Dropped != 0 {
				t.Fatalf("%s w=%d: completed=%d dropped=%d", sv.Name, workers, res.Completed, res.Dropped)
			}
			if got := res.Stores[23%3].Take("v23").(int); got != 24 {
				t.Errorf("%s w=%d: final value = %d, want 24", sv.Name, workers, got)
			}
		}
	}
}

// BenchmarkSchedulerThroughput measures pure scheduling overhead: a
// prebuilt single-node graph of tiny tasks (wide fan-out, short chains) run
// to completion, shared queue vs work stealing across worker counts.
func BenchmarkSchedulerThroughput(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, sv := range []struct {
			name string
			opts Options
		}{
			{"shared", Options{Policy: FIFO}},
			{"steal", Options{Sched: WorkStealing}},
		} {
			b.Run(fmt.Sprintf("%s-w%d", sv.name, workers), func(b *testing.B) {
				g := fanOutGraph(b, 64, 30, nil)
				opts := sv.opts
				opts.Workers = workers
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := Run(g, opts)
					if err != nil {
						b.Fatal(err)
					}
					if res.Dropped != 0 {
						b.Fatalf("dropped %d", res.Dropped)
					}
				}
				b.ReportMetric(float64(64*31+1), "tasks/op")
			})
		}
	}
}
