package runtime

import (
	"sync"
	"testing"
)

func TestDequeLIFOOwner(t *testing.T) {
	d := newDeque()
	for i := int32(0); i < 100; i++ {
		d.push(i)
	}
	if d.size() != 100 {
		t.Fatalf("size = %d, want 100", d.size())
	}
	for i := int32(99); i >= 0; i-- {
		v, ok := d.pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v, want %d", v, ok, i)
		}
	}
	if _, ok := d.pop(); ok {
		t.Fatal("pop from empty deque succeeded")
	}
	if _, ok := d.steal(); ok {
		t.Fatal("steal from empty deque succeeded")
	}
}

func TestDequeFIFOSteal(t *testing.T) {
	d := newDeque()
	for i := int32(0); i < 100; i++ {
		d.push(i)
	}
	for i := int32(0); i < 100; i++ {
		v, ok := d.steal()
		if !ok || v != i {
			t.Fatalf("steal = %d,%v, want %d", v, ok, i)
		}
	}
	if _, ok := d.steal(); ok {
		t.Fatal("steal from empty deque succeeded")
	}
}

func TestDequeGrowsPastInitialSize(t *testing.T) {
	d := newDeque()
	const n = 10 * dequeInitialSize
	for i := int32(0); i < n; i++ {
		d.push(i)
	}
	// Mixed consumption across the grown buffer: steal half from the top,
	// pop half from the bottom.
	for i := int32(0); i < n/2; i++ {
		if v, ok := d.steal(); !ok || v != i {
			t.Fatalf("steal = %d,%v, want %d", v, ok, i)
		}
	}
	for i := int32(n - 1); i >= n/2; i-- {
		if v, ok := d.pop(); !ok || v != i {
			t.Fatalf("pop = %d,%v, want %d", v, ok, i)
		}
	}
	if d.size() != 0 {
		t.Fatalf("size = %d after draining", d.size())
	}
}

func TestDequeInterleavedPushPop(t *testing.T) {
	// Wrap the circular buffer many times without growing.
	d := newDeque()
	next := int32(0)
	for round := 0; round < 1000; round++ {
		for i := 0; i < 48; i++ {
			d.push(next)
			next++
		}
		for i := 0; i < 48; i++ {
			if _, ok := d.pop(); !ok {
				t.Fatal("pop failed mid-round")
			}
		}
	}
	if got := len(d.buf.Load().slot); got != dequeInitialSize {
		t.Fatalf("buffer grew to %d during wrap-around churn", got)
	}
}

// TestDequeConcurrentExactlyOnce races one owner (push + occasional pop)
// against several thieves and checks every pushed value is consumed exactly
// once. Run with -race for the full effect.
func TestDequeConcurrentExactlyOnce(t *testing.T) {
	const (
		total   = 20000
		thieves = 3
	)
	d := newDeque()
	var mu sync.Mutex
	seen := make(map[int32]int, total)
	record := func(vals []int32) {
		mu.Lock()
		for _, v := range vals {
			seen[v]++
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var got []int32
			for {
				if v, ok := d.steal(); ok {
					got = append(got, v)
					continue
				}
				select {
				case <-done:
					// Final sweep after the owner stopped producing.
					for {
						v, ok := d.steal()
						if !ok {
							record(got)
							return
						}
						got = append(got, v)
					}
				default:
				}
			}
		}()
	}
	var owned []int32
	for i := int32(0); i < total; i++ {
		d.push(i)
		if i%3 == 0 {
			if v, ok := d.pop(); ok {
				owned = append(owned, v)
			}
		}
	}
	for {
		v, ok := d.pop()
		if !ok {
			break
		}
		owned = append(owned, v)
	}
	close(done)
	wg.Wait()
	record(owned)
	if len(seen) != total {
		t.Fatalf("consumed %d distinct values, want %d", len(seen), total)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d consumed %d times", v, n)
		}
	}
}
