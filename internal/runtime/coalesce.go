package runtime

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"castencil/internal/ptg"
)

// This file implements the coalesced halo-exchange transport: instead of one
// message per cross-node dependency, all payloads a node produces in one
// epoch toward one destination travel as a single *halo bundle* over a
// persistent per-(src,dst) communication lane. The bundle plan comes from
// ptg.Bundles; the wire format is
//
//	[u32 count] [u32 len_0] ... [u32 len_{count-1}] [payload_0] ... [payload_{count-1}]
//
// (little-endian framing, segments in deterministic plan order). The sender
// packs every member into a lane buffer once the last member is produced;
// the receiver fans segments out to their per-slot destinations in one inbox
// delivery and releases all dependent tasks in one batched successor
// release. Lanes pre-negotiate size-classed reusable buffers at startup, so
// the steady-state send/receive path performs no heap allocation.

// laneDepth is the number of wire buffers a lane retains. Two bundles of one
// lane can be in flight at once (the reverse-flow throttling argument that
// sizes the slot rings at depth 2 applies verbatim to bundles), so two
// buffers make the steady state allocation-free.
const laneDepth = 2

// commLane is a persistent communication channel between one ordered node
// pair: a small free list of preallocated wire buffers sized for the largest
// bundle the pair exchanges. Get/put race only between the two endpoint comm
// goroutines, so a mutex-protected stack is plenty.
type commLane struct {
	src, dst int32
	maxWire  int // wire size of the pair's largest bundle
	mu       sync.Mutex
	free     [][]byte
}

func newCommLane(src, dst int32, maxWire int) *commLane {
	l := &commLane{src: src, dst: dst, maxWire: maxWire}
	for i := 0; i < laneDepth; i++ {
		l.free = append(l.free, GetBuf(maxWire)[:0])
	}
	return l
}

// get returns an empty wire buffer with capacity for the lane's largest
// bundle. If both preallocated buffers are in flight (a burst, or a receiver
// that has not returned one yet) it falls back to the shared arena.
func (l *commLane) get() []byte {
	l.mu.Lock()
	if n := len(l.free) - 1; n >= 0 {
		b := l.free[n]
		l.free[n] = nil
		l.free = l.free[:n]
		l.mu.Unlock()
		return b
	}
	l.mu.Unlock()
	return GetBuf(l.maxWire)[:0]
}

// put returns a wire buffer to the lane after its segments were fanned out.
// Buffers beyond the lane depth (or too small to serve a future get) drain
// to the shared arena instead.
func (l *commLane) put(b []byte) {
	if cap(b) < l.maxWire {
		PutBuf(b)
		return
	}
	l.mu.Lock()
	if len(l.free) < laneDepth {
		l.free = append(l.free, b[:0])
		l.mu.Unlock()
		return
	}
	l.mu.Unlock()
	PutBuf(b)
}

// execBundle is the runtime state of one planned bundle: the immutable plan
// entry plus the countdown of members not yet produced. When remaining hits
// zero the producing node's comm goroutine packs and sends the bundle.
type execBundle struct {
	src, dst  int32
	members   []ptg.BundleMember
	wireBytes int
	lane      *commLane
	remaining atomic.Int32
}

// planBundles resolves Options.Coalesce against the graph: CoalesceStep
// requires a deadlock-free plan (and fails the run otherwise), CoalesceAuto
// falls back to point-to-point delivery when the graph does not admit one.
// With a plan in hand it materializes the per-bundle countdowns, the
// per-dependency bundle index table used on the completion hot path, and the
// persistent lanes with their preallocated wire buffers.
func (ex *executor) planBundles() error {
	if ex.opts.Coalesce == ptg.CoalesceOff {
		return nil
	}
	plan, err := ex.g.Bundles()
	if err != nil {
		if ex.opts.Coalesce == ptg.CoalesceAuto {
			return nil
		}
		return err
	}
	if len(plan) == 0 {
		return nil
	}
	lanes := map[uint64]*commLane{}
	laneMax := map[uint64]int{}
	laneKey := func(src, dst int32) uint64 { return uint64(uint32(src))<<32 | uint64(uint32(dst)) }
	for i := range plan {
		b := &plan[i]
		k := laneKey(b.Src, b.Dst)
		if w := b.WireBytes(); w > laneMax[k] {
			laneMax[k] = w
		}
	}
	ex.bundles = make([]execBundle, len(plan))
	ex.depBundle = make([][]int32, len(ex.g.Tasks))
	for i := range ex.g.Tasks {
		if n := len(ex.g.Tasks[i].Deps); n > 0 {
			row := make([]int32, n)
			for j := range row {
				row[j] = -1
			}
			ex.depBundle[i] = row
		}
	}
	for i := range plan {
		b := &plan[i]
		k := laneKey(b.Src, b.Dst)
		lane := lanes[k]
		if lane == nil {
			lane = newCommLane(b.Src, b.Dst, laneMax[k])
			lanes[k] = lane
		}
		eb := &ex.bundles[i]
		eb.src, eb.dst = b.Src, b.Dst
		eb.members = b.Members
		eb.wireBytes = b.WireBytes()
		eb.lane = lane
		eb.remaining.Store(int32(len(b.Members)))
		for _, m := range b.Members {
			ex.depBundle[m.Task][m.Dep] = int32(i)
		}
	}
	return nil
}

// packBundle serializes every member payload of a bundle into buf (which
// must be empty, with capacity preallocated to the bundle's wire size) using
// the length-prefixed segment format. Each member's Pack closure is drained
// and its returned buffer immediately recycled into the shared arena: under
// coalescing the wire carries a copy, so the producer-side payload buffer is
// free the moment it is packed (see Options.Coalesce for the ownership
// contract).
func packBundle(buf []byte, e ptg.Env, tasks []ptg.Task, members []ptg.BundleMember) []byte {
	hdr := 4 * (1 + len(members))
	if cap(buf) >= hdr {
		buf = buf[:hdr]
	} else {
		buf = append(buf[:0], make([]byte, hdr)...)
	}
	binary.LittleEndian.PutUint32(buf, uint32(len(members)))
	for i, m := range members {
		dep := &tasks[m.Task].Deps[m.Dep]
		var data []byte
		if dep.Pack != nil {
			data = dep.Pack(e)
		}
		binary.LittleEndian.PutUint32(buf[4+4*i:], uint32(len(data)))
		buf = append(buf, data...)
		PutBuf(data)
	}
	return buf
}

// fanOutBundle decodes a bundle payload and deposits every segment with its
// member's Unpack closure, in plan order. Each segment is first copied into
// a fresh pooled buffer: consumers own (and later recycle) their payloads
// individually, and a sub-slice of the wire buffer must never enter the
// arena — its capacity aliases the sibling segments. The wire buffer itself
// is untouched and returns to its lane at the caller.
func fanOutBundle(e ptg.Env, tasks []ptg.Task, members []ptg.BundleMember, data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("runtime: bundle payload truncated (%d bytes)", len(data))
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n != len(members) {
		return fmt.Errorf("runtime: bundle carries %d segments, plan has %d members", n, len(members))
	}
	off := 4 * (1 + n)
	if off > len(data) {
		return fmt.Errorf("runtime: bundle segment table truncated")
	}
	for i, m := range members {
		l := int(binary.LittleEndian.Uint32(data[4+4*i:]))
		if off+l > len(data) {
			return fmt.Errorf("runtime: bundle segment %d overruns payload", i)
		}
		seg := data[off : off+l]
		off += l
		dep := &tasks[m.Task].Deps[m.Dep]
		if dep.Unpack == nil {
			continue
		}
		cp := GetBuf(l)
		copy(cp, seg)
		dep.Unpack(e, cp)
	}
	return nil
}

// sendBundle packs a completed bundle into a lane buffer and ships it as one
// wire message.
func (ex *executor) sendBundle(e ptg.Env, nd *execNode, bi int32) (segs, bytes int) {
	defer func() {
		if r := recover(); r != nil {
			ex.fail(fmt.Errorf("runtime: packing bundle %d->%d panicked: %v",
				ex.bundles[bi].src, ex.bundles[bi].dst, r))
		}
	}()
	b := &ex.bundles[bi]
	buf := packBundle(b.lane.get(), e, ex.g.Tasks, b.members)
	m := Message{Src: b.src, Dst: b.dst, Bundle: bi + 1, Data: buf}
	if ex.overlapOn {
		m.SentNanos = int64(time.Since(ex.t0))
	}
	ex.messages.Add(1)
	ex.bytesSent.Add(int64(len(buf)))
	ex.bundlesSent.Add(1)
	ex.bundleSegments.Add(int64(len(b.members)))
	ex.dispatch(nd, m)
	return len(b.members), len(buf)
}

// receiveBundle fans a bundle's segments out on the destination node,
// returns the wire buffer to its lane, and releases every newly-ready
// consumer in one batched enqueue.
func (ex *executor) receiveBundle(nd *execNode, m Message) (segs, bytes int) {
	defer func() {
		if r := recover(); r != nil {
			ex.fail(fmt.Errorf("runtime: unpacking bundle %d->%d panicked: %v", m.Src, m.Dst, r))
		}
	}()
	b := &ex.bundles[m.Bundle-1]
	if err := fanOutBundle(nd.env, ex.g.Tasks, b.members, m.Data); err != nil {
		ex.fail(err)
		return len(b.members), len(m.Data)
	}
	// All segments are copied out: the wire buffer can rejoin its lane
	// before the consumers run, keeping the lane's free list warm.
	bytes = len(m.Data)
	b.lane.put(m.Data)
	ready := nd.commReady[:0]
	for _, mb := range b.members {
		if atomic.AddInt32(&ex.pending[mb.Task], -1) == 0 {
			ready = append(ready, mb.Task)
		}
	}
	if len(ready) > 0 {
		ex.enqueueBatch(nd, ready)
	}
	nd.commReady = ready[:0]
	return len(b.members), bytes
}

// transfers returns the number of member payloads a queued send request
// stands for — the unit Result.Dropped counts.
func (ex *executor) reqTransfers(r sendReq) int64 {
	if r.bundle != 0 {
		return int64(len(ex.bundles[r.bundle-1].members))
	}
	return 1
}

// msgTransfers is reqTransfers for an in-flight message. Acks are control
// traffic, not data transfers, so a discarded ack counts for nothing.
func (ex *executor) msgTransfers(m Message) int64 {
	if m.Ack {
		return 0
	}
	if m.Bundle != 0 {
		return int64(len(ex.bundles[m.Bundle-1].members))
	}
	return 1
}

// droppedTransfers is the Result.Dropped weight of an undeliverable
// physical message. Under the reliable transport a sequenced copy weighs
// nothing: the original, its duplicates and its retransmissions all carry
// the same sequence number, and whether the *logical* transfer was lost
// is decided once, by the pending-table scan at shutdown.
func (ex *executor) droppedTransfers(m Message) int64 {
	if ex.reliable && m.Seq != 0 {
		return 0
	}
	return ex.msgTransfers(m)
}
