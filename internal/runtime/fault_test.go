package runtime

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"castencil/internal/fault"
	"castencil/internal/ptg"
	"castencil/internal/trace"
)

// genTimeout is an ack timeout generous enough that in-process delivery
// (microseconds) never times out spuriously: every retransmit in these
// tests is caused by an injected drop, making Retransmits == Dropped an
// exact identity.
const genTimeout = 100 * time.Millisecond

func genRecovery() *fault.Recovery {
	return &fault.Recovery{Timeout: genTimeout, Deadline: 10 * time.Second}
}

// auditWire checks the wire accounting identities of a successful
// point-to-point run: Messages counts one original per cross dependency
// plus each injected duplicate and each retransmission, every logical
// transfer was delivered (Dropped is logical under the reliable
// transport), and the receiver deduplicated at most the injected
// duplicate volume.
func auditWire(t *testing.T, res *Result, crossDeps int) {
	t.Helper()
	if res.Messages != crossDeps+res.Fault.Duplicated+res.Fault.Retransmits {
		t.Errorf("wire accounting broken: %d messages != %d deps + %d dups + %d retransmits",
			res.Messages, crossDeps, res.Fault.Duplicated, res.Fault.Retransmits)
	}
	if res.Dropped != 0 {
		t.Errorf("successful run lost %d logical transfers", res.Dropped)
	}
	if res.Fault.DupDrops > res.Fault.Duplicated+res.Fault.Retransmits {
		t.Errorf("receiver deduplicated %d copies, only %d redundant ones existed",
			res.Fault.DupDrops, res.Fault.Duplicated+res.Fault.Retransmits)
	}
}

func TestFaultDelayOnlyUnreliable(t *testing.T) {
	// A pure-delay plan must not enable the reliable transport: no
	// sequencing, no retransmits, message count exactly the cross deps.
	plan := &fault.Plan{Seed: 5, Delay: 0.5, DelayBy: time.Millisecond}
	if plan.NeedsRecovery() {
		t.Fatal("pure delay plan should not need recovery")
	}
	g := buildChain(t, 20, 3)
	res, err := Run(g, Options{Workers: 2, Fault: plan})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stores[19%3].Take("v19").(int); got != 20 {
		t.Errorf("final value = %d, want 20", got)
	}
	if res.Messages != 19 {
		t.Errorf("messages = %d, want 19", res.Messages)
	}
	if res.Fault.Delayed == 0 {
		t.Error("no delays injected at delay=0.5")
	}
	if res.Fault.Retransmits != 0 || res.Fault.DupDrops != 0 {
		t.Errorf("unreliable run did recovery work: %+v", res.Fault)
	}
}

func TestFaultDropRecoveryExactCounters(t *testing.T) {
	plan := &fault.Plan{Seed: 3, Drop: 0.25}
	g := buildChain(t, 20, 3)
	res, err := Run(g, Options{Workers: 2, Fault: plan, Recovery: genRecovery()})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stores[19%3].Take("v19").(int); got != 20 {
		t.Errorf("final value = %d, want 20", got)
	}
	if res.Fault.Dropped == 0 {
		t.Fatal("no drops injected at drop=0.25 over 19 messages")
	}
	// Every injected drop forces exactly one ack timeout and one
	// retransmission; the generous timeout rules out spurious ones.
	if res.Fault.Retransmits != res.Fault.Dropped || res.Fault.Timeouts != res.Fault.Dropped {
		t.Errorf("retransmits/timeouts (%d/%d) != drops (%d)",
			res.Fault.Retransmits, res.Fault.Timeouts, res.Fault.Dropped)
	}
	auditWire(t, res, 19)

	// The injected schedule is a pure function of (seed, identity): a
	// second run must inject the same drops.
	res2, err := Run(g, Options{Workers: 2, Fault: plan, Recovery: genRecovery()})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Fault.Dropped != res.Fault.Dropped {
		t.Errorf("drop schedule not deterministic: %d vs %d", res2.Fault.Dropped, res.Fault.Dropped)
	}
}

func TestFaultDupDelayExactlyOnce(t *testing.T) {
	plan := &fault.Plan{Seed: 9, Drop: 0.15, Dup: 0.3, Delay: 0.3, DelayBy: 500 * time.Microsecond}
	g := buildChain(t, 30, 3)
	// NeedsRecovery auto-enables DefaultRecovery; pass an explicit policy
	// with the generous timeout so counter identities stay exact.
	res, err := Run(g, Options{Workers: 2, Fault: plan, Recovery: genRecovery()})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stores[29%3].Take("v29").(int); got != 30 {
		t.Errorf("final value = %d, want 30 (lost or double-applied delivery)", got)
	}
	if res.Fault.Duplicated == 0 {
		t.Fatal("no duplicates injected at dup=0.3 over 29 messages")
	}
	auditWire(t, res, 29)
}

func TestFaultCoalescedExactlyOnce(t *testing.T) {
	// The -race stress for the coalesced path under drop+dup+delay: the
	// epoch grid audits that every cross payload is delivered exactly
	// once or accounted as dropped, whatever the wire does.
	plan := &fault.Plan{Seed: 11, Drop: 0.25, Dup: 0.25, Delay: 0.3, DelayBy: 300 * time.Microsecond}
	const nodes, epochs, tiles = 3, 5, 4
	eg := buildEpochGrid(t, nodes, epochs, tiles, ptg.TaskID{})
	res, err := Run(eg.g, Options{Workers: 2, Coalesce: ptg.CoalesceStep, Fault: plan, Recovery: genRecovery()})
	if err != nil {
		t.Fatal(err)
	}
	eg.audit(t, "coalesced+faults", res)
	if res.Completed != nodes*epochs*tiles {
		t.Errorf("completed %d of %d tasks", res.Completed, nodes*epochs*tiles)
	}
	if res.Fault.Dropped == 0 || res.Fault.Duplicated == 0 {
		t.Fatalf("plan injected nothing on the bundle path: %+v", res.Fault)
	}
	if res.Fault.Retransmits != res.Fault.Dropped {
		t.Errorf("retransmits %d != drops %d", res.Fault.Retransmits, res.Fault.Dropped)
	}
}

func TestFaultPausedNodePastDeadlineReports(t *testing.T) {
	// Node 1 freezes for far longer than the recovery deadline after its
	// second task. Senders waiting on its acks must fail the run fast with
	// a structured report instead of hanging.
	plan := &fault.Plan{
		Pauses: []fault.NodePause{{Node: 1, AfterTasks: 2, Pause: 10 * time.Second}},
	}
	rec := &fault.Recovery{Timeout: 5 * time.Millisecond, Deadline: 40 * time.Millisecond}
	eg := buildEpochGrid(t, 3, 4, 2, ptg.TaskID{})
	start := time.Now()
	res, err := Run(eg.g, Options{Workers: 2, Fault: plan, Recovery: rec})
	if err == nil {
		t.Fatal("run with a dead node completed without error")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("degradation took %v, deadline was 40ms", waited)
	}
	var rep *fault.Report
	if !errors.As(err, &rep) {
		t.Fatalf("error is %T (%v), want *fault.Report", err, err)
	}
	if rep.ID.Dst != 1 {
		t.Errorf("report blames node %d, want 1: %+v", rep.ID.Dst, rep)
	}
	if rep.Waited < rec.Deadline || rep.Attempts < 1 {
		t.Errorf("implausible report: %+v", rep)
	}
	if res == nil {
		t.Fatal("failed run returned no partial result")
	}
	eg.audit(t, "paused-node", res)
}

func TestFaultReliableNoPlanClean(t *testing.T) {
	// Reliable transport with no fault plan: payload ownership must stay
	// sound (sender retains the original, receiver gets a copy) and the
	// fault counters stay zero. Regression for a double-recycle of the
	// retained buffer.
	g := buildChain(t, 20, 3)
	res, err := Run(g, Options{Workers: 2, Recovery: fault.DefaultRecovery()})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stores[19%3].Take("v19").(int); got != 20 {
		t.Errorf("final value = %d, want 20", got)
	}
	if res.Messages != 19 || res.Fault.Any() {
		t.Errorf("clean reliable run: messages %d, fault %+v", res.Messages, res.Fault)
	}
}

func TestFaultSlowCoreAndStall(t *testing.T) {
	// Time-domain faults perturb only the schedule, never the numerics or
	// the message counts.
	plan := &fault.Plan{
		SlowCores:  []fault.SlowCore{{Node: 1, Core: 0, Extra: 200 * time.Microsecond, Tasks: 5}},
		CommStalls: []fault.CommStall{{Node: 0, After: 1, Stall: time.Millisecond}},
	}
	g := buildChain(t, 12, 2)
	res, err := Run(g, Options{Workers: 2, Fault: plan})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stores[11%2].Take("v11").(int); got != 12 {
		t.Errorf("final value = %d, want 12", got)
	}
	if res.Messages != 11 || res.Fault.Any() {
		t.Errorf("time-domain faults altered wire accounting: messages %d, fault %+v", res.Messages, res.Fault)
	}
}

func TestFaultTraceEvents(t *testing.T) {
	plan := &fault.Plan{Seed: 3, Drop: 0.25}
	g := buildChain(t, 20, 3)
	tr := trace.New()
	res, err := Run(g, Options{Workers: 2, Fault: plan, Recovery: genRecovery(), Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	drops, retransmits := 0, 0
	for _, ev := range tr.Events() {
		if ev.Kind != ptg.KindFault {
			continue
		}
		switch ev.ID.Class {
		case "fault:drop":
			drops++
		case "fault:retransmit":
			retransmits++
		}
	}
	if drops != res.Fault.Dropped || retransmits != res.Fault.Retransmits {
		t.Errorf("trace saw %d drops / %d retransmits, counters say %d / %d",
			drops, retransmits, res.Fault.Dropped, res.Fault.Retransmits)
	}
	if drops == 0 {
		t.Error("no fault events traced")
	}
}

func TestFaultNumericsBitwiseStable(t *testing.T) {
	// The determinism contract: under a maskable fault schedule the
	// computed values are identical to a fault-free run, scheduler and
	// coalescing notwithstanding.
	value := func(opts Options) int {
		g := buildChain(t, 24, 3)
		res, err := Run(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stores[23%3].Take(fmt.Sprintf("v%d", 23)).(int)
	}
	clean := value(Options{Workers: 2})
	plan := &fault.Plan{Seed: 21, Drop: 0.2, Dup: 0.2, Delay: 0.2}
	for run := 0; run < 2; run++ {
		if got := value(Options{Workers: 2, Fault: plan, Recovery: genRecovery()}); got != clean {
			t.Fatalf("run %d diverged under faults: %d vs %d", run, got, clean)
		}
	}
}
