package runtime

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"testing"

	"castencil/internal/ptg"
	"castencil/internal/trace"
)

// TestCoalesceStepErrorsOnChain pins the mode semantics on a graph whose
// epoch stamps make bundling cyclic (the cross-node chain leaves every task
// at epoch 0, so the first bundle would wait on tasks the bundle itself
// feeds): step mode must refuse to run, auto mode must fall back to
// point-to-point delivery and still complete.
func TestCoalesceStepErrorsOnChain(t *testing.T) {
	g := buildChain(t, 12, 3)
	if _, err := Run(g, Options{Workers: 1, Coalesce: ptg.CoalesceStep}); err == nil {
		t.Error("step mode ran a graph whose bundling deadlocks")
	}
	res, err := Run(g, Options{Workers: 1, Coalesce: ptg.CoalesceAuto})
	if err != nil {
		t.Fatal(err)
	}
	if res.BundlesSent != 0 {
		t.Errorf("auto fallback sent %d bundles on an unbundlable graph", res.BundlesSent)
	}
	if res.Dropped != 0 {
		t.Errorf("auto fallback dropped %d transfers", res.Dropped)
	}
}

// epochGrid builds a synthetic many-small-tiles exchange: tiles tasks per
// node per epoch, each depending on its k-th counterpart on every node at
// the previous epoch. All cross payloads one node sends another per epoch
// share a bundle of exactly tiles members. Each cross payload carries its
// producer's index; unpackCount[consumer dep] checks exactly-once delivery
// and runFlags records which task bodies completed (for exact Dropped
// accounting against the graph).
type epochGrid struct {
	g           *ptg.Graph
	runFlags    []atomic.Bool
	unpackCount []atomic.Int32 // one counter per cross dep, indexed in graph order
}

func buildEpochGrid(t *testing.T, nodes, epochs, tiles int, panicTask ptg.TaskID) *epochGrid {
	t.Helper()
	eg := &epochGrid{}
	b := ptg.NewBuilder(nodes)
	idx := func(e, n, k int) int { return (e*nodes+n)*tiles + k }
	eg.runFlags = make([]atomic.Bool, epochs*nodes*tiles)
	for e := 0; e < epochs; e++ {
		for n := 0; n < nodes; n++ {
			for k := 0; k < tiles; k++ {
				id := tid("t", e, n, k)
				me := idx(e, n, k)
				shouldPanic := id == panicTask
				if _, err := b.AddTask(ptg.Task{
					ID: id, Node: int32(n), Epoch: int32(e),
					Run: func(ptg.Env) {
						if shouldPanic {
							panic("stress: induced failure")
						}
						eg.runFlags[me].Store(true)
					},
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for e := 1; e < epochs; e++ {
		for n := 0; n < nodes; n++ {
			for k := 0; k < tiles; k++ {
				for m := 0; m < nodes; m++ {
					dep := ptg.Dep{}
					if m != n {
						producer := int64(idx(e-1, m, k))
						ci := len(eg.unpackCount)
						eg.unpackCount = append(eg.unpackCount, atomic.Int32{})
						dep.Bytes = 8
						dep.Pack = func(ptg.Env) []byte {
							buf := GetBuf(8)
							binary.LittleEndian.PutUint64(buf, uint64(producer))
							return buf
						}
						cnt := ci // capture the counter slot, not the slice header
						dep.Unpack = func(_ ptg.Env, data []byte) {
							if got := int64(binary.LittleEndian.Uint64(data)); got != producer {
								t.Errorf("dep %d delivered payload of task %d, want %d", cnt, got, producer)
							}
							PutBuf(data)
							eg.unpackCount[cnt].Add(1)
						}
					}
					if err := b.AddDep(tid("t", e, n, k), tid("t", e-1, m, k), dep); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eg.g = g
	return eg
}

// audit compares a finished run against the instrumented graph: every
// produced cross payload must be either delivered exactly once or counted
// in Result.Dropped, and nothing may be delivered twice.
func (eg *epochGrid) audit(t *testing.T, label string, res *Result) {
	t.Helper()
	produced := 0
	ci := 0
	delivered := 0
	for i := range eg.g.Tasks {
		task := &eg.g.Tasks[i]
		for di := range task.Deps {
			d := &task.Deps[di]
			if eg.g.Tasks[d.Producer].Node == task.Node {
				continue
			}
			// Cross deps were appended in the same (e, n, k, m) order the
			// builder added them, so ci walks unpackCount in step.
			n := eg.unpackCount[ci].Load()
			if n > 1 {
				t.Errorf("%s: dep %d of %v delivered %d times", label, di, task.ID, n)
			}
			delivered += int(n)
			if eg.runFlags[d.Producer].Load() {
				produced++
			}
			ci++
		}
	}
	if delivered+int(res.Dropped) != produced {
		t.Errorf("%s: delivered %d + dropped %d != produced %d (payloads lost or invented)",
			label, delivered, res.Dropped, produced)
	}
}

// TestCoalescedExactlyOnce runs the epoch grid to completion under
// coalescing and checks full delivery: every cross payload arrives exactly
// once, Messages collapses to one bundle per ordered node pair per
// exchange, and the counters agree.
func TestCoalescedExactlyOnce(t *testing.T) {
	const nodes, epochs, tiles = 4, 6, 5
	eg := buildEpochGrid(t, nodes, epochs, tiles, ptg.TaskID{})
	res, err := Run(eg.g, Options{Workers: 2, Coalesce: ptg.CoalesceStep})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Fatalf("successful run dropped %d transfers", res.Dropped)
	}
	eg.audit(t, "complete", res)
	wantBundles := nodes * (nodes - 1) * (epochs - 1)
	if res.BundlesSent != wantBundles || res.Messages != wantBundles {
		t.Errorf("sent %d messages / %d bundles, want %d (one per ordered pair per exchange)",
			res.Messages, res.BundlesSent, wantBundles)
	}
	if res.BundleSegments != wantBundles*tiles {
		t.Errorf("bundles carried %d segments, want %d", res.BundleSegments, wantBundles*tiles)
	}
	if fill := res.BundleFill(); fill != float64(tiles) {
		t.Errorf("bundle fill = %v, want %d", fill, tiles)
	}
}

// TestCoalescedShutdownRace is the -race stress test for the coalesced comm
// path: many small tiles on four nodes, with a mid-graph panic so bundle
// completion races shutdown. Whatever interleaving results, the exactly-once
// audit must hold: produced payloads are delivered once or dropped, with
// Result.Dropped exact — never lost, never duplicated.
func TestCoalescedShutdownRace(t *testing.T) {
	const nodes, epochs, tiles = 4, 6, 4
	iters := 20
	if testing.Short() {
		iters = 5
	}
	for i := 0; i < iters; i++ {
		// Move the failure around the grid so different epochs and nodes
		// are mid-exchange when shutdown begins.
		panicAt := tid("t", 1+i%(epochs-1), i%nodes, i%tiles)
		eg := buildEpochGrid(t, nodes, epochs, tiles, panicAt)
		res, err := Run(eg.g, Options{Workers: 2, Coalesce: ptg.CoalesceStep})
		if err == nil {
			t.Fatalf("iter %d: run with a panicking task reported no error", i)
		}
		if res == nil {
			t.Fatalf("iter %d: failed run returned no partial result", i)
		}
		eg.audit(t, fmt.Sprintf("iter %d (panic at %v)", i, panicAt), res)
	}
}

// TestBundleRoundTripZeroAlloc pins the lane contract: once the arena and
// lane are warm, a full pack -> fan-out -> recycle cycle of a bundle
// performs no heap allocation.
func TestBundleRoundTripZeroAlloc(t *testing.T) {
	const segBytes, segs = 64, 8
	tasks := make([]ptg.Task, segs)
	members := make([]ptg.BundleMember, segs)
	for i := range tasks {
		tasks[i].Deps = []ptg.Dep{{
			Bytes: segBytes,
			Pack: func(ptg.Env) []byte {
				return GetBuf(segBytes)
			},
			Unpack: func(_ ptg.Env, data []byte) {
				PutBuf(data)
			},
		}}
		members[i] = ptg.BundleMember{Task: int32(i), Dep: 0}
	}
	wire := 4*(1+segs) + segs*segBytes
	lane := newCommLane(0, 1, wire)
	var fanErr error
	allocs := testing.AllocsPerRun(100, func() {
		buf := packBundle(lane.get(), nil, tasks, members)
		if err := fanOutBundle(nil, tasks, members, buf); err != nil && fanErr == nil {
			fanErr = err
		}
		lane.put(buf)
	})
	if fanErr != nil {
		t.Fatal(fanErr)
	}
	if allocs != 0 {
		t.Errorf("coalesced round trip allocates %.1f times per cycle, want 0", allocs)
	}
}

// BenchmarkBundleRoundTrip measures the steady-state coalesced hot path:
// pack a bundle from pooled payloads, fan it back out, recycle the wire
// buffer through its lane.
func BenchmarkBundleRoundTrip(b *testing.B) {
	const segBytes, segs = 2048, 8
	tasks := make([]ptg.Task, segs)
	members := make([]ptg.BundleMember, segs)
	for i := range tasks {
		tasks[i].Deps = []ptg.Dep{{
			Bytes:  segBytes,
			Pack:   func(ptg.Env) []byte { return GetBuf(segBytes) },
			Unpack: func(_ ptg.Env, data []byte) { PutBuf(data) },
		}}
		members[i] = ptg.BundleMember{Task: int32(i), Dep: 0}
	}
	wire := 4*(1+segs) + segs*segBytes
	lane := newCommLane(0, 1, wire)
	b.SetBytes(int64(wire))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := packBundle(lane.get(), nil, tasks, members)
		if err := fanOutBundle(nil, tasks, members, buf); err != nil {
			b.Fatal(err)
		}
		lane.put(buf)
	}
}

// TestTraceCommRecordsWireEvents checks the opt-in comm tracing: with
// Options.TraceComm, every bundle send and receive lands in the trace as a
// KindComm event on the comm goroutine's core (one past the workers),
// carrying the segment and byte counters.
func TestTraceCommRecordsWireEvents(t *testing.T) {
	const nodes, epochs, tiles = 2, 3, 2
	eg := buildEpochGrid(t, nodes, epochs, tiles, ptg.TaskID{})
	tr := trace.New()
	res, err := Run(eg.g, Options{Workers: 2, Coalesce: ptg.CoalesceStep, Trace: tr, TraceComm: true})
	if err != nil {
		t.Fatal(err)
	}
	sends, recvs := 0, 0
	for _, e := range tr.Events() {
		if e.Kind != ptg.KindComm {
			continue
		}
		if e.Core != 2 {
			t.Errorf("comm event %v on core %d, want 2 (one past the workers)", e.ID, e.Core)
		}
		if e.Msgs != tiles {
			t.Errorf("comm event %v carries %d transfers, want %d", e.ID, e.Msgs, tiles)
		}
		if e.Bytes <= 0 {
			t.Errorf("comm event %v has no byte count", e.ID)
		}
		switch e.ID.Class {
		case "send":
			sends++
		case "recv":
			recvs++
		}
	}
	if sends != res.BundlesSent || recvs != res.BundlesSent {
		t.Errorf("traced %d sends / %d recvs, want %d each", sends, recvs, res.BundlesSent)
	}
}
