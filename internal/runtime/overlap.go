package runtime

import "castencil/internal/trace"

// span aliases the trace package's interval type: the overlap
// instrumentation collects wire in-flight spans (stamped SentNanos at
// dispatch, closed at receipt) and inner-task execution spans, and reports
// trace.OverlapRatio over them as Result.OverlapRatio — the fraction of
// communication the split transform hid behind interior compute.
type span = trace.Span
