// Package runtime is the real-execution engine of this repository's PaRSEC
// analog: it unfolds a ptg.Graph over a set of virtual nodes, each with its
// own private store (distributed memory), a pool of worker goroutines
// (compute cores) and one dedicated communication goroutine (the paper's
// "one thread dedicated for communication"). All inter-node dependencies
// travel as byte-serialized messages; nodes never share data structures, so
// a run is faithful to an MPI execution up to transport timing.
package runtime

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"castencil/internal/fault"
	"castencil/internal/ptg"
	"castencil/internal/trace"
)

// Message is one inter-node transfer: the payload of a cross-node
// dependency, addressed by consumer task and dependency index — or, when
// Bundle is nonzero, a coalesced halo bundle carrying many such payloads as
// length-prefixed segments (see internal/runtime/coalesce.go for the wire
// format).
type Message struct {
	Src, Dst int32
	Task     int32 // consumer task index (point-to-point only)
	Dep      int32 // index into the consumer's Deps (point-to-point only)
	// Bundle is the 1-based bundle id of a coalesced message; 0 marks an
	// ordinary point-to-point transfer.
	Bundle int32
	// Seq is the message's per-(src,dst)-lane sequence number under the
	// reliable transport (first message is 1; 0 marks an unsequenced
	// message on the plain zero-copy wire). Ack marks an acknowledgement
	// for Seq — a header-only control message carrying no payload.
	// Attempt is the delivery attempt (0 = original transmission) and
	// keys the fault plan's per-attempt decisions.
	Seq     uint64
	Ack     bool
	Attempt int32
	// SentNanos is the dispatch timestamp (nanoseconds since the run's t0),
	// stamped only when the graph carries inner tasks from the split
	// transform: the receiver closes the in-flight interval behind
	// Result.OverlapRatio. Zero on other runs and on ack messages.
	// Retransmitted copies keep the original timestamp, so a recovered
	// message counts as in flight from its first transmission.
	SentNanos int64
	Data      []byte
}

// Interceptor lets tests and examples wrap message delivery (to inject
// delays, reordering, duplication checks...). It runs on the sender's
// communication goroutine; it must eventually call deliver exactly once for
// the message, possibly from another goroutine.
type Interceptor func(m Message, deliver func(Message))

// Options configures an execution.
type Options struct {
	// Workers is the number of compute goroutines per node (default 1).
	Workers int
	// Sched selects the scheduler architecture (default SharedQueue;
	// WorkStealing is the per-worker-deque scheduler). The choice never
	// changes numerics — only who runs what, when.
	Sched Sched
	// Policy selects the ready-queue discipline (default FIFO): the
	// shared queue's order under SharedQueue, the injection queue's
	// order under WorkStealing.
	Policy Policy
	// Coalesce selects halo-bundle coalescing (default CoalesceOff). With
	// CoalesceStep/CoalesceAuto, all cross-node payloads one node produces
	// in one epoch toward one destination travel as a single message over a
	// persistent communication lane (ptg.CoalesceStep fails the run when
	// the graph's epochs do not admit a deadlock-free plan; ptg.CoalesceAuto
	// falls back to point-to-point). Coalescing never changes numerics.
	//
	// Ownership contract: under coalescing the comm goroutine copies each
	// packed payload into the bundle's wire buffer and immediately recycles
	// the buffer returned by Dep.Pack into the arena (PutBuf). Pack
	// implementations must therefore hand over ownership of their returned
	// buffer — the same convention point-to-point receivers already apply.
	Coalesce ptg.CoalesceMode
	// Fault, when non-nil, injects the plan's deterministic faults into
	// the wire path (dropped/duplicated/delayed/reordered messages, slow
	// cores, comm stalls, node pauses). Message-level decisions are keyed
	// by graph identity, so a simulated run with the same plan injects a
	// byte-identical schedule. Plans that drop or duplicate (or pause
	// nodes) auto-enable the reliable transport with DefaultRecovery when
	// Recovery is nil.
	Fault *fault.Plan
	// Recovery, when non-nil, enables the reliable transport: per-lane
	// sequence numbers, ack + retransmit with exponential backoff,
	// receiver-side dedup (delivery stays exactly-once whatever the wire
	// does), and fail-fast degradation with a structured *fault.Report
	// when a message stays unacknowledged past the deadline. Zero-value
	// fields take the fault.DefaultRecovery policy.
	Recovery *fault.Recovery
	// Trace, when non-nil, receives one event per executed task.
	Trace *trace.Trace
	// TraceComm additionally records one trace.Event per wire message
	// handled by each node's communication goroutine (Kind ptg.KindComm,
	// core index Workers — one past the compute cores), carrying the
	// transfer count and wire bytes. Requires Trace.
	TraceComm bool
	// Intercept, when non-nil, wraps every inter-node message.
	Intercept Interceptor
	// Ctx, when non-nil, bounds the execution: when it is cancelled or its
	// deadline passes, workers stop picking up tasks, the communication
	// goroutines drain, and Run returns a *ptg.CancelError (wrapping the
	// context error) alongside the partial result. Cancellation is prompt
	// at task granularity — a task already running finishes, nothing new
	// starts. A nil Ctx means the run cannot be interrupted (the historical
	// behavior).
	Ctx context.Context
	// OnProgress, when non-nil, is called with (completed, total) task
	// counts as the run advances — at least once at completion and roughly
	// every 1/128th of the graph in between. It is invoked from worker
	// goroutines and must be cheap and concurrency-safe.
	OnProgress func(done, total int64)
	// Dist, when non-nil, distributes the run across multiple OS processes:
	// this process runs workers only for the virtual nodes RankOfNode
	// assigns to Dist.Rank and routes messages for remote nodes through
	// Dist.Net (see dist.go). Total/progress counts cover the local slice;
	// after a successful run rank 0's Result carries the globally summed
	// counters, and only local nodes' Stores hold data.
	Dist *Dist
	// Steal, when non-nil and active, enables inter-node work stealing on a
	// distributed run (see steal.go): starving ranks migrate ready tasks —
	// with their input tiles — from data-affine peers over the conduit's
	// steal frames. Requires Dist and a conduit implementing StealConduit.
	// Every rank must be configured with the same policy. Migration never
	// changes numerics: the final grid is bitwise-identical to a run
	// without stealing.
	Steal *StealPolicy
}

// Result summarizes a completed execution.
type Result struct {
	Elapsed   time.Duration
	Stores    []*Store // per-node stores, for gathering output data
	Messages  int      // inter-node wire messages sent (a bundle counts once)
	BytesSent int
	// BundlesSent counts coalesced messages among Messages; BundleSegments
	// counts the member payloads they carried. Both are zero with
	// coalescing off.
	BundlesSent    int
	BundleSegments int
	Completed      int
	// Dropped counts inter-node transfers discarded at shutdown: send
	// requests never packed plus messages delivered or queued after the
	// run finished. It is zero for a successful run (completion implies
	// every message was consumed) and keeps the Messages/BytesSent
	// accounting honest when a run fails mid-flight.
	Dropped int
	// NodeTasks and NodeBusy report per-node executed-task counts and
	// summed task execution time (across that node's workers).
	NodeTasks []int
	NodeBusy  []time.Duration
	// Scheduler observability, per node. NodeLocalHits counts tasks a
	// worker popped from its own deque, NodeSteals tasks taken from a
	// sibling worker's deque (both zero under SharedQueue). NodeParks
	// counts worker park episodes on the node condvar (all schedulers).
	NodeLocalHits []int
	NodeSteals    []int
	NodeParks     []int
	// Fault counts injected faults and the recovery work that masked
	// them (all zero without a fault plan / the reliable transport).
	Fault fault.Stats
	// Overlap observability for split graphs (all zero when the graph has
	// no inner tasks — the instrumentation is pay-for-use). OverlapRatio
	// is the fraction of wire in-flight time during which at least one
	// interior (KindInner) task was executing somewhere: how much of the
	// communication the split transform actually hid behind compute.
	// InteriorTasks and BorderTasks count executed tasks of those kinds.
	OverlapRatio  float64
	InteriorTasks int
	BorderTasks   int
	// Inter-node work stealing (all zero without an active Options.Steal).
	// StealsRemote counts migrated tasks this rank executed for a peer;
	// MigratedTasks counts tasks this rank shipped out, MigratedBytes the
	// wire bytes their migration round trips moved (input state + results).
	// After the distributed epilogue rank 0 holds the global sums; steal
	// traffic is never folded into Messages/BytesSent.
	StealsRemote  int
	MigratedTasks int
	MigratedBytes int
}

// BundleFill returns the average number of member payloads per coalesced
// message (0 when no bundles were sent). A fill equal to the neighbor-pair
// dependency count means every exchange collapsed to one message.
func (r *Result) BundleFill() float64 {
	if r.BundlesSent == 0 {
		return 0
	}
	return float64(r.BundleSegments) / float64(r.BundlesSent)
}

type sendReq struct {
	task int32 // consumer task (point-to-point only)
	dep  int32
	// bundle is the 1-based id of a completed bundle to pack and send;
	// 0 marks a point-to-point request.
	bundle int32
}

type execNode struct {
	id    int32
	store *Store
	env   ptg.Env // the node's environment, boxed once
	mu    sync.Mutex
	cond  *sync.Cond
	// queue is the node-level ready queue: the one shared queue under
	// SharedQueue; the overflow/injection queue (comm goroutine + root
	// seeding) under WorkStealing. Guarded by mu.
	queue readyQueue
	// wakeSeq, guarded by mu, is bumped by deque producers that want to
	// wake parked workers; a parker re-checks it before sleeping, which
	// closes the lost-wakeup race with lock-free deque pushes.
	wakeSeq uint64
	// deques holds one Chase-Lev deque per worker (WorkStealing only).
	deques []*deque
	parked atomic.Int32 // workers currently in (or entering) the park path

	localHits atomic.Int64
	steals    atomic.Int64
	parks     atomic.Int64

	sendQ chan sendReq
	inbox chan Message
	// commReady is the comm goroutine's scratch for batched successor
	// release after a bundle fan-out (only that goroutine touches it).
	commReady []int32

	// Fault-injection/recovery state (see fault.go; all nil/zero without
	// a plan or the reliable transport). rel and outSeq are comm-goroutine
	// owned; coreSeq[c] is owned by the worker goroutine of core c;
	// pauseUntil (unix nanos) gates the whole node through maybePause.
	rel        *relState
	outSeq     int
	coreSeq    []int
	pauseUntil atomic.Int64
	// relPending mirrors len(rel.outstanding) for readers outside the comm
	// goroutine: the distributed drain (dist.go) polls it to learn when
	// every reliable send has been acknowledged.
	relPending atomic.Int64
}

// wake bumps the wake sequence and wakes up to n parked workers. Called by
// a worker whose lock-free deque pushes left surplus work while siblings
// were parked; waking surplus-many (not all) avoids a thundering herd that
// would just re-scan and re-park.
func (nd *execNode) wake(n int) {
	nd.mu.Lock()
	nd.wakeSeq++
	for i := 0; i < n; i++ {
		nd.cond.Signal()
	}
	nd.mu.Unlock()
}

type executor struct {
	g         *ptg.Graph
	opts      Options
	steal     bool // opts.Sched == WorkStealing
	traceComm bool // opts.Trace != nil && opts.TraceComm
	nodes     []*execNode
	pending   []int32 // remaining dep count per task (atomic)
	t0        time.Time

	// Coalescing state (nil/empty with coalescing off): the bundle plan,
	// and per task/dep the bundle index (-1 = unbundled). See coalesce.go.
	bundles   []execBundle
	depBundle [][]int32

	nodeTasks []atomic.Int64
	nodeBusy  []atomic.Int64 // nanoseconds

	// Overlap instrumentation (see overlap.go), active only when the graph
	// carries KindInner tasks. innerIv[node*Workers+core] is owned by that
	// worker goroutine; commIv[node] by that node's comm goroutine — both
	// are read only after the run's WaitGroup settles.
	overlapOn     bool
	innerIv       [][]span
	commIv        [][]span
	interiorTasks atomic.Int64
	borderTasks   atomic.Int64

	completed atomic.Int64
	total     int64
	done      atomic.Bool
	// cancelled marks a context-driven stop: workers discard ready tasks
	// and exit instead of draining their queues (a failed task, by
	// contrast, lets already-queued work keep running).
	cancelled     atomic.Bool
	progressEvery int64
	finished      chan struct{}

	// Distribution state (see dist.go; nil/aliased for single-process runs).
	// commStop is what comm goroutines drain on: it aliases finished in a
	// single-process run, but a distributed run keeps its comm goroutines
	// alive past local completion (peers still need acks and dedup) and
	// closes commStop only after the drain barrier. commClosed mirrors the
	// close for the deliver path.
	dist       *Dist
	nodeRank   []int32
	commStop   chan struct{}
	commClosed atomic.Bool

	// Inter-node work stealing (see steal.go; all nil/zero unless
	// Options.Steal is active). stealAvg[n] is a per-node EWMA of task
	// nanos feeding the cost gate; the three counters are the migration
	// accounting behind Result.StealsRemote/MigratedTasks/MigratedBytes.
	agent         *stealAgent
	forcedSteal   map[int32]int
	stealAvg      []atomic.Int64
	stealsRemote  atomic.Int64
	migratedTasks atomic.Int64
	migratedBytes atomic.Int64

	messages       atomic.Int64
	bytesSent      atomic.Int64
	bundlesSent    atomic.Int64
	bundleSegments atomic.Int64
	dropped        atomic.Int64

	// Fault layer (see fault.go): the plan (nil = no injection), the
	// recovery policy (reliable = Recovery enabled), the counters, and
	// the wait group tracking background deliveries (injected delays,
	// overflow enqueues) so the final accounting sweep is exact.
	fplan    *fault.Plan
	rec      fault.Recovery
	reliable bool
	bgWg     sync.WaitGroup
	fStats   struct {
		dropped, duplicated, delayed    atomic.Int64
		retransmits, dupDrops, timeouts atomic.Int64
	}

	errMu  sync.Mutex
	runErr error
}

type env struct {
	node  int32
	store *Store
}

func (e env) NodeID() int    { return int(e.node) }
func (e env) Put(k, v any)   { e.store.Put(k, v) }
func (e env) Take(k any) any { return e.store.Take(k) }
func (e env) Get(k any) any  { return e.store.Get(k) }

// env implements ptg.SlotEnv: slot traffic goes straight to the store's
// preallocated arrays, skipping the keyed map's mutex and hashing.
func (e env) PutSlot(slot int32, v any)       { e.store.PutSlot(slot, v) }
func (e env) GetSlot(slot int32) any          { return e.store.GetSlot(slot) }
func (e env) PutBufSlot(slot int32, b []byte) { e.store.PutBufSlot(slot, b) }
func (e env) TakeBufSlot(slot int32) []byte   { return e.store.TakeBufSlot(slot) }

// Run executes the graph to completion and returns the result. It is an
// error if the graph deadlocks due to a malformed dependency structure
// (detected as global quiescence before completion) or if a task panics.
func Run(g *ptg.Graph, opts Options) (*Result, error) {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, &ptg.CancelError{Engine: "runtime", Total: len(g.Tasks), Err: err}
		}
	}
	if err := opts.Fault.Validate(); err != nil {
		return nil, err
	}
	if opts.Recovery == nil && opts.Fault.NeedsRecovery() {
		// Drops need retransmit, duplicates need dedup, pauses need the
		// fail-fast deadline: injecting them over the plain wire would
		// hang or corrupt, so the reliable transport comes on by default.
		opts.Recovery = fault.DefaultRecovery()
	}
	ex := &executor{
		g:         g,
		opts:      opts,
		steal:     opts.Sched == WorkStealing,
		traceComm: opts.Trace != nil && opts.TraceComm,
		pending:   make([]int32, len(g.Tasks)),
		total:     int64(len(g.Tasks)),
		finished:  make(chan struct{}),
		nodeTasks: make([]atomic.Int64, g.NumNodes),
		nodeBusy:  make([]atomic.Int64, g.NumNodes),
	}
	ex.commStop = ex.finished
	if opts.Dist != nil {
		if err := validateDist(opts.Dist, g.NumNodes); err != nil {
			return nil, err
		}
		ex.dist = opts.Dist
		ex.nodeRank = make([]int32, g.NumNodes)
		for n := range ex.nodeRank {
			ex.nodeRank[n] = int32(RankOfNode(n, g.NumNodes, opts.Dist.Ranks))
		}
		ex.commStop = make(chan struct{})
		local := int64(0)
		for i := range g.Tasks {
			if ex.localNode(g.Tasks[i].Node) {
				local++
			}
		}
		ex.total = local
	}
	if opts.Fault.Active() {
		ex.fplan = opts.Fault
	}
	if opts.Recovery != nil {
		ex.reliable = true
		ex.rec = opts.Recovery.WithDefaults()
	}
	if opts.Steal.active() {
		ag, err := newStealAgent(ex)
		if err != nil {
			return nil, err
		}
		ex.agent = ag
	}
	if err := ex.planBundles(); err != nil {
		return nil, err
	}
	for i := range g.Tasks {
		if g.Tasks[i].Kind == ptg.KindInner {
			ex.overlapOn = true
			break
		}
	}
	if ex.overlapOn {
		ex.innerIv = make([][]span, g.NumNodes*opts.Workers)
		ex.commIv = make([][]span, g.NumNodes)
	}

	// Size inboxes and send queues so channel operations never block
	// indefinitely: one slot per cross-node dependency.
	inboxNeed := make([]int, g.NumNodes)
	sendNeed := make([]int, g.NumNodes)
	for i := range g.Tasks {
		t := &g.Tasks[i]
		ex.pending[i] = int32(len(t.Deps))
		for _, d := range t.Deps {
			p := &g.Tasks[d.Producer]
			if p.Node != t.Node {
				inboxNeed[t.Node]++
				sendNeed[p.Node]++
			}
		}
	}
	ex.nodes = make([]*execNode, g.NumNodes)
	for n := 0; n < g.NumNodes; n++ {
		slots, bufSlots := 0, 0
		if g.NodeSlots != nil {
			slots = g.NodeSlots[n]
		}
		if g.NodeBufSlots != nil {
			bufSlots = g.NodeBufSlots[n]
		}
		nd := &execNode{
			id:    int32(n),
			store: NewStoreWithSlots(slots, bufSlots),
			queue: newReadyQueue(opts.Policy),
			sendQ: make(chan sendReq, sendNeed[n]+1),
			inbox: make(chan Message, inboxNeed[n]+1),
		}
		if ex.steal {
			nd.deques = make([]*deque, opts.Workers)
			for w := range nd.deques {
				nd.deques[w] = newDeque()
			}
		}
		if ex.reliable {
			nd.rel = newRelState(g.NumNodes)
		}
		if ex.fplan != nil {
			nd.coreSeq = make([]int, opts.Workers)
		}
		nd.env = env{node: nd.id, store: nd.store}
		nd.cond = sync.NewCond(&nd.mu)
		ex.nodes[n] = nd
	}
	// Size each node's fan-out scratch for its largest inbound bundle, so
	// the batched release never grows it mid-run.
	for i := range ex.bundles {
		b := &ex.bundles[i]
		nd := ex.nodes[b.dst]
		if cap(nd.commReady) < len(b.members) {
			nd.commReady = make([]int32, 0, len(b.members))
		}
	}

	if ex.total == 0 && ex.dist == nil {
		return &Result{Stores: ex.stores()}, nil
	}
	ex.progressEvery = ex.total / 128
	if ex.progressEvery == 0 {
		ex.progressEvery = 1
	}

	// Distributed runs bind the conduit and hold the start barrier before
	// epoch 0: every rank's lanes are up and bound before any data frame can
	// be produced, so no rank ever receives wire traffic it has no run for.
	if ex.dist != nil {
		if err := ex.dist.Net.Bind(g.NumNodes, ex.deliver, ex.fail); err != nil {
			return nil, err
		}
		if ex.agent != nil {
			// Steal frames must have a handler before any peer can probe:
			// bound before the start barrier, like the data path.
			ex.agent.sc.BindSteal(ex.agent.inject)
		}
		if err := ex.dist.Net.Barrier("start"); err != nil {
			if ex.agent != nil {
				ex.agent.sc.BindSteal(nil)
			}
			ex.dist.Net.Unbind()
			return nil, err
		}
	}

	ex.t0 = time.Now()

	// The context watcher rides the background wait group: it exits the
	// moment the run finishes (ex.finished closes on success and failure
	// alike), so bgWg.Wait below never blocks on it.
	if ctx := opts.Ctx; ctx != nil {
		ex.bgWg.Add(1)
		go func() {
			defer ex.bgWg.Done()
			select {
			case <-ctx.Done():
				ex.cancelled.Store(true)
				ex.fail(&ptg.CancelError{
					Engine: "runtime",
					Done:   int(ex.completed.Load()),
					Total:  int(ex.total),
					Err:    ctx.Err(),
				})
			case <-ex.finished:
			}
		}()
	}

	var wg sync.WaitGroup
	for _, nd := range ex.nodes {
		if !ex.localNode(nd.id) {
			continue
		}
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go ex.worker(nd, int32(w), &wg)
		}
		wg.Add(1)
		go ex.comm(nd, &wg)
	}
	if ex.agent != nil {
		wg.Add(1)
		go ex.agent.run(&wg)
	}

	// Seed the local roots.
	for _, r := range g.Roots() {
		if ex.localNode(g.Tasks[r].Node) {
			ex.enqueue(r)
		}
	}
	if ex.total == 0 {
		// An idle rank (more ranks than populated nodes, or a graph whose
		// tasks all live elsewhere) still owes the peers its barriers and
		// stats, so it completes immediately rather than returning early.
		ex.finish()
	}

	<-ex.finished
	elapsed := time.Since(ex.t0)
	if ex.dist != nil {
		// Keep comm goroutines serving acks/dedup until every peer has
		// drained (or the run's failure is broadcast), then release them.
		ex.distDrain()
		ex.commClosed.Store(true)
		close(ex.commStop)
	}
	wg.Wait()
	// Wait out background deliveries (injected delays, overflow enqueues)
	// so the final accounting sweep below sees every in-flight copy.
	ex.bgWg.Wait()

	// Final sweep: workers may post send requests after their node's comm
	// goroutine has drained and exited (queued tasks keep running after a
	// failure). With all goroutines gone the leftovers sit in the buffered
	// channels; count them so Dropped is exact. A queued bundle stands for
	// all of its member transfers.
	for _, nd := range ex.nodes {
		for drained := true; drained; {
			select {
			case r := <-nd.sendQ:
				ex.dropped.Add(ex.reqTransfers(r))
			case m := <-nd.inbox:
				ex.dropped.Add(ex.droppedTransfers(m))
			default:
				drained = false
			}
		}
	}
	// Under the reliable transport a logical transfer is lost exactly when
	// its sender still holds it unacknowledged and its receiver never saw
	// the sequence number (however many physical copies were in flight).
	// All goroutines are gone, so both tables are quiescent.
	if ex.reliable {
		for _, nd := range ex.nodes {
			for k, p := range nd.rel.outstanding {
				if _, ok := ex.nodes[k.peer].rel.seen[laneSeq{peer: nd.id, seq: k.seq}]; !ok {
					ex.dropped.Add(ex.msgTransfers(p.m))
				}
			}
		}
	}
	// Partially filled bundles hold produced payloads that never earned a
	// send request (the bundle waits for its last member); count them too,
	// so Dropped keeps the invariant produced = delivered + dropped on
	// failed runs. Workers are gone, so the countdowns are settled.
	for i := range ex.bundles {
		b := &ex.bundles[i]
		if rem := b.remaining.Load(); rem > 0 && rem < int32(len(b.members)) {
			ex.dropped.Add(int64(len(b.members)) - int64(rem))
		}
	}

	ex.errMu.Lock()
	err := ex.runErr
	ex.errMu.Unlock()
	res := &Result{
		Elapsed:        elapsed,
		Stores:         ex.stores(),
		Messages:       int(ex.messages.Load()),
		BytesSent:      int(ex.bytesSent.Load()),
		BundlesSent:    int(ex.bundlesSent.Load()),
		BundleSegments: int(ex.bundleSegments.Load()),
		Completed:      int(ex.completed.Load()),
		Dropped:        int(ex.dropped.Load()),
		NodeTasks:      make([]int, g.NumNodes),
		NodeBusy:       make([]time.Duration, g.NumNodes),
		NodeLocalHits:  make([]int, g.NumNodes),
		NodeSteals:     make([]int, g.NumNodes),
		NodeParks:      make([]int, g.NumNodes),
		Fault:          ex.faultStats(),
		StealsRemote:   int(ex.stealsRemote.Load()),
		MigratedTasks:  int(ex.migratedTasks.Load()),
		MigratedBytes:  int(ex.migratedBytes.Load()),
	}
	for n := 0; n < g.NumNodes; n++ {
		res.NodeTasks[n] = int(ex.nodeTasks[n].Load())
		res.NodeBusy[n] = time.Duration(ex.nodeBusy[n].Load())
		res.NodeLocalHits[n] = int(ex.nodes[n].localHits.Load())
		res.NodeSteals[n] = int(ex.nodes[n].steals.Load())
		res.NodeParks[n] = int(ex.nodes[n].parks.Load())
	}
	if ex.overlapOn {
		var comm, inner []span
		for _, iv := range ex.commIv {
			comm = append(comm, iv...)
		}
		for _, iv := range ex.innerIv {
			inner = append(inner, iv...)
		}
		res.OverlapRatio = trace.OverlapRatio(comm, inner)
		res.InteriorTasks = int(ex.interiorTasks.Load())
		res.BorderTasks = int(ex.borderTasks.Load())
	}
	if ex.dist != nil {
		if err == nil {
			if gerr := ex.distExchangeStats(res); gerr != nil {
				err = gerr
			}
		}
		if ex.agent != nil {
			ex.agent.sc.BindSteal(nil)
		}
		ex.dist.Net.Unbind()
	}
	if err != nil {
		// The partial result accompanies the error so callers can audit
		// what moved (and what was dropped) in the failed run.
		return res, err
	}
	return res, nil
}

func (ex *executor) stores() []*Store {
	out := make([]*Store, len(ex.nodes))
	for i, nd := range ex.nodes {
		out[i] = nd.store
	}
	return out
}

func (ex *executor) fail(err error) {
	ex.errMu.Lock()
	if ex.runErr == nil {
		ex.runErr = err
	}
	ex.errMu.Unlock()
	ex.finish()
}

// finish marks the execution complete and wakes everything up.
func (ex *executor) finish() {
	if ex.done.CompareAndSwap(false, true) {
		close(ex.finished)
		for _, nd := range ex.nodes {
			nd.mu.Lock()
			nd.cond.Broadcast()
			nd.mu.Unlock()
		}
	}
}

// enqueue makes a task ready on its owning node (or diverts it to the steal
// agent when it is pinned to a remote thief).
func (ex *executor) enqueue(idx int32) {
	if ex.divert(idx) {
		return
	}
	t := &ex.g.Tasks[idx]
	nd := ex.nodes[t.Node]
	nd.mu.Lock()
	nd.queue.push(idx, t.Priority)
	nd.cond.Signal()
	nd.mu.Unlock()
}

// enqueueBatch makes several tasks ready on one node under a single lock
// acquisition — the batched successor release that keeps per-task lock
// traffic at one queue-push critical section per completion.
func (ex *executor) enqueueBatch(nd *execNode, tasks []int32) {
	if ex.forcedSteal != nil {
		kept := tasks[:0]
		for _, idx := range tasks {
			if !ex.divert(idx) {
				kept = append(kept, idx)
			}
		}
		if tasks = kept; len(tasks) == 0 {
			return
		}
	}
	nd.mu.Lock()
	for _, idx := range tasks {
		nd.queue.push(idx, ex.g.Tasks[idx].Priority)
	}
	if len(tasks) == 1 {
		nd.cond.Signal()
	} else {
		nd.cond.Broadcast()
	}
	nd.mu.Unlock()
}

// satisfy decrements a task's pending count and enqueues it at zero.
func (ex *executor) satisfy(idx int32) {
	if atomic.AddInt32(&ex.pending[idx], -1) == 0 {
		ex.enqueue(idx)
	}
}

func (ex *executor) worker(nd *execNode, core int32, wg *sync.WaitGroup) {
	defer wg.Done()
	if ex.steal {
		ex.workerSteal(nd, core)
		return
	}
	var ready []int32 // per-worker scratch for batched successor release
	for {
		if ex.cancelled.Load() {
			return
		}
		ex.maybePause(nd)
		nd.mu.Lock()
		if nd.queue.size() == 0 && !ex.done.Load() {
			nd.parks.Add(1)
			ex.noteStarve()
			for nd.queue.size() == 0 && !ex.done.Load() {
				nd.cond.Wait()
			}
		}
		idx, ok := nd.queue.pop()
		nd.mu.Unlock()
		if !ok {
			if ex.done.Load() {
				return
			}
			continue
		}
		if ex.cancelled.Load() {
			// A context stop discards ready work instead of draining it —
			// promptness is the contract, the accounting sweep owns the
			// leftovers.
			return
		}
		ready = ex.runTask(nd, core, idx, false, ready[:0])
	}
}

// workerSteal is the work-stealing compute loop: own deque first (LIFO,
// cache-hot successors), then siblings' deques (FIFO steal), then the
// node-level injection queue, then park. The park protocol pairs the
// atomic parked counter with a re-scan: a deque producer either sees
// parked > 0 (and bumps wakeSeq under the lock) or its push is ordered
// before the parker's final scan — sequential consistency of both atomics
// rules out the lost wakeup.
func (ex *executor) workerSteal(nd *execNode, core int32) {
	own := nd.deques[core]
	var ready []int32
	for {
		if ex.cancelled.Load() {
			return
		}
		ex.maybePause(nd)
		idx, stolen, ok := ex.findWork(nd, core, own)
		if !ok {
			if ex.done.Load() {
				return
			}
			nd.mu.Lock()
			seq := nd.wakeSeq
			nd.mu.Unlock()
			nd.parked.Add(1)
			idx, stolen, ok = ex.findWork(nd, core, own)
			if !ok {
				nd.mu.Lock()
				if nd.wakeSeq == seq && nd.queue.size() == 0 && !ex.done.Load() {
					nd.parks.Add(1)
					ex.noteStarve()
					for nd.wakeSeq == seq && nd.queue.size() == 0 && !ex.done.Load() {
						nd.cond.Wait()
					}
				}
				nd.mu.Unlock()
				nd.parked.Add(-1)
				continue
			}
			nd.parked.Add(-1)
		}
		if ex.cancelled.Load() {
			return
		}
		ready = ex.runTask(nd, core, idx, stolen, ready[:0])
	}
}

// findWork implements the steal order: local deque, sibling deques
// (starting just past the caller for spread), injection queue.
func (ex *executor) findWork(nd *execNode, core int32, own *deque) (idx int32, stolen, ok bool) {
	if idx, ok := own.pop(); ok {
		nd.localHits.Add(1)
		return idx, false, true
	}
	n := len(nd.deques)
	for off := 1; off < n; off++ {
		if idx, ok := nd.deques[(int(core)+off)%n].steal(); ok {
			nd.steals.Add(1)
			return idx, true, true
		}
	}
	nd.mu.Lock()
	idx, ok = nd.queue.pop()
	nd.mu.Unlock()
	return idx, false, ok
}

func (ex *executor) runTask(nd *execNode, core int32, idx int32, stolen bool, ready []int32) []int32 {
	defer func() {
		if r := recover(); r != nil {
			ex.fail(fmt.Errorf("runtime: task %v panicked: %v", ex.g.Tasks[idx].ID, r))
		}
	}()
	t := &ex.g.Tasks[idx]
	start := time.Since(ex.t0)
	if extra := ex.slowCoreExtra(nd, core); extra > 0 {
		// A transiently slow core: the task simply takes longer, inside
		// its timed window, so traces and busy accounting show the drag.
		ex.sleepInterruptible(extra)
	}
	if t.Run != nil {
		t.Run(nd.env)
	}
	end := time.Since(ex.t0)
	completed := ex.nodeTasks[nd.id].Add(1)
	ex.nodeBusy[nd.id].Add(int64(end - start))
	if ex.stealAvg != nil {
		// EWMA of task duration, feeding the steal cost gate. Racy
		// read-modify-write is fine: it is a smoothed estimate.
		d := int64(end - start)
		if old := ex.stealAvg[nd.id].Load(); old > 0 {
			d = old + (d-old)/8
		}
		ex.stealAvg[nd.id].Store(d)
	}
	if ex.overlapOn {
		switch t.Kind {
		case ptg.KindInner:
			ex.interiorTasks.Add(1)
			s := int(nd.id)*ex.opts.Workers + int(core)
			ex.innerIv[s] = append(ex.innerIv[s], span{Start: int64(start), End: int64(end)})
		case ptg.KindBorder:
			ex.borderTasks.Add(1)
		}
	}
	if ex.fplan != nil {
		ex.notePause(nd, int(completed))
	}
	if ex.opts.Trace != nil {
		ex.opts.Trace.Record(trace.Event{
			ID: t.ID, Kind: t.Kind, Node: nd.id, Core: core,
			Start: start, End: end, Stolen: stolen,
		})
	}

	ready = ex.releaseSuccs(nd, idx, ready)
	if len(ready) > 0 {
		if ex.steal {
			// Locality-first successor placement: newly-ready local
			// successors go straight onto this worker's own deque — no
			// lock, no wakeup. The worker pops one back immediately
			// (LIFO), so siblings only need waking when there is
			// surplus beyond that.
			d := nd.deques[core]
			for _, s := range ready {
				d.push(s)
			}
			if p := int(nd.parked.Load()); p > 0 && len(ready) > 1 {
				if surplus := len(ready) - 1; surplus < p {
					p = surplus
				}
				nd.wake(p)
			}
		} else {
			ex.enqueueBatch(nd, ready)
		}
	}

	ex.completeTask()
	return ready
}

// releaseSuccs releases a completed task's successors: local deps are
// satisfied directly (newly ready tasks appended to ready, unless pinned to
// a remote thief — those divert to the steal agent), cross-node deps are
// handed to the communication goroutine. Under coalescing a cross dep only
// decrements its bundle's countdown; the completion that zeroes it posts one
// send request for the whole bundle. Shared by runTask and the migration
// commit.
func (ex *executor) releaseSuccs(nd *execNode, idx int32, ready []int32) []int32 {
	t := &ex.g.Tasks[idx]
	for _, sIdx := range t.Succs {
		s := &ex.g.Tasks[sIdx]
		for dIdx := range s.Deps {
			if s.Deps[dIdx].Producer != idx {
				continue
			}
			if s.Node == t.Node {
				if atomic.AddInt32(&ex.pending[sIdx], -1) == 0 {
					if ex.divert(sIdx) {
						continue
					}
					ready = append(ready, sIdx)
				}
			} else if ex.depBundle != nil && ex.depBundle[sIdx][dIdx] >= 0 {
				bi := ex.depBundle[sIdx][dIdx]
				if ex.bundles[bi].remaining.Add(-1) == 0 {
					nd.sendQ <- sendReq{bundle: bi + 1}
				}
			} else {
				nd.sendQ <- sendReq{task: sIdx, dep: int32(dIdx)}
			}
		}
	}
	return ready
}

// completeTask advances the run's completion counters — the tail shared by
// runTask and the migration commit.
func (ex *executor) completeTask() {
	done := ex.completed.Add(1)
	if ex.opts.OnProgress != nil && (done%ex.progressEvery == 0 || done == ex.total) {
		ex.opts.OnProgress(done, ex.total)
	}
	if done == ex.total {
		ex.finish()
	}
}

// comm is the per-node communication goroutine: it serializes outgoing
// payloads (Pack) and deposits incoming ones (Unpack), mirroring PaRSEC's
// dedicated communication thread.
func (ex *executor) comm(nd *execNode, wg *sync.WaitGroup) {
	defer wg.Done()
	e := nd.env
	// The reliable transport drives retransmission off a ticker at a
	// quarter of the initial ack timeout: fine enough that a timeout is
	// noticed promptly, coarse enough that an idle run stays idle.
	var tickC <-chan time.Time
	if ex.reliable {
		iv := ex.rec.Timeout / 4
		if iv < time.Millisecond {
			iv = time.Millisecond
		}
		t := time.NewTicker(iv)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case req := <-nd.sendQ:
			ex.maybePause(nd)
			ex.send(e, nd, req)
		case m := <-nd.inbox:
			ex.maybePause(nd)
			ex.receive(nd, m)
		case <-tickC:
			ex.retransmitDue(nd)
		case <-ex.commStop:
			// Drain anything already queued, counting the discards: a
			// dropped transfer is data the accounting says moved (or was
			// about to move) but that never reached its consumer. A bundle
			// counts once per member payload it stands for.
			for {
				select {
				case r := <-nd.sendQ:
					ex.dropped.Add(ex.reqTransfers(r))
				case m := <-nd.inbox:
					ex.dropped.Add(ex.droppedTransfers(m))
				default:
					return
				}
			}
		}
	}
}

// deliver enqueues a message at its destination node. Deliveries after
// shutdown (an interceptor completing late, or any message racing the
// drain) are counted as dropped instead of being parked forever in a dead
// inbox. Inboxes are sized for the plain dataflow's exact message count;
// recovery traffic (acks, duplicates, retransmissions) can exceed that, so
// a full inbox diverts to a tracked background enqueue rather than
// blocking the sending comm goroutine (two mutually full peers would
// deadlock).
func (ex *executor) deliver(m Message) {
	if ex.dist != nil && ex.nodeRank[m.Dst] != int32(ex.dist.Rank) {
		ex.sendRemote(m)
		return
	}
	stopped := ex.done.Load()
	if ex.dist != nil {
		// A distributed run keeps accepting wire traffic (acks, late
		// duplicates) past local completion, until the drain barrier
		// releases the comm goroutines.
		stopped = ex.commClosed.Load()
	}
	if stopped {
		ex.dropped.Add(ex.droppedTransfers(m))
		return
	}
	select {
	case ex.nodes[m.Dst].inbox <- m:
	default:
		ex.bgWg.Add(1)
		go func() {
			defer ex.bgWg.Done()
			select {
			case ex.nodes[m.Dst].inbox <- m:
			case <-ex.commStop:
				ex.dropped.Add(ex.droppedTransfers(m))
			}
		}()
	}
}

// send dispatches one send request — a coalesced bundle or a point-to-point
// payload — and, when comm tracing is on, records the handling as a
// KindComm event on the node's comm pseudo-core (index Workers).
func (ex *executor) send(e ptg.Env, nd *execNode, req sendReq) {
	ex.maybeStall(nd)
	var start time.Duration
	if ex.traceComm {
		start = time.Since(ex.t0)
	}
	var dst int32
	var segs, bytes int
	if req.bundle != 0 {
		dst = ex.bundles[req.bundle-1].dst
		segs, bytes = ex.sendBundle(e, nd, req.bundle-1)
	} else {
		dst = ex.g.Tasks[req.task].Node
		segs, bytes = ex.sendOne(e, nd, req)
	}
	if ex.traceComm {
		ex.opts.Trace.Record(trace.Event{
			ID:   ptg.TaskID{Class: "send", I: int(dst), J: segs, K: int(req.bundle)},
			Kind: ptg.KindComm, Node: nd.id, Core: int32(ex.opts.Workers),
			Start: start, End: time.Since(ex.t0), Msgs: segs, Bytes: bytes,
		})
	}
}

func (ex *executor) sendOne(e ptg.Env, nd *execNode, req sendReq) (segs, bytes int) {
	defer func() {
		if r := recover(); r != nil {
			ex.fail(fmt.Errorf("runtime: pack for %v panicked: %v", ex.g.Tasks[req.task].ID, r))
		}
	}()
	consumer := &ex.g.Tasks[req.task]
	dep := &consumer.Deps[req.dep]
	var data []byte
	if dep.Pack != nil {
		data = dep.Pack(e)
	}
	m := Message{Src: nd.id, Dst: consumer.Node, Task: req.task, Dep: req.dep, Data: data}
	if ex.overlapOn {
		m.SentNanos = int64(time.Since(ex.t0))
	}
	ex.messages.Add(1)
	ex.bytesSent.Add(int64(len(data)))
	ex.dispatch(nd, m)
	return 1, len(data)
}

// receive dispatches one inbound message, with the same optional comm
// tracing as send.
func (ex *executor) receive(nd *execNode, m Message) {
	if m.Ack {
		ex.handleAck(nd, m)
		return
	}
	if ex.reliable && m.Seq != 0 && ex.dedup(nd, m) {
		return
	}
	if ex.overlapOn && m.SentNanos > 0 {
		ex.commIv[nd.id] = append(ex.commIv[nd.id], span{Start: m.SentNanos, End: int64(time.Since(ex.t0))})
	}
	var start time.Duration
	if ex.traceComm {
		start = time.Since(ex.t0)
	}
	var segs, bytes int
	if m.Bundle != 0 {
		segs, bytes = ex.receiveBundle(nd, m)
	} else {
		segs, bytes = ex.receiveOne(nd, m)
	}
	if ex.traceComm {
		ex.opts.Trace.Record(trace.Event{
			ID:   ptg.TaskID{Class: "recv", I: int(m.Src), J: segs, K: int(m.Bundle)},
			Kind: ptg.KindComm, Node: nd.id, Core: int32(ex.opts.Workers),
			Start: start, End: time.Since(ex.t0), Msgs: segs, Bytes: bytes,
		})
	}
}

func (ex *executor) receiveOne(nd *execNode, m Message) (segs, bytes int) {
	defer func() {
		if r := recover(); r != nil {
			ex.fail(fmt.Errorf("runtime: unpack for %v panicked: %v", ex.g.Tasks[m.Task].ID, r))
		}
	}()
	dep := &ex.g.Tasks[m.Task].Deps[m.Dep]
	if dep.Unpack != nil {
		dep.Unpack(nd.env, m.Data)
	}
	ex.satisfy(m.Task)
	return 1, len(m.Data)
}
