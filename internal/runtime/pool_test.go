package runtime

import "testing"

func TestSizeClasses(t *testing.T) {
	cases := []struct{ n, class int }{
		{1, 0}, {63, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << poolMinBits << poolMaxClass, poolMaxClass},
		{(1 << poolMinBits << poolMaxClass) + 1, -1},
	}
	for _, c := range cases {
		if got := sizeClass(c.n); got != c.class {
			t.Errorf("sizeClass(%d) = %d, want %d", c.n, got, c.class)
		}
	}
	if got := homeClass(63); got != -1 {
		t.Errorf("homeClass(63) = %d, want -1 (below smallest class)", got)
	}
	if got := homeClass(64); got != 0 {
		t.Errorf("homeClass(64) = %d, want 0", got)
	}
	if got := homeClass(127); got != 0 {
		t.Errorf("homeClass(127) = %d, want 0 (round down)", got)
	}
	if got := homeClass(1 << 40); got != -1 {
		t.Errorf("homeClass(1<<40) = %d, want -1 (beyond largest class)", got)
	}
}

func TestPoolReuse(t *testing.T) {
	var p BytePool
	a := p.Get(100)
	if len(a) != 100 {
		t.Fatalf("Get(100) returned len %d", len(a))
	}
	p.Put(a)
	b := p.Get(80) // same class (65..128): must reuse a's backing array
	if &a[0] != &b[0] {
		t.Error("pool did not reuse the recycled buffer for a same-class Get")
	}
	if len(b) != 80 {
		t.Errorf("reused Get(80) has len %d", len(b))
	}
}

func TestPoolOversizedBypass(t *testing.T) {
	var p BytePool
	huge := 1 << poolMinBits << poolMaxClass << 1
	a := p.Get(huge)
	if len(a) != huge {
		t.Fatalf("oversized Get returned len %d", len(a))
	}
	p.Put(a) // must be dropped, not retained
	for c := range p.p.classes {
		if n := len(p.p.classes[c].free); n != 0 {
			t.Errorf("class %d retained %d oversized buffers", c, n)
		}
	}
}

func TestPoolSteadyStateZeroAlloc(t *testing.T) {
	var p BytePool
	p.Put(p.Get(3000)) // warm up the class
	if n := testing.AllocsPerRun(50, func() { p.Put(p.Get(3000)) }); n != 0 {
		t.Errorf("steady-state Get/Put: %v allocs per run, want 0", n)
	}
	var fp FloatPool
	fp.Put(fp.Get(500))
	if n := testing.AllocsPerRun(50, func() { fp.Put(fp.Get(500)) }); n != 0 {
		t.Errorf("steady-state float Get/Put: %v allocs per run, want 0", n)
	}
}

func TestStoreSlots(t *testing.T) {
	s := NewStoreWithSlots(2, 3)
	if got := s.GetSlot(0); got != nil {
		t.Errorf("empty slot = %v", got)
	}
	s.PutSlot(0, "x")
	if got := s.GetSlot(0).(string); got != "x" {
		t.Errorf("GetSlot = %q", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double PutSlot did not panic")
			}
		}()
		s.PutSlot(0, "y")
	}()

	buf := []byte{1, 2, 3}
	s.PutBufSlot(1, buf)
	if s.LiveBufSlots() != 1 {
		t.Errorf("LiveBufSlots = %d, want 1", s.LiveBufSlots())
	}
	if got := s.TakeBufSlot(1); &got[0] != &buf[0] {
		t.Error("TakeBufSlot returned a different buffer")
	}
	if s.LiveBufSlots() != 0 {
		t.Errorf("LiveBufSlots after take = %d, want 0", s.LiveBufSlots())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("TakeBufSlot of empty slot did not panic")
			}
		}()
		s.TakeBufSlot(1)
	}()
	s.PutBufSlot(2, buf)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double PutBufSlot did not panic")
			}
		}()
		s.PutBufSlot(2, buf)
	}()
}

// TestSlotRoundTripZeroAlloc pins the full slot-based message hop — pooled
// buffer in, slot deposit, slot take, pool return — at zero allocations.
func TestSlotRoundTripZeroAlloc(t *testing.T) {
	s := NewStoreWithSlots(0, 1)
	PutBuf(GetBuf(1024)) // warm the shared arena
	f := func() {
		b := GetBuf(1024)
		s.PutBufSlot(0, b)
		PutBuf(s.TakeBufSlot(0))
	}
	if n := testing.AllocsPerRun(50, f); n != 0 {
		t.Errorf("slot round trip: %v allocs per run, want 0", n)
	}
}

// TestPoolBundleClasses pins the arena extension that backs coalesced halo
// bundles: wire buffers aggregating a whole epoch's payloads toward one
// neighbor land well above the old 128 MiB ceiling, and must be pooled —
// not silently bypassed — or every bundle send would reallocate. The
// regression is steady-state Get/Put of a bundle-sized buffer at zero
// allocations.
func TestPoolBundleClasses(t *testing.T) {
	bundleSized := 200 << 20 // 200 MiB: above the pre-coalescing top class
	if c := sizeClass(bundleSized); c < 0 {
		t.Fatalf("sizeClass(%d) = %d: bundle-sized buffers bypass the pool", bundleSized, c)
	}
	var p BytePool
	p.Put(p.Get(bundleSized)) // warm the class
	if n := testing.AllocsPerRun(10, func() { p.Put(p.Get(bundleSized)) }); n != 0 {
		t.Errorf("bundle-sized Get/Put: %v allocs per run, want 0", n)
	}
}
