package runtime

import "testing"

// TestFifoQueueCompactsUnderStreaming pins the fix for unbounded growth: a
// queue that never fully drains used to retain every task ever pushed
// (head only reset on empty). Steady-state push/pop must keep the backing
// slice near the live size.
func TestFifoQueueCompactsUnderStreaming(t *testing.T) {
	q := &fifoQueue{}
	for i := int32(0); i < 4; i++ {
		q.push(i, 0)
	}
	next := int32(4)
	expect := int32(0)
	for i := 0; i < 100000; i++ {
		q.push(next, 0)
		next++
		v, ok := q.pop()
		if !ok {
			t.Fatal("pop failed with non-empty queue")
		}
		if v != expect {
			t.Fatalf("FIFO order broken: got %d, want %d", v, expect)
		}
		expect++
	}
	if q.size() != 4 {
		t.Fatalf("size = %d, want 4", q.size())
	}
	if len(q.items) > 16 {
		t.Fatalf("backing slice holds %d items for a live size of 4", len(q.items))
	}
}

func TestFifoQueueDrainResets(t *testing.T) {
	q := &fifoQueue{}
	for i := int32(0); i < 10; i++ {
		q.push(i, 0)
	}
	for i := int32(0); i < 10; i++ {
		if v, ok := q.pop(); !ok || v != i {
			t.Fatalf("pop = %d,%v, want %d", v, ok, i)
		}
	}
	if q.head != 0 || len(q.items) != 0 {
		t.Fatalf("drained queue not reset: head=%d len=%d", q.head, len(q.items))
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

// TestPrioQueueShrinksAfterBurst pins the heap-capacity fix: after a large
// burst drains, the backing array must shrink instead of pinning the peak
// footprint forever.
func TestPrioQueueShrinksAfterBurst(t *testing.T) {
	q := &prioQueue{}
	const burst = 16384
	for i := int32(0); i < burst; i++ {
		q.push(i, i%7)
	}
	peak := cap(q.h)
	for q.size() > 100 {
		if _, ok := q.pop(); !ok {
			t.Fatal("pop failed with non-empty heap")
		}
	}
	if c := cap(q.h); c > peak/8 {
		t.Fatalf("heap capacity %d after draining to 100 items (peak %d): backing array never shrank", c, peak)
	}
	// The survivors must still come out in priority order.
	last := int32(6)
	for q.size() > 0 {
		v, ok := q.pop()
		if !ok {
			t.Fatal("pop failed")
		}
		if p := v % 7; p > last {
			t.Fatalf("priority order broken after shrink: %d after %d", p, last)
		} else {
			last = p
		}
	}
}
