package runtime

import (
	"time"

	"castencil/internal/fault"
	"castencil/internal/ptg"
	"castencil/internal/trace"
)

// This file is the real engine's fault-injection and recovery layer.
//
// Injection sits between send accounting and delivery: every outgoing wire
// message consults the fault.Plan — keyed purely by the message's graph
// identity and delivery attempt, so real and simulated runs inject
// byte-identical schedules — and is then dropped, duplicated, delayed or
// passed through. The time-domain faults (slow cores, comm stall, node
// pause) hook the worker loop, the send path and the completion path.
//
// Recovery is a reliable transport layered over the same send/receive
// paths: every data message carries a per-(src,dst)-lane sequence number;
// the sender retains the payload until the receiver acknowledges it,
// retransmitting on an exponentially backed-off ack timeout; the receiver
// deduplicates by (src, seq) so task-level delivery stays exactly-once
// whatever the wire does. A message unacknowledged past the policy
// deadline fails the run fast with a structured *fault.Report instead of
// hanging on a dead node.
//
// Ownership: under recovery the sender retains the original payload buffer
// in its pending table and every delivered copy (original transmission,
// duplicate, retransmit) is an independent pooled buffer, because
// receivers consume and recycle their payloads. The retained original is
// recycled when the ack arrives. Without recovery the zero-copy paths of
// executor.go/coalesce.go are byte-for-byte unchanged.
//
// Acks are control traffic: they bypass fault injection and the
// Options.Intercept hook, and are not counted in Result.Messages/BytesSent
// (the virtual-time engine models them as free, so the counters stay
// engine-identical).

// laneSeq identifies one sequenced message on one ordered node pair: the
// peer node (destination for the sender's pending table, source for the
// receiver's dedup table) and the lane sequence number.
type laneSeq struct {
	peer int32
	seq  uint64
}

// pendingMsg is one unacknowledged sequenced message retained by its
// sender.
type pendingMsg struct {
	m         Message // Data is the retained original payload
	attempt   int32   // delivery attempts made so far, minus one
	firstSent time.Time
	nextRetry time.Time
}

// relState is a node's recovery state. Only the node's communication
// goroutine touches it (sends, acks, retransmit ticks and inbound dedup
// all run there), so no locking is needed.
type relState struct {
	nextSeq     []uint64 // per-destination next sequence number (0 = unused; first seq is 1)
	outstanding map[laneSeq]*pendingMsg
	seen        map[laneSeq]struct{}
}

func newRelState(nodes int) *relState {
	return &relState{
		nextSeq:     make([]uint64, nodes),
		outstanding: make(map[laneSeq]*pendingMsg),
		seen:        make(map[laneSeq]struct{}),
	}
}

// msgIDOf maps a wire message to its engine-independent fault identity.
func msgIDOf(m Message) fault.MsgID {
	return fault.MsgID{Src: m.Src, Dst: m.Dst, Task: m.Task, Dep: m.Dep, Bundle: m.Bundle}
}

// traceFault records one fault/recovery event when tracing is on: Class
// "fault:<what>", I/J the node pair, K the lane sequence number, on the
// comm pseudo-core of the node where the event happened.
func (ex *executor) traceFault(what string, node int32, m Message, span time.Duration) {
	if ex.opts.Trace == nil {
		return
	}
	start := time.Since(ex.t0)
	ex.opts.Trace.Record(trace.Event{
		ID:   ptg.TaskID{Class: "fault:" + what, I: int(m.Src), J: int(m.Dst), K: int(m.Seq)},
		Kind: ptg.KindFault, Node: node, Core: int32(ex.opts.Workers),
		Start: start, End: start + span, Msgs: 1, Bytes: len(m.Data),
	})
}

// track sequences a freshly packed message and retains its payload for
// retransmission. Returns the message stamped with its lane sequence
// number. Comm-goroutine only.
func (ex *executor) track(nd *execNode, m Message) Message {
	rel := nd.rel
	rel.nextSeq[m.Dst]++
	m.Seq = rel.nextSeq[m.Dst]
	now := time.Now()
	rel.outstanding[laneSeq{peer: m.Dst, seq: m.Seq}] = &pendingMsg{
		m:         m,
		firstSent: now,
		nextRetry: now.Add(ex.rec.TimeoutAt(0)),
	}
	nd.relPending.Add(1)
	return m
}

// release recycles the retained payload of an acknowledged (or abandoned)
// pending message: bundle wire buffers rejoin their lane, point-to-point
// payloads rejoin the arena.
func (ex *executor) releasePending(p *pendingMsg) {
	if p.m.Bundle != 0 {
		ex.bundles[p.m.Bundle-1].lane.put(p.m.Data)
	} else if p.m.Data != nil {
		PutBuf(p.m.Data)
	}
}

// copyPayload returns m with an independent pooled copy of its payload, so
// the retained original survives delivery (receivers consume and recycle
// what they are handed).
func copyPayload(m Message) Message {
	if m.Data != nil {
		cp := GetBuf(len(m.Data))
		copy(cp, m.Data)
		m.Data = cp
	}
	return m
}

// transmit hands a message to the interceptor (if any) or delivers it
// directly — the pre-fault-layer wire.
func (ex *executor) transmit(m Message) {
	if ex.opts.Intercept != nil {
		ex.opts.Intercept(m, ex.deliver)
	} else {
		ex.deliver(m)
	}
}

// transmitAfter delivers a message after an injected delay. The background
// goroutine is tracked so Run's final accounting sweep sees every copy.
func (ex *executor) transmitAfter(m Message, d time.Duration) {
	ex.bgWg.Add(1)
	go func() {
		defer ex.bgWg.Done()
		select {
		case <-time.After(d):
		case <-ex.finished:
		}
		ex.transmit(m)
	}()
}

// inject passes one sequenced-or-not outgoing message through the fault
// plan's wire. For reliable transport m.Data is the sender-retained
// original and every delivered copy is independent; without recovery the
// plan can only delay (drop/dup force recovery on), so the single payload
// passes through untouched.
func (ex *executor) inject(nd *execNode, m Message) {
	p := ex.fplan
	if ex.reliable {
		// Every reliable delivery must be an independent copy even with no
		// plan active: the original stays in the pending table until acked,
		// and the receiver consumes and recycles what it is handed.
		if p == nil {
			ex.transmit(copyPayload(m))
			return
		}
		id := msgIDOf(m)
		if p.ShouldDrop(id, m.Attempt) {
			ex.fStats.dropped.Add(1)
			ex.traceFault("drop", nd.id, m, 0)
			return // the pending-table retransmit will retry
		}
		delay := p.DelayOf(id, m.Attempt)
		if delay > 0 {
			ex.fStats.delayed.Add(1)
			ex.traceFault("delay", nd.id, m, delay)
		}
		dup := p.ShouldDup(id, m.Attempt)
		if dup {
			ex.fStats.duplicated.Add(1)
			ex.traceFault("dup", nd.id, m, 0)
			// The duplicate is extra physical wire traffic.
			ex.messages.Add(1)
			ex.bytesSent.Add(int64(len(m.Data)))
		}
		if delay > 0 {
			ex.transmitAfter(copyPayload(m), delay)
			if dup {
				ex.transmitAfter(copyPayload(m), delay)
			}
			return
		}
		ex.transmit(copyPayload(m))
		if dup {
			ex.transmit(copyPayload(m))
		}
		return
	}
	// Unreliable wire: only delay/reorder faults are possible here
	// (NeedsRecovery plans auto-enable the reliable transport).
	if p == nil {
		ex.transmit(m)
		return
	}
	id := msgIDOf(m)
	if delay := p.DelayOf(id, m.Attempt); delay > 0 {
		ex.fStats.delayed.Add(1)
		ex.traceFault("delay", nd.id, m, delay)
		ex.transmitAfter(m, delay)
		return
	}
	ex.transmit(m)
}

// dispatch is the send-side tail shared by sendOne and sendBundle: with
// recovery on, sequence and retain the message, then run the wire.
func (ex *executor) dispatch(nd *execNode, m Message) {
	if ex.reliable {
		m = ex.track(nd, m)
	}
	ex.inject(nd, m)
}

// ack sends the acknowledgement for a received sequenced message. Acks
// bypass fault injection and interception, and are not counted as wire
// messages (see the file comment).
func (ex *executor) ack(nd *execNode, m Message) {
	ex.deliver(Message{Src: nd.id, Dst: m.Src, Seq: m.Seq, Ack: true})
}

// handleAck retires the pending entry an ack settles. Comm-goroutine only.
func (ex *executor) handleAck(nd *execNode, m Message) {
	k := laneSeq{peer: m.Src, seq: m.Seq}
	if p, ok := nd.rel.outstanding[k]; ok {
		delete(nd.rel.outstanding, k)
		nd.relPending.Add(-1)
		ex.releasePending(p)
	}
}

// dedup returns true when a sequenced data message was already delivered
// once. Either way the receiver (re-)acks, so a sender whose ack was lost
// to timing still stops retransmitting. Comm-goroutine only.
func (ex *executor) dedup(nd *execNode, m Message) bool {
	k := laneSeq{peer: m.Src, seq: m.Seq}
	if _, dup := nd.rel.seen[k]; dup {
		ex.fStats.dupDrops.Add(1)
		ex.traceFault("dupdrop", nd.id, m, 0)
		ex.ack(nd, m)
		PutBuf(m.Data) // every reliable delivery is an independent pooled copy
		return true
	}
	nd.rel.seen[k] = struct{}{}
	ex.ack(nd, m)
	return false
}

// retransmitDue scans the node's pending table for expired ack timeouts:
// each one either retransmits with the next backed-off timeout or — past
// the recovery deadline — degrades gracefully by failing the run with a
// structured report. Comm-goroutine only (fires on the retransmit ticker).
func (ex *executor) retransmitDue(nd *execNode) {
	now := time.Now()
	for _, p := range nd.rel.outstanding {
		if now.Before(p.nextRetry) {
			continue
		}
		ex.fStats.timeouts.Add(1)
		if waited := now.Sub(p.firstSent); waited >= ex.rec.Deadline {
			ex.traceFault("deadline", nd.id, p.m, waited)
			ex.fail(&fault.Report{
				ID:       msgIDOf(p.m),
				Seq:      p.m.Seq,
				Attempts: p.attempt + 1,
				Waited:   waited,
				Deadline: ex.rec.Deadline,
				Stats:    ex.faultStats(),
			})
			return
		}
		p.attempt++
		p.nextRetry = now.Add(ex.rec.TimeoutAt(p.attempt))
		ex.fStats.retransmits.Add(1)
		m := p.m
		m.Attempt = p.attempt
		ex.traceFault("retransmit", nd.id, m, 0)
		// A retransmission is real wire traffic, like in the simulator.
		ex.messages.Add(1)
		ex.bytesSent.Add(int64(len(m.Data)))
		ex.inject(nd, m)
	}
}

// maybeStall injects the plan's comm-goroutine stall before the node's
// nth outgoing wire message (retransmissions do not advance the count).
func (ex *executor) maybeStall(nd *execNode) {
	if ex.fplan == nil {
		return
	}
	n := nd.outSeq
	nd.outSeq++
	if st := ex.fplan.StallAt(nd.id, n); st > 0 {
		ex.traceFault("stall", nd.id, Message{Src: nd.id, Dst: nd.id}, st)
		ex.sleepInterruptible(st)
	}
}

// notePauses arms a whole-node pause when the node's completed-task count
// crosses a plan threshold. Called from the completing worker.
func (ex *executor) notePause(nd *execNode, completed int) {
	if d := ex.fplan.PauseAt(nd.id, completed); d > 0 {
		nd.pauseUntil.Store(time.Now().Add(d).UnixNano())
		ex.traceFault("pause", nd.id, Message{Src: nd.id, Dst: nd.id}, d)
	}
}

// maybePause blocks the calling goroutine (worker or comm) while its node
// is inside a pause window. The wait is interruptible by run completion so
// a failed run never hangs on a long pause.
func (ex *executor) maybePause(nd *execNode) {
	if ex.fplan == nil {
		return
	}
	u := nd.pauseUntil.Load()
	if u == 0 {
		return
	}
	for {
		d := time.Until(time.Unix(0, u))
		if d <= 0 || ex.done.Load() {
			return
		}
		ex.sleepInterruptible(d)
		if ex.done.Load() {
			return
		}
	}
}

// sleepInterruptible sleeps d or until the run finishes, whichever is
// sooner.
func (ex *executor) sleepInterruptible(d time.Duration) {
	select {
	case <-time.After(d):
	case <-ex.finished:
	}
}

// slowCoreExtra returns (and advances) the slow-core penalty for the next
// task the given core of the node executes. Each (node, core) counter is
// only touched by the worker goroutine that owns the core.
func (ex *executor) slowCoreExtra(nd *execNode, core int32) time.Duration {
	if ex.fplan == nil || len(ex.fplan.SlowCores) == 0 {
		return 0
	}
	seq := nd.coreSeq[core]
	nd.coreSeq[core]++
	return ex.fplan.CoreExtra(nd.id, core, seq)
}

// faultStats snapshots the run's fault counters.
func (ex *executor) faultStats() fault.Stats {
	return fault.Stats{
		Dropped:     int(ex.fStats.dropped.Load()),
		Duplicated:  int(ex.fStats.duplicated.Load()),
		Delayed:     int(ex.fStats.delayed.Load()),
		Retransmits: int(ex.fStats.retransmits.Load()),
		DupDrops:    int(ex.fStats.dupDrops.Load()),
		Timeouts:    int(ex.fStats.timeouts.Load()),
	}
}
