package runtime

import (
	"sync/atomic"
	"testing"

	"castencil/internal/ptg"
)

// TestDroppedCountsDiscardedTransfers covers the shutdown-drain accounting:
// a run that fails while a cross-node transfer is still pending must report
// the transfer in Result.Dropped instead of silently discarding it.
//
// The construction is deterministic with one worker per node: on node 0 the
// root R enqueues A (so A is already queued when the panic hits), then P
// panics — failing the run — and then A still executes (queued work keeps
// draining after failure) and posts its send request strictly after
// shutdown. Whichever way the communication goroutine meets that request —
// draining it unpacked, or packing it and having delivery refused after
// completion (possibly delayed through the interceptor) — exactly one
// transfer is dropped.
func TestDroppedCountsDiscardedTransfers(t *testing.T) {
	b := ptg.NewBuilder(2)
	mustAdd := func(task ptg.Task) {
		t.Helper()
		if _, err := b.AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(ptg.Task{ID: tid("R", 0, 0, 0), Node: 0, Run: func(ptg.Env) {}})
	mustAdd(ptg.Task{ID: tid("P", 0, 0, 0), Node: 0, Run: func(ptg.Env) { panic("boom") }})
	mustAdd(ptg.Task{ID: tid("A", 0, 0, 0), Node: 0, Run: func(e ptg.Env) { e.Put("a", []byte{1}) }})
	mustAdd(ptg.Task{ID: tid("B", 0, 0, 0), Node: 1, Run: func(ptg.Env) {}})
	if err := b.AddDep(tid("A", 0, 0, 0), tid("R", 0, 0, 0), ptg.Dep{}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddDep(tid("B", 0, 0, 0), tid("A", 0, 0, 0), ptg.Dep{
		Bytes: 1,
		Pack:  func(e ptg.Env) []byte { return e.Take("a").([]byte) },
		Unpack: func(e ptg.Env, data []byte) {
			t.Error("payload of the failed run was delivered to its consumer")
		},
	}); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	var intercepted atomic.Int64
	res, err := Run(g, Options{Workers: 1, Intercept: func(m Message, deliver func(Message)) {
		// Forward immediately: by construction the run is already complete,
		// so deliver refuses the message and counts it as dropped — the
		// "interceptor finishing after completion" path.
		intercepted.Add(1)
		deliver(m)
	}})
	if err == nil {
		t.Fatal("run with a panicking task reported no error")
	}
	if res == nil {
		t.Fatal("failed run returned no partial result")
	}
	if res.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1 (intercepted=%d, messages=%d)",
			res.Dropped, intercepted.Load(), res.Messages)
	}
	// The transfer is dropped either before packing (drained from the send
	// queue, never counted as a message) or after (packed, counted, then
	// refused delivery); Messages must agree with which happened.
	if res.Messages != int(intercepted.Load()) {
		t.Errorf("Messages = %d but interceptor saw %d", res.Messages, intercepted.Load())
	}
}

// TestSuccessfulRunDropsNothing pins the invariant that completion implies
// every transfer was consumed.
func TestSuccessfulRunDropsNothing(t *testing.T) {
	g := buildChain(t, 12, 3)
	res, err := Run(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Errorf("successful run dropped %d transfers", res.Dropped)
	}
}
