package runtime

import "container/heap"

// Policy selects the per-node ready-queue discipline, the analog of
// PaRSEC's pluggable schedulers.
type Policy int

const (
	// FIFO runs tasks in the order they became ready.
	FIFO Policy = iota
	// LIFO runs the most recently readied task first (depth-first-ish,
	// better cache locality on tile chains).
	LIFO
	// PriorityOrder runs the highest ptg.Task.Priority first; ties go to
	// the earliest-readied task.
	PriorityOrder
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case LIFO:
		return "lifo"
	case PriorityOrder:
		return "priority"
	}
	return "unknown"
}

// readyQueue is a non-thread-safe queue of ready task indices; callers hold
// the node lock.
type readyQueue interface {
	push(task int32, prio int32)
	pop() (int32, bool)
	size() int
}

func newReadyQueue(p Policy) readyQueue {
	switch p {
	case LIFO:
		return &lifoQueue{}
	case PriorityOrder:
		return &prioQueue{}
	default:
		return &fifoQueue{}
	}
}

type fifoQueue struct {
	items []int32
	head  int
}

func (q *fifoQueue) push(t int32, _ int32) { q.items = append(q.items, t) }
func (q *fifoQueue) size() int             { return len(q.items) - q.head }
func (q *fifoQueue) pop() (int32, bool) {
	if q.head >= len(q.items) {
		return 0, false
	}
	t := q.items[q.head]
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return t, true
}

type lifoQueue struct{ items []int32 }

func (q *lifoQueue) push(t int32, _ int32) { q.items = append(q.items, t) }
func (q *lifoQueue) size() int             { return len(q.items) }
func (q *lifoQueue) pop() (int32, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	t := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	return t, true
}

type prioItem struct {
	task int32
	prio int32
	seq  int64
}

type prioQueue struct {
	h   prioHeap
	seq int64
}

func (q *prioQueue) push(t int32, prio int32) {
	q.seq++
	heap.Push(&q.h, prioItem{task: t, prio: prio, seq: q.seq})
}

func (q *prioQueue) size() int { return len(q.h) }

func (q *prioQueue) pop() (int32, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	it := heap.Pop(&q.h).(prioItem)
	return it.task, true
}

type prioHeap []prioItem

func (h prioHeap) Len() int { return len(h) }
func (h prioHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h prioHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *prioHeap) Push(x any)   { *h = append(*h, x.(prioItem)) }
func (h *prioHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
