package runtime

import (
	"container/heap"
	"fmt"
	"strings"
)

// Sched selects the scheduler architecture, the analog of swapping
// PaRSEC's scheduler module.
type Sched int

const (
	// SharedQueue is one Policy-ordered ready queue per node, shared by
	// all of the node's workers under a mutex (the pre-work-stealing
	// design, kept as the compatibility scheduler).
	SharedQueue Sched = iota
	// WorkStealing gives each worker a Chase-Lev deque: newly-ready
	// local successors go straight onto the completing worker's own
	// deque (lock-free LIFO, cache locality on tile chains); idle
	// workers steal from siblings (FIFO), then fall back to a node-level
	// Policy-ordered injection queue fed by the communication goroutine
	// and root seeding, then park. This mirrors the paper's PaRSEC
	// configuration: per-core task queues with job stealing.
	WorkStealing
)

func (s Sched) String() string {
	switch s {
	case SharedQueue:
		return "shared"
	case WorkStealing:
		return "steal"
	}
	return "unknown"
}

// SchedNames lists the values ParseSched accepts, for flag usage strings.
const SchedNames = "steal, fifo, lifo, priority"

// ParseSched maps a -sched flag value to a scheduler configuration:
// "steal" selects the work-stealing scheduler (Policy orders its injection
// queue); "fifo", "lifo" and "priority" select the shared-queue scheduler
// with that discipline.
func ParseSched(name string) (Sched, Policy, error) {
	switch strings.ToLower(name) {
	case "steal", "ws", "work-stealing":
		return WorkStealing, FIFO, nil
	case "shared", "fifo":
		return SharedQueue, FIFO, nil
	case "lifo":
		return SharedQueue, LIFO, nil
	case "priority", "prio":
		return SharedQueue, PriorityOrder, nil
	}
	return 0, 0, fmt.Errorf("runtime: unknown scheduler %q (valid: %s)", name, SchedNames)
}

// Policy selects the per-node ready-queue discipline, the analog of
// PaRSEC's pluggable schedulers. Under SharedQueue it orders the node's
// one shared queue; under WorkStealing it orders the injection queue.
type Policy int

const (
	// FIFO runs tasks in the order they became ready.
	FIFO Policy = iota
	// LIFO runs the most recently readied task first (depth-first-ish,
	// better cache locality on tile chains).
	LIFO
	// PriorityOrder runs the highest ptg.Task.Priority first; ties go to
	// the earliest-readied task.
	PriorityOrder
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case LIFO:
		return "lifo"
	case PriorityOrder:
		return "priority"
	}
	return "unknown"
}

// readyQueue is a non-thread-safe queue of ready task indices; callers hold
// the node lock.
type readyQueue interface {
	push(task int32, prio int32)
	pop() (int32, bool)
	size() int
}

func newReadyQueue(p Policy) readyQueue {
	switch p {
	case LIFO:
		return &lifoQueue{}
	case PriorityOrder:
		return &prioQueue{}
	default:
		return &fifoQueue{}
	}
}

type fifoQueue struct {
	items []int32
	head  int
}

func (q *fifoQueue) push(t int32, _ int32) { q.items = append(q.items, t) }
func (q *fifoQueue) size() int             { return len(q.items) - q.head }
func (q *fifoQueue) pop() (int32, bool) {
	if q.head >= len(q.items) {
		return 0, false
	}
	t := q.items[q.head]
	q.head++
	switch {
	case q.head == len(q.items):
		q.items = q.items[:0]
		q.head = 0
	case q.head > len(q.items)/2:
		// Compact once the dead prefix dominates: a queue that never
		// fully drains (steady streaming) would otherwise retain every
		// task ever pushed. Moving < len/2 live items after >= len/2
		// pops keeps this amortized O(1).
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return t, true
}

type lifoQueue struct{ items []int32 }

func (q *lifoQueue) push(t int32, _ int32) { q.items = append(q.items, t) }
func (q *lifoQueue) size() int             { return len(q.items) }
func (q *lifoQueue) pop() (int32, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	t := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	return t, true
}

type prioItem struct {
	task int32
	prio int32
	seq  int64
}

type prioQueue struct {
	h   prioHeap
	seq int64
}

func (q *prioQueue) push(t int32, prio int32) {
	q.seq++
	heap.Push(&q.h, prioItem{task: t, prio: prio, seq: q.seq})
}

func (q *prioQueue) size() int { return len(q.h) }

func (q *prioQueue) pop() (int32, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	it := heap.Pop(&q.h).(prioItem)
	// Shrink the backing array after large bursts: heap.Pop re-slices but
	// never releases capacity, so a one-time spike would pin its peak
	// footprint for the rest of the run.
	if c := cap(q.h); c >= 64 && len(q.h) <= c/4 {
		nh := make(prioHeap, len(q.h), c/2)
		copy(nh, q.h)
		q.h = nh
	}
	return it.task, true
}

type prioHeap []prioItem

func (h prioHeap) Len() int { return len(h) }
func (h prioHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h prioHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *prioHeap) Push(x any)   { *h = append(*h, x.(prioItem)) }
func (h *prioHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
