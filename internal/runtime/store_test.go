package runtime

import (
	"sync"
	"testing"
)

func TestStorePutTakeGet(t *testing.T) {
	s := NewStore()
	s.Put("k", 7)
	if got := s.Get("k"); got != 7 {
		t.Errorf("Get = %v", got)
	}
	if got := s.Take("k"); got != 7 {
		t.Errorf("Take = %v", got)
	}
	if got := s.Get("k"); got != nil {
		t.Errorf("Get after Take = %v, want nil", got)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestStorePutDuplicatePanics(t *testing.T) {
	s := NewStore()
	s.Put("k", 1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Put must panic")
		}
	}()
	s.Put("k", 2)
}

func TestStoreTakeMissingPanics(t *testing.T) {
	s := NewStore()
	defer func() {
		if recover() == nil {
			t.Error("Take of missing key must panic")
		}
	}()
	s.Take("nope")
}

func TestStoreConcurrentDisjointKeys(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := [2]int{w, i}
				s.Put(k, i)
				if s.Take(k) != i {
					t.Error("value mismatch")
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 0 {
		t.Errorf("leftover keys: %v", s.Keys())
	}
}

func TestStoreKeys(t *testing.T) {
	s := NewStore()
	s.Put("a", 1)
	s.Put("b", 2)
	if got := len(s.Keys()); got != 2 {
		t.Errorf("Keys len = %d", got)
	}
}

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || LIFO.String() != "lifo" || PriorityOrder.String() != "priority" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() != "unknown" {
		t.Error("unknown policy name")
	}
}

func TestQueues(t *testing.T) {
	f := newReadyQueue(FIFO)
	f.push(1, 0)
	f.push(2, 0)
	if v, _ := f.pop(); v != 1 {
		t.Error("fifo must pop oldest")
	}
	l := newReadyQueue(LIFO)
	l.push(1, 0)
	l.push(2, 0)
	if v, _ := l.pop(); v != 2 {
		t.Error("lifo must pop newest")
	}
	p := newReadyQueue(PriorityOrder)
	p.push(1, 5)
	p.push(2, 9)
	p.push(3, 9)
	if v, _ := p.pop(); v != 2 {
		t.Error("priority must pop highest, FIFO among ties")
	}
	if v, _ := p.pop(); v != 3 {
		t.Error("tie must go to earlier push")
	}
	if v, _ := p.pop(); v != 1 {
		t.Error("lowest priority last")
	}
	if _, ok := p.pop(); ok {
		t.Error("empty pop must report false")
	}
	if f.size() != 1 { // 2 still queued
		t.Errorf("fifo size = %d", f.size())
	}
}
