package runtime

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"castencil/internal/ptg"
	"castencil/internal/trace"
)

func tid(class string, i, j, k int) ptg.TaskID { return ptg.TaskID{Class: class, I: i, J: j, K: k} }

// buildChain makes a cross-node pipeline: t0 on node 0 produces a counter,
// each subsequent task (alternating nodes) increments it.
func buildChain(t *testing.T, length, nodes int) *ptg.Graph {
	t.Helper()
	b := ptg.NewBuilder(nodes)
	for i := 0; i < length; i++ {
		i := i
		node := int32(i % nodes)
		_, err := b.AddTask(ptg.Task{
			ID:   tid("step", i, 0, 0),
			Node: node,
			Run: func(e ptg.Env) {
				v := 0
				if i > 0 {
					v = e.Take(fmt.Sprintf("v%d", i-1)).(int)
				}
				e.Put(fmt.Sprintf("v%d", i), v+1)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			prev := i - 1
			dep := ptg.Dep{}
			if prev%nodes != i%nodes {
				dep.Bytes = 8
				dep.Pack = func(e ptg.Env) []byte {
					v := e.Take(fmt.Sprintf("v%d", prev)).(int)
					var buf [8]byte
					binary.LittleEndian.PutUint64(buf[:], uint64(v))
					return buf[:]
				}
				dep.Unpack = func(e ptg.Env, data []byte) {
					e.Put(fmt.Sprintf("v%d", prev), int(binary.LittleEndian.Uint64(data)))
				}
			}
			if err := b.AddDep(tid("step", i, 0, 0), tid("step", prev, 0, 0), dep); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunSingleNodeChain(t *testing.T) {
	g := buildChain(t, 10, 1)
	res, err := Run(g, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 10 {
		t.Errorf("completed = %d", res.Completed)
	}
	if res.Messages != 0 {
		t.Errorf("single node sent %d messages", res.Messages)
	}
	if got := res.Stores[0].Take("v9").(int); got != 10 {
		t.Errorf("final value = %d, want 10", got)
	}
}

func TestRunCrossNodeChain(t *testing.T) {
	g := buildChain(t, 20, 3)
	res, err := Run(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Every hop crosses nodes (i%3 != (i+1)%3 always), so 19 messages.
	if res.Messages != 19 {
		t.Errorf("messages = %d, want 19", res.Messages)
	}
	if res.BytesSent != 19*8 {
		t.Errorf("bytes = %d, want %d", res.BytesSent, 19*8)
	}
	final := res.Stores[(20-1)%3].Take("v19").(int)
	if final != 20 {
		t.Errorf("final value = %d, want 20", final)
	}
}

func TestRunFanOutFanIn(t *testing.T) {
	// One producer, N parallel consumers on other nodes, one reducer.
	const fan = 16
	b := ptg.NewBuilder(4)
	b.AddTask(ptg.Task{
		ID: tid("src", 0, 0, 0), Node: 0,
		Run: func(e ptg.Env) {
			for i := 0; i < fan; i++ {
				e.Put(fmt.Sprintf("in%d", i), i)
			}
		},
	})
	var sum atomic.Int64
	for i := 0; i < fan; i++ {
		i := i
		node := int32(i % 4)
		b.AddTask(ptg.Task{
			ID: tid("mid", i, 0, 0), Node: node,
			Run: func(e ptg.Env) {
				v := e.Take(fmt.Sprintf("in%d", i)).(int)
				sum.Add(int64(v))
				e.Put(fmt.Sprintf("out%d", i), v*2)
			},
		})
		dep := ptg.Dep{}
		if node != 0 {
			dep.Bytes = 8
			dep.Pack = func(e ptg.Env) []byte {
				v := e.Take(fmt.Sprintf("in%d", i)).(int)
				var buf [8]byte
				binary.LittleEndian.PutUint64(buf[:], uint64(v))
				return buf[:]
			}
			dep.Unpack = func(e ptg.Env, data []byte) {
				e.Put(fmt.Sprintf("in%d", i), int(binary.LittleEndian.Uint64(data)))
			}
		}
		b.AddDep(tid("mid", i, 0, 0), tid("src", 0, 0, 0), dep)
	}
	b.AddTask(ptg.Task{ID: tid("sink", 0, 0, 0), Node: 1, Run: func(e ptg.Env) {}})
	for i := 0; i < fan; i++ {
		dep := ptg.Dep{Bytes: 1}
		dep.Pack = func(e ptg.Env) []byte { return []byte{1} }
		b.AddDep(tid("sink", 0, 0, 0), tid("mid", i, 0, 0), dep)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != fan*(fan-1)/2 {
		t.Errorf("sum = %d, want %d", sum.Load(), fan*(fan-1)/2)
	}
}

func TestRunAllPolicies(t *testing.T) {
	for _, p := range []Policy{FIFO, LIFO, PriorityOrder} {
		g := buildChain(t, 30, 2)
		res, err := Run(g, Options{Workers: 2, Policy: p})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Completed != 30 {
			t.Errorf("%v: completed %d", p, res.Completed)
		}
	}
}

func TestPriorityOrderRespected(t *testing.T) {
	// Single worker, tasks all ready at once: must run in priority order.
	b := ptg.NewBuilder(1)
	var mu sync.Mutex
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		b.AddTask(ptg.Task{
			ID: tid("t", i, 0, 0), Node: 0, Priority: int32(i),
			Run: func(e ptg.Env) {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			},
		})
	}
	g, _ := b.Build()
	if _, err := Run(g, Options{Workers: 1, Policy: PriorityOrder}); err != nil {
		t.Fatal(err)
	}
	// The first task popped may race with seeding order, but after seeding
	// completes the highest priorities must dominate: check the last task
	// run is the lowest priority.
	if order[len(order)-1] != 0 {
		t.Errorf("lowest priority should run last: %v", order)
	}
}

func TestRunTaskPanicPropagates(t *testing.T) {
	b := ptg.NewBuilder(1)
	b.AddTask(ptg.Task{ID: tid("boom", 0, 0, 0), Node: 0, Run: func(e ptg.Env) { panic("kaboom") }})
	g, _ := b.Build()
	_, err := Run(g, Options{})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("panic not propagated: %v", err)
	}
}

func TestRunPanicDoesNotHangDependents(t *testing.T) {
	b := ptg.NewBuilder(2)
	b.AddTask(ptg.Task{ID: tid("boom", 0, 0, 0), Node: 0, Run: func(e ptg.Env) { panic("x") }})
	b.AddTask(ptg.Task{ID: tid("after", 0, 0, 0), Node: 1, Run: func(e ptg.Env) {}})
	b.AddDep(tid("after", 0, 0, 0), tid("boom", 0, 0, 0), ptg.Dep{Bytes: 1, Pack: func(e ptg.Env) []byte { return nil }})
	g, _ := b.Build()
	if _, err := Run(g, Options{Workers: 2}); err == nil {
		t.Error("expected error from panicking task")
	}
}

func TestInterceptorReordering(t *testing.T) {
	// Deliver messages in pairs, swapped: the dataflow must still complete
	// correctly because messages are tag-addressed, not order-dependent.
	var mu sync.Mutex
	var held *Message
	intercept := func(m Message, deliver func(Message)) {
		mu.Lock()
		if held == nil {
			cp := m
			held = &cp
			mu.Unlock()
			return
		}
		prev := *held
		held = nil
		mu.Unlock()
		deliver(m) // swapped order
		deliver(prev)
	}
	// Independent concurrent transfers (an even number, so the held
	// message always gets flushed by its pair): node 0 produces 8 values,
	// node 1 consumes each.
	const pairs = 8
	b := ptg.NewBuilder(2)
	for i := 0; i < pairs; i++ {
		i := i
		b.AddTask(ptg.Task{ID: tid("p", i, 0, 0), Node: 0, Run: func(e ptg.Env) {
			e.Put(fmt.Sprintf("x%d", i), i)
		}})
		b.AddTask(ptg.Task{ID: tid("c", i, 0, 0), Node: 1, Run: func(e ptg.Env) {
			if got := e.Take(fmt.Sprintf("x%d", i)).(int); got != i {
				panic(fmt.Sprintf("pair %d got %d", i, got))
			}
		}})
		b.AddDep(tid("c", i, 0, 0), tid("p", i, 0, 0), ptg.Dep{
			Bytes: 8,
			Pack: func(e ptg.Env) []byte {
				v := e.Take(fmt.Sprintf("x%d", i)).(int)
				var buf [8]byte
				binary.LittleEndian.PutUint64(buf[:], uint64(v))
				return buf[:]
			},
			Unpack: func(e ptg.Env, data []byte) {
				e.Put(fmt.Sprintf("x%d", i), int(binary.LittleEndian.Uint64(data)))
			},
		})
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Options{Workers: 2, Intercept: intercept})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2*pairs {
		t.Errorf("completed = %d", res.Completed)
	}
}

func TestInterceptorAsyncDelivery(t *testing.T) {
	intercept := func(m Message, deliver func(Message)) {
		go deliver(m)
	}
	g := buildChain(t, 25, 4)
	res, err := Run(g, Options{Workers: 1, Intercept: intercept})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 25 {
		t.Errorf("completed = %d", res.Completed)
	}
}

func TestTraceRecordsAllTasks(t *testing.T) {
	tr := trace.New()
	g := buildChain(t, 12, 2)
	if _, err := Run(g, Options{Workers: 2, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 12 {
		t.Errorf("trace has %d events, want 12", tr.Len())
	}
	for _, e := range tr.Events() {
		if e.End < e.Start {
			t.Errorf("event %v ends before it starts", e.ID)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	b := ptg.NewBuilder(3)
	g, _ := b.Build()
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 || len(res.Stores) != 3 {
		t.Errorf("empty run: %+v", res)
	}
}

func TestNodeIsolation(t *testing.T) {
	// A value Put on node 0 must not be visible on node 1.
	b := ptg.NewBuilder(2)
	b.AddTask(ptg.Task{ID: tid("a", 0, 0, 0), Node: 0, Run: func(e ptg.Env) { e.Put("secret", 42) }})
	b.AddTask(ptg.Task{ID: tid("b", 0, 0, 0), Node: 1, Run: func(e ptg.Env) {
		if e.Get("secret") != nil {
			panic("node isolation violated")
		}
	}})
	b.AddDep(tid("b", 0, 0, 0), tid("a", 0, 0, 0), ptg.Dep{Bytes: 1, Pack: func(e ptg.Env) []byte { return []byte{0} }})
	g, _ := b.Build()
	if _, err := Run(g, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDAGStress(t *testing.T) {
	// Random layered DAGs across nodes with random payloads: every run
	// must complete all tasks without deadlock.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		nodes := rng.Intn(4) + 1
		layers := rng.Intn(5) + 2
		width := rng.Intn(6) + 1
		b := ptg.NewBuilder(nodes)
		for l := 0; l < layers; l++ {
			for w := 0; w < width; w++ {
				b.AddTask(ptg.Task{
					ID: tid("t", l, w, 0), Node: int32(rng.Intn(nodes)),
					Run: func(e ptg.Env) {},
				})
			}
		}
		count := 0
		for l := 1; l < layers; l++ {
			for w := 0; w < width; w++ {
				for p := 0; p < width; p++ {
					if rng.Float64() < 0.4 {
						dep := ptg.Dep{Bytes: 4, Pack: func(e ptg.Env) []byte { return make([]byte, 4) }}
						if err := b.AddDep(tid("t", l, w, 0), tid("t", l-1, p, 0), dep); err != nil {
							t.Fatal(err)
						}
						count++
					}
				}
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(g, Options{Workers: rng.Intn(3) + 1, Policy: Policy(rng.Intn(3))})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Completed != layers*width {
			t.Fatalf("trial %d: completed %d of %d", trial, res.Completed, layers*width)
		}
	}
}

func TestPerNodeStats(t *testing.T) {
	g := buildChain(t, 10, 2)
	res, err := Run(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeTasks) != 2 || res.NodeTasks[0]+res.NodeTasks[1] != 10 {
		t.Errorf("node tasks = %v", res.NodeTasks)
	}
	if res.NodeTasks[0] != 5 || res.NodeTasks[1] != 5 {
		t.Errorf("alternating chain should split evenly: %v", res.NodeTasks)
	}
	for n, b := range res.NodeBusy {
		if b < 0 {
			t.Errorf("node %d busy = %v", n, b)
		}
	}
}

func TestDuplicatedMessageIsDetected(t *testing.T) {
	// The transport contract is exactly-once delivery. A faulty
	// interceptor that duplicates a message must surface as an error
	// (write-once store violation), never as silent corruption.
	intercept := func(m Message, deliver func(Message)) {
		deliver(m)
		deliver(m)
	}
	g := buildChain(t, 4, 2)
	if _, err := Run(g, Options{Workers: 1, Intercept: intercept}); err == nil {
		t.Error("duplicated delivery must fail the run")
	}
}
