package runtime

import (
	"math/bits"
	"sync"
)

// This file implements the runtime's buffer arena: size-classed free lists
// for the message payloads and halo buffers that dominate steady-state
// allocation on the real-execution hot path. Buffers cycle
// producer -> wire -> consumer -> pool, so after warm-up the pack/send/
// unpack path performs no heap allocation at all (the persistent-buffer
// discipline of partitioned-MPI stencils).
//
// A hand-rolled mutex-protected stack per size class is used instead of
// sync.Pool: storing slices in a sync.Pool boxes the slice header on every
// Put (one 24-byte allocation), which would defeat the zero-alloc goal, and
// sync.Pool's GC-clearing makes allocation behavior non-deterministic under
// testing.AllocsPerRun.

// poolClasses covers capacities up to 1<<(poolClasses-1+poolMinBits) bytes
// (currently 1 GiB); larger buffers bypass the pool entirely. The top classes
// exist for coalesced halo bundles, whose wire buffers aggregate every
// per-dependency payload of a (src node, dst node, epoch) triple and so run
// an order of magnitude larger than any single halo message.
const (
	poolMinBits  = 6 // smallest class: 64 elements
	poolClasses  = 25
	poolMaxClass = poolClasses - 1
	// poolMaxFree caps retained buffers per class so a burst cannot pin
	// memory forever; beyond it, Put drops the buffer for the GC.
	poolMaxFree = 4096
)

// sizeClass returns the class whose capacity 1<<(class+poolMinBits) is the
// smallest one holding n elements, or -1 when n exceeds the largest class.
func sizeClass(n int) int {
	if n <= 1<<poolMinBits {
		return 0
	}
	c := bits.Len(uint(n-1)) - poolMinBits
	if c > poolMaxClass {
		return -1
	}
	return c
}

// homeClass returns the class a buffer of capacity c feeds when returned:
// the largest class whose capacity is <= c (a Get from it may re-slice up to
// the class capacity), or -1 when the capacity is below the smallest class
// or beyond the largest one (retaining such buffers would pin arbitrary
// memory).
func homeClass(c int) int {
	if c < 1<<poolMinBits {
		return -1
	}
	h := bits.Len(uint(c)) - 1 - poolMinBits
	if h > poolMaxClass {
		return -1
	}
	return h
}

// slicePool is a size-classed free-list pool for slices of T.
type slicePool[T any] struct {
	classes [poolClasses]struct {
		mu   sync.Mutex
		free [][]T
	}
}

// get returns a slice of length n (contents arbitrary — callers overwrite).
func (p *slicePool[T]) get(n int) []T {
	c := sizeClass(n)
	if c < 0 {
		return make([]T, n)
	}
	cl := &p.classes[c]
	cl.mu.Lock()
	if last := len(cl.free) - 1; last >= 0 {
		b := cl.free[last]
		cl.free[last] = nil
		cl.free = cl.free[:last]
		cl.mu.Unlock()
		return b[:n]
	}
	cl.mu.Unlock()
	return make([]T, n, 1<<(c+poolMinBits))
}

// put returns a slice to the pool. Undersized or oversized slices are
// dropped; retaining them would either starve Gets (too small) or pin
// arbitrary memory (beyond the largest class).
func (p *slicePool[T]) put(b []T) {
	c := homeClass(cap(b))
	if c < 0 {
		return
	}
	cl := &p.classes[c]
	cl.mu.Lock()
	if len(cl.free) < poolMaxFree {
		cl.free = append(cl.free, b[:0])
	}
	cl.mu.Unlock()
}

// BytePool is a size-classed arena of []byte message payloads.
type BytePool struct{ p slicePool[byte] }

// Get returns a payload buffer of length n with arbitrary contents.
func (bp *BytePool) Get(n int) []byte { return bp.p.get(n) }

// Put recycles a buffer obtained from Get (or any byte slice).
func (bp *BytePool) Put(b []byte) { bp.p.put(b) }

// FloatPool is a size-classed arena of []float64 scatter buffers (used by
// the PETSc analog's VecScatter, whose in-process wire format is float64).
type FloatPool struct{ p slicePool[float64] }

// Get returns a buffer of length n with arbitrary contents.
func (fp *FloatPool) Get(n int) []float64 { return fp.p.get(n) }

// Put recycles a buffer obtained from Get (or any float64 slice).
func (fp *FloatPool) Put(b []float64) { fp.p.put(b) }

// The process-wide default pools. Sharing one arena across all virtual
// nodes is a deliberate physical shortcut (the nodes share a heap anyway);
// the dataflow discipline guarantees a buffer is owned by exactly one side
// at a time, so isolation semantics are unaffected.
var (
	defaultBytePool  BytePool
	defaultFloatPool FloatPool
)

// GetBuf returns an n-byte payload buffer from the default arena.
func GetBuf(n int) []byte { return defaultBytePool.Get(n) }

// PutBuf recycles a payload buffer into the default arena. Callers must not
// touch the buffer afterwards.
func PutBuf(b []byte) { defaultBytePool.Put(b) }

// GetFloats returns an n-element float64 buffer from the default arena.
func GetFloats(n int) []float64 { return defaultFloatPool.Get(n) }

// PutFloats recycles a float64 buffer into the default arena.
func PutFloats(b []float64) { defaultFloatPool.Put(b) }
