package runtime

import "sync/atomic"

// deque is a Chase-Lev work-stealing deque of task indices: the owning
// worker pushes and pops at the bottom (LIFO, so a tile chain stays hot in
// that worker's cache), thieves steal from the top (FIFO, so they take the
// oldest — and for stencil graphs, least cache-affine — work). All accesses
// go through sync/atomic, so the structure is lock-free and race-detector
// clean; push/pop are owner-only, steal is safe from any goroutine.
//
// This is the per-core queue of the paper's PaRSEC configuration ("per-core
// task queues with job stealing"); see also Chase & Lev, "Dynamic Circular
// Work-Stealing Deque" (SPAA'05).
type deque struct {
	top    atomic.Int64 // next index to steal; only ever increases
	bottom atomic.Int64 // next index to push; owner-written
	buf    atomic.Pointer[dequeBuf]
}

// dequeBuf is one generation of the circular array. Grown copies never
// mutate the old generation, so a thief holding a stale pointer still reads
// valid values for any index it can win the CAS on.
type dequeBuf struct {
	mask int64
	slot []atomic.Int64
}

const dequeInitialSize = 64 // must be a power of two

func newDequeBuf(n int) *dequeBuf {
	return &dequeBuf{mask: int64(n - 1), slot: make([]atomic.Int64, n)}
}

func newDeque() *deque {
	d := &deque{}
	d.buf.Store(newDequeBuf(dequeInitialSize))
	return d
}

// push appends a task at the bottom. Owner only.
func (d *deque) push(t int32) {
	b := d.bottom.Load()
	tp := d.top.Load()
	buf := d.buf.Load()
	if b-tp >= int64(len(buf.slot)) {
		buf = d.grow(buf, tp, b)
	}
	buf.slot[b&buf.mask].Store(int64(t))
	d.bottom.Store(b + 1)
}

// grow doubles the circular array, copying the live range [tp, b). Owner
// only (called from push with the owner's view of top/bottom).
func (d *deque) grow(old *dequeBuf, tp, b int64) *dequeBuf {
	nb := newDequeBuf(2 * len(old.slot))
	for i := tp; i < b; i++ {
		nb.slot[i&nb.mask].Store(old.slot[i&old.mask].Load())
	}
	d.buf.Store(nb)
	return nb
}

// pop removes the most recently pushed task (LIFO). Owner only. The only
// contended case is the last element, where the owner races thieves with a
// CAS on top.
func (d *deque) pop() (int32, bool) {
	b := d.bottom.Load() - 1
	buf := d.buf.Load()
	d.bottom.Store(b)
	tp := d.top.Load()
	if tp > b {
		// Empty: restore the canonical empty state (top == bottom).
		d.bottom.Store(tp)
		return 0, false
	}
	t := int32(buf.slot[b&buf.mask].Load())
	if tp == b {
		// Last element: win it from any concurrent thief or concede.
		won := d.top.CompareAndSwap(tp, tp+1)
		d.bottom.Store(tp + 1)
		if !won {
			return 0, false
		}
	}
	return t, true
}

// steal removes the oldest task (FIFO). Safe from any goroutine; retries
// while it loses CAS races against other thieves or the owner's final pop.
func (d *deque) steal() (int32, bool) {
	for {
		tp := d.top.Load()
		b := d.bottom.Load()
		if tp >= b {
			return 0, false
		}
		buf := d.buf.Load()
		t := int32(buf.slot[tp&buf.mask].Load())
		if d.top.CompareAndSwap(tp, tp+1) {
			return t, true
		}
	}
}

// size is a racy estimate of the element count (exact when quiescent).
func (d *deque) size() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}
