package runtime

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"castencil/internal/fault"
	"castencil/internal/ptg"
	"castencil/internal/trace"
)

// This file is the runtime's inter-node work-stealing layer: the intra-node
// Chase-Lev deques of PR 2 extended across ranks of a distributed run, per
// "Distributed Work Stealing in a Task-Based Dataflow Runtime".
//
// One steal agent goroutine per rank speaks a four-message protocol over the
// conduit's steal frames (StealReq/StealRsp/StealRet/StealAck). As a thief,
// the agent probes data-affine victims when the rank's workers starve; a
// victim answers by popping a migratable ready task and shipping its entire
// input state (tile contents plus delivered halo payloads — ptg.Migration).
// The thief executes the task against its replica store of the victim's node
// (every rank allocates stores for all nodes) and ships the results back;
// the victim commits them into the home store bitwise-identically to local
// execution and releases the successors. Migration traffic is real wire
// traffic, accounted separately (Result.StealsRemote/MigratedTasks/
// MigratedBytes) from the dataflow's Messages/BytesSent.
//
// Exactly-once under drops: each exchange carries a per-(victim,thief)
// monotonic id. The thief owns the request/return retransmit timers, the
// victim owns the forced-offer timer; the victim answers a retransmitted
// request with the cached offer (same id, same task — never a second pop,
// which could strand the first offer) and a duplicated return with a fresh
// ack, committing only ids above its watermark. Lanes are FIFO and only
// sender-side injected drops exist, so stale ids can simply be ignored.
//
// The drain barrier is the completion fence: a migrated task counts toward
// the victim's total, so the victim cannot enter the "drain" barrier until
// every migration committed; the thief's agent stays alive until commStop,
// which closes only after its own barrier returns — which requires the
// victim to have entered. Mid-flight migrations therefore always complete
// before any agent shuts down.

// StealMode selects the inter-node work-stealing policy of a distributed
// run.
type StealMode int

const (
	// StealOff disables inter-node stealing (the default). Intra-node
	// stealing (Sched == WorkStealing) is unaffected.
	StealOff StealMode = iota
	// StealGreedy migrates any ready migratable task to a starving rank.
	StealGreedy
	// StealGated migrates only when the policy's Gate says the modeled
	// transfer time is below the task's expected local wait (queue depth
	// times the node's average task duration).
	StealGated
)

func (m StealMode) String() string {
	switch m {
	case StealOff:
		return "off"
	case StealGreedy:
		return "greedy"
	case StealGated:
		return "gated"
	}
	return "unknown"
}

// StealNames lists the values the -steal flag accepts.
const StealNames = "off, greedy, gated"

// ForcedSteal pins one task's execution to a thief rank: when the task
// becomes ready on its owning rank it is migrated unconditionally instead of
// queued. Forced steals make migration deterministic — the simulator mirrors
// them exactly, which is what the sim==real parity suite leans on.
type ForcedSteal struct {
	Task  int32
	Thief int
}

// StealPolicy configures inter-node work stealing for a distributed run.
// Every rank must be handed the same policy (ranks agree on forced
// migrations and gating the way they agree on the graph).
type StealPolicy struct {
	Mode StealMode
	// Gate models the migration round trip for a task with the given
	// input/output payload sizes (machine.Network.MigrationTime is the
	// canonical implementation). Only consulted under StealGated.
	Gate func(inBytes, outBytes int) time.Duration
	// Force lists deterministic migrations applied in every mode (including
	// StealOff — forcing is orthogonal to dynamic stealing).
	Force []ForcedSteal
}

// active reports whether the policy asks for any stealing machinery at all.
func (p *StealPolicy) active() bool {
	return p != nil && (p.Mode != StealOff || len(p.Force) > 0)
}

// Steal protocol message kinds (StealMsg.Kind).
const (
	// StealReq is a thief's probe: "have you got a migratable task?".
	StealReq byte = 1
	// StealRsp is the victim's answer: a task offer carrying the packed
	// input state, or an empty answer (Task < 0). With Forced set it is an
	// unsolicited offer for a pinned task.
	StealRsp byte = 2
	// StealRet is the thief's return: the executed task's packed results.
	StealRet byte = 3
	// StealAck acknowledges a return, letting the thief free its cache.
	StealAck byte = 4
)

// StealMsg is one steal-protocol message. It travels as a dedicated frame
// kind on the conduit's existing lanes (internal/netcomm) so migration rides
// the same sockets, buffers and tracing as halo traffic.
type StealMsg struct {
	Kind    byte
	From    int    // sender rank
	ID      uint64 // per-(victim,thief) exchange id, monotonic per Forced space
	Task    int32  // task index; -1 on probes and empty answers
	Forced  bool
	Attempt int32 // delivery attempt, keying the fault plan
	Data    []byte
}

// StealConduit is the optional steal extension of Conduit. A conduit that
// implements it can carry steal frames; BindSteal's handler runs on the
// transport's read goroutine and must never block (the agent's inbox send is
// non-blocking — overflow drops are recovered by the protocol's retransmit
// timers). BindSteal(nil) unbinds.
type StealConduit interface {
	SendSteal(dst int, m StealMsg) error
	BindSteal(h func(StealMsg))
}

// stealMsgID maps a steal frame to its engine-independent fault identity:
// Dep carries the negated protocol kind (forced exchanges offset by 8) so
// steal decisions never collide with data-message identities, Bundle the
// negated exchange id.
func stealMsgID(src, dst int, m StealMsg) fault.MsgID {
	kind := int32(m.Kind)
	if m.Forced {
		kind += 8
	}
	return fault.MsgID{Src: int32(src), Dst: int32(dst), Task: m.Task, Dep: -kind, Bundle: -int32(m.ID)}
}

// stealExch is the thief's single in-flight pull exchange: a probe awaiting
// an offer (task == -1), or an executed task awaiting its return ack.
type stealExch struct {
	victim  int
	id      uint64
	task    int32
	msg     StealMsg // last sent message, retained for retransmission
	attempt int32
	firstAt time.Time
	nextAt  time.Time
}

// victimPull is the victim side of one thief's pull stream.
type victimPull struct {
	rspID   uint64    // highest probe id answered
	rsp     *StealMsg // cached offer awaiting its return (nil after commit/empty)
	attempt int32
	doneID  uint64 // highest pull id committed
}

// victimForced is the victim side of the forced stream toward one thief: at
// most one offer in flight (the victim owns its retransmit timer), later
// pinned tasks queue behind it.
type victimForced struct {
	nextID   uint64
	doneID   uint64
	inFlight bool
	msg      StealMsg
	attempt  int32
	firstAt  time.Time
	nextAt   time.Time
	queue    []int32
}

// thiefForced is the thief side of one victim's forced stream: the cached
// return awaiting its ack (re-sent on duplicated offers and on the timer).
type thiefForced struct {
	lastID  uint64
	have    bool
	msg     StealMsg
	attempt int32
	firstAt time.Time
	nextAt  time.Time
}

// stealAgent is a rank's steal-protocol endpoint, one goroutine per
// executor. All fields below the channels are owned by that goroutine.
type stealAgent struct {
	ex  *executor
	sc  StealConduit
	rec fault.Recovery

	inbox   chan StealMsg // fed by the conduit's read goroutine, non-blocking
	forcedQ chan int32    // pinned tasks diverted at their readiness site
	starve  chan struct{} // starvation signal from parking workers

	// Thief state.
	victims   []int // remote ranks, most data-affine first
	vIdx      int
	pullID    uint64
	cur       *stealExch
	hungry    bool
	empties   int
	backoff   time.Duration
	nextProbe time.Time
	fIn       map[int]*thiefForced

	// Victim state.
	pull map[int]*victimPull
	fOut map[int]*victimForced
}

const (
	stealProbeBackoffMin = time.Millisecond
	stealProbeBackoffMax = 50 * time.Millisecond
)

// newStealAgent validates the policy against the run and builds the agent.
// Called from Run after the distribution state is set up.
func newStealAgent(ex *executor) (*stealAgent, error) {
	pol := ex.opts.Steal
	if ex.dist == nil {
		return nil, fmt.Errorf("runtime: Options.Steal requires a distributed run (Options.Dist)")
	}
	sc, ok := ex.dist.Net.(StealConduit)
	if !ok {
		return nil, fmt.Errorf("runtime: conduit %T does not support steal frames (StealConduit)", ex.dist.Net)
	}
	forced := make(map[int32]int, len(pol.Force))
	for _, f := range pol.Force {
		if f.Task < 0 || int(f.Task) >= len(ex.g.Tasks) {
			return nil, fmt.Errorf("runtime: forced steal task %d out of range", f.Task)
		}
		t := &ex.g.Tasks[f.Task]
		if t.Mig == nil {
			return nil, fmt.Errorf("runtime: forced steal task %v is not migratable", t.ID)
		}
		if f.Thief < 0 || f.Thief >= ex.dist.Ranks {
			return nil, fmt.Errorf("runtime: forced steal thief rank %d out of range [0,%d)", f.Thief, ex.dist.Ranks)
		}
		if int(ex.nodeRank[t.Node]) == f.Thief {
			return nil, fmt.Errorf("runtime: forced steal task %v already lives on rank %d", t.ID, f.Thief)
		}
		if _, dup := forced[f.Task]; dup {
			return nil, fmt.Errorf("runtime: task %v forced twice", t.ID)
		}
		forced[f.Task] = f.Thief
	}
	if len(forced) > 0 {
		ex.forcedSteal = forced
	}
	rec := fault.DefaultRecovery().WithDefaults()
	if ex.reliable {
		rec = ex.rec
	}
	ag := &stealAgent{
		ex:      ex,
		sc:      sc,
		rec:     rec,
		inbox:   make(chan StealMsg, 256),
		forcedQ: make(chan int32, len(forced)+1),
		starve:  make(chan struct{}, 1),
		victims: ex.rankAffinity(),
		backoff: stealProbeBackoffMin,
		fIn:     make(map[int]*thiefForced),
		pull:    make(map[int]*victimPull),
		fOut:    make(map[int]*victimForced),
	}
	ex.stealAvg = make([]atomic.Int64, ex.g.NumNodes)
	return ag, nil
}

// rankAffinity orders the remote ranks for victim selection: ranks whose
// tiles exchange the most halo bytes with this rank's tiles first — stealing
// from a neighbor moves data that was (or will be) on this rank's lanes
// anyway, the data-movement-aware choice of the paper.
func (ex *executor) rankAffinity() []int {
	self := int32(ex.dist.Rank)
	w := make([]int64, ex.dist.Ranks)
	for i := range ex.g.Tasks {
		t := &ex.g.Tasks[i]
		tr := ex.nodeRank[t.Node]
		for di := range t.Deps {
			pr := ex.nodeRank[ex.g.Tasks[t.Deps[di].Producer].Node]
			if pr == tr {
				continue
			}
			if pr == self {
				w[tr] += int64(t.Deps[di].Bytes)
			} else if tr == self {
				w[pr] += int64(t.Deps[di].Bytes)
			}
		}
	}
	order := make([]int, 0, ex.dist.Ranks-1)
	for r := 0; r < ex.dist.Ranks; r++ {
		if r != int(self) {
			order = append(order, r)
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return w[order[i]] > w[order[j]] })
	return order
}

// noteStarve signals the agent that a worker is about to park with nothing
// to run. Non-blocking, called from the worker park paths.
func (ex *executor) noteStarve() {
	if ag := ex.agent; ag != nil {
		select {
		case ag.starve <- struct{}{}:
		default:
		}
	}
}

// divert intercepts a task becoming ready when it is pinned to a remote
// thief: instead of a local queue it goes to the steal agent. The nil-map
// check keeps the cost of the common case at one branch. Each task becomes
// ready exactly once, so the buffered forcedQ send never blocks.
func (ex *executor) divert(idx int32) bool {
	if ex.forcedSteal == nil {
		return false
	}
	if _, ok := ex.forcedSteal[idx]; !ok {
		return false
	}
	ex.agent.forcedQ <- idx
	return true
}

// inject is the conduit's steal-frame handler. It runs on the transport's
// read goroutine and must never block: an overflowing inbox drops the frame
// (recycling its payload) and lets the retransmit timers recover.
func (ag *stealAgent) inject(m StealMsg) {
	select {
	case ag.inbox <- m:
	default:
		if m.Data != nil {
			PutBuf(m.Data)
		}
	}
}

// run is the agent goroutine: victim and thief endpoints multiplexed over
// one select, alive until commStop (past local completion — peers may still
// be returning migrated work).
func (ag *stealAgent) run(wg *sync.WaitGroup) {
	defer wg.Done()
	ex := ag.ex
	iv := ag.rec.Timeout / 4
	if iv < time.Millisecond {
		iv = time.Millisecond
	}
	tick := time.NewTicker(iv)
	defer tick.Stop()
	for {
		select {
		case <-ex.commStop:
			ag.drain()
			return
		case idx := <-ag.forcedQ:
			ag.guard(func() { ag.forcedReady(idx) })
		case m := <-ag.inbox:
			ag.guard(func() { ag.handle(m) })
		case <-ag.starve:
			ag.hungry = true
			ag.empties = 0
			ag.backoff = stealProbeBackoffMin
			ag.guard(ag.maybeProbe)
		case <-tick.C:
			ag.guard(ag.tick)
		}
	}
}

// guard confines a handler panic (a Pack/Deposit bug, not a protocol state)
// to a failed run instead of a crashed process.
func (ag *stealAgent) guard(f func()) {
	defer func() {
		if r := recover(); r != nil {
			ag.ex.fail(fmt.Errorf("runtime: steal agent panicked: %v", r))
		}
	}()
	f()
}

// drain empties the inbox at shutdown, recycling payload buffers, and frees
// the retained retransmission caches.
func (ag *stealAgent) drain() {
	for {
		select {
		case m := <-ag.inbox:
			if m.Data != nil {
				PutBuf(m.Data)
			}
		default:
			if c := ag.cur; c != nil && c.msg.Data != nil {
				PutBuf(c.msg.Data)
				c.msg.Data = nil
			}
			for _, vp := range ag.pull {
				if vp.rsp != nil && vp.rsp.Data != nil {
					PutBuf(vp.rsp.Data)
					vp.rsp = nil
				}
			}
			for _, vf := range ag.fOut {
				if vf.inFlight && vf.msg.Data != nil {
					PutBuf(vf.msg.Data)
					vf.msg.Data = nil
				}
			}
			for _, tf := range ag.fIn {
				if tf.have && tf.msg.Data != nil {
					PutBuf(tf.msg.Data)
					tf.msg.Data = nil
				}
			}
			return
		}
	}
}

// transmit ships one steal frame through the fault plan's wire: steal
// traffic is droppable like any other frame (identity via stealMsgID), and
// every drop is recovered by an owner's retransmit timer.
func (ag *stealAgent) transmit(dst int, m StealMsg, attempt int32) {
	ex := ag.ex
	m.Attempt = attempt
	if ex.fplan != nil && ex.fplan.ShouldDrop(stealMsgID(ex.dist.Rank, dst, m), attempt) {
		ex.fStats.dropped.Add(1)
		return
	}
	if err := ag.sc.SendSteal(dst, m); err != nil {
		ex.fail(err)
	}
}

// handle dispatches one inbound protocol message.
func (ag *stealAgent) handle(m StealMsg) {
	switch m.Kind {
	case StealReq:
		ag.onReq(m)
	case StealRsp:
		if m.Forced {
			ag.onForcedRsp(m)
		} else {
			ag.onPullRsp(m)
		}
	case StealRet:
		ag.onRet(m)
	case StealAck:
		if m.Forced {
			ag.onForcedAck(m)
		} else {
			ag.onPullAck(m)
		}
	}
}

// tick drives the retransmit timers (thief-owned probe/return, victim-owned
// forced offer) and the probe backoff. Runs until commStop: a rank keeps
// recovering peers' exchanges past its own local completion.
func (ag *stealAgent) tick() {
	now := time.Now()
	if c := ag.cur; c != nil && now.After(c.nextAt) {
		if ag.expired(c.victim, c.firstAt, now, c.msg) {
			return
		}
		c.attempt++
		c.nextAt = now.Add(ag.rec.TimeoutAt(c.attempt))
		ag.ex.fStats.retransmits.Add(1)
		ag.transmit(c.victim, c.msg, c.attempt)
	}
	for thief, vf := range ag.fOut {
		if vf.inFlight && now.After(vf.nextAt) {
			if ag.expired(thief, vf.firstAt, now, vf.msg) {
				return
			}
			vf.attempt++
			vf.nextAt = now.Add(ag.rec.TimeoutAt(vf.attempt))
			ag.ex.fStats.retransmits.Add(1)
			ag.transmit(thief, vf.msg, vf.attempt)
		}
	}
	for victim, tf := range ag.fIn {
		if tf.have && now.After(tf.nextAt) {
			if ag.expired(victim, tf.firstAt, now, tf.msg) {
				return
			}
			tf.attempt++
			tf.nextAt = now.Add(ag.rec.TimeoutAt(tf.attempt))
			ag.ex.fStats.retransmits.Add(1)
			ag.transmit(victim, tf.msg, tf.attempt)
		}
	}
	if ag.hungry && ag.cur == nil && now.After(ag.nextProbe) {
		ag.maybeProbe()
	}
}

// expired fails the run with a structured report when an exchange has been
// retransmitting past the recovery deadline — the same graceful degradation
// the reliable data transport applies.
func (ag *stealAgent) expired(peer int, first, now time.Time, m StealMsg) bool {
	waited := now.Sub(first)
	if waited < ag.rec.Deadline {
		return false
	}
	ag.ex.fStats.timeouts.Add(1)
	ag.ex.fail(&fault.Report{
		ID:       stealMsgID(ag.ex.dist.Rank, peer, m),
		Seq:      m.ID,
		Attempts: m.Attempt + 1,
		Waited:   waited,
		Deadline: ag.rec.Deadline,
		Stats:    ag.ex.faultStats(),
	})
	return true
}

// --- thief: probing ---

// maybeProbe sends the next steal probe if the rank is hungry, idle-handed
// and actually out of local work. Dynamic pulling is what Mode enables;
// under StealOff a forced-only policy runs scripted migrations and nothing
// else, which is what keeps forced runs deterministic.
func (ag *stealAgent) maybeProbe() {
	ex := ag.ex
	if ex.opts.Steal.Mode == StealOff {
		return
	}
	if !ag.hungry || ag.cur != nil || len(ag.victims) == 0 || ex.done.Load() {
		return
	}
	now := time.Now()
	if now.Before(ag.nextProbe) {
		return
	}
	for _, nd := range ex.nodes {
		if !ex.localNode(nd.id) {
			continue
		}
		nd.mu.Lock()
		n := nd.queue.size()
		nd.mu.Unlock()
		if n > 0 {
			ag.hungry = false
			return
		}
	}
	v := ag.victims[ag.vIdx%len(ag.victims)]
	ag.vIdx++
	ag.pullID++
	m := StealMsg{Kind: StealReq, From: ex.dist.Rank, ID: ag.pullID, Task: -1}
	ag.cur = &stealExch{
		victim: v, id: ag.pullID, task: -1, msg: m,
		firstAt: now, nextAt: now.Add(ag.rec.TimeoutAt(0)),
	}
	ag.transmit(v, m, 0)
}

// onPullRsp handles the victim's answer to this rank's probe: execute the
// offer and start the return exchange, or move on (next victim, or backed-off
// retry after a full empty round).
func (ag *stealAgent) onPullRsp(m StealMsg) {
	c := ag.cur
	if c == nil || c.task != -1 || m.ID != c.id || m.From != c.victim {
		if m.Data != nil {
			PutBuf(m.Data)
		}
		return
	}
	if m.Task < 0 {
		ag.cur = nil
		ag.empties++
		if ag.empties >= len(ag.victims) {
			// A full round of empty answers: everyone is as poor as we
			// are — back off before the next round.
			ag.empties = 0
			ag.backoff *= 2
			if ag.backoff > stealProbeBackoffMax {
				ag.backoff = stealProbeBackoffMax
			}
			ag.nextProbe = time.Now().Add(ag.backoff)
			return
		}
		ag.maybeProbe()
		return
	}
	ag.empties = 0
	ag.backoff = stealProbeBackoffMin
	out := ag.ex.execMigrated(m.Task, m.Data)
	if out == nil {
		ag.cur = nil
		return
	}
	now := time.Now()
	c.task = m.Task
	c.msg = StealMsg{Kind: StealRet, From: ag.ex.dist.Rank, ID: c.id, Task: m.Task, Data: out}
	c.attempt = 0
	c.firstAt = now
	c.nextAt = now.Add(ag.rec.TimeoutAt(0))
	ag.transmit(c.victim, c.msg, 0)
}

// onPullAck retires the thief's completed pull exchange.
func (ag *stealAgent) onPullAck(m StealMsg) {
	c := ag.cur
	if c == nil || c.task < 0 || m.ID != c.id || m.From != c.victim {
		return
	}
	if c.msg.Data != nil {
		PutBuf(c.msg.Data)
	}
	ag.cur = nil
	ag.maybeProbe()
}

// --- thief: forced offers from victims ---

// onForcedRsp executes an unsolicited pinned-task offer, deduplicating the
// victim's retransmissions against the per-victim id.
func (ag *stealAgent) onForcedRsp(m StealMsg) {
	tf := ag.fIn[m.From]
	if tf == nil {
		tf = &thiefForced{}
		ag.fIn[m.From] = tf
	}
	if tf.lastID != 0 && m.ID <= tf.lastID {
		if m.Data != nil {
			PutBuf(m.Data)
		}
		if tf.have && m.ID == tf.lastID {
			// Our return is still unacked — the duplicated offer doubles as
			// a retransmission prompt.
			tf.attempt++
			ag.transmit(m.From, tf.msg, tf.attempt)
		}
		return
	}
	out := ag.ex.execMigrated(m.Task, m.Data)
	if out == nil {
		return
	}
	now := time.Now()
	tf.lastID = m.ID
	tf.have = true
	tf.msg = StealMsg{Kind: StealRet, From: ag.ex.dist.Rank, ID: m.ID, Task: m.Task, Forced: true, Data: out}
	tf.attempt = 0
	tf.firstAt = now
	tf.nextAt = now.Add(ag.rec.TimeoutAt(0))
	ag.transmit(m.From, tf.msg, 0)
}

// onForcedAck frees the thief's cached forced return.
func (ag *stealAgent) onForcedAck(m StealMsg) {
	tf := ag.fIn[m.From]
	if tf == nil || !tf.have || m.ID != tf.lastID {
		return
	}
	if tf.msg.Data != nil {
		PutBuf(tf.msg.Data)
		tf.msg.Data = nil
	}
	tf.have = false
}

// --- victim: serving probes and returns ---

func (ag *stealAgent) pullState(thief int) *victimPull {
	vp := ag.pull[thief]
	if vp == nil {
		vp = &victimPull{}
		ag.pull[thief] = vp
	}
	return vp
}

// onReq answers a thief's probe: pop a migratable ready task and offer it
// with its packed input state, or answer empty. A retransmitted probe gets
// the cached answer — never a second pop for the same id, which could strand
// the first offer at a thief that moved on.
func (ag *stealAgent) onReq(m StealMsg) {
	ex := ag.ex
	vp := ag.pullState(m.From)
	if m.ID < vp.rspID || m.ID <= vp.doneID {
		return // stale duplicate of an exchange the thief completed
	}
	if m.ID == vp.rspID {
		vp.attempt++
		if vp.rsp != nil {
			ag.transmit(m.From, *vp.rsp, vp.attempt)
		} else {
			ag.transmit(m.From, StealMsg{Kind: StealRsp, From: ex.dist.Rank, ID: m.ID, Task: -1}, vp.attempt)
		}
		return
	}
	vp.rspID = m.ID
	vp.attempt = 0
	vp.rsp = nil
	rsp := StealMsg{Kind: StealRsp, From: ex.dist.Rank, ID: m.ID, Task: -1}
	if idx, ok := ex.stealPop(); ok {
		t := &ex.g.Tasks[idx]
		rsp.Task = idx
		rsp.Data = t.Mig.PackIn(ex.nodes[t.Node].env)
		cp := rsp
		vp.rsp = &cp
	}
	ag.transmit(m.From, rsp, 0)
}

// onRet commits a returned migration (forced or pulled) exactly once and
// acks it, then — on the forced stream — launches the next queued offer.
func (ag *stealAgent) onRet(m StealMsg) {
	ex := ag.ex
	if m.Forced {
		vf := ag.fOut[m.From]
		if vf == nil || m.ID <= vf.doneID || !vf.inFlight || m.ID != vf.msg.ID {
			// Duplicate (or unknown) return: the commit already happened;
			// re-ack so the thief stops retransmitting.
			if m.Data != nil {
				PutBuf(m.Data)
			}
			ag.transmit(m.From, StealMsg{Kind: StealAck, From: ex.dist.Rank, ID: m.ID, Task: m.Task, Forced: true}, 0)
			return
		}
		ex.commitMigrated(vf.msg.Task, m.Data)
		vf.doneID = m.ID
		vf.inFlight = false
		if vf.msg.Data != nil {
			PutBuf(vf.msg.Data)
			vf.msg.Data = nil
		}
		ag.transmit(m.From, StealMsg{Kind: StealAck, From: ex.dist.Rank, ID: m.ID, Task: m.Task, Forced: true}, 0)
		if len(vf.queue) > 0 {
			idx := vf.queue[0]
			vf.queue = vf.queue[1:]
			ag.sendForced(m.From, vf, idx)
		}
		return
	}
	vp := ag.pullState(m.From)
	if m.ID <= vp.doneID || vp.rsp == nil || vp.rsp.ID != m.ID {
		if m.Data != nil {
			PutBuf(m.Data)
		}
		ag.transmit(m.From, StealMsg{Kind: StealAck, From: ex.dist.Rank, ID: m.ID, Task: m.Task}, 0)
		return
	}
	task := vp.rsp.Task
	if vp.rsp.Data != nil {
		PutBuf(vp.rsp.Data)
	}
	vp.rsp = nil
	vp.doneID = m.ID
	ex.commitMigrated(task, m.Data)
	ag.transmit(m.From, StealMsg{Kind: StealAck, From: ex.dist.Rank, ID: m.ID, Task: m.Task}, 0)
}

// --- victim: forced offers ---

// forcedReady starts (or queues) the forced migration of a pinned task that
// just became ready.
func (ag *stealAgent) forcedReady(idx int32) {
	thief := ag.ex.forcedSteal[idx]
	vf := ag.fOut[thief]
	if vf == nil {
		vf = &victimForced{}
		ag.fOut[thief] = vf
	}
	if vf.inFlight {
		vf.queue = append(vf.queue, idx)
		return
	}
	ag.sendForced(thief, vf, idx)
}

func (ag *stealAgent) sendForced(thief int, vf *victimForced, idx int32) {
	ex := ag.ex
	t := &ex.g.Tasks[idx]
	vf.nextID++
	now := time.Now()
	vf.msg = StealMsg{
		Kind: StealRsp, From: ex.dist.Rank, ID: vf.nextID,
		Task: idx, Forced: true, Data: t.Mig.PackIn(ex.nodes[t.Node].env),
	}
	vf.inFlight = true
	vf.attempt = 0
	vf.firstAt = now
	vf.nextAt = now.Add(ag.rec.TimeoutAt(0))
	ag.transmit(thief, vf.msg, 0)
}

// --- executor-side mechanics ---

// stealPop pops one migratable ready task for a remote thief: injection
// queues first (only from a backlog of at least two, so the pop never idles
// a local worker), then deque tails — the oldest, least cache-affine work of
// busy workers, the natural migration candidates. Non-migratable or
// not-worth-shipping candidates are handed back through the injection queue
// (deque pushes are owner-only).
func (ex *executor) stealPop() (int32, bool) {
	for _, nd := range ex.nodes {
		if !ex.localNode(nd.id) {
			continue
		}
		nd.mu.Lock()
		if depth := nd.queue.size(); depth >= 2 {
			var kept [8]int32
			nk := 0
			found := int32(-1)
			for nk < len(kept) && nd.queue.size() > 1 {
				idx, ok := nd.queue.pop()
				if !ok {
					break
				}
				if t := &ex.g.Tasks[idx]; t.Mig != nil && ex.stealWorth(nd, t, depth) {
					found = idx
					break
				}
				kept[nk] = idx
				nk++
			}
			for i := 0; i < nk; i++ {
				nd.queue.push(kept[i], ex.g.Tasks[kept[i]].Priority)
			}
			nd.mu.Unlock()
			if found >= 0 {
				return found, true
			}
		} else {
			nd.mu.Unlock()
		}
		for _, d := range nd.deques {
			if d.size() < 2 {
				continue
			}
			idx, ok := d.steal()
			if !ok {
				continue
			}
			t := &ex.g.Tasks[idx]
			if t.Mig != nil && ex.stealWorth(nd, t, d.size()+1) {
				return idx, true
			}
			nd.mu.Lock()
			nd.queue.push(idx, t.Priority)
			nd.cond.Signal()
			nd.mu.Unlock()
		}
	}
	return -1, false
}

// stealWorth applies the machine-model cost gate: migrate only when the
// modeled round trip beats the task's expected local wait (its queue depth
// times the node's average task duration). Greedy mode skips the gate.
func (ex *executor) stealWorth(nd *execNode, t *ptg.Task, depth int) bool {
	pol := ex.opts.Steal
	if pol.Mode != StealGated || pol.Gate == nil {
		return true
	}
	avg := ex.stealAvg[nd.id].Load()
	if avg == 0 {
		return true // no sample yet: optimistic
	}
	wait := time.Duration(depth) * time.Duration(avg)
	return pol.Gate(t.Mig.InBytes, t.Mig.OutBytes) < wait
}

// execMigrated runs a migrated task against this rank's replica store of its
// home node (every rank allocates stores for all nodes): deposit the shipped
// input state, run the kernel, pack the results for the return trip. It
// consumes in, runs on the agent goroutine (the thief's "communication
// core"), and returns nil when the task panicked (failing the run).
// Completion counters stay with the victim; the thief only counts the steal.
func (ex *executor) execMigrated(idx int32, in []byte) (out []byte) {
	defer func() {
		if r := recover(); r != nil {
			ex.fail(fmt.Errorf("runtime: migrated task %v panicked: %v", ex.g.Tasks[idx].ID, r))
			out = nil
		}
	}()
	t := &ex.g.Tasks[idx]
	nd := ex.nodes[t.Node]
	start := time.Since(ex.t0)
	t.Mig.Deposit(nd.env, in)
	PutBuf(in)
	if t.Run != nil {
		t.Run(nd.env)
	}
	out = t.Mig.PackOut(nd.env)
	ex.stealsRemote.Add(1)
	if ex.opts.Trace != nil {
		// The migrated execution happens on this rank's agent, off the home
		// node's compute cores — recorded on the comm pseudo-core so the
		// per-core rows of the home rank stay truthful.
		ex.opts.Trace.Record(trace.Event{
			ID: t.ID, Kind: t.Kind, Node: t.Node, Core: int32(ex.opts.Workers),
			Start: start, End: time.Since(ex.t0), Stolen: true,
		})
	}
	return out
}

// commitMigrated installs a migrated task's returned results at its home
// node — after which the store is bitwise-identical to local execution — and
// releases its successors. Runs on the victim's agent goroutine; the home
// node's completion counters advance here, so distributed totals fold to
// exactly the single-process numbers. It consumes out.
func (ex *executor) commitMigrated(idx int32, out []byte) {
	defer func() {
		if r := recover(); r != nil {
			ex.fail(fmt.Errorf("runtime: commit of migrated task %v panicked: %v", ex.g.Tasks[idx].ID, r))
		}
	}()
	t := &ex.g.Tasks[idx]
	nd := ex.nodes[t.Node]
	t.Mig.Commit(nd.env, out)
	PutBuf(out)
	ex.migratedTasks.Add(1)
	ex.migratedBytes.Add(int64(t.Mig.InBytes + t.Mig.OutBytes))
	ex.nodeTasks[nd.id].Add(1)
	ready := ex.releaseSuccs(nd, idx, nil)
	if len(ready) > 0 {
		// The agent is not a deque owner; newly-ready successors go through
		// the injection queue like comm-delivered work.
		ex.enqueueBatch(nd, ready)
	}
	ex.completeTask()
}
