package runtime

import (
	"encoding/json"
	"fmt"
	"time"

	"castencil/internal/fault"
)

// This file is the runtime's multi-process distribution layer. A distributed
// run places each virtual node on exactly one OS process (a *rank*): every
// rank builds the identical graph from the identical configuration, runs
// workers and a communication goroutine only for the nodes it owns, and
// routes messages whose destination node lives elsewhere through a Conduit —
// the wire transport (internal/netcomm implements it over TCP). Message
// accounting is unchanged: every inter-node message counts exactly as in a
// single-process run, so after the epilogue's stats exchange rank 0's Result
// carries the same Messages/BytesSent/Bundles/Segments a single-process run
// (and the virtual-time simulator) reports.
//
// Lifecycle of a distributed run, per rank:
//
//  1. Bind the conduit (inbound wire messages feed ex.deliver, transport
//     failures feed ex.fail) and enter the "start" barrier, so every rank's
//     lanes are up before epoch 0 seeds its roots.
//  2. Run the local slice of the graph. ex.deliver routes by destination
//     node: local nodes go to their inbox, remote nodes onto the wire. Acks
//     of the reliable transport are ordinary messages and route the same
//     way, so retransmit/dedup work identically over sockets.
//  3. On local completion, drain: wait until every locally-tracked reliable
//     message is acknowledged, then enter the "drain" barrier. Lanes are
//     FIFO, so a peer that passed the barrier has already received every
//     data frame this rank sent — no straggler can leak into a later run.
//  4. Exchange counters: every rank gathers its Result counters to rank 0,
//     which folds them into its own so the distributed totals match the
//     single-process run exactly.
//
// A failed run (task panic, context cancel, recovery deadline) broadcasts an
// abort instead of the drain barrier; peers fail their runs with the same
// cause instead of hanging on data that will never come.

// Conduit is the wire transport of a distributed run. internal/netcomm
// implements it over TCP; tests may substitute their own. All methods are
// safe for concurrent use. Send is called from compute/communication
// goroutines and must not retain m.Data past its return (the runtime
// recycles the buffer immediately).
type Conduit interface {
	// Rank and Ranks report this process's position in the static member
	// list.
	Rank() int
	Ranks() int
	// Begin opens a new run epoch: collective state from previous runs (or
	// their aborts) is discarded. Every rank must call Begin the same number
	// of times in the same global order — runs over one conduit are
	// serialized by construction.
	Begin()
	// Bind attaches a run: inbound data messages feed deliver, transport
	// failures (a peer dead past the recovery deadline) feed fail. One run
	// may be bound at a time.
	Bind(numNodes int, deliver func(Message), fail func(error)) error
	// Unbind detaches the bound run.
	Unbind()
	// Send ships a message to the rank owning m.Dst.
	Send(m Message) error
	// Barrier blocks until every rank has entered the barrier with the same
	// tag in the current epoch.
	Barrier(tag string) error
	// Gather sends payload to rank 0 and blocks until rank 0 has collected
	// one payload from every rank. On rank 0 it returns the payloads indexed
	// by rank (its own included); on other ranks it returns nil after rank 0
	// acknowledged the collection.
	Gather(tag string, payload []byte) ([][]byte, error)
	// Abort broadcasts a failure to all peers: their pending and future
	// collective calls in this epoch fail, and their bound run (if any) is
	// failed with the abort as cause.
	Abort(reason string)
}

// Dist configures a distributed execution: this process's rank, the total
// rank count, and the established transport. Options.Dist == nil (the
// default) is the classic single-process run.
type Dist struct {
	Rank  int
	Ranks int
	Net   Conduit
}

// RankOfNode is the static node-placement function shared by every rank (and
// by internal/netcomm for routing): virtual nodes are dealt to ranks in
// contiguous blocks of ceil(nodes/ranks). Deterministic placement is what
// lets every rank build the same graph and agree on ownership without any
// exchange.
func RankOfNode(node, nodes, ranks int) int {
	if ranks <= 1 || nodes <= 0 {
		return 0
	}
	block := (nodes + ranks - 1) / ranks
	r := node / block
	if r >= ranks {
		r = ranks - 1
	}
	return r
}

// validateDist sanity-checks a Dist against the graph before the run starts.
func validateDist(d *Dist, numNodes int) error {
	if d.Net == nil {
		return fmt.Errorf("runtime: Dist.Net is required for a distributed run")
	}
	if d.Ranks < 2 {
		return fmt.Errorf("runtime: distributed run needs at least 2 ranks, got %d", d.Ranks)
	}
	if d.Rank < 0 || d.Rank >= d.Ranks {
		return fmt.Errorf("runtime: rank %d out of range [0,%d)", d.Rank, d.Ranks)
	}
	if d.Ranks > numNodes {
		return fmt.Errorf("runtime: %d ranks exceed the graph's %d virtual nodes", d.Ranks, numNodes)
	}
	if d.Net.Rank() != d.Rank || d.Net.Ranks() != d.Ranks {
		return fmt.Errorf("runtime: Dist (rank %d/%d) disagrees with its conduit (rank %d/%d)",
			d.Rank, d.Ranks, d.Net.Rank(), d.Net.Ranks())
	}
	return nil
}

// localNode reports whether the executor's rank owns node n. Always true for
// single-process runs.
func (ex *executor) localNode(n int32) bool {
	return ex.dist == nil || ex.nodeRank[n] == int32(ex.dist.Rank)
}

// sendRemote ships a message whose destination node lives on another rank
// and recycles the local payload buffer: the bytes are on the wire (or the
// send failed and the run is over), so by the same ownership convention the
// in-process receive path applies, the copy this rank holds is dead.
func (ex *executor) sendRemote(m Message) {
	err := ex.dist.Net.Send(m)
	if m.Bundle != 0 {
		ex.bundles[m.Bundle-1].lane.put(m.Data)
	} else if m.Data != nil {
		PutBuf(m.Data)
	}
	if err != nil {
		ex.fail(err)
	}
}

// distDrain is the epilogue of a distributed run, executed on the Run
// goroutine after local completion while the comm goroutines are still
// serving acks and retransmits. On success it waits until every reliable
// message this rank sent has been acknowledged, then holds the "drain"
// barrier; on failure it broadcasts an abort so peers fail fast instead of
// waiting for data that will never arrive.
func (ex *executor) distDrain() {
	ex.errMu.Lock()
	runErr := ex.runErr
	ex.errMu.Unlock()
	if runErr == nil && ex.reliable {
		// The recovery layer's own deadline machinery (retransmitDue) bounds
		// this wait: a peer that never acks fails the run with a
		// *fault.Report, which the loop observes as runErr.
		for {
			pending := int64(0)
			for _, nd := range ex.nodes {
				if nd.rel != nil {
					pending += nd.relPending.Load()
				}
			}
			if pending == 0 {
				break
			}
			ex.errMu.Lock()
			runErr = ex.runErr
			ex.errMu.Unlock()
			if runErr != nil {
				break
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	if runErr != nil {
		ex.dist.Net.Abort(runErr.Error())
		return
	}
	if err := ex.dist.Net.Barrier("drain"); err != nil {
		ex.fail(err)
	}
}

// distStats is the per-rank counter snapshot exchanged at the end of a
// successful distributed run (epilogue traffic, not the hot path — JSON is
// plenty).
type distStats struct {
	Messages       int64       `json:"messages"`
	BytesSent      int64       `json:"bytes_sent"`
	BundlesSent    int64       `json:"bundles_sent"`
	BundleSegments int64       `json:"bundle_segments"`
	Completed      int64       `json:"completed"`
	Dropped        int64       `json:"dropped"`
	InteriorTasks  int64       `json:"interior_tasks"`
	BorderTasks    int64       `json:"border_tasks"`
	StealsRemote   int64       `json:"steals_remote"`
	MigratedTasks  int64       `json:"migrated_tasks"`
	MigratedBytes  int64       `json:"migrated_bytes"`
	Fault          fault.Stats `json:"fault"`
	NodeTasks      []int       `json:"node_tasks"`
	NodeBusy       []int64     `json:"node_busy"`
	NodeLocalHits  []int       `json:"node_local_hits"`
	NodeSteals     []int       `json:"node_steals"`
	NodeParks      []int       `json:"node_parks"`
}

// distExchangeStats folds every rank's counters into rank 0's Result, so the
// distributed totals are exactly the single-process (and simulator) numbers.
// Non-zero ranks keep their local view. Per-node arrays merge by addition:
// each rank reports nonzero entries only for the nodes it owns.
func (ex *executor) distExchangeStats(res *Result) error {
	mine := distStats{
		Messages:       ex.messages.Load(),
		BytesSent:      ex.bytesSent.Load(),
		BundlesSent:    ex.bundlesSent.Load(),
		BundleSegments: ex.bundleSegments.Load(),
		Completed:      ex.completed.Load(),
		Dropped:        ex.dropped.Load(),
		InteriorTasks:  int64(res.InteriorTasks),
		BorderTasks:    int64(res.BorderTasks),
		StealsRemote:   int64(res.StealsRemote),
		MigratedTasks:  int64(res.MigratedTasks),
		MigratedBytes:  int64(res.MigratedBytes),
		Fault:          res.Fault,
		NodeTasks:      res.NodeTasks,
		NodeLocalHits:  res.NodeLocalHits,
		NodeSteals:     res.NodeSteals,
		NodeParks:      res.NodeParks,
	}
	mine.NodeBusy = make([]int64, len(res.NodeBusy))
	for i, d := range res.NodeBusy {
		mine.NodeBusy[i] = int64(d)
	}
	payload, err := json.Marshal(&mine)
	if err != nil {
		return err
	}
	blobs, err := ex.dist.Net.Gather("stats", payload)
	if err != nil {
		return err
	}
	if ex.dist.Rank != 0 {
		return nil
	}
	for r, blob := range blobs {
		if r == ex.dist.Rank || blob == nil {
			continue
		}
		var s distStats
		if err := json.Unmarshal(blob, &s); err != nil {
			return fmt.Errorf("runtime: bad stats payload from rank %d: %v", r, err)
		}
		res.Messages += int(s.Messages)
		res.BytesSent += int(s.BytesSent)
		res.BundlesSent += int(s.BundlesSent)
		res.BundleSegments += int(s.BundleSegments)
		res.Completed += int(s.Completed)
		res.Dropped += int(s.Dropped)
		res.InteriorTasks += int(s.InteriorTasks)
		res.BorderTasks += int(s.BorderTasks)
		res.StealsRemote += int(s.StealsRemote)
		res.MigratedTasks += int(s.MigratedTasks)
		res.MigratedBytes += int(s.MigratedBytes)
		res.Fault.Add(s.Fault)
		for i := range res.NodeTasks {
			if i < len(s.NodeTasks) {
				res.NodeTasks[i] += s.NodeTasks[i]
			}
			if i < len(s.NodeBusy) {
				res.NodeBusy[i] += time.Duration(s.NodeBusy[i])
			}
			if i < len(s.NodeLocalHits) {
				res.NodeLocalHits[i] += s.NodeLocalHits[i]
			}
			if i < len(s.NodeSteals) {
				res.NodeSteals[i] += s.NodeSteals[i]
			}
			if i < len(s.NodeParks) {
				res.NodeParks[i] += s.NodeParks[i]
			}
		}
	}
	return nil
}
