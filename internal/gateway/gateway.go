// Package gateway is the fleet front-end over a set of stencild backends:
// one ingress (cmd/stencilgate) that makes many jobs across many daemons
// behave like one service.
//
// Three mechanisms, layered:
//
//   - A content-addressed result cache keyed by server.Spec.Fingerprint()
//     — the canonical sha256 over the result-affecting subset of a job
//     spec. Jobs are deterministic by construction (the repo's determinism
//     suites prove bitwise-equal grids across schedulers, worker counts,
//     coalescing, transforms, distribution and stealing), so a repeated
//     spec IS its previous result: hits are served without touching any
//     backend, and identical in-flight submissions collapse into one
//     execution (singleflight).
//
//   - Weighted fair-share admission across tenants: deficit round robin
//     over bounded per-tenant queues, layered on the backend's
//     high/normal/low priority classes. One tenant's burst cannot starve
//     another's queue; overload answers 429 + Retry-After at the gateway's
//     own front door, composing with the backends' bounded admission.
//
//   - Sharded routing: rendezvous hashing of the fingerprint across the
//     healthy backends (stable shards through membership churn), health
//     probes ejecting dead or draining backends, persistent keep-alive
//     connections on the gateway->backend hop, and bounded
//     retry-with-backoff failover — safe to re-run anywhere precisely
//     because jobs are deterministic and idempotent.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"castencil/internal/metrics"
	"castencil/internal/server"
)

// Sentinel errors of the gateway admission path.
var (
	// ErrDraining rejects submissions during graceful shutdown.
	ErrDraining = errors.New("gateway: draining, not accepting jobs")
	// ErrNotFound reports an unknown gateway job id.
	ErrNotFound = errors.New("gateway: no such job")
)

// Config sizes a Gateway.
type Config struct {
	// Backends are the stencild addresses (host:port or http URL) the
	// gateway shards across. At least one is required.
	Backends []string
	// CacheEntries / CacheBytes bound the result cache (defaults 512
	// entries, 256 MiB). CacheOff disables the cache and singleflight
	// entirely (ablation arm of the fleet bench).
	CacheEntries int
	CacheBytes   int64
	CacheOff     bool
	// TenantWeights are the fair-share weights; tenants not listed weigh
	// 1. The per-tenant queue bound is TenantQueue (default 64).
	TenantWeights map[string]int
	TenantQueue   int
	// MaxInflight caps jobs dispatched onto the fleet concurrently
	// (default 2 x backends).
	MaxInflight int
	// Retries bounds per-job failover attempts past the first (default 3).
	Retries int
	// ProbeInterval paces the per-backend health probes (default 250ms);
	// PollInterval paces job-status polling of a dispatched job (default
	// 25ms); RetryBackoff is the base failover backoff, doubled per
	// attempt and capped at 2s (default 100ms).
	ProbeInterval time.Duration
	PollInterval  time.Duration
	RetryBackoff  time.Duration
	// Registry receives the stencilgate_* metric families (nil = fresh).
	Registry *metrics.Registry
	// Client overrides the backend HTTP client (tests); nil builds a
	// keep-alive client with persistent connections per backend.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.CacheEntries <= 0 {
		c.CacheEntries = 512
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.TenantQueue <= 0 {
		c.TenantQueue = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * len(c.Backends)
		if c.MaxInflight < 1 {
			c.MaxInflight = 1
		}
	}
	if c.Retries <= 0 {
		c.Retries = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 25 * time.Millisecond
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 8,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return c
}

// Job is one unit of gateway work: a spec moving through the cache, the
// fair-share queue, and (on a miss) a backend of the fleet.
type Job struct {
	// ID is the gateway-assigned identifier ("gw-000001", monotone).
	ID string
	// Spec is the request as submitted (forwarded verbatim to backends).
	Spec server.Spec
	// Fingerprint is the spec's content address (cache key, shard key).
	Fingerprint string
	// Tenant is the fair-share accounting identity ("default" when the
	// spec named none).
	Tenant string

	prio       server.Priority
	readCache  bool // may hit the cache / join a singleflight
	storeCache bool // terminal result is written back into the cache

	mu          sync.Mutex
	state       server.State
	err         error
	submitted   time.Time
	started     time.Time
	finished    time.Time
	backend     string // backend addr currently (or last) executing it
	backendID   string // backend-side job id
	cacheStatus string // hit | miss | coalesced | bypass | uncacheable
	retries     int
	cancelReq   bool
	res         *server.Result
	resSize     int64
	lastView    *server.View // last polled backend view (progress)
	done        chan struct{}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's current lifecycle state.
func (j *Job) State() server.State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the terminal error of a failed job (nil otherwise).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the terminal backend result (nil before done).
func (j *Job) Result() *server.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.res
}

// CacheStatus reports how the cache treated this job: "hit", "miss",
// "coalesced" (merged into an identical in-flight job), "bypass", or
// "uncacheable".
func (j *Job) CacheStatus() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cacheStatus
}

func (j *Job) canceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelReq
}

// Gateway owns the job table, the result cache, the tenant queues and the
// dispatcher. All exported methods are safe for concurrent use.
type Gateway struct {
	cfg  Config
	reg  *metrics.Registry
	pool *pool

	mu       sync.Mutex
	cond     *sync.Cond
	cache    *cache
	flights  map[string]*flight
	adm      *admitter
	jobs     map[string]*Job
	order    []*Job
	inflight int
	draining bool
	nextID   uint64

	dispWg sync.WaitGroup
	jobWg  sync.WaitGroup

	// Instruments (stencilgate_* families, documented in DESIGN.md).
	mHits      *metrics.Counter
	mMisses    *metrics.Counter
	mBypass    *metrics.Counter
	mEvict     *metrics.Counter
	mMerged    *metrics.Counter
	mFailovers *metrics.Counter
	mRetries   *metrics.Counter
	mTerminal  map[server.State]*metrics.Counter
	bJobs      map[string]*metrics.Counter
	bErrs      map[string]*metrics.Counter
}

// New starts a gateway: probers up, dispatcher running.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("gateway: at least one backend is required")
	}
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:     cfg,
		reg:     cfg.Registry,
		pool:    newPool(cfg.Backends, cfg.Client, cfg.ProbeInterval),
		cache:   newCache(cfg.CacheEntries, cfg.CacheBytes),
		flights: make(map[string]*flight),
		adm:     newAdmitter(cfg.TenantQueue, cfg.TenantWeights),
		jobs:    make(map[string]*Job),
	}
	g.cond = sync.NewCond(&g.mu)

	r := g.reg
	g.mHits = r.Counter("stencilgate_cache_hits_total", "jobs served from the content-addressed result cache", nil)
	g.mMisses = r.Counter("stencilgate_cache_misses_total", "cacheable jobs that had to execute", nil)
	g.mBypass = r.Counter("stencilgate_cache_bypass_total", "jobs that forced re-execution via cache=bypass", nil)
	g.mEvict = r.Counter("stencilgate_cache_evictions_total", "cache entries evicted by the byte or entry cap", nil)
	g.mMerged = r.Counter("stencilgate_singleflight_merged_total", "submissions collapsed into an identical in-flight job", nil)
	g.mFailovers = r.Counter("stencilgate_failovers_total", "job attempts re-routed to another backend", nil)
	g.mRetries = r.Counter("stencilgate_retries_total", "job dispatch retries (backoff attempts past the first)", nil)
	g.mTerminal = map[server.State]*metrics.Counter{
		server.StateDone:      r.Counter("stencilgate_jobs_total", "gateway jobs by terminal state", metrics.Labels{"state": "done"}),
		server.StateFailed:    r.Counter("stencilgate_jobs_total", "gateway jobs by terminal state", metrics.Labels{"state": "failed"}),
		server.StateCancelled: r.Counter("stencilgate_jobs_total", "gateway jobs by terminal state", metrics.Labels{"state": "cancelled"}),
	}
	r.GaugeFunc("stencilgate_queue_depth", "jobs waiting in the tenant admission queues", nil, func() int64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return int64(g.adm.depth())
	})
	r.GaugeFunc("stencilgate_jobs_inflight", "jobs currently dispatched onto the fleet", nil, func() int64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return int64(g.inflight)
	})
	r.GaugeFunc("stencilgate_cache_entries", "live entries in the result cache", nil, func() int64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return int64(g.cache.len())
	})
	r.GaugeFunc("stencilgate_cache_bytes", "bytes held by the result cache", nil, func() int64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.cache.size()
	})
	g.bJobs = make(map[string]*metrics.Counter)
	g.bErrs = make(map[string]*metrics.Counter)
	for _, b := range g.pool.backends {
		b := b
		lbl := metrics.Labels{"backend": b.addr}
		g.bJobs[b.addr] = r.Counter("stencilgate_backend_jobs_total", "jobs dispatched per backend", lbl)
		g.bErrs[b.addr] = r.Counter("stencilgate_backend_errors_total", "request failures per backend", lbl)
		r.GaugeFunc("stencilgate_backend_inflight", "jobs currently running per backend", lbl, func() int64 {
			return b.inflight.Load()
		})
		r.GaugeFunc("stencilgate_backend_healthy", "1 if the backend is routable", lbl, func() int64 {
			if b.healthy.Load() {
				return 1
			}
			return 0
		})
	}

	g.pool.start()
	g.dispWg.Add(1)
	go g.dispatcher()
	return g, nil
}

// Metrics returns the registry the gateway reports into.
func (g *Gateway) Metrics() *metrics.Registry { return g.reg }

// tenantCounter lazily materializes a per-tenant counter series.
func (g *Gateway) tenantCounter(name, help, tenant string) *metrics.Counter {
	return g.reg.Counter(name, help, metrics.Labels{"tenant": tenant})
}

func (g *Gateway) tenantWait(tenant string) *metrics.Histogram {
	return g.reg.Histogram("stencilgate_queue_wait_seconds", "admission-to-dispatch wait by tenant", nil, metrics.Labels{"tenant": tenant})
}

// Submit validates and admits a job. Cache hits and singleflight merges
// return immediately (the returned job may already be done); misses queue
// under the submitting tenant's fair share. A full tenant queue rejects
// with ErrQueueFull.
func (g *Gateway) Submit(spec server.Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Ranks > 0 {
		return nil, fmt.Errorf("gateway: distributed jobs (ranks=%d) are submitted to rank 0 of a mesh directly, not through the fleet gateway", spec.Ranks)
	}
	tenant := spec.Tenant
	if tenant == "" {
		tenant = "default"
	}
	prio, err := server.ParsePriority(spec.Priority)
	if err != nil {
		return nil, err
	}
	bypass := strings.EqualFold(spec.Cache, server.CacheBypass)
	noBypass := spec
	noBypass.Cache = ""
	safe := noBypass.CacheSafe() && !g.cfg.CacheOff

	j := &Job{
		Spec:        spec,
		Fingerprint: spec.Fingerprint(),
		Tenant:      tenant,
		prio:        prioIndex(prio),
		readCache:   safe && !bypass,
		storeCache:  safe,
		state:       server.StateQueued,
		submitted:   time.Now(),
		done:        make(chan struct{}),
	}
	switch {
	case bypass:
		j.cacheStatus = "bypass"
	case !safe:
		j.cacheStatus = "uncacheable"
	default:
		j.cacheStatus = "miss" // promoted to hit/coalesced below
	}

	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		return nil, ErrDraining
	}
	g.nextID++
	j.ID = fmt.Sprintf("gw-%06d", g.nextID)
	if j.readCache {
		if res, size, ok := g.cache.get(j.Fingerprint); ok {
			g.jobs[j.ID] = j
			g.order = append(g.order, j)
			g.mu.Unlock()
			g.mHits.Inc()
			g.tenantCounter("stencilgate_jobs_admitted_total", "jobs admitted by tenant", tenant).Inc()
			j.mu.Lock()
			j.cacheStatus = "hit"
			j.mu.Unlock()
			g.finishDone(j, res, size)
			return j, nil
		}
		if fl, ok := g.flights[j.Fingerprint]; ok {
			fl.waiters = append(fl.waiters, j)
			g.jobs[j.ID] = j
			g.order = append(g.order, j)
			g.mu.Unlock()
			g.mMerged.Inc()
			g.tenantCounter("stencilgate_jobs_admitted_total", "jobs admitted by tenant", tenant).Inc()
			j.mu.Lock()
			j.cacheStatus = "coalesced"
			j.mu.Unlock()
			return j, nil
		}
	}
	if err := g.adm.enqueue(j, false); err != nil {
		g.mu.Unlock()
		g.tenantCounter("stencilgate_jobs_rejected_total", "submissions rejected by tenant-queue backpressure", tenant).Inc()
		return nil, err
	}
	g.jobs[j.ID] = j
	g.order = append(g.order, j)
	if j.readCache {
		g.flights[j.Fingerprint] = &flight{leader: j}
	}
	g.cond.Broadcast()
	g.mu.Unlock()
	g.tenantCounter("stencilgate_jobs_admitted_total", "jobs admitted by tenant", tenant).Inc()
	if j.readCache {
		g.mMisses.Inc()
	} else if bypass {
		g.mBypass.Inc()
	}
	return j, nil
}

// Get returns a job by id.
func (g *Gateway) Get(id string) (*Job, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j, ok := g.jobs[id]
	return j, ok
}

// Jobs lists all known jobs in submission order.
func (g *Gateway) Jobs() []*Job {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Job, len(g.order))
	copy(out, g.order)
	return out
}

// Cancel stops a job: queued jobs cancel immediately (promoting a
// singleflight waiter to leader if one rode on it), running jobs forward
// the cancellation to their backend. Terminal jobs are a no-op.
func (g *Gateway) Cancel(id string) error {
	g.mu.Lock()
	j, ok := g.jobs[id]
	if !ok {
		g.mu.Unlock()
		return ErrNotFound
	}
	if g.adm.remove(j) {
		g.promoteLocked(j)
		g.mu.Unlock()
		g.finishOne(j, context.Canceled)
		return nil
	}
	// Not in a queue: a singleflight waiter cancels alone; a dispatched
	// job gets the request flag its poll loop forwards.
	if fl, ok := g.flights[j.Fingerprint]; ok && fl.leader != j {
		for i, w := range fl.waiters {
			if w == j {
				fl.waiters = append(fl.waiters[:i], fl.waiters[i+1:]...)
				g.mu.Unlock()
				g.finishOne(j, context.Canceled)
				return nil
			}
		}
	}
	g.mu.Unlock()
	j.mu.Lock()
	if !j.state.Terminal() {
		j.cancelReq = true
	}
	j.mu.Unlock()
	return nil
}

// promoteLocked hands a cancelled queued leader's flight to its first
// waiter, re-enqueueing the waiter (its admission was already granted, so
// the bound is bypassed). Requires g.mu.
func (g *Gateway) promoteLocked(j *Job) {
	fl, ok := g.flights[j.Fingerprint]
	if !ok || fl.leader != j {
		return
	}
	if len(fl.waiters) == 0 {
		delete(g.flights, j.Fingerprint)
		return
	}
	next := fl.waiters[0]
	fl.leader = next
	fl.waiters = fl.waiters[1:]
	_ = g.adm.enqueue(next, true)
	g.cond.Broadcast()
}

// dispatcher claims jobs in fair-share order and runs each on its own
// goroutine, bounded by MaxInflight.
func (g *Gateway) dispatcher() {
	defer g.dispWg.Done()
	for {
		g.mu.Lock()
		var j *Job
		for {
			if g.draining && g.adm.depth() == 0 {
				g.mu.Unlock()
				return
			}
			if g.inflight < g.cfg.MaxInflight {
				if j = g.adm.next(); j != nil {
					break
				}
			}
			g.cond.Wait()
		}
		g.inflight++
		g.jobWg.Add(1)
		g.mu.Unlock()
		go func(j *Job) {
			defer g.jobWg.Done()
			g.runJob(j)
			g.mu.Lock()
			g.inflight--
			g.cond.Broadcast()
			g.mu.Unlock()
		}(j)
	}
}

// errPermanent marks a failure retrying cannot fix (spec rejected, job
// failed deterministically, cancellation).
type errPermanent struct{ err error }

func (e *errPermanent) Error() string { return e.err.Error() }
func (e *errPermanent) Unwrap() error { return e.err }

func permanent(err error) error { return &errPermanent{err} }

// runJob drives one dispatched job: pick a backend by rendezvous order,
// execute, and on retryable failure (connection loss, 429/503, a backend
// dying mid-run) back off and fail over down the preference list. Jobs are
// deterministic and idempotent, so re-running a possibly-started job on a
// survivor is always safe — the grid is a pure function of the spec.
func (g *Gateway) runJob(j *Job) {
	j.mu.Lock()
	j.state = server.StateRunning
	j.started = time.Now()
	wait := j.started.Sub(j.submitted)
	cancelled := j.cancelReq
	j.mu.Unlock()
	g.tenantWait(j.Tenant).Observe(wait.Seconds())
	if cancelled {
		g.finish(j, context.Canceled)
		return
	}

	var lastErr error
	for attempt := 0; attempt <= g.cfg.Retries; attempt++ {
		if attempt > 0 {
			g.mRetries.Inc()
			backoff := g.cfg.RetryBackoff << (attempt - 1)
			if backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			if !sleepUnless(backoff, j.canceled) {
				g.finish(j, context.Canceled)
				return
			}
			j.mu.Lock()
			j.retries = attempt
			j.mu.Unlock()
		}
		b := g.pool.pickAt(j.Fingerprint, attempt)
		if b == nil {
			lastErr = errors.New("no healthy backends")
			continue
		}
		if attempt > 0 {
			g.mFailovers.Inc()
		}
		res, size, err := g.execOn(b, j)
		if err == nil {
			g.complete(j, res, size)
			return
		}
		var pe *errPermanent
		if errors.As(err, &pe) {
			g.finish(j, pe.err)
			return
		}
		g.bErrs[b.addr].Inc()
		lastErr = err
	}
	g.finish(j, fmt.Errorf("gateway: job %s failed after %d attempts: %w", j.ID, g.cfg.Retries+1, lastErr))
}

// sleepUnless sleeps d in small slices, returning false early if abort()
// reports true.
func sleepUnless(d time.Duration, abort func() bool) bool {
	const slice = 10 * time.Millisecond
	for d > 0 {
		if abort() {
			return false
		}
		step := slice
		if d < step {
			step = d
		}
		time.Sleep(step)
		d -= step
	}
	return !abort()
}

// execOn runs j on one backend: submit, poll to terminal, fetch the result.
// Retryable errors (anything but an errPermanent) mean the backend is gone
// or pushing back and the caller should fail over.
func (g *Gateway) execOn(b *backend, j *Job) (*server.Result, int64, error) {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	j.mu.Lock()
	j.backend, j.backendID = b.addr, ""
	j.mu.Unlock()

	view, err := g.submitTo(b, j.Spec)
	if err != nil {
		return nil, 0, err
	}
	g.bJobs[b.addr].Inc()
	j.mu.Lock()
	j.backendID = view.ID
	j.mu.Unlock()

	cancelSent := false
	failures := 0
	for {
		time.Sleep(g.cfg.PollInterval)
		if j.canceled() && !cancelSent {
			// Best-effort: if the cancel does not land, the poll loop still
			// sees the job through to its backend-terminal state.
			_ = g.post(b, "/v1/jobs/"+view.ID+"/cancel", nil, nil)
			cancelSent = true
		}
		var v server.View
		if err := g.getJSON(b, "/v1/jobs/"+view.ID, &v); err != nil {
			failures++
			if failures >= 3 {
				return nil, 0, fmt.Errorf("backend %s lost mid-job: %w", b.addr, err)
			}
			continue
		}
		failures = 0
		j.mu.Lock()
		j.lastView = &v
		j.mu.Unlock()
		if !v.State.Terminal() {
			continue
		}
		switch v.State {
		case server.StateDone:
			var res server.Result
			if err := g.getJSON(b, "/v1/jobs/"+view.ID+"/result?grid=1", &res); err != nil {
				return nil, 0, fmt.Errorf("backend %s result fetch: %w", b.addr, err)
			}
			raw, _ := json.Marshal(&res)
			return &res, int64(len(raw)), nil
		case server.StateCancelled:
			return nil, 0, permanent(context.Canceled)
		default:
			return nil, 0, permanent(fmt.Errorf("backend %s: job failed: %s", b.addr, v.Error))
		}
	}
}

// submitTo posts the spec, classifying the response: 202 succeeds, 4xx
// spec rejections are permanent, backpressure (429 with its Retry-After,
// 503) and transport errors are retryable.
func (g *Gateway) submitTo(b *backend, spec server.Spec) (*server.View, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, permanent(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", b.base+"/v1/jobs", strings.NewReader(string(body)))
	if err != nil {
		return nil, permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("backend %s submit: %w", b.addr, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusAccepted:
		var v server.View
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			return nil, fmt.Errorf("backend %s submit decode: %w", b.addr, err)
		}
		return &v, nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		// Backend backpressure propagates into the failover/backoff loop:
		// honor its Retry-After before the next attempt.
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if d, err := time.ParseDuration(ra + "s"); err == nil && d > 0 && d <= 5*time.Second {
				time.Sleep(d)
			}
		}
		return nil, fmt.Errorf("backend %s pushed back: %s", b.addr, resp.Status)
	case resp.StatusCode >= 500:
		return nil, fmt.Errorf("backend %s submit: %s", b.addr, resp.Status)
	default:
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return nil, permanent(fmt.Errorf("backend %s rejected spec: %s", b.addr, e.Error))
	}
}

func (g *Gateway) getJSON(b *backend, path string, out any) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", b.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (g *Gateway) post(b *backend, path string, body, out any) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var rd *strings.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = strings.NewReader(string(raw))
	} else {
		rd = strings.NewReader("")
	}
	req, err := http.NewRequestWithContext(ctx, "POST", b.base+path, rd)
	if err != nil {
		return err
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// resolveFlightLocked detaches and returns j's singleflight waiters if j
// leads a flight. Requires g.mu.
func (g *Gateway) resolveFlightLocked(j *Job) []*Job {
	fl, ok := g.flights[j.Fingerprint]
	if !ok || fl.leader != j {
		return nil
	}
	delete(g.flights, j.Fingerprint)
	return fl.waiters
}

// complete lands a successful result: cache write-back (bypass refreshes
// the entry too), singleflight resolution, terminal bookkeeping.
func (g *Gateway) complete(j *Job, res *server.Result, size int64) {
	g.mu.Lock()
	if j.storeCache {
		if ev := g.cache.put(j.Fingerprint, res, size); ev > 0 {
			g.mEvict.Add(int64(ev))
		}
	}
	waiters := g.resolveFlightLocked(j)
	g.mu.Unlock()
	g.finishDone(j, res, size)
	for _, w := range waiters {
		g.finishDone(w, res, size)
	}
}

// finish lands a terminal failure (or cancellation), propagating it to any
// singleflight waiters — a deterministic failure would fail them all
// identically anyway.
func (g *Gateway) finish(j *Job, err error) {
	g.mu.Lock()
	waiters := g.resolveFlightLocked(j)
	g.mu.Unlock()
	g.finishOne(j, err)
	for _, w := range waiters {
		g.finishOne(w, fmt.Errorf("gateway: merged into job %s which did not complete: %w", j.ID, err))
	}
}

func (g *Gateway) finishDone(j *Job, res *server.Result, size int64) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	if j.started.IsZero() {
		j.started = j.submitted
	}
	j.state = server.StateDone
	j.res, j.resSize = res, size
	j.finished = time.Now()
	close(j.done)
	j.mu.Unlock()
	g.mTerminal[server.StateDone].Inc()
}

func (g *Gateway) finishOne(j *Job, err error) {
	state := server.StateFailed
	if errors.Is(err, context.Canceled) {
		state = server.StateCancelled
	}
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.err = err
	j.finished = time.Now()
	close(j.done)
	j.mu.Unlock()
	g.mTerminal[state].Inc()
}

// Healthy reports routable backends out of the fleet total.
func (g *Gateway) Healthy() (int, int) {
	return g.pool.healthyCount(), len(g.pool.backends)
}

// Draining reports whether shutdown has begun.
func (g *Gateway) Draining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// Shutdown drains the gateway: admission closes, queued jobs cancel
// immediately (their backends never saw them), and running jobs get until
// ctx expires before their cancellation is forwarded. The dispatcher and
// probers are gone when it returns.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	g.draining = true
	queued := g.adm.drainAll()
	g.cond.Broadcast()
	g.mu.Unlock()
	for _, j := range queued {
		g.finish(j, context.Canceled)
	}

	done := make(chan struct{})
	go func() {
		g.jobWg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		for _, j := range g.Jobs() {
			j.mu.Lock()
			if !j.state.Terminal() {
				j.cancelReq = true
			}
			j.mu.Unlock()
		}
		<-done
		err = ctx.Err()
	}
	g.mu.Lock()
	g.cond.Broadcast()
	g.mu.Unlock()
	g.dispWg.Wait()
	g.pool.stop()
	return err
}
