package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"castencil/internal/server"
)

// backend is one stencild the gateway routes onto. The health fields are
// written only by the prober goroutine and read atomically by the routing
// path, so routing never blocks on a probe in flight.
type backend struct {
	addr string // canonical host:port, the metric label and display name
	base string // http://host:port

	healthy  atomic.Bool
	health   atomic.Pointer[server.Health] // last load payload (nil before first parse)
	inflight atomic.Int64                  // gateway jobs currently on this backend
	fails    int                           // consecutive probe failures (prober-only)
}

// pool owns the backend set, the persistent HTTP client every gateway
// request rides (keep-alive connections, the netcomm persistent-lane
// discipline applied to the gateway->backend hop), and one health-probe
// goroutine per backend.
type pool struct {
	backends []*backend
	client   *http.Client
	probe    time.Duration
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// normalizeAddr accepts "host:port" or a full http URL and returns
// (host:port, http://host:port).
func normalizeAddr(a string) (string, string) {
	a = strings.TrimSuffix(a, "/")
	if s, ok := strings.CutPrefix(a, "http://"); ok {
		return s, a
	}
	if s, ok := strings.CutPrefix(a, "https://"); ok {
		return s, a
	}
	return a, "http://" + a
}

func newPool(addrs []string, client *http.Client, probe time.Duration) *pool {
	p := &pool{client: client, probe: probe, stopCh: make(chan struct{})}
	for _, a := range addrs {
		addr, base := normalizeAddr(a)
		b := &backend{addr: addr, base: base}
		// Start optimistic: a backend is routable until a probe says
		// otherwise, so a gateway booted alongside its fleet serves the
		// first request without waiting out a probe round.
		b.healthy.Store(true)
		p.backends = append(p.backends, b)
	}
	return p
}

// start launches the probers.
func (p *pool) start() {
	for _, b := range p.backends {
		p.wg.Add(1)
		go p.prober(b)
	}
}

// stop halts the probers; safe to call more than once (Shutdown is
// idempotent).
func (p *pool) stop() {
	p.stopOnce.Do(func() { close(p.stopCh) })
	p.wg.Wait()
}

// prober polls one backend's /healthz: two consecutive failures (connection
// error or non-200) eject it from routing, one success restores it. The
// JSON line of a healthy answer is kept as the load snapshot for
// load-aware routing.
func (p *pool) prober(b *backend) {
	defer p.wg.Done()
	tick := time.NewTicker(p.probe)
	defer tick.Stop()
	p.probeOnce(b)
	for {
		select {
		case <-p.stopCh:
			return
		case <-tick.C:
			p.probeOnce(b)
		}
	}
}

func (p *pool) probeOnce(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", b.base+"/healthz", nil)
	if err != nil {
		p.probeFailed(b)
		return
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.probeFailed(b)
		return
	}
	h, parsed := parseHealth(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Draining or degraded backends answer 503 with a payload; either
		// way they must not receive new jobs.
		p.probeFailed(b)
		if parsed {
			b.health.Store(h)
		}
		return
	}
	b.fails = 0
	b.healthy.Store(true)
	if parsed {
		b.health.Store(h)
	}
}

func (p *pool) probeFailed(b *backend) {
	b.fails++
	if b.fails >= 2 {
		b.healthy.Store(false)
	}
}

// parseHealth extracts the machine-readable Health object from a healthz
// body: the last line that parses as JSON (the endpoint's text lines come
// first for back-compat).
func parseHealth(r io.Reader) (*server.Health, bool) {
	var h server.Health
	found := false
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "{") {
			continue
		}
		var cand server.Health
		if err := json.Unmarshal([]byte(line), &cand); err == nil {
			h, found = cand, true
		}
	}
	return &h, found
}

// rendezvousScore is the highest-random-weight hash of (fingerprint,
// backend): each backend scores every key independently, so adding or
// ejecting a backend only remaps the keys that scored highest on it —
// the fleet's working set stays sharded stably through membership churn.
func rendezvousScore(fp, addr string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(fp))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(addr))
	return h.Sum64()
}

// candidates returns the preference-ordered routable backends for a
// fingerprint: healthy backends by descending rendezvous score, with
// backends whose last load snapshot shows a full admission queue demoted
// behind the rest (load-aware: route around a saturated shard before its
// 429 does it the hard way). Unhealthy backends are ejected entirely.
func (p *pool) candidates(fp string) []*backend {
	var open, full []*backend
	for _, b := range p.backends {
		if !b.healthy.Load() {
			continue
		}
		if h := b.health.Load(); h != nil && h.QueueSize > 0 && h.QueueDepth >= h.QueueSize {
			full = append(full, b)
			continue
		}
		open = append(open, b)
	}
	byScore := func(s []*backend) {
		sort.Slice(s, func(i, j int) bool {
			return rendezvousScore(fp, s[i].addr) > rendezvousScore(fp, s[j].addr)
		})
	}
	byScore(open)
	byScore(full)
	return append(open, full...)
}

// pickAt returns the backend for a job's attempt number: attempt 0 is the
// rendezvous owner, each failover walks down the preference order, wrapping
// so a long outage retries the (possibly recovered) owner again.
func (p *pool) pickAt(fp string, attempt int) *backend {
	cands := p.candidates(fp)
	if len(cands) == 0 {
		return nil
	}
	return cands[attempt%len(cands)]
}

// healthyCount reports routable backends (for the gateway's own healthz).
func (p *pool) healthyCount() int {
	n := 0
	for _, b := range p.backends {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}
