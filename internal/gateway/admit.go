package gateway

import (
	"errors"
	"fmt"

	"castencil/internal/server"
)

// ErrQueueFull is the gateway's own backpressure signal: the submitting
// tenant's admission queue is at capacity. HTTP maps it to 429 +
// Retry-After, the same contract a stencild backend exposes — backpressure
// composes through the fleet instead of disappearing into it.
var ErrQueueFull = errors.New("gateway: tenant admission queue full")

// tenantQ is one tenant's admission state: a bounded queue split by the
// backend priority classes plus the deficit-round-robin accounting.
type tenantQ struct {
	name    string
	weight  int
	deficit int
	queues  [3][]*Job // indexed by server.Priority (high, normal, low)
	count   int
}

func (t *tenantQ) pop() *Job {
	for p := range t.queues {
		if q := t.queues[p]; len(q) > 0 {
			j := q[0]
			copy(q, q[1:])
			t.queues[p] = q[:len(q)-1]
			t.count--
			return j
		}
	}
	return nil
}

// admitter is the weighted fair-share scheduler across tenants: classic
// deficit round robin (Shreedhar & Varghese) with a unit job cost and a
// per-visit quantum equal to the tenant's weight, layered over the
// high/normal/low priority classes *within* each tenant. A tenant with
// weight w drains w jobs per DRR round while every backlogged competitor
// drains in proportion to its own weight — one tenant's burst can no longer
// starve another's queue, whatever priorities the burst claims. The zero
// deficit is reset whenever a tenant's queue empties (no credit hoarding
// across idle periods), which is what bounds DRR's unfairness to one
// quantum. All methods require the gateway mutex.
type admitter struct {
	bound   int            // per-tenant queue capacity
	weights map[string]int // configured weights; absent tenants weigh 1
	tenants map[string]*tenantQ
	ring    []*tenantQ // active (backlogged) tenants, DRR visit order
	total   int
}

func newAdmitter(bound int, weights map[string]int) *admitter {
	w := make(map[string]int, len(weights))
	for k, v := range weights {
		if v > 0 {
			w[k] = v
		}
	}
	return &admitter{bound: bound, weights: w, tenants: make(map[string]*tenantQ)}
}

func (a *admitter) tenant(name string) *tenantQ {
	t, ok := a.tenants[name]
	if !ok {
		weight := a.weights[name]
		if weight <= 0 {
			weight = 1
		}
		t = &tenantQ{name: name, weight: weight}
		a.tenants[name] = t
	}
	return t
}

// enqueue admits j into its tenant's queue, activating the tenant in the
// DRR ring if it was idle. A full tenant queue rejects with ErrQueueFull;
// force bypasses the bound (used when promoting a singleflight waiter whose
// admission slot was already granted).
func (a *admitter) enqueue(j *Job, force bool) error {
	t := a.tenant(j.Tenant)
	if !force && t.count >= a.bound {
		return fmt.Errorf("%w (tenant %q, bound %d)", ErrQueueFull, j.Tenant, a.bound)
	}
	if t.count == 0 {
		a.ring = append(a.ring, t)
	}
	t.queues[int(j.prio)] = append(t.queues[int(j.prio)], j)
	t.count++
	a.total++
	return nil
}

// next picks the next job to dispatch: the tenant at the head of the DRR
// ring spends one unit of deficit per job, receiving a fresh quantum (its
// weight) on arriving at the head, and rotates to the tail when the quantum
// is spent. Within the chosen tenant, high beats normal beats low,
// FIFO within a class. Returns nil when nothing is queued.
func (a *admitter) next() *Job {
	for len(a.ring) > 0 {
		t := a.ring[0]
		if t.count == 0 {
			// Emptied behind our back (cancellation): deactivate, no carry.
			t.deficit = 0
			a.ring = a.ring[1:]
			continue
		}
		if t.deficit == 0 {
			t.deficit = t.weight
		}
		j := t.pop()
		t.deficit--
		a.total--
		switch {
		case t.count == 0:
			t.deficit = 0
			a.ring = a.ring[1:]
		case t.deficit == 0:
			a.ring = append(a.ring[1:], t)
		}
		return j
	}
	return nil
}

// remove drops a queued job (cancellation); reports whether it was found.
func (a *admitter) remove(j *Job) bool {
	t, ok := a.tenants[j.Tenant]
	if !ok {
		return false
	}
	q := t.queues[int(j.prio)]
	for i, cand := range q {
		if cand == j {
			t.queues[int(j.prio)] = append(q[:i], q[i+1:]...)
			t.count--
			a.total--
			return true
		}
	}
	return false
}

// drainAll empties every queue (shutdown), returning the drained jobs.
func (a *admitter) drainAll() []*Job {
	var out []*Job
	for _, t := range a.ring {
		for p := range t.queues {
			out = append(out, t.queues[p]...)
			t.queues[p] = nil
		}
		t.count, t.deficit = 0, 0
	}
	a.ring = nil
	a.total = 0
	return out
}

// depth is the total queued jobs across tenants.
func (a *admitter) depth() int { return a.total }

// prioIndex bounds a parsed priority into the queue array (defensive; the
// parser only yields the three classes).
func prioIndex(p server.Priority) server.Priority {
	if p < 0 || int(p) >= 3 {
		return server.PriorityNormal
	}
	return p
}
