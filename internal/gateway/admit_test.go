package gateway

import (
	"errors"
	"testing"

	"castencil/internal/server"
)

func qj(tenant string, prio server.Priority) *Job {
	return &Job{Tenant: tenant, prio: prio, done: make(chan struct{})}
}

// drain pops jobs until the admitter empties, returning tenants in order.
func drainOrder(a *admitter) []string {
	var out []string
	for {
		j := a.next()
		if j == nil {
			return out
		}
		out = append(out, j.Tenant)
	}
}

func TestAdmitDRRWeights(t *testing.T) {
	// Weight 3 vs 1, both fully backlogged: each DRR round serves three of
	// "big" then one of "small" — bandwidth in proportion to weight.
	a := newAdmitter(16, map[string]int{"big": 3, "small": 1})
	for i := 0; i < 6; i++ {
		if err := a.enqueue(qj("big", server.PriorityNormal), false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := a.enqueue(qj("small", server.PriorityNormal), false); err != nil {
			t.Fatal(err)
		}
	}
	got := drainOrder(a)
	want := []string{"big", "big", "big", "small", "big", "big", "big", "small"}
	if len(got) != len(want) {
		t.Fatalf("drained %d jobs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DRR order[%d] = %s, want %s (full order %v)", i, got[i], want[i], got)
		}
	}
}

func TestAdmitDRRFairnessUnderBurst(t *testing.T) {
	// A huge burst from one tenant cannot starve another: within the first
	// few dispatches the competing tenant is served.
	a := newAdmitter(100, nil) // equal weights
	for i := 0; i < 50; i++ {
		if err := a.enqueue(qj("noisy", server.PriorityHigh), false); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.enqueue(qj("quiet", server.PriorityLow), false); err != nil {
		t.Fatal(err)
	}
	// Equal weights -> quantum 1 each: the second dispatch is quiet's,
	// despite noisy's 50-deep high-priority backlog.
	if j := a.next(); j.Tenant != "noisy" {
		t.Fatalf("first dispatch from %q, want noisy", j.Tenant)
	}
	if j := a.next(); j.Tenant != "quiet" {
		t.Fatalf("second dispatch from %q, want quiet (burst starved it)", j.Tenant)
	}
}

func TestAdmitPriorityWithinTenant(t *testing.T) {
	a := newAdmitter(16, nil)
	low := qj("t", server.PriorityLow)
	norm := qj("t", server.PriorityNormal)
	high := qj("t", server.PriorityHigh)
	for _, j := range []*Job{low, norm, high} {
		if err := a.enqueue(j, false); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range []*Job{high, norm, low} {
		if got := a.next(); got != want {
			t.Fatalf("dispatch %d: got prio %v, want %v", i, got.prio, want.prio)
		}
	}
}

func TestAdmitBound(t *testing.T) {
	a := newAdmitter(2, nil)
	if err := a.enqueue(qj("t", server.PriorityNormal), false); err != nil {
		t.Fatal(err)
	}
	if err := a.enqueue(qj("t", server.PriorityNormal), false); err != nil {
		t.Fatal(err)
	}
	err := a.enqueue(qj("t", server.PriorityNormal), false)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third enqueue: got %v, want ErrQueueFull", err)
	}
	// The bound is per tenant: another tenant still gets in.
	if err := a.enqueue(qj("other", server.PriorityNormal), false); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	// force bypasses the bound (waiter promotion path).
	if err := a.enqueue(qj("t", server.PriorityNormal), true); err != nil {
		t.Fatalf("forced enqueue rejected: %v", err)
	}
	if a.depth() != 4 {
		t.Fatalf("depth = %d, want 4", a.depth())
	}
}

func TestAdmitRemove(t *testing.T) {
	a := newAdmitter(8, nil)
	j1 := qj("t", server.PriorityNormal)
	j2 := qj("t", server.PriorityNormal)
	if err := a.enqueue(j1, false); err != nil {
		t.Fatal(err)
	}
	if err := a.enqueue(j2, false); err != nil {
		t.Fatal(err)
	}
	if !a.remove(j1) {
		t.Fatal("remove(j1) = false, want true")
	}
	if a.remove(j1) {
		t.Fatal("second remove(j1) = true, want false")
	}
	if got := a.next(); got != j2 {
		t.Fatal("next() after remove did not yield j2")
	}
	if a.next() != nil {
		t.Fatal("admitter not empty after draining")
	}
	if a.depth() != 0 {
		t.Fatalf("depth = %d, want 0", a.depth())
	}
}

func TestAdmitDrainAll(t *testing.T) {
	a := newAdmitter(8, nil)
	for i := 0; i < 3; i++ {
		if err := a.enqueue(qj("a", server.PriorityNormal), false); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.enqueue(qj("b", server.PriorityHigh), false); err != nil {
		t.Fatal(err)
	}
	drained := a.drainAll()
	if len(drained) != 4 {
		t.Fatalf("drained %d jobs, want 4", len(drained))
	}
	if a.depth() != 0 || a.next() != nil {
		t.Fatal("admitter not empty after drainAll")
	}
}
