package gateway

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"castencil/internal/server"
)

// View is the JSON snapshot of a gateway job: the stencild view shape plus
// the fleet dimensions (tenant, fingerprint, cache disposition, routing).
type View struct {
	ID          string       `json:"id"`
	State       server.State `json:"state"`
	Tenant      string       `json:"tenant"`
	Priority    string       `json:"priority"`
	Fingerprint string       `json:"fingerprint"`
	// Cache is the cache disposition: hit, miss, coalesced, bypass or
	// uncacheable.
	Cache      string `json:"cache"`
	Backend    string `json:"backend,omitempty"`
	BackendJob string `json:"backend_job,omitempty"`
	Retries    int    `json:"retries,omitempty"`
	Error      string `json:"error,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	TasksDone  int64   `json:"tasks_done"`
	TasksTotal int64   `json:"tasks_total"`
	Progress   float64 `json:"progress"`
}

// Snapshot captures the job's current state for serialization.
func (j *Job) Snapshot() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:          j.ID,
		State:       j.state,
		Tenant:      j.Tenant,
		Priority:    j.prio.String(),
		Fingerprint: j.Fingerprint,
		Cache:       j.cacheStatus,
		Backend:     j.backend,
		BackendJob:  j.backendID,
		Retries:     j.retries,
		SubmittedAt: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if bv := j.lastView; bv != nil {
		v.TasksDone, v.TasksTotal, v.Progress = bv.TasksDone, bv.TasksTotal, bv.Progress
	}
	if j.state == server.StateDone {
		v.Progress = 1
		if bv := j.lastView; bv != nil {
			v.TasksDone = bv.TasksTotal
		}
	}
	return v
}

// health is the gateway's own /healthz payload.
type health struct {
	Status          string `json:"status"`
	BackendsHealthy int    `json:"backends_healthy"`
	BackendsTotal   int    `json:"backends_total"`
	QueueDepth      int    `json:"queue_depth"`
	Inflight        int    `json:"inflight"`
	CacheEntries    int    `json:"cache_entries"`
	CacheBytes      int64  `json:"cache_bytes"`
}

// Handler returns the gateway's HTTP API, the same surface a stencild
// exposes so clients (and the smoke scripts) point at a fleet the way they
// point at one daemon:
//
//	POST /v1/jobs              submit a Spec -> 202 + gateway job view
//	GET  /v1/jobs              list gateway jobs
//	GET  /v1/jobs/{id}         one job's live view
//	GET  /v1/jobs/{id}/stream  NDJSON progress (proxied from the backend)
//	POST /v1/jobs/{id}/cancel  request cancellation
//	GET  /v1/jobs/{id}/result  terminal result (?grid=1 for the field data)
//	GET  /metrics              Prometheus text exposition (stencilgate_*)
//	GET  /healthz              status word + fleet health JSON
//
// Backpressure composes: a full tenant queue answers 429 + Retry-After at
// the gateway; backend 429/503s feed the failover loop instead of the
// client.
func Handler(g *Gateway) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec server.Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		j, err := g.Submit(spec)
		if err != nil {
			switch {
			case errors.Is(err, ErrQueueFull):
				w.Header().Set("Retry-After", "1")
				writeErr(w, http.StatusTooManyRequests, err)
			case errors.Is(err, ErrDraining):
				writeErr(w, http.StatusServiceUnavailable, err)
			default:
				writeErr(w, http.StatusBadRequest, err)
			}
			return
		}
		writeJSON(w, http.StatusAccepted, j.Snapshot())
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := g.Jobs()
		views := make([]View, len(jobs))
		for i, j := range jobs {
			views[i] = j.Snapshot()
		}
		writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := g.Get(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, ErrNotFound)
			return
		}
		writeJSON(w, http.StatusOK, j.Snapshot())
	})
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		if err := g.Cancel(r.PathValue("id")); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		j, _ := g.Get(r.PathValue("id"))
		writeJSON(w, http.StatusAccepted, j.Snapshot())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		j, ok := g.Get(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, ErrNotFound)
			return
		}
		switch j.State() {
		case server.StateDone:
		case server.StateFailed, server.StateCancelled:
			writeErr(w, http.StatusConflict, fmt.Errorf("gateway: job %s is %s: %v", j.ID, j.State(), j.Err()))
			return
		default:
			writeErr(w, http.StatusConflict, fmt.Errorf("gateway: job %s is %s, not terminal", j.ID, j.State()))
			return
		}
		// Serve the backend result verbatim (the cache holds it with the
		// grid data, fetched once at execution); strip the field bytes
		// unless the client asked for them, exactly as a stencild would.
		res := *j.Result()
		if r.URL.Query().Get("grid") == "" {
			res.GridData = ""
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		j, ok := g.Get(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, ErrNotFound)
			return
		}
		g.streamJob(w, r, j)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = g.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		healthy, total := g.Healthy()
		h := health{
			Status:          "ok",
			BackendsHealthy: healthy,
			BackendsTotal:   total,
		}
		switch {
		case g.Draining():
			h.Status = "draining"
		case healthy == 0:
			h.Status = "degraded"
		}
		g.mu.Lock()
		h.QueueDepth = g.adm.depth()
		h.Inflight = g.inflight
		h.CacheEntries = g.cache.len()
		h.CacheBytes = g.cache.size()
		g.mu.Unlock()
		status := http.StatusOK
		if h.Status != "ok" {
			status = http.StatusServiceUnavailable
		}
		w.WriteHeader(status)
		fmt.Fprintln(w, h.Status)
		fmt.Fprintf(w, "backends: %d/%d healthy\n", healthy, total)
		_ = json.NewEncoder(w).Encode(h)
	})
	return mux
}

// streamJob serves NDJSON progress: while the job executes on a backend its
// stream is proxied through line by line (the client sees the backend's
// live task counters, not a gateway approximation); the final line is
// always the gateway's own terminal snapshot, so failovers and cache hits
// stream coherently too.
func (g *Gateway) streamJob(w http.ResponseWriter, r *http.Request, j *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func() {
		_ = enc.Encode(j.Snapshot())
		if fl != nil {
			fl.Flush()
		}
	}
	emit()
	proxied := "" // backend job already streamed, never re-attach to the same one
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-j.Done():
			emit()
			return
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
		j.mu.Lock()
		addr, bid := j.backend, j.backendID
		j.mu.Unlock()
		if bid != "" && bid != proxied {
			proxied = bid
			g.proxyStream(w, r, fl, addr, bid)
			continue
		}
		emit()
	}
}

// proxyStream copies one backend job's NDJSON stream through to the client
// until it ends (terminal view or connection loss — either way the caller's
// loop resumes with gateway snapshots).
func (g *Gateway) proxyStream(w http.ResponseWriter, r *http.Request, fl http.Flusher, addr, bid string) {
	var b *backend
	for _, cand := range g.pool.backends {
		if cand.addr == addr {
			b = cand
			break
		}
	}
	if b == nil {
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), "GET", b.base+"/v1/jobs/"+bid+"/stream", nil)
	if err != nil {
		return
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		if _, err := w.Write(append(sc.Bytes(), '\n')); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
