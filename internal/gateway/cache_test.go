package gateway

import (
	"fmt"
	"testing"

	"castencil/internal/server"
)

func cres(sha string) *server.Result {
	return &server.Result{GridSHA256: sha}
}

func TestCacheEntryCap(t *testing.T) {
	c := newCache(2, 1<<20)
	c.put("a", cres("ra"), 10)
	c.put("b", cres("rb"), 10)
	if ev := c.put("c", cres("rc"), 10); ev != 1 {
		t.Fatalf("inserting past the entry cap evicted %d, want 1", ev)
	}
	// "a" was least recently used: gone. "b" and "c" live.
	if _, _, ok := c.get("a"); ok {
		t.Fatal("LRU entry a survived eviction")
	}
	for _, fp := range []string{"b", "c"} {
		if _, _, ok := c.get(fp); !ok {
			t.Fatalf("entry %s evicted, want resident", fp)
		}
	}
}

func TestCacheLRUPromotion(t *testing.T) {
	c := newCache(2, 1<<20)
	c.put("a", cres("ra"), 10)
	c.put("b", cres("rb"), 10)
	// Touch "a": now "b" is LRU and the next insert evicts it.
	if _, _, ok := c.get("a"); !ok {
		t.Fatal("entry a missing")
	}
	c.put("c", cres("rc"), 10)
	if _, _, ok := c.get("b"); ok {
		t.Fatal("promoted wrong entry: b survived, a should have")
	}
	if _, _, ok := c.get("a"); !ok {
		t.Fatal("recently-used entry a was evicted")
	}
}

func TestCacheByteCap(t *testing.T) {
	// 100-byte budget: three 40-byte entries force out the oldest.
	c := newCache(100, 100)
	c.put("a", cres("ra"), 40)
	c.put("b", cres("rb"), 40)
	if ev := c.put("c", cres("rc"), 40); ev != 1 {
		t.Fatalf("byte-cap insert evicted %d, want 1", ev)
	}
	if c.size() != 80 {
		t.Fatalf("cache holds %d bytes, want 80", c.size())
	}
	if _, _, ok := c.get("a"); ok {
		t.Fatal("oldest entry a survived the byte cap")
	}
}

func TestCacheOversizeRejected(t *testing.T) {
	c := newCache(8, 100)
	c.put("a", cres("ra"), 40)
	// An entry bigger than the whole budget is not admitted and does not
	// flush the resident set to make room.
	c.put("huge", cres("rh"), 101)
	if _, _, ok := c.get("huge"); ok {
		t.Fatal("oversize entry was admitted")
	}
	if _, _, ok := c.get("a"); !ok {
		t.Fatal("oversize insert evicted the resident set")
	}
	if c.len() != 1 || c.size() != 40 {
		t.Fatalf("cache = %d entries / %d bytes, want 1/40", c.len(), c.size())
	}
}

func TestCacheRefresh(t *testing.T) {
	c := newCache(8, 100)
	c.put("a", cres("old"), 40)
	c.put("a", cres("new"), 60)
	if c.len() != 1 || c.size() != 60 {
		t.Fatalf("after refresh: %d entries / %d bytes, want 1/60", c.len(), c.size())
	}
	res, size, ok := c.get("a")
	if !ok || res.GridSHA256 != "new" || size != 60 {
		t.Fatalf("refresh did not replace the entry: %+v size %d ok %v", res, size, ok)
	}
}

func TestCacheManyEvictions(t *testing.T) {
	c := newCache(4, 1<<20)
	for i := 0; i < 10; i++ {
		c.put(fmt.Sprintf("fp%d", i), cres("r"), 1)
	}
	if c.len() != 4 {
		t.Fatalf("cache holds %d entries, want 4", c.len())
	}
	// Only the four most recent remain.
	for i := 6; i < 10; i++ {
		if _, _, ok := c.get(fmt.Sprintf("fp%d", i)); !ok {
			t.Fatalf("recent entry fp%d missing", i)
		}
	}
}
