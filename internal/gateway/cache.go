package gateway

import (
	"castencil/internal/server"
)

// entry is one cached terminal result, an intrusive node of the LRU list.
type entry struct {
	fp         string
	res        *server.Result
	size       int64
	prev, next *entry
}

// cache is the content-addressed result store: fingerprint -> terminal
// result, bounded by both an entry count and a byte budget (the byte size
// of an entry is its marshaled result, grid data included, so the budget
// tracks real memory, not job counts). Eviction is strict LRU — a repeated
// fleet working set stays resident while one-off jobs age out. Methods
// require the gateway mutex; the cache itself has no lock because every
// operation is O(1) pointer surgery plus a map probe.
type cache struct {
	maxEntries int
	maxBytes   int64

	entries map[string]*entry
	head    *entry // most recently used
	tail    *entry // least recently used
	bytes   int64
}

func newCache(maxEntries int, maxBytes int64) *cache {
	return &cache{maxEntries: maxEntries, maxBytes: maxBytes, entries: make(map[string]*entry)}
}

// get returns the cached result for fp, promoting it to MRU.
func (c *cache) get(fp string) (*server.Result, int64, bool) {
	e, ok := c.entries[fp]
	if !ok {
		return nil, 0, false
	}
	c.unlink(e)
	c.push(e)
	return e.res, e.size, true
}

// put inserts (or refreshes) fp's result and evicts LRU entries until both
// caps hold again, returning how many entries were evicted. A result larger
// than the whole byte budget is not admitted at all (it would evict
// everything and then still not fit).
func (c *cache) put(fp string, res *server.Result, size int64) (evicted int) {
	if size > c.maxBytes {
		if e, ok := c.entries[fp]; ok {
			c.drop(e)
			evicted++
		}
		return evicted
	}
	if e, ok := c.entries[fp]; ok {
		c.bytes += size - e.size
		e.res, e.size = res, size
		c.unlink(e)
		c.push(e)
	} else {
		e = &entry{fp: fp, res: res, size: size}
		c.entries[fp] = e
		c.bytes += size
		c.push(e)
	}
	for (len(c.entries) > c.maxEntries || c.bytes > c.maxBytes) && c.tail != nil {
		c.drop(c.tail)
		evicted++
	}
	return evicted
}

func (c *cache) len() int     { return len(c.entries) }
func (c *cache) size() int64  { return c.bytes }

func (c *cache) push(e *entry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *cache) drop(e *entry) {
	c.unlink(e)
	delete(c.entries, e.fp)
	c.bytes -= e.size
}

// flight is one singleflight group: the leader executes, every identical
// concurrent submission rides along and completes with the leader's result.
type flight struct {
	leader  *Job
	waiters []*Job
}
