package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"castencil/internal/metrics"
	"castencil/internal/server"
)

// fleetBackend is one in-process stencild: manager + HTTP server.
type fleetBackend struct {
	mgr *server.Manager
	reg *metrics.Registry
	srv *httptest.Server
}

func (b *fleetBackend) submitted() int64 {
	n, _ := b.reg.CounterValue("stencild_jobs_submitted_total", nil)
	return n
}

func (b *fleetBackend) close() {
	b.srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = b.mgr.Shutdown(ctx)
}

func startBackend(t *testing.T, maxJobs, queue int) *fleetBackend {
	t.Helper()
	reg := metrics.NewRegistry()
	mgr := server.New(server.Config{MaxJobs: maxJobs, QueueSize: queue, Registry: reg})
	srv := httptest.NewServer(server.Handler(mgr))
	b := &fleetBackend{mgr: mgr, reg: reg, srv: srv}
	t.Cleanup(b.close)
	return b
}

func startGateway(t *testing.T, cfg Config, backends ...*fleetBackend) *Gateway {
	t.Helper()
	for _, b := range backends {
		cfg.Backends = append(cfg.Backends, b.srv.URL)
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 20 * time.Millisecond
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 5 * time.Millisecond
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 10 * time.Millisecond
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = g.Shutdown(ctx)
	})
	return g
}

// quickSpec finishes in milliseconds; slowSpec runs long enough to observe
// (and kill things) mid-flight.
func quickSpec(seed uint64) server.Spec {
	return server.Spec{Engine: "real", Variant: "ca", N: 64, Tile: 16, Steps: 6, StepSize: 3, Seed: seed, Workers: 1}
}

func slowSpec(seed uint64) server.Spec {
	return server.Spec{Engine: "real", Variant: "ca", N: 256, Tile: 32, Steps: 400, StepSize: 8, Seed: seed, Workers: 1}
}

func waitDone(t *testing.T, j *Job) *server.Result {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish (state %s)", j.ID, j.State())
	}
	if j.State() != server.StateDone {
		t.Fatalf("job %s = %s (err %v), want done", j.ID, j.State(), j.Err())
	}
	res := j.Result()
	if res == nil {
		t.Fatalf("job %s done with nil result", j.ID)
	}
	return res
}

func TestGatewayCacheHitServedWithoutBackend(t *testing.T) {
	b := startBackend(t, 2, 16)
	g := startGateway(t, Config{}, b)

	j1, err := g.Submit(quickSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	r1 := waitDone(t, j1)
	if j1.CacheStatus() != "miss" {
		t.Fatalf("first job cache status %q, want miss", j1.CacheStatus())
	}
	if r1.GridSHA256 == "" || r1.GridData == "" {
		t.Fatal("backend result missing grid sha or data")
	}
	before := b.submitted()

	// Identical spec, even with different execution-only knobs: a cache
	// hit, served without touching the backend, bitwise-equal result.
	respec := quickSpec(7)
	respec.Workers = 2
	respec.Sched = "lifo"
	j2, err := g.Submit(respec)
	if err != nil {
		t.Fatal(err)
	}
	r2 := waitDone(t, j2)
	if j2.CacheStatus() != "hit" {
		t.Fatalf("repeat cache status %q, want hit", j2.CacheStatus())
	}
	if b.submitted() != before {
		t.Fatalf("cache hit touched the backend: %d submissions, want %d", b.submitted(), before)
	}
	if r2.GridSHA256 != r1.GridSHA256 || r2.GridData != r1.GridData {
		t.Fatal("cache hit is not bitwise-equal to the original result")
	}
	if hits, _ := g.Metrics().CounterValue("stencilgate_cache_hits_total", nil); hits != 1 {
		t.Fatalf("stencilgate_cache_hits_total = %d, want 1", hits)
	}
}

func TestGatewayDifferentSpecMisses(t *testing.T) {
	b := startBackend(t, 2, 16)
	g := startGateway(t, Config{}, b)

	r1 := waitDone(t, mustSubmit(t, g, quickSpec(7)))
	r2 := waitDone(t, mustSubmit(t, g, quickSpec(8))) // different seed: different content
	if r1.GridSHA256 == r2.GridSHA256 {
		t.Fatal("different seeds produced the same grid sha (suspicious cache collision)")
	}
	if b.submitted() != 2 {
		t.Fatalf("2 distinct specs made %d backend submissions, want 2", b.submitted())
	}
}

func mustSubmit(t *testing.T, g *Gateway, spec server.Spec) *Job {
	t.Helper()
	j, err := g.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestGatewaySingleflightExecutesOnce(t *testing.T) {
	b := startBackend(t, 2, 16)
	g := startGateway(t, Config{}, b)

	// Identical concurrent submissions: one leader executes, the rest ride
	// along and land the same (bitwise-equal) result.
	leader := mustSubmit(t, g, quickSpec(11))
	var waiters []*Job
	for i := 0; i < 4; i++ {
		waiters = append(waiters, mustSubmit(t, g, quickSpec(11)))
	}
	rl := waitDone(t, leader)
	for _, w := range waiters {
		rw := waitDone(t, w)
		if rw.GridSHA256 != rl.GridSHA256 {
			t.Fatal("singleflight waiter got a different grid sha than the leader")
		}
		if got := w.CacheStatus(); got != "coalesced" && got != "hit" {
			t.Fatalf("waiter cache status %q, want coalesced (or hit if the leader already landed)", got)
		}
	}
	if b.submitted() != 1 {
		t.Fatalf("singleflight made %d backend submissions, want 1", b.submitted())
	}
	merged, _ := g.Metrics().CounterValue("stencilgate_singleflight_merged_total", nil)
	hits, _ := g.Metrics().CounterValue("stencilgate_cache_hits_total", nil)
	if merged+hits != 4 {
		t.Fatalf("merged(%d) + hits(%d) = %d, want 4", merged, hits, merged+hits)
	}
}

func TestGatewayBypassForcesReexecution(t *testing.T) {
	b := startBackend(t, 2, 16)
	g := startGateway(t, Config{}, b)

	r1 := waitDone(t, mustSubmit(t, g, quickSpec(13)))
	before := b.submitted()

	spec := quickSpec(13)
	spec.Cache = "bypass"
	j := mustSubmit(t, g, spec)
	r2 := waitDone(t, j)
	if j.CacheStatus() != "bypass" {
		t.Fatalf("cache status %q, want bypass", j.CacheStatus())
	}
	if b.submitted() != before+1 {
		t.Fatalf("bypass did not re-execute: %d submissions, want %d", b.submitted(), before+1)
	}
	// Determinism: the re-execution reproduces the grid bit for bit.
	if r2.GridSHA256 != r1.GridSHA256 {
		t.Fatal("bypass re-execution produced a different grid sha")
	}
	// The bypass refreshed the cache entry: a plain repeat hits.
	j3 := mustSubmit(t, g, quickSpec(13))
	waitDone(t, j3)
	if j3.CacheStatus() != "hit" {
		t.Fatalf("post-bypass repeat status %q, want hit", j3.CacheStatus())
	}
}

func TestGatewayCacheOff(t *testing.T) {
	b := startBackend(t, 2, 16)
	g := startGateway(t, Config{CacheOff: true}, b)

	waitDone(t, mustSubmit(t, g, quickSpec(17)))
	j := mustSubmit(t, g, quickSpec(17))
	waitDone(t, j)
	if j.CacheStatus() != "uncacheable" {
		t.Fatalf("cache-off status %q, want uncacheable", j.CacheStatus())
	}
	if b.submitted() != 2 {
		t.Fatalf("cache-off gateway made %d submissions, want 2", b.submitted())
	}
}

func TestGatewayTenantBackpressure(t *testing.T) {
	b := startBackend(t, 1, 16)
	g := startGateway(t, Config{TenantQueue: 1, MaxInflight: 1}, b)

	// Occupy the single dispatch slot with a long job, then fill tenant
	// "busy"'s queue of one. The third submission bounces; another tenant
	// still gets in.
	spec := slowSpec(1)
	spec.Tenant = "busy"
	running := mustSubmit(t, g, spec)
	deadline := time.Now().Add(5 * time.Second)
	for running.State() == server.StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("first job never dispatched")
		}
		time.Sleep(time.Millisecond)
	}
	spec2 := slowSpec(2)
	spec2.Tenant = "busy"
	mustSubmit(t, g, spec2)
	spec3 := slowSpec(3)
	spec3.Tenant = "busy"
	if _, err := g.Submit(spec3); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull tenant queue: got %v, want ErrQueueFull", err)
	}
	spec4 := slowSpec(4)
	spec4.Tenant = "other"
	mustSubmit(t, g, spec4)
	rej, _ := g.Metrics().CounterValue("stencilgate_jobs_rejected_total", metrics.Labels{"tenant": "busy"})
	if rej != 1 {
		t.Fatalf("stencilgate_jobs_rejected_total{tenant=busy} = %d, want 1", rej)
	}
}

func TestGatewayFailoverMidJob(t *testing.T) {
	// Two backends; kill whichever one the job lands on mid-run. The
	// gateway fails the job over to the survivor and the final grid is
	// bitwise-identical to an undisturbed single-backend run.
	ref := startBackend(t, 1, 16)
	gref := startGateway(t, Config{}, ref)
	want := waitDone(t, mustSubmit(t, gref, slowSpec(21)))

	b1 := startBackend(t, 1, 16)
	b2 := startBackend(t, 1, 16)
	g := startGateway(t, Config{Retries: 4}, b1, b2)

	j := mustSubmit(t, g, slowSpec(21))
	deadline := time.Now().Add(5 * time.Second)
	var victim *fleetBackend
	for victim == nil {
		if time.Now().After(deadline) {
			t.Fatal("job never landed on a backend")
		}
		snap := j.Snapshot()
		if snap.BackendJob != "" {
			for _, b := range []*fleetBackend{b1, b2} {
				if strings.Contains(b.srv.URL, snap.Backend) {
					victim = b
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	victim.srv.CloseClientConnections()
	victim.srv.Close()

	got := waitDone(t, j)
	if got.GridSHA256 != want.GridSHA256 {
		t.Fatalf("failover grid sha %s != reference %s", got.GridSHA256, want.GridSHA256)
	}
	fo, _ := g.Metrics().CounterValue("stencilgate_failovers_total", nil)
	if fo == 0 {
		t.Fatal("stencilgate_failovers_total = 0, want > 0")
	}
}

func TestGatewayCancelQueued(t *testing.T) {
	b := startBackend(t, 1, 16)
	g := startGateway(t, Config{MaxInflight: 1}, b)

	running := mustSubmit(t, g, slowSpec(31))
	deadline := time.Now().Add(5 * time.Second)
	for running.State() == server.StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("first job never dispatched")
		}
		time.Sleep(time.Millisecond)
	}
	queued := mustSubmit(t, g, slowSpec(32))
	if err := g.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case <-queued.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled queued job never terminal")
	}
	if queued.State() != server.StateCancelled {
		t.Fatalf("state %s, want cancelled", queued.State())
	}
	if err := g.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case <-running.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled running job never terminal")
	}
	if running.State() != server.StateCancelled {
		t.Fatalf("running job state %s, want cancelled", running.State())
	}
}

func TestGatewayHTTPSurface(t *testing.T) {
	b := startBackend(t, 2, 16)
	g := startGateway(t, Config{}, b)
	front := httptest.NewServer(Handler(g))
	t.Cleanup(front.Close)

	// Submit through HTTP.
	body := `{"engine":"real","variant":"ca","n":64,"tile":16,"steps":6,"step_size":3,"seed":7,"workers":1,"tenant":"web"}`
	resp, err := http.Post(front.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	if v.Tenant != "web" || v.Fingerprint == "" {
		t.Fatalf("view missing fleet fields: %+v", v)
	}

	// Stream until terminal: last line is the gateway terminal snapshot.
	sresp, err := http.Get(front.URL + "/v1/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var last string
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			last = sc.Text()
		}
	}
	var terminal View
	if err := json.Unmarshal([]byte(last), &terminal); err != nil {
		t.Fatalf("last stream line not a gateway view: %v (%q)", err, last)
	}
	if terminal.State != server.StateDone {
		t.Fatalf("stream ended at state %s, want done", terminal.State)
	}

	// Result without ?grid=1 has the sha but not the data.
	rresp, err := http.Get(front.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res server.Result
	if err := json.NewDecoder(rresp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if res.GridSHA256 == "" || res.GridData != "" {
		t.Fatalf("result: sha %q data %d bytes; want sha set, data stripped", res.GridSHA256, len(res.GridData))
	}

	// Healthz: status word first, JSON payload last.
	hresp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody := make([]byte, 4096)
	n, _ := hresp.Body.Read(hbody)
	hresp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(hbody[:n])), "\n")
	if lines[0] != "ok" {
		t.Fatalf("healthz first line %q, want ok", lines[0])
	}
	var h health
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &h); err != nil {
		t.Fatalf("healthz last line not JSON: %v", err)
	}
	if h.BackendsTotal != 1 {
		t.Fatalf("healthz backends_total = %d, want 1", h.BackendsTotal)
	}

	// Unknown spec field -> 400 at the gateway, no backend involved.
	bresp, err := http.Post(front.URL+"/v1/jobs", "application/json", strings.NewReader(`{"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus spec status %d, want 400", bresp.StatusCode)
	}
}

func TestGatewayRejectsDistributedSpecs(t *testing.T) {
	b := startBackend(t, 1, 4)
	g := startGateway(t, Config{}, b)
	spec := quickSpec(1)
	spec.Ranks = 2
	if _, err := g.Submit(spec); err == nil {
		t.Fatal("gateway accepted a ranks>0 spec")
	}
}

func TestGatewayShutdownDrains(t *testing.T) {
	b := startBackend(t, 1, 16)
	g := startGateway(t, Config{MaxInflight: 1}, b)
	running := mustSubmit(t, g, quickSpec(41))
	queued := mustSubmit(t, g, slowSpec(42))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if !running.State().Terminal() || !queued.State().Terminal() {
		t.Fatalf("jobs not terminal after shutdown: %s / %s", running.State(), queued.State())
	}
	if _, err := g.Submit(quickSpec(43)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-shutdown submit: got %v, want ErrDraining", err)
	}
}
