package desim

import (
	"time"

	"castencil/internal/fault"
	"castencil/internal/ptg"
	"castencil/internal/trace"
)

// This file mirrors the real runtime's fault-injection and recovery layer
// in virtual time. Message-level decisions (drop / duplicate / delay /
// reorder) are pure functions of the fault plan's seed and the message's
// graph identity — the same fault.MsgID the real engine hashes — so a
// simulated run injects the byte-identical schedule a real run would see.
//
// Recovery is modeled as the idealized limit of the real transport: acks
// are free and instantaneous (the real engine excludes them from wire
// accounting for exactly this reason), so a retransmission fires exactly
// one backed-off ack timeout after each dropped attempt and every injected
// drop costs one timeout and one retransmit — the identity the real
// engine's tests pin under a generous timeout. A message whose ack would
// arrive past the recovery deadline (a dropped-forever lane or a
// paused-past-deadline receiver) fails the simulation with the same
// structured *fault.Report the real engine returns.

// faultInit validates and arms the fault plan, mirroring runtime.Run's
// auto-enable rule: plans that drop, duplicate or pause require the
// recovery machinery, so it comes on by default.
func (s *sim) faultInit() error {
	opts := &s.opts
	if err := opts.Fault.Validate(); err != nil {
		return err
	}
	if opts.Recovery == nil && opts.Fault.NeedsRecovery() {
		opts.Recovery = fault.DefaultRecovery()
	}
	if opts.Fault.Active() {
		s.fplan = opts.Fault
	}
	if opts.Recovery != nil {
		s.reliable = true
		s.rec = opts.Recovery.WithDefaults()
	}
	if s.fplan != nil {
		n := s.g.NumNodes
		s.coreSeq = make([][]int, n)
		for i := range s.coreSeq {
			s.coreSeq[i] = make([]int, opts.Cores)
		}
		s.outSeq = make([]int, n)
		s.nodeDone = make([]int, n)
		s.pauseUntil = make([]time.Duration, n)
	}
	return nil
}

// traceFault mirrors the real engine's fault events: Class "fault:<what>",
// I/J the node pair, Kind ptg.KindFault on the comm pseudo-core.
func (s *sim) traceFault(what string, id fault.MsgID, at time.Duration, span time.Duration, bytes int) {
	if s.opts.Trace == nil {
		return
	}
	if s.opts.TraceNode >= 0 && s.opts.TraceNode != id.Src {
		return
	}
	s.opts.Trace.Record(trace.Event{
		ID:   ptg.TaskID{Class: "fault:" + what, I: int(id.Src), J: int(id.Dst)},
		Kind: ptg.KindFault, Node: id.Src, Core: int32(s.opts.Cores),
		Start: at, End: at + span, Msgs: 1, Bytes: bytes,
	})
}

// slowCoreExtra mirrors the real engine's per-(node,core) slow-core
// counters: the plan prices the nth task the core executes.
func (s *sim) slowCoreExtra(node, core int32) time.Duration {
	if s.fplan == nil || len(s.fplan.SlowCores) == 0 {
		return 0
	}
	seq := s.coreSeq[node][core]
	s.coreSeq[node][core]++
	return s.fplan.CoreExtra(node, core, seq)
}

// notePause arms a whole-node pause when the node's completed-task count
// crosses a plan threshold: subsequent task starts and outgoing sends wait
// out the window, and the node's communication thread goes dark (which is
// what trips a sender's recovery deadline when the pause outlasts it).
func (s *sim) notePause(node int32, at time.Duration) {
	if s.fplan == nil {
		return
	}
	s.nodeDone[node]++
	if d := s.fplan.PauseAt(node, s.nodeDone[node]); d > 0 {
		until := at + d
		if until > s.pauseUntil[node] {
			s.pauseUntil[node] = until
		}
		if s.opts.Fabric != nil {
			s.opts.Fabric.Block(int(node), until)
		}
		s.traceFault("pause", fault.MsgID{Src: node, Dst: node}, at, d, 0)
	}
}

// pausedUntil clamps a time to the end of a node's pause window.
func (s *sim) pausedUntil(node int32, at time.Duration) time.Duration {
	if s.fplan != nil && s.pauseUntil[node] > at {
		return s.pauseUntil[node]
	}
	return at
}

// sendCross prices one cross-node logical transfer through the fault plan
// and the fabric, returning the virtual arrival time of its first
// successfully delivered copy. segments > 0 marks a coalesced bundle.
// Returns ok=false after recording a *fault.Report in s.ferr when the
// transfer cannot be acknowledged within the recovery deadline.
func (s *sim) sendCross(id fault.MsgID, bytes, segments int, ready time.Duration) (time.Duration, bool) {
	f := s.opts.Fabric
	src := int(id.Src)
	if s.fplan != nil {
		// The comm stall delays the node's nth outgoing message (and, by
		// NIC serialization, everything queued behind it).
		nth := s.outSeq[src]
		s.outSeq[src]++
		if st := s.fplan.StallAt(id.Src, nth); st > 0 {
			base := f.Free(src)
			if ready > base {
				base = ready
			}
			f.Block(src, base+st)
			s.traceFault("stall", id, base, st, bytes)
		}
	}
	send := func(at time.Duration) time.Duration {
		if segments > 0 {
			return f.SendBundle(src, int(id.Dst), bytes, segments, at)
		}
		return f.Send(src, int(id.Dst), bytes, at)
	}
	if s.fplan == nil {
		return send(ready), true
	}
	attempt := int32(0)
	depart := ready
	for {
		if s.fplan.ShouldDrop(id, attempt) {
			s.fstats.Dropped++
			s.traceFault("drop", id, depart, 0, bytes)
			f.SendDropped(src, bytes, depart)
			// The ack timeout for this attempt expires unanswered.
			s.fstats.Timeouts++
			timeout := s.rec.TimeoutAt(attempt)
			if waited := depart + timeout - ready; waited >= s.rec.Deadline {
				s.ferr = &fault.Report{
					ID: id, Seq: uint64(attempt) + 1, Attempts: attempt + 1,
					Waited: waited, Deadline: s.rec.Deadline, Stats: s.fstats,
				}
				return 0, false
			}
			depart += timeout
			attempt++
			s.fstats.Retransmits++
			s.traceFault("retransmit", id, depart, 0, bytes)
			continue
		}
		delay := s.fplan.DelayOf(id, attempt)
		if delay > 0 {
			s.fstats.Delayed++
			s.traceFault("delay", id, depart, delay, bytes)
		}
		arrive := send(depart) + delay
		if s.fplan.ShouldDup(id, attempt) {
			// The duplicate is extra physical traffic the receiver
			// deduplicates on arrival; it never satisfies a dependency.
			s.fstats.Duplicated++
			s.fstats.DupDrops++
			s.traceFault("dup", id, depart, 0, bytes)
			f.Send(src, int(id.Dst), bytes, depart)
		}
		if s.reliable {
			// The delivered copy's ack is instant; if even that lands past
			// the deadline (a paused receiver sat on the transfer), the
			// sender has already degraded gracefully.
			if waited := arrive - ready; waited >= s.rec.Deadline {
				s.traceFault("deadline", id, arrive, 0, bytes)
				s.ferr = &fault.Report{
					ID: id, Seq: uint64(attempt) + 1, Attempts: attempt + 1,
					Waited: waited, Deadline: s.rec.Deadline, Stats: s.fstats,
				}
				return 0, false
			}
		}
		return arrive, true
	}
}
