package desim

import (
	"testing"
	"time"

	"castencil/internal/machine"
	"castencil/internal/netsim"
	"castencil/internal/ptg"
	"castencil/internal/trace"
)

func tid(class string, i, j, k int) ptg.TaskID { return ptg.TaskID{Class: class, I: i, J: j, K: k} }

func constCost(d time.Duration) CostFn {
	return func(*ptg.Task) time.Duration { return d }
}

func chainGraph(t *testing.T, length, nodes int, bytes int) *ptg.Graph {
	t.Helper()
	b := ptg.NewBuilder(nodes)
	for i := 0; i < length; i++ {
		if _, err := b.AddTask(ptg.Task{ID: tid("t", i, 0, 0), Node: int32(i % nodes)}); err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			d := ptg.Dep{}
			if (i-1)%nodes != i%nodes {
				d.Bytes = bytes
			}
			if err := b.AddDep(tid("t", i, 0, 0), tid("t", i-1, 0, 0), d); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestChainMakespanLocal(t *testing.T) {
	g := chainGraph(t, 10, 1, 0)
	res, err := Run(g, Options{Cores: 4, Cost: constCost(time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 10*time.Millisecond {
		t.Errorf("makespan = %v, want 10ms (serial chain)", res.Makespan)
	}
	if res.Tasks != 10 {
		t.Errorf("tasks = %d", res.Tasks)
	}
}

func TestParallelTasksUseAllCores(t *testing.T) {
	// 8 independent tasks, 4 cores => two waves.
	b := ptg.NewBuilder(1)
	for i := 0; i < 8; i++ {
		b.AddTask(ptg.Task{ID: tid("t", i, 0, 0), Node: 0})
	}
	g, _ := b.Build()
	res, err := Run(g, Options{Cores: 4, Cost: constCost(time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 2*time.Millisecond {
		t.Errorf("makespan = %v, want 2ms", res.Makespan)
	}
	if res.BusyTime[0] != 8*time.Millisecond {
		t.Errorf("busy = %v, want 8ms", res.BusyTime[0])
	}
	if occ := res.Occupancy(0, 4); occ != 1 {
		t.Errorf("occupancy = %v, want 1", occ)
	}
}

func TestCoreContentionSerializes(t *testing.T) {
	b := ptg.NewBuilder(1)
	for i := 0; i < 5; i++ {
		b.AddTask(ptg.Task{ID: tid("t", i, 0, 0), Node: 0})
	}
	g, _ := b.Build()
	res, err := Run(g, Options{Cores: 1, Cost: constCost(2 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 10*time.Millisecond {
		t.Errorf("makespan = %v, want 10ms on one core", res.Makespan)
	}
}

func TestCrossNodeChainIncludesTransfer(t *testing.T) {
	net := machine.NaCL().Net
	fabric := netsim.NewFabric(net, 2)
	g := chainGraph(t, 2, 2, 1<<20)
	res, err := Run(g, Options{Cores: 1, Cost: constCost(time.Millisecond), Fabric: fabric})
	if err != nil {
		t.Fatal(err)
	}
	transfer := 2*fabric.Serialization(1<<20) + net.Latency
	want := 2*time.Millisecond + transfer
	if res.Makespan != want {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
	if res.Messages != 1 || res.BytesSent != 1<<20 {
		t.Errorf("messages/bytes = %d/%d", res.Messages, res.BytesSent)
	}
}

func TestOverlapHidesCommunication(t *testing.T) {
	// Node 0: a producer sends to node 1 and then continues with a long
	// local chain. Node 1's consumer waits for the message. With enough
	// local work, communication is fully hidden: makespan equals the local
	// chain length.
	b := ptg.NewBuilder(2)
	b.AddTask(ptg.Task{ID: tid("p", 0, 0, 0), Node: 0})
	for i := 1; i <= 10; i++ {
		b.AddTask(ptg.Task{ID: tid("w", i, 0, 0), Node: 0})
		prev := tid("p", 0, 0, 0)
		if i > 1 {
			prev = tid("w", i-1, 0, 0)
		}
		b.AddDep(tid("w", i, 0, 0), prev, ptg.Dep{})
	}
	b.AddTask(ptg.Task{ID: tid("c", 0, 0, 0), Node: 1})
	b.AddDep(tid("c", 0, 0, 0), tid("p", 0, 0, 0), ptg.Dep{Bytes: 4096})
	g, _ := b.Build()
	fabric := netsim.NewFabric(machine.NaCL().Net, 2)
	res, err := Run(g, Options{Cores: 2, Cost: constCost(time.Millisecond), Fabric: fabric})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 11*time.Millisecond {
		t.Errorf("makespan = %v, want 11ms (comm fully overlapped)", res.Makespan)
	}
}

func TestPriorityPolicyOrdersWaiters(t *testing.T) {
	// Single core, a root task, then two waiters with different priority:
	// high priority runs first under Priority, insertion order under FIFO.
	build := func() *ptg.Graph {
		b := ptg.NewBuilder(1)
		b.AddTask(ptg.Task{ID: tid("root", 0, 0, 0), Node: 0})
		b.AddTask(ptg.Task{ID: tid("low", 0, 0, 0), Node: 0, Priority: 1})
		b.AddTask(ptg.Task{ID: tid("high", 0, 0, 0), Node: 0, Priority: 9})
		b.AddDep(tid("low", 0, 0, 0), tid("root", 0, 0, 0), ptg.Dep{})
		b.AddDep(tid("high", 0, 0, 0), tid("root", 0, 0, 0), ptg.Dep{})
		g, _ := b.Build()
		return g
	}
	order := func(policy Policy) []string {
		tr := trace.New()
		_, err := Run(build(), Options{Cores: 1, Cost: constCost(time.Millisecond), Policy: policy, Trace: tr, TraceNode: -1})
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, e := range tr.Events() {
			names = append(names, e.ID.Class)
		}
		return names
	}
	if got := order(Priority); got[1] != "high" {
		t.Errorf("priority order = %v", got)
	}
	if got := order(FIFO); got[1] != "low" {
		t.Errorf("fifo order = %v (low was enqueued first)", got)
	}
}

func TestDeterminism(t *testing.T) {
	g := chainGraph(t, 50, 4, 1024)
	run := func() time.Duration {
		fabric := netsim.NewFabric(machine.Stampede2().Net, 4)
		res, err := Run(g, Options{Cores: 3, Cost: constCost(123 * time.Microsecond), Fabric: fabric})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("non-deterministic makespan: %v vs %v", a, b)
	}
}

func TestTraceNodeFilter(t *testing.T) {
	g := chainGraph(t, 10, 2, 64)
	tr := trace.New()
	fabric := netsim.NewFabric(machine.NaCL().Net, 2)
	_, err := Run(g, Options{Cores: 1, Cost: constCost(time.Millisecond), Fabric: fabric, Trace: tr, TraceNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5 {
		t.Errorf("trace has %d events, want 5 (node 1 only)", tr.Len())
	}
	for _, e := range tr.Events() {
		if e.Node != 1 {
			t.Errorf("event from node %d leaked into filtered trace", e.Node)
		}
	}
}

func TestValidation(t *testing.T) {
	g := chainGraph(t, 3, 1, 0)
	if _, err := Run(g, Options{Cores: 0, Cost: constCost(1)}); err == nil {
		t.Error("zero cores must be rejected")
	}
	if _, err := Run(g, Options{Cores: 1}); err == nil {
		t.Error("missing cost fn must be rejected")
	}
	gc := chainGraph(t, 3, 2, 8)
	if _, err := Run(gc, Options{Cores: 1, Cost: constCost(1)}); err == nil {
		t.Error("cross-node graph without fabric must be rejected")
	}
	small := netsim.NewFabric(machine.NaCL().Net, 1)
	if _, err := Run(gc, Options{Cores: 1, Cost: constCost(1), Fabric: small}); err == nil {
		t.Error("undersized fabric must be rejected")
	}
}

func TestNegativeCostClamped(t *testing.T) {
	g := chainGraph(t, 3, 1, 0)
	res, err := Run(g, Options{Cores: 1, Cost: constCost(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 {
		t.Errorf("makespan = %v, want 0", res.Makespan)
	}
}

func TestBusyTimeAndOccupancy(t *testing.T) {
	// 6 independent 1ms tasks on 3 cores: busy 6ms, makespan 2ms,
	// occupancy 1.0.
	b := ptg.NewBuilder(1)
	for i := 0; i < 6; i++ {
		b.AddTask(ptg.Task{ID: tid("t", i, 0, 0), Node: 0})
	}
	g, _ := b.Build()
	res, err := Run(g, Options{Cores: 3, Cost: constCost(time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if res.BusyTime[0] != 6*time.Millisecond {
		t.Errorf("busy = %v", res.BusyTime[0])
	}
	if occ := res.Occupancy(0, 3); occ != 1 {
		t.Errorf("occupancy = %v", occ)
	}
	if occ := res.Occupancy(0, 0); occ != 0 {
		t.Errorf("zero-core occupancy = %v", occ)
	}
}

func TestWaitQueueFIFOAmongEqualPriorities(t *testing.T) {
	// Priority policy with equal priorities must preserve ready order.
	b := ptg.NewBuilder(1)
	b.AddTask(ptg.Task{ID: tid("root", 0, 0, 0), Node: 0})
	for i := 0; i < 4; i++ {
		b.AddTask(ptg.Task{ID: tid("w", i, 0, 0), Node: 0, Priority: 5})
		b.AddDep(tid("w", i, 0, 0), tid("root", 0, 0, 0), ptg.Dep{})
	}
	g, _ := b.Build()
	tr := trace.New()
	if _, err := Run(g, Options{Cores: 1, Cost: constCost(time.Millisecond), Policy: Priority, Trace: tr, TraceNode: -1}); err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	for i := 1; i < len(events); i++ {
		if events[i].ID.Class == "w" && events[i-1].ID.Class == "w" {
			if events[i].ID.I < events[i-1].ID.I {
				t.Errorf("equal-priority tasks reordered: %v after %v", events[i].ID, events[i-1].ID)
			}
		}
	}
}
