package desim

import (
	"context"
	"errors"
	"testing"
	"time"

	"castencil/internal/ptg"
)

func TestSimContextCancelBeforeStart(t *testing.T) {
	g := chainGraph(t, 10, 1, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(g, Options{Cores: 1, Cost: constCost(time.Millisecond), Ctx: ctx})
	var ce *ptg.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *ptg.CancelError", err)
	}
	if ce.Engine != "desim" || ce.Done != 0 || ce.Total != 10 {
		t.Errorf("cancel report = %+v", ce)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not unwrap to context.Canceled", err)
	}
}

func TestSimContextCancelMidReplay(t *testing.T) {
	// A long chain replays tens of thousands of events; cancel from another
	// goroutine once the loop is running. The cost function doubles as the
	// "loop is alive" signal so the cancel always lands mid-replay.
	g := chainGraph(t, 50_000, 1, 0)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	opened := false
	cost := func(*ptg.Task) time.Duration {
		if !opened {
			opened = true
			close(started)
		}
		// Stall the single-threaded loop a touch so the cancel goroutine
		// always wins the race against replay completion.
		time.Sleep(10 * time.Microsecond)
		return time.Millisecond
	}
	go func() {
		<-started
		cancel()
	}()
	_, err := Run(g, Options{Cores: 1, Cost: cost, Ctx: ctx})
	var ce *ptg.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *ptg.CancelError", err)
	}
	if ce.Done >= ce.Total {
		t.Errorf("cancelled replay claims %d of %d tasks", ce.Done, ce.Total)
	}
}

func TestSimProgressCallback(t *testing.T) {
	g := chainGraph(t, 300, 1, 0)
	var calls int
	var last int64
	res, err := Run(g, Options{
		Cores: 1, Cost: constCost(time.Microsecond),
		Ctx:        context.Background(),
		OnProgress: func(done, total int64) { calls++; last = done },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 300 {
		t.Fatalf("tasks = %d", res.Tasks)
	}
	if calls == 0 || last != 300 {
		t.Errorf("progress: %d calls, last %d (want final 300)", calls, last)
	}
}
