// Package desim replays a ptg.Graph in virtual time: tasks occupy compute
// cores for a model-derived duration and cross-node dependencies occupy NICs
// and the wire through a netsim.Fabric. The result is a deterministic
// makespan for a given machine model — the engine behind every performance
// figure regenerated from the paper (the real cluster is simulated per the
// substitution rules in DESIGN.md).
//
// The simulation is an exact resource-constrained list scheduling: a task
// starts the moment all its inputs are present on its node AND a core is
// idle; cores are released at task end; messages leave on the producer
// node's NIC in completion order (the dedicated communication thread of the
// paper's PaRSEC configuration).
package desim

import (
	"container/heap"
	"context"
	"fmt"
	"time"

	"castencil/internal/fault"
	"castencil/internal/netsim"
	"castencil/internal/ptg"
	"castencil/internal/trace"
)

// CostFn prices one task in compute time.
type CostFn func(t *ptg.Task) time.Duration

// Options configures a simulation.
type Options struct {
	// Cores is the number of compute cores per node (the machine's
	// CoresPerNode minus the communication thread).
	Cores int
	// Cost prices each task.
	Cost CostFn
	// Fabric models the interconnect. Required when the graph has
	// cross-node dependencies.
	Fabric *netsim.Fabric
	// Policy orders the per-node wait queue when cores are oversubscribed.
	Policy Policy
	// Trace, when non-nil, receives an event per task with virtual times.
	// TraceNode limits collection to one node (<0 = all nodes); traces of
	// large runs are expensive.
	Trace     *trace.Trace
	TraceNode int32
	// Coalesce selects halo-bundle aggregation, mirroring the real
	// runtime: all cross-node payloads sharing a (src node, dst node,
	// epoch) triple travel as one wire message, costing one NIC occupancy
	// per side and one wire latency instead of one per dependency.
	// CoalesceStep fails the run when the graph does not admit a
	// deadlock-free bundle plan; CoalesceAuto silently falls back to
	// point-to-point delivery.
	Coalesce ptg.CoalesceMode
	// Fault, when non-nil, injects the plan's deterministic fault schedule
	// into the virtual wire. Decisions are keyed by graph identity exactly
	// as in the real runtime, so both engines inject byte-identical
	// schedules for the same plan. Plans that drop, duplicate or pause
	// auto-enable Recovery with the default policy when it is nil.
	Fault *fault.Plan
	// Recovery configures the modeled reliable transport: each injected
	// drop costs one backed-off ack timeout before its retransmission, and
	// a transfer unacknowledged past Deadline fails the simulation with a
	// structured *fault.Report (graceful degradation, mirroring the real
	// engine). Acks are modeled free, as the real engine accounts them.
	Recovery *fault.Recovery
	// Ctx, when non-nil, bounds the simulation in wall-clock time: the
	// event loop polls it every few hundred events and returns a
	// *ptg.CancelError (wrapping the context error) when it is cancelled
	// or past its deadline — mirroring the real engine's contract.
	Ctx context.Context
	// OnProgress, when non-nil, is called with (completed, total) task
	// counts as the replay advances — at least once at completion and
	// roughly every 1/128th of the graph in between. Called from the
	// single simulation goroutine.
	OnProgress func(done, total int64)
	// Steal, when non-nil, mirrors the real runtime's inter-node work
	// stealing for a scripted (forced) migration schedule: each listed task
	// executes on its thief rank's steal agent instead of a victim core,
	// paying the migration transfers on the fabric. Forced schedules are the
	// deterministic arm the sim==real parity tests exercise; the real
	// engine's demand-driven (starvation-triggered) stealing is wall-clock
	// dependent and has no virtual-time analogue.
	Steal *StealOpts
}

// StealOpts configures the forced-migration mirror.
type StealOpts struct {
	// Ranks is the process count of the mirrored distributed run; RankOf
	// maps a virtual node to its owning rank (runtime.RankOfNode in the
	// mirrored run).
	Ranks  int
	RankOf func(node int) int
	// Force lists the scripted migrations: task (by graph index) and the
	// thief rank that executes it.
	Force []ForcedSteal
}

// ForcedSteal scripts one migration. It intentionally duplicates the
// runtime's type rather than importing it: desim depends only on the graph.
type ForcedSteal struct {
	Task  int32
	Thief int
}

// Policy mirrors the real runtime's scheduling disciplines.
type Policy int

const (
	FIFO Policy = iota
	Priority
)

// Result is the outcome of a simulation.
type Result struct {
	Makespan time.Duration
	// BusyTime is the total core-seconds spent computing, per node.
	BusyTime []time.Duration
	// Messages and BytesSent mirror the fabric counters.
	Messages  int
	BytesSent int
	// Bundles and Segments mirror the fabric's coalescing counters: wire
	// messages that were halo bundles and the member transfers they carried.
	Bundles  int
	Segments int
	Tasks    int
	// Fault counts the injected fault schedule and the modeled recovery
	// work (all zero without a fault plan).
	Fault fault.Stats
	// Overlap observability for split graphs, mirroring the real engine
	// (all zero when the graph has no inner tasks). OverlapRatio is the
	// fraction of wire in-flight time during which at least one interior
	// (KindInner) task was executing; InteriorTasks and BorderTasks count
	// simulated tasks of those kinds.
	OverlapRatio  float64
	InteriorTasks int
	BorderTasks   int
	// Work-stealing mirror counters (all zero without Options.Steal),
	// matching the real runtime.Result fields of the same names exactly:
	// one steal per forced migration, MigratedBytes = sum of each migrated
	// task's Mig.InBytes+OutBytes.
	StealsRemote  int
	MigratedTasks int
	MigratedBytes int
}

// BundleFill returns the mean member transfers per bundle (0 when no
// bundles were sent) — the aggregation factor coalescing achieved.
func (r *Result) BundleFill() float64 {
	if r.Bundles == 0 {
		return 0
	}
	return float64(r.Segments) / float64(r.Bundles)
}

// Occupancy returns the average compute-core utilization of a node.
func (r *Result) Occupancy(node, cores int) float64 {
	if r.Makespan <= 0 || cores <= 0 {
		return 0
	}
	return float64(r.BusyTime[node]) / (float64(r.Makespan) * float64(cores))
}

type evKind uint8

const (
	evTaskDone evKind = iota
	evMsgArrive
	// evBundleArrive delivers a coalesced halo bundle: one event satisfies
	// every member dependency at the same arrival time (task holds the
	// bundle index instead of a task index).
	evBundleArrive
	// evSendMsg / evSendBundle perform a send deferred past the source
	// node's fault-injected pause window (task holds the consumer index
	// with core the dependency index, or the bundle index). Deferring —
	// instead of pricing the send immediately with a far-future departure
	// — keeps fabric pricing in virtual-time order, so a paused sender
	// never inflates the NIC horizons seen by earlier traffic.
	evSendMsg
	evSendBundle
	// evStealReturn completes a forced migration: the thief's results frame
	// arrived back at the victim and the task commits there (no core was
	// occupied on either side — the thief executes on its steal agent).
	evStealReturn
)

type event struct {
	at   time.Duration
	seq  int64
	kind evKind
	task int32 // finished task, message's consumer task, or bundle index
	node int32 // node concerned
	core int32
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type waitItem struct {
	task int32
	prio int32
	seq  int64
}

type waitHeap struct {
	items  []waitItem
	byPrio bool
}

func (h waitHeap) Len() int { return len(h.items) }
func (h waitHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if h.byPrio && a.prio != b.prio {
		return a.prio > b.prio
	}
	return a.seq < b.seq
}
func (h waitHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *waitHeap) Push(x any)   { h.items = append(h.items, x.(waitItem)) }
func (h *waitHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

type simNode struct {
	idleCores []int32 // stack of idle core ids
	waiting   waitHeap
	busy      time.Duration
}

type sim struct {
	g      *ptg.Graph
	opts   Options
	events eventHeap
	seq    int64
	nodes  []*simNode
	// pending deps per task; ready time accumulates the max input arrival.
	pending []int32
	ready   []time.Duration
	done    int
	// Bundle plan (nil when coalescing is off or the graph has no cross
	// deps): bundles is the plan, bundleRem the per-bundle countdown of
	// members not yet produced, depBundle maps task<<32|dep to its bundle.
	bundles   []ptg.Bundle
	bundleRem []int32
	depBundle map[int64]int32
	// Fault mirror state (see fault.go): the armed plan and recovery
	// policy, injected-schedule counters, per-(node,core) executed-task
	// counters for slow cores, per-node outgoing-message counters for comm
	// stalls, per-node completed-task counters and pause horizons, and the
	// structured report of a deadline degradation.
	fplan      *fault.Plan
	rec        fault.Recovery
	reliable   bool
	fstats     fault.Stats
	coreSeq    [][]int
	outSeq     []int
	nodeDone   []int
	pauseUntil []time.Duration
	ferr       error
	// Overlap instrumentation, active only when the graph carries KindInner
	// tasks (trace.OverlapRatio defines the semantics): commIv collects
	// [departure, arrival) of every cross-node transfer, innerIv the
	// execution window of every inner task.
	overlapOn     bool
	commIv        []trace.Span
	innerIv       []trace.Span
	interiorTasks int
	borderTasks   int
	// Forced-migration mirror state (nil/empty without Options.Steal):
	// forced maps a task index to its thief rank, rankNode each rank to its
	// first owned node (the endpoint its steal frames travel through), and
	// agentFree each rank's single steal agent to its next idle time.
	forced    map[int32]int
	rankNode  []int32
	agentFree []time.Duration
	migDone   int
	migBytes  int
}

// stealInit validates and arms the forced-migration mirror.
func (s *sim) stealInit() error {
	so := s.opts.Steal
	if so == nil || len(so.Force) == 0 {
		return nil
	}
	if so.Ranks < 2 || so.RankOf == nil {
		return fmt.Errorf("desim: Steal needs Ranks >= 2 and a RankOf placement")
	}
	if s.opts.Fabric == nil {
		return fmt.Errorf("desim: Steal requires a Fabric")
	}
	s.rankNode = make([]int32, so.Ranks)
	for r := range s.rankNode {
		s.rankNode[r] = -1
	}
	for n := 0; n < s.g.NumNodes; n++ {
		r := so.RankOf(n)
		if r < 0 || r >= so.Ranks {
			return fmt.Errorf("desim: RankOf(%d) = %d out of range [0,%d)", n, r, so.Ranks)
		}
		if s.rankNode[r] < 0 {
			s.rankNode[r] = int32(n)
		}
	}
	s.forced = make(map[int32]int, len(so.Force))
	s.agentFree = make([]time.Duration, so.Ranks)
	for _, f := range so.Force {
		if f.Task < 0 || int(f.Task) >= len(s.g.Tasks) {
			return fmt.Errorf("desim: forced steal task %d out of range", f.Task)
		}
		t := &s.g.Tasks[f.Task]
		if t.Mig == nil {
			return fmt.Errorf("desim: forced steal task %d is not migratable", f.Task)
		}
		if f.Thief < 0 || f.Thief >= so.Ranks {
			return fmt.Errorf("desim: forced steal thief rank %d out of range [0,%d)", f.Thief, so.Ranks)
		}
		if f.Thief == so.RankOf(int(t.Node)) {
			return fmt.Errorf("desim: forced steal task %d already lives on rank %d", f.Task, f.Thief)
		}
		if s.rankNode[f.Thief] < 0 {
			return fmt.Errorf("desim: thief rank %d owns no nodes", f.Thief)
		}
		if _, dup := s.forced[f.Task]; dup {
			return fmt.Errorf("desim: task %d forced twice", f.Task)
		}
		s.forced[f.Task] = f.Thief
	}
	return nil
}

// migrate mirrors one forced migration in virtual time: the victim's steal
// agent ships the task's inputs to the thief rank's agent, which executes it
// off-core (one agent per rank, so back-to-back migrations to one thief
// serialize) and ships the results back; the task commits at the victim when
// the return frame lands. Ack frames are modeled free, like data acks.
func (s *sim) migrate(idx int32, thief int, at time.Duration) {
	t := &s.g.Tasks[idx]
	victimNode := int(t.Node)
	thiefNode := int(s.rankNode[thief])
	arrive := s.opts.Fabric.SendSteal(victimNode, thiefNode, t.Mig.InBytes, at)
	start := arrive
	if s.agentFree[thief] > start {
		start = s.agentFree[thief]
	}
	d := s.opts.Cost(t)
	if d < 0 {
		d = 0
	}
	end := start + d
	s.agentFree[thief] = end
	back := s.opts.Fabric.SendSteal(thiefNode, victimNode, t.Mig.OutBytes, end)
	if s.opts.Trace != nil && (s.opts.TraceNode < 0 || s.opts.TraceNode == t.Node) {
		s.opts.Trace.Record(trace.Event{
			ID: t.ID, Kind: t.Kind, Node: t.Node, Core: int32(s.opts.Cores), Start: start, End: end, Stolen: true,
		})
	}
	s.seq++
	heap.Push(&s.events, event{at: back, seq: s.seq, kind: evStealReturn, task: idx, node: t.Node})
}

// Run simulates the graph and returns the makespan and statistics.
func Run(g *ptg.Graph, opts Options) (*Result, error) {
	if opts.Cores <= 0 {
		return nil, fmt.Errorf("desim: Cores must be positive")
	}
	if opts.Cost == nil {
		return nil, fmt.Errorf("desim: Cost function required")
	}
	if cross, _ := g.CrossNodeDeps(); cross > 0 && opts.Fabric == nil {
		return nil, fmt.Errorf("desim: graph has %d cross-node deps but no Fabric", cross)
	}
	if opts.Fabric != nil && opts.Fabric.Nodes() < g.NumNodes {
		return nil, fmt.Errorf("desim: fabric has %d endpoints, graph needs %d", opts.Fabric.Nodes(), g.NumNodes)
	}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, &ptg.CancelError{Engine: "desim", Total: len(g.Tasks), Err: err}
		}
	}
	s := &sim{
		g:       g,
		opts:    opts,
		nodes:   make([]*simNode, g.NumNodes),
		pending: make([]int32, len(g.Tasks)),
		ready:   make([]time.Duration, len(g.Tasks)),
	}
	for n := range s.nodes {
		nd := &simNode{idleCores: make([]int32, 0, opts.Cores)}
		for c := opts.Cores - 1; c >= 0; c-- {
			nd.idleCores = append(nd.idleCores, int32(c))
		}
		nd.waiting.byPrio = opts.Policy == Priority
		s.nodes[n] = nd
	}
	for i := range g.Tasks {
		s.pending[i] = int32(len(g.Tasks[i].Deps))
		if g.Tasks[i].Kind == ptg.KindInner {
			s.overlapOn = true
		}
	}
	if err := s.faultInit(); err != nil {
		return nil, err
	}
	if err := s.stealInit(); err != nil {
		return nil, err
	}
	if err := s.planBundles(); err != nil {
		return nil, err
	}
	for _, r := range g.Roots() {
		s.taskReady(r, 0)
	}

	progressEvery := len(g.Tasks) / 128
	if progressEvery == 0 {
		progressEvery = 1
	}
	var makespan time.Duration
	var polled int
	for s.events.Len() > 0 && s.ferr == nil {
		// Poll the context every few hundred events: cheap enough to be
		// invisible, fine enough that a cancelled simulation stops within
		// microseconds of real time.
		if polled++; opts.Ctx != nil && polled&255 == 0 {
			if err := opts.Ctx.Err(); err != nil {
				return nil, &ptg.CancelError{Engine: "desim", Done: s.done, Total: len(g.Tasks), Err: err}
			}
		}
		ev := heap.Pop(&s.events).(event)
		switch ev.kind {
		case evTaskDone:
			if ev.at > makespan {
				makespan = ev.at
			}
			s.done++
			if opts.OnProgress != nil && (s.done%progressEvery == 0 || s.done == len(g.Tasks)) {
				opts.OnProgress(int64(s.done), int64(len(g.Tasks)))
			}
			s.notePause(ev.node, ev.at)
			s.release(ev.task, ev.at)
			// Free the core and pull the next waiter if any.
			nd := s.nodes[ev.node]
			nd.idleCores = append(nd.idleCores, ev.core)
			if nd.waiting.Len() > 0 {
				it := heap.Pop(&nd.waiting).(waitItem)
				s.start(it.task, ev.at)
			}
		case evMsgArrive:
			s.satisfy(ev.task, ev.at)
		case evBundleArrive:
			for _, m := range s.bundles[ev.task].Members {
				s.satisfy(m.Task, ev.at)
			}
		case evSendMsg:
			s.sendMsg(ev.task, ev.core, ev.at)
		case evSendBundle:
			s.sendBundleAt(ev.task, ev.at)
		case evStealReturn:
			if ev.at > makespan {
				makespan = ev.at
			}
			s.done++
			s.migDone++
			s.migBytes += s.g.Tasks[ev.task].Mig.InBytes + s.g.Tasks[ev.task].Mig.OutBytes
			if opts.OnProgress != nil && (s.done%progressEvery == 0 || s.done == len(g.Tasks)) {
				opts.OnProgress(int64(s.done), int64(len(g.Tasks)))
			}
			s.release(ev.task, ev.at)
		}
	}
	if s.ferr != nil {
		// Graceful degradation: the structured report says which transfer
		// blew the recovery deadline, after how many attempts.
		return nil, s.ferr
	}
	if s.done != len(g.Tasks) {
		return nil, fmt.Errorf("desim: quiesced after %d of %d tasks (dependency deadlock)", s.done, len(g.Tasks))
	}
	res := &Result{
		Makespan: makespan,
		BusyTime: make([]time.Duration, g.NumNodes),
		Tasks:    s.done,
		Fault:    s.fstats,
	}
	for n, nd := range s.nodes {
		res.BusyTime[n] = nd.busy
	}
	if opts.Fabric != nil {
		res.Messages = opts.Fabric.Messages
		res.BytesSent = opts.Fabric.BytesSent
		res.Bundles = opts.Fabric.Bundles
		res.Segments = opts.Fabric.Segments
	}
	if s.overlapOn {
		res.OverlapRatio = trace.OverlapRatio(s.commIv, s.innerIv)
		res.InteriorTasks = s.interiorTasks
		res.BorderTasks = s.borderTasks
	}
	res.StealsRemote = s.migDone
	res.MigratedTasks = s.migDone
	res.MigratedBytes = s.migBytes
	return res, nil
}

// planBundles mirrors the real runtime's coalescing plan: resolve
// Options.Coalesce against the graph and materialize the per-bundle member
// countdowns and the dependency-to-bundle index.
func (s *sim) planBundles() error {
	if s.opts.Coalesce == ptg.CoalesceOff {
		return nil
	}
	plan, err := s.g.Bundles()
	if err != nil {
		if s.opts.Coalesce == ptg.CoalesceAuto {
			return nil
		}
		return err
	}
	if len(plan) == 0 {
		return nil
	}
	s.bundles = plan
	s.bundleRem = make([]int32, len(plan))
	s.depBundle = make(map[int64]int32, len(plan))
	for i := range plan {
		s.bundleRem[i] = int32(len(plan[i].Members))
		for _, m := range plan[i].Members {
			s.depBundle[int64(m.Task)<<32|int64(m.Dep)] = int32(i)
		}
	}
	return nil
}

// taskReady is called when a task's last input arrived at time at.
func (s *sim) taskReady(idx int32, at time.Duration) {
	if thief, ok := s.forced[idx]; ok {
		s.migrate(idx, thief, at)
		return
	}
	t := &s.g.Tasks[idx]
	nd := s.nodes[t.Node]
	if len(nd.idleCores) > 0 {
		s.start(idx, at)
		return
	}
	s.seq++
	heap.Push(&nd.waiting, waitItem{task: idx, prio: t.Priority, seq: s.seq})
}

// start runs the task on an idle core of its node beginning at time at.
func (s *sim) start(idx int32, at time.Duration) {
	t := &s.g.Tasks[idx]
	nd := s.nodes[t.Node]
	core := nd.idleCores[len(nd.idleCores)-1]
	nd.idleCores = nd.idleCores[:len(nd.idleCores)-1]
	// A paused node starts nothing until its window ends; a slow core
	// stretches the task inside its timed window — both mirror the real
	// engine's worker loop.
	at = s.pausedUntil(t.Node, at)
	d := s.opts.Cost(t)
	if d < 0 {
		d = 0
	}
	d += s.slowCoreExtra(t.Node, core)
	nd.busy += d
	end := at + d
	if s.overlapOn {
		switch t.Kind {
		case ptg.KindInner:
			s.interiorTasks++
			s.innerIv = append(s.innerIv, trace.Span{Start: int64(at), End: int64(end)})
		case ptg.KindBorder:
			s.borderTasks++
		}
	}
	if s.opts.Trace != nil && (s.opts.TraceNode < 0 || s.opts.TraceNode == t.Node) {
		s.opts.Trace.Record(trace.Event{
			ID: t.ID, Kind: t.Kind, Node: t.Node, Core: core, Start: at, End: end,
		})
	}
	s.seq++
	heap.Push(&s.events, event{at: end, seq: s.seq, kind: evTaskDone, task: idx, node: t.Node, core: core})
}

// release propagates a finished task's outputs to its consumers.
func (s *sim) release(idx int32, at time.Duration) {
	t := &s.g.Tasks[idx]
	for _, sIdx := range t.Succs {
		c := &s.g.Tasks[sIdx]
		for di := range c.Deps {
			d := &c.Deps[di]
			if d.Producer != idx {
				continue
			}
			if c.Node == t.Node {
				s.satisfy(sIdx, at)
				continue
			}
			if bi, ok := s.depBundle[int64(sIdx)<<32|int64(di)]; ok {
				// The bundle leaves when its last member is produced;
				// events process in time order, so the decrement that
				// reaches zero carries the departure time.
				s.bundleRem[bi]--
				if s.bundleRem[bi] == 0 {
					s.sendBundleAt(bi, at)
				}
				continue
			}
			s.sendMsg(sIdx, int32(di), at)
		}
	}
}

// deferPastPause reschedules a send whose source node sits inside a
// fault-injected pause window, firing it when the window ends. Returns
// true when the send was deferred.
func (s *sim) deferPastPause(src int32, at time.Duration, kind evKind, task, core int32) bool {
	if s.fplan == nil || s.pauseUntil[src] <= at {
		return false
	}
	s.seq++
	heap.Push(&s.events, event{at: s.pauseUntil[src], seq: s.seq, kind: kind, task: task, node: src, core: core})
	return true
}

// sendMsg prices one point-to-point cross-node transfer departing at time
// at (deferring first if the source node is paused) and schedules its
// arrival.
func (s *sim) sendMsg(sIdx, di int32, at time.Duration) {
	c := &s.g.Tasks[sIdx]
	d := &c.Deps[di]
	src := s.g.Tasks[d.Producer].Node
	if s.deferPastPause(src, at, evSendMsg, sIdx, di) {
		return
	}
	// Fault identity: exactly the fields the real engine's Message carries.
	id := fault.MsgID{Src: src, Dst: c.Node, Task: sIdx, Dep: di}
	arrive, ok := s.sendCross(id, d.Bytes, 0, at)
	if !ok {
		return
	}
	if s.overlapOn {
		s.commIv = append(s.commIv, trace.Span{Start: int64(at), End: int64(arrive)})
	}
	s.seq++
	heap.Push(&s.events, event{at: arrive, seq: s.seq, kind: evMsgArrive, task: sIdx, node: c.Node})
}

// sendBundleAt prices one coalesced bundle departing at time at (deferring
// first if the source node is paused) and schedules its arrival.
func (s *sim) sendBundleAt(bi int32, at time.Duration) {
	b := &s.bundles[bi]
	if s.deferPastPause(b.Src, at, evSendBundle, bi, 0) {
		return
	}
	// Bundle fault identity: 1-based plan index, exactly the
	// Message.Bundle the real engine hashes.
	id := fault.MsgID{Src: b.Src, Dst: b.Dst, Bundle: bi + 1}
	arrive, ok := s.sendCross(id, b.WireBytes(), len(b.Members), at)
	if !ok {
		return
	}
	if s.overlapOn {
		s.commIv = append(s.commIv, trace.Span{Start: int64(at), End: int64(arrive)})
	}
	s.seq++
	heap.Push(&s.events, event{at: arrive, seq: s.seq, kind: evBundleArrive, task: bi, node: b.Dst})
}

// satisfy accounts one input arrival for a task.
func (s *sim) satisfy(idx int32, at time.Duration) {
	if at > s.ready[idx] {
		s.ready[idx] = at
	}
	s.pending[idx]--
	if s.pending[idx] == 0 {
		s.taskReady(idx, s.ready[idx])
	}
}
